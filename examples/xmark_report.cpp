// Runs the XMark benchmark queries over a generated auction-site document,
// comparing the streaming MFT pipeline with the GCX-like baseline — a
// miniature of the paper's Section 5 evaluation.
//
//   ./xmark_report [megabytes]    (default 2 MB)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "bench_common/queries.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "gcx/gcx_engine.h"
#include "util/strings.h"
#include "xml/events.h"
#include "xml/sax_parser.h"

using namespace xqmft;

namespace {

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t mb = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 2;
  Result<std::string> path =
      EnsureDataset(DatasetKind::kXmark, mb * 1024 * 1024);
  if (!path.ok()) {
    std::fprintf(stderr, "dataset error: %s\n",
                 path.status().ToString().c_str());
    return 1;
  }
  std::printf("XMark-like dataset: %s (%zu MB target)\n\n",
              path.value().c_str(), mb);
  std::printf("%-10s %12s %12s %12s %12s %10s\n", "query", "mft time",
              "mft memory", "gcx time", "gcx memory", "output");

  for (const BenchQuery& bq : Figure3Queries()) {
    auto cq = CompiledQuery::Compile(bq.text);
    if (!cq.ok()) {
      std::fprintf(stderr, "%s: %s\n", bq.id,
                   cq.status().ToString().c_str());
      return 1;
    }
    CountingSink mft_sink;
    StreamStats mft_stats;
    auto t0 = std::chrono::steady_clock::now();
    Status st = cq.value()->StreamFile(path.value(), &mft_sink, &mft_stats);
    auto t1 = std::chrono::steady_clock::now();
    if (!st.ok()) {
      std::fprintf(stderr, "%s (mft): %s\n", bq.id, st.ToString().c_str());
      return 1;
    }

    std::string gcx_time = "N/A", gcx_mem = "N/A";
    auto query = std::move(ParseQuery(bq.text).ValueOrDie());
    if (bq.gcx_supported) {
      auto gq = GcxQuery::Compile(*query);
      if (gq.ok()) {
        CountingSink gcx_sink;
        GcxStats gcx_stats;
        auto src = std::move(FileSource::Open(path.value()).ValueOrDie());
        auto t2 = std::chrono::steady_clock::now();
        Status gst = gq.value()->Run(src.get(), &gcx_sink, {}, &gcx_stats);
        auto t3 = std::chrono::steady_clock::now();
        if (gst.ok()) {
          gcx_time = StrFormat("%.3fs", Seconds(t2, t3));
          gcx_mem = HumanBytes(gcx_stats.peak_bytes);
        } else {
          gcx_time = "FAIL";
        }
      }
    }
    std::printf("%-10s %11.3fs %12s %12s %12s %9zu\n", bq.id, Seconds(t0, t1),
                HumanBytes(mft_stats.peak_bytes).c_str(), gcx_time.c_str(),
                gcx_mem.c_str(), mft_sink.elements() + mft_sink.texts());
  }
  return 0;
}
