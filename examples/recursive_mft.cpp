// MFTs are strictly more expressive than the XQuery fragment: Section 1
// notes that one can translate a query and then extend the transducer with
// recursive definitions, or write recursive MFT programs directly. This
// example hand-writes two such transducers in the textual rule syntax and
// streams documents through them:
//
//   1. `mirror` — reverses the order of every node's children using an
//      accumulating parameter (not expressible in MinXQuery: the fragment
//      has no order reversal);
//   2. `toc` — a table of contents: keeps section structure, drops
//      paragraph content, and numbers nesting by wrapping in <level>.
#include <cstdio>

#include "mft/mft.h"
#include "stream/engine.h"
#include "util/strings.h"
#include "xml/events.h"

using namespace xqmft;

int main() {
  // Children are accumulated in reverse through parameter y1: classic
  // accumulator recursion (the deaccumulation literature's motivating
  // example, Section 3 of [15] in the paper's references).
  const char* mirror_rules =
      "q0(%) -> rev(x0, eps)\n"
      "rev(%t(x1)x2, y1) -> rev(x2, %t(rev(x1, eps)) y1)\n"
      "rev(eps, y1) -> y1\n";

  const char* toc_rules =
      "q0(%) -> toc(x0)\n"
      "toc(section(x1)x2) -> level(title(gettitle(x1)) toc(x1)) toc(x2)\n"
      "toc(%t(x1)x2) -> toc(x2)\n"
      "toc(eps) -> eps\n"
      "gettitle(title(x1)x2) -> copy(x1)\n"
      "gettitle(%t(x1)x2) -> gettitle(x2)\n"
      "gettitle(eps) -> eps\n"
      "copy(%t(x1)x2) -> %t(copy(x1)) copy(x2)\n"
      "copy(eps) -> eps\n";

  struct Demo {
    const char* name;
    const char* rules;
    const char* input;
  } demos[] = {
      {"mirror", mirror_rules, "<r><a>1</a><b>2</b><c><d/><e/></c></r>"},
      {"toc", toc_rules,
       "<doc><section><title>Intro</title><p>text</p>"
       "<section><title>Background</title><p>more</p></section></section>"
       "<section><title>Results</title></section></doc>"},
  };

  for (const Demo& demo : demos) {
    Result<Mft> mft = ParseMft(demo.rules);
    if (!mft.ok()) {
      std::fprintf(stderr, "%s: %s\n", demo.name,
                   mft.status().ToString().c_str());
      return 1;
    }
    StringSink sink;
    StreamStats stats;
    Status st = StreamTransformString(mft.value(), demo.input, &sink, {},
                                      &stats);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", demo.name, st.ToString().c_str());
      return 1;
    }
    std::printf("%s:\n  rules:\n", demo.name);
    std::printf("%s", mft.value().ToString().c_str());
    std::printf("  input:  %s\n  output: %s   (peak %s)\n\n", demo.input,
                sink.str().c_str(), HumanBytes(stats.peak_bytes).c_str());
  }
  return 0;
}
