// The paper's Section 2.2 walkthrough, end to end: the Pperson query with
// an XPath predicate and a let-binding, its translated transducer before
// and after optimization, and the two worked inputs (including the
// else-branch input where the first p_id fails the filter and the scan
// resumes through q3's second parameter).
#include <cstdio>

#include "core/pipeline.h"
#include "util/strings.h"
#include "xml/events.h"

using namespace xqmft;

int main() {
  const char* query =
      "<out>{ for $b in $input/person[./p_id/text() = \"person0\"] "
      "return let $r := $b/name/text() return $r }</out>";

  std::printf("Pperson (Section 2.2):\n  %s\n\n", query);

  PipelineOptions raw_options;
  raw_options.optimize = false;
  auto raw = std::move(CompiledQuery::Compile(query, raw_options).ValueOrDie());
  auto opt = std::move(CompiledQuery::Compile(query).ValueOrDie());

  std::printf("translated MFT (unoptimized, %d states, size %zu)\n",
              raw->mft().num_states(), raw->mft().Size());
  std::printf("optimized MFT (%d states, size %zu):\n%s\n",
              opt->mft().num_states(), opt->mft().Size(),
              opt->mft().ToString().c_str());
  std::printf("optimizer report:\n%s\n\n",
              opt->optimize_report().ToString().c_str());

  const char* inputs[] = {
      // The filter matches the first p_id: both names are selected.
      "<person><p_id><a/>person0</p_id><name>Jim</name><c/>"
      "<name>Li</name></person>",
      // "perso7" fails; the second p_id matches: the paper's else-branch.
      "<person><p_id><a/>perso7</p_id><name>Jim</name><c/>"
      "<p_id>person0</p_id></person>",
      // No match at all.
      "<person><p_id>nobody</p_id><name>Jim</name></person>",
  };
  for (const char* doc : inputs) {
    StringSink sink;
    StreamStats stats;
    Status st = opt->StreamString(doc, &sink, &stats);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("input:  %s\noutput: %s   (peak %s)\n\n", doc,
                sink.str().c_str(), HumanBytes(stats.peak_bytes).c_str());
  }
  return 0;
}
