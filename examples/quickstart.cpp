// Quickstart: compile a MinXQuery program and stream a document through it.
//
//   ./quickstart                      # built-in query + document
//   ./quickstart '<out>{$input//a}</out>' file.xml
//
// Demonstrates the whole public pipeline: parse -> translate (Section 3)
// -> optimize (Section 4.1) -> stream (Nakano-Mu engine).
#include <cstdio>
#include <string>

#include "core/pipeline.h"
#include "util/strings.h"
#include "xml/events.h"

using namespace xqmft;

int main(int argc, char** argv) {
  std::string query_text =
      argc > 1 ? argv[1]
               : "<report>{ for $p in $input/people/person[./age/text()=\"42\"] "
                 "return <hit>{$p/name/text()}</hit> }</report>";

  Result<std::unique_ptr<CompiledQuery>> compiled =
      CompiledQuery::Compile(query_text);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }
  const CompiledQuery& cq = *compiled.value();

  std::printf("query:\n  %s\n\n", query_text.c_str());
  std::printf("optimizer: %s\n\n", cq.optimize_report().ToString().c_str());
  std::printf("transducer (%d states, size %zu):\n%s\n",
              cq.mft().num_states(), cq.mft().Size(),
              cq.mft().ToString().c_str());

  StringSink sink;
  StreamStats stats;
  Status st;
  if (argc > 2) {
    st = cq.StreamFile(argv[2], &sink, &stats);
  } else {
    const char* doc =
        "<people>"
        "<person><name>Ada</name><age>42</age></person>"
        "<person><name>Bob</name><age>17</age></person>"
        "<person><name>Cy</name><age>42</age></person>"
        "</people>";
    std::printf("document:\n  %s\n\n", doc);
    st = cq.StreamString(doc, &sink, &stats);
  }
  if (!st.ok()) {
    std::fprintf(stderr, "stream error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("output:\n  %s\n\n", sink.str().c_str());
  std::printf(
      "stats: %zu bytes in, %zu output events, peak memory %s, "
      "%llu rule applications, %llu cells + %llu exprs created\n",
      stats.bytes_in, stats.output_events,
      HumanBytes(stats.peak_bytes).c_str(),
      static_cast<unsigned long long>(stats.rule_applications),
      static_cast<unsigned long long>(stats.cells_created),
      static_cast<unsigned long long>(stats.exprs_created));
  return 0;
}
