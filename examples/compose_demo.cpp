// Deforestation by transducer composition (Section 4.2).
//
// Two pipelined transformations normally materialize an intermediate
// document. Both stages here are forest transducers (FTs) — the first two
// derived from MinXQuery queries that satisfy Theorem 2, so their optimized
// transducers are parameterless — and the paper's Theorem 3/4 machinery
// composes them into a single transducer that streams the input once, with
// no intermediate forest.
#include <cstdio>

#include "compose/compose.h"
#include "core/pipeline.h"
#include "mft/interp.h"
#include "util/strings.h"
#include "xml/events.h"
#include "xml/sax_parser.h"
#include "stream/engine.h"

using namespace xqmft;

int main() {
  // Stage 1: restructure — wrap every region item's name into a catalog row.
  const char* stage1 =
      "<catalog>{ for $i in $input/site/regions/australia/item "
      "return <row><name>{$i/name/text()}</name></row> }</catalog>";
  // Stage 2: select — keep only the names, flattening the rows.
  const char* stage2 = "<names>{$input/catalog/row/name}</names>";

  auto cq1 = std::move(CompiledQuery::Compile(stage1).ValueOrDie());
  auto cq2 = std::move(CompiledQuery::Compile(stage2).ValueOrDie());
  const Mft& m1 = cq1->mft();
  const Mft& m2 = cq2->mft();
  std::printf("stage 1 optimized to an FT: %s (size %zu)\n",
              m1.IsForestTransducer() ? "yes" : "no", m1.Size());
  std::printf("stage 2 optimized to an FT: %s (size %zu)\n",
              m2.IsForestTransducer() ? "yes" : "no", m2.Size());

  Result<Mft> composed = ComposeForestFts(m1, m2);
  if (!composed.ok()) {
    std::fprintf(stderr, "composition failed: %s\n",
                 composed.status().ToString().c_str());
    return 1;
  }
  std::printf("composed MFT: %d states, size %zu (parameters: %zu)\n\n",
              composed.value().num_states(), composed.value().Size(),
              composed.value().TotalParams());

  const char* doc =
      "<site><regions><australia>"
      "<item><name>opal</name><price>10</price></item>"
      "<item><name>boomerang</name></item>"
      "</australia></regions></site>";

  // Two-pass pipeline.
  StringSink intermediate;
  if (!cq1->StreamString(doc, &intermediate).ok()) return 1;
  StringSink two_pass;
  if (!cq2->StreamString(intermediate.str(), &two_pass).ok()) return 1;

  // One-pass composed transducer.
  StringSink one_pass;
  StreamStats stats;
  Status st = StreamTransformString(composed.value(), doc, &one_pass, {},
                                    &stats);
  if (!st.ok()) {
    std::fprintf(stderr, "stream failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("input:        %s\n", doc);
  std::printf("intermediate: %s\n", intermediate.str().c_str());
  std::printf("two-pass:     %s\n", two_pass.str().c_str());
  std::printf("one-pass:     %s   (peak %s)\n", one_pass.str().c_str(),
              HumanBytes(stats.peak_bytes).c_str());
  std::printf("outputs agree: %s\n",
              two_pass.str() == one_pass.str() ? "yes" : "NO");
  return two_pass.str() == one_pass.str() ? 0 : 1;
}
