// Lemma 2 ablation: stay-move composition vs the classical construction.
//
// Section 4.2 proves TT composition in O(|Sigma||M1||M2|) using stay moves
// and shows the classical Rounds/Baker substitution is exponential in |M1|
// (the 4-b's example). This bench generalizes that example: M1_L rewrites
// every `a` into a chain of L `b`s, M2 doubles every `b`; the classical
// composed rule holds a complete binary tree of height L.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "compose/compose.h"
#include "compose/mtt.h"
#include "util/strings.h"

using namespace xqmft;

namespace {

Mtt ChainTt(int l) {
  Mtt m;
  StateId q = m.AddState("q0", 0);
  m.set_initial_state(q);
  BExpr chain = BExpr::Call(q, InputVar::kX1);
  for (int i = 0; i < l; ++i) {
    chain = BExpr::Label(Symbol::Element("b"), std::move(chain), BExpr::Eps());
  }
  m.SetSymbolRule(q, Symbol::Element("a"), std::move(chain));
  m.SetDefaultRule(q, BExpr::Eps());
  m.SetEpsilonRule(q, BExpr::Eps());
  return m;
}

Mtt Doubler() {
  Mtt m;
  StateId p = m.AddState("p0", 0);
  m.set_initial_state(p);
  m.SetSymbolRule(p, Symbol::Element("b"),
                  BExpr::Label(Symbol::Element("c"),
                               BExpr::Call(p, InputVar::kX1),
                               BExpr::Call(p, InputVar::kX1)));
  m.SetDefaultRule(p, BExpr::Eps());
  m.SetEpsilonRule(p, BExpr::Eps());
  return m;
}

void PrintSizeTable() {
  std::printf("\nLemma 2: composed transducer size |M| vs chain length L "
              "(M1_L: a -> b^L; M2: b -> c(.,.))\n");
  std::printf("%4s %12s %14s %14s\n", "L", "|M1|", "stay-move |M|",
              "classical |M|");
  Mtt m2 = Doubler();
  for (int l = 2; l <= 16; l += 2) {
    Mtt m1 = ChainTt(l);
    Result<Mtt> stay = ComposeTtTt(m1, m2);
    Result<Mtt> naive = NaiveComposeTtTt(m1, m2, 40'000'000);
    std::printf("%4d %12zu %14zu %14s\n", l, m1.Size(),
                stay.ok() ? stay.value().Size() : 0,
                naive.ok() ? std::to_string(naive.value().Size()).c_str()
                           : "overflow");
  }
  std::printf("\n");
}

void BenchStay(benchmark::State& state) {
  int l = static_cast<int>(state.range(0));
  Mtt m1 = ChainTt(l);
  Mtt m2 = Doubler();
  std::size_t size = 0;
  for (auto _ : state) {
    Result<Mtt> c = ComposeTtTt(m1, m2);
    if (!c.ok()) {
      state.SkipWithError(c.status().ToString().c_str());
      return;
    }
    size = c.value().Size();
    benchmark::DoNotOptimize(size);
  }
  state.counters["composed_size"] = static_cast<double>(size);
}

void BenchNaive(benchmark::State& state) {
  int l = static_cast<int>(state.range(0));
  Mtt m1 = ChainTt(l);
  Mtt m2 = Doubler();
  std::size_t size = 0;
  for (auto _ : state) {
    Result<Mtt> c = NaiveComposeTtTt(m1, m2, 100'000'000);
    if (!c.ok()) {
      state.SkipWithError(c.status().ToString().c_str());
      return;
    }
    size = c.value().Size();
    benchmark::DoNotOptimize(size);
  }
  state.counters["composed_size"] = static_cast<double>(size);
}

}  // namespace

int main(int argc, char** argv) {
  PrintSizeTable();
  for (int l : {4, 8, 12, 16, 20}) {
    benchmark::RegisterBenchmark("compose/stay_move", BenchStay)
        ->Arg(l)
        ->Unit(benchmark::kMicrosecond);
  }
  for (int l : {4, 8, 12, 16, 20}) {
    benchmark::RegisterBenchmark("compose/classical", BenchNaive)
        ->Arg(l)
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
