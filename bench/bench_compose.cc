// Lemma 2 ablation: stay-move composition vs the classical construction.
//
// Section 4.2 proves TT composition in O(|Sigma||M1||M2|) using stay moves
// and shows the classical Rounds/Baker substitution is exponential in |M1|
// (the 4-b's example). This bench generalizes that example: M1_L rewrites
// every `a` into a chain of L `b`s, M2 doubles every `b`; the classical
// composed rule holds a complete binary tree of height L.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "compose/compose.h"
#include "compose/convert.h"
#include "compose/mtt.h"
#include "stream/engine.h"
#include "util/strings.h"
#include "xml/events.h"

using namespace xqmft;

namespace {

Mtt ChainTt(int l) {
  Mtt m;
  StateId q = m.AddState("q0", 0);
  m.set_initial_state(q);
  BExpr chain = BExpr::Call(q, InputVar::kX1);
  for (int i = 0; i < l; ++i) {
    chain = BExpr::Label(Symbol::Element("b"), std::move(chain), BExpr::Eps());
  }
  m.SetSymbolRule(q, Symbol::Element("a"), std::move(chain));
  m.SetDefaultRule(q, BExpr::Eps());
  m.SetEpsilonRule(q, BExpr::Eps());
  return m;
}

Mtt Doubler() {
  Mtt m;
  StateId p = m.AddState("p0", 0);
  m.set_initial_state(p);
  m.SetSymbolRule(p, Symbol::Element("b"),
                  BExpr::Label(Symbol::Element("c"),
                               BExpr::Call(p, InputVar::kX1),
                               BExpr::Call(p, InputVar::kX1)));
  m.SetDefaultRule(p, BExpr::Eps());
  m.SetEpsilonRule(p, BExpr::Eps());
  return m;
}

void PrintSizeTable() {
  std::printf("\nLemma 2: composed transducer size |M| vs chain length L "
              "(M1_L: a -> b^L; M2: b -> c(.,.))\n");
  std::printf("%4s %12s %14s %14s\n", "L", "|M1|", "stay-move |M|",
              "classical |M|");
  Mtt m2 = Doubler();
  for (int l = 2; l <= 16; l += 2) {
    Mtt m1 = ChainTt(l);
    Result<Mtt> stay = ComposeTtTt(m1, m2);
    Result<Mtt> naive = NaiveComposeTtTt(m1, m2, 40'000'000);
    std::printf("%4d %12zu %14zu %14s\n", l, m1.Size(),
                stay.ok() ? stay.value().Size() : 0,
                naive.ok() ? std::to_string(naive.value().Size()).c_str()
                           : "overflow");
  }
  std::printf("\n");
}

void BenchStay(benchmark::State& state) {
  int l = static_cast<int>(state.range(0));
  Mtt m1 = ChainTt(l);
  Mtt m2 = Doubler();
  std::size_t size = 0;
  for (auto _ : state) {
    Result<Mtt> c = ComposeTtTt(m1, m2);
    if (!c.ok()) {
      state.SkipWithError(c.status().ToString().c_str());
      return;
    }
    size = c.value().Size();
    benchmark::DoNotOptimize(size);
  }
  state.counters["composed_size"] = static_cast<double>(size);
}

void BenchNaive(benchmark::State& state) {
  int l = static_cast<int>(state.range(0));
  Mtt m1 = ChainTt(l);
  Mtt m2 = Doubler();
  std::size_t size = 0;
  for (auto _ : state) {
    Result<Mtt> c = NaiveComposeTtTt(m1, m2, 100'000'000);
    if (!c.ok()) {
      state.SkipWithError(c.status().ToString().c_str());
      return;
    }
    size = c.value().Size();
    benchmark::DoNotOptimize(size);
  }
  state.counters["composed_size"] = static_cast<double>(size);
}

// Streams an a-chain nested `depth` deep through the stay-move composition
// (converted back to an MFT), reporting the engine's allocation-rate
// counters alongside wall time: thunk/cell churn per output node is the
// composition's real runtime cost, and slab reuse keeps it visible in the
// JSON even when wall time is noisy. Output grows ~64x per nesting level
// (the doubler duplicates the 6-chain's continuation), so small depths
// already stress the engine.
void BenchStreamComposed(benchmark::State& state) {
  const int chain = 6;
  Mtt composed;
  {
    Result<Mtt> c = ComposeTtTt(ChainTt(chain), Doubler());
    if (!c.ok()) {
      state.SkipWithError(c.status().ToString().c_str());
      return;
    }
    composed = std::move(c).value();
  }
  Mft mft = MttEvalToMft(composed);
  Status valid = mft.Validate();
  if (!valid.ok()) {
    state.SkipWithError(valid.ToString().c_str());
    return;
  }
  int depth = static_cast<int>(state.range(0));
  std::string xml;
  for (int i = 0; i < depth; ++i) xml += "<a>";
  for (int i = 0; i < depth; ++i) xml += "</a>";
  StreamStats stats;
  for (auto _ : state) {
    CountingSink sink;
    Status st = StreamTransformString(mft, xml, &sink, {}, &stats);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(sink.elements());
  }
  state.counters["exprs_created"] = static_cast<double>(stats.exprs_created);
  state.counters["cells_created"] = static_cast<double>(stats.cells_created);
  state.counters["peak_mem_B"] = static_cast<double>(stats.peak_bytes);
  state.counters["out_events"] = static_cast<double>(stats.output_events);
}

}  // namespace

int main(int argc, char** argv) {
  PrintSizeTable();
  for (int l : {4, 8, 12, 16, 20}) {
    benchmark::RegisterBenchmark("compose/stay_move", BenchStay)
        ->Arg(l)
        ->Unit(benchmark::kMicrosecond);
  }
  for (int l : {4, 8, 12, 16, 20}) {
    benchmark::RegisterBenchmark("compose/classical", BenchNaive)
        ->Arg(l)
        ->Unit(benchmark::kMicrosecond);
  }
  for (int depth : {2, 3}) {
    benchmark::RegisterBenchmark("compose/stream_composed",
                                 BenchStreamComposed)
        ->Arg(depth)
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
