// Scaling curves for the parallel sharding layer (src/parallel/).
//
// Three series, each swept over a thread count list so the scaling curve is
// one filter away:
//
//   docset/<q>/xmark_<M>MBx<K>/threads:<N>
//       document-set sharding: K copies of one XMark file streamed as a
//       work queue across N workers, text-XML input (parse + transform per
//       item). threads:1 is the serial baseline of the speedup column.
//   docset_pretok/<q>/xmark_<M>MBx<K>/threads:<N>
//       the same document set served from pretok event caches: the
//       parse-free serving shape, where sharding shows its best scaling
//       (tokenization is not re-paid per item).
//   sharded/<q>/forest_<K>x<M>MB/threads:<N>
//       single-document sharding: one pretok cache holding a K-tree forest
//       is split at top-level forest boundaries into K byte ranges, each
//       evaluated by its own engine.
//
// Environment knobs:
//   XQMFT_BENCH_PAR_SIZE_MB       per-document XMark size (default 1)
//   XQMFT_BENCH_PAR_ITEMS         documents / forest trees (default 8)
//   XQMFT_BENCH_PAR_QUERY        query id (default q01)
//   XQMFT_BENCH_PAR_THREADS_LIST comma list of thread counts ("1,2,4,8")
//
// Note: wall-clock speedup needs real cores. On a single-CPU host the
// curves degenerate to flat (the differential suite still proves the
// outputs identical); the >1.5x-at-4-threads acceptance point is measured
// on a multicore host.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common/queries.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "util/strings.h"
#include "xml/events.h"
#include "xml/pretok.h"
#include "xml/sax_parser.h"

namespace xqmft {
namespace {

std::size_t EnvCount(const char* name, std::size_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr) return def;
  long long n = std::atoll(v);
  return n > 0 ? static_cast<std::size_t>(n) : def;
}

std::vector<std::size_t> ThreadList() {
  const char* env = std::getenv("XQMFT_BENCH_PAR_THREADS_LIST");
  std::string spec = env != nullptr ? env : "1,2,4,8";
  std::vector<std::size_t> out;
  for (const std::string& part : SplitString(spec, ',')) {
    long n = std::atol(part.c_str());
    if (n > 0) out.push_back(static_cast<std::size_t>(n));
  }
  if (out.empty()) out.push_back(1);
  return out;
}

// Tokenizes the dataset once next to its XML file (same cache the Fig-4
// mft_pretok series uses).
Result<std::string> EnsurePretok(const std::string& xml_path) {
  std::string ptk = xml_path + ".ptk";
  if (PretokCacheValid(ptk, xml_path)) return ptk;
  XQMFT_RETURN_NOT_OK(PretokenizeXmlFile(xml_path, ptk));
  return ptk;
}

// A K-tree forest cache: the dataset's event stream repeated K times under
// one header, eod only at the very end — the shape the top-level splitter
// fans out. Written with no source identity (it is derived, not a
// tokenization of one file), so cache freshness falls back to the
// strictly-newer mtime rule.
Result<std::string> EnsureForestPretok(const std::string& xml_path,
                                       std::size_t copies) {
  std::string ptk = xml_path + StrFormat(".forest%zu.ptk", copies);
  if (PretokCacheValid(ptk, xml_path)) return ptk;
  std::string bytes;
  PretokWriter writer(&bytes);
  XmlEvent ev;
  for (std::size_t c = 0; c < copies; ++c) {
    XQMFT_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> src,
                           MmapSource::Open(xml_path));
    SaxParser parser(src.get());
    while (true) {
      XQMFT_RETURN_NOT_OK(parser.Next(&ev));
      if (ev.type == XmlEventType::kEndOfDocument) break;
      XQMFT_RETURN_NOT_OK(writer.Feed(ev));
    }
  }
  ev = XmlEvent{};
  ev.type = XmlEventType::kEndOfDocument;
  XQMFT_RETURN_NOT_OK(writer.Feed(ev));
  XQMFT_RETURN_NOT_OK(WritePretokFile(bytes, ptk));
  return ptk;
}

struct ParConfig {
  const BenchQuery* query;
  std::string xml_path;
  std::size_t items;
  std::size_t threads;
};

void ReportRun(benchmark::State& state, const std::vector<StreamStats>& stats,
               std::size_t threads, std::size_t total_source_bytes) {
  std::size_t out_events = 0, peak = 0;
  for (const StreamStats& s : stats) {
    out_events += s.output_events;
    if (s.peak_bytes > peak) peak = s.peak_bytes;
  }
  state.counters["peak_mem_B"] = static_cast<double>(peak);
  state.counters["out_events"] = static_cast<double>(out_events);
  state.counters["bytes_in"] = static_cast<double>(total_source_bytes);
  state.counters["threads"] = static_cast<double>(threads);
  state.SetBytesProcessed(
      static_cast<int64_t>(total_source_bytes * state.iterations()));
}

void BenchDocset(benchmark::State& state, const ParConfig& cfg, bool pretok) {
  Result<std::unique_ptr<CompiledQuery>> cq =
      CompiledQuery::Compile(cfg.query->text);
  if (!cq.ok()) {
    state.SkipWithError(cq.status().ToString().c_str());
    return;
  }
  std::string item_path = cfg.xml_path;
  if (pretok) {
    Result<std::string> ptk = EnsurePretok(cfg.xml_path);
    if (!ptk.ok()) {
      state.SkipWithError(ptk.status().ToString().c_str());
      return;
    }
    item_path = ptk.value();
  }
  std::vector<ParallelInput> inputs(
      cfg.items, pretok ? ParallelInput::PretokFile(item_path)
                        : ParallelInput::XmlFile(item_path));
  ParallelOptions par;
  par.threads = cfg.threads;
  std::vector<StreamStats> stats;
  for (auto _ : state) {
    CountingSink sink;
    Status st = cq.value()->StreamMany(inputs, &sink, par, &stats);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  std::size_t bytes = 0;
  for (const StreamStats& s : stats) bytes += s.bytes_in;
  ReportRun(state, stats, cfg.threads, bytes);
}

void BenchSharded(benchmark::State& state, const ParConfig& cfg) {
  Result<std::unique_ptr<CompiledQuery>> cq =
      CompiledQuery::Compile(cfg.query->text);
  if (!cq.ok()) {
    state.SkipWithError(cq.status().ToString().c_str());
    return;
  }
  Result<std::string> forest = EnsureForestPretok(cfg.xml_path, cfg.items);
  if (!forest.ok()) {
    state.SkipWithError(forest.status().ToString().c_str());
    return;
  }
  ParallelOptions par;
  par.threads = cfg.threads;
  std::vector<StreamStats> stats;
  for (auto _ : state) {
    CountingSink sink;
    Status st = cq.value()->StreamShardedPretokFile(
        forest.value(), /*shards=*/cfg.items, &sink, par, &stats);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  std::size_t bytes = 0;
  for (const StreamStats& s : stats) bytes += s.bytes_in;
  ReportRun(state, stats, cfg.threads, bytes);
}

void RegisterAll() {
  std::size_t size_bytes =
      EnvCount("XQMFT_BENCH_PAR_SIZE_MB", 1) * 1024 * 1024;
  std::size_t items = EnvCount("XQMFT_BENCH_PAR_ITEMS", 8);
  const char* qenv = std::getenv("XQMFT_BENCH_PAR_QUERY");
  const BenchQuery& bq = QueryById(qenv != nullptr ? qenv : "q01");

  Result<std::string> path = EnsureDataset(DatasetKind::kXmark, size_bytes);
  if (!path.ok()) {
    std::fprintf(stderr, "bench_parallel: %s\n",
                 path.status().ToString().c_str());
    return;
  }
  std::size_t mb = size_bytes >> 20;
  for (std::size_t threads : ThreadList()) {
    ParConfig cfg{&bq, path.value(), items, threads};
    benchmark::RegisterBenchmark(
        StrFormat("docset/%s/xmark_%zuMBx%zu/threads:%zu", bq.id, mb, items,
                  threads)
            .c_str(),
        [cfg](benchmark::State& st) { BenchDocset(st, cfg, false); })
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
    benchmark::RegisterBenchmark(
        StrFormat("docset_pretok/%s/xmark_%zuMBx%zu/threads:%zu", bq.id, mb,
                  items, threads)
            .c_str(),
        [cfg](benchmark::State& st) { BenchDocset(st, cfg, true); })
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
    benchmark::RegisterBenchmark(
        StrFormat("sharded/%s/forest_%zux%zuMB/threads:%zu", bq.id, items,
                  mb, threads)
            .c_str(),
        [cfg](benchmark::State& st) { BenchSharded(st, cfg); })
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
  }
}

}  // namespace
}  // namespace xqmft

int main(int argc, char** argv) {
  xqmft::RegisterAll();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
