// Ablation of the Section 4.1 optimizations.
//
// The paper reports that the optimized MFTs are "often faster by one order
// of magnitude" and shows (Figure 4) that unoptimized transducers buffer
// the whole input. This bench (a) prints, per Figure 3 query, the
// transducer statistics with each pass disabled in turn, and (b) measures
// streaming time/memory for the no-opt vs full-opt transducer on XMark
// input.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_common/queries.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "util/strings.h"
#include "xml/events.h"

using namespace xqmft;

namespace {

std::size_t InputBytes() {
  const char* env = std::getenv("XQMFT_BENCH_ABLATION_MB");
  long mb = env != nullptr ? std::atol(env) : 2;
  return static_cast<std::size_t>(mb > 0 ? mb : 2) * 1024 * 1024;
}

struct Variant {
  const char* name;
  OptimizeOptions options;
};

std::vector<Variant> Variants() {
  OptimizeOptions all;
  OptimizeOptions none;
  none.unused_parameters = none.constant_parameters = none.stay_moves =
      none.unreachable_states = false;
  OptimizeOptions no_unused = all;
  no_unused.unused_parameters = false;
  OptimizeOptions no_const = all;
  no_const.constant_parameters = false;
  OptimizeOptions no_stay = all;
  no_stay.stay_moves = false;
  OptimizeOptions no_unreach = all;
  no_unreach.unreachable_states = false;
  return {
      {"none", none},           {"full", all},
      {"no-unused", no_unused}, {"no-constant", no_const},
      {"no-stay", no_stay},     {"no-unreachable", no_unreach},
  };
}

void PrintAblationTable() {
  std::printf("\nSection 4.1 ablation: transducer statistics per disabled "
              "pass (states/params/|M|)\n");
  std::printf("%-10s", "query");
  for (const Variant& v : Variants()) std::printf(" %18s", v.name);
  std::printf("\n");
  for (const BenchQuery& bq : Figure3Queries()) {
    std::printf("%-10s", bq.id);
    for (const Variant& v : Variants()) {
      PipelineOptions po;
      po.optimizer = v.options;
      auto cq = CompiledQuery::Compile(bq.text, po);
      if (!cq.ok()) {
        std::printf(" %18s", "error");
        continue;
      }
      const Mft& m = cq.value()->mft();
      std::printf(" %6d/%4zu/%6zu", m.num_states(), m.TotalParams(),
                  m.Size());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void BenchVariant(benchmark::State& state, const BenchQuery& bq,
                  bool optimize) {
  Result<std::string> path = EnsureDataset(DatasetKind::kXmark, InputBytes());
  if (!path.ok()) {
    state.SkipWithError(path.status().ToString().c_str());
    return;
  }
  PipelineOptions po;
  po.optimize = optimize;
  auto cq = CompiledQuery::Compile(bq.text, po);
  if (!cq.ok()) {
    state.SkipWithError(cq.status().ToString().c_str());
    return;
  }
  StreamStats stats;
  for (auto _ : state) {
    CountingSink sink;
    Status st = cq.value()->StreamFile(path.value(), &sink, &stats);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.counters["peak_mem_B"] = static_cast<double>(stats.peak_bytes);
  state.counters["rule_apps"] =
      static_cast<double>(stats.rule_applications);
}

}  // namespace

int main(int argc, char** argv) {
  PrintAblationTable();
  for (const BenchQuery& bq : Figure3Queries()) {
    benchmark::RegisterBenchmark(
        StrFormat("ablation/%s/noopt", bq.id).c_str(),
        [&bq](benchmark::State& st) { BenchVariant(st, bq, false); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        StrFormat("ablation/%s/opt", bq.id).c_str(),
        [&bq](benchmark::State& st) { BenchVariant(st, bq, true); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
