// Figure 4(a): XMark Q1 — simple selection with an XPath predicate.
//
// Regenerates the sub-figure's two series (elapsed time, peak memory) for
// MFT (no opt), MFT (opt) and the GCX baseline over growing inputs. See
// src/bench_common/fig4.h for the environment knobs.
#include <benchmark/benchmark.h>

#include "bench_common/fig4.h"

int main(int argc, char** argv) {
  xqmft::RegisterFig4Benchmarks("q01", /*include_table1_datasets=*/false);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
