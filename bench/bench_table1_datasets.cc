// Table 1: the benchmark inputs — size and depth per dataset, with
// attribute nodes encoded as elements. This bench prints the Table 1
// columns for the generated datasets and measures generation and parse
// throughput per corpus.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "data/generators.h"
#include "util/strings.h"
#include "xml/sax_parser.h"

using namespace xqmft;

namespace {

constexpr DatasetKind kKinds[] = {DatasetKind::kXmark, DatasetKind::kTreebank,
                                  DatasetKind::kMedline,
                                  DatasetKind::kProtein};

std::size_t TargetBytes() {
  const char* env = std::getenv("XQMFT_BENCH_T1_MB");
  long mb = env != nullptr ? std::atol(env) : 4;
  return static_cast<std::size_t>(mb > 0 ? mb : 4) * 1024 * 1024;
}

void PrintTable1() {
  std::printf("\nTable 1: input XML files for benchmark "
              "(scaled; paper: XMark any/13, TreeBank 86MB/37, "
              "Medline 174MB/8, Protein 684MB/8)\n");
  std::printf("%-12s %12s %12s %10s %8s\n", "dataset", "size", "elements",
              "texts", "depth");
  for (DatasetKind kind : kKinds) {
    Result<std::string> path = EnsureDataset(kind, TargetBytes());
    if (!path.ok()) {
      std::fprintf(stderr, "%s: %s\n", DatasetName(kind),
                   path.status().ToString().c_str());
      continue;
    }
    Result<DatasetStats> stats = ScanDatasetFile(path.value());
    if (!stats.ok()) {
      std::fprintf(stderr, "%s: %s\n", DatasetName(kind),
                   stats.status().ToString().c_str());
      continue;
    }
    std::printf("%-12s %12s %12zu %10zu %8zu\n", DatasetName(kind),
                HumanBytes(stats.value().bytes).c_str(),
                stats.value().elements, stats.value().texts,
                stats.value().depth);
  }
  std::printf("\n");
}

void BenchGenerate(benchmark::State& state, DatasetKind kind) {
  std::size_t bytes = TargetBytes();
  for (auto _ : state) {
    Result<std::string> xml = GenerateDatasetString(kind, bytes, 7);
    if (!xml.ok()) {
      state.SkipWithError(xml.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(xml.value().data());
    state.SetBytesProcessed(state.bytes_processed() +
                            static_cast<int64_t>(xml.value().size()));
  }
}

void BenchParse(benchmark::State& state, DatasetKind kind) {
  Result<std::string> path = EnsureDataset(kind, TargetBytes());
  if (!path.ok()) {
    state.SkipWithError(path.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    Result<DatasetStats> stats = ScanDatasetFile(path.value());
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return;
    }
    state.SetBytesProcessed(state.bytes_processed() +
                            static_cast<int64_t>(stats.value().bytes));
  }
}

}  // namespace

int main(int argc, char** argv) {
  PrintTable1();
  for (DatasetKind kind : kKinds) {
    benchmark::RegisterBenchmark(
        StrFormat("table1/generate/%s", DatasetName(kind)).c_str(),
        [kind](benchmark::State& st) { BenchGenerate(st, kind); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        StrFormat("table1/parse/%s", DatasetName(kind)).c_str(),
        [kind](benchmark::State& st) { BenchParse(st, kind); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
