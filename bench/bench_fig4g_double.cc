// Figure 4(g): doubling query — copies the input twice.
//
// Regenerates the sub-figure's two series (elapsed time, peak memory) for
// MFT (no opt), MFT (opt) and the GCX baseline over growing inputs. See
// src/bench_common/fig4.h for the environment knobs.
#include <benchmark/benchmark.h>

#include "bench_common/fig4.h"

int main(int argc, char** argv) {
  xqmft::RegisterFig4Benchmarks("double", /*include_table1_datasets=*/true);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
