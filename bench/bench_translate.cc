// Theorem 1: the translation from MinXQuery to MFTs runs in time O(|P|).
//
// This bench builds families of programs of growing size — deeply nested
// for-loops, wide element constructors, and long paths — and measures
// translation time and the size ratio |M_P| / |P|, which stays bounded for
// a linear-time construction.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "mft/mft.h"
#include "translate/translate.h"
#include "util/strings.h"
#include "xquery/ast.h"

using namespace xqmft;

namespace {

// Nested for-loops: for $v1 in $input/a return <r>{for $v2 in $v1/a ...}.
std::string NestedForQuery(int depth) {
  std::string inner = "$v" + std::to_string(depth) + "/text()";
  for (int i = depth; i >= 1; --i) {
    std::string var = "$v" + std::to_string(i);
    std::string outer_var = i == 1 ? "$input" : "$v" + std::to_string(i - 1);
    inner = "for " + var + " in " + outer_var + "/a return <r>{" + inner +
            "}</r>";
  }
  return "<out>{" + inner + "}</out>";
}

// Wide constructor: <out><e>1</e><e>2</e>...</out>.
std::string WideQuery(int width) {
  std::string q = "<out>";
  for (int i = 0; i < width; ++i) {
    q += "<e" + std::to_string(i) + ">x</e" + std::to_string(i) + ">";
  }
  q += "</out>";
  return q;
}

// Long path: <out>{$input/a/a/.../a}</out>.
std::string LongPathQuery(int steps) {
  std::string q = "<out>{$input";
  for (int i = 0; i < steps; ++i) q += "/a";
  q += "}</out>";
  return q;
}

void PrintRatioTable() {
  std::printf("\nTheorem 1: |M_P| / |P| stays bounded (linear translation)\n");
  std::printf("%-12s %8s %8s %8s %8s\n", "family", "n", "|P|", "|M_P|",
              "ratio");
  struct Family {
    const char* name;
    std::string (*gen)(int);
    std::vector<int> ns;
  } families[] = {
      {"nested-for", NestedForQuery, {2, 4, 8, 16}},
      {"wide", WideQuery, {8, 16, 32, 64}},
      {"long-path", LongPathQuery, {4, 8, 16, 32}},
  };
  for (const Family& fam : families) {
    for (int n : fam.ns) {
      auto q = ParseQuery(fam.gen(n));
      if (!q.ok()) continue;
      auto m = TranslateQuery(*q.value());
      if (!m.ok()) continue;
      std::size_t qs = QuerySize(*q.value());
      std::size_t ms = m.value().Size();
      std::printf("%-12s %8d %8zu %8zu %8.1f\n", fam.name, n, qs, ms,
                  static_cast<double>(ms) / static_cast<double>(qs));
    }
  }
  std::printf("\n");
}

void BenchTranslate(benchmark::State& state, std::string (*gen)(int)) {
  int n = static_cast<int>(state.range(0));
  std::string text = gen(n);
  auto q = ParseQuery(text);
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  std::size_t msize = 0;
  for (auto _ : state) {
    auto m = TranslateQuery(*q.value());
    if (!m.ok()) {
      state.SkipWithError(m.status().ToString().c_str());
      return;
    }
    msize = m.value().Size();
    benchmark::DoNotOptimize(msize);
  }
  state.counters["query_size"] = static_cast<double>(QuerySize(*q.value()));
  state.counters["mft_size"] = static_cast<double>(msize);
}

}  // namespace

int main(int argc, char** argv) {
  PrintRatioTable();
  for (int n : {2, 4, 8, 16}) {
    benchmark::RegisterBenchmark("translate/nested_for",
                                 [](benchmark::State& st) {
                                   BenchTranslate(st, NestedForQuery);
                                 })
        ->Arg(n)
        ->Unit(benchmark::kMicrosecond);
  }
  for (int n : {16, 64, 256}) {
    benchmark::RegisterBenchmark(
        "translate/wide",
        [](benchmark::State& st) { BenchTranslate(st, WideQuery); })
        ->Arg(n)
        ->Unit(benchmark::kMicrosecond);
  }
  for (int n : {8, 32, 128}) {
    benchmark::RegisterBenchmark(
        "translate/long_path",
        [](benchmark::State& st) { BenchTranslate(st, LongPathQuery); })
        ->Arg(n)
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
