// Execution-lowering benchmark: the table engine vs the lowered opcode
// engine (lower/ops_engine) on the Figure 3 corpus. The parameter-free
// queries (q02, q13, double, fourstar, deepdup) lower fully; the predicate
// queries (q01, q04, q16, q17) lower hybrid — rope-register opcodes for
// their accumulating parameters plus table-machine bridge sub-runs at the
// selector sites — so every corpus query now has an ops point.
//
// Two input shapes per query:
//
//   lower_xml/<q>/xmark_<M>MB/engine:{table,ops,ops_nosimd}
//       text XML streamed through the SAX parser per iteration — the
//       end-to-end serving shape. ops_nosimd disables the SIMD char-class
//       scanners (xml/char_class.h), isolating the lexer fast path's
//       contribution from the engine swap.
//   lower_pretok/<q>/xmark_<M>MB/engine:{table,ops}
//       a pre-tokenized event cache — tokenization paid once outside the
//       loop, so the delta is the engine core alone (cell building +
//       thunk forcing vs opcode programs + arena segments).
//
// Environment knobs:
//   XQMFT_BENCH_LOWER_SIZE_MB   XMark scale (default 4)
//   XQMFT_BENCH_LOWER_QUERIES   comma list of query ids (default all
//                               lowerable corpus queries)
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common/queries.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "lower/lower.h"
#include "stream/engine.h"
#include "util/strings.h"
#include "xml/char_class.h"
#include "xml/events.h"
#include "xml/pretok.h"
#include "xml/sax_parser.h"

namespace xqmft {
namespace {

std::size_t EnvCount(const char* name, std::size_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr) return def;
  long long n = std::atoll(v);
  return n > 0 ? static_cast<std::size_t>(n) : def;
}

std::vector<std::string> QueryList() {
  const char* env = std::getenv("XQMFT_BENCH_LOWER_QUERIES");
  std::string spec =
      env != nullptr
          ? env
          : "q01,q02,q04,q13,q16,q17,double,fourstar,deepdup";
  std::vector<std::string> out;
  for (const std::string& part : SplitString(spec, ',')) {
    if (!part.empty()) out.push_back(part);
  }
  return out;
}

Result<std::string> EnsurePretok(const std::string& xml_path) {
  std::string ptk = xml_path + ".ptk";
  if (PretokCacheValid(ptk, xml_path)) return ptk;
  XQMFT_RETURN_NOT_OK(PretokenizeXmlFile(xml_path, ptk));
  return ptk;
}

struct LowerConfig {
  const BenchQuery* query;
  std::string path;     ///< XML file, or pretok cache when `pretok`
  bool pretok;
  EngineChoice engine;
  bool simd;            ///< SIMD scanners on (only meaningful for XML)
};

void BenchLower(benchmark::State& state, const LowerConfig& cfg) {
  Result<std::unique_ptr<CompiledQuery>> cq =
      CompiledQuery::Compile(cfg.query->text);
  if (!cq.ok()) {
    state.SkipWithError(cq.status().ToString().c_str());
    return;
  }
  StreamOptions options = cq.value()->plan()->options().stream;
  options.engine = cfg.engine;

  const bool simd_was = SimdScanEnabled();
  SetSimdScanEnabled(cfg.simd);
  StreamStats stats;
  for (auto _ : state) {
    CountingSink sink;
    Status st;
    if (cfg.pretok) {
      Result<std::unique_ptr<PretokSource>> events =
          PretokSource::OpenFile(cfg.path);
      if (!events.ok()) {
        state.SkipWithError(events.status().ToString().c_str());
        SetSimdScanEnabled(simd_was);
        return;
      }
      st = StreamTransformEvents(cq.value()->mft(), events.value().get(),
                                 &sink, options, &stats);
    } else {
      Result<std::unique_ptr<ByteSource>> source =
          MmapSource::Open(cfg.path);
      if (!source.ok()) {
        state.SkipWithError(source.status().ToString().c_str());
        SetSimdScanEnabled(simd_was);
        return;
      }
      st = StreamTransform(cq.value()->mft(), source.value().get(), &sink,
                           options, &stats);
    }
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      SetSimdScanEnabled(simd_was);
      return;
    }
  }
  SetSimdScanEnabled(simd_was);

  state.counters["peak_mem_B"] = static_cast<double>(stats.peak_bytes);
  state.counters["out_events"] = static_cast<double>(stats.output_events);
  state.counters["bytes_in"] = static_cast<double>(stats.bytes_in);
  state.counters["cells_arena"] = static_cast<double>(stats.cells_arena);
  state.counters["cells_refcounted"] =
      static_cast<double>(stats.cells_created);
  state.counters["ops_engine"] = stats.used_ops_engine ? 1.0 : 0.0;
  state.counters["hybrid"] = stats.hybrid_plan ? 1.0 : 0.0;
  state.counters["bridge_runs"] = static_cast<double>(stats.bridge_runs);
  state.SetBytesProcessed(
      static_cast<int64_t>(stats.bytes_in * state.iterations()));
}

void RegisterAll() {
  std::size_t size_bytes =
      EnvCount("XQMFT_BENCH_LOWER_SIZE_MB", 4) * 1024 * 1024;
  Result<std::string> xml = EnsureDataset(DatasetKind::kXmark, size_bytes);
  if (!xml.ok()) {
    std::fprintf(stderr, "bench_lower: %s\n", xml.status().ToString().c_str());
    return;
  }
  Result<std::string> ptk = EnsurePretok(xml.value());
  if (!ptk.ok()) {
    std::fprintf(stderr, "bench_lower: %s\n", ptk.status().ToString().c_str());
    return;
  }
  std::size_t mb = size_bytes >> 20;

  struct Mode {
    const char* tag;
    EngineChoice engine;
    bool simd;
  };
  const Mode kXmlModes[] = {{"table", EngineChoice::kTable, true},
                            {"ops", EngineChoice::kOps, true},
                            {"ops_nosimd", EngineChoice::kOps, false}};
  const Mode kPretokModes[] = {{"table", EngineChoice::kTable, true},
                               {"ops", EngineChoice::kOps, true}};

  for (const std::string& id : QueryList()) {
    const BenchQuery& bq = QueryById(id);
    for (const Mode& m : kXmlModes) {
      LowerConfig cfg{&bq, xml.value(), /*pretok=*/false, m.engine, m.simd};
      benchmark::RegisterBenchmark(
          StrFormat("lower_xml/%s/xmark_%zuMB/engine:%s", bq.id, mb, m.tag)
              .c_str(),
          [cfg](benchmark::State& st) { BenchLower(st, cfg); })
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime();
    }
    for (const Mode& m : kPretokModes) {
      LowerConfig cfg{&bq, ptk.value(), /*pretok=*/true, m.engine, m.simd};
      benchmark::RegisterBenchmark(
          StrFormat("lower_pretok/%s/xmark_%zuMB/engine:%s", bq.id, mb,
                    m.tag)
              .c_str(),
          [cfg](benchmark::State& st) { BenchLower(st, cfg); })
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime();
    }
  }
}

}  // namespace
}  // namespace xqmft

int main(int argc, char** argv) {
  xqmft::RegisterAll();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
