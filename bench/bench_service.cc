// Compile-amortization curves for the serving layer (src/service/).
//
// The paper's serving pitch: compile the query once, stream arbitrarily
// many documents. These series measure exactly that margin:
//
//   compile/<q>
//       pure compile cost (parse + translate + optimize + dispatch) — the
//       price a cache hit avoids. Reported as the compile_ms counter too.
//   streammany/<q>/xmark_<M>MBx<K>
//       pure stream cost: a pre-built CompiledPlan serving the K-document
//       batch directly (no cache in the path). The floor the service
//       converges to.
//   service_warm/<q>/xmark_<M>MBx<K>
//       the full QueryService request path with a warm cache: every
//       iteration is one request for K documents served from the cached
//       plan. The acceptance point: within noise of streammany for K >= 8
//       (the cache lookup is one mutex + map probe per request).
//   service_cold/<q>/xmark_<M>MBx<K>
//       the cache cleared before every request: each iteration pays
//       compile + stream — the gap to service_warm is the amortized cost,
//       reported per-iteration in the compile_ms counter.
//   service_mix/<Q>q/xmark_<M>MBx<K>
//       a Q-query round-robin over one warm cache (K documents per
//       request): the multi-tenant shape; compiles stay at Q however many
//       iterations run.
//
// Environment knobs:
//   XQMFT_BENCH_SVC_SIZE_MB   per-document XMark size (default 1)
//   XQMFT_BENCH_SVC_ITEMS     documents per request (default 8)
//   XQMFT_BENCH_SVC_QUERY     query id (default q01)
//   XQMFT_BENCH_SVC_THREADS   worker threads per request (default 1)
//   XQMFT_BENCH_SVC_QUERIES   queries in the mix series (default 4)
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common/queries.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "service/query_service.h"
#include "util/strings.h"
#include "xml/events.h"

namespace xqmft {
namespace {

std::size_t EnvCount(const char* name, std::size_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr) return def;
  long long n = std::atoll(v);
  return n > 0 ? static_cast<std::size_t>(n) : def;
}

struct SvcConfig {
  std::string query_id;
  std::string xml_path;
  std::size_t items;
  std::size_t threads;
};

void ReportStreamCounters(benchmark::State& state, const StreamStats& total) {
  state.counters["peak_mem_B"] = static_cast<double>(total.peak_bytes);
  state.counters["out_events"] = static_cast<double>(total.output_events);
  state.counters["bytes_in"] = static_cast<double>(total.bytes_in);
  state.SetBytesProcessed(
      static_cast<int64_t>(total.bytes_in * state.iterations()));
}

void BenchCompile(benchmark::State& state, const std::string& query_id) {
  const BenchQuery& bq = QueryById(query_id);
  double total_ms = 0.0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    auto plan = CompiledPlan::Compile(bq.text);
    total_ms += std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    if (!plan.ok()) {
      state.SkipWithError(plan.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(plan.value().get());
  }
  // Compile *is* the measurement here: surface it in the same column the
  // service series report so bench_runner gates them uniformly.
  state.counters["compile_ms"] =
      total_ms / static_cast<double>(state.iterations());
}

ServiceRequest RequestFor(const SvcConfig& cfg, const std::string& query) {
  ServiceRequest request;
  request.query = query;
  request.inputs.assign(cfg.items, ParallelInput::XmlFile(cfg.xml_path));
  request.threads = cfg.threads;
  return request;
}

void BenchStreamMany(benchmark::State& state, const SvcConfig& cfg) {
  const BenchQuery& bq = QueryById(cfg.query_id);
  auto plan = CompiledPlan::Compile(bq.text);
  if (!plan.ok()) {
    state.SkipWithError(plan.status().ToString().c_str());
    return;
  }
  std::vector<ParallelInput> inputs(cfg.items,
                                    ParallelInput::XmlFile(cfg.xml_path));
  ParallelOptions par;
  par.threads = cfg.threads;
  std::vector<StreamStats> stats;
  for (auto _ : state) {
    CountingSink sink;
    Status st = plan.value()->StreamMany(inputs, &sink, par, &stats);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  ReportStreamCounters(state, AggregateStreamStats(stats));
  state.counters["compile_ms"] = 0.0;
}

void BenchService(benchmark::State& state, const SvcConfig& cfg, bool warm) {
  const BenchQuery& bq = QueryById(cfg.query_id);
  QueryService service;
  ServiceRequest request = RequestFor(cfg, bq.text);
  if (warm) {
    // Prime the cache so every measured iteration is a hit.
    CountingSink sink;
    Status st = service.Execute(request, &sink);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  ServiceRequestStats stats;
  double compile_ms = 0.0;
  for (auto _ : state) {
    if (!warm) {
      state.PauseTiming();
      service.cache()->Clear();
      state.ResumeTiming();
    }
    CountingSink sink;
    Status st = service.Execute(request, &sink, &stats);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    compile_ms += stats.compile_ms;
  }
  ReportStreamCounters(state, stats.total);
  state.counters["compile_ms"] =
      compile_ms / static_cast<double>(state.iterations());
  QueryCacheStats cache = service.cache()->stats();
  state.counters["cache_hits"] = static_cast<double>(cache.hits);
  state.counters["cache_compiles"] = static_cast<double>(cache.compiles);
}

void BenchServiceMix(benchmark::State& state, const SvcConfig& cfg,
                     std::size_t query_count) {
  const std::vector<BenchQuery>& corpus = Figure3Queries();
  if (query_count > corpus.size()) query_count = corpus.size();
  QueryService service;
  std::vector<ServiceRequest> requests;
  for (std::size_t q = 0; q < query_count; ++q) {
    requests.push_back(RequestFor(cfg, corpus[q].text));
  }
  // Warm every query once; the warm-up cycle also yields the deterministic
  // counters (one full pass over the mix), so the reported numbers do not
  // depend on which query the timed loop happened to end on.
  ServiceRequestStats stats;
  StreamStats cycle;
  for (const ServiceRequest& request : requests) {
    CountingSink sink;
    Status st = service.Execute(request, &sink, &stats);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    if (stats.total.peak_bytes > cycle.peak_bytes) {
      cycle.peak_bytes = stats.total.peak_bytes;
    }
    cycle.bytes_in += stats.total.bytes_in;
    cycle.output_events += stats.total.output_events;
  }
  std::size_t next = 0;
  double compile_ms = 0.0;
  for (auto _ : state) {
    CountingSink sink;
    Status st = service.Execute(requests[next], &sink, &stats);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    compile_ms += stats.compile_ms;
    next = (next + 1) % requests.size();
  }
  state.counters["peak_mem_B"] = static_cast<double>(cycle.peak_bytes);
  state.counters["out_events"] =
      static_cast<double>(cycle.output_events) /
      static_cast<double>(requests.size());
  state.counters["bytes_in"] = static_cast<double>(cycle.bytes_in) /
                               static_cast<double>(requests.size());
  state.SetBytesProcessed(static_cast<int64_t>(
      cycle.bytes_in / requests.size() * state.iterations()));
  state.counters["compile_ms"] =
      compile_ms / static_cast<double>(state.iterations());
  state.counters["cache_compiles"] =
      static_cast<double>(service.cache()->stats().compiles);
}

void RegisterAll() {
  std::size_t size_bytes =
      EnvCount("XQMFT_BENCH_SVC_SIZE_MB", 1) * 1024 * 1024;
  std::size_t items = EnvCount("XQMFT_BENCH_SVC_ITEMS", 8);
  std::size_t threads = EnvCount("XQMFT_BENCH_SVC_THREADS", 1);
  std::size_t mix = EnvCount("XQMFT_BENCH_SVC_QUERIES", 4);
  const char* qenv = std::getenv("XQMFT_BENCH_SVC_QUERY");
  std::string query_id = qenv != nullptr ? qenv : "q01";

  Result<std::string> path = EnsureDataset(DatasetKind::kXmark, size_bytes);
  if (!path.ok()) {
    std::fprintf(stderr, "bench_service: %s\n",
                 path.status().ToString().c_str());
    return;
  }
  std::size_t mb = size_bytes >> 20;
  SvcConfig cfg{query_id, path.value(), items, threads};

  benchmark::RegisterBenchmark(
      StrFormat("compile/%s", query_id.c_str()).c_str(),
      [query_id](benchmark::State& st) { BenchCompile(st, query_id); })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      StrFormat("streammany/%s/xmark_%zuMBx%zu", query_id.c_str(), mb, items)
          .c_str(),
      [cfg](benchmark::State& st) { BenchStreamMany(st, cfg); })
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  benchmark::RegisterBenchmark(
      StrFormat("service_warm/%s/xmark_%zuMBx%zu", query_id.c_str(), mb,
                items)
          .c_str(),
      [cfg](benchmark::State& st) { BenchService(st, cfg, /*warm=*/true); })
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  benchmark::RegisterBenchmark(
      StrFormat("service_cold/%s/xmark_%zuMBx%zu", query_id.c_str(), mb,
                items)
          .c_str(),
      [cfg](benchmark::State& st) { BenchService(st, cfg, /*warm=*/false); })
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  benchmark::RegisterBenchmark(
      StrFormat("service_mix/%zuq/xmark_%zuMBx%zu", mix, mb, items).c_str(),
      [cfg, mix](benchmark::State& st) { BenchServiceMix(st, cfg, mix); })
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
}

}  // namespace
}  // namespace xqmft

int main(int argc, char** argv) {
  xqmft::RegisterAll();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
