// Parser front-end microbenchmarks: raw scan throughput (MB/s) and event
// rates for the three input paths —
//
//   sax/*          bulk-scanning lexer over an in-memory (mapped) region
//   sax_chunked/*  same lexer behind a Read()-only source (refill path,
//                  what stdin/pipe input pays)
//   pretok/*       pre-tokenized binary events, zero scanning
//
// plus a text-heavy document isolating the memchr text scan and a
// markup-heavy one isolating name/attr scanning. items_per_second = events/s
// and bytes_per_second = input MB/s in the JSON report; the BENCH_pr3
// acceptance bar is pretok >= 2x sax on events/s over XMark.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>

#include "data/generators.h"
#include "xml/events.h"
#include "xml/pretok.h"
#include "xml/sax_parser.h"

namespace xqmft {
namespace {

std::size_t EnvMb(const char* name, std::size_t def_mb) {
  const char* v = std::getenv(name);
  if (v == nullptr) return def_mb * 1024 * 1024;
  return static_cast<std::size_t>(std::atoll(v)) * 1024 * 1024;
}

const std::string& XmarkDoc() {
  static const std::string doc = [] {
    auto r = GenerateDatasetString(DatasetKind::kXmark,
                                   EnvMb("XQMFT_BENCH_PARSER_MB", 4), 7);
    return r.ok() ? std::move(r).value() : std::string();
  }();
  return doc;
}

// A document whose bytes are almost all character data: the text-until-'<'
// scan dominates, giving the raw bulk-scan MB/s ceiling.
const std::string& TextHeavyDoc() {
  static const std::string doc = [] {
    std::string d = "<doc>";
    std::string line = "The quick brown fox jumps over the lazy dog; ";
    std::string para;
    for (int i = 0; i < 80; ++i) para += line;
    for (int i = 0; i < 200; ++i) {
      d += "<p>";
      d += para;
      d += "</p>";
    }
    d += "</doc>";
    return d;
  }();
  return doc;
}

// A document that is almost all tags and attributes: names and attr values
// dominate, exercising the class-table and quote scans.
const std::string& MarkupHeavyDoc() {
  static const std::string doc = [] {
    std::string d = "<doc>";
    for (int i = 0; i < 40000; ++i) {
      d += "<item id=\"00000000\" cat=\"tools\"><v/><v/></item>";
    }
    d += "</doc>";
    return d;
  }();
  return doc;
}

// Read()-only wrapper: hides Contents() so the parser takes the refill path.
class OpaqueSource : public ByteSource {
 public:
  explicit OpaqueSource(std::string_view s) : s_(s) {}
  std::size_t Read(char* buf, std::size_t n) override {
    std::size_t avail = s_.size() - pos_;
    std::size_t take = n < avail ? n : avail;
    std::memcpy(buf, s_.data() + pos_, take);
    pos_ += take;
    return take;
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
};

template <typename MakeSource>
void DrainParser(benchmark::State& state, const std::string& doc,
                 const MakeSource& make) {
  if (doc.empty()) {
    state.SkipWithError("document generation failed");
    return;
  }
  std::size_t events = 0;
  for (auto _ : state) {
    auto source = make(doc);
    SaxParser parser(&*source);
    XmlEvent ev;
    events = 0;
    while (true) {
      Status st = parser.Next(&ev);
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
      if (ev.type == XmlEventType::kEndOfDocument) break;
      ++events;
      benchmark::DoNotOptimize(ev.text.data());
    }
  }
  state.counters["events"] = static_cast<double>(events);
  state.SetItemsProcessed(static_cast<int64_t>(events * state.iterations()));
  state.SetBytesProcessed(
      static_cast<int64_t>(doc.size() * state.iterations()));
}

void BenchSax(benchmark::State& state, const std::string& doc) {
  DrainParser(state, doc, [](const std::string& d) {
    return std::make_unique<StringSource>(d);
  });
}

void BenchSaxChunked(benchmark::State& state, const std::string& doc) {
  DrainParser(state, doc, [](const std::string& d) {
    return std::make_unique<OpaqueSource>(d);
  });
}

void BenchPretok(benchmark::State& state, const std::string& doc) {
  if (doc.empty()) {
    state.SkipWithError("document generation failed");
    return;
  }
  std::string pretok;
  {
    StringSource src(doc);
    Status st = PretokenizeXml(&src, {}, &pretok);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  std::size_t events = 0;
  for (auto _ : state) {
    PretokSource src(pretok);
    XmlEvent ev;
    events = 0;
    while (true) {
      Status st = src.Next(&ev);
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
      if (ev.type == XmlEventType::kEndOfDocument) break;
      ++events;
      benchmark::DoNotOptimize(ev.text.data());
    }
  }
  state.counters["events"] = static_cast<double>(events);
  state.counters["pretok_bytes"] = static_cast<double>(pretok.size());
  state.SetItemsProcessed(static_cast<int64_t>(events * state.iterations()));
  // Bytes are the *XML* bytes this pass replaced, so MB/s columns compare
  // like for like across the three series.
  state.SetBytesProcessed(
      static_cast<int64_t>(doc.size() * state.iterations()));
}

void Register() {
  struct Doc {
    const char* name;
    const std::string& (*get)();
  };
  const Doc docs[] = {
      {"xmark", XmarkDoc},
      {"text_heavy", TextHeavyDoc},
      {"markup_heavy", MarkupHeavyDoc},
  };
  for (const Doc& d : docs) {
    benchmark::RegisterBenchmark(
        (std::string("sax/") + d.name).c_str(),
        [get = d.get](benchmark::State& st) { BenchSax(st, get()); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (std::string("sax_chunked/") + d.name).c_str(),
        [get = d.get](benchmark::State& st) { BenchSaxChunked(st, get()); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (std::string("pretok/") + d.name).c_str(),
        [get = d.get](benchmark::State& st) { BenchPretok(st, get()); })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace xqmft

int main(int argc, char** argv) {
  xqmft::Register();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
