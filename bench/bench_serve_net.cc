// Latency-under-load for the socket front end (src/net/).
//
// An in-process NetServer on an ephemeral loopback port is driven by an
// OPEN-loop generator: requests are fired on a fixed schedule whatever the
// server's completion rate, and each latency is measured from the request's
// *scheduled* send time — so queueing delay (and coordinated omission) is
// part of the number, which is the whole point of serving benchmarks.
//
//   serve_net/open_loop/<R>rps/<C>conn
//       C persistent connections offering R requests/s in aggregate, each
//       request a cache-warm tiny-document query. Counters: p50_ms / p99_ms
//       (scheduled-send to response), req_per_s (completed ok over the
//       run's wall time), shed (overload rejections observed).
//   serve_net/overload/<R>rps
//       deliberately past capacity (1 worker, queue_limit 4): shows load
//       shedding doing its job — the shed counter is the product here, and
//       p99 stays bounded because rejected requests answer immediately
//       instead of queueing without bound.
//   serve_net/coalesce/<R>rps/window<W>ms
//       same-document load: every request streams one shared ~90 KB inline
//       document, offered past a single worker's independent capacity.
//       window0 is the uncoalesced baseline (every request re-tokenizes
//       the document); with the window on, the worker gathers queued
//       same-document requests into one shared multi-query pass. The
//       product is parses_per_req (document tokenizations per completed
//       request, from the server's parses_saved counter): 1.0 at window 0,
//       well under 1.0 with the window on — with p50/p99 alongside to show
//       the latency side of the trade.
//
// Environment knobs:
//   XQMFT_BENCH_NET_RATES    comma-separated open-loop rungs (default
//                            500,2000,8000)
//   XQMFT_BENCH_NET_CONNS    client connections (default 4)
//   XQMFT_BENCH_NET_WORKERS  server worker threads (default 2)
#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/server.h"
#include "util/strings.h"

namespace xqmft {
namespace {

using Clock = std::chrono::steady_clock;

// One request: tiny inline document, cache-warm query. Small on purpose —
// the series measures the serving layer (admission, queueing, delivery),
// not stream throughput, which bench_service already covers.
std::string RequestLine(std::uint64_t id) {
  return StrFormat(
      "{\"id\":%llu,\"query\":\"<out>{$input//a}</out>\","
      "\"xml\":[\"<doc><a>1</a><b>2</b><a>3</a></doc>\"]}\n",
      static_cast<unsigned long long>(id));
}

// The coalescing rung's request: the SAME parse-heavy inline document on
// every request (that is what makes them coalescible), with a query that
// matches almost nothing so the cost is tokenization, not response bytes.
const std::string& CoalesceDoc() {
  static const std::string* doc = [] {
    auto* d = new std::string("<doc>");
    for (int i = 0; i < 8000; ++i) d->append("<b>filler</b>");
    d->append("<a>hit</a></doc>");
    return d;
  }();
  return *doc;
}

std::string CoalesceRequestLine(std::uint64_t id) {
  return StrFormat("{\"id\":%llu,\"query\":\"<out>{$input//a}</out>\","
                   "\"xml\":[\"%s\"]}\n",
                   static_cast<unsigned long long>(id),
                   CoalesceDoc().c_str());
}

// Minimal framed-protocol client: header line, then a "bytes":N payload
// frame when present (error and shed responses are header-only).
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }
  Client(Client&& other) noexcept : fd_(other.fd_), buf_(std::move(other.buf_)) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      buf_ = std::move(other.buf_);
      other.fd_ = -1;
    }
    return *this;
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  static Client ConnectTcp(int port) {
    Client c;
    c.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (c.fd_ < 0) return c;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(c.fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      c.Close();
    }
    return c;
  }

  bool ok() const { return fd_ >= 0; }

  bool Send(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                         MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads one response (header + payload frame if any) into *header;
  /// payload bytes are consumed and discarded.
  bool ReadResponse(std::string* header) {
    if (!ReadLine(header)) return false;
    std::size_t pos = header->find("\"bytes\":");
    if (pos == std::string::npos) return true;
    std::size_t payload =
        static_cast<std::size_t>(std::atoll(header->c_str() + pos + 8));
    return Skip(payload + 1);  // payload plus its trailing newline
  }

 private:
  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool Fill() {
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  bool ReadLine(std::string* line) {
    for (;;) {
      std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        line->assign(buf_, 0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      if (!Fill()) return false;
    }
  }

  bool Skip(std::size_t n) {
    while (buf_.size() < n) {
      if (!Fill()) return false;
    }
    buf_.erase(0, n);
    return true;
  }

  int fd_ = -1;
  std::string buf_;
};

struct LoadResult {
  std::vector<double> lat_ms;  ///< scheduled-send to response, ok only
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  double elapsed_s = 0.0;
};

/// Offers `total` requests at `rate`/s spread over `conns` connections.
/// Each connection pairs a pacing sender thread with a reader thread;
/// per-connection responses arrive in request order, so the reader matches
/// them FIFO against the sender's scheduled timestamps.
LoadResult RunLoad(int port, double rate, std::size_t total,
                   std::size_t conns,
                   std::string (*line)(std::uint64_t) = RequestLine) {
  struct ConnState {
    Client client;
    std::mutex mu;
    std::deque<Clock::time_point> scheduled;
    std::vector<double> lat_ms;
    std::uint64_t ok = 0, shed = 0, errors = 0;
    std::size_t count = 0;
  };
  std::vector<ConnState> states(conns);
  for (std::size_t c = 0; c < conns; ++c) {
    states[c].client = Client::ConnectTcp(port);
    states[c].count = total / conns + (c < total % conns ? 1 : 0);
  }
  const std::chrono::duration<double> conn_interval(
      static_cast<double>(conns) / rate);
  const std::chrono::duration<double> stagger(1.0 / rate);
  const Clock::time_point start = Clock::now();

  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < conns; ++c) {
    ConnState& st = states[c];
    if (!st.client.ok()) {
      st.errors += st.count;
      continue;
    }
    Clock::time_point first =
        start + std::chrono::duration_cast<Clock::duration>(
                    stagger * static_cast<double>(c));
    threads.emplace_back([&st, first, conn_interval, c, line]() {
      for (std::size_t i = 0; i < st.count; ++i) {
        Clock::time_point sched =
            first + std::chrono::duration_cast<Clock::duration>(
                        conn_interval * static_cast<double>(i));
        std::this_thread::sleep_until(sched);
        {
          std::lock_guard<std::mutex> lock(st.mu);
          st.scheduled.push_back(sched);
        }
        if (!st.client.Send(line(c * 1000000 + i))) {
          ++st.errors;
          return;
        }
      }
    });
    threads.emplace_back([&st]() {
      std::string header;
      for (std::size_t i = 0; i < st.count; ++i) {
        if (!st.client.ReadResponse(&header)) {
          st.errors += st.count - i;
          return;
        }
        Clock::time_point sched;
        {
          std::lock_guard<std::mutex> lock(st.mu);
          sched = st.scheduled.front();
          st.scheduled.pop_front();
        }
        double ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                              sched)
                        .count();
        if (header.find("\"ok\":true") != std::string::npos) {
          ++st.ok;
          st.lat_ms.push_back(ms);
        } else if (header.find("overloaded") != std::string::npos) {
          ++st.shed;
        } else {
          ++st.errors;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  LoadResult result;
  result.elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (ConnState& st : states) {
    result.ok += st.ok;
    result.shed += st.shed;
    result.errors += st.errors;
    result.lat_ms.insert(result.lat_ms.end(), st.lat_ms.begin(),
                         st.lat_ms.end());
  }
  return result;
}

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct NetCfg {
  std::size_t conns;
  std::size_t workers;
  std::size_t queue_limit;
};

void BenchServeNet(benchmark::State& state, double rate, NetCfg cfg) {
  NetServerOptions options;
  options.tcp_port = 0;
  options.workers = cfg.workers;
  options.queue_limit = cfg.queue_limit;
  NetServer server(options);
  Status st = server.Start();
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  std::thread serving([&server]() {
    Status run = server.Run();
    (void)run;
  });

  // Warm the plan cache so measured requests are all cache hits; the first
  // request's compile would otherwise dominate the low-rate rungs.
  {
    Client warm = Client::ConnectTcp(server.port());
    std::string header;
    if (!warm.ok() || !warm.Send(RequestLine(0)) ||
        !warm.ReadResponse(&header)) {
      state.SkipWithError("warm-up request failed");
      server.RequestShutdown();
      serving.join();
      return;
    }
  }

  // ~0.5s of offered load per iteration, with a floor so low rungs still
  // collect enough samples for a meaningful p99.
  const std::size_t total =
      std::max<std::size_t>(200, static_cast<std::size_t>(rate / 2));
  LoadResult sum;
  for (auto _ : state) {
    LoadResult one = RunLoad(server.port(), rate, total, cfg.conns);
    sum.ok += one.ok;
    sum.shed += one.shed;
    sum.errors += one.errors;
    sum.elapsed_s += one.elapsed_s;
    sum.lat_ms.insert(sum.lat_ms.end(), one.lat_ms.begin(),
                      one.lat_ms.end());
  }
  server.RequestShutdown();
  serving.join();

  if (sum.errors > 0) {
    state.SkipWithError(
        StrFormat("%llu requests errored",
                  static_cast<unsigned long long>(sum.errors))
            .c_str());
    return;
  }
  std::sort(sum.lat_ms.begin(), sum.lat_ms.end());
  state.counters["p50_ms"] = Percentile(sum.lat_ms, 0.50);
  state.counters["p99_ms"] = Percentile(sum.lat_ms, 0.99);
  state.counters["req_per_s"] =
      sum.elapsed_s > 0.0 ? static_cast<double>(sum.ok) / sum.elapsed_s : 0.0;
  state.counters["shed"] = static_cast<double>(sum.shed);
  state.SetItemsProcessed(static_cast<int64_t>(sum.ok));
}

/// The same-document coalescing rung: one worker, a deep queue (the point
/// is coalescing, not shedding), parse-heavy identical requests offered
/// past the worker's uncoalesced capacity. Runs with the given gather
/// window; parses_per_req comes from the server's own counters (delta over
/// the measured iterations, so the warm-up request is excluded).
void BenchServeNetCoalesce(benchmark::State& state, double rate,
                           std::uint64_t window_ms) {
  NetServerOptions options;
  options.tcp_port = 0;
  options.workers = 1;
  options.queue_limit = 256;
  options.batch_window_ms = window_ms;
  options.batch_max = 16;
  NetServer server(options);
  Status st = server.Start();
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  std::thread serving([&server]() {
    Status run = server.Run();
    (void)run;
  });

  {
    Client warm = Client::ConnectTcp(server.port());
    std::string header;
    if (!warm.ok() || !warm.Send(CoalesceRequestLine(0)) ||
        !warm.ReadResponse(&header)) {
      state.SkipWithError("warm-up request failed");
      server.RequestShutdown();
      serving.join();
      return;
    }
  }

  const NetServerCounters before = server.counters();
  const std::size_t total =
      std::max<std::size_t>(400, static_cast<std::size_t>(rate / 2));
  LoadResult sum;
  for (auto _ : state) {
    LoadResult one =
        RunLoad(server.port(), rate, total, /*conns=*/4, CoalesceRequestLine);
    sum.ok += one.ok;
    sum.shed += one.shed;
    sum.errors += one.errors;
    sum.elapsed_s += one.elapsed_s;
    sum.lat_ms.insert(sum.lat_ms.end(), one.lat_ms.begin(),
                      one.lat_ms.end());
  }
  const NetServerCounters after = server.counters();
  server.RequestShutdown();
  serving.join();

  if (sum.errors > 0) {
    state.SkipWithError(
        StrFormat("%llu requests errored",
                  static_cast<unsigned long long>(sum.errors))
            .c_str());
    return;
  }
  std::sort(sum.lat_ms.begin(), sum.lat_ms.end());
  state.counters["p50_ms"] = Percentile(sum.lat_ms, 0.50);
  state.counters["p99_ms"] = Percentile(sum.lat_ms, 0.99);
  state.counters["req_per_s"] =
      sum.elapsed_s > 0.0 ? static_cast<double>(sum.ok) / sum.elapsed_s : 0.0;
  state.counters["shed"] = static_cast<double>(sum.shed);
  const std::uint64_t ok_runs = after.completed_ok - before.completed_ok;
  const std::uint64_t saved = after.parses_saved - before.parses_saved;
  state.counters["parses_saved"] = static_cast<double>(saved);
  // Every request carries exactly one document, so uncoalesced parses per
  // completed request is 1.0 by construction and coalescing subtracts
  // parses_saved from the numerator.
  state.counters["parses_per_req"] =
      ok_runs > 0 ? static_cast<double>(ok_runs - saved) /
                        static_cast<double>(ok_runs)
                  : 0.0;
  state.SetItemsProcessed(static_cast<int64_t>(sum.ok));
}

std::size_t EnvCount(const char* name, std::size_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr) return def;
  long long n = std::atoll(v);
  return n > 0 ? static_cast<std::size_t>(n) : def;
}

void RegisterAll() {
  std::size_t conns = EnvCount("XQMFT_BENCH_NET_CONNS", 4);
  std::size_t workers = EnvCount("XQMFT_BENCH_NET_WORKERS", 2);
  std::vector<double> rates;
  const char* renv = std::getenv("XQMFT_BENCH_NET_RATES");
  std::string spec = renv != nullptr ? renv : "500,2000,8000";
  for (std::size_t pos = 0; pos < spec.size();) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    double r = std::atof(spec.substr(pos, comma - pos).c_str());
    if (r > 0) rates.push_back(r);
    pos = comma + 1;
  }

  for (double rate : rates) {
    NetCfg cfg{conns, workers, /*queue_limit=*/64};
    benchmark::RegisterBenchmark(
        StrFormat("serve_net/open_loop/%drps/%zuconn",
                  static_cast<int>(rate), conns)
            .c_str(),
        [rate, cfg](benchmark::State& st) { BenchServeNet(st, rate, cfg); })
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
  }
  // Past-capacity rung: one worker, a 4-deep queue, 20k offered — the
  // point is the shed counter and a p99 that stays flat because rejections
  // answer immediately.
  NetCfg overload{conns, /*workers=*/1, /*queue_limit=*/4};
  benchmark::RegisterBenchmark(
      "serve_net/overload/20000rps",
      [overload](benchmark::State& st) {
        BenchServeNet(st, 20000.0, overload);
      })
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  // Same-document coalescing: identical rungs with the gather window off
  // (the uncoalesced baseline) and on, so the BENCH artifact carries the
  // parses_per_req and tail-latency delta side by side.
  for (std::uint64_t window_ms : {std::uint64_t{0}, std::uint64_t{4}}) {
    benchmark::RegisterBenchmark(
        StrFormat("serve_net/coalesce/3000rps/window%llums",
                  static_cast<unsigned long long>(window_ms))
            .c_str(),
        [window_ms](benchmark::State& st) {
          BenchServeNetCoalesce(st, 3000.0, window_ms);
        })
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
  }
}

}  // namespace
}  // namespace xqmft

int main(int argc, char** argv) {
  xqmft::RegisterAll();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
