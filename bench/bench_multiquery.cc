// Marginal cost per added query for single-pass multi-query execution
// (src/multiquery/), against the N-pass baseline it replaces.
//
//   multiquery/<N>q/xmark_<M>MB/proj_on
//       one shared pass: N Figure 3 plans fed from ONE tokenization of the
//       document, union projection automaton on (subtrees no plan can
//       match are skipped at the source). The headline series — its slope
//       over N is the marginal cost of an added query.
//   multiquery/<N>q/xmark_<M>MB/proj_off
//       the same pass with the skip automaton disabled: every engine sees
//       every event. The gap to proj_on is what projection buys; the gap
//       to npass is what sharing the parse buys.
//   npass/<N>q/xmark_<M>MB
//       the replaced baseline: N independent serial runs, each paying its
//       own tokenization of the same document.
//
// Queries are the first N of the Figure 3 corpus in order (q01, q02, q04,
// ...). N >= 3 therefore includes q04, whose following-sibling axis is
// unprojectable and disables the automaton for the whole run — the N=1,2
// points show projection on, the larger set sizes measure the
// shared-parse margin alone, and the proj_on/proj_off pair stays honest on
// both sides of the switch (the events_skipped counter says which side a
// point landed on).
//
// Environment knobs:
//   XQMFT_BENCH_MQ_SIZE_MB   XMark document size (default 1)
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common/queries.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "util/strings.h"
#include "xml/events.h"

namespace xqmft {
namespace {

std::size_t EnvCount(const char* name, std::size_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr) return def;
  long long n = std::atoll(v);
  return n > 0 ? static_cast<std::size_t>(n) : def;
}

// The first `n` Figure 3 plans, compiled once outside the timed loop.
bool CompileFirst(std::size_t n,
                  std::vector<std::shared_ptr<const CompiledPlan>>* plans,
                  std::string* error) {
  const std::vector<BenchQuery>& corpus = Figure3Queries();
  for (std::size_t i = 0; i < n && i < corpus.size(); ++i) {
    auto plan = CompiledPlan::Compile(corpus[i].text);
    if (!plan.ok()) {
      *error = std::string(corpus[i].id) + ": " + plan.status().ToString();
      return false;
    }
    plans->push_back(std::move(plan).value());
  }
  return true;
}

void BenchMultiQuery(benchmark::State& state, const std::string& path,
                     std::size_t n, bool projection) {
  std::vector<std::shared_ptr<const CompiledPlan>> plans;
  std::string error;
  if (!CompileFirst(n, &plans, &error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  std::vector<const CompiledPlan*> raw;
  for (const auto& p : plans) raw.push_back(p.get());
  MultiQueryOptions multi;
  multi.union_projection = projection;

  std::vector<MultiPlanResult> results;
  MultiQueryStats run_stats;
  for (auto _ : state) {
    std::vector<CountingSink> sinks(n);
    std::vector<OutputSink*> sink_ptrs;
    for (CountingSink& s : sinks) sink_ptrs.push_back(&s);
    Status st = StreamAllTransformInput(raw, ParallelInput::XmlFile(path),
                                        sink_ptrs, multi, &results,
                                        &run_stats);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  std::size_t peak = 0, out_events = 0;
  for (const MultiPlanResult& r : results) {
    if (r.stats.peak_bytes > peak) peak = r.stats.peak_bytes;
    out_events += r.stats.output_events;
  }
  state.counters["peak_mem_B"] = static_cast<double>(peak);
  state.counters["out_events"] = static_cast<double>(out_events);
  state.counters["bytes_in"] = static_cast<double>(run_stats.bytes_in);
  state.counters["queries"] = static_cast<double>(n);
  state.counters["events_total"] =
      static_cast<double>(run_stats.events_total);
  state.counters["events_skipped"] =
      static_cast<double>(run_stats.events_skipped);
  // One tokenization per iteration whatever N is — the point of the series.
  state.SetBytesProcessed(
      static_cast<int64_t>(run_stats.bytes_in * state.iterations()));
}

void BenchNPass(benchmark::State& state, const std::string& path,
                std::size_t n) {
  std::vector<std::shared_ptr<const CompiledPlan>> plans;
  std::string error;
  if (!CompileFirst(n, &plans, &error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  std::vector<ParallelInput> one_doc{ParallelInput::XmlFile(path)};
  ParallelOptions serial;
  serial.threads = 1;
  std::vector<StreamStats> stats;
  std::uint64_t bytes_per_iter = 0;
  std::size_t peak = 0;
  for (auto _ : state) {
    bytes_per_iter = 0;
    for (const auto& plan : plans) {
      CountingSink sink;
      Status st = plan->StreamMany(one_doc, &sink, serial, &stats);
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
      for (const StreamStats& s : stats) {
        bytes_per_iter += s.bytes_in;
        if (s.peak_bytes > peak) peak = s.peak_bytes;
      }
    }
  }
  state.counters["peak_mem_B"] = static_cast<double>(peak);
  state.counters["queries"] = static_cast<double>(n);
  // N tokenizations per iteration: the cost multi-query execution removes.
  state.SetBytesProcessed(
      static_cast<int64_t>(bytes_per_iter * state.iterations()));
}

void RegisterAll() {
  std::size_t size_bytes = EnvCount("XQMFT_BENCH_MQ_SIZE_MB", 1) * 1024 * 1024;
  Result<std::string> path = EnsureDataset(DatasetKind::kXmark, size_bytes);
  if (!path.ok()) {
    std::fprintf(stderr, "bench_multiquery: %s\n",
                 path.status().ToString().c_str());
    return;
  }
  std::size_t mb = size_bytes >> 20;
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                        std::size_t{8}}) {
    std::string file = path.value();
    benchmark::RegisterBenchmark(
        StrFormat("multiquery/%zuq/xmark_%zuMB/proj_on", n, mb).c_str(),
        [file, n](benchmark::State& st) {
          BenchMultiQuery(st, file, n, /*projection=*/true);
        })
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
    benchmark::RegisterBenchmark(
        StrFormat("multiquery/%zuq/xmark_%zuMB/proj_off", n, mb).c_str(),
        [file, n](benchmark::State& st) {
          BenchMultiQuery(st, file, n, /*projection=*/false);
        })
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
    benchmark::RegisterBenchmark(
        StrFormat("npass/%zuq/xmark_%zuMB", n, mb).c_str(),
        [file, n](benchmark::State& st) { BenchNPass(st, file, n); })
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
  }
}

}  // namespace
}  // namespace xqmft

int main(int argc, char** argv) {
  xqmft::RegisterAll();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
