#include "net/scheduler.h"

#include <chrono>
#include <cmath>
#include <utility>

namespace xqmft {

void RetryHint::Record(double service_ms) {
  if (service_ms < 0.0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!has_sample_) {
    ewma_ms_ = service_ms;
    has_sample_ = true;
    return;
  }
  constexpr double kAlpha = 0.2;
  ewma_ms_ = kAlpha * service_ms + (1.0 - kAlpha) * ewma_ms_;
}

std::uint64_t RetryHint::HintMs(std::size_t queue_depth) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!has_sample_) return floor_ms_;
  const double hint = std::ceil(ewma_ms_ * static_cast<double>(queue_depth));
  if (hint <= static_cast<double>(floor_ms_)) return floor_ms_;
  return static_cast<std::uint64_t>(hint);
}

double RetryHint::ewma_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return has_sample_ ? ewma_ms_ : 0.0;
}

Scheduler::Scheduler(SchedulerOptions options) : options_(options) {}

void Scheduler::Enqueue(std::shared_ptr<NetJob> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
    queued_.store(queue_.size(), std::memory_order_relaxed);
  }
  // notify_all, not _one: a worker may be mid-gather (waiting for same-key
  // stragglers) while another sits idle; both need to look.
  cv_.notify_all();
}

void Scheduler::TakeMatches(const std::string& key,
                            std::vector<std::shared_ptr<NetJob>>* group) {
  for (auto it = queue_.begin();
       it != queue_.end() && group->size() < options_.batch_max;) {
    std::shared_ptr<NetJob>& job = *it;
    // Same key, and the job can afford the window: a member whose remaining
    // deadline budget is below the gather window must run alone (it is
    // admitted here only because the leader's wait is already underway —
    // joining would spend budget it does not have).
    if (job->coalesce_key == key &&
        job->token.RemainingMs() >= options_.batch_window_ms) {
      group->push_back(std::move(job));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  queued_.store(queue_.size(), std::memory_order_relaxed);
}

bool Scheduler::DequeueGroup(std::vector<std::shared_ptr<NetJob>>* group) {
  group->clear();
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return stopped_ || !queue_.empty(); });
  if (queue_.empty()) return false;  // stopped and drained

  std::shared_ptr<NetJob> leader = std::move(queue_.front());
  queue_.pop_front();
  queued_.store(queue_.size(), std::memory_order_relaxed);

  // Coalescing off, a non-coalescable request, or a leader that cannot
  // afford the window: run it alone, exactly the pre-batching behavior.
  const bool bypass = options_.batch_window_ms == 0 || options_.batch_max <= 1 ||
                      leader->coalesce_key.empty() ||
                      leader->token.RemainingMs() < options_.batch_window_ms;
  group->push_back(std::move(leader));
  if (bypass) return true;

  const std::string& key = (*group)[0]->coalesce_key;
  TakeMatches(key, group);
  const auto window_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.batch_window_ms);
  while (group->size() < options_.batch_max && !stopped_) {
    if (cv_.wait_until(lock, window_deadline) == std::cv_status::timeout) {
      TakeMatches(key, group);
      break;
    }
    TakeMatches(key, group);
  }
  return true;
}

void Scheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  cv_.notify_all();
}

}  // namespace xqmft
