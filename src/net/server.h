// Hardened socket front end for the serving stack.
//
// NetServer multiplexes N client connections over one poll(2) event loop
// and executes their requests on a bounded worker pool, speaking exactly
// the stdin serve protocol (service/wire.h): NDJSON request lines in,
// framed responses out, per-connection responses in request order whatever
// order the workers finish in.
//
// Robustness model — the loop thread never blocks and never executes a
// query; everything that can be slow, large, or hostile is bounded:
//
//   admission    A bounded job queue. When it is full, new requests are
//                rejected immediately with {"status":"unavailable",
//                "error":"...overloaded...","retry_after_ms":N} instead of
//                queueing without bound (load shedding). The hint N is
//                load-proportional: queue depth × an EWMA of observed
//                per-request service time (floored at retry_after_ms), so
//                a deeper queue tells clients to back off longer. "cmd"
//                requests (stats polls) bypass the queue — they stay
//                answerable under full load, which is when you want them.
//   validation   A request carrying a malformed "deadline_ms" (a string,
//                zero, negative) is rejected up front with
//                {"status":"bad_request"} instead of silently running
//                without a budget.
//   batching     With batch_window_ms > 0, a worker dequeuing a request
//                gathers queued requests over the same document list
//                (net/scheduler.h) and runs them as one shared
//                multi-query pass: one tokenization per document, plans
//                deduplicated through the query cache, byte-identical
//                responses. Requests whose remaining deadline budget is
//                below the window bypass batching.
//   deadlines    "deadline_ms" is armed at ADMISSION on the job's
//                CancelToken, so time spent queued counts against the
//                budget; engines abort mid-stream via cooperative checks.
//   disconnect   A client that goes away (reset, error) has its in-flight
//                runs cancelled — the server does not keep computing
//                responses nobody will read. A half-close (shutdown(WR))
//                is the opposite contract: pending responses are computed,
//                delivered, and then the server closes.
//   slow client  Responses buffer up to max_write_buffer_bytes; reading is
//                paused (backpressure) at half that, and a client that
//                still will not drain is disconnected, not buffered into
//                server memory.
//   input size   Request lines are discarded past limits.max_line_bytes
//                without being buffered; inline "xml" bytes are capped by
//                the wire layer.
//   shutdown     RequestShutdown() (async-signal-safe, callable from a
//                SIGTERM handler) stops accepting, rejects new work with
//                "shutting_down", drains in-flight requests up to
//                drain_ms, then cancels stragglers and returns from Run().
//
// Fault injection: allow_fault_injection exposes the request-level "fault"
// field (service/fault.h); fault_abort_conn_after_responses is the
// socket-level hook — the server drops the connection abruptly after that
// many responses, for client-robustness stress. Both are test harness
// surfaces, off by default.
#ifndef XQMFT_NET_SERVER_H_
#define XQMFT_NET_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "service/serve.h"
#include "service/wire.h"
#include "util/status.h"

namespace xqmft {

struct NetServerOptions {
  /// TCP listener: -1 = none, 0 = ephemeral (read the bound port back with
  /// port()). Binds loopback by default; serving beyond localhost is a
  /// deployment decision, not a default.
  int tcp_port = -1;
  std::string tcp_address = "127.0.0.1";
  /// Unix-domain listener path; empty = none. An existing socket file at
  /// the path is replaced.
  std::string unix_path;

  /// Query worker threads (>= 1).
  std::size_t workers = 2;
  /// Admitted-but-unstarted requests held before load shedding kicks in.
  std::size_t queue_limit = 64;
  /// Admitted requests per connection before its reads pause
  /// (backpressure; nothing is rejected, the client just stops being read).
  std::size_t max_inflight_per_conn = 32;
  /// Buffered response bytes per connection: reads pause at half, the
  /// connection is dropped (slow_client_closed) at the full limit.
  std::size_t max_write_buffer_bytes = 4u << 20;
  /// Floor for the retry_after_ms hint echoed in overload rejections (the
  /// hint itself scales with queue depth × observed service time once any
  /// request has completed).
  std::uint64_t retry_after_ms = 50;
  /// Most queued same-document requests a worker coalesces into one shared
  /// multi-query pass (including the one it dequeued).
  std::size_t batch_max = 8;
  /// How long a worker waits for same-document stragglers before running a
  /// coalesced pass. 0 (the default) disables coalescing: every request
  /// runs alone, exactly the pre-batching behavior. Requests whose
  /// remaining deadline budget is below the window are never coalesced.
  std::uint64_t batch_window_ms = 0;
  /// Graceful-shutdown drain budget; in-flight runs still going when it
  /// expires are cancelled.
  std::uint64_t drain_ms = 5000;

  // Request execution (same knobs as the stdin ServeLoop).
  QueryCacheOptions cache;
  PipelineOptions pipeline;
  std::size_t default_threads = 1;
  RequestLimits limits;
  bool allow_fault_injection = false;

  /// Socket-level fault hook: abruptly close each connection after this
  /// many responses (0 = never). Test harness only.
  std::uint32_t fault_abort_conn_after_responses = 0;
};

/// \brief Monotonic serving counters (atomically readable while serving).
///
/// Also exposed over the wire as {"cmd":"server_stats"} — and because cmd
/// requests bypass admission, the counters stay observable at full load.
/// Snapshots are ordered (outcomes read before admissions), so any single
/// snapshot satisfies
/// admitted >= completed_ok + failed + cancelled_runs + deadline_exceeded_runs.
struct NetServerCounters {
  std::uint64_t connections = 0;     ///< accepted
  std::uint64_t admitted = 0;        ///< requests admitted to the queue
  std::uint64_t completed_ok = 0;    ///< admitted requests that succeeded
  std::uint64_t failed = 0;          ///< admitted requests that errored
  std::uint64_t cancelled_runs = 0;  ///< runs aborted by cancellation
  std::uint64_t deadline_exceeded_runs = 0;  ///< runs aborted by deadline
  std::uint64_t rejected_overload = 0;       ///< shed: queue full
  std::uint64_t rejected_shutdown = 0;       ///< shed: draining
  std::uint64_t rejected_line_length = 0;    ///< overlong request lines
  std::uint64_t rejected_bad_request = 0;    ///< structurally invalid fields
  std::uint64_t disconnects_inflight = 0;    ///< aborts with runs in flight
  std::uint64_t slow_client_closed = 0;      ///< write-buffer limit closes
  std::uint64_t inline_cmds = 0;             ///< cmd requests (no queue)
  std::uint64_t coalesced_runs = 0;      ///< shared passes with >= 2 members
  std::uint64_t coalesced_requests = 0;  ///< requests served by those passes
  /// Document tokenizations avoided by coalescing: for each shared pass,
  /// (members - 1) × documents streamed.
  std::uint64_t parses_saved = 0;
  /// Execution-core split of successful runs (single, batch member, or
  /// coalesced member): fully lowered opcode runs, hybrid runs (opcode core
  /// with table-machine bridge sub-runs), and pure table-machine runs.
  std::uint64_t ops_runs = 0;
  std::uint64_t hybrid_runs = 0;
  std::uint64_t table_runs = 0;
};

/// \brief The socket server. Construct, Start() (listeners + workers, after
/// which port() is bound), then Run() on a serving thread until
/// RequestShutdown().
class NetServer {
 public:
  explicit NetServer(NetServerOptions options);
  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Creates the listeners and the worker pool. Fails on unusable
  /// addresses; no traffic is served until Run().
  Status Start();

  /// The event loop: blocks until a completed shutdown. Call Start first.
  Status Run();

  /// Initiates graceful shutdown; async-signal-safe (an atomic store and a
  /// self-pipe write), so SIGTERM handlers may call it directly. Run()
  /// returns once drained (or drain_ms expires).
  void RequestShutdown();

  /// Bound TCP port (after Start); -1 without a TCP listener.
  int port() const;
  const std::string& unix_path() const;

  NetServerCounters counters() const;

  struct Impl;  // private to server.cc

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace xqmft

#endif  // XQMFT_NET_SERVER_H_
