#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/scheduler.h"
#include "service/json.h"
#include "util/cancel.h"
#include "util/strings.h"

namespace xqmft {

namespace {

struct Completion {
  std::uint64_t conn_id = 0;
  std::uint64_t seq = 0;
  std::string response;
  StatusCode code = StatusCode::kOk;
};

struct Conn {
  int fd = -1;
  std::uint64_t id = 0;
  std::string rbuf;         // current partial request line
  bool discarding = false;  // overlong line: bytes dropped until newline
  std::string wbuf;         // pending response bytes
  std::size_t woff = 0;
  std::uint64_t next_seq = 0;      // request sequence numbers, per conn
  std::uint64_t next_to_send = 0;  // responses leave in request order
  std::map<std::uint64_t, std::string> ready;  // finished out of order
  std::map<std::uint64_t, std::shared_ptr<NetJob>> inflight;
  bool read_closed = false;  // client half-closed: deliver, then close
  std::uint32_t responses_sent = 0;
};

void CloseFd(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

}  // namespace

struct NetServer::Impl {
  explicit Impl(NetServerOptions opts)
      : options(std::move(opts)),
        service(options.cache, options.pipeline),
        handler(&service, MakeWireOptions()),
        scheduler(SchedulerOptions{options.batch_max,
                                   options.batch_window_ms}),
        retry_hint(options.retry_after_ms) {}

  WireOptions MakeWireOptions() {
    WireOptions wire;
    wire.limits = options.limits;
    wire.default_threads = options.default_threads;
    wire.allow_fault_injection = options.allow_fault_injection;
    wire.cmd_hook = [this](const std::string& cmd, const JsonValue* id,
                           std::string* out) {
      if (cmd != "server_stats") return false;
      AppendServerStats(id, out);
      return true;
    };
    wire.run_observer = [this](const StreamStats& total) {
      if (!total.used_ops_engine) {
        counters.table_runs.fetch_add(1);
      } else if (total.hybrid_plan) {
        counters.hybrid_runs.fetch_add(1);
      } else {
        counters.ops_runs.fetch_add(1);
      }
    };
    return wire;
  }

  // ---- configuration / execution ----
  NetServerOptions options;
  QueryService service;
  RequestHandler handler;

  // ---- listeners / wakeup ----
  int tcp_fd = -1;
  int unix_fd = -1;
  int bound_port = -1;
  int wake_rd = -1;
  int wake_wr = -1;
  bool started = false;

  // ---- connections (event-loop thread only) ----
  std::unordered_map<int, std::unique_ptr<Conn>> conns;       // by fd
  std::unordered_map<std::uint64_t, Conn*> conns_by_id;
  std::uint64_t next_conn_id = 1;
  // Admitted jobs whose completion has not been processed yet.
  std::uint64_t outstanding = 0;

  // ---- worker pool ----
  std::vector<std::thread> workers;
  Scheduler scheduler;
  RetryHint retry_hint;

  std::mutex comp_mu;
  std::vector<Completion> completions;

  // ---- shutdown ----
  std::atomic<bool> shutdown_requested{false};
  bool draining = false;
  std::chrono::steady_clock::time_point drain_deadline;

  // ---- counters ----
  struct {
    std::atomic<std::uint64_t> connections{0};
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> completed_ok{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> cancelled_runs{0};
    std::atomic<std::uint64_t> deadline_exceeded_runs{0};
    std::atomic<std::uint64_t> rejected_overload{0};
    std::atomic<std::uint64_t> rejected_shutdown{0};
    std::atomic<std::uint64_t> rejected_line_length{0};
    std::atomic<std::uint64_t> rejected_bad_request{0};
    std::atomic<std::uint64_t> disconnects_inflight{0};
    std::atomic<std::uint64_t> slow_client_closed{0};
    std::atomic<std::uint64_t> inline_cmds{0};
    std::atomic<std::uint64_t> coalesced_runs{0};
    std::atomic<std::uint64_t> coalesced_requests{0};
    std::atomic<std::uint64_t> parses_saved{0};
    // Execution-core split of successful runs (via WireOptions::run_observer):
    // fully lowered opcode runs, hybrid (opcode + table bridge sub-runs),
    // and pure table-machine runs.
    std::atomic<std::uint64_t> ops_runs{0};
    std::atomic<std::uint64_t> hybrid_runs{0};
    std::atomic<std::uint64_t> table_runs{0};
  } counters;

  // ---------------------------------------------------------------- setup

  Status Start();
  Status Run();
  void RequestShutdown();

  Status OpenTcp();
  Status OpenUnix();
  void WorkerMain();

  // ------------------------------------------------------------ event loop

  void AcceptAll(int listen_fd);
  // Every per-connection step returns false when it closed the connection
  // (the Conn* is then dangling).
  bool OnReadable(Conn* c);
  bool OnData(Conn* c, const char* data, std::size_t n);
  bool ProcessLine(Conn* c, std::string line);
  bool Deliver(Conn* c, std::uint64_t seq, std::string response);
  bool FlushWrites(Conn* c);
  bool MaybeFinish(Conn* c);  // graceful close after half-close drains
  void CloseConn(Conn* c, bool abort);
  void ProcessCompletions();
  NetServerCounters SnapshotCounters() const;
  void AppendServerStats(const JsonValue* id, std::string* out);
  void CountOutcome(StatusCode code);
  void BeginDrain();
  bool DrainComplete() const;
  void StopWorkers();
};

// ------------------------------------------------------------------ setup

Status NetServer::Impl::OpenTcp() {
  tcp_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (tcp_fd < 0) return Status::Internal("socket(AF_INET) failed");
  int one = 1;
  ::setsockopt(tcp_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options.tcp_port));
  if (::inet_pton(AF_INET, options.tcp_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad tcp_address: " + options.tcp_address);
  }
  if (::bind(tcp_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::Internal(
        StrFormat("cannot bind %s:%d: %s", options.tcp_address.c_str(),
                  options.tcp_port, std::strerror(errno)));
  }
  if (::listen(tcp_fd, 128) != 0) {
    return Status::Internal("listen failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(tcp_fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    bound_port = ntohs(addr.sin_port);
  }
  return Status::OK();
}

Status NetServer::Impl::OpenUnix() {
  sockaddr_un addr{};
  if (options.unix_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix_path too long");
  }
  unix_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (unix_fd < 0) return Status::Internal("socket(AF_UNIX) failed");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options.unix_path.c_str(),
              options.unix_path.size() + 1);
  ::unlink(options.unix_path.c_str());
  if (::bind(unix_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::Internal(StrFormat("cannot bind %s: %s",
                                      options.unix_path.c_str(),
                                      std::strerror(errno)));
  }
  if (::listen(unix_fd, 128) != 0) {
    return Status::Internal("listen failed");
  }
  return Status::OK();
}

Status NetServer::Impl::Start() {
  if (started) return Status::InvalidArgument("server already started");
  if (options.tcp_port < 0 && options.unix_path.empty()) {
    return Status::InvalidArgument(
        "server needs a TCP port and/or a unix socket path");
  }
  if (options.workers == 0) options.workers = 1;

  int p[2];
  if (::pipe2(p, O_NONBLOCK | O_CLOEXEC) != 0) {
    return Status::Internal("pipe2 failed");
  }
  wake_rd = p[0];
  wake_wr = p[1];

  if (options.tcp_port >= 0) XQMFT_RETURN_NOT_OK(OpenTcp());
  if (!options.unix_path.empty()) XQMFT_RETURN_NOT_OK(OpenUnix());

  workers.reserve(options.workers);
  for (std::size_t i = 0; i < options.workers; ++i) {
    workers.emplace_back([this] { WorkerMain(); });
  }
  started = true;
  return Status::OK();
}

void NetServer::Impl::RequestShutdown() {
  // Async-signal-safe: an atomic store and a pipe write, nothing else.
  shutdown_requested.store(true, std::memory_order_release);
  if (wake_wr >= 0) {
    char b = 'q';
    [[maybe_unused]] ssize_t n = ::write(wake_wr, &b, 1);
  }
}

// ---------------------------------------------------------------- workers

void NetServer::Impl::WorkerMain() {
  std::vector<std::shared_ptr<NetJob>> group;
  for (;;) {
    if (!scheduler.DequeueGroup(&group)) return;  // stopped and drained
    std::vector<Completion> done(group.size());
    for (std::size_t i = 0; i < group.size(); ++i) {
      done[i].conn_id = group[i]->conn_id;
      done[i].seq = group[i]->seq;
    }
    const auto t0 = std::chrono::steady_clock::now();
    if (group.size() == 1) {
      NetJob& job = *group[0];
      // A token tripped while the job sat queued (deadline counted from
      // admission, disconnect, forced shutdown) skips execution entirely —
      // no compile, no streaming, just the error response.
      Status pre = job.token.Check();
      if (!pre.ok()) {
        AppendErrorResponse(&done[0].response, job.json.Find("id"),
                            pre.ToString(), pre.code());
        done[0].code = pre.code();
      } else {
        done[0].code =
            handler.HandleParsed(job.json, &job.token, &done[0].response);
        retry_hint.Record(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
      }
    } else {
      // A coalesced group: one shared multi-query pass over the common
      // document list. Tripped or malformed members drop out with their
      // own error responses inside HandleCoalesced.
      std::vector<CoalescedJob> members(group.size());
      for (std::size_t i = 0; i < group.size(); ++i) {
        members[i].json = &group[i]->json;
        members[i].cancel = &group[i]->token;
        members[i].out = &done[i].response;
      }
      std::size_t shared_members = 0;
      const std::uint64_t saved =
          handler.HandleCoalesced(&members, &shared_members);
      for (std::size_t i = 0; i < group.size(); ++i) {
        done[i].code = members[i].code;
      }
      if (shared_members >= 2) {
        counters.coalesced_runs.fetch_add(1);
        counters.coalesced_requests.fetch_add(shared_members);
        counters.parses_saved.fetch_add(saved);
      }
      // The EWMA tracks per-request cost: the pass's wall time is shared
      // by every member, so each contributes its share.
      const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                    std::chrono::steady_clock::now() - t0)
                                    .count();
      for (std::size_t i = 0; i < group.size(); ++i) {
        retry_hint.Record(elapsed_ms / static_cast<double>(group.size()));
      }
    }
    {
      std::lock_guard<std::mutex> lock(comp_mu);
      for (Completion& d : done) completions.push_back(std::move(d));
    }
    char b = 'c';
    [[maybe_unused]] ssize_t n = ::write(wake_wr, &b, 1);
  }
}

void NetServer::Impl::StopWorkers() {
  scheduler.Stop();
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
  workers.clear();
}

// ------------------------------------------------------------- event loop

void NetServer::Impl::AcceptAll(int listen_fd) {
  for (;;) {
    int fd = ::accept4(listen_fd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient accept failure: poll retries
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id++;
    conns_by_id[conn->id] = conn.get();
    conns[fd] = std::move(conn);
    counters.connections.fetch_add(1);
  }
}

bool NetServer::Impl::OnReadable(Conn* c) {
  char buf[16384];
  ssize_t n = ::recv(c->fd, buf, sizeof(buf), 0);
  if (n > 0) return OnData(c, buf, static_cast<std::size_t>(n));
  if (n == 0) {
    // Half-close: the client is done sending; compute and deliver what is
    // pending, then close.
    c->read_closed = true;
    return MaybeFinish(c);
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return true;
  CloseConn(c, /*abort=*/true);
  return false;
}

bool NetServer::Impl::OnData(Conn* c, const char* data, std::size_t n) {
  const std::size_t limit = options.limits.max_line_bytes;
  std::size_t i = 0;
  while (i < n) {
    const void* nl = std::memchr(data + i, '\n', n - i);
    if (nl == nullptr) {
      if (!c->discarding) {
        c->rbuf.append(data + i, n - i);
        if (limit != 0 && c->rbuf.size() > limit) {
          c->rbuf.clear();
          c->discarding = true;
        }
      }
      return true;
    }
    const std::size_t len =
        static_cast<std::size_t>(static_cast<const char*>(nl) - (data + i));
    bool alive;
    if (c->discarding) {
      c->discarding = false;
      counters.rejected_line_length.fetch_add(1);
      std::string resp;
      AppendErrorResponse(&resp, nullptr,
                          StrFormat("request line exceeds the %zu-byte limit",
                                    limit),
                          StatusCode::kInvalidArgument);
      alive = Deliver(c, c->next_seq++, std::move(resp));
    } else {
      c->rbuf.append(data + i, len);
      if (limit != 0 && c->rbuf.size() > limit) {
        c->rbuf.clear();
        counters.rejected_line_length.fetch_add(1);
        std::string resp;
        AppendErrorResponse(
            &resp, nullptr,
            StrFormat("request line exceeds the %zu-byte limit", limit),
            StatusCode::kInvalidArgument);
        alive = Deliver(c, c->next_seq++, std::move(resp));
      } else {
        std::string line = std::move(c->rbuf);
        c->rbuf.clear();
        alive = ProcessLine(c, std::move(line));
      }
    }
    if (!alive) return false;
    i += len + 1;
  }
  return true;
}

bool NetServer::Impl::ProcessLine(Conn* c, std::string line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line.find_first_not_of(" \t") == std::string::npos) return true;
  const std::uint64_t seq = c->next_seq++;

  Result<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) {
    std::string resp;
    AppendErrorResponse(&resp, nullptr, parsed.status().ToString(),
                        parsed.status().code());
    return Deliver(c, seq, std::move(resp));
  }
  JsonValue& json = parsed.value();
  if (!json.is_object()) {
    std::string resp;
    AppendErrorResponse(&resp, nullptr, "request must be a JSON object",
                        StatusCode::kInvalidArgument);
    return Deliver(c, seq, std::move(resp));
  }
  const JsonValue* id = json.Find("id");

  // cmd requests (stats polls, server_stats) are cheap and bypass
  // admission entirely: observability keeps working while the queue is
  // full — which is exactly when someone is polling it.
  if (json.Find("cmd") != nullptr) {
    counters.inline_cmds.fetch_add(1);
    std::string resp;
    handler.HandleParsed(json, nullptr, &resp);
    return Deliver(c, seq, std::move(resp));
  }

  // A malformed deadline is rejected, not ignored: silently dropping a
  // bad "deadline_ms" ("100" as a string, 0, a negative) would run the
  // request with no budget at all — the opposite of what the client asked
  // for.
  const JsonValue* dl = json.Find("deadline_ms");
  if (dl != nullptr && (!dl->is_number() || dl->number <= 0)) {
    counters.rejected_bad_request.fetch_add(1);
    std::string resp;
    AppendBadRequestResponse(&resp, id,
                             "deadline_ms must be a positive number");
    return Deliver(c, seq, std::move(resp));
  }
  const double deadline_ms = dl != nullptr ? dl->number : 0.0;

  if (draining) {
    counters.rejected_shutdown.fetch_add(1);
    ResponseWriter w(id);
    w.Raw("ok", "false");
    w.Field("error", "server is shutting down");
    w.Field("status", "shutting_down");
    return Deliver(c, seq, w.Finish() + "\n");
  }

  const std::size_t depth = scheduler.queued();
  if (depth >= options.queue_limit) {
    counters.rejected_overload.fetch_add(1);
    ResponseWriter w(id);
    w.Raw("ok", "false");
    w.Field("error", "server overloaded: request queue is full");
    w.Field("status", "overloaded");
    w.Raw("retry_after_ms", std::to_string(retry_hint.HintMs(depth)));
    return Deliver(c, seq, w.Finish() + "\n");
  }

  auto job = std::make_shared<NetJob>();
  job->conn_id = c->id;
  job->seq = seq;
  job->json = std::move(json);
  // Deadline armed NOW, at admission: a request that waits out its budget
  // in the queue is dead on arrival at the worker, by design.
  if (deadline_ms > 0) {
    job->token.SetDeadlineAfterMs(static_cast<std::uint64_t>(deadline_ms));
  }
  if (options.batch_window_ms > 0 && options.batch_max > 1) {
    job->coalesce_key = CoalesceKey(job->json);
  }
  c->inflight[seq] = job;
  ++outstanding;
  counters.admitted.fetch_add(1);
  scheduler.Enqueue(std::move(job));
  return true;
}

bool NetServer::Impl::Deliver(Conn* c, std::uint64_t seq,
                              std::string response) {
  c->ready[seq] = std::move(response);
  for (auto it = c->ready.find(c->next_to_send); it != c->ready.end();
       it = c->ready.find(c->next_to_send)) {
    c->wbuf += it->second;
    c->ready.erase(it);
    ++c->next_to_send;
    ++c->responses_sent;
    if (options.fault_abort_conn_after_responses != 0 &&
        c->responses_sent >= options.fault_abort_conn_after_responses) {
      CloseConn(c, /*abort=*/true);
      return false;
    }
  }
  if (!FlushWrites(c)) return false;
  if (c->wbuf.size() - c->woff > options.max_write_buffer_bytes) {
    counters.slow_client_closed.fetch_add(1);
    CloseConn(c, /*abort=*/true);
    return false;
  }
  return MaybeFinish(c);
}

bool NetServer::Impl::FlushWrites(Conn* c) {
  while (c->woff < c->wbuf.size()) {
    ssize_t n = ::send(c->fd, c->wbuf.data() + c->woff,
                       c->wbuf.size() - c->woff, MSG_NOSIGNAL);
    if (n > 0) {
      c->woff += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    CloseConn(c, /*abort=*/true);
    return false;
  }
  c->wbuf.clear();
  c->woff = 0;
  return true;
}

bool NetServer::Impl::MaybeFinish(Conn* c) {
  if (c->read_closed && c->inflight.empty() && c->ready.empty() &&
      c->woff >= c->wbuf.size()) {
    CloseConn(c, /*abort=*/false);
    return false;
  }
  return true;
}

void NetServer::Impl::CloseConn(Conn* c, bool abort) {
  if (!c->inflight.empty()) {
    if (abort) {
      counters.disconnects_inflight.fetch_add(1);
    }
    // Nobody will read these responses; stop computing them. The jobs
    // still complete (quickly, via the cooperative checks) and their
    // completions are discarded on arrival.
    for (auto& [seq, job] : c->inflight) job->token.Cancel();
  }
  conns_by_id.erase(c->id);
  int fd = c->fd;
  conns.erase(fd);  // destroys *c
  if (fd >= 0) ::close(fd);
}

void NetServer::Impl::CountOutcome(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      counters.completed_ok.fetch_add(1);
      break;
    case StatusCode::kCancelled:
      counters.cancelled_runs.fetch_add(1);
      break;
    case StatusCode::kDeadlineExceeded:
      counters.deadline_exceeded_runs.fetch_add(1);
      break;
    default:
      counters.failed.fetch_add(1);
      break;
  }
}

void NetServer::Impl::ProcessCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(comp_mu);
    batch.swap(completions);
  }
  for (Completion& done : batch) {
    if (outstanding > 0) --outstanding;
    CountOutcome(done.code);
    auto it = conns_by_id.find(done.conn_id);
    if (it == conns_by_id.end()) continue;  // client gone: discard
    Conn* c = it->second;
    c->inflight.erase(done.seq);
    Deliver(c, done.seq, std::move(done.response));
  }
}

NetServerCounters NetServer::Impl::SnapshotCounters() const {
  // Load order matters for the snapshot's internal consistency: outcomes
  // are read BEFORE admissions. Every outcome increment is preceded (in
  // the seq_cst total order) by its request's admitted increment, so
  // reading outcomes first guarantees
  //   admitted >= completed_ok + failed + cancelled_runs +
  //               deadline_exceeded_runs
  // in any single snapshot — independent relaxed loads could see an
  // outcome whose admission they miss.
  NetServerCounters out;
  out.completed_ok = counters.completed_ok.load();
  out.failed = counters.failed.load();
  out.cancelled_runs = counters.cancelled_runs.load();
  out.deadline_exceeded_runs = counters.deadline_exceeded_runs.load();
  out.coalesced_runs = counters.coalesced_runs.load();
  out.coalesced_requests = counters.coalesced_requests.load();
  out.parses_saved = counters.parses_saved.load();
  out.ops_runs = counters.ops_runs.load();
  out.hybrid_runs = counters.hybrid_runs.load();
  out.table_runs = counters.table_runs.load();
  out.admitted = counters.admitted.load();
  out.rejected_overload = counters.rejected_overload.load();
  out.rejected_shutdown = counters.rejected_shutdown.load();
  out.rejected_line_length = counters.rejected_line_length.load();
  out.rejected_bad_request = counters.rejected_bad_request.load();
  out.disconnects_inflight = counters.disconnects_inflight.load();
  out.slow_client_closed = counters.slow_client_closed.load();
  out.inline_cmds = counters.inline_cmds.load();
  out.connections = counters.connections.load();
  return out;
}

void NetServer::Impl::AppendServerStats(const JsonValue* id,
                                        std::string* out) {
  const NetServerCounters snap = SnapshotCounters();
  ResponseWriter w(id);
  w.Raw("ok", "true");
  w.Raw(
      "server",
      StrFormat(
          "{\"connections\":%llu,\"admitted\":%llu,\"completed_ok\":%llu,"
          "\"failed\":%llu,\"cancelled_runs\":%llu,"
          "\"deadline_exceeded_runs\":%llu,\"rejected_overload\":%llu,"
          "\"rejected_shutdown\":%llu,\"rejected_line_length\":%llu,"
          "\"rejected_bad_request\":%llu,\"disconnects_inflight\":%llu,"
          "\"slow_client_closed\":%llu,\"inline_cmds\":%llu,"
          "\"coalesced_runs\":%llu,\"coalesced_requests\":%llu,"
          "\"parses_saved\":%llu,\"ops_runs\":%llu,"
          "\"hybrid_runs\":%llu,\"table_runs\":%llu,\"queued\":%zu}",
          static_cast<unsigned long long>(snap.connections),
          static_cast<unsigned long long>(snap.admitted),
          static_cast<unsigned long long>(snap.completed_ok),
          static_cast<unsigned long long>(snap.failed),
          static_cast<unsigned long long>(snap.cancelled_runs),
          static_cast<unsigned long long>(snap.deadline_exceeded_runs),
          static_cast<unsigned long long>(snap.rejected_overload),
          static_cast<unsigned long long>(snap.rejected_shutdown),
          static_cast<unsigned long long>(snap.rejected_line_length),
          static_cast<unsigned long long>(snap.rejected_bad_request),
          static_cast<unsigned long long>(snap.disconnects_inflight),
          static_cast<unsigned long long>(snap.slow_client_closed),
          static_cast<unsigned long long>(snap.inline_cmds),
          static_cast<unsigned long long>(snap.coalesced_runs),
          static_cast<unsigned long long>(snap.coalesced_requests),
          static_cast<unsigned long long>(snap.parses_saved),
          static_cast<unsigned long long>(snap.ops_runs),
          static_cast<unsigned long long>(snap.hybrid_runs),
          static_cast<unsigned long long>(snap.table_runs),
          scheduler.queued()));
  *out += w.Finish();
  *out += "\n";
}

void NetServer::Impl::BeginDrain() {
  draining = true;
  drain_deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(options.drain_ms);
  CloseFd(tcp_fd);
  CloseFd(unix_fd);
  if (!options.unix_path.empty()) ::unlink(options.unix_path.c_str());
}

bool NetServer::Impl::DrainComplete() const {
  if (outstanding != 0) return false;
  for (const auto& [fd, c] : conns) {
    if (c->woff < c->wbuf.size() || !c->ready.empty()) return false;
  }
  return true;
}

Status NetServer::Impl::Run() {
  if (!started) return Status::InvalidArgument("call Start() before Run()");
  std::vector<pollfd> pfds;
  std::vector<Conn*> pfd_conns;
  for (;;) {
    if (shutdown_requested.load(std::memory_order_acquire) && !draining) {
      BeginDrain();
    }
    if (draining) {
      if (DrainComplete()) break;
      if (std::chrono::steady_clock::now() >= drain_deadline) {
        // Drain budget spent: cancel whatever is still running and leave.
        // The workers observe the cancelled tokens at their next check and
        // the remaining completions are discarded with the connections.
        for (auto& [fd, c] : conns) {
          for (auto& [seq, job] : c->inflight) job->token.Cancel();
        }
        break;
      }
    }

    pfds.clear();
    pfd_conns.clear();
    pfds.push_back({wake_rd, POLLIN, 0});
    pfd_conns.push_back(nullptr);
    if (tcp_fd >= 0) {
      pfds.push_back({tcp_fd, POLLIN, 0});
      pfd_conns.push_back(nullptr);
    }
    if (unix_fd >= 0) {
      pfds.push_back({unix_fd, POLLIN, 0});
      pfd_conns.push_back(nullptr);
    }
    for (auto& [fd, c] : conns) {
      short events = 0;
      const bool backpressured =
          c->wbuf.size() - c->woff > options.max_write_buffer_bytes / 2 ||
          c->inflight.size() >= options.max_inflight_per_conn;
      if (!c->read_closed && !backpressured) events |= POLLIN;
      if (c->woff < c->wbuf.size()) events |= POLLOUT;
      if (events == 0) continue;
      pfds.push_back({fd, events, 0});
      pfd_conns.push_back(c.get());
    }

    const int timeout_ms = draining ? 20 : -1;
    int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                    timeout_ms);
    if (rc < 0 && errno != EINTR) {
      StopWorkers();
      return Status::Internal("poll failed");
    }

    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if (pfds[i].revents == 0) continue;
      const int fd = pfds[i].fd;
      if (fd == wake_rd) {
        char buf[256];
        while (::read(wake_rd, buf, sizeof(buf)) > 0) {}
        continue;
      }
      if (fd == tcp_fd || fd == unix_fd) {
        AcceptAll(fd);
        continue;
      }
      Conn* c = pfd_conns[i];
      // The connection may have been closed by an earlier event this
      // round; consult the live map, not the stale pointer.
      auto it = conns.find(fd);
      if (it == conns.end() || it->second.get() != c) continue;
      if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // POLLHUP with readable data still pending is delivered through
        // recv below on the next rounds; a bare HUP/ERR is an abort.
        if ((pfds[i].revents & POLLIN) == 0) {
          CloseConn(c, /*abort=*/true);
          continue;
        }
      }
      if (pfds[i].revents & POLLOUT) {
        if (!FlushWrites(c)) continue;
        if (!MaybeFinish(c)) continue;
      }
      if (pfds[i].revents & POLLIN) {
        if (!OnReadable(c)) continue;
      }
    }

    ProcessCompletions();
  }

  StopWorkers();
  // Late completions from the final jobs: count their outcomes, then drop
  // everything — the connections are going away.
  ProcessCompletions();
  std::vector<int> open_fds;
  open_fds.reserve(conns.size());
  for (auto& [fd, c] : conns) open_fds.push_back(fd);
  for (int fd : open_fds) {
    auto it = conns.find(fd);
    if (it != conns.end()) {
      FlushWrites(it->second.get());  // best effort, nonblocking
    }
    it = conns.find(fd);
    if (it != conns.end()) CloseConn(it->second.get(), /*abort=*/false);
  }
  CloseFd(tcp_fd);
  CloseFd(unix_fd);
  if (!options.unix_path.empty()) ::unlink(options.unix_path.c_str());
  return Status::OK();
}

// ------------------------------------------------------------------ facade

NetServer::NetServer(NetServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

NetServer::~NetServer() {
  if (impl_ == nullptr) return;
  impl_->StopWorkers();
  CloseFd(impl_->tcp_fd);
  CloseFd(impl_->unix_fd);
  CloseFd(impl_->wake_rd);
  CloseFd(impl_->wake_wr);
}

Status NetServer::Start() { return impl_->Start(); }
Status NetServer::Run() { return impl_->Run(); }
void NetServer::RequestShutdown() { impl_->RequestShutdown(); }
int NetServer::port() const { return impl_->bound_port; }
const std::string& NetServer::unix_path() const {
  return impl_->options.unix_path;
}

NetServerCounters NetServer::counters() const {
  return impl_->SnapshotCounters();
}

}  // namespace xqmft
