// Deadline-aware batching scheduler: the stage between admission and the
// worker pool.
//
// PR 8's server handed workers one queued request at a time, so N
// concurrent requests over the same document cost N tokenizations even
// though the multi-query engine (multiquery/multi_run.h, PR 6) can serve
// them in one pass. The Scheduler closes that gap at dequeue time: a
// worker takes the oldest job and, when coalescing is enabled, gathers
// queued jobs with the same coalesce key (same document list and
// compatible plan-shaping options — service/wire.h CoalesceKey) into one
// group, waiting up to `batch_window_ms` for stragglers and capping the
// group at `batch_max`. The group runs as a single ExecuteBatch pass: one
// tokenization per document, plans deduped through the query cache.
//
// Deadline awareness is the rule that keeps coalescing from trading a
// tight request's latency for throughput: a job whose remaining deadline
// budget is below the gather window bypasses coalescing entirely — it is
// never a group leader (no window wait) and is never gathered into a
// waiting group. With `batch_window_ms == 0` (the default) every dequeue
// returns a single job and the scheduler behaves exactly like PR 8's
// plain queue.
//
// RetryHint is the admission path's load-shedding companion: an EWMA of
// observed per-request service time turns the static retry_after_ms hint
// into one proportional to the work actually queued in front of the
// rejected client (hint = max(floor, queue depth × EWMA)) — deeper queue,
// larger hint, monotonically.
//
// Threading: Enqueue and queued() are called from the server's event-loop
// thread; DequeueGroup from worker threads; Stop from shutdown.
// RetryHint::Record comes from workers while HintMs is read on the event
// loop. Everything is internally synchronized.
#ifndef XQMFT_NET_SCHEDULER_H_
#define XQMFT_NET_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "service/json.h"
#include "util/cancel.h"

namespace xqmft {

/// One admitted request, shared between the connection (for
/// cancel-on-disconnect), the scheduler queue, and the worker running it.
struct NetJob {
  std::uint64_t conn_id = 0;
  std::uint64_t seq = 0;
  JsonValue json;
  CancelToken token;
  /// Coalescing group key (service/wire.h CoalesceKey), computed at
  /// admission; empty = this job never joins a coalesced run.
  std::string coalesce_key;
};

struct SchedulerOptions {
  /// Largest coalesced group a worker may gather (including the leader).
  std::size_t batch_max = 8;
  /// How long a group leader waits for same-key stragglers before running;
  /// 0 disables coalescing entirely (every dequeue returns one job).
  std::uint64_t batch_window_ms = 0;
};

/// \brief Load-proportional retry_after_ms hints for overload rejections.
///
/// With no completed requests observed yet the hint is the configured
/// static floor (so cold-start shedding keeps the configured value);
/// afterwards it is max(floor, ceil(depth × EWMA of per-request service
/// ms)) — monotone in the queue depth by construction.
class RetryHint {
 public:
  explicit RetryHint(std::uint64_t floor_ms) : floor_ms_(floor_ms) {}

  /// Records one completed request's service time (ms of worker time).
  void Record(double service_ms);

  /// The backoff hint for a client rejected while `queue_depth` jobs wait.
  std::uint64_t HintMs(std::size_t queue_depth) const;

  /// Current EWMA (0 before the first sample) — observability and tests.
  double ewma_ms() const;

 private:
  const std::uint64_t floor_ms_;
  mutable std::mutex mu_;
  double ewma_ms_ = 0.0;
  bool has_sample_ = false;
};

/// \brief The bounded job queue with group-forming dequeue.
class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options);

  /// Adds an admitted job (admission control — the queue-depth bound — is
  /// the caller's, via queued()).
  void Enqueue(std::shared_ptr<NetJob> job);

  /// Blocks until work or shutdown. Returns false when stopped and
  /// drained; otherwise fills `*group` with one job, or — when coalescing
  /// applies — the leader plus every same-key job gathered within the
  /// window, up to batch_max. Jobs with other keys are left queued for
  /// other workers. Stop() cuts a gather short: the group runs with
  /// whatever it holds so drain is not delayed by the window.
  bool DequeueGroup(std::vector<std::shared_ptr<NetJob>>* group);

  /// Wakes every waiter; DequeueGroup keeps returning groups until the
  /// queue is drained, then false.
  void Stop();

  /// Jobs waiting (admitted, not yet taken by a worker) — the admission
  /// bound and the depth behind RetryHint.
  std::size_t queued() const {
    return queued_.load(std::memory_order_relaxed);
  }

 private:
  // Moves queued jobs matching `key` (and able to afford the window) into
  // *group, up to batch_max. Caller holds mu_.
  void TakeMatches(const std::string& key,
                   std::vector<std::shared_ptr<NetJob>>* group);

  const SchedulerOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<NetJob>> queue_;
  bool stopped_ = false;
  std::atomic<std::size_t> queued_{0};
};

}  // namespace xqmft

#endif  // XQMFT_NET_SCHEDULER_H_
