#include "gcx/gcx_engine.h"

#include <set>
#include <vector>

#include "util/memory_tracker.h"
#include "util/strings.h"
#include "xml/forest.h"
#include "xpath/eval.h"
#include "xquery/evaluator.h"

namespace xqmft {

namespace {

// Rough per-node footprint of a buffered Tree (for the buffer accounting and
// the max_buffer_bytes cap).
std::size_t NodeBytes(std::string_view label) {
  return sizeof(Tree) + label.size();
}

std::size_t EstimateForestBytes(const Forest& f) {
  std::size_t n = 0;
  for (const Tree& t : f) n += NodeBytes(t.label) + EstimateForestBytes(t.children);
  return n;
}

// A projection path: keep nodes advancing along `steps`; a node completing
// the path keeps its whole subtree (its value may be copied to the output).
struct ProjPath {
  RelPath steps;
};

// Fragment checks -----------------------------------------------------------

Status CheckNoFollowingSibling(const RelPath& steps);

Status CheckPredicates(const std::vector<Predicate>& preds) {
  for (const Predicate& p : preds) {
    XQMFT_RETURN_NOT_OK(CheckNoFollowingSibling(p.path));
  }
  return Status::OK();
}

Status CheckNoFollowingSibling(const RelPath& steps) {
  for (const PathStep& s : steps) {
    if (s.axis == Axis::kFollowingSibling) {
      return Status::NotSupported(
          "GCX fragment: the following-sibling axis is not supported");
    }
    XQMFT_RETURN_NOT_OK(CheckPredicates(s.predicates));
  }
  return Status::OK();
}

Status CheckQueryPaths(const QueryExpr& q) {
  switch (q.kind) {
    case QueryKind::kElement:
    case QueryKind::kSequence:
      for (const auto& c : q.children) XQMFT_RETURN_NOT_OK(CheckQueryPaths(*c));
      return Status::OK();
    case QueryKind::kString:
      return Status::OK();
    case QueryKind::kFor:
      XQMFT_RETURN_NOT_OK(CheckNoFollowingSibling(q.path.steps));
      return CheckQueryPaths(*q.body);
    case QueryKind::kLet:
      XQMFT_RETURN_NOT_OK(CheckQueryPaths(*q.value));
      return CheckQueryPaths(*q.body);
    case QueryKind::kPath:
      return CheckNoFollowingSibling(q.path.steps);
  }
  return Status::OK();
}

}  // namespace

// Compilation ----------------------------------------------------------------

struct GcxQuery::Impl {
  const QueryExpr* query;

  enum class TokKind { kStart, kEnd, kText, kSlot };
  struct Token {
    TokKind kind;
    std::string text;
    int slot = -1;
  };
  std::vector<Token> skeleton;

  // One step of the projection automaton with its node test interned: the
  // streaming match loop compares SymbolIds against the parser's event ids
  // instead of label strings — the same id space the MFT engine matches in,
  // keeping the Figure 4 comparison honest.
  struct CompiledStep {
    Axis axis;
    NodeTestKind kind;
    SymbolId id;  // interned test name (kName only)
  };
  using CompiledPath = std::vector<CompiledStep>;

  struct Slot {
    const QueryExpr* clause;          // kFor or kPath
    const RelPath* steps;             // $input-rooted steps
    std::string var;                  // loop variable ("" for kPath slots)
    const QueryExpr* body = nullptr;  // loop body (null for kPath slots)
    std::vector<const Predicate*> final_preds;  // slot path's final-step preds
    std::vector<ProjPath> projection;
    bool project_all = false;
    CompiledPath steps_c;                  // interned form of *steps
    std::vector<CompiledPath> projection_c;  // interned projection paths
  };
  std::vector<Slot> slots;

  /// Query-lifetime table the path tests are interned into; each Run() takes
  /// a copy so parser-discovered input names never leak between runs.
  SymbolTable symbols;

  Status Build(const QueryExpr& q);
  Status BuildSkeleton(const QueryExpr& q);
  Status AddSlot(const QueryExpr& clause);
  void CollectBodyProjection(const QueryExpr& e, const std::string& var,
                             const RelPath& prefix, Slot* slot);
  void AddProjectionPath(const RelPath& steps, Slot* slot);
  CompiledPath CompilePath(const RelPath& steps);
};

Status GcxQuery::Impl::Build(const QueryExpr& q) {
  query = &q;
  XQMFT_RETURN_NOT_OK(CheckQueryPaths(q));
  XQMFT_RETURN_NOT_OK(BuildSkeleton(q));
  // Intern every path test now that all slots exist (projection paths are
  // collected incrementally during skeleton construction).
  for (Slot& slot : slots) {
    slot.steps_c = CompilePath(*slot.steps);
    slot.projection_c.reserve(slot.projection.size());
    for (const ProjPath& p : slot.projection) {
      slot.projection_c.push_back(CompilePath(p.steps));
    }
  }
  return Status::OK();
}

GcxQuery::Impl::CompiledPath GcxQuery::Impl::CompilePath(
    const RelPath& steps) {
  CompiledPath out;
  out.reserve(steps.size());
  for (const PathStep& s : steps) {
    CompiledStep c;
    c.axis = s.axis;
    c.kind = s.test.kind;
    c.id = s.test.kind == NodeTestKind::kName
               ? symbols.Intern(NodeKind::kElement, s.test.name)
               : kInvalidSymbol;
    out.push_back(c);
  }
  return out;
}

Status GcxQuery::Impl::BuildSkeleton(const QueryExpr& q) {
  switch (q.kind) {
    case QueryKind::kElement:
      skeleton.push_back({TokKind::kStart, q.name});
      for (const auto& c : q.children) {
        XQMFT_RETURN_NOT_OK(BuildSkeleton(*c));
      }
      skeleton.push_back({TokKind::kEnd, q.name});
      return Status::OK();
    case QueryKind::kString:
      skeleton.push_back({TokKind::kText, q.str});
      return Status::OK();
    case QueryKind::kSequence:
      for (const auto& c : q.children) {
        XQMFT_RETURN_NOT_OK(BuildSkeleton(*c));
      }
      return Status::OK();
    case QueryKind::kFor:
    case QueryKind::kPath:
      return AddSlot(q);
    case QueryKind::kLet:
      return Status::NotSupported("GCX fragment: top-level let");
  }
  return Status::OK();
}

Status GcxQuery::Impl::AddSlot(const QueryExpr& clause) {
  Slot slot;
  slot.clause = &clause;
  const Path& path = clause.path;
  if (path.IsBareVariable()) {
    return Status::NotSupported("GCX fragment: bare $input output");
  }
  // Predicates are allowed on the final step only (they become GCX-style
  // where-clauses evaluated on the buffered fragment).
  for (std::size_t i = 0; i + 1 < path.steps.size(); ++i) {
    if (!path.steps[i].predicates.empty()) {
      return Status::NotSupported(
          "GCX fragment: predicate on a non-final path step");
    }
  }
  slot.steps = &path.steps;
  for (const Predicate& p : path.steps.back().predicates) {
    slot.final_preds.push_back(&p);
    AddProjectionPath(p.path, &slot);
  }
  if (clause.kind == QueryKind::kFor) {
    slot.var = clause.name;
    slot.body = clause.body.get();
    CollectBodyProjection(*clause.body, clause.name, {}, &slot);
  } else {
    slot.project_all = true;  // the matched subtree is copied verbatim
  }
  skeleton.push_back(
      {TokKind::kSlot, "", static_cast<int>(slots.size())});
  slots.push_back(std::move(slot));
  return Status::OK();
}

void GcxQuery::Impl::AddProjectionPath(const RelPath& steps, Slot* slot) {
  if (steps.empty()) {
    slot->project_all = true;
    return;
  }
  // Projection matching uses axis and node test only, so store the steps
  // with predicates stripped (also the well-foundedness of the recursion
  // below: predicate paths are re-anchored on a predicate-free prefix).
  RelPath clean;
  clean.reserve(steps.size());
  for (const PathStep& s : steps) {
    PathStep c;
    c.axis = s.axis;
    c.test = s.test;
    clean.push_back(std::move(c));
  }
  slot->projection.push_back(ProjPath{clean});
  // Predicate paths inside the steps join the projection too, anchored at
  // the step they test.
  for (std::size_t i = 0; i < steps.size(); ++i) {
    for (const Predicate& p : steps[i].predicates) {
      RelPath full(clean.begin(), clean.begin() + static_cast<long>(i) + 1);
      for (const PathStep& ps : p.path) full.push_back(ps);
      AddProjectionPath(full, slot);
    }
  }
}

// Collects the paths the loop body needs, rewritten relative to the slot
// binding. `var` is the variable whose paths are rooted at `prefix`.
void GcxQuery::Impl::CollectBodyProjection(const QueryExpr& e,
                                           const std::string& var,
                                           const RelPath& prefix, Slot* slot) {
  switch (e.kind) {
    case QueryKind::kElement:
    case QueryKind::kSequence:
      for (const auto& c : e.children) {
        CollectBodyProjection(*c, var, prefix, slot);
      }
      return;
    case QueryKind::kString:
      return;
    case QueryKind::kFor: {
      // The nested loop's path extends the prefix; its body is relative to
      // the nested variable.
      RelPath nested = prefix;
      for (const PathStep& s : e.path.steps) nested.push_back(s);
      AddProjectionPath(nested, slot);
      CollectBodyProjection(*e.body, e.name, nested, slot);
      return;
    }
    case QueryKind::kLet:
      CollectBodyProjection(*e.value, var, prefix, slot);
      CollectBodyProjection(*e.body, var, prefix, slot);
      return;
    case QueryKind::kPath: {
      if (e.path.IsBareVariable()) {
        // A copied binding: keep everything below its prefix.
        AddProjectionPath(prefix, slot);
        if (prefix.empty()) slot->project_all = true;
        return;
      }
      RelPath full = prefix;
      for (const PathStep& s : e.path.steps) full.push_back(s);
      AddProjectionPath(full, slot);
      return;
    }
  }
}

// Runtime ---------------------------------------------------------------------

namespace {

// Does an interned projection step match an element event with id `sym`?
// One integer compare on the hot path — no label strings.
inline bool StepMatchesElement(const GcxQuery::Impl::CompiledStep& s,
                               SymbolId sym) {
  switch (s.kind) {
    case NodeTestKind::kName:
      return s.id == sym;
    case NodeTestKind::kAnyElement:
    case NodeTestKind::kAnyNode:
      return true;
    case NodeTestKind::kText:
      return false;
  }
  return false;
}

inline bool StepMatchesText(const GcxQuery::Impl::CompiledStep& s) {
  return s.kind == NodeTestKind::kText || s.kind == NodeTestKind::kAnyNode;
}

// Per-slot streaming state.
class SlotRun {
 public:
  SlotRun(const GcxQuery::Impl::Slot& slot, MemoryTracker* tracker)
      : slot_(slot), tracker_(tracker) {
    active_stack_.push_back({0});
  }

  // Feeds a start-element event. Never delivers: a match only opens the
  // buffered fragment here; binding results are appended via `deliver` when
  // the fragment completes, in OnText (immediate text bindings) or OnEnd
  // (the buffer root closing). `sym` is the event's interned id in the run's
  // table; `name` is only read when a node enters a buffer.
  Status OnStart(SymbolId sym, std::string_view name) {
    if (buffering_) {
      ++buffer_depth_;
      ProjectStart(sym, name);
      return Status::OK();
    }
    const GcxQuery::Impl::CompiledPath& steps = slot_.steps_c;
    const int n = static_cast<int>(steps.size());
    const std::vector<int>& top = active_stack_.back();
    std::set<int> next_set;
    bool matched = false;
    for (int i : top) {
      const auto& s = steps[static_cast<std::size_t>(i)];
      if (s.axis == Axis::kDescendant) next_set.insert(i);
      if (StepMatchesElement(s, sym)) {
        if (i + 1 == n) {
          matched = true;
        } else {
          next_set.insert(i + 1);
        }
      }
    }
    std::vector<int> next(next_set.begin(), next_set.end());
    active_stack_.push_back(next);
    if (matched) StartBuffer(NodeKind::kElement, name, next);
    return Status::OK();
  }

  template <typename Deliver>
  Status OnText(std::string_view text, const Deliver& deliver) {
    if (buffering_) {
      ProjectText(text);
      return Status::OK();
    }
    const GcxQuery::Impl::CompiledPath& steps = slot_.steps_c;
    const int n = static_cast<int>(steps.size());
    for (int i : active_stack_.back()) {
      const auto& s = steps[static_cast<std::size_t>(i)];
      if (i + 1 == n && StepMatchesText(s)) {
        // A text-node binding completes immediately.
        Forest buffer{Tree::Text(std::string(text))};
        return FinishBinding(std::move(buffer), {}, deliver);
      }
    }
    return Status::OK();
  }

  template <typename Deliver>
  Status OnEnd(const Deliver& deliver) {
    if (buffering_) {
      if (buffer_depth_ > 0) {
        --buffer_depth_;
        ProjectEnd();
        return Status::OK();
      }
      // The buffer root closes.
      buffering_ = false;
      Forest buffer = std::move(buffer_);
      buffer_.clear();
      frames_.clear();
      std::vector<int> cont = std::move(cont_);
      active_stack_.pop_back();
      return FinishBinding(std::move(buffer), cont, deliver);
    }
    active_stack_.pop_back();
    return Status::OK();
  }

  std::size_t bindings() const { return bindings_; }

 private:
  struct Frame {
    Forest* attach = nullptr;  // children list of the nearest kept ancestor
    bool kept = false;
    bool keep_all = false;
    std::vector<std::pair<int, int>> positions;  // (projection path, step)
  };

  void StartBuffer(NodeKind kind, std::string_view name,
                   const std::vector<int>& cont) {
    buffering_ = true;
    buffer_depth_ = 0;
    cont_ = cont;
    buffer_.clear();
    buffer_.push_back(Tree(kind, std::string(name)));
    Charge(name);
    Frame root;
    root.attach = &buffer_[0].children;
    root.kept = true;
    // Nested matches are resolved by re-scanning the buffer, so everything
    // must be retained when they are possible.
    root.keep_all = slot_.project_all || !cont.empty();
    for (std::size_t p = 0; p < slot_.projection.size(); ++p) {
      root.positions.emplace_back(static_cast<int>(p), 0);
    }
    frames_.push_back(std::move(root));
  }

  void ProjectStart(SymbolId sym, std::string_view name) {
    const Frame& parent = frames_.back();
    Frame f;
    f.keep_all = parent.keep_all;
    bool advanced = false;
    for (const auto& [p, i] : parent.positions) {
      const GcxQuery::Impl::CompiledPath& steps =
          slot_.projection_c[static_cast<std::size_t>(p)];
      const auto& s = steps[static_cast<std::size_t>(i)];
      if (s.axis == Axis::kDescendant) f.positions.emplace_back(p, i);
      if (StepMatchesElement(s, sym)) {
        if (i + 1 == static_cast<int>(steps.size())) {
          f.keep_all = true;  // path target: keep the whole subtree
          advanced = true;
        } else {
          f.positions.emplace_back(p, i + 1);
          advanced = true;
        }
      }
    }
    f.kept = parent.keep_all || advanced;
    if (f.kept) {
      parent_attach_check();
      frames_.back().attach->push_back(
          Tree(NodeKind::kElement, std::string(name)));
      f.attach = &frames_.back().attach->back().children;
      Charge(name);
    } else {
      // Pruned: descendants that survive attach to the nearest kept
      // ancestor (safe: only descendant-axis positions continue here).
      f.attach = frames_.back().attach;
    }
    frames_.push_back(std::move(f));
  }

  void ProjectText(std::string_view text) {
    const Frame& parent = frames_.back();
    bool keep = parent.keep_all;
    for (const auto& [p, i] : parent.positions) {
      const GcxQuery::Impl::CompiledPath& steps =
          slot_.projection_c[static_cast<std::size_t>(p)];
      if (StepMatchesText(steps[static_cast<std::size_t>(i)])) keep = true;
    }
    if (keep) {
      parent.attach->push_back(Tree::Text(std::string(text)));
      Charge(text);
    }
  }

  void ProjectEnd() { frames_.pop_back(); }

  void parent_attach_check() { XQMFT_CHECK(frames_.back().attach != nullptr); }

  void Charge(std::string_view label) {
    std::size_t b = NodeBytes(label);
    buffer_bytes_ += b;
    tracker_->Charge(b);
  }

  void ReleaseBuffer() {
    tracker_->Release(buffer_bytes_);
    buffer_bytes_ = 0;
  }

  // Collects nested matches below `f` (pre-order) for active positions
  // `set`, mirroring the streaming matcher over the buffered fragment.
  void NestedMatches(const Forest& f, const std::vector<int>& set,
                     std::vector<NodeRef>* out) const {
    if (set.empty()) return;
    const RelPath& steps = *slot_.steps;
    const int n = static_cast<int>(steps.size());
    for (std::size_t idx = 0; idx < f.size(); ++idx) {
      const Tree& t = f[idx];
      std::set<int> next_set;
      bool matched = false;
      for (int i : set) {
        const PathStep& s = steps[static_cast<std::size_t>(i)];
        if (s.axis == Axis::kDescendant) next_set.insert(i);
        if (s.test.Matches(t.kind, t.label)) {
          if (i + 1 == n) {
            matched = true;
          } else {
            next_set.insert(i + 1);
          }
        }
      }
      if (matched) out->push_back(NodeRef{&f, idx});
      NestedMatches(t.children,
                    std::vector<int>(next_set.begin(), next_set.end()), out);
    }
  }

  template <typename Deliver>
  Status FinishBinding(Forest buffer, const std::vector<int>& cont,
                       const Deliver& deliver) {
    std::vector<NodeRef> bindings;
    bindings.push_back(NodeRef{&buffer, 0});
    NestedMatches(buffer[0].children, cont, &bindings);
    Status st = Status::OK();
    for (const NodeRef& b : bindings) {
      bool pass = true;
      for (const Predicate* p : slot_.final_preds) {
        if (!EvalPredicate(buffer, b, *p)) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      ++bindings_;
      Forest result;
      if (slot_.body == nullptr) {
        result.push_back(b.node());  // copy the matched subtree
      } else {
        Result<Forest> r = EvaluateQueryBound(*slot_.body, buffer, slot_.var, b);
        if (!r.ok()) {
          st = r.status();
          break;
        }
        result = std::move(r).value();
      }
      st = deliver(std::move(result));
      if (!st.ok()) break;
    }
    ReleaseBuffer();
    return st;
  }

  const GcxQuery::Impl::Slot& slot_;
  MemoryTracker* tracker_;
  std::vector<std::vector<int>> active_stack_;
  bool buffering_ = false;
  int buffer_depth_ = 0;
  Forest buffer_;
  std::vector<int> cont_;
  std::vector<Frame> frames_;
  std::size_t buffer_bytes_ = 0;
  std::size_t bindings_ = 0;
};

// Counting wrapper so GcxStats can report output events.
class CountingForwardSink : public OutputSink {
 public:
  explicit CountingForwardSink(OutputSink* inner) : inner_(inner) {}
  void StartElement(std::string_view name) override {
    inner_->StartElement(name);
    ++events_;
  }
  void EndElement(std::string_view name) override {
    inner_->EndElement(name);
    ++events_;
  }
  void Text(std::string_view content) override {
    inner_->Text(content);
    ++events_;
  }
  std::size_t events() const { return events_; }

 private:
  OutputSink* inner_;
  std::size_t events_ = 0;
};

}  // namespace

GcxQuery::GcxQuery(const QueryExpr& query) : impl_(new Impl) {
  impl_->query = &query;
}
GcxQuery::~GcxQuery() = default;

Status GcxSupports(const QueryExpr& query) {
  GcxQuery::Impl impl;
  return impl.Build(query);
}

Result<std::unique_ptr<GcxQuery>> GcxQuery::Compile(const QueryExpr& query) {
  XQMFT_RETURN_NOT_OK(ValidateQuery(query));
  std::unique_ptr<GcxQuery> out(new GcxQuery(query));
  XQMFT_RETURN_NOT_OK(out->impl_->Build(query));
  return out;
}

Status GcxQuery::Run(ByteSource* source, OutputSink* sink, GcxOptions options,
                     GcxStats* stats) const {
  const Impl& impl = *impl_;
  MemoryTracker tracker;
  CountingForwardSink counting(sink);

  std::vector<SlotRun> runs;
  runs.reserve(impl.slots.size());
  for (const auto& slot : impl.slots) runs.emplace_back(slot, &tracker);

  // Single-slot queries stream binding results directly; multi-slot queries
  // (e.g. the doubling query) must buffer each slot's results until the
  // skeleton position is reached at end of input.
  const bool streaming_mode = impl.slots.size() == 1;
  std::vector<Forest> slot_results(impl.slots.size());

  std::size_t emitted_prefix = 0;
  if (streaming_mode) {
    // Emit skeleton tokens up to the slot.
    while (emitted_prefix < impl.skeleton.size() &&
           impl.skeleton[emitted_prefix].kind != Impl::TokKind::kSlot) {
      const auto& tok = impl.skeleton[emitted_prefix];
      if (tok.kind == Impl::TokKind::kStart) counting.StartElement(tok.text);
      if (tok.kind == Impl::TokKind::kEnd) counting.EndElement(tok.text);
      if (tok.kind == Impl::TokKind::kText) counting.Text(tok.text);
      ++emitted_prefix;
    }
  }

  auto deliver_for = [&](std::size_t slot_index) {
    return [&, slot_index](Forest result) -> Status {
      if (streaming_mode) {
        EmitForest(result, &counting);
      } else {
        std::size_t b = EstimateForestBytes(result);
        tracker.Charge(b);
        AppendForest(&slot_results[slot_index], std::move(result));
      }
      if (tracker.current_bytes() > options.max_buffer_bytes) {
        return Status::ResourceExhausted(StrFormat(
            "GCX buffer limit exceeded (%zu > %zu bytes)",
            tracker.current_bytes(), options.max_buffer_bytes));
      }
      return Status::OK();
    };
  };

  // Run-local table copy: path-test ids stay aligned with the compiled
  // steps, input names discovered by the parser grow only this copy.
  SymbolTable symbols = impl.symbols;
  SaxParser parser(source, options.sax, &symbols);
  XmlEvent ev;
  while (true) {
    XQMFT_RETURN_NOT_OK(parser.Next(&ev));
    if (ev.type == XmlEventType::kEndOfDocument) break;
    for (std::size_t s = 0; s < runs.size(); ++s) {
      switch (ev.type) {
        case XmlEventType::kStartElement:
          XQMFT_RETURN_NOT_OK(runs[s].OnStart(ev.symbol, ev.name));
          break;
        case XmlEventType::kText:
          XQMFT_RETURN_NOT_OK(runs[s].OnText(ev.text, deliver_for(s)));
          break;
        case XmlEventType::kEndElement:
          XQMFT_RETURN_NOT_OK(runs[s].OnEnd(deliver_for(s)));
          break;
        default:
          break;
      }
      if (tracker.current_bytes() > options.max_buffer_bytes) {
        return Status::ResourceExhausted(StrFormat(
            "GCX buffer limit exceeded (%zu > %zu bytes)",
            tracker.current_bytes(), options.max_buffer_bytes));
      }
    }
  }

  // Emit the remaining skeleton (everything, in buffered mode).
  for (std::size_t i = streaming_mode ? emitted_prefix + 1 : 0;
       i < impl.skeleton.size(); ++i) {
    const auto& tok = impl.skeleton[i];
    switch (tok.kind) {
      case Impl::TokKind::kStart:
        counting.StartElement(tok.text);
        break;
      case Impl::TokKind::kEnd:
        counting.EndElement(tok.text);
        break;
      case Impl::TokKind::kText:
        counting.Text(tok.text);
        break;
      case Impl::TokKind::kSlot:
        if (!streaming_mode) {
          EmitForest(slot_results[static_cast<std::size_t>(tok.slot)],
                     &counting);
        }
        break;
    }
  }

  if (stats != nullptr) {
    stats->peak_bytes = tracker.peak_bytes();
    stats->bytes_in = parser.bytes_consumed();
    stats->output_events = counting.events();
    stats->bindings = 0;
    for (const SlotRun& r : runs) stats->bindings += r.bindings();
  }
  return Status::OK();
}

Status GcxTransformString(const QueryExpr& query, const std::string& xml,
                          OutputSink* sink, GcxOptions options,
                          GcxStats* stats) {
  XQMFT_ASSIGN_OR_RETURN(std::unique_ptr<GcxQuery> q, GcxQuery::Compile(query));
  StringSource source(xml);
  return q->Run(&source, sink, options, stats);
}

}  // namespace xqmft
