// GCX-like baseline: a projection-based, buffer-minimizing streaming XQuery
// engine, reimplementing the documented evaluation strategy of GCX (Koch,
// Scherzinger & Schmidt, VLDB'07) that the paper benchmarks against.
//
// This is the simulated comparator called for by the reproduction plan (see
// DESIGN.md §3): GCX itself is a separate C++ codebase; what the paper's
// Figure 4 compares against is its *algorithmic profile*, which this engine
// shares:
//
//   * one SAX pass; top-level for-loops over $input paths are matched by a
//     position-set automaton on the open-element stack;
//   * on a binding match, only the projection of the subtree actually
//     needed by the loop body (paths used in the body and its predicates)
//     is buffered; the body is evaluated and emitted when the binding
//     closes, and the buffer is discarded immediately (GCX's signOff);
//   * XPath predicates are handled like GCX's where-clauses: the predicate
//     paths join the projection and are tested on the buffered fragment;
//   * the GCX fragment's restrictions hold: no following-sibling axis
//     (Figure 4(c)'s N/A), no top-level let;
//   * queries that copy whole input regions ({$input/*}) degrade to
//     buffering, bounded by `max_buffer_bytes` — the knob that reproduces
//     GCX's reported failure on the doubling query (Section 5).
#ifndef XQMFT_GCX_GCX_ENGINE_H_
#define XQMFT_GCX_GCX_ENGINE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "util/status.h"
#include "xml/events.h"
#include "xml/sax_parser.h"
#include "xquery/ast.h"

namespace xqmft {

struct GcxOptions {
  /// Abort with ResourceExhausted when live buffers exceed this many bytes.
  std::size_t max_buffer_bytes = static_cast<std::size_t>(-1);
  SaxOptions sax;
};

struct GcxStats {
  std::size_t peak_bytes = 0;    ///< peak buffered bytes
  std::size_t bindings = 0;      ///< loop bindings evaluated
  std::size_t bytes_in = 0;      ///< input bytes consumed
  std::size_t output_events = 0;
};

/// Returns OK iff the query is inside the GCX fragment; otherwise
/// NotSupported with the offending feature named.
Status GcxSupports(const QueryExpr& query);

/// \brief Compiled GCX query: skeleton plus stream slots.
class GcxQuery {
 public:
  /// Compiles `query`; fails with NotSupported outside the fragment.
  /// The query must outlive the GcxQuery.
  static Result<std::unique_ptr<GcxQuery>> Compile(const QueryExpr& query);
  ~GcxQuery();

  /// Runs the query over a document stream.
  Status Run(ByteSource* source, OutputSink* sink, GcxOptions options = {},
             GcxStats* stats = nullptr) const;

  /// Implementation detail (defined in gcx_engine.cc; declared here so the
  /// runtime helpers in the anonymous namespace can name it).
  struct Impl;

 private:
  explicit GcxQuery(const QueryExpr& query);
  std::unique_ptr<Impl> impl_;
};

/// One-shot helper over an in-memory document.
Status GcxTransformString(const QueryExpr& query, const std::string& xml,
                          OutputSink* sink, GcxOptions options = {},
                          GcxStats* stats = nullptr);

}  // namespace xqmft

#endif  // XQMFT_GCX_GCX_ENGINE_H_
