#include "mft/dispatch.h"

namespace xqmft {

namespace {

// Interns every output label of `rhs` (recursively) and fills the
// symbol_id caches, so instantiation never touches label strings.
void ResolveRhsSymbols(const Rhs& rhs, SymbolTable* table) {
  for (const RhsNode& node : rhs) {
    switch (node.kind) {
      case RhsKind::kLabel:
        if (!node.current_label) {
          node.symbol_id = table->Intern(node.symbol.kind, node.symbol.name);
        }
        ResolveRhsSymbols(node.children, table);
        break;
      case RhsKind::kCall:
        for (const Rhs& arg : node.args) ResolveRhsSymbols(arg, table);
        break;
      case RhsKind::kParam:
        break;
    }
  }
}

// Does any RHS node (recursively) copy the current input label? Over a text
// node %t copies the content, so this makes the transducer text-capturing.
bool RhsUsesCurrentLabel(const Rhs& rhs) {
  for (const RhsNode& node : rhs) {
    switch (node.kind) {
      case RhsKind::kLabel:
        if (node.current_label) return true;
        if (RhsUsesCurrentLabel(node.children)) return true;
        break;
      case RhsKind::kCall:
        for (const Rhs& arg : node.args) {
          if (RhsUsesCurrentLabel(arg)) return true;
        }
        break;
      case RhsKind::kParam:
        break;
    }
  }
  return false;
}

}  // namespace

RuleDispatch::RuleDispatch(const Mft& mft, SymbolTable* table) : mft_(&mft) {
  // Pass 1: intern every symbol mentioned anywhere (LHS patterns and RHS
  // output labels) so the dense width covers the whole rule alphabet.
  for (StateId q = 0; q < mft.num_states(); ++q) {
    const StateRules& r = mft.rules(q);
    for (const auto& [sym, rhs] : r.symbol_rules) {
      table->Intern(sym.kind, sym.name);
      ResolveRhsSymbols(rhs, table);
      // Only rules that can fire over a *text* node observe content: a
      // text-pattern LHS matches by content, and %label over a text node
      // copies it. Element-keyed rules fire on element events alone, where
      // %label resolves from the SymbolId — they never need content.
      if (sym.kind == NodeKind::kText) captures_text_ = true;
    }
    if (r.text_rule) {
      ResolveRhsSymbols(*r.text_rule, table);
      if (RhsUsesCurrentLabel(*r.text_rule)) captures_text_ = true;
    }
    if (r.default_rule) {
      ResolveRhsSymbols(*r.default_rule, table);
      // default_rule reaches text nodes only when no text_rule shadows it
      // (row.text_fallback prefers text_rule).
      if (!r.text_rule && RhsUsesCurrentLabel(*r.default_rule)) {
        captures_text_ = true;
      }
    }
    if (r.epsilon_rule) ResolveRhsSymbols(*r.epsilon_rule, table);
  }
  width_ = static_cast<SymbolId>(table->size());

  // Pass 2: one row per state, every dense slot pre-resolved to the rule
  // that Mft::LookupRule would select for that symbol.
  rows_.resize(static_cast<std::size_t>(mft.num_states()));
  for (StateId q = 0; q < mft.num_states(); ++q) {
    const StateRules& r = mft.rules(q);
    Row& row = rows_[static_cast<std::size_t>(q)];
    row.element_fallback = r.default_rule ? &*r.default_rule : nullptr;
    row.text_fallback = r.text_rule      ? &*r.text_rule
                        : r.default_rule ? &*r.default_rule
                                         : nullptr;
    row.epsilon = r.epsilon_rule ? &*r.epsilon_rule : nullptr;
    // Only element-kind ids are dense-dispatched (ForElement); text nodes
    // carry content, not ids, and always go through ForText. Text-kind ids
    // (rule output literals, text-pattern LHS symbols) keep a null slot so
    // the unused path cannot masquerade as authoritative.
    row.slots.resize(width_);
    for (SymbolId id = 0; id < width_; ++id) {
      row.slots[id] = table->kind(id) == NodeKind::kElement
                          ? row.element_fallback
                          : nullptr;
    }
    for (const auto& [sym, rhs] : r.symbol_rules) {
      if (sym.kind == NodeKind::kText) {
        row.has_text_symbols = true;
        continue;
      }
      row.slots[table->Find(sym.kind, sym.name)] = &rhs;
    }
  }
}

}  // namespace xqmft
