// Macro Forest Transducers (Definition 2 of the paper).
//
// An MFT is a finite set of ranked states with rules of the forms
//
//   q(sigma(x1)x2, y1..ym) -> rhs       (symbol rule, sigma in Sigma)
//   q(%ttext(x1)x2, y1..ym) -> rhs      (text rule: any text node)
//   q(%t(x1)x2, y1..ym) -> rhs          (default rule: any node; required)
//   q(eps, y1..ym) -> rhs               (epsilon rule; required)
//
// where rhs is a forest over output labels, parameter references y_j, and
// state calls q'(x_i, rhs_1, .., rhs_n) with x_i in {x0, x1, x2}: x0 = the
// current forest (a "stay move"), x1 = the children of the current head node,
// x2 = its following siblings. In an epsilon rule only x0 exists. Output
// labels in default/text rules may be `%t`, which copies the current node's
// (kind, name) label. Transducers are deterministic and total by
// construction; rule lookup order is: exact symbol, then the text rule for
// text nodes, then the default rule.
#ifndef XQMFT_MFT_MFT_H_
#define XQMFT_MFT_MFT_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"
#include "xml/forest.h"
#include "xml/symbol.h"
#include "xml/symbol_table.h"

namespace xqmft {

class RuleDispatch;

/// Identifier of an MFT state (index into the state table).
using StateId = int;

/// Input variable selector in a state call.
enum class InputVar : unsigned char {
  kX0 = 0,  ///< the current forest (stay move)
  kX1 = 1,  ///< children of the current head node
  kX2 = 2,  ///< following siblings of the current head node
};

struct RhsNode;

/// A right-hand-side forest: a sequence of RHS items. Empty = eps.
using Rhs = std::vector<RhsNode>;

enum class RhsKind : unsigned char {
  kLabel,  ///< output node: fixed symbol or %t (copy of current input label)
  kCall,   ///< state call q(x_i, args...)
  kParam,  ///< accumulating parameter y_j
};

/// \brief One node of a rule right-hand side.
struct RhsNode {
  RhsKind kind = RhsKind::kLabel;

  // kLabel
  bool current_label = false;  ///< true for %t output labels
  Symbol symbol;               ///< valid when !current_label
  /// Interned id of `symbol` in the owning Mft's table. A memoization cache
  /// filled when the Mft compiles its dispatch (hence mutable); ignored by
  /// equality. kInvalidSymbol until then.
  mutable SymbolId symbol_id = kInvalidSymbol;
  Rhs children;

  // kCall
  StateId state = -1;
  InputVar input = InputVar::kX0;
  std::vector<Rhs> args;

  // kParam
  int param = 0;  ///< 1-based parameter index

  bool operator==(const RhsNode& o) const;

  static RhsNode Label(Symbol s, Rhs children = {}) {
    RhsNode n;
    n.kind = RhsKind::kLabel;
    n.symbol = std::move(s);
    n.children = std::move(children);
    return n;
  }
  static RhsNode CurrentLabel(Rhs children = {}) {
    RhsNode n;
    n.kind = RhsKind::kLabel;
    n.current_label = true;
    n.children = std::move(children);
    return n;
  }
  static RhsNode Call(StateId q, InputVar x, std::vector<Rhs> args = {}) {
    RhsNode n;
    n.kind = RhsKind::kCall;
    n.state = q;
    n.input = x;
    n.args = std::move(args);
    return n;
  }
  static RhsNode Param(int j) {
    RhsNode n;
    n.kind = RhsKind::kParam;
    n.param = j;
    return n;
  }
};

/// Number of nodes of an RHS forest (labels, calls and params all count 1;
/// children and argument forests count recursively).
std::size_t RhsSize(const Rhs& rhs);

/// \brief All rules of one state.
struct StateRules {
  std::unordered_map<Symbol, Rhs, SymbolHash> symbol_rules;
  std::optional<Rhs> text_rule;     ///< %ttext rule (any text node)
  std::optional<Rhs> default_rule;  ///< %t rule (required for validity)
  std::optional<Rhs> epsilon_rule;  ///< eps rule (required for validity)
};

/// \brief A deterministic, total macro forest transducer.
///
/// Rules are authored against string-named Symbols; for execution the Mft
/// lazily compiles a RuleDispatch (mft/dispatch.h): every rule symbol is
/// interned into the transducer's SymbolTable and per-state flat tables make
/// rule selection an array index. The compiled form is a cache — any rule
/// mutation invalidates it and the next dispatch() call recompiles. Interned
/// ids are never reassigned, so recompilation keeps existing ids stable.
class Mft {
 public:
  Mft();
  // The dispatch cache holds pointers into rules_, so it must not survive a
  // copy (or the donor's move): copies start with a cold cache. Defined out
  // of line (RuleDispatch is incomplete here).
  Mft(const Mft& o);
  Mft(Mft&& o) noexcept;
  Mft& operator=(const Mft& o);
  Mft& operator=(Mft&& o) noexcept;
  ~Mft();

  /// Adds a state with `num_params` accumulating parameters (rank is
  /// num_params + 1). Names are for printing; they need not be unique but
  /// the printer disambiguates duplicates.
  StateId AddState(std::string name, int num_params);

  int num_states() const { return static_cast<int>(states_.size()); }
  int num_params(StateId q) const { return states_[q].num_params; }
  int rank(StateId q) const { return states_[q].num_params + 1; }
  const std::string& state_name(StateId q) const { return states_[q].name; }
  // Out of line (mft.cc): mutators invalidate the dispatch AND the lowering
  // cache — a cached lowering bakes in the initial state and bakes state
  // names into its diagnostics, so either mutation must drop both, exactly
  // like the rule setters.
  void set_state_name(StateId q, std::string name);

  StateId initial_state() const { return initial_; }
  void set_initial_state(StateId q);

  void SetSymbolRule(StateId q, Symbol s, Rhs rhs);
  void SetTextRule(StateId q, Rhs rhs);
  void SetDefaultRule(StateId q, Rhs rhs);
  void SetEpsilonRule(StateId q, Rhs rhs);

  /// The paper's q(%, y..) shorthand: installs `rhs` as both the default and
  /// the epsilon rule. `rhs` must not use x1/x2.
  void SetStayRule(StateId q, const Rhs& rhs) {
    SetDefaultRule(q, rhs);
    SetEpsilonRule(q, rhs);
  }

  const StateRules& rules(StateId q) const { return rules_[q]; }
  StateRules& mutable_rules(StateId q) {
    InvalidateDispatch();  // caller may rewrite rules in place
    return rules_[q];
  }

  /// The compiled dense dispatch (built on first use, rebuilt after any rule
  /// mutation). Lazy compilation is single-threaded; once compiled, the
  /// dispatch (and symbols()) are read-only and safe to share across
  /// concurrent engine runs, provided no rule mutates meanwhile. For the
  /// pipeline this contract is structural: the parallel entry points take a
  /// CompiledPlan (core/pipeline.h), whose builder compiled the dispatch
  /// before the plan could be shared. Only hand-rolled parallel callers over
  /// a bare Mft still need the manual rule — one dispatch() call on the
  /// coordinating thread before fanning out.
  const RuleDispatch& dispatch() const;

  /// The symbol table the dispatch is compiled against. The streaming engine
  /// seeds its per-run table from this so input names and rule symbols share
  /// one id space.
  const SymbolTable& symbols() const;

  /// Selects the rule applicable to a node with the given kind and label:
  /// exact symbol rule, else text rule (for text nodes), else default rule.
  /// Never null on a validated transducer.
  const Rhs* LookupRule(StateId q, NodeKind kind, const std::string& label) const;

  /// The epsilon rule of q. Never null on a validated transducer.
  const Rhs* LookupEpsilonRule(StateId q) const;

  /// Structural well-formedness: initial state rank 1, default and epsilon
  /// rules present for every state, call arities match state ranks, parameter
  /// indices within rank, x1/x2 absent from epsilon rules, %t output labels
  /// absent from epsilon rules.
  Status Validate() const;

  /// The alphabet Sigma: symbols tested in rules or emitted in right-hand
  /// sides.
  std::set<Symbol> CollectAlphabet() const;

  /// The paper's size |M|: |Sigma| plus the sizes of all left-hand and
  /// right-hand sides. An lhs q(sigma(x1)x2, y1..ym) counts 4 + m nodes; an
  /// epsilon lhs counts 2 + m.
  std::size_t Size() const;

  /// True if every state has rank 1 (no accumulating parameters): the paper's
  /// top-down forest transducer (FT) subclass.
  bool IsForestTransducer() const;

  /// Pretty-prints all rules in the paper's syntax (parsable by ParseMft).
  std::string ToString() const;

  /// Total number of rules.
  std::size_t NumRules() const;

  /// Sum of num_params over all states (optimization metric).
  std::size_t TotalParams() const;

  /// Opaque slot for the execution-lowering cache (src/lower). Type-erased
  /// so mft stays independent of the lower module; the slot follows the
  /// dispatch-cache lifecycle exactly — any rule mutation clears it, copies
  /// and moves start cold, and lazy fills are single-threaded until a
  /// CompiledPlan forces the fill before the transducer is shared.
  const std::shared_ptr<const void>& lowering_cache() const {
    return lowering_cache_;
  }
  void set_lowering_cache(std::shared_ptr<const void> cache) const {
    lowering_cache_ = std::move(cache);
  }

 private:
  struct StateInfo {
    std::string name;
    int num_params;
  };

  void InvalidateDispatch();  // out of line: RuleDispatch is incomplete

  std::vector<StateInfo> states_;
  std::vector<StateRules> rules_;
  StateId initial_ = 0;

  // Compiled-dispatch cache. The table only ever grows (ids stay stable
  // across recompiles); the dispatch is dropped on any rule mutation.
  // Mutable: compilation is observable only through dispatch()/symbols().
  mutable SymbolTable symbols_;
  mutable std::unique_ptr<RuleDispatch> dispatch_;
  mutable std::shared_ptr<const void> lowering_cache_;
};

/// Parses the textual rule syntax printed by Mft::ToString. One rule per
/// line; `#` starts a comment. Patterns: `sym(x1)x2`, `"text"(x1)x2`,
/// `%ttext(x1)x2`, `%t(x1)x2`, `eps`, or `%` (shorthand for default+epsilon).
/// RHS items: `eps`, `yN`, `label`, `label(...)`, `"text"`, `%t`, `%t(...)`,
/// or a call `state(xI, arg, ...)`. A name is a call iff its first argument
/// is x0/x1/x2. The first rule's state is the initial state.
Result<Mft> ParseMft(const std::string& text);

}  // namespace xqmft

#endif  // XQMFT_MFT_MFT_H_
