#include "mft/optimize.h"

#include <functional>
#include <optional>
#include <set>
#include <utility>

#include "util/strings.h"

namespace xqmft {

namespace {

// Applies `fn` to every rule RHS of `mft`.
void ForEachRhs(Mft* mft, const std::function<void(StateId, Rhs*)>& fn) {
  for (StateId q = 0; q < mft->num_states(); ++q) {
    StateRules& r = mft->mutable_rules(q);
    for (auto& [sym, rhs] : r.symbol_rules) fn(q, &rhs);
    if (r.text_rule) fn(q, &*r.text_rule);
    if (r.default_rule) fn(q, &*r.default_rule);
    if (r.epsilon_rule) fn(q, &*r.epsilon_rule);
  }
}

void ForEachRhsConst(const Mft& mft,
                     const std::function<void(StateId, const Rhs&)>& fn) {
  for (StateId q = 0; q < mft.num_states(); ++q) {
    const StateRules& r = mft.rules(q);
    for (const auto& [sym, rhs] : r.symbol_rules) fn(q, rhs);
    if (r.text_rule) fn(q, *r.text_rule);
    if (r.default_rule) fn(q, *r.default_rule);
    if (r.epsilon_rule) fn(q, *r.epsilon_rule);
  }
}

// Collects the parameters with a *bare* occurrence in `rhs`: an occurrence
// not inside an argument of a state call (label children are still bare).
void CollectBareParams(const Rhs& rhs, std::set<int>* out) {
  for (const RhsNode& node : rhs) {
    switch (node.kind) {
      case RhsKind::kParam:
        out->insert(node.param);
        break;
      case RhsKind::kLabel:
        CollectBareParams(node.children, out);
        break;
      case RhsKind::kCall:
        break;  // arguments are not bare positions
    }
  }
}

// Visits every call node in `rhs`, at any nesting depth (label children and
// call arguments included).
void ForEachCall(const Rhs& rhs,
                 const std::function<void(const RhsNode&)>& fn) {
  for (const RhsNode& node : rhs) {
    switch (node.kind) {
      case RhsKind::kParam:
        break;
      case RhsKind::kLabel:
        ForEachCall(node.children, fn);
        break;
      case RhsKind::kCall:
        fn(node);
        for (const Rhs& arg : node.args) ForEachCall(arg, fn);
        break;
    }
  }
}

// True if `rhs` is a ground output forest: fixed labels only (no calls,
// parameters, or %t).
bool IsGround(const Rhs& rhs) {
  for (const RhsNode& node : rhs) {
    if (node.kind != RhsKind::kLabel || node.current_label) return false;
    if (!IsGround(node.children)) return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Pass 1: unused parameter reduction
// ---------------------------------------------------------------------------

bool RemoveUnusedParameters(Mft* mft, int* removed) {
  const int n = mft->num_states();
  // necessary[q] = set of 1-based parameter indices known to reach output.
  std::vector<std::set<int>> necessary(static_cast<std::size_t>(n));

  // Seed: bare occurrences.
  ForEachRhsConst(*mft, [&](StateId q, const Rhs& rhs) {
    CollectBareParams(rhs, &necessary[static_cast<std::size_t>(q)]);
  });

  // Closure: a parameter is necessary if it occurs bare in an argument
  // passed into a necessary parameter position of any call.
  bool grew = true;
  while (grew) {
    grew = false;
    ForEachRhsConst(*mft, [&](StateId q, const Rhs& rhs) {
      ForEachCall(rhs, [&](const RhsNode& call) {
        const std::set<int>& callee_needs =
            necessary[static_cast<std::size_t>(call.state)];
        for (std::size_t j = 0; j < call.args.size(); ++j) {
          if (!callee_needs.count(static_cast<int>(j) + 1)) continue;
          std::set<int> bare;
          CollectBareParams(call.args[j], &bare);
          for (int i : bare) {
            if (necessary[static_cast<std::size_t>(q)].insert(i).second) {
              grew = true;
            }
          }
        }
      });
    });
  }

  // keep/remap tables.
  int total_removed = 0;
  std::vector<std::vector<int>> remap(static_cast<std::size_t>(n));
  std::vector<int> new_counts(static_cast<std::size_t>(n));
  for (StateId q = 0; q < n; ++q) {
    int m = mft->num_params(q);
    remap[static_cast<std::size_t>(q)].assign(static_cast<std::size_t>(m) + 1,
                                              -1);
    int next = 0;
    for (int i = 1; i <= m; ++i) {
      if (necessary[static_cast<std::size_t>(q)].count(i)) {
        remap[static_cast<std::size_t>(q)][static_cast<std::size_t>(i)] =
            ++next;
      } else {
        ++total_removed;
      }
    }
    new_counts[static_cast<std::size_t>(q)] = next;
  }
  if (removed != nullptr) *removed = total_removed;
  if (total_removed == 0) return false;

  // Rebuild with dropped parameters.
  Mft out;
  for (StateId q = 0; q < n; ++q) {
    out.AddState(mft->state_name(q), new_counts[static_cast<std::size_t>(q)]);
  }
  out.set_initial_state(mft->initial_state());

  std::function<Rhs(StateId, const Rhs&)> rewrite = [&](StateId host,
                                                        const Rhs& rhs) -> Rhs {
    Rhs result;
    for (const RhsNode& node : rhs) {
      switch (node.kind) {
        case RhsKind::kParam: {
          int ni = remap[static_cast<std::size_t>(host)]
                        [static_cast<std::size_t>(node.param)];
          XQMFT_CHECK(ni > 0);  // bare occurrence of an unused parameter
          result.push_back(RhsNode::Param(ni));
          break;
        }
        case RhsKind::kLabel: {
          RhsNode copy = node;
          copy.children = rewrite(host, node.children);
          result.push_back(std::move(copy));
          break;
        }
        case RhsKind::kCall: {
          RhsNode copy;
          copy.kind = RhsKind::kCall;
          copy.state = node.state;
          copy.input = node.input;
          const std::set<int>& callee_needs =
              necessary[static_cast<std::size_t>(node.state)];
          for (std::size_t j = 0; j < node.args.size(); ++j) {
            if (callee_needs.count(static_cast<int>(j) + 1)) {
              copy.args.push_back(rewrite(host, node.args[j]));
            }
          }
          result.push_back(std::move(copy));
          break;
        }
      }
    }
    return result;
  };

  for (StateId q = 0; q < n; ++q) {
    const StateRules& r = mft->rules(q);
    for (const auto& [sym, rhs] : r.symbol_rules) {
      out.SetSymbolRule(q, sym, rewrite(q, rhs));
    }
    if (r.text_rule) out.SetTextRule(q, rewrite(q, *r.text_rule));
    if (r.default_rule) out.SetDefaultRule(q, rewrite(q, *r.default_rule));
    if (r.epsilon_rule) out.SetEpsilonRule(q, rewrite(q, *r.epsilon_rule));
  }
  *mft = std::move(out);
  return true;
}

// ---------------------------------------------------------------------------
// Pass 2: constant parameter reduction
// ---------------------------------------------------------------------------

bool RemoveConstantParameters(Mft* mft, int* removed) {
  const int n = mft->num_states();
  struct Candidate {
    bool viable = true;
    bool has_witness = false;
    Rhs value;
  };
  std::vector<std::vector<Candidate>> cand(static_cast<std::size_t>(n));
  for (StateId q = 0; q < n; ++q) {
    cand[static_cast<std::size_t>(q)].resize(
        static_cast<std::size_t>(mft->num_params(q)));
  }

  // Classify every call argument: ground constant, self pass-through, or
  // disqualifying.
  ForEachRhsConst(*mft, [&](StateId host, const Rhs& rhs) {
    ForEachCall(rhs, [&](const RhsNode& call) {
      for (std::size_t j = 0; j < call.args.size(); ++j) {
        Candidate& c = cand[static_cast<std::size_t>(call.state)][j];
        if (!c.viable) continue;
        const Rhs& arg = call.args[j];
        // Self pass-through: y_{j+1} in a rule of the same state.
        if (host == call.state && arg.size() == 1 &&
            arg[0].kind == RhsKind::kParam &&
            arg[0].param == static_cast<int>(j) + 1) {
          continue;
        }
        if (IsGround(arg)) {
          if (!c.has_witness) {
            c.has_witness = true;
            c.value = arg;
          } else if (!(c.value == arg)) {
            c.viable = false;
          }
          continue;
        }
        c.viable = false;
      }
    });
  });

  // Decide removals. A parameter with no ground witness anywhere has no
  // defined constant value; leave it to the other passes.
  int total_removed = 0;
  std::vector<std::vector<int>> remap(static_cast<std::size_t>(n));
  std::vector<int> new_counts(static_cast<std::size_t>(n));
  std::vector<std::vector<const Rhs*>> subst(static_cast<std::size_t>(n));
  for (StateId q = 0; q < n; ++q) {
    int m = mft->num_params(q);
    remap[static_cast<std::size_t>(q)].assign(static_cast<std::size_t>(m) + 1,
                                              -1);
    subst[static_cast<std::size_t>(q)].assign(
        static_cast<std::size_t>(m) + 1, nullptr);
    int next = 0;
    for (int i = 1; i <= m; ++i) {
      Candidate& c =
          cand[static_cast<std::size_t>(q)][static_cast<std::size_t>(i) - 1];
      if (c.viable && c.has_witness) {
        subst[static_cast<std::size_t>(q)][static_cast<std::size_t>(i)] =
            &c.value;
        ++total_removed;
      } else {
        remap[static_cast<std::size_t>(q)][static_cast<std::size_t>(i)] =
            ++next;
      }
    }
    new_counts[static_cast<std::size_t>(q)] = next;
  }
  if (removed != nullptr) *removed = total_removed;
  if (total_removed == 0) return false;

  Mft out;
  for (StateId q = 0; q < n; ++q) {
    out.AddState(mft->state_name(q), new_counts[static_cast<std::size_t>(q)]);
  }
  out.set_initial_state(mft->initial_state());

  std::function<Rhs(StateId, const Rhs&)> rewrite = [&](StateId host,
                                                        const Rhs& rhs) -> Rhs {
    Rhs result;
    for (const RhsNode& node : rhs) {
      switch (node.kind) {
        case RhsKind::kParam: {
          const Rhs* sub = subst[static_cast<std::size_t>(host)]
                                [static_cast<std::size_t>(node.param)];
          if (sub != nullptr) {
            // Splice the constant forest in place of the parameter.
            for (const RhsNode& c : *sub) result.push_back(c);
          } else {
            int ni = remap[static_cast<std::size_t>(host)]
                          [static_cast<std::size_t>(node.param)];
            XQMFT_CHECK(ni > 0);
            result.push_back(RhsNode::Param(ni));
          }
          break;
        }
        case RhsKind::kLabel: {
          RhsNode copy = node;
          copy.children = rewrite(host, node.children);
          result.push_back(std::move(copy));
          break;
        }
        case RhsKind::kCall: {
          RhsNode copy;
          copy.kind = RhsKind::kCall;
          copy.state = node.state;
          copy.input = node.input;
          for (std::size_t j = 0; j < node.args.size(); ++j) {
            if (subst[static_cast<std::size_t>(node.state)][j + 1] == nullptr) {
              copy.args.push_back(rewrite(host, node.args[j]));
            }
          }
          result.push_back(std::move(copy));
          break;
        }
      }
    }
    return result;
  };

  for (StateId q = 0; q < n; ++q) {
    const StateRules& r = mft->rules(q);
    for (const auto& [sym, rhs] : r.symbol_rules) {
      out.SetSymbolRule(q, sym, rewrite(q, rhs));
    }
    if (r.text_rule) out.SetTextRule(q, rewrite(q, *r.text_rule));
    if (r.default_rule) out.SetDefaultRule(q, rewrite(q, *r.default_rule));
    if (r.epsilon_rule) out.SetEpsilonRule(q, rewrite(q, *r.epsilon_rule));
  }
  *mft = std::move(out);
  return true;
}

// ---------------------------------------------------------------------------
// Pass 3: stay-move removal (inlining)
// ---------------------------------------------------------------------------

namespace {

// True if all calls in `rhs` (at any depth) use x0 and no %t labels occur.
bool StayInlinable(const Rhs& rhs) {
  for (const RhsNode& node : rhs) {
    switch (node.kind) {
      case RhsKind::kParam:
        break;
      case RhsKind::kLabel:
        if (node.current_label) return false;
        if (!StayInlinable(node.children)) return false;
        break;
      case RhsKind::kCall:
        if (node.input != InputVar::kX0) return false;
        for (const Rhs& arg : node.args) {
          if (!StayInlinable(arg)) return false;
        }
        break;
    }
  }
  return true;
}

bool CallsState(const Rhs& rhs, StateId q) {
  bool found = false;
  ForEachCall(rhs, [&](const RhsNode& call) {
    if (call.state == q) found = true;
  });
  return found;
}

// Clones `body` with every call input x0 replaced by `target` and every
// parameter y_j replaced by args[j-1] (spliced verbatim).
Rhs InstantiateStayBody(const Rhs& body, InputVar target,
                        const std::vector<Rhs>& args) {
  Rhs result;
  for (const RhsNode& node : body) {
    switch (node.kind) {
      case RhsKind::kParam: {
        const Rhs& a = args[static_cast<std::size_t>(node.param) - 1];
        for (const RhsNode& c : a) result.push_back(c);
        break;
      }
      case RhsKind::kLabel: {
        RhsNode copy = node;
        copy.children = InstantiateStayBody(node.children, target, args);
        result.push_back(std::move(copy));
        break;
      }
      case RhsKind::kCall: {
        RhsNode copy;
        copy.kind = RhsKind::kCall;
        copy.state = node.state;
        copy.input = target;  // stay bodies only contain x0 calls
        for (const Rhs& arg : node.args) {
          copy.args.push_back(InstantiateStayBody(arg, target, args));
        }
        result.push_back(std::move(copy));
        break;
      }
    }
  }
  return result;
}

// Rewrites `rhs`, inlining every call to `q` with `body`.
Rhs InlineCalls(const Rhs& rhs, StateId q, const Rhs& body) {
  Rhs result;
  for (const RhsNode& node : rhs) {
    switch (node.kind) {
      case RhsKind::kParam:
        result.push_back(node);
        break;
      case RhsKind::kLabel: {
        RhsNode copy = node;
        copy.children = InlineCalls(node.children, q, body);
        result.push_back(std::move(copy));
        break;
      }
      case RhsKind::kCall: {
        std::vector<Rhs> args;
        args.reserve(node.args.size());
        for (const Rhs& arg : node.args) {
          args.push_back(InlineCalls(arg, q, body));
        }
        if (node.state == q) {
          Rhs inlined = InstantiateStayBody(body, node.input, args);
          for (RhsNode& c : inlined) result.push_back(std::move(c));
        } else {
          RhsNode copy;
          copy.kind = RhsKind::kCall;
          copy.state = node.state;
          copy.input = node.input;
          copy.args = std::move(args);
          result.push_back(std::move(copy));
        }
        break;
      }
    }
  }
  return result;
}

}  // namespace

bool InlineStayStates(Mft* mft, int* inlined) {
  if (inlined != nullptr) *inlined = 0;
  for (StateId q = 0; q < mft->num_states(); ++q) {
    if (q == mft->initial_state()) continue;
    const StateRules& r = mft->rules(q);
    if (!r.symbol_rules.empty() || r.text_rule.has_value()) continue;
    if (!r.default_rule || !r.epsilon_rule) continue;
    if (!(*r.default_rule == *r.epsilon_rule)) continue;
    const Rhs body = *r.default_rule;  // copy: rules are rewritten below
    if (!StayInlinable(body)) continue;
    if (CallsState(body, q)) continue;  // self-recursive stay state
    ForEachRhs(mft, [&](StateId host, Rhs* rhs) {
      if (host == q) return;  // q's own rules become dead
      *rhs = InlineCalls(*rhs, q, body);
    });
    if (inlined != nullptr) *inlined = 1;
    return true;  // one state per invocation; the fixpoint loop iterates
  }
  return false;
}

// ---------------------------------------------------------------------------
// Pass 4: unreachable state removal
// ---------------------------------------------------------------------------

bool RemoveUnreachableStates(Mft* mft, int* removed) {
  const int n = mft->num_states();
  std::vector<bool> reachable(static_cast<std::size_t>(n), false);
  std::vector<StateId> work{mft->initial_state()};
  reachable[static_cast<std::size_t>(mft->initial_state())] = true;
  auto visit_rhs = [&](const Rhs& rhs, std::vector<StateId>* out) {
    ForEachCall(rhs, [&](const RhsNode& call) {
      if (!reachable[static_cast<std::size_t>(call.state)]) {
        reachable[static_cast<std::size_t>(call.state)] = true;
        out->push_back(call.state);
      }
    });
  };
  while (!work.empty()) {
    StateId q = work.back();
    work.pop_back();
    const StateRules& r = mft->rules(q);
    for (const auto& [sym, rhs] : r.symbol_rules) visit_rhs(rhs, &work);
    if (r.text_rule) visit_rhs(*r.text_rule, &work);
    if (r.default_rule) visit_rhs(*r.default_rule, &work);
    if (r.epsilon_rule) visit_rhs(*r.epsilon_rule, &work);
  }

  int dead = 0;
  std::vector<StateId> remap(static_cast<std::size_t>(n), -1);
  for (StateId q = 0; q < n; ++q) {
    if (!reachable[static_cast<std::size_t>(q)]) ++dead;
  }
  if (removed != nullptr) *removed = dead;
  if (dead == 0) return false;

  Mft out;
  for (StateId q = 0; q < n; ++q) {
    if (reachable[static_cast<std::size_t>(q)]) {
      remap[static_cast<std::size_t>(q)] =
          out.AddState(mft->state_name(q), mft->num_params(q));
    }
  }
  out.set_initial_state(
      remap[static_cast<std::size_t>(mft->initial_state())]);

  std::function<Rhs(const Rhs&)> rewrite = [&](const Rhs& rhs) -> Rhs {
    Rhs result;
    for (const RhsNode& node : rhs) {
      RhsNode copy = node;
      if (copy.kind == RhsKind::kLabel) {
        copy.children = rewrite(node.children);
      } else if (copy.kind == RhsKind::kCall) {
        copy.state = remap[static_cast<std::size_t>(node.state)];
        XQMFT_CHECK(copy.state >= 0);
        copy.args.clear();
        for (const Rhs& arg : node.args) copy.args.push_back(rewrite(arg));
      }
      result.push_back(std::move(copy));
    }
    return result;
  };

  for (StateId q = 0; q < n; ++q) {
    if (!reachable[static_cast<std::size_t>(q)]) continue;
    StateId nq = remap[static_cast<std::size_t>(q)];
    const StateRules& r = mft->rules(q);
    for (const auto& [sym, rhs] : r.symbol_rules) {
      out.SetSymbolRule(nq, sym, rewrite(rhs));
    }
    if (r.text_rule) out.SetTextRule(nq, rewrite(*r.text_rule));
    if (r.default_rule) out.SetDefaultRule(nq, rewrite(*r.default_rule));
    if (r.epsilon_rule) out.SetEpsilonRule(nq, rewrite(*r.epsilon_rule));
  }
  *mft = std::move(out);
  return true;
}

// ---------------------------------------------------------------------------
// Orchestration
// ---------------------------------------------------------------------------

MftStats ComputeStats(const Mft& mft) {
  MftStats s;
  s.states = static_cast<std::size_t>(mft.num_states());
  s.rules = mft.NumRules();
  s.params = mft.TotalParams();
  s.size = mft.Size();
  return s;
}

std::string MftStats::ToString() const {
  return StrFormat("states=%zu rules=%zu params=%zu size=%zu", states, rules,
                   params, size);
}

std::string OptimizeReport::ToString() const {
  return StrFormat(
      "before: %s\nafter:  %s\niterations=%d unused_params=%d "
      "constant_params=%d inlined=%d unreachable=%d",
      before.ToString().c_str(), after.ToString().c_str(), iterations,
      unused_params_removed, constant_params_removed, states_inlined,
      states_removed);
}

Mft OptimizeMft(const Mft& mft, const OptimizeOptions& options,
                OptimizeReport* report) {
  Mft m = mft;
  OptimizeReport local;
  local.before = ComputeStats(m);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    bool changed = false;
    int count = 0;
    if (options.unused_parameters && RemoveUnusedParameters(&m, &count)) {
      changed = true;
      local.unused_params_removed += count;
    }
    if (options.constant_parameters && RemoveConstantParameters(&m, &count)) {
      changed = true;
      local.constant_params_removed += count;
    }
    if (options.stay_moves && InlineStayStates(&m, &count)) {
      changed = true;
      local.states_inlined += count;
    }
    if (options.unreachable_states && RemoveUnreachableStates(&m, &count)) {
      changed = true;
      local.states_removed += count;
    }
    local.iterations = iter + 1;
    if (!changed) break;
  }
  local.after = ComputeStats(m);
  if (report != nullptr) *report = local;
  return m;
}

}  // namespace xqmft
