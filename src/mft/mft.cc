#include "mft/mft.h"

#include <algorithm>

#include "mft/dispatch.h"
#include "util/strings.h"

namespace xqmft {

// Out of line: RuleDispatch is incomplete in the header. Copies and moves
// never carry the dispatch cache — it holds pointers into the donor's rule
// storage.
Mft::Mft() = default;
Mft::~Mft() = default;
void Mft::InvalidateDispatch() {
  dispatch_.reset();
  lowering_cache_.reset();
}
Mft::Mft(const Mft& o)
    : states_(o.states_), rules_(o.rules_), initial_(o.initial_) {}
Mft::Mft(Mft&& o) noexcept
    : states_(std::move(o.states_)),
      rules_(std::move(o.rules_)),
      initial_(o.initial_) {
  o.InvalidateDispatch();
}
Mft& Mft::operator=(const Mft& o) {
  if (this != &o) {
    states_ = o.states_;
    rules_ = o.rules_;
    initial_ = o.initial_;
    InvalidateDispatch();
  }
  return *this;
}
Mft& Mft::operator=(Mft&& o) noexcept {
  if (this != &o) {
    states_ = std::move(o.states_);
    rules_ = std::move(o.rules_);
    initial_ = o.initial_;
    InvalidateDispatch();
    o.InvalidateDispatch();
  }
  return *this;
}

const RuleDispatch& Mft::dispatch() const {
  if (!dispatch_) {
    dispatch_ = std::make_unique<RuleDispatch>(*this, &symbols_);
  }
  return *dispatch_;
}

const SymbolTable& Mft::symbols() const {
  dispatch();  // ensure compiled
  return symbols_;
}

bool RhsNode::operator==(const RhsNode& o) const {
  if (kind != o.kind) return false;
  switch (kind) {
    case RhsKind::kLabel:
      return current_label == o.current_label &&
             (current_label || symbol == o.symbol) && children == o.children;
    case RhsKind::kCall:
      return state == o.state && input == o.input && args == o.args;
    case RhsKind::kParam:
      return param == o.param;
  }
  return false;
}

std::size_t RhsSize(const Rhs& rhs) {
  std::size_t n = 0;
  for (const RhsNode& node : rhs) {
    n += 1;
    if (node.kind == RhsKind::kLabel) {
      n += RhsSize(node.children);
    } else if (node.kind == RhsKind::kCall) {
      for (const Rhs& arg : node.args) n += RhsSize(arg);
    }
  }
  return n;
}

StateId Mft::AddState(std::string name, int num_params) {
  InvalidateDispatch();
  states_.push_back(StateInfo{std::move(name), num_params});
  rules_.emplace_back();
  return static_cast<StateId>(states_.size()) - 1;
}

void Mft::set_state_name(StateId q, std::string name) {
  InvalidateDispatch();
  states_[q].name = std::move(name);
}

void Mft::set_initial_state(StateId q) {
  InvalidateDispatch();
  initial_ = q;
}

void Mft::SetSymbolRule(StateId q, Symbol s, Rhs rhs) {
  InvalidateDispatch();
  rules_[q].symbol_rules[std::move(s)] = std::move(rhs);
}
void Mft::SetTextRule(StateId q, Rhs rhs) {
  InvalidateDispatch();
  rules_[q].text_rule = std::move(rhs);
}
void Mft::SetDefaultRule(StateId q, Rhs rhs) {
  InvalidateDispatch();
  rules_[q].default_rule = std::move(rhs);
}
void Mft::SetEpsilonRule(StateId q, Rhs rhs) {
  InvalidateDispatch();
  rules_[q].epsilon_rule = std::move(rhs);
}

const Rhs* Mft::LookupRule(StateId q, NodeKind kind,
                           const std::string& label) const {
  const StateRules& r = rules_[q];
  if (!r.symbol_rules.empty()) {
    auto it = r.symbol_rules.find(Symbol(kind, label));
    if (it != r.symbol_rules.end()) return &it->second;
  }
  if (kind == NodeKind::kText && r.text_rule.has_value()) {
    return &*r.text_rule;
  }
  if (r.default_rule.has_value()) return &*r.default_rule;
  return nullptr;
}

const Rhs* Mft::LookupEpsilonRule(StateId q) const {
  const StateRules& r = rules_[q];
  if (r.epsilon_rule.has_value()) return &*r.epsilon_rule;
  return nullptr;
}

namespace {

// Validation walker: checks calls, params, and x-variable restrictions.
Status ValidateRhs(const Mft& mft, const Rhs& rhs, int m, bool epsilon_rule,
                   const std::string& where) {
  for (const RhsNode& node : rhs) {
    switch (node.kind) {
      case RhsKind::kLabel:
        if (node.current_label && epsilon_rule) {
          return Status::InvalidArgument(
              "%t output label in epsilon rule of " + where);
        }
        XQMFT_RETURN_NOT_OK(
            ValidateRhs(mft, node.children, m, epsilon_rule, where));
        break;
      case RhsKind::kCall: {
        if (node.state < 0 || node.state >= mft.num_states()) {
          return Status::InvalidArgument("call to unknown state in " + where);
        }
        if (epsilon_rule && node.input != InputVar::kX0) {
          return Status::InvalidArgument(
              "x1/x2 used in epsilon rule of " + where);
        }
        int want = mft.num_params(node.state);
        if (static_cast<int>(node.args.size()) != want) {
          return Status::InvalidArgument(StrFormat(
              "call to %s with %zu arguments, expected %d, in %s",
              mft.state_name(node.state).c_str(), node.args.size(), want,
              where.c_str()));
        }
        for (const Rhs& arg : node.args) {
          XQMFT_RETURN_NOT_OK(ValidateRhs(mft, arg, m, epsilon_rule, where));
        }
        break;
      }
      case RhsKind::kParam:
        if (node.param < 1 || node.param > m) {
          return Status::InvalidArgument(
              StrFormat("parameter y%d out of range in %s", node.param,
                        where.c_str()));
        }
        break;
    }
  }
  return Status::OK();
}

void CollectRhsAlphabet(const Rhs& rhs, std::set<Symbol>* out) {
  for (const RhsNode& node : rhs) {
    if (node.kind == RhsKind::kLabel) {
      if (!node.current_label) out->insert(node.symbol);
      CollectRhsAlphabet(node.children, out);
    } else if (node.kind == RhsKind::kCall) {
      for (const Rhs& arg : node.args) CollectRhsAlphabet(arg, out);
    }
  }
}

}  // namespace

Status Mft::Validate() const {
  if (states_.empty()) return Status::InvalidArgument("MFT has no states");
  if (initial_ < 0 || initial_ >= num_states()) {
    return Status::InvalidArgument("initial state out of range");
  }
  if (num_params(initial_) != 0) {
    return Status::InvalidArgument("initial state must have rank 1");
  }
  for (StateId q = 0; q < num_states(); ++q) {
    const StateRules& r = rules_[q];
    const std::string& name = states_[q].name;
    int m = states_[q].num_params;
    if (!r.default_rule.has_value()) {
      return Status::InvalidArgument("state " + name + " lacks a default rule");
    }
    if (!r.epsilon_rule.has_value()) {
      return Status::InvalidArgument("state " + name + " lacks an epsilon rule");
    }
    for (const auto& [sym, rhs] : r.symbol_rules) {
      XQMFT_RETURN_NOT_OK(ValidateRhs(*this, rhs, m, false,
                                      name + " on " + sym.ToString()));
    }
    if (r.text_rule.has_value()) {
      XQMFT_RETURN_NOT_OK(
          ValidateRhs(*this, *r.text_rule, m, false, name + " text rule"));
    }
    XQMFT_RETURN_NOT_OK(
        ValidateRhs(*this, *r.default_rule, m, false, name + " default rule"));
    XQMFT_RETURN_NOT_OK(
        ValidateRhs(*this, *r.epsilon_rule, m, true, name + " epsilon rule"));
  }
  return Status::OK();
}

std::set<Symbol> Mft::CollectAlphabet() const {
  std::set<Symbol> out;
  for (StateId q = 0; q < num_states(); ++q) {
    const StateRules& r = rules_[q];
    for (const auto& [sym, rhs] : r.symbol_rules) {
      out.insert(sym);
      CollectRhsAlphabet(rhs, &out);
    }
    if (r.text_rule) CollectRhsAlphabet(*r.text_rule, &out);
    if (r.default_rule) CollectRhsAlphabet(*r.default_rule, &out);
    if (r.epsilon_rule) CollectRhsAlphabet(*r.epsilon_rule, &out);
  }
  return out;
}

std::size_t Mft::Size() const {
  std::size_t n = CollectAlphabet().size();
  for (StateId q = 0; q < num_states(); ++q) {
    const StateRules& r = rules_[q];
    std::size_t m = static_cast<std::size_t>(states_[q].num_params);
    std::size_t lhs_sym = 4 + m;  // q, sigma, x1, x2, params
    std::size_t lhs_eps = 2 + m;  // q, eps, params
    for (const auto& [sym, rhs] : r.symbol_rules) {
      n += lhs_sym + RhsSize(rhs);
    }
    if (r.text_rule) n += lhs_sym + RhsSize(*r.text_rule);
    if (r.default_rule) n += lhs_sym + RhsSize(*r.default_rule);
    if (r.epsilon_rule) n += lhs_eps + RhsSize(*r.epsilon_rule);
  }
  return n;
}

bool Mft::IsForestTransducer() const {
  for (const StateInfo& s : states_) {
    if (s.num_params != 0) return false;
  }
  return true;
}

std::size_t Mft::NumRules() const {
  std::size_t n = 0;
  for (const StateRules& r : rules_) {
    n += r.symbol_rules.size();
    n += r.text_rule.has_value();
    n += r.default_rule.has_value();
    n += r.epsilon_rule.has_value();
  }
  return n;
}

std::size_t Mft::TotalParams() const {
  std::size_t n = 0;
  for (const StateInfo& s : states_) n += static_cast<std::size_t>(s.num_params);
  return n;
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

namespace {

class Printer {
 public:
  explicit Printer(const Mft& mft) : mft_(mft) {
    // Disambiguate duplicate state names with #index suffixes.
    std::unordered_map<std::string, int> name_count;
    for (StateId q = 0; q < mft_.num_states(); ++q) {
      ++name_count[mft_.state_name(q)];
    }
    display_.resize(mft_.num_states());
    std::unordered_map<std::string, int> seen;
    for (StateId q = 0; q < mft_.num_states(); ++q) {
      const std::string& n = mft_.state_name(q);
      if (name_count[n] > 1) {
        display_[q] = n + "_" + std::to_string(seen[n]++);
      } else {
        display_[q] = n;
      }
    }
  }

  std::string Print() {
    // Emit states in first-mention order (initial state first, then call
    // targets as they appear in the printed text). The parser assigns state
    // ids by first mention, so this makes print -> parse -> print stable.
    std::vector<StateId> order;
    std::vector<bool> queued(static_cast<std::size_t>(mft_.num_states()),
                             false);
    auto intern = [&](StateId q) {
      if (!queued[static_cast<std::size_t>(q)]) {
        queued[static_cast<std::size_t>(q)] = true;
        order.push_back(q);
      }
    };
    intern(mft_.initial_state());
    for (std::size_t i = 0; i < order.size(); ++i) {
      StateId q = order[i];
      const StateRules& r = mft_.rules(q);
      std::vector<Symbol> syms;
      for (const auto& [sym, rhs] : r.symbol_rules) syms.push_back(sym);
      std::sort(syms.begin(), syms.end());
      for (const Symbol& sym : syms) {
        InternCalls(r.symbol_rules.at(sym), intern);
      }
      if (r.text_rule) InternCalls(*r.text_rule, intern);
      if (r.default_rule) InternCalls(*r.default_rule, intern);
      if (r.epsilon_rule) InternCalls(*r.epsilon_rule, intern);
    }
    for (StateId q = 0; q < mft_.num_states(); ++q) intern(q);  // unreachable

    std::string out;
    for (StateId q : order) PrintState(q, &out);
    return out;
  }

 private:
  template <typename Fn>
  void InternCalls(const Rhs& rhs, const Fn& intern) {
    for (const RhsNode& node : rhs) {
      if (node.kind == RhsKind::kLabel) {
        InternCalls(node.children, intern);
      } else if (node.kind == RhsKind::kCall) {
        intern(node.state);
        for (const Rhs& arg : node.args) InternCalls(arg, intern);
      }
    }
  }

  void PrintState(StateId q, std::string* out) {
    const StateRules& r = mft_.rules(q);
    std::vector<Symbol> syms;
    for (const auto& [sym, rhs] : r.symbol_rules) syms.push_back(sym);
    std::sort(syms.begin(), syms.end());
    for (const Symbol& sym : syms) {
      PrintRule(q, sym.ToString() + "(x1)x2", r.symbol_rules.at(sym), out);
    }
    if (r.text_rule) PrintRule(q, "%ttext(x1)x2", *r.text_rule, out);
    if (r.default_rule) PrintRule(q, "%t(x1)x2", *r.default_rule, out);
    if (r.epsilon_rule) PrintRule(q, "eps", *r.epsilon_rule, out);
  }

  void PrintRule(StateId q, const std::string& pattern, const Rhs& rhs,
                 std::string* out) {
    *out += display_[q];
    *out += '(';
    *out += pattern;
    for (int j = 1; j <= mft_.num_params(q); ++j) {
      *out += ", y" + std::to_string(j);
    }
    *out += ") -> ";
    if (rhs.empty()) {
      *out += "eps";
    } else {
      PrintRhs(rhs, out);
    }
    *out += '\n';
  }

  void PrintRhs(const Rhs& rhs, std::string* out) {
    bool first = true;
    for (const RhsNode& node : rhs) {
      if (!first) *out += ' ';
      first = false;
      PrintNode(node, out);
    }
  }

  void PrintNode(const RhsNode& node, std::string* out) {
    switch (node.kind) {
      case RhsKind::kLabel:
        if (node.current_label) {
          *out += "%t";
        } else {
          *out += node.symbol.ToString();
        }
        if (!node.children.empty()) {
          *out += '(';
          PrintRhs(node.children, out);
          *out += ')';
        }
        break;
      case RhsKind::kCall: {
        *out += display_[node.state];
        *out += "(x" + std::to_string(static_cast<int>(node.input));
        for (const Rhs& arg : node.args) {
          *out += ", ";
          if (arg.empty()) {
            *out += "eps";
          } else {
            PrintRhs(arg, out);
          }
        }
        *out += ')';
        break;
      }
      case RhsKind::kParam:
        *out += 'y' + std::to_string(node.param);
        break;
    }
  }

  const Mft& mft_;
  std::vector<std::string> display_;
};

}  // namespace

std::string Mft::ToString() const { return Printer(*this).Print(); }

}  // namespace xqmft
