// MFT optimizations (Section 4.1 of the paper).
//
// The XQuery-to-MFT translation introduces many redundant accumulating
// parameters (one per in-scope variable); Section 5 shows the unoptimized
// transducers buffer the whole input and often run out of memory. Four
// semantics-preserving rewrites fix this:
//
//   1. Unused parameter reduction    — drop parameters that never reach the
//                                      output (the paper's fixpoint over the
//                                      "necessary" set S).
//   2. Constant parameter reduction  — drop parameters always instantiated
//                                      with the same ground forest.
//   3. Stay-move removal             — inline states whose rules are all of
//                                      the stay form q(%, ys) -> f.
//   4. Unreachable state removal     — drop states not reachable from the
//                                      initial state.
//
// The passes interact, so OptimizeMft runs them to a global fixpoint.
#ifndef XQMFT_MFT_OPTIMIZE_H_
#define XQMFT_MFT_OPTIMIZE_H_

#include <string>

#include "mft/mft.h"

namespace xqmft {

/// Which passes to run (all on by default; the ablation bench toggles them).
struct OptimizeOptions {
  bool unused_parameters = true;
  bool constant_parameters = true;
  bool stay_moves = true;
  bool unreachable_states = true;
  int max_iterations = 100;
};

/// Size snapshot of a transducer.
struct MftStats {
  std::size_t states = 0;
  std::size_t rules = 0;
  std::size_t params = 0;  ///< sum of parameter counts over states
  std::size_t size = 0;    ///< the paper's |M|

  std::string ToString() const;
};

MftStats ComputeStats(const Mft& mft);

/// What happened during optimization.
struct OptimizeReport {
  MftStats before;
  MftStats after;
  int iterations = 0;
  int unused_params_removed = 0;
  int constant_params_removed = 0;
  int states_inlined = 0;
  int states_removed = 0;

  std::string ToString() const;
};

/// Runs the enabled passes to a fixpoint and returns the optimized MFT.
Mft OptimizeMft(const Mft& mft, const OptimizeOptions& options = {},
                OptimizeReport* report = nullptr);

// Individual passes (exposed for unit tests and the ablation benchmark).
// Each returns true if it changed the transducer.

/// Pass 1: removes parameters that never appear in any output.
bool RemoveUnusedParameters(Mft* mft, int* removed = nullptr);

/// Pass 2: removes parameters always bound to one ground constant forest.
bool RemoveConstantParameters(Mft* mft, int* removed = nullptr);

/// Pass 3: inlines one stay-form state (q(%, ys) -> f with x0-only calls,
/// no %t, not self-recursive) into all of its call sites.
bool InlineStayStates(Mft* mft, int* inlined = nullptr);

/// Pass 4: removes states unreachable from the initial state.
bool RemoveUnreachableStates(Mft* mft, int* removed = nullptr);

}  // namespace xqmft

#endif  // XQMFT_MFT_OPTIMIZE_H_
