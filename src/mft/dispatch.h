// Dense, alphabet-indexed rule dispatch (the compiled form of an Mft's rule
// selection).
//
// The paper's engine must do O(1) work per input event; the seed
// implementation instead re-hashed the node's label on every rule
// application (Mft::LookupRule built a Symbol and probed an unordered_map).
// RuleDispatch precompiles, per state, a flat table indexed by SymbolId:
//
//   slots[q][id]  =  exact symbol rule for id, if the state has one,
//                    else the kind-appropriate fallback (text rule for text
//                    symbols, default rule otherwise)
//
// so selection on the streaming hot path is two loads and a bounds check.
// Ids not in any rule's alphabet — input names first seen at runtime get ids
// >= width() — resolve through the per-state fallback slots without looking
// at the name. Text nodes carry content, not ids: they dispatch through
// ForText, which only falls back to a (content-keyed) hash probe for the
// rare states that actually test text literals.
//
// Compilation also resolves every RHS output label to its id
// (RhsNode::symbol_id), so rule instantiation copies ids instead of strings.
#ifndef XQMFT_MFT_DISPATCH_H_
#define XQMFT_MFT_DISPATCH_H_

#include <string>
#include <vector>

#include "mft/mft.h"
#include "xml/symbol_table.h"

namespace xqmft {

/// \brief Per-state flat rule tables over a SymbolTable's dense ids.
///
/// Pointers reference the Mft's rule storage: the Mft must outlive the
/// dispatch and its rules must not change (Mft::dispatch() enforces this by
/// rebuilding after any mutation).
class RuleDispatch {
 public:
  /// Interns all rule symbols of `mft` into `table` and builds the tables.
  RuleDispatch(const Mft& mft, SymbolTable* table);

  /// Rule for state `q` on an element node with interned name `id`.
  /// Never null on a validated transducer.
  const Rhs* ForElement(StateId q, SymbolId id) const {
    const Row& row = rows_[static_cast<std::size_t>(q)];
    if (id < width_) return row.slots[id];
    return row.element_fallback;
  }

  /// Rule for state `q` on a text node with the given content.
  const Rhs* ForText(StateId q, std::string_view content) const {
    const Row& row = rows_[static_cast<std::size_t>(q)];
    if (row.has_text_symbols) {
      // The state tests text literals: a content-keyed probe is inherent
      // (content is unbounded input data, never interned). The key copy
      // only happens for these rare literal-testing states.
      return mft_->LookupRule(q, NodeKind::kText, std::string(content));
    }
    return row.text_fallback;
  }

  /// Epsilon rule of `q`. Never null on a validated transducer.
  const Rhs* Epsilon(StateId q) const {
    return rows_[static_cast<std::size_t>(q)].epsilon;
  }

  /// Number of ids the dense slots cover (the table size at compile time);
  /// ids >= width() take the fallback path.
  SymbolId width() const { return width_; }

  /// True when some rule can read text *content*: a state tests text
  /// literals, or an RHS copies the current label (%t, which over a text
  /// node copies its content). When false the engine need not buffer text
  /// at all — input text can never reach the output or steer a rule.
  bool captures_text() const { return captures_text_; }

 private:
  struct Row {
    // Indexed by SymbolId, size width_. Filled for element-kind ids only
    // (ForElement is the sole reader); text-kind ids hold nullptr.
    std::vector<const Rhs*> slots;
    const Rhs* element_fallback = nullptr;  // default rule
    const Rhs* text_fallback = nullptr;     // text rule, else default rule
    const Rhs* epsilon = nullptr;
    bool has_text_symbols = false;  // state has Symbol(kText, ...) rules
  };

  const Mft* mft_;
  SymbolId width_ = 0;
  bool captures_text_ = false;
  std::vector<Row> rows_;
};

}  // namespace xqmft

#endif  // XQMFT_MFT_DISPATCH_H_
