// Parser for the textual MFT rule syntax (inverse of Mft::ToString). The
// syntax mirrors the paper's notation and is used by tests, examples, and
// anyone wanting to hand-write transducers (Section 1 points out that MFTs
// support recursive definitions beyond the XQuery fragment).
#include <cctype>

#include "mft/mft.h"
#include "util/strings.h"

namespace xqmft {

namespace {

enum class Tok {
  kIdent,
  kString,
  kPercent,       // %
  kPercentT,      // %t
  kPercentTText,  // %ttext
  kLParen,
  kRParen,
  kComma,
  kArrow,
  kNewline,
  kEnd,
};

struct Token {
  Tok kind;
  std::string text;
  std::size_t line;
};

class Lexer {
 public:
  explicit Lexer(const std::string& s) : s_(s) {}

  Result<std::vector<Token>> Lex() {
    std::vector<Token> out;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '#') {
        while (pos_ < s_.size() && s_[pos_] != '\n') ++pos_;
        continue;
      }
      if (c == '\n') {
        out.push_back({Tok::kNewline, "", line_});
        ++line_;
        ++pos_;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
        continue;
      }
      if (c == '(') {
        out.push_back({Tok::kLParen, "(", line_});
        ++pos_;
        continue;
      }
      if (c == ')') {
        out.push_back({Tok::kRParen, ")", line_});
        ++pos_;
        continue;
      }
      if (c == ',') {
        out.push_back({Tok::kComma, ",", line_});
        ++pos_;
        continue;
      }
      if (c == '-' && pos_ + 1 < s_.size() && s_[pos_ + 1] == '>') {
        out.push_back({Tok::kArrow, "->", line_});
        pos_ += 2;
        continue;
      }
      if (c == '"') {
        ++pos_;
        std::string str;
        while (pos_ < s_.size() && s_[pos_] != '"') {
          if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) ++pos_;
          str += s_[pos_++];
        }
        if (pos_ >= s_.size()) {
          return Err("unterminated string literal");
        }
        ++pos_;
        out.push_back({Tok::kString, std::move(str), line_});
        continue;
      }
      if (c == '%') {
        if (s_.compare(pos_, 6, "%ttext") == 0) {
          out.push_back({Tok::kPercentTText, "%ttext", line_});
          pos_ += 6;
        } else if (s_.compare(pos_, 2, "%t") == 0) {
          out.push_back({Tok::kPercentT, "%t", line_});
          pos_ += 2;
        } else {
          out.push_back({Tok::kPercent, "%", line_});
          ++pos_;
        }
        continue;
      }
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        std::string id;
        while (pos_ < s_.size() &&
               (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '_' || s_[pos_] == '-' || s_[pos_] == '.' ||
                s_[pos_] == ':')) {
          // A '-' that begins "->" terminates the identifier.
          if (s_[pos_] == '-' && pos_ + 1 < s_.size() && s_[pos_ + 1] == '>') {
            break;
          }
          id += s_[pos_++];
        }
        out.push_back({Tok::kIdent, std::move(id), line_});
        continue;
      }
      return Err(StrFormat("unexpected character '%c'", c));
    }
    out.push_back({Tok::kEnd, "", line_});
    return out;
  }

 private:
  Status Err(const std::string& msg) {
    return Status::InvalidArgument(
        StrFormat("MFT syntax error on line %zu: %s", line_ + 1, msg.c_str()));
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::size_t line_ = 0;
};

class RuleParser {
 public:
  explicit RuleParser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<Mft> Parse() {
    while (Peek().kind != Tok::kEnd) {
      if (Peek().kind == Tok::kNewline) {
        Advance();
        continue;
      }
      XQMFT_RETURN_NOT_OK(ParseRule());
    }
    if (!saw_rule_) return Status::InvalidArgument("MFT text has no rules");
    // Ranks defaulting: states mentioned only as 0-arg calls.
    for (auto& [name, id] : state_ids_) {
      (void)name;
      if (ranks_[id] < 0) ranks_[id] = 1;
    }
    // Build the real Mft with final ranks.
    Mft out;
    for (std::size_t i = 0; i < names_.size(); ++i) {
      out.AddState(names_[i], ranks_[static_cast<int>(i)] - 1);
    }
    out.set_initial_state(0);
    for (PendingRule& r : pending_) {
      switch (r.kind) {
        case PatternKind::kSymbol:
          out.SetSymbolRule(r.state, r.symbol, r.rhs);
          break;
        case PatternKind::kText:
          out.SetTextRule(r.state, r.rhs);
          break;
        case PatternKind::kDefault:
          out.SetDefaultRule(r.state, r.rhs);
          break;
        case PatternKind::kEpsilon:
          out.SetEpsilonRule(r.state, r.rhs);
          break;
        case PatternKind::kStay:
          out.SetStayRule(r.state, r.rhs);
          break;
      }
    }
    XQMFT_RETURN_NOT_OK(out.Validate());
    return out;
  }

 private:
  enum class PatternKind { kSymbol, kText, kDefault, kEpsilon, kStay };

  struct PendingRule {
    StateId state;
    PatternKind kind;
    Symbol symbol;
    Rhs rhs;
  };

  const Token& Peek(int ahead = 0) const {
    std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& Advance() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }

  Status Err(const std::string& msg) {
    return Status::InvalidArgument(StrFormat("MFT parse error on line %zu: %s",
                                             Peek().line + 1, msg.c_str()));
  }

  Status Expect(Tok kind, const char* what) {
    if (Peek().kind != kind) return Err(StrFormat("expected %s", what));
    Advance();
    return Status::OK();
  }

  StateId Intern(const std::string& name) {
    auto it = state_ids_.find(name);
    if (it != state_ids_.end()) return it->second;
    StateId id = static_cast<StateId>(names_.size());
    state_ids_[name] = id;
    names_.push_back(name);
    ranks_.push_back(-1);
    return id;
  }

  Status SetRank(StateId q, int rank) {
    if (ranks_[q] < 0) {
      ranks_[q] = rank;
      return Status::OK();
    }
    if (ranks_[q] != rank) {
      return Err(StrFormat("state %s used with rank %d and %d",
                           names_[q].c_str(), ranks_[q], rank));
    }
    return Status::OK();
  }

  // ident is xN?
  static bool IsXVar(const std::string& s, int* n) {
    if (s.size() == 2 && s[0] == 'x' && s[1] >= '0' && s[1] <= '2') {
      *n = s[1] - '0';
      return true;
    }
    return false;
  }
  static bool IsYVar(const std::string& s, int* n) {
    if (s.size() >= 2 && s[0] == 'y') {
      for (std::size_t i = 1; i < s.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
      }
      *n = std::atoi(s.c_str() + 1);
      return true;
    }
    return false;
  }

  Status ParseRule() {
    saw_rule_ = true;
    if (Peek().kind != Tok::kIdent) return Err("expected a state name");
    StateId q = Intern(Advance().text);
    XQMFT_RETURN_NOT_OK(Expect(Tok::kLParen, "'('"));

    PendingRule rule;
    rule.state = q;
    // Pattern.
    const Token& p = Peek();
    if (p.kind == Tok::kIdent && p.text == "eps") {
      Advance();
      rule.kind = PatternKind::kEpsilon;
    } else if (p.kind == Tok::kPercent) {
      Advance();
      rule.kind = PatternKind::kStay;
    } else if (p.kind == Tok::kPercentT || p.kind == Tok::kPercentTText ||
               p.kind == Tok::kIdent || p.kind == Tok::kString) {
      if (p.kind == Tok::kPercentT) {
        rule.kind = PatternKind::kDefault;
      } else if (p.kind == Tok::kPercentTText) {
        rule.kind = PatternKind::kText;
      } else if (p.kind == Tok::kString) {
        rule.kind = PatternKind::kSymbol;
        rule.symbol = Symbol::Text(p.text);
      } else {
        rule.kind = PatternKind::kSymbol;
        rule.symbol = Symbol::Element(p.text);
      }
      Advance();
      // (x1)x2
      XQMFT_RETURN_NOT_OK(Expect(Tok::kLParen, "'(x1)' in pattern"));
      int xv = -1;
      if (Peek().kind != Tok::kIdent || !IsXVar(Peek().text, &xv) || xv != 1) {
        return Err("pattern must bind x1");
      }
      Advance();
      XQMFT_RETURN_NOT_OK(Expect(Tok::kRParen, "')' in pattern"));
      if (Peek().kind != Tok::kIdent || !IsXVar(Peek().text, &xv) || xv != 2) {
        return Err("pattern must bind x2");
      }
      Advance();
    } else {
      return Err("bad rule pattern");
    }

    // Parameters.
    int m = 0;
    while (Peek().kind == Tok::kComma) {
      Advance();
      int n = 0;
      if (Peek().kind != Tok::kIdent || !IsYVar(Peek().text, &n)) {
        return Err("expected parameter yN in left-hand side");
      }
      ++m;
      if (n != m) return Err("parameters must be y1, y2, ... in order");
      Advance();
    }
    XQMFT_RETURN_NOT_OK(Expect(Tok::kRParen, "')' after left-hand side"));
    XQMFT_RETURN_NOT_OK(SetRank(q, m + 1));
    XQMFT_RETURN_NOT_OK(Expect(Tok::kArrow, "'->'"));
    XQMFT_RETURN_NOT_OK(ParseRhsUntil({Tok::kNewline, Tok::kEnd}, &rule.rhs));
    pending_.push_back(std::move(rule));
    return Status::OK();
  }

  // Parses a space-separated RHS sequence, stopping at any of `stops` (or at
  // ',' / ')' when they appear in `stops`).
  Status ParseRhsUntil(std::initializer_list<Tok> stops, Rhs* out) {
    auto stopped = [&]() {
      for (Tok t : stops) {
        if (Peek().kind == t) return true;
      }
      return false;
    };
    while (!stopped()) {
      RhsNode node;
      XQMFT_RETURN_NOT_OK(ParseItem(&node));
      if (node.kind == RhsKind::kLabel && !node.current_label &&
          node.symbol.kind == NodeKind::kElement && node.symbol.name.empty()) {
        continue;  // `eps`: contributes nothing
      }
      out->push_back(std::move(node));
    }
    return Status::OK();
  }

  Status ParseItem(RhsNode* out) {
    const Token& t = Peek();
    if (t.kind == Tok::kString) {
      std::string text = Advance().text;
      Rhs children;
      if (Peek().kind == Tok::kLParen) {
        Advance();
        XQMFT_RETURN_NOT_OK(ParseRhsUntil({Tok::kRParen}, &children));
        XQMFT_RETURN_NOT_OK(Expect(Tok::kRParen, "')'"));
      }
      *out = RhsNode::Label(Symbol::Text(std::move(text)), std::move(children));
      return Status::OK();
    }
    if (t.kind == Tok::kPercentT) {
      Advance();
      Rhs children;
      if (Peek().kind == Tok::kLParen) {
        Advance();
        XQMFT_RETURN_NOT_OK(ParseRhsUntil({Tok::kRParen}, &children));
        XQMFT_RETURN_NOT_OK(Expect(Tok::kRParen, "')'"));
      }
      *out = RhsNode::CurrentLabel(std::move(children));
      return Status::OK();
    }
    if (t.kind != Tok::kIdent) return Err("expected an RHS item");
    std::string name = Advance().text;
    if (name == "eps") {
      *out = RhsNode::Label(Symbol::Element(""), {});  // sentinel, dropped
      return Status::OK();
    }
    int n = 0;
    if (IsYVar(name, &n)) {
      *out = RhsNode::Param(n);
      return Status::OK();
    }
    if (IsXVar(name, &n)) return Err("xN may only appear as a call argument");
    if (Peek().kind != Tok::kLParen) {
      *out = RhsNode::Label(Symbol::Element(std::move(name)), {});
      return Status::OK();
    }
    Advance();  // '('
    // Call iff the first token inside is x0/x1/x2.
    if (Peek().kind == Tok::kIdent && IsXVar(Peek().text, &n)) {
      Advance();
      std::vector<Rhs> args;
      while (Peek().kind == Tok::kComma) {
        Advance();
        Rhs arg;
        XQMFT_RETURN_NOT_OK(ParseRhsUntil({Tok::kComma, Tok::kRParen}, &arg));
        args.push_back(std::move(arg));
      }
      XQMFT_RETURN_NOT_OK(Expect(Tok::kRParen, "')' after call"));
      StateId callee = Intern(name);
      XQMFT_RETURN_NOT_OK(SetRank(callee, static_cast<int>(args.size()) + 1));
      *out = RhsNode::Call(callee, static_cast<InputVar>(n), std::move(args));
      return Status::OK();
    }
    Rhs children;
    XQMFT_RETURN_NOT_OK(ParseRhsUntil({Tok::kRParen}, &children));
    XQMFT_RETURN_NOT_OK(Expect(Tok::kRParen, "')'"));
    *out = RhsNode::Label(Symbol::Element(std::move(name)), std::move(children));
    return Status::OK();
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  bool saw_rule_ = false;
  std::unordered_map<std::string, StateId> state_ids_;
  std::vector<std::string> names_;
  std::vector<int> ranks_;
  std::vector<PendingRule> pending_;
};

}  // namespace

Result<Mft> ParseMft(const std::string& text) {
  Lexer lexer(text);
  XQMFT_ASSIGN_OR_RETURN(std::vector<Token> toks, lexer.Lex());
  return RuleParser(std::move(toks)).Parse();
}

}  // namespace xqmft
