#include "mft/interp.h"

#include "util/strings.h"

namespace xqmft {

namespace {

// A position in the input: the suffix of forest `*f` starting at index `i`.
// x1 of the head tree is (head.children, 0); x2 is (f, i+1); epsilon is
// reached when i == f->size().
struct Pos {
  const Forest* f;
  std::size_t i;

  bool AtEnd() const { return i >= f->size(); }
  const Tree& Head() const { return (*f)[i]; }
  Pos Next() const { return Pos{f, i + 1}; }
  Pos Children() const { return Pos{&Head().children, 0}; }
};

class Interp {
 public:
  Interp(const Mft& mft, InterpOptions options)
      : mft_(mft),
        steps_left_(options.max_steps),
        stay_limit_(mft.num_states()) {}

  Result<Forest> Run(const Forest& input) {
    Forest out;
    XQMFT_RETURN_NOT_OK(
        Apply(mft_.initial_state(), Pos{&input, 0}, {}, &out, 0));
    return out;
  }

 private:
  // `stay_chain` counts the consecutive stay moves (x0 calls) leading here.
  // Rule choice and control flow depend only on (state, input node) — never
  // on parameter values — so a no-progress chain longer than the state count
  // has revisited some state at the same position and must replay forever.
  // Detecting that exactly turns a divergent stay loop into a clean error
  // before it can overflow the C++ stack (the step budget alone cannot: the
  // stack dies orders of magnitude earlier than any useful budget).
  Status Apply(StateId q, Pos pos, const std::vector<Forest>& params,
               Forest* out, int stay_chain) {
    if (steps_left_ == 0) {
      return Status::ResourceExhausted(
          "MFT interpreter exceeded the step budget (non-terminating "
          "stay-move loop?)");
    }
    --steps_left_;
    if (stay_chain > stay_limit_) {
      return Status::ResourceExhausted(
          "MFT interpreter detected a non-terminating stay-move loop "
          "(a state recurred with no input progress)");
    }
    const Rhs* rhs;
    const Tree* node = nullptr;
    if (pos.AtEnd()) {
      rhs = mft_.LookupEpsilonRule(q);
    } else {
      node = &pos.Head();
      rhs = mft_.LookupRule(q, node->kind, node->label);
    }
    if (rhs == nullptr) {
      return Status::Internal("no applicable rule for state " +
                              mft_.state_name(q));
    }
    return EvalRhs(*rhs, pos, node, params, out, stay_chain);
  }

  Status EvalRhs(const Rhs& rhs, Pos pos, const Tree* node,
                 const std::vector<Forest>& params, Forest* out,
                 int stay_chain) {
    for (const RhsNode& item : rhs) {
      switch (item.kind) {
        case RhsKind::kLabel: {
          Tree t;
          if (item.current_label) {
            XQMFT_CHECK(node != nullptr);  // Validate() forbids %t in eps rules
            t.kind = node->kind;
            t.label = node->label;
          } else {
            t.kind = item.symbol.kind;
            t.label = item.symbol.name;
          }
          XQMFT_RETURN_NOT_OK(EvalRhs(item.children, pos, node, params,
                                      &t.children, stay_chain));
          out->push_back(std::move(t));
          break;
        }
        case RhsKind::kCall: {
          Pos target = pos;
          int next_stay = 0;
          switch (item.input) {
            case InputVar::kX0:
              target = pos;
              next_stay = stay_chain + 1;
              break;
            case InputVar::kX1:
              XQMFT_CHECK(node != nullptr);
              target = pos.Children();
              break;
            case InputVar::kX2:
              XQMFT_CHECK(node != nullptr);
              target = pos.Next();
              break;
          }
          std::vector<Forest> arg_values;
          arg_values.reserve(item.args.size());
          for (const Rhs& arg : item.args) {
            Forest v;
            XQMFT_RETURN_NOT_OK(
                EvalRhs(arg, pos, node, params, &v, stay_chain));
            arg_values.push_back(std::move(v));
          }
          XQMFT_RETURN_NOT_OK(
              Apply(item.state, target, arg_values, out, next_stay));
          break;
        }
        case RhsKind::kParam: {
          const Forest& v = params[static_cast<std::size_t>(item.param) - 1];
          AppendForest(out, v);
          break;
        }
      }
    }
    return Status::OK();
  }

  const Mft& mft_;
  std::uint64_t steps_left_;
  const int stay_limit_;
};

}  // namespace

Result<Forest> RunMft(const Mft& mft, const Forest& input,
                      InterpOptions options) {
  return Interp(mft, options).Run(input);
}

}  // namespace xqmft
