// Reference interpreter for MFTs, implementing the denotational semantics of
// Section 2.2 directly:
//
//   [[q]](g0, f1..fm) = [[r]]   where r is the applicable rule's RHS,
//
// with call-by-value parameter passing. This interpreter materializes the
// whole input and output; it exists as executable ground truth for the
// streaming engine and the translation, not as the production evaluator.
#ifndef XQMFT_MFT_INTERP_H_
#define XQMFT_MFT_INTERP_H_

#include <cstdint>

#include "mft/mft.h"
#include "util/status.h"
#include "xml/forest.h"

namespace xqmft {

struct InterpOptions {
  /// Maximum number of rule applications before the run is aborted with
  /// ResourceExhausted. Guards against runaway (but input-consuming)
  /// transducers; the paper only deals with terminating MFTs.
  ///
  /// Divergent stay-move loops need no budget: the interpreter detects a
  /// chain of stay moves longer than the state count — which must revisit a
  /// state with no input progress and therefore replays forever — and fails
  /// with ResourceExhausted before the recursion can overflow the C++ stack.
  std::uint64_t max_steps = 50'000'000;
};

/// Runs [[M]](input). The transducer must Validate() beforehand.
Result<Forest> RunMft(const Mft& mft, const Forest& input,
                      InterpOptions options = {});

}  // namespace xqmft

#endif  // XQMFT_MFT_INTERP_H_
