// Reference interpreter for MFTs, implementing the denotational semantics of
// Section 2.2 directly:
//
//   [[q]](g0, f1..fm) = [[r]]   where r is the applicable rule's RHS,
//
// with call-by-value parameter passing. This interpreter materializes the
// whole input and output; it exists as executable ground truth for the
// streaming engine and the translation, not as the production evaluator.
#ifndef XQMFT_MFT_INTERP_H_
#define XQMFT_MFT_INTERP_H_

#include <cstdint>

#include "mft/mft.h"
#include "util/status.h"
#include "xml/forest.h"

namespace xqmft {

struct InterpOptions {
  /// Maximum number of rule applications before the run is aborted with
  /// ResourceExhausted. Guards against non-terminating stay-move loops in
  /// hand-written transducers (the paper only deals with terminating MFTs).
  std::uint64_t max_steps = 50'000'000;
};

/// Runs [[M]](input). The transducer must Validate() beforehand.
Result<Forest> RunMft(const Mft& mft, const Forest& input,
                      InterpOptions options = {});

}  // namespace xqmft

#endif  // XQMFT_MFT_INTERP_H_
