// MinXQuery-to-MFT translation (Section 3 of the paper).
//
// The compilation function T is defined by recursion on the query; each
// (sub)expression is compiled in the context of an environment rho mapping
// in-scope variables to accumulating-parameter positions, and a current
// state q whose rules T defines:
//
//   T(e1...en)      q(%, ys) -> q1(x0,ys) ... qn(x0,ys)
//   T(<s>e</s>)     q(%, ys) -> s(q'(x0,ys))
//   T("str")        q(%, ys) -> "str"
//   T($v)           q(%, ys) -> y_rho(v)
//   T(for $v in p e)   F(p, q, q') and T(e, rho+v, q')
//   T(let $v:=ev e)    q(%, ys) -> q'(x0, ys, qv(x0,ys)), T(ev,rho,qv),
//                      T(e, rho+v, q')
//   T(p)            q'(%, ys, y_{m+1}) -> y_{m+1} and F(p, q, q')
//
// The path compiler F implements Equation (1): the scan state q, invoked at
// the bound forest (t s), produces q'(t_i s_i, ys, copy(t_i)) for every
// subtree t_i of t satisfying p, in pre-order. It is a lazily determinized
// subset construction over path positions (the Green et al. DFA), extended
// with: following-sibling steps (matched positions continue on the x2 chain
// instead of descending), and predicate gating through dedicated existential
// states with then/else parameters — the paper's two-parameter if-then-else
// encoding (state q3 of the worked Mperson example).
//
// Note on the paper's rule shapes: Section 3's prose rule for a final DFA
// transition drops the descent/chain continuations that its own worked
// example keeps (Mperson's q1 rule recurses on both x1 and x2). We generate
// the example's (correct) shape, so all matches of Equation (1) are emitted.
#ifndef XQMFT_TRANSLATE_TRANSLATE_H_
#define XQMFT_TRANSLATE_TRANSLATE_H_

#include "mft/mft.h"
#include "util/status.h"
#include "xquery/ast.h"

namespace xqmft {

/// Compiles a validated MinXQuery program into an equivalent MFT
/// (Theorem 1: [[M_P]](f) = [[P]](f)). The resulting transducer is
/// unoptimized: it carries one accumulating parameter per in-scope variable;
/// run OptimizeMft afterwards for streaming-friendly transducers.
Result<Mft> TranslateQuery(const QueryExpr& query);

}  // namespace xqmft

#endif  // XQMFT_TRANSLATE_TRANSLATE_H_
