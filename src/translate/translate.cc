#include "translate/translate.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/strings.h"

namespace xqmft {

namespace {

// Environment: variable name -> 1-based parameter position.
struct Env {
  std::vector<std::pair<std::string, int>> vars;

  int Lookup(const std::string& name) const {
    for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
      if (it->first == name) return it->second;
    }
    return -1;
  }
  int size() const { return static_cast<int>(vars.size()); }

  Env Extend(const std::string& name) const {
    Env e = *this;
    e.vars.emplace_back(name, size() + 1);
    return e;
  }
};

// Symbol classes for scan-state rule generation. A scan state gets one rule
// per class; transition membership is evaluated per class.
struct SymClass {
  enum Kind { kElementName, kTextLiteral, kAnyText, kDefault } kind;
  std::string name;  // element name or text literal
};

bool TestMatchesClass(const NodeTest& test, const SymClass& cls) {
  switch (cls.kind) {
    case SymClass::kElementName:
      switch (test.kind) {
        case NodeTestKind::kName: return test.name == cls.name;
        case NodeTestKind::kAnyElement: return true;
        case NodeTestKind::kAnyNode: return true;
        case NodeTestKind::kText: return false;
      }
      return false;
    case SymClass::kTextLiteral:
    case SymClass::kAnyText:
      switch (test.kind) {
        case NodeTestKind::kName: return false;
        case NodeTestKind::kAnyElement: return false;
        case NodeTestKind::kAnyNode: return true;
        case NodeTestKind::kText: return true;
      }
      return false;
    case SymClass::kDefault:
      // An element whose name has no exact rule at this state.
      switch (test.kind) {
        case NodeTestKind::kName: return false;  // listed names have rules
        case NodeTestKind::kAnyElement: return true;
        case NodeTestKind::kAnyNode: return true;
        case NodeTestKind::kText: return false;
      }
      return false;
  }
  return false;
}

class Translator {
 public:
  Result<Mft> Translate(const QueryExpr& query) {
    StateId q0 = mft_.AddState("q0", 0);
    mft_.set_initial_state(q0);
    StateId q0p = mft_.AddState("q0p", 1);
    // q0(%) -> q0p(x0, qcopy(x0))
    mft_.SetStayRule(
        q0, {RhsNode::Call(q0p, InputVar::kX0,
                           {{RhsNode::Call(QCopy(), InputVar::kX0, {})}})});
    Env rho;
    rho.vars.emplace_back("input", 1);
    XQMFT_RETURN_NOT_OK(CompileExpr(query, rho, q0p));
    XQMFT_RETURN_NOT_OK(mft_.Validate());
    return std::move(mft_);
  }

 private:
  StateId NewState(const std::string& hint, int num_params) {
    return mft_.AddState(StrFormat("q%d%s", ++counter_, hint.c_str()),
                         num_params);
  }

  StateId QCopy() {
    if (qcopy_ < 0) {
      qcopy_ = mft_.AddState("qcopy", 0);
      mft_.SetDefaultRule(
          qcopy_, {RhsNode::CurrentLabel({RhsNode::Call(qcopy_, InputVar::kX1, {})}),
                   RhsNode::Call(qcopy_, InputVar::kX2, {})});
      mft_.SetEpsilonRule(qcopy_, {});
    }
    return qcopy_;
  }

  // y1 .. ym as call arguments.
  static std::vector<Rhs> ParamArgs(int m) {
    std::vector<Rhs> args;
    args.reserve(static_cast<std::size_t>(m));
    for (int j = 1; j <= m; ++j) args.push_back({RhsNode::Param(j)});
    return args;
  }

  // -------------------------------------------------------------------
  // T: expression compilation
  // -------------------------------------------------------------------

  Status CompileExpr(const QueryExpr& e, const Env& rho, StateId q) {
    const int m = rho.size();
    switch (e.kind) {
      case QueryKind::kElement: {
        if (e.children.empty()) {
          mft_.SetStayRule(q, {RhsNode::Label(Symbol::Element(e.name))});
          return Status::OK();
        }
        StateId qc = NewState("", m);
        mft_.SetStayRule(
            q, {RhsNode::Label(Symbol::Element(e.name),
                               {RhsNode::Call(qc, InputVar::kX0,
                                              ParamArgs(m))})});
        return CompileSequence(e.children, rho, qc);
      }
      case QueryKind::kString:
        mft_.SetStayRule(q, {RhsNode::Label(Symbol::Text(e.str))});
        return Status::OK();
      case QueryKind::kSequence:
        return CompileSequence(e.children, rho, q);
      case QueryKind::kFor: {
        StateId qbody = NewState("", m + 1);
        XQMFT_RETURN_NOT_OK(CompilePathScan(e.path, rho, q, qbody));
        return CompileExpr(*e.body, rho.Extend(e.name), qbody);
      }
      case QueryKind::kLet: {
        StateId qv = NewState("", m);
        StateId qbody = NewState("", m + 1);
        std::vector<Rhs> args = ParamArgs(m);
        args.push_back({RhsNode::Call(qv, InputVar::kX0, ParamArgs(m))});
        mft_.SetStayRule(q, {RhsNode::Call(qbody, InputVar::kX0, args)});
        XQMFT_RETURN_NOT_OK(CompileExpr(*e.value, rho, qv));
        return CompileExpr(*e.body, rho.Extend(e.name), qbody);
      }
      case QueryKind::kPath: {
        if (e.path.IsBareVariable()) {
          int idx = rho.Lookup(e.path.variable);
          if (idx < 0) {
            return Status::InvalidArgument("unbound variable $" +
                                           e.path.variable);
          }
          mft_.SetStayRule(q, {RhsNode::Param(idx)});
          return Status::OK();
        }
        // T(p): q'(%, ys, y_{m+1}) -> y_{m+1}; F(p, q, q').
        StateId qout = NewState("", m + 1);
        mft_.SetStayRule(qout, {RhsNode::Param(m + 1)});
        return CompilePathScan(e.path, rho, q, qout);
      }
    }
    return Status::Internal("unhandled query kind in T");
  }

  Status CompileSequence(const std::vector<std::unique_ptr<QueryExpr>>& items,
                         const Env& rho, StateId q) {
    const int m = rho.size();
    if (items.empty()) {
      mft_.SetStayRule(q, {});
      return Status::OK();
    }
    if (items.size() == 1) return CompileExpr(*items[0], rho, q);
    Rhs rhs;
    std::vector<StateId> qs;
    for (std::size_t i = 0; i < items.size(); ++i) {
      StateId qi = NewState("", m);
      qs.push_back(qi);
      rhs.push_back(RhsNode::Call(qi, InputVar::kX0, ParamArgs(m)));
    }
    mft_.SetStayRule(q, std::move(rhs));
    for (std::size_t i = 0; i < items.size(); ++i) {
      XQMFT_RETURN_NOT_OK(CompileExpr(*items[i], rho, qs[i]));
    }
    return Status::OK();
  }

  // -------------------------------------------------------------------
  // F: path compilation (lazily determinized position-set construction)
  // -------------------------------------------------------------------

  // Context for compiling one RelPath into scan states.
  struct ScanCtx {
    const RelPath* steps = nullptr;
    // Main scans produce q'(x0, ys, copy) per match; existential (predicate)
    // scans select between the then/else parameters y1/y2.
    bool existential = false;
    // Comparison semantics of the final step (existential scans only).
    PredicateKind pred_kind = PredicateKind::kExists;
    std::string literal;
    // Main scans only:
    StateId body = -1;
    int m = 0;
    std::map<std::vector<int>, StateId> memo;
  };

  // F(p, q, q'): installs head/chain rules so that state q, invoked at the
  // bound forest, emits q'(x0, ys, copy) for every match of `path`.
  // anchor_root: the path starts at $input (q scans the whole top-level
  // chain); otherwise q is invoked at (t s) and matches are sought within
  // the head tree t only.
  Status CompilePathScan(const Path& path, const Env& rho, StateId q,
                         StateId qbody) {
    ScanCtx ctx;
    ctx.steps = &path.steps;
    ctx.existential = false;
    ctx.body = qbody;
    ctx.m = rho.size();
    bool anchor_root = path.variable == "input" && rho.Lookup("input") == 1 &&
                       rho.size() == 1;
    // More precisely: the anchor is the document root iff the path variable
    // is $input used outside any for scope. Validation guarantees that a
    // path with steps inside a for uses the nearest for variable, so the
    // check above reduces to "top-level environment".
    if (path.variable == "input") anchor_root = true;
    if (anchor_root) {
      // q is itself the chain state for position set {0}.
      ctx.memo[{0}] = q;
      XQMFT_RETURN_NOT_OK(GenerateChainRules(&ctx, {0}, q));
    } else {
      XQMFT_RETURN_NOT_OK(InstallHeadRules(&ctx, q));
    }
    return Status::OK();
  }

  // Head mode: q is invoked at (t s); the first step applies beneath/beside
  // t only. x2 is not scanned (Equation (1) restricts matches to t).
  Status InstallHeadRules(ScanCtx* ctx, StateId q) {
    const RelPath& steps = *ctx->steps;
    XQMFT_CHECK(!steps.empty());
    Rhs rhs;
    StateId first;
    XQMFT_ASSIGN_OR_RETURN(first, ScanState(ctx, {0}));
    InputVar target = steps[0].axis == Axis::kFollowingSibling
                          ? InputVar::kX2
                          : InputVar::kX1;
    if (ctx->existential) {
      rhs.push_back(RhsNode::Call(
          first, target, {{RhsNode::Param(1)}, {RhsNode::Param(2)}}));
      mft_.SetDefaultRule(q, rhs);
      mft_.SetEpsilonRule(q, {RhsNode::Param(2)});
    } else {
      rhs.push_back(RhsNode::Call(first, target, ParamArgs(ctx->m)));
      mft_.SetDefaultRule(q, rhs);
      mft_.SetEpsilonRule(q, {});
    }
    return Status::OK();
  }

  // Returns (creating if needed) the chain scan state for position set P.
  Result<StateId> ScanState(ScanCtx* ctx, std::vector<int> p) {
    auto it = ctx->memo.find(p);
    if (it != ctx->memo.end()) return it->second;
    int params = ctx->existential ? 2 : ctx->m;
    StateId q = NewState(ctx->existential ? "pr" : "sc", params);
    ctx->memo[p] = q;  // before recursion: transitions may loop back
    XQMFT_RETURN_NOT_OK(GenerateChainRules(ctx, p, q));
    return q;
  }

  // A candidate transition: position i in P can advance to i+1 on a node of
  // the class, subject to the step's predicates.
  struct Candidate {
    int next;  // i+1
    const PathStep* step;
  };

  Status GenerateChainRules(ScanCtx* ctx, const std::vector<int>& p,
                            StateId q) {
    const RelPath& steps = *ctx->steps;
    const int n = static_cast<int>(steps.size());

    // Collect the symbol classes relevant at this state.
    std::set<std::string> names;
    for (int i : p) {
      const NodeTest& t = steps[static_cast<std::size_t>(i)].test;
      if (t.kind == NodeTestKind::kName) names.insert(t.name);
    }
    std::vector<SymClass> classes;
    for (const std::string& name : names) {
      classes.push_back({SymClass::kElementName, name});
    }
    bool comparison = ctx->existential &&
                      (ctx->pred_kind == PredicateKind::kEquals ||
                       ctx->pred_kind == PredicateKind::kNotEquals);
    bool final_candidate = false;
    for (int i : p) final_candidate |= (i == n - 1);
    if (comparison && final_candidate) {
      classes.push_back({SymClass::kTextLiteral, ctx->literal});
    }
    classes.push_back({SymClass::kAnyText, ""});
    classes.push_back({SymClass::kDefault, ""});

    for (const SymClass& cls : classes) {
      std::vector<Candidate> certain;
      std::vector<Candidate> gated;
      for (int i : p) {
        const PathStep& step = steps[static_cast<std::size_t>(i)];
        if (!TestMatchesClass(step.test, cls)) continue;
        // Final-step comparison: only the exact literal class succeeds for
        // kEquals; any *other* text succeeds for kNotEquals.
        if (comparison && i == n - 1) {
          if (ctx->pred_kind == PredicateKind::kEquals &&
              cls.kind != SymClass::kTextLiteral) {
            continue;
          }
          if (ctx->pred_kind == PredicateKind::kNotEquals &&
              cls.kind == SymClass::kTextLiteral) {
            continue;
          }
        }
        if (step.predicates.empty()) {
          certain.push_back({i + 1, &step});
        } else {
          gated.push_back({i + 1, &step});
        }
      }
      Rhs rhs;
      XQMFT_ASSIGN_OR_RETURN(
          rhs, ForkBranches(ctx, p, certain, gated, 0, {}));
      switch (cls.kind) {
        case SymClass::kElementName:
          mft_.SetSymbolRule(q, Symbol::Element(cls.name), std::move(rhs));
          break;
        case SymClass::kTextLiteral:
          mft_.SetSymbolRule(q, Symbol::Text(cls.name), std::move(rhs));
          break;
        case SymClass::kAnyText:
          mft_.SetTextRule(q, std::move(rhs));
          break;
        case SymClass::kDefault:
          mft_.SetDefaultRule(q, std::move(rhs));
          break;
      }
    }
    mft_.SetEpsilonRule(
        q, ctx->existential ? Rhs{RhsNode::Param(2)} : Rhs{});
    return Status::OK();
  }

  // Recursively forks over predicate-gated candidates; `included` collects
  // the gated positions whose predicates hold on the current branch.
  Result<Rhs> ForkBranches(ScanCtx* ctx, const std::vector<int>& p,
                           const std::vector<Candidate>& certain,
                           const std::vector<Candidate>& gated,
                           std::size_t k, std::vector<Candidate> included) {
    if (k == gated.size()) {
      std::vector<Candidate> matches = certain;
      for (const Candidate& c : included) matches.push_back(c);
      return BuildTransition(ctx, p, matches);
    }
    std::vector<Candidate> with = included;
    with.push_back(gated[k]);
    Rhs then_rhs;
    XQMFT_ASSIGN_OR_RETURN(then_rhs,
                           ForkBranches(ctx, p, certain, gated, k + 1, with));
    Rhs else_rhs;
    XQMFT_ASSIGN_OR_RETURN(
        else_rhs, ForkBranches(ctx, p, certain, gated, k + 1, included));
    // Wrap the step's predicates conjunctively, innermost last.
    Rhs result = std::move(then_rhs);
    const auto& preds = gated[k].step->predicates;
    for (auto it = preds.rbegin(); it != preds.rend(); ++it) {
      Rhs wrapped;
      XQMFT_ASSIGN_OR_RETURN(
          wrapped, PredCall(*it, std::move(result), else_rhs));
      result = std::move(wrapped);
    }
    return result;
  }

  // One branch's transition: matched set -> selected / descend / chain.
  Result<Rhs> BuildTransition(ScanCtx* ctx, const std::vector<int>& p,
                              const std::vector<Candidate>& matches) {
    const RelPath& steps = *ctx->steps;
    const int n = static_cast<int>(steps.size());

    bool selected = false;
    std::set<int> c_set, s_set;
    for (int i : p) {
      if (steps[static_cast<std::size_t>(i)].axis == Axis::kDescendant) {
        c_set.insert(i);
      }
      s_set.insert(i);
    }
    for (const Candidate& mc : matches) {
      if (mc.next == n) {
        selected = true;
        continue;
      }
      Axis next_axis = steps[static_cast<std::size_t>(mc.next)].axis;
      if (next_axis == Axis::kFollowingSibling) {
        s_set.insert(mc.next);
      } else {
        c_set.insert(mc.next);
      }
    }

    if (ctx->existential && selected) {
      // Existential success: emit the then-branch, stop scanning.
      return Rhs{RhsNode::Param(1)};
    }

    std::vector<int> c_vec(c_set.begin(), c_set.end());
    std::vector<int> s_vec(s_set.begin(), s_set.end());

    if (ctx->existential) {
      // Else-threading: try the subtree, then the rest of the chain, then
      // give up with y2 (the paper's q2/q3 pattern).
      Rhs rest;
      if (!s_vec.empty()) {
        StateId qs;
        XQMFT_ASSIGN_OR_RETURN(qs, ScanState(ctx, s_vec));
        rest = {RhsNode::Call(qs, InputVar::kX2,
                              {{RhsNode::Param(1)}, {RhsNode::Param(2)}})};
      } else {
        rest = {RhsNode::Param(2)};
      }
      if (!c_vec.empty()) {
        StateId qc;
        XQMFT_ASSIGN_OR_RETURN(qc, ScanState(ctx, c_vec));
        return Rhs{RhsNode::Call(qc, InputVar::kX1,
                                 {{RhsNode::Param(1)}, std::move(rest)})};
      }
      return rest;
    }

    // Main scan: pre-order concatenation of the selected match, the matches
    // below this node, and the matches on the rest of the chain.
    Rhs rhs;
    if (selected) {
      std::vector<Rhs> args = ParamArgs(ctx->m);
      args.push_back({RhsNode::CurrentLabel(
          {RhsNode::Call(QCopy(), InputVar::kX1, {})})});
      rhs.push_back(RhsNode::Call(ctx->body, InputVar::kX0, std::move(args)));
    }
    if (!c_vec.empty()) {
      StateId qc;
      XQMFT_ASSIGN_OR_RETURN(qc, ScanState(ctx, c_vec));
      rhs.push_back(RhsNode::Call(qc, InputVar::kX1, ParamArgs(ctx->m)));
    }
    if (!s_vec.empty()) {
      StateId qs;
      XQMFT_ASSIGN_OR_RETURN(qs, ScanState(ctx, s_vec));
      rhs.push_back(RhsNode::Call(qs, InputVar::kX2, ParamArgs(ctx->m)));
    }
    return rhs;
  }

  // A call to the predicate state for `pred` with the given then/else
  // branches. kEmpty negates by swapping the branches.
  Result<Rhs> PredCall(const Predicate& pred, Rhs then_rhs, Rhs else_rhs) {
    if (pred.path.empty()) {
      // `[.]` is vacuously true; `[empty(.)]` vacuously false.
      if (pred.kind == PredicateKind::kEmpty) return else_rhs;
      return then_rhs;
    }
    StateId qp;
    XQMFT_ASSIGN_OR_RETURN(qp, PredState(pred));
    if (pred.kind == PredicateKind::kEmpty) {
      std::swap(then_rhs, else_rhs);
    }
    return Rhs{RhsNode::Call(qp, InputVar::kX0,
                             {std::move(then_rhs), std::move(else_rhs)})};
  }

  // The head state realizing [[qp]](t ts, u1, u2) = u1 if `pred` holds at t,
  // u2 otherwise.
  Result<StateId> PredState(const Predicate& pred) {
    auto it = pred_memo_.find(&pred);
    if (it != pred_memo_.end()) return it->second;
    StateId q = NewState("pd", 2);
    pred_memo_[&pred] = q;
    auto ctx = std::make_unique<ScanCtx>();
    ctx->steps = &pred.path;
    ctx->existential = true;
    ctx->pred_kind = pred.kind;
    ctx->literal = pred.literal;
    XQMFT_RETURN_NOT_OK(InstallHeadRules(ctx.get(), q));
    pred_ctxs_.push_back(std::move(ctx));  // keep memoized states alive
    return q;
  }

  Mft mft_;
  StateId qcopy_ = -1;
  int counter_ = 0;
  std::map<const Predicate*, StateId> pred_memo_;
  std::vector<std::unique_ptr<ScanCtx>> pred_ctxs_;
};

}  // namespace

Result<Mft> TranslateQuery(const QueryExpr& query) {
  XQMFT_RETURN_NOT_OK(ValidateQuery(query));
  return Translator().Translate(query);
}

}  // namespace xqmft
