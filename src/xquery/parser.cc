// Recursive-descent parser for MinXQuery (Figure 2), plus QuerySize and the
// Section 2.1 variable-restriction validator.
#include <cctype>

#include "util/strings.h"
#include "xquery/ast.h"

namespace xqmft {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.';
}

class Parser {
 public:
  explicit Parser(const std::string& s) : s_(s) {}

  Result<std::unique_ptr<QueryExpr>> Parse() {
    SkipWs();
    std::unique_ptr<QueryExpr> q;
    XQMFT_RETURN_NOT_OK(ParseQueryExpr(&q));
    SkipWs();
    if (pos_ != s_.size()) {
      return Err("trailing characters after query");
    }
    return q;
  }

 private:
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument(
        StrFormat("MinXQuery error at offset %zu: %s", pos_, msg.c_str()));
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool AtKeyword(const char* kw) const {
    std::size_t len = std::char_traits<char>::length(kw);
    if (s_.compare(pos_, len, kw) != 0) return false;
    // Word boundary.
    return pos_ + len >= s_.size() || !IsNameChar(s_[pos_ + len]);
  }

  Status ParseName(std::string* out) {
    if (pos_ >= s_.size() || !IsNameStart(s_[pos_])) {
      return Err("expected a name");
    }
    out->clear();
    while (pos_ < s_.size() && IsNameChar(s_[pos_])) *out += s_[pos_++];
    return Status::OK();
  }

  // query ::= element | clause
  Status ParseQueryExpr(std::unique_ptr<QueryExpr>* out) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '<') return ParseElement(out);
    return ParseClause(out);
  }

  Status ParseElement(std::unique_ptr<QueryExpr>* out) {
    ++pos_;  // '<'
    auto e = std::make_unique<QueryExpr>();
    e->kind = QueryKind::kElement;
    XQMFT_RETURN_NOT_OK(ParseName(&e->name));
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != '>') {
      return Err("expected '>' in element constructor <" + e->name);
    }
    ++pos_;
    // Content: elements, strings, {clause}.
    while (true) {
      if (pos_ >= s_.size()) {
        return Err("unterminated element constructor <" + e->name + ">");
      }
      if (s_[pos_] == '<') {
        if (pos_ + 1 < s_.size() && s_[pos_ + 1] == '/') {
          pos_ += 2;
          std::string close;
          XQMFT_RETURN_NOT_OK(ParseName(&close));
          SkipWs();
          if (pos_ >= s_.size() || s_[pos_] != '>') {
            return Err("expected '>' in </" + close);
          }
          ++pos_;
          if (close != e->name) {
            return Err("mismatched </" + close + ">, expected </" + e->name +
                       ">");
          }
          break;
        }
        std::unique_ptr<QueryExpr> child;
        XQMFT_RETURN_NOT_OK(ParseElement(&child));
        e->children.push_back(std::move(child));
        continue;
      }
      if (s_[pos_] == '{') {
        ++pos_;
        std::unique_ptr<QueryExpr> clause;
        XQMFT_RETURN_NOT_OK(ParseQueryExpr(&clause));
        SkipWs();
        if (pos_ >= s_.size() || s_[pos_] != '}') {
          return Err("expected '}' after embedded clause");
        }
        ++pos_;
        e->children.push_back(std::move(clause));
        continue;
      }
      // String constant: raw text until '<' or '{'. Whitespace-only runs are
      // formatting, not content.
      std::string text;
      while (pos_ < s_.size() && s_[pos_] != '<' && s_[pos_] != '{') {
        text += s_[pos_++];
      }
      std::string_view stripped = StripWhitespace(text);
      if (!stripped.empty()) {
        auto str = std::make_unique<QueryExpr>();
        str->kind = QueryKind::kString;
        str->str = std::string(stripped);
        e->children.push_back(std::move(str));
      }
    }
    *out = std::move(e);
    return Status::OK();
  }

  Status ParseClause(std::unique_ptr<QueryExpr>* out) {
    SkipWs();
    if (AtKeyword("for")) return ParseFor(out);
    if (AtKeyword("let")) return ParseLet(out);
    if (pos_ < s_.size() && s_[pos_] == '(') return ParseSequence(out);
    if (pos_ < s_.size() && (s_[pos_] == '$' || s_[pos_] == '/')) {
      return ParseOrdPath(out);
    }
    return Err("expected for/let/(...)/path clause");
  }

  Status ParseFor(std::unique_ptr<QueryExpr>* out) {
    pos_ += 3;  // "for"
    auto f = std::make_unique<QueryExpr>();
    f->kind = QueryKind::kFor;
    SkipWs();
    XQMFT_RETURN_NOT_OK(ParseVar(&f->name));
    SkipWs();
    if (!AtKeyword("in")) return Err("expected 'in' in for clause");
    pos_ += 2;
    SkipWs();
    XQMFT_RETURN_NOT_OK(ParsePathInto(&f->path));
    SkipWs();
    if (!AtKeyword("return")) return Err("expected 'return' in for clause");
    pos_ += 6;
    XQMFT_RETURN_NOT_OK(ParseQueryExpr(&f->body));
    *out = std::move(f);
    return Status::OK();
  }

  Status ParseLet(std::unique_ptr<QueryExpr>* out) {
    pos_ += 3;  // "let"
    auto l = std::make_unique<QueryExpr>();
    l->kind = QueryKind::kLet;
    SkipWs();
    XQMFT_RETURN_NOT_OK(ParseVar(&l->name));
    SkipWs();
    if (s_.compare(pos_, 2, ":=") != 0) {
      return Err("expected ':=' in let clause");
    }
    pos_ += 2;
    XQMFT_RETURN_NOT_OK(ParseQueryExpr(&l->value));
    SkipWs();
    if (!AtKeyword("return")) return Err("expected 'return' in let clause");
    pos_ += 6;
    XQMFT_RETURN_NOT_OK(ParseQueryExpr(&l->body));
    *out = std::move(l);
    return Status::OK();
  }

  Status ParseSequence(std::unique_ptr<QueryExpr>* out) {
    ++pos_;  // '('
    auto seq = std::make_unique<QueryExpr>();
    seq->kind = QueryKind::kSequence;
    while (true) {
      std::unique_ptr<QueryExpr> item;
      XQMFT_RETURN_NOT_OK(ParseQueryExpr(&item));
      seq->children.push_back(std::move(item));
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= s_.size() || s_[pos_] != ')') {
      return Err("expected ')' closing sequence");
    }
    ++pos_;
    if (seq->children.size() < 2) {
      return Err("a sequence needs at least two members");
    }
    *out = std::move(seq);
    return Status::OK();
  }

  Status ParseOrdPath(std::unique_ptr<QueryExpr>* out) {
    auto p = std::make_unique<QueryExpr>();
    p->kind = QueryKind::kPath;
    XQMFT_RETURN_NOT_OK(ParsePathInto(&p->path));
    *out = std::move(p);
    return Status::OK();
  }

  Status ParseVar(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '$') {
      return Err("expected a $variable");
    }
    ++pos_;
    return ParseName(out);
  }

  Status ParsePathInto(Path* out) {
    if (pos_ < s_.size() && s_[pos_] == '$') {
      ++pos_;
      XQMFT_RETURN_NOT_OK(ParseName(&out->variable));
    } else if (pos_ < s_.size() && s_[pos_] == '/') {
      out->variable = "input";  // leading '/' abbreviates $input
    } else {
      return Err("expected a path starting with $var or '/'");
    }
    return ParsePathSteps(s_, &pos_, &out->steps);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::size_t PredicatesSize(const std::vector<Predicate>& preds);

std::size_t RelPathSize(const RelPath& steps) {
  std::size_t n = 0;
  for (const PathStep& s : steps) {
    n += 1 + PredicatesSize(s.predicates);
  }
  return n;
}

std::size_t PredicatesSize(const std::vector<Predicate>& preds) {
  std::size_t n = 0;
  for (const Predicate& p : preds) n += 1 + RelPathSize(p.path);
  return n;
}

}  // namespace

std::size_t QuerySize(const QueryExpr& q) {
  std::size_t n = 1;
  switch (q.kind) {
    case QueryKind::kElement:
    case QueryKind::kSequence:
      for (const auto& c : q.children) n += QuerySize(*c);
      break;
    case QueryKind::kString:
      break;
    case QueryKind::kFor:
      n += 1 + RelPathSize(q.path.steps);
      n += QuerySize(*q.body);
      break;
    case QueryKind::kLet:
      n += QuerySize(*q.value);
      n += QuerySize(*q.body);
      break;
    case QueryKind::kPath:
      n += RelPathSize(q.path.steps);
      break;
  }
  return n;
}

std::string QueryToString(const QueryExpr& q) {
  switch (q.kind) {
    case QueryKind::kElement: {
      std::string out = "<" + q.name + ">";
      for (const auto& c : q.children) {
        if (c->kind == QueryKind::kElement || c->kind == QueryKind::kString) {
          out += QueryToString(*c);
        } else {
          out += "{" + QueryToString(*c) + "}";
        }
      }
      out += "</" + q.name + ">";
      return out;
    }
    case QueryKind::kString:
      return q.str;
    case QueryKind::kFor:
      return "for $" + q.name + " in " + PathToString(q.path) + " return " +
             QueryToString(*q.body);
    case QueryKind::kLet:
      return "let $" + q.name + " := " + QueryToString(*q.value) +
             " return " + QueryToString(*q.body);
    case QueryKind::kPath:
      return PathToString(q.path);
    case QueryKind::kSequence: {
      std::string out = "(";
      for (std::size_t i = 0; i < q.children.size(); ++i) {
        if (i > 0) out += ",";
        out += QueryToString(*q.children[i]);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

Result<std::unique_ptr<QueryExpr>> ParseQuery(const std::string& text) {
  return Parser(text).Parse();
}

namespace {

// Walks the query tracking in-scope variables and the nearest enclosing for
// variable. `nearest_for` is empty at top level.
Status ValidateWalk(const QueryExpr& q, std::vector<std::string>* scope,
                    const std::string& nearest_for) {
  auto in_scope = [&](const std::string& v) {
    if (v == "input") return true;
    for (const std::string& s : *scope) {
      if (s == v) return true;
    }
    return false;
  };
  auto check_path = [&](const Path& p) -> Status {
    if (p.IsBareVariable()) {
      if (!in_scope(p.variable)) {
        return Status::InvalidArgument("unbound variable $" + p.variable);
      }
      return Status::OK();
    }
    if (nearest_for.empty()) {
      if (p.variable != "input") {
        return Status::InvalidArgument(
            "path must start with $input outside any for clause, got $" +
            p.variable);
      }
      return Status::OK();
    }
    if (p.variable != nearest_for) {
      return Status::InvalidArgument(
          "path must start with the nearest enclosing for variable $" +
          nearest_for + ", got $" + p.variable);
    }
    return Status::OK();
  };

  switch (q.kind) {
    case QueryKind::kElement:
    case QueryKind::kSequence:
      for (const auto& c : q.children) {
        XQMFT_RETURN_NOT_OK(ValidateWalk(*c, scope, nearest_for));
      }
      return Status::OK();
    case QueryKind::kString:
      return Status::OK();
    case QueryKind::kFor: {
      XQMFT_RETURN_NOT_OK(check_path(q.path));
      scope->push_back(q.name);
      Status st = ValidateWalk(*q.body, scope, q.name);
      scope->pop_back();
      return st;
    }
    case QueryKind::kLet: {
      XQMFT_RETURN_NOT_OK(ValidateWalk(*q.value, scope, nearest_for));
      scope->push_back(q.name);
      Status st = ValidateWalk(*q.body, scope, nearest_for);
      scope->pop_back();
      return st;
    }
    case QueryKind::kPath:
      return check_path(q.path);
  }
  return Status::OK();
}

}  // namespace

Status ValidateQuery(const QueryExpr& q) {
  std::vector<std::string> scope;
  return ValidateWalk(q, &scope, "");
}

}  // namespace xqmft
