#include "xquery/evaluator.h"

#include <unordered_map>

#include "xpath/eval.h"

namespace xqmft {

namespace {

// A variable binding: the whole input document ($input), an input node
// (for-bound), or a materialized forest (let-bound).
struct Binding {
  enum class Kind { kInputDoc, kNode, kForest } kind = Kind::kInputDoc;
  NodeRef node;   // kNode
  Forest forest;  // kForest
};

class Evaluator {
 public:
  explicit Evaluator(const Forest& input) : input_(input) {}

  void Bind(const std::string& var, NodeRef node) {
    env_[var] = Binding{Binding::Kind::kNode, node, {}};
  }

  Status Eval(const QueryExpr& q, Forest* out) {
    switch (q.kind) {
      case QueryKind::kElement: {
        Tree t = Tree::Element(q.name);
        for (const auto& c : q.children) {
          XQMFT_RETURN_NOT_OK(Eval(*c, &t.children));
        }
        out->push_back(std::move(t));
        return Status::OK();
      }
      case QueryKind::kString:
        out->push_back(Tree::Text(q.str));
        return Status::OK();
      case QueryKind::kSequence:
        for (const auto& c : q.children) {
          XQMFT_RETURN_NOT_OK(Eval(*c, out));
        }
        return Status::OK();
      case QueryKind::kFor: {
        std::vector<NodeRef> matches;
        XQMFT_RETURN_NOT_OK(ResolveMatches(q.path, &matches));
        Saved saved = Save(q.name);
        Status st;
        for (const NodeRef& m : matches) {
          env_[q.name] = Binding{Binding::Kind::kNode, m, {}};
          st = Eval(*q.body, out);
          if (!st.ok()) break;
        }
        Restore(q.name, std::move(saved));
        return st;
      }
      case QueryKind::kLet: {
        Forest value;
        XQMFT_RETURN_NOT_OK(Eval(*q.value, &value));
        Saved saved = Save(q.name);
        env_[q.name] = Binding{Binding::Kind::kForest, {}, std::move(value)};
        Status st = Eval(*q.body, out);
        Restore(q.name, std::move(saved));
        return st;
      }
      case QueryKind::kPath: {
        if (q.path.IsBareVariable()) {
          if (q.path.variable == "input") {
            AppendForest(out, input_);
            return Status::OK();
          }
          auto it = env_.find(q.path.variable);
          if (it == env_.end()) {
            return Status::InvalidArgument("unbound variable $" +
                                           q.path.variable);
          }
          const Binding& b = it->second;
          if (b.kind == Binding::Kind::kNode) {
            out->push_back(b.node.node());  // copy of the subtree
          } else if (b.kind == Binding::Kind::kForest) {
            AppendForest(out, b.forest);
          } else {
            AppendForest(out, input_);
          }
          return Status::OK();
        }
        std::vector<NodeRef> matches;
        XQMFT_RETURN_NOT_OK(ResolveMatches(q.path, &matches));
        for (const NodeRef& m : matches) out->push_back(m.node());
        return Status::OK();
      }
    }
    return Status::Internal("unhandled query kind");
  }

 private:
  // Save/restore for shadowed bindings (e.g. reusing a variable name in a
  // nested clause).
  struct Saved {
    bool had = false;
    Binding binding;
  };
  Saved Save(const std::string& name) {
    Saved s;
    auto it = env_.find(name);
    if (it != env_.end()) {
      s.had = true;
      s.binding = std::move(it->second);
    }
    return s;
  }
  void Restore(const std::string& name, Saved saved) {
    if (saved.had) {
      env_[name] = std::move(saved.binding);
    } else {
      env_.erase(name);
    }
  }

  Status ResolveMatches(const Path& p, std::vector<NodeRef>* out) {
    if (p.variable == "input" && env_.find("input") == env_.end()) {
      *out = EvalStepsFromRoot(input_, p.steps);
      return Status::OK();
    }
    auto it = env_.find(p.variable);
    if (it == env_.end()) {
      return Status::InvalidArgument("unbound path variable $" + p.variable);
    }
    if (it->second.kind != Binding::Kind::kNode) {
      return Status::InvalidArgument(
          "path variable $" + p.variable + " is not for-bound");
    }
    *out = EvalStepsFromNode(input_, it->second.node, p.steps);
    return Status::OK();
  }

  const Forest& input_;
  std::unordered_map<std::string, Binding> env_;
};

}  // namespace

Result<Forest> EvaluateQuery(const QueryExpr& q, const Forest& input) {
  Forest out;
  XQMFT_RETURN_NOT_OK(Evaluator(input).Eval(q, &out));
  return out;
}

Result<Forest> EvaluateQueryBound(const QueryExpr& body, const Forest& roots,
                                  const std::string& var, NodeRef binding) {
  Forest out;
  Evaluator ev(roots);
  ev.Bind(var, binding);
  XQMFT_RETURN_NOT_OK(ev.Eval(body, &out));
  return out;
}

}  // namespace xqmft
