// MinXQuery abstract syntax (Figure 2 of the paper):
//
//   query    ::= element | clause
//   element  ::= <name> {element | string | {clause}}* </name>
//   clause   ::= for $var in ordpath return query
//              | let $var := query return query
//              | ordpath
//              | (query {, query}+)
//
// Restrictions enforced by Validate (Section 2.1):
//   * the input document is bound to $input;
//   * every XPath expression with steps starts with the variable introduced
//     by the nearest enclosing for clause, or with $input if there is none;
//     bare variable references (no steps) may name any in-scope variable.
#ifndef XQMFT_XQUERY_AST_H_
#define XQMFT_XQUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "util/status.h"
#include "xpath/ast.h"

namespace xqmft {

enum class QueryKind : unsigned char {
  kElement,   ///< <name>content*</name>
  kString,    ///< string constant inside an element constructor
  kFor,       ///< for $var in path return body
  kLet,       ///< let $var := value return body
  kPath,      ///< ordpath ($var with optional steps)
  kSequence,  ///< (q1, q2, ...)
};

/// \brief One MinXQuery expression node.
struct QueryExpr {
  QueryKind kind = QueryKind::kSequence;

  std::string name;  ///< element name (kElement), variable (kFor/kLet)
  std::string str;   ///< literal (kString)
  Path path;         ///< kFor: the `in` path; kPath: the ordpath

  std::vector<std::unique_ptr<QueryExpr>> children;  ///< kElement content,
                                                     ///< kSequence items
  std::unique_ptr<QueryExpr> value;                  ///< kLet bound value
  std::unique_ptr<QueryExpr> body;                   ///< kFor / kLet return
};

/// The paper's |P|: number of AST nodes, with each path step and predicate
/// counted as a node.
std::size_t QuerySize(const QueryExpr& q);

/// Renders the query back to (normalized) MinXQuery syntax.
std::string QueryToString(const QueryExpr& q);

/// Parses a MinXQuery program.
Result<std::unique_ptr<QueryExpr>> ParseQuery(const std::string& text);

/// Checks the Section 2.1 variable restrictions. Returns InvalidArgument
/// naming the offending variable on violation.
Status ValidateQuery(const QueryExpr& q);

}  // namespace xqmft

#endif  // XQMFT_XQUERY_AST_H_
