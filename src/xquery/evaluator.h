// Reference DOM evaluator for MinXQuery: the denotational [[P]] against
// which the XQuery-to-MFT translation is property-tested (Theorem 1 states
// [[M_P]](f) = [[P]](f) for every forest f).
#ifndef XQMFT_XQUERY_EVALUATOR_H_
#define XQMFT_XQUERY_EVALUATOR_H_

#include <string>

#include "util/status.h"
#include "xml/forest.h"
#include "xpath/eval.h"
#include "xquery/ast.h"

namespace xqmft {

/// Evaluates `q` on `input` (the forest bound to $input). The query must
/// pass ValidateQuery.
Result<Forest> EvaluateQuery(const QueryExpr& q, const Forest& input);

/// Evaluates `body` with `var` for-bound to `binding` (a node of `roots`).
/// Used by engines that buffer a fragment and evaluate a loop body against
/// it (the GCX baseline's per-binding evaluation).
Result<Forest> EvaluateQueryBound(const QueryExpr& body, const Forest& roots,
                                  const std::string& var, NodeRef binding);

}  // namespace xqmft

#endif  // XQMFT_XQUERY_EVALUATOR_H_
