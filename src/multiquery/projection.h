// Source-level projection paths for multi-query streaming.
//
// GCX-style projection (gcx/gcx_engine.cc) decides which nodes enter a
// *buffered fragment*; its paths are relative to a slot match and it may
// flatten ancestor structure because the buffer is only consulted by the
// predicates compiled against it. Dropping events at the *source* is a
// stricter problem: the surviving stream is re-evaluated by full MFT
// engines that match paths against the remaining structure, so a projection
// must preserve every ancestor chain it keeps — reparenting a kept node
// under a pruned ancestor could manufacture child-axis matches that do not
// exist in the document. The derivation here therefore produces *absolute*
// (document-root-anchored) paths and the automaton (union_projection.h)
// keeps the full spine of every active path: a subtree is dropped only when
// no path position can advance into it at all, which is exactly the
// Marian–Siméon projection guarantee the paper's Section 6 measurements
// lean on.
//
// Two path kinds: a *keep-node* path marks binding spines (`for` clauses)
// whose element events must survive but whose unrelated descendants may
// not; a *keep-subtree* path marks copy targets (ordpath results, predicate
// paths) whose entire subtree must survive verbatim.
#ifndef XQMFT_MULTIQUERY_PROJECTION_H_
#define XQMFT_MULTIQUERY_PROJECTION_H_

#include <vector>

#include "xpath/ast.h"
#include "xquery/ast.h"

namespace xqmft {

/// One absolute projection path, predicates stripped (predicate paths are
/// re-anchored as keep-subtree paths of their own during derivation).
struct ProjectionPath {
  RelPath steps;
  bool keep_subtree = false;
};

/// \brief The projection of one compiled plan: the set of absolute paths
/// whose matches (and, for keep-subtree paths, whole matched subtrees) the
/// plan can observe.
struct QueryProjection {
  /// The plan may read anywhere; source projection must be disabled for any
  /// run containing it. Set for queries outside the projectable fragment
  /// (bare `$input` output, a following-sibling step, a stepped path over a
  /// let-bound value) and for hand-written transducers that have no query.
  bool whole_document = false;
  std::vector<ProjectionPath> paths;
};

/// Derives the projection of a validated query. `query == nullptr` (a plan
/// built FromMft) yields whole_document — nothing is known about what a
/// hand-written transducer reads.
QueryProjection DeriveProjection(const QueryExpr* query);

}  // namespace xqmft

#endif  // XQMFT_MULTIQUERY_PROJECTION_H_
