#include "multiquery/projection.h"

#include <string>
#include <utility>

namespace xqmft {
namespace {

// Variable scope during derivation. A for-variable is a document position
// rooted at an absolute predicate-free path; a let-variable holds a
// constructed value with no document position (its input needs are
// collected where the value expression is).
struct Binding {
  std::string name;
  bool is_node = false;
  RelPath prefix;  ///< absolute path of the binding (is_node only)
};

class Builder {
 public:
  QueryProjection Run(const QueryExpr& q) {
    scope_.push_back(Binding{"input", /*is_node=*/true, {}});
    Collect(q);
    if (out_.whole_document) out_.paths.clear();
    return std::move(out_);
  }

 private:
  const Binding* Lookup(const std::string& var) const {
    for (auto it = scope_.rbegin(); it != scope_.rend(); ++it) {
      if (it->name == var) return &*it;
    }
    return nullptr;
  }

  // Resolves `path` to absolute predicate-free steps. On failure (stepped
  // path without a document anchor, following-sibling — whose matches
  // depend on siblings no child/descendant automaton can account for) the
  // whole query becomes unprojectable.
  bool Resolve(const Path& path, RelPath* abs) {
    const Binding* b = Lookup(path.variable);
    if (b == nullptr || !b->is_node) {
      out_.whole_document = true;
      return false;
    }
    *abs = b->prefix;
    for (const PathStep& s : path.steps) {
      if (s.axis == Axis::kFollowingSibling) {
        out_.whole_document = true;
        return false;
      }
      PathStep clean;
      clean.axis = s.axis;
      clean.test = s.test;
      abs->push_back(std::move(clean));
    }
    return true;
  }

  // Registers the absolute predicate-free path `clean`, whose trailing
  // steps came from `steps` (still carrying predicates): clean.size() ==
  // anchor + steps.size(). Predicate paths join the projection as
  // keep-subtree paths anchored at the step they test — a predicate is
  // evaluated over its target's content, so the target subtree must
  // survive. An empty path names the document node itself: nothing to keep
  // for a binding (it has no events), everything for a copy.
  void Add(RelPath clean, const RelPath& steps, bool keep_subtree) {
    if (out_.whole_document) return;
    if (clean.empty()) {
      if (keep_subtree) out_.whole_document = true;
      return;
    }
    const std::size_t anchor = clean.size() - steps.size();
    for (std::size_t i = 0; i < steps.size(); ++i) {
      for (const Predicate& p : steps[i].predicates) {
        RelPath full(clean.begin(),
                     clean.begin() + static_cast<long>(anchor + i) + 1);
        for (const PathStep& ps : p.path) {
          if (ps.axis == Axis::kFollowingSibling) {
            out_.whole_document = true;
            return;
          }
          PathStep c;
          c.axis = ps.axis;
          c.test = ps.test;
          full.push_back(std::move(c));
        }
        Add(std::move(full), p.path, /*keep_subtree=*/true);
        if (out_.whole_document) return;
      }
    }
    out_.paths.push_back(ProjectionPath{std::move(clean), keep_subtree});
  }

  void Collect(const QueryExpr& e) {
    if (out_.whole_document) return;
    switch (e.kind) {
      case QueryKind::kElement:
      case QueryKind::kSequence:
        for (const auto& c : e.children) Collect(*c);
        return;
      case QueryKind::kString:
        return;
      case QueryKind::kFor: {
        RelPath abs;
        if (!Resolve(e.path, &abs)) return;
        Add(abs, e.path.steps, /*keep_subtree=*/false);
        scope_.push_back(Binding{e.name, /*is_node=*/true, std::move(abs)});
        Collect(*e.body);
        scope_.pop_back();
        return;
      }
      case QueryKind::kLet:
        Collect(*e.value);
        scope_.push_back(Binding{e.name, /*is_node=*/false, {}});
        Collect(*e.body);
        scope_.pop_back();
        return;
      case QueryKind::kPath: {
        if (e.path.IsBareVariable()) {
          const Binding* b = Lookup(e.path.variable);
          if (b == nullptr) {
            out_.whole_document = true;  // unreachable after validation
            return;
          }
          // Copying a let-bound value reads no input beyond what its value
          // expression already registered; copying a for binding (or
          // $input, whose prefix is empty) keeps the whole subtree.
          if (b->is_node) Add(b->prefix, RelPath{}, /*keep_subtree=*/true);
          return;
        }
        RelPath abs;
        if (!Resolve(e.path, &abs)) return;
        Add(std::move(abs), e.path.steps, /*keep_subtree=*/true);
        return;
      }
    }
  }

  QueryProjection out_;
  std::vector<Binding> scope_;
};

}  // namespace

QueryProjection DeriveProjection(const QueryExpr* query) {
  if (query == nullptr) {
    QueryProjection out;
    out.whole_document = true;
    return out;
  }
  return Builder().Run(*query);
}

}  // namespace xqmft
