// Single-pass multi-query execution: one shared event stream fanned into N
// push-mode engines (stream/engine.h). The input is tokenized exactly once
// — the inversion of parallel/'s one-query/many-shards split — and the
// union projection automaton (union_projection.h) drops events no plan can
// observe before they reach any engine.
//
// Symbol spaces: the shared source binds to the run's master table; each
// engine keeps its own run-local table (its rule ids live there), bridged
// by a lazily grown dense master-id -> engine-id remap, so the per-event
// per-engine cost is an array index, not a hash lookup.
#ifndef XQMFT_MULTIQUERY_MULTI_RUN_H_
#define XQMFT_MULTIQUERY_MULTI_RUN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "multiquery/projection.h"
#include "multiquery/union_projection.h"
#include "stream/engine.h"
#include "xml/event_source.h"
#include "xml/events.h"
#include "xml/sax_parser.h"

namespace xqmft {

/// One plan of a multi-query run.
struct MultiPlanSpec {
  const Mft* mft = nullptr;
  /// The plan's source projection (CompiledPlan::projection()); null is
  /// treated as whole_document and disables the union automaton for the
  /// whole run. Must outlive the run.
  const QueryProjection* projection = nullptr;
  /// Per-plan step budget etc.; `validator` must be null (a validator reads
  /// the full stream, incompatible with source projection), and `sax` must
  /// tokenize identically across all plans of a run.
  StreamOptions options;
  OutputSink* sink = nullptr;
};

struct MultiPlanResult {
  /// Per-plan engine failure (rule miss, step budget): sticky, isolated —
  /// sibling plans are unaffected. Source-level failures (XML errors) abort
  /// every plan that had not already completed.
  Status status;
  /// Filled even for failed plans (whatever accumulated). bytes_in counts
  /// the full shared input: it reports what this plan's serial run would
  /// have consumed, not a per-plan share.
  StreamStats stats;
  std::uint64_t events_fed = 0;  ///< events this engine consumed
};

struct MultiQueryOptions {
  /// Merge the per-plan projections and skip unmatchable subtrees at the
  /// source; off means every engine sees every event (the N-pass count).
  bool union_projection = true;
  /// Run-level cooperative cancellation (batch deadline, client
  /// disconnect): injected into every engine's StreamOptions and also
  /// polled in the shared pump itself, so projection-skipped stretches —
  /// where no engine sees events — cannot outrun a deadline. A trip aborts
  /// every unfinished plan with the token's status; plans that already
  /// completed keep their results, mirroring source-error handling. Must
  /// outlive the run; null means not cancellable.
  const CancelToken* cancel = nullptr;
  /// Per-plan cooperative cancellation, parallel to the plan vector (empty
  /// or short = no token for the missing plans). Each token is installed as
  /// its engine's StreamOptions cancel (unless the spec carries one
  /// already), so a tripped member detaches through the per-plan
  /// failure-isolation path — status recorded, siblings keep streaming —
  /// which is how the serving scheduler drops one disconnected request out
  /// of a shared coalesced run. Tokens must outlive the run.
  std::vector<const CancelToken*> per_plan_cancel;
};

struct MultiQueryStats {
  std::uint64_t events_total = 0;    ///< events the shared source produced
  std::uint64_t events_skipped = 0;  ///< dropped by the union projection
  std::size_t bytes_in = 0;          ///< shared input bytes, counted once
  bool projection_enabled = false;
};

/// \brief Drives one shared event source through every plan's engine in a
/// single pass. Use once: construct, Run (or RunSource), read results().
class MultiQueryRun {
 public:
  explicit MultiQueryRun(std::vector<MultiPlanSpec> plans,
                         MultiQueryOptions options = {});
  ~MultiQueryRun();
  MultiQueryRun(const MultiQueryRun&) = delete;
  MultiQueryRun& operator=(const MultiQueryRun&) = delete;

  /// Streams `events` to completion (or until every plan has finished or
  /// failed — like the serial pump, the run stops reading early when no
  /// engine can produce further output). The source is bound to the run's
  /// master symbol table. Returns setup and source-level errors; per-plan
  /// engine failures land in results() only.
  Status Run(EventSource* events);

  /// Convenience: parses `source` with `sax` (which must tokenize
  /// identically to every plan's options.sax — checked).
  Status RunSource(ByteSource* source, const SaxOptions& sax);

  const std::vector<MultiPlanResult>& results() const { return results_; }
  const MultiQueryStats& stats() const { return stats_; }

 private:
  struct SymbolRemap {
    std::vector<SymbolId> ids;  ///< master id -> engine id, grown lazily
    SymbolId Map(SymbolTable* dst, const XmlEvent& event);
  };

  Status CheckPlans(const SaxOptions* source_sax) const;
  void Finish(EventSource* events);

  std::vector<MultiPlanSpec> plans_;
  MultiQueryOptions options_;
  SymbolTable master_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<SymbolRemap> remaps_;
  std::vector<MultiPlanResult> results_;
  std::vector<std::size_t> first_output_bytes_;
  MultiQueryStats stats_;
  bool ran_ = false;
};

}  // namespace xqmft

#endif  // XQMFT_MULTIQUERY_MULTI_RUN_H_
