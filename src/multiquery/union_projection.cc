#include "multiquery/union_projection.h"

namespace xqmft {
namespace {

// One integer compare on the hot path — no label strings (mirrors the GCX
// projection matcher).
inline bool StepMatchesElement(Axis /*axis*/, NodeTestKind kind, SymbolId id,
                               SymbolId sym) {
  switch (kind) {
    case NodeTestKind::kName:
      return id == sym;
    case NodeTestKind::kAnyElement:
    case NodeTestKind::kAnyNode:
      return true;
    case NodeTestKind::kText:
      return false;
  }
  return false;
}

inline bool StepMatchesText(NodeTestKind kind) {
  return kind == NodeTestKind::kText || kind == NodeTestKind::kAnyNode;
}

}  // namespace

UnionProjection::UnionProjection(
    const std::vector<const QueryProjection*>& projections,
    SymbolTable* symbols) {
  for (const QueryProjection* qp : projections) {
    if (qp == nullptr || qp->whole_document) return;  // disabled
  }
  for (const QueryProjection* qp : projections) {
    for (const ProjectionPath& pp : qp->paths) {
      if (pp.steps.empty()) continue;  // document node: no events to keep
      std::vector<Step> path;
      path.reserve(pp.steps.size());
      for (std::size_t i = 0; i < pp.steps.size(); ++i) {
        const PathStep& s = pp.steps[i];
        Step step;
        step.axis = s.axis;
        step.kind = s.test.kind;
        if (s.test.kind == NodeTestKind::kName) {
          step.id = symbols->Intern(NodeKind::kElement, s.test.name);
        }
        step.last = i + 1 == pp.steps.size();
        step.keep_subtree = step.last && pp.keep_subtree;
        path.push_back(step);
      }
      // Exact duplicates (the same path registered by several plans, or
      // twice within one) would only duplicate positions; drop them.
      bool dup = false;
      for (const std::vector<Step>& have : paths_) {
        if (have.size() != path.size()) continue;
        bool eq = true;
        for (std::size_t i = 0; i < path.size() && eq; ++i) {
          eq = have[i].axis == path[i].axis && have[i].kind == path[i].kind &&
               have[i].id == path[i].id &&
               have[i].keep_subtree == path[i].keep_subtree;
        }
        if (eq) {
          dup = true;
          break;
        }
      }
      if (!dup) paths_.push_back(std::move(path));
    }
  }
  enabled_ = true;
  sets_.emplace_back();
  for (std::uint32_t p = 0; p < paths_.size(); ++p) {
    sets_[0].push_back(Pos{p, 0});
  }
}

void UnionProjection::PushNext(Pos p) {
  for (const Pos& have : next_) {
    if (have.path == p.path && have.step == p.step) return;
  }
  next_.push_back(p);
}

bool UnionProjection::Feed(const XmlEvent& event) {
  if (!enabled_) return true;
  switch (event.type) {
    case XmlEventType::kEndOfDocument:
      return true;
    case XmlEventType::kText: {
      if (!frames_.empty() && frames_.back() != FrameKind::kTrack) {
        return frames_.back() == FrameKind::kKeep;
      }
      for (const Pos& p : sets_[sets_top_]) {
        if (StepMatchesText(paths_[p.path][p.step].kind)) return true;
      }
      return false;
    }
    case XmlEventType::kStartElement: {
      if (!frames_.empty() && frames_.back() != FrameKind::kTrack) {
        frames_.push_back(frames_.back());
        return frames_.back() == FrameKind::kKeep;
      }
      SymbolId sym = event.symbol;
      bool advanced = false;
      bool keep_subtree = false;
      next_.clear();
      for (const Pos& p : sets_[sets_top_]) {
        const Step& s = paths_[p.path][p.step];
        // A descendant-axis position stays live below this node whether or
        // not it also matches it.
        if (s.axis == Axis::kDescendant) PushNext(p);
        if (!StepMatchesElement(s.axis, s.kind, s.id, sym)) continue;
        advanced = true;
        if (s.last) {
          if (s.keep_subtree) keep_subtree = true;
        } else {
          PushNext(Pos{p.path, p.step + 1});
        }
      }
      if (keep_subtree) {
        frames_.push_back(FrameKind::kKeep);
        return true;
      }
      if (!advanced && next_.empty()) {
        frames_.push_back(FrameKind::kSkip);
        return false;
      }
      frames_.push_back(FrameKind::kTrack);
      ++sets_top_;
      if (sets_top_ == sets_.size()) sets_.emplace_back();
      sets_[sets_top_].clear();
      sets_[sets_top_].swap(next_);
      return true;
    }
    case XmlEventType::kEndElement: {
      if (frames_.empty()) return true;  // unbalanced input: parser's problem
      FrameKind k = frames_.back();
      frames_.pop_back();
      if (k == FrameKind::kTrack) {
        --sets_top_;
        return true;
      }
      return k == FrameKind::kKeep;
    }
  }
  return true;
}

}  // namespace xqmft
