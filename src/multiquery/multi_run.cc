#include "multiquery/multi_run.h"

#include <utility>

namespace xqmft {

MultiQueryRun::MultiQueryRun(std::vector<MultiPlanSpec> plans,
                             MultiQueryOptions options)
    : plans_(std::move(plans)), options_(options) {}

MultiQueryRun::~MultiQueryRun() = default;

SymbolId MultiQueryRun::SymbolRemap::Map(SymbolTable* dst,
                                         const XmlEvent& event) {
  // Events without a master id (hand-built) fall back to the engine's
  // by-name interning in CellBuilder.
  if (event.symbol == kInvalidSymbol) return kInvalidSymbol;
  const std::size_t i = event.symbol;
  if (i >= ids.size()) ids.resize(i + 1, kInvalidSymbol);
  if (ids[i] == kInvalidSymbol) {
    ids[i] = dst->Intern(NodeKind::kElement, event.name);
  }
  return ids[i];
}

Status MultiQueryRun::CheckPlans(const SaxOptions* source_sax) const {
  if (plans_.empty()) {
    return Status::InvalidArgument("multi-query run needs at least one plan");
  }
  for (const MultiPlanSpec& p : plans_) {
    if (p.mft == nullptr || p.sink == nullptr) {
      return Status::InvalidArgument(
          "multi-query plan needs a transducer and a sink");
    }
    if (p.options.validator != nullptr) {
      return Status::InvalidArgument(
          "multi-query streaming does not support schema validators: a "
          "validator must see the full stream, which source projection "
          "drops events from");
    }
    const SaxOptions& base =
        source_sax != nullptr ? *source_sax : plans_.front().options.sax;
    if (!SameTokenization(base, p.options.sax)) {
      return Status::InvalidArgument(
          "multi-query plans disagree on tokenization options; they must "
          "share one event stream");
    }
  }
  return Status::OK();
}

Status MultiQueryRun::Run(EventSource* events) {
  if (ran_) {
    return Status::InvalidArgument("MultiQueryRun may only run once");
  }
  ran_ = true;
  XQMFT_RETURN_NOT_OK(CheckPlans(nullptr));

  results_.resize(plans_.size());
  remaps_.resize(plans_.size());
  first_output_bytes_.assign(plans_.size(), 0);
  std::vector<char> saw_output(plans_.size(), 0);
  engines_.reserve(plans_.size());
  for (std::size_t i = 0; i < plans_.size(); ++i) {
    MultiPlanSpec& p = plans_[i];
    // Token priority per engine: the spec's own token, then the plan's
    // member token (per_plan_cancel), then the run-level token. A member
    // token tripping makes that engine's Feed fail, which the loop below
    // isolates like any per-plan failure; the run-level token is still
    // polled in the shared pump either way.
    if (p.options.cancel == nullptr && i < options_.per_plan_cancel.size()) {
      p.options.cancel = options_.per_plan_cancel[i];
    }
    if (options_.cancel != nullptr && p.options.cancel == nullptr) {
      p.options.cancel = options_.cancel;
    }
    engines_.push_back(std::make_unique<Engine>(*p.mft, p.sink, p.options));
  }
  std::unique_ptr<UnionProjection> projection;
  if (options_.union_projection) {
    std::vector<const QueryProjection*> projections;
    projections.reserve(plans_.size());
    for (const MultiPlanSpec& p : plans_) projections.push_back(p.projection);
    projection = std::make_unique<UnionProjection>(projections, &master_);
    if (!projection->enabled()) projection.reset();
  }
  stats_.projection_enabled = projection != nullptr;

  events->BindSymbols(&master_);
  auto note_output = [&](std::size_t i) {
    if (saw_output[i] == 0 && engines_[i]->output_events() > 0) {
      saw_output[i] = 1;
      first_output_bytes_[i] = events->bytes_consumed();
    }
  };
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    Status st = engines_[i]->Prime();
    if (!st.ok()) {
      results_[i].status = st;
    } else {
      note_output(i);
    }
  }

  XmlEvent event;
  for (;;) {
    // Like the serial pump, stop reading as soon as no engine's output can
    // still change (all done or failed).
    bool any_live = false;
    for (std::size_t i = 0; i < engines_.size(); ++i) {
      if (results_[i].status.ok() && !engines_[i]->done()) {
        any_live = true;
        break;
      }
    }
    if (!any_live) break;
    Status st = events->Next(&event);
    if (!st.ok()) {
      // A malformed shared source aborts every unfinished plan; plans whose
      // output completed before the error keep their results, exactly as
      // their serial runs (which stop reading early) would.
      for (std::size_t i = 0; i < engines_.size(); ++i) {
        if (!results_[i].status.ok()) continue;
        if (engines_[i]->done()) {
          engines_[i]->Finish(&results_[i].stats);
          results_[i].stats.bytes_in = events->bytes_consumed();
          results_[i].stats.bytes_in_at_first_output = first_output_bytes_[i];
        } else {
          results_[i].status = st;
        }
      }
      stats_.bytes_in = events->bytes_consumed();
      return st;
    }
    if (event.type == XmlEventType::kEndOfDocument) break;
    ++stats_.events_total;
    // Run-level cancellation, polled here as well as inside the engines:
    // under the union projection a long unmatchable stretch feeds no engine
    // at all, so only the shared pump can observe a deadline during it.
    // Abort handling mirrors a source error: completed plans keep their
    // results, unfinished ones fail with the token's status.
    if (options_.cancel != nullptr && (stats_.events_total & 255u) == 0) {
      Status cst = options_.cancel->Check();
      if (!cst.ok()) {
        for (std::size_t i = 0; i < engines_.size(); ++i) {
          if (!results_[i].status.ok()) continue;
          if (engines_[i]->done()) {
            engines_[i]->Finish(&results_[i].stats);
            results_[i].stats.bytes_in = events->bytes_consumed();
            results_[i].stats.bytes_in_at_first_output =
                first_output_bytes_[i];
          } else {
            // No Finish here: the engine is still live, and Finish would
            // synthesize end-of-document and emit output for a run we are
            // abandoning. Status only, like a source error.
            results_[i].status = cst;
          }
        }
        stats_.bytes_in = events->bytes_consumed();
        return cst;
      }
    }
    if (projection != nullptr && !projection->Feed(event)) {
      ++stats_.events_skipped;
      continue;
    }
    for (std::size_t i = 0; i < engines_.size(); ++i) {
      if (!results_[i].status.ok() || engines_[i]->done()) continue;
      XmlEvent copy = event;
      copy.symbol = event.type == XmlEventType::kStartElement
                        ? remaps_[i].Map(engines_[i]->symbols(), event)
                        : kInvalidSymbol;
      Status fst = engines_[i]->Feed(copy);
      if (!fst.ok()) {
        results_[i].status = fst;  // isolated: siblings keep streaming
        continue;
      }
      ++results_[i].events_fed;
      note_output(i);
    }
  }
  Finish(events);
  return Status::OK();
}

void MultiQueryRun::Finish(EventSource* events) {
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    // Engine::Finish supplies the synthetic end-of-document to live
    // engines, is a stats-only no-op on failed (sticky) ones, and fills
    // stats either way.
    Status fst = engines_[i]->Finish(&results_[i].stats);
    if (results_[i].status.ok() && !fst.ok()) results_[i].status = fst;
    results_[i].stats.bytes_in = events->bytes_consumed();
    results_[i].stats.bytes_in_at_first_output = first_output_bytes_[i];
  }
  stats_.bytes_in = events->bytes_consumed();
}

Status MultiQueryRun::RunSource(ByteSource* source, const SaxOptions& sax) {
  XQMFT_RETURN_NOT_OK(CheckPlans(&sax));
  SaxParser parser(source, sax);
  return Run(&parser);
}

}  // namespace xqmft
