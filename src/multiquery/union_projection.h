// The union projection automaton: one position-set NFA over the merged
// projection paths of every plan in a multi-query run, deciding per input
// event whether *any* plan could observe it. Subtrees no plan can match are
// skipped exactly once, at the shared source, instead of once per engine.
//
// Soundness rule (see projection.h for why this is stricter than GCX's
// in-buffer projection): an element is forwarded iff it advanced some path
// position or some position stays live for its descendants — so every kept
// node keeps its full ancestor spine, and a dropped element drops its whole
// subtree. A completed keep-subtree path switches its subtree into
// forward-everything mode; text is forwarded only where a live position's
// step matches text nodes (or inside a kept subtree).
#ifndef XQMFT_MULTIQUERY_UNION_PROJECTION_H_
#define XQMFT_MULTIQUERY_UNION_PROJECTION_H_

#include <cstdint>
#include <vector>

#include "multiquery/projection.h"
#include "xml/events.h"
#include "xml/symbol_table.h"

namespace xqmft {

class UnionProjection {
 public:
  /// Merges `projections`, interning name tests into `symbols` — which must
  /// be the table the shared event source binds to, so element events carry
  /// directly comparable ids. Any null or whole_document projection
  /// disables the automaton (every event is forwarded). A query set that
  /// reads nothing (all-constant queries) yields an *empty* union, which
  /// correctly skips every element.
  UnionProjection(const std::vector<const QueryProjection*>& projections,
                  SymbolTable* symbols);

  bool enabled() const { return enabled_; }

  /// Decides whether this event must reach the engines. Call once per event
  /// in document order; kEndOfDocument is always forwarded. When disabled,
  /// always true.
  bool Feed(const XmlEvent& event);

 private:
  struct Step {
    Axis axis = Axis::kChild;
    NodeTestKind kind = NodeTestKind::kName;
    SymbolId id = kInvalidSymbol;  ///< interned name (kName tests)
    bool last = false;
    bool keep_subtree = false;  ///< owning path's kind; meaningful on last
  };
  struct Pos {
    std::uint32_t path;
    std::uint32_t step;
  };
  // Every open element owns one frame: tracked (a position set on the sets
  // stack), skipped (position set was empty), or kept (inside a completed
  // keep-subtree match). Skip/keep need no sets — depth alone suffices.
  enum class FrameKind : unsigned char { kTrack, kSkip, kKeep };

  void PushNext(Pos p);

  bool enabled_ = false;
  std::vector<std::vector<Step>> paths_;
  std::vector<FrameKind> frames_;
  // Stack of position sets for tracked frames; sets_[0] is the document
  // level. Grown but never shrunk so set storage is reused across siblings.
  std::vector<std::vector<Pos>> sets_;
  std::size_t sets_top_ = 0;
  std::vector<Pos> next_;  ///< scratch for the set under construction
};

}  // namespace xqmft

#endif  // XQMFT_MULTIQUERY_UNION_PROJECTION_H_
