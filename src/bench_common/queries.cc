#include "bench_common/queries.h"

#include <cstdio>
#include <cstdlib>

namespace xqmft {

// Figure 3 of the paper, verbatim modulo whitespace. The paper's versions of
// the XMark queries encode attributes as elements (person_id, seller_person,
// personref_person) to match the attribute-encoding of the inputs.
namespace {

const char* kQ01 = R"(<query01>{
  for $person in $input/site/people/person[./person_id/text()="person0"]
  return $person/name/text()}</query01>)";

const char* kQ02 = R"(<query02>{
  for $open_auction in /site/open_auctions/open_auction return
  <increase>{ for $increase in $open_auction/bidder/increase return
    <bid>{$increase/text()}</bid> }</increase>
}</query02>)";

const char* kQ04 = R"(<query04>{
  for $b in $input/site/open_auctions/open_auction
    [./bidder[./personref/personref_person/text()="personXX"]
     /following-sibling::bidder/personref/personref_person
     /text()="personYY"]
  return <history>{$b/reserve/text()}</history>}</query04>)";

const char* kQ13 = R"(<query13>{
  for $item in $input/site/regions/australia/item
  return <item><name>{$item/name/text()}</name>
    <description>{$item/description}</description></item>
}</query13>)";

const char* kQ16 = R"(<query16>{
  for $closed_auction in $input/site/closed_auctions/closed_auction
    [./annotation/description/parlist/listitem/parlist
     /listitem/text/emph/keyword/text()]
  return <person><id>{$closed_auction/seller/seller_person}</id></person>
}</query16>)";

const char* kQ17 = R"(<query17>{
  for $person in $input/site/people/person[empty(./homepage/text())]
  return <person><name>{$person/name/text()}</name></person>
}</query17>)";

const char* kDouble = R"(<double><r1>{$input/*}</r1>{$input/*}</double>)";

const char* kFourstar = R"(<fourstar>{$input//*//*//*//*}</fourstar>)";

const char* kDeepdup = R"(<deepdup>{ for $x in $input/* return
  <r> { for $y in $x/* return <r1><r2>{$y}</r2>{$y}</r1> } </r>
}</deepdup>)";

}  // namespace

const char* kPersonQuery =
    R"(<out>{ for $b in
      $input/person[./p_id/text() = "person0"]
      return let $r := $b/name/text()
      return $r }</out>)";

const char* kSection21Query =
    R"(for $v1 in $input/descendant::a return
       for $v2 in $v1/descendant::b return
       let $v3 := $v2/descendant::c return
       let $v4 := $v2/descendant::d return
       ($v1,$v2,$v3,$v4))";

const std::vector<BenchQuery>& Figure3Queries() {
  static const std::vector<BenchQuery> kQueries = {
      {"q01", "fig4a", kQ01, true},
      {"q02", "fig4b", kQ02, true},
      {"q04", "fig4c", kQ04, false},  // GCX lacks following-sibling
      {"q13", "fig4d", kQ13, true},
      {"q16", "fig4e", kQ16, true},
      {"q17", "fig4f", kQ17, true},
      {"double", "fig4g", kDouble, true},
      {"fourstar", "fig4h", kFourstar, true},
      {"deepdup", "fig4i", kDeepdup, true},
  };
  return kQueries;
}

const BenchQuery& QueryById(const std::string& id) {
  for (const BenchQuery& q : Figure3Queries()) {
    if (id == q.id) return q;
  }
  std::fprintf(stderr, "unknown benchmark query id: %s\n", id.c_str());
  std::abort();
}

}  // namespace xqmft
