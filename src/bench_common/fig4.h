// Shared driver for the Figure 4 benchmarks.
//
// Each Figure 4 sub-figure plots elapsed time and maximum memory for three
// engines — MFT (no opt), MFT (opt), GCX — over growing inputs. One bench
// binary per sub-figure calls RegisterFig4Benchmarks with its query id; the
// driver registers one google-benchmark per (engine, dataset, size) cell,
// reporting peak tracked memory and output events as counters.
//
// Environment knobs:
//   XQMFT_BENCH_SIZES_MB   comma-separated XMark sizes (default "1,4,16")
//   XQMFT_BENCH_NOOPT_CAP_MB  largest size run without optimization
//                             (default 4: the unoptimized transducer
//                             buffers the whole input, like the paper's
//                             out-of-memory no-opt points)
//   XQMFT_BENCH_GCX_CAP_MB    GCX buffer cap (default 24), the scaled
//                             analogue of GCX's reported failure on the
//                             doubling query above 200 MB
//   XQMFT_BENCH_FIG4_PAR_ITEMS / _THREADS   document-set size and worker
//                             count of the mft_par series (default 4 / 4)
#ifndef XQMFT_BENCH_COMMON_FIG4_H_
#define XQMFT_BENCH_COMMON_FIG4_H_

#include <string>
#include <vector>

namespace xqmft {

/// Sizes (bytes) for the XMark sweep.
std::vector<std::size_t> BenchSizesBytes();

/// Registers all series of one Figure 4 sub-figure. For the corner-case
/// queries (double/fourstar/deepdup, Figures 4(g-i)) the paper also runs
/// TreeBank/Medline/Protein inputs; pass include_table1_datasets = true.
void RegisterFig4Benchmarks(const std::string& query_id,
                            bool include_table1_datasets);

}  // namespace xqmft

#endif  // XQMFT_BENCH_COMMON_FIG4_H_
