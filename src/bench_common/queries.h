// The benchmark query corpus: the nine Figure 3 programs (XMark Q1, Q2, Q4,
// Q13, Q16, Q17 and the double/fourstar/deepdup corner cases) plus the
// paper's two worked examples (Section 2.1's nested loops and Section 2.2's
// Pperson). Shared between the test suites and the Figure 4 benches.
#ifndef XQMFT_BENCH_COMMON_QUERIES_H_
#define XQMFT_BENCH_COMMON_QUERIES_H_

#include <string>
#include <vector>

namespace xqmft {

struct BenchQuery {
  const char* id;       ///< short identifier (q01, q02, ...)
  const char* figure;   ///< the paper experiment it belongs to
  const char* text;     ///< MinXQuery source
  bool gcx_supported;   ///< false for Q4 (following-sibling), per Fig. 4(c)
};

/// All Figure 3 queries, in the paper's order.
const std::vector<BenchQuery>& Figure3Queries();

/// Looks up a query by id; aborts if unknown (programmer error).
const BenchQuery& QueryById(const std::string& id);

/// Section 2.2's Pperson query.
extern const char* kPersonQuery;

/// Section 2.1's nested for/let example.
extern const char* kSection21Query;

}  // namespace xqmft

#endif  // XQMFT_BENCH_COMMON_QUERIES_H_
