#include "bench_common/fig4.h"

#include <benchmark/benchmark.h>

#include <sys/stat.h>

#include <cstdlib>
#include <memory>

#include "bench_common/queries.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "gcx/gcx_engine.h"
#include "util/strings.h"
#include "xml/events.h"
#include "xml/pretok.h"
#include "xml/sax_parser.h"

namespace xqmft {

namespace {

std::size_t EnvMb(const char* name, std::size_t def_mb) {
  const char* v = std::getenv(name);
  if (v == nullptr) return def_mb * 1024 * 1024;
  return static_cast<std::size_t>(std::atoll(v)) * 1024 * 1024;
}

std::size_t EnvCount(const char* name, std::size_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr) return def;
  long long n = std::atoll(v);
  return n > 0 ? static_cast<std::size_t>(n) : def;
}

struct Fig4Dataset {
  DatasetKind kind;
  std::size_t bytes;
  std::string display;
};

std::vector<Fig4Dataset> DatasetsFor(bool include_table1) {
  std::vector<Fig4Dataset> out;
  for (std::size_t bytes : BenchSizesBytes()) {
    out.push_back({DatasetKind::kXmark, bytes,
                   StrFormat("xmark_%zuMB", bytes >> 20)});
  }
  if (include_table1) {
    std::size_t fixed = EnvMb("XQMFT_BENCH_T1_MB", 4);
    out.push_back({DatasetKind::kTreebank, fixed,
                   StrFormat("treebank_%zuMB", fixed >> 20)});
    out.push_back({DatasetKind::kMedline, fixed,
                   StrFormat("medline_%zuMB", fixed >> 20)});
    out.push_back({DatasetKind::kProtein, fixed,
                   StrFormat("protein_%zuMB", fixed >> 20)});
  }
  return out;
}

void BenchMft(benchmark::State& state, const BenchQuery& bq,
              const Fig4Dataset& ds, bool optimize) {
  Result<std::string> path = EnsureDataset(ds.kind, ds.bytes);
  if (!path.ok()) {
    state.SkipWithError(path.status().ToString().c_str());
    return;
  }
  PipelineOptions options;
  options.optimize = optimize;
  Result<std::unique_ptr<CompiledQuery>> cq =
      CompiledQuery::Compile(bq.text, options);
  if (!cq.ok()) {
    state.SkipWithError(cq.status().ToString().c_str());
    return;
  }
  StreamStats stats;
  std::size_t out_events = 0;
  for (auto _ : state) {
    CountingSink sink;
    Status st = cq.value()->StreamFile(path.value(), &sink, &stats);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    out_events = stats.output_events;
  }
  state.counters["peak_mem_B"] = static_cast<double>(stats.peak_bytes);
  state.counters["out_events"] = static_cast<double>(out_events);
  state.counters["bytes_in"] = static_cast<double>(stats.bytes_in);
  // Allocation-rate counters: slab reuse shows up here as flat node churn
  // per input byte, independently of wall-time noise.
  state.counters["exprs_created"] = static_cast<double>(stats.exprs_created);
  state.counters["cells_created"] = static_cast<double>(stats.cells_created);
  state.SetBytesProcessed(
      static_cast<int64_t>(stats.bytes_in * state.iterations()));
}

// Size of a file on disk (the XML byte denominator for throughput columns).
Result<std::size_t> FileBytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::InvalidArgument("cannot stat " + path);
  }
  return static_cast<std::size_t>(st.st_size);
}

// Tokenizes the dataset once next to its XML file; cached across series.
// The cache is only trusted while its recorded source identity matches the
// XML's current bytes — datasets live in a persistent XQMFT_DATA_DIR, so a
// regenerated document must not be benchmarked against a stale token stream.
Result<std::string> EnsurePretok(const std::string& xml_path) {
  std::string ptk = xml_path + ".ptk";
  if (PretokCacheValid(ptk, xml_path)) return ptk;
  XQMFT_RETURN_NOT_OK(PretokenizeXmlFile(xml_path, ptk));
  return ptk;
}

// The ROADMAP's binary-event-source series: the engine consumes the
// pre-tokenized cache with zero scanning — the upper bound a faster lexer
// converges toward.
void BenchMftPretok(benchmark::State& state, const BenchQuery& bq,
                    const Fig4Dataset& ds) {
  Result<std::string> path = EnsureDataset(ds.kind, ds.bytes);
  if (!path.ok()) {
    state.SkipWithError(path.status().ToString().c_str());
    return;
  }
  Result<std::string> ptk = EnsurePretok(path.value());
  if (!ptk.ok()) {
    state.SkipWithError(ptk.status().ToString().c_str());
    return;
  }
  // Throughput is reported against the XML bytes this pass replaced, so the
  // MB/s column compares like for like with the mft/gcx series (the pretok
  // file itself is smaller).
  Result<std::size_t> xml_bytes = FileBytes(path.value());
  if (!xml_bytes.ok()) {
    state.SkipWithError(xml_bytes.status().ToString().c_str());
    return;
  }
  Result<std::unique_ptr<CompiledQuery>> cq = CompiledQuery::Compile(bq.text);
  if (!cq.ok()) {
    state.SkipWithError(cq.status().ToString().c_str());
    return;
  }
  StreamStats stats;
  std::size_t out_events = 0;
  for (auto _ : state) {
    Result<std::unique_ptr<PretokSource>> src =
        PretokSource::OpenFile(ptk.value());
    if (!src.ok()) {
      state.SkipWithError(src.status().ToString().c_str());
      return;
    }
    CountingSink sink;
    Status st = cq.value()->StreamEvents(src.value().get(), &sink, &stats);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    out_events = stats.output_events;
  }
  state.counters["peak_mem_B"] = static_cast<double>(stats.peak_bytes);
  state.counters["out_events"] = static_cast<double>(out_events);
  state.counters["bytes_in"] = static_cast<double>(xml_bytes.value());
  state.counters["pretok_bytes_in"] = static_cast<double>(stats.bytes_in);
  state.counters["exprs_created"] = static_cast<double>(stats.exprs_created);
  state.counters["cells_created"] = static_cast<double>(stats.cells_created);
  state.SetBytesProcessed(
      static_cast<int64_t>(xml_bytes.value() * state.iterations()));
}

// The ROADMAP's parallel-sharding series: the cell's document served as a
// small document set (XQMFT_BENCH_FIG4_PAR_ITEMS copies, default 4) fanned
// across worker threads (XQMFT_BENCH_FIG4_PAR_THREADS, default 4) — the
// serving shape the sharding layer exists for. The knobs are deliberately
// distinct from bench_parallel's XQMFT_BENCH_PAR_* so tuning one binary in
// a bench_runner sweep cannot silently reshape the other's workload. One
// measurement covers all items and bytes-processed scales with them, so the
// throughput column compares aggregate parallel MB/s directly against
// mft_opt's single-engine MB/s.
void BenchMftPar(benchmark::State& state, const BenchQuery& bq,
                 const Fig4Dataset& ds) {
  Result<std::string> path = EnsureDataset(ds.kind, ds.bytes);
  if (!path.ok()) {
    state.SkipWithError(path.status().ToString().c_str());
    return;
  }
  std::size_t items = EnvCount("XQMFT_BENCH_FIG4_PAR_ITEMS", 4);
  ParallelOptions par;
  par.threads = EnvCount("XQMFT_BENCH_FIG4_PAR_THREADS", 4);
  Result<std::unique_ptr<CompiledQuery>> cq = CompiledQuery::Compile(bq.text);
  if (!cq.ok()) {
    state.SkipWithError(cq.status().ToString().c_str());
    return;
  }
  std::vector<ParallelInput> inputs(items,
                                    ParallelInput::XmlFile(path.value()));
  std::vector<StreamStats> stats;
  std::size_t bytes_in = 0, out_events = 0, peak = 0;
  for (auto _ : state) {
    CountingSink sink;
    Status st = cq.value()->StreamMany(inputs, &sink, par, &stats);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    bytes_in = 0;
    out_events = 0;
    peak = 0;
    for (const StreamStats& s : stats) {
      bytes_in += s.bytes_in;
      out_events += s.output_events;
      if (s.peak_bytes > peak) peak = s.peak_bytes;
    }
  }
  // Peak is the max *engine-tracked* peak over the items (per-engine peaks
  // need not coincide). It deliberately excludes the merge layer's staged
  // output: completed items park their whole output in EventBuffers until
  // the in-order flush reaches them, so real residency adds up to the
  // unflushed items' total output size on top of the engine peaks.
  state.counters["peak_mem_B"] = static_cast<double>(peak);
  state.counters["out_events"] = static_cast<double>(out_events);
  state.counters["bytes_in"] = static_cast<double>(bytes_in);
  state.counters["threads"] = static_cast<double>(par.threads);
  state.counters["items"] = static_cast<double>(items);
  state.SetBytesProcessed(
      static_cast<int64_t>(bytes_in * state.iterations()));
}

void BenchGcx(benchmark::State& state, const BenchQuery& bq,
              const Fig4Dataset& ds) {
  Result<std::string> path = EnsureDataset(ds.kind, ds.bytes);
  if (!path.ok()) {
    state.SkipWithError(path.status().ToString().c_str());
    return;
  }
  auto query = ParseQuery(bq.text);
  if (!query.ok()) {
    state.SkipWithError(query.status().ToString().c_str());
    return;
  }
  Result<std::unique_ptr<GcxQuery>> gq = GcxQuery::Compile(*query.value());
  if (!gq.ok()) {
    // Figure 4(c): GCX cannot run Q4 (following-sibling); report N/A.
    state.SkipWithError(("N/A: " + gq.status().ToString()).c_str());
    return;
  }
  GcxOptions options;
  options.max_buffer_bytes = EnvMb("XQMFT_BENCH_GCX_CAP_MB", 24);
  GcxStats stats;
  for (auto _ : state) {
    auto src = MmapSource::Open(path.value());
    if (!src.ok()) {
      state.SkipWithError(src.status().ToString().c_str());
      return;
    }
    CountingSink sink;
    Status st = gq.value()->Run(src.value().get(), &sink, options, &stats);
    if (!st.ok()) {
      // The paper marks GCX failures (e.g. the doubling query beyond its
      // buffer budget) as missing data points.
      state.SkipWithError(("FAIL: " + st.ToString()).c_str());
      return;
    }
  }
  state.counters["peak_mem_B"] = static_cast<double>(stats.peak_bytes);
  state.counters["out_events"] = static_cast<double>(stats.output_events);
  state.counters["bytes_in"] = static_cast<double>(stats.bytes_in);
  state.SetBytesProcessed(
      static_cast<int64_t>(stats.bytes_in * state.iterations()));
}

}  // namespace

std::vector<std::size_t> BenchSizesBytes() {
  const char* env = std::getenv("XQMFT_BENCH_SIZES_MB");
  std::string spec = env != nullptr ? env : "1,4,16";
  std::vector<std::size_t> out;
  for (const std::string& part : SplitString(spec, ',')) {
    long mb = std::atol(part.c_str());
    if (mb > 0) out.push_back(static_cast<std::size_t>(mb) * 1024 * 1024);
  }
  if (out.empty()) out.push_back(1024 * 1024);
  return out;
}

void RegisterFig4Benchmarks(const std::string& query_id,
                            bool include_table1_datasets) {
  const BenchQuery& bq = QueryById(query_id);
  std::size_t noopt_cap = EnvMb("XQMFT_BENCH_NOOPT_CAP_MB", 4);
  for (const Fig4Dataset& ds : DatasetsFor(include_table1_datasets)) {
    if (ds.bytes <= noopt_cap) {
      benchmark::RegisterBenchmark(
          StrFormat("%s/mft_noopt/%s", bq.id, ds.display.c_str()).c_str(),
          [bq, ds](benchmark::State& st) { BenchMft(st, bq, ds, false); })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
    benchmark::RegisterBenchmark(
        StrFormat("%s/mft_opt/%s", bq.id, ds.display.c_str()).c_str(),
        [bq, ds](benchmark::State& st) { BenchMft(st, bq, ds, true); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        StrFormat("%s/mft_pretok/%s", bq.id, ds.display.c_str()).c_str(),
        [bq, ds](benchmark::State& st) { BenchMftPretok(st, bq, ds); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        StrFormat("%s/mft_par/%s", bq.id, ds.display.c_str()).c_str(),
        [bq, ds](benchmark::State& st) { BenchMftPar(st, bq, ds); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        StrFormat("%s/gcx/%s", bq.id, ds.display.c_str()).c_str(),
        [bq, ds](benchmark::State& st) { BenchGcx(st, bq, ds); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace xqmft
