#include "xpath/eval.h"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace xqmft {

namespace {

// Document-order index: pre-order number per Tree node. Rebuilt per
// evaluation; this evaluator is ground truth, not the production engine.
class DocIndex {
 public:
  explicit DocIndex(const Forest& roots) { Walk(roots); }

  int OrderOf(const Tree* t) const {
    auto it = order_.find(t);
    return it == order_.end() ? -1 : it->second;
  }

 private:
  void Walk(const Forest& f) {
    for (const Tree& t : f) {
      order_[&t] = next_++;
      Walk(t.children);
    }
  }
  std::unordered_map<const Tree*, int> order_;
  int next_ = 0;
};

class Evaluator {
 public:
  explicit Evaluator(const Forest& roots) : roots_(roots), index_(roots) {}

  // One step from a set of context nodes; `virtual_root` marks that the
  // context is the document root rather than a real node set.
  std::vector<NodeRef> Eval(const std::vector<NodeRef>& contexts,
                            bool virtual_root, const RelPath& steps) {
    std::vector<NodeRef> current = contexts;
    bool at_root = virtual_root;
    for (const PathStep& step : steps) {
      std::vector<NodeRef> next;
      std::set<const Tree*> seen;
      auto add = [&](NodeRef r) {
        if (!step.test.Matches(r.node().kind, r.node().label)) return;
        if (!PredicatesHold(r, step.predicates)) return;
        if (seen.insert(&r.node()).second) next.push_back(r);
      };
      if (at_root) {
        // Virtual root: children are the top-level trees.
        switch (step.axis) {
          case Axis::kChild:
            AddChildrenOf(roots_, add);
            break;
          case Axis::kDescendant:
            AddDescendantsOf(roots_, add);
            break;
          case Axis::kFollowingSibling:
            break;  // the root has no siblings
        }
        at_root = false;
      } else {
        for (const NodeRef& ctx : current) {
          switch (step.axis) {
            case Axis::kChild:
              AddChildrenOf(ctx.node().children, add);
              break;
            case Axis::kDescendant:
              AddDescendantsOf(ctx.node().children, add);
              break;
            case Axis::kFollowingSibling:
              for (std::size_t i = ctx.index + 1; i < ctx.list->size(); ++i) {
                add(NodeRef{ctx.list, i});
              }
              break;
          }
        }
      }
      // Document order.
      std::sort(next.begin(), next.end(),
                [&](const NodeRef& a, const NodeRef& b) {
                  return index_.OrderOf(&a.node()) < index_.OrderOf(&b.node());
                });
      current = std::move(next);
      if (current.empty()) break;
    }
    return at_root ? std::vector<NodeRef>{} : current;
  }

  bool PredicatesHold(NodeRef node, const std::vector<Predicate>& preds) {
    for (const Predicate& p : preds) {
      if (!Holds(node, p)) return false;
    }
    return true;
  }

  bool Holds(NodeRef node, const Predicate& pred) {
    std::vector<NodeRef> matched = Eval({node}, false, pred.path);
    switch (pred.kind) {
      case PredicateKind::kExists:
        return !matched.empty();
      case PredicateKind::kEmpty:
        return matched.empty();
      case PredicateKind::kEquals:
        for (const NodeRef& r : matched) {
          if (r.node().kind == NodeKind::kText && r.node().label == pred.literal)
            return true;
        }
        return false;
      case PredicateKind::kNotEquals:
        for (const NodeRef& r : matched) {
          if (r.node().kind == NodeKind::kText && r.node().label != pred.literal)
            return true;
        }
        return false;
    }
    return false;
  }

 private:
  template <typename Add>
  void AddChildrenOf(const Forest& f, const Add& add) {
    for (std::size_t i = 0; i < f.size(); ++i) add(NodeRef{&f, i});
  }

  template <typename Add>
  void AddDescendantsOf(const Forest& f, const Add& add) {
    for (std::size_t i = 0; i < f.size(); ++i) {
      add(NodeRef{&f, i});
      AddDescendantsOf(f[i].children, add);
    }
  }

  const Forest& roots_;
  DocIndex index_;
};

}  // namespace

std::vector<NodeRef> EvalStepsFromRoot(const Forest& roots,
                                       const RelPath& steps) {
  if (steps.empty()) return {};
  return Evaluator(roots).Eval({}, true, steps);
}

std::vector<NodeRef> EvalStepsFromNode(const Forest& roots, NodeRef context,
                                       const RelPath& steps) {
  if (steps.empty()) return {context};
  return Evaluator(roots).Eval({context}, false, steps);
}

bool EvalPredicate(const Forest& roots, NodeRef node, const Predicate& pred) {
  return Evaluator(roots).Holds(node, pred);
}

}  // namespace xqmft
