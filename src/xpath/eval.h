// Naive DOM evaluator for the XPath fragment — the executable ground truth
// against which the DFA/subset-construction path compilation (src/translate/)
// is property-tested. Correctness over speed: sets of matched nodes are
// deduplicated and returned in document order.
#ifndef XQMFT_XPATH_EVAL_H_
#define XQMFT_XPATH_EVAL_H_

#include <vector>

#include "xml/forest.h"
#include "xpath/ast.h"

namespace xqmft {

/// \brief Reference to a node inside a DOM Forest: the sibling list that
/// contains it plus its index. Knowing the sibling list makes the
/// following-sibling axis and the streaming-equation contexts (t_i s_i)
/// directly expressible.
struct NodeRef {
  const Forest* list = nullptr;
  std::size_t index = 0;

  const Tree& node() const { return (*list)[index]; }
  bool operator==(const NodeRef& o) const {
    return list == o.list && index == o.index;
  }
};

/// Evaluates `steps` with the document root forest as context ($input acts
/// as a virtual root whose children are the top-level trees).
std::vector<NodeRef> EvalStepsFromRoot(const Forest& roots,
                                       const RelPath& steps);

/// Evaluates `steps` with a bound node as context (`$v/...`).
std::vector<NodeRef> EvalStepsFromNode(const Forest& roots, NodeRef context,
                                       const RelPath& steps);

/// Evaluates one predicate at `node` (the `.` anchor). `roots` is the
/// document, needed only for document-order bookkeeping.
bool EvalPredicate(const Forest& roots, NodeRef node, const Predicate& pred);

}  // namespace xqmft

#endif  // XQMFT_XPATH_EVAL_H_
