// XPath fragment of MinXQuery (Figure 2 of the paper):
//
//   ordpath  ::= $var {pathstep}*
//   pathstep ::= /axis::nodetest {[predicate]}*
//   axis     ::= child | descendant | following-sibling
//   nodetest ::= elementname | * | text() | node()
//   predicate::= predpath | empty(predpath)
//              | predpath="string" | predpath!="string"
//   predpath ::= . {pathstep}*
//
// Abbreviations accepted by the parser: `/name` (child), `//name`
// (descendant), and a leading `/` in place of `$input/` (used by the GCX
// benchmark queries, e.g. query02's `/site/open_auctions/...`).
#ifndef XQMFT_XPATH_AST_H_
#define XQMFT_XPATH_AST_H_

#include <string>
#include <vector>

#include "util/status.h"
#include "xml/symbol.h"

namespace xqmft {

enum class Axis : unsigned char {
  kChild,
  kDescendant,
  kFollowingSibling,
};

enum class NodeTestKind : unsigned char {
  kName,        ///< elementname
  kAnyElement,  ///< *
  kText,        ///< text()
  kAnyNode,     ///< node()
};

struct NodeTest {
  NodeTestKind kind = NodeTestKind::kName;
  std::string name;  ///< valid for kName

  /// Does a node with the given kind/label pass this test?
  bool Matches(NodeKind node_kind, const std::string& label) const {
    switch (kind) {
      case NodeTestKind::kName:
        return node_kind == NodeKind::kElement && label == name;
      case NodeTestKind::kAnyElement:
        return node_kind == NodeKind::kElement;
      case NodeTestKind::kText:
        return node_kind == NodeKind::kText;
      case NodeTestKind::kAnyNode:
        return true;
    }
    return false;
  }

  bool operator==(const NodeTest& o) const {
    return kind == o.kind && name == o.name;
  }
};

struct PathStep;

/// A relative path: the `.`-anchored steps of a predicate path.
using RelPath = std::vector<PathStep>;

enum class PredicateKind : unsigned char {
  kExists,     ///< [predpath]
  kEmpty,      ///< [empty(predpath)]
  kEquals,     ///< [predpath="literal"]
  kNotEquals,  ///< [predpath!="literal"]
};

/// \brief One XPath predicate. For comparisons the parser normalizes the
/// path to end in a text() step (appending child::text() if absent), so the
/// comparison is always a text-node label comparison — the existential
/// semantics the paper's Mperson example implements.
struct Predicate {
  PredicateKind kind = PredicateKind::kExists;
  RelPath path;
  std::string literal;  ///< for kEquals / kNotEquals

  bool operator==(const Predicate& o) const;
};

/// \brief One step of a path: axis, node test, and conjunctive predicates.
struct PathStep {
  Axis axis = Axis::kChild;
  NodeTest test;
  std::vector<Predicate> predicates;

  bool operator==(const PathStep& o) const {
    return axis == o.axis && test == o.test && predicates == o.predicates;
  }
};

/// \brief An ordpath: `$variable` followed by steps. Steps may be empty (a
/// bare variable reference).
struct Path {
  std::string variable;  ///< without the `$`
  RelPath steps;

  bool IsBareVariable() const { return steps.empty(); }
};

/// Renders a path in XPath syntax (for diagnostics).
std::string PathToString(const Path& path);
std::string RelPathToString(const RelPath& steps);

/// Parses an ordpath, e.g. `$v//a[./b/text()="x"]/following-sibling::c`.
/// A leading `/` with no variable is read as `$input/...`.
Result<Path> ParsePath(const std::string& text);

/// Parses the step suffix of a path (everything after the variable) starting
/// at `*pos` in `text`; used by the XQuery parser. Stops at the first
/// character that cannot continue a path.
Status ParsePathSteps(const std::string& text, std::size_t* pos,
                      RelPath* steps);

}  // namespace xqmft

#endif  // XQMFT_XPATH_AST_H_
