// Recursive-descent parser for the XPath fragment.
#include <cctype>

#include "util/strings.h"
#include "xpath/ast.h"

namespace xqmft {

bool Predicate::operator==(const Predicate& o) const {
  return kind == o.kind && path == o.path && literal == o.literal;
}

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.';
}

class StepParser {
 public:
  StepParser(const std::string& text, std::size_t pos)
      : s_(text), pos_(pos) {}

  std::size_t pos() const { return pos_; }

  Status Err(const std::string& msg) const {
    return Status::InvalidArgument(
        StrFormat("XPath error at offset %zu: %s", pos_, msg.c_str()));
  }

  // Parses {pathstep}* — zero or more steps. Steps may be preceded by
  // whitespace (Figure 3's queries wrap long paths across lines); the
  // whitespace is consumed only if a step actually follows.
  Status ParseSteps(RelPath* out) {
    while (true) {
      std::size_t save = pos_;
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != '/') {
        pos_ = save;
        return Status::OK();
      }
      PathStep step;
      XQMFT_RETURN_NOT_OK(ParseStep(&step));
      out->push_back(std::move(step));
    }
  }

 private:
  Status ParseStep(PathStep* out) {
    ++pos_;  // leading '/'
    out->axis = Axis::kChild;
    if (pos_ < s_.size() && s_[pos_] == '/') {
      // The `//` abbreviation (supported "in a usual way", Section 5).
      ++pos_;
      out->axis = Axis::kDescendant;
    } else {
      // Explicit axis?
      static const struct {
        const char* name;
        Axis axis;
      } kAxes[] = {
          {"child::", Axis::kChild},
          {"descendant::", Axis::kDescendant},
          {"following-sibling::", Axis::kFollowingSibling},
      };
      for (const auto& a : kAxes) {
        std::size_t len = std::char_traits<char>::length(a.name);
        if (s_.compare(pos_, len, a.name) == 0) {
          out->axis = a.axis;
          pos_ += len;
          break;
        }
      }
    }
    XQMFT_RETURN_NOT_OK(ParseNodeTest(&out->test));
    while (true) {
      std::size_t save = pos_;
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != '[') {
        pos_ = save;
        return Status::OK();
      }
      Predicate pred;
      XQMFT_RETURN_NOT_OK(ParsePredicate(&pred));
      out->predicates.push_back(std::move(pred));
    }
  }

  Status ParseNodeTest(NodeTest* out) {
    if (pos_ >= s_.size()) return Err("missing node test");
    if (s_[pos_] == '*') {
      ++pos_;
      out->kind = NodeTestKind::kAnyElement;
      return Status::OK();
    }
    if (!IsNameStart(s_[pos_])) return Err("bad node test");
    std::string name;
    while (pos_ < s_.size() && IsNameChar(s_[pos_])) name += s_[pos_++];
    if (s_.compare(pos_, 2, "()") == 0) {
      pos_ += 2;
      if (name == "text") {
        out->kind = NodeTestKind::kText;
        return Status::OK();
      }
      if (name == "node") {
        out->kind = NodeTestKind::kAnyNode;
        return Status::OK();
      }
      return Err("unknown node test " + name + "()");
    }
    out->kind = NodeTestKind::kName;
    out->name = std::move(name);
    return Status::OK();
  }

  Status ParsePredicate(Predicate* out) {
    ++pos_;  // '['
    SkipWs();
    bool negated = false;
    if (s_.compare(pos_, 5, "empty") == 0) {
      std::size_t save = pos_;
      pos_ += 5;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == '(') {
        ++pos_;
        negated = true;
      } else {
        pos_ = save;  // an element named "empty..."? fall through
      }
    }
    XQMFT_RETURN_NOT_OK(ParsePredPath(&out->path));
    SkipWs();
    if (negated) {
      if (pos_ >= s_.size() || s_[pos_] != ')') {
        return Err("missing ')' after empty(...)");
      }
      ++pos_;
      SkipWs();
      out->kind = PredicateKind::kEmpty;
    } else if (pos_ < s_.size() && (s_[pos_] == '=' || s_[pos_] == '!')) {
      bool neq = s_[pos_] == '!';
      ++pos_;
      if (neq) {
        if (pos_ >= s_.size() || s_[pos_] != '=') return Err("expected '!='");
        ++pos_;
      }
      SkipWs();
      XQMFT_RETURN_NOT_OK(ParseStringLiteral(&out->literal));
      SkipWs();
      out->kind = neq ? PredicateKind::kNotEquals : PredicateKind::kEquals;
      // Normalize: comparisons test text nodes. If the path does not end in
      // a text() step, compare the text children (append child::text()).
      if (out->path.empty() ||
          out->path.back().test.kind != NodeTestKind::kText) {
        PathStep text_step;
        text_step.axis = Axis::kChild;
        text_step.test.kind = NodeTestKind::kText;
        out->path.push_back(std::move(text_step));
      }
    } else {
      out->kind = PredicateKind::kExists;
    }
    if (pos_ >= s_.size() || s_[pos_] != ']') {
      return Err("missing ']' after predicate");
    }
    ++pos_;
    return Status::OK();
  }

  Status ParsePredPath(RelPath* out) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;  // the `.` anchor
    }
    return ParseSteps(out);
  }

  Status ParseStringLiteral(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      return Err("expected a string literal");
    }
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') *out += s_[pos_++];
    if (pos_ >= s_.size()) return Err("unterminated string literal");
    ++pos_;
    return Status::OK();
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_;
};

std::string NodeTestToString(const NodeTest& t) {
  switch (t.kind) {
    case NodeTestKind::kName: return t.name;
    case NodeTestKind::kAnyElement: return "*";
    case NodeTestKind::kText: return "text()";
    case NodeTestKind::kAnyNode: return "node()";
  }
  return "?";
}

std::string PredicateToString(const Predicate& p) {
  std::string inner = "." + RelPathToString(p.path);
  switch (p.kind) {
    case PredicateKind::kExists: return "[" + inner + "]";
    case PredicateKind::kEmpty: return "[empty(" + inner + ")]";
    case PredicateKind::kEquals: return "[" + inner + "=\"" + p.literal + "\"]";
    case PredicateKind::kNotEquals:
      return "[" + inner + "!=\"" + p.literal + "\"]";
  }
  return "[?]";
}

}  // namespace

std::string RelPathToString(const RelPath& steps) {
  std::string out;
  for (const PathStep& s : steps) {
    out += '/';
    switch (s.axis) {
      case Axis::kChild: break;
      case Axis::kDescendant: out += "descendant::"; break;
      case Axis::kFollowingSibling: out += "following-sibling::"; break;
    }
    out += NodeTestToString(s.test);
    for (const Predicate& p : s.predicates) out += PredicateToString(p);
  }
  return out;
}

std::string PathToString(const Path& path) {
  return "$" + path.variable + RelPathToString(path.steps);
}

Status ParsePathSteps(const std::string& text, std::size_t* pos,
                      RelPath* steps) {
  StepParser p(text, *pos);
  XQMFT_RETURN_NOT_OK(p.ParseSteps(steps));
  *pos = p.pos();
  return Status::OK();
}

Result<Path> ParsePath(const std::string& text) {
  Path out;
  std::size_t pos = 0;
  if (pos < text.size() && text[pos] == '$') {
    ++pos;
    if (pos >= text.size() || !IsNameStart(text[pos])) {
      return Status::InvalidArgument("XPath: bad variable name");
    }
    while (pos < text.size() && IsNameChar(text[pos])) {
      out.variable += text[pos++];
    }
  } else if (pos < text.size() && text[pos] == '/') {
    out.variable = "input";  // leading '/' abbreviates $input/
  } else {
    return Status::InvalidArgument(
        "XPath must start with $var or '/': " + text);
  }
  XQMFT_RETURN_NOT_OK(ParsePathSteps(text, &pos, &out.steps));
  if (pos != text.size()) {
    return Status::InvalidArgument(
        StrFormat("XPath: trailing characters at offset %zu in '%s'", pos,
                  text.c_str()));
  }
  return out;
}

}  // namespace xqmft
