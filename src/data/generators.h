// Synthetic dataset generators for the Table 1 inputs.
//
// The paper benchmarks over XMark documents (depth 13), TreeBank (86 MB,
// depth 37), Medline (174 MB, depth 8) and Protein Sequence DB (684 MB,
// depth 8), with attributes encoded as elements. Those corpora are not
// redistributable here, so deterministic generators reproduce their
// *structural* profiles — the properties the queries and the engines react
// to: element vocabulary (XMark's site/people/person/open_auction/... tree,
// including the deep Q16 annotation chain), nesting depth, optional-element
// probabilities (homepage for Q17, keyword for Q16, person0 hits for Q1),
// and record-vs-recursive shape. Sizes are a target in bytes; generation is
// a single sequential write.
#ifndef XQMFT_DATA_GENERATORS_H_
#define XQMFT_DATA_GENERATORS_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "util/status.h"

namespace xqmft {

enum class DatasetKind {
  kXmark,     ///< auction site; depth ~13
  kTreebank,  ///< deep parse trees; depth ~37
  kMedline,   ///< bibliographic records; depth ~8
  kProtein,   ///< protein sequence records; depth ~8
};

const char* DatasetName(DatasetKind kind);

/// Generates a dataset of roughly `target_bytes` into `out` (buffered).
/// Deterministic in (kind, target_bytes, seed).
Status GenerateDataset(DatasetKind kind, std::size_t target_bytes,
                       std::uint64_t seed, std::FILE* out);

/// Generates into a string (tests and small benches).
Result<std::string> GenerateDatasetString(DatasetKind kind,
                                          std::size_t target_bytes,
                                          std::uint64_t seed);

/// Structural statistics of an XML file (the Table 1 columns).
struct DatasetStats {
  std::size_t bytes = 0;
  std::size_t elements = 0;
  std::size_t texts = 0;
  std::size_t depth = 0;
};

Result<DatasetStats> ScanDatasetFile(const std::string& path);

/// Returns the path of a cached generated dataset, generating it on first
/// use. Files live in `XQMFT_DATA_DIR` (default /tmp/xqmft_data).
Result<std::string> EnsureDataset(DatasetKind kind, std::size_t target_bytes,
                                  std::uint64_t seed = 7);

}  // namespace xqmft

#endif  // XQMFT_DATA_GENERATORS_H_
