#include "data/generators.h"

#include <sys/stat.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/strings.h"
#include "xml/sax_parser.h"

namespace xqmft {

namespace {

// Buffered XML writer tracking bytes written. Output goes to a FILE* or a
// string.
class XmlWriter {
 public:
  explicit XmlWriter(std::FILE* f) : file_(f) { buf_.reserve(kFlushAt * 2); }
  explicit XmlWriter(std::string* s) : str_(s) {}

  void Open(const char* tag) {
    buf_ += '<';
    buf_ += tag;
    buf_ += '>';
    MaybeFlush();
  }
  void Close(const char* tag) {
    buf_ += "</";
    buf_ += tag;
    buf_ += ">\n";
    MaybeFlush();
  }
  void CloseInline(const char* tag) {
    buf_ += "</";
    buf_ += tag;
    buf_ += '>';
    MaybeFlush();
  }
  void Text(const std::string& s) {
    buf_ += XmlEscape(s);
    MaybeFlush();
  }
  void Leaf(const char* tag, const std::string& text) {
    Open(tag);
    Text(text);
    CloseInline(tag);
  }

  std::size_t bytes() const { return bytes_ + buf_.size(); }

  void Flush() {
    bytes_ += buf_.size();
    if (file_ != nullptr) {
      std::fwrite(buf_.data(), 1, buf_.size(), file_);
    } else {
      *str_ += buf_;
    }
    buf_.clear();
  }

 private:
  static constexpr std::size_t kFlushAt = 1 << 16;
  void MaybeFlush() {
    if (buf_.size() >= kFlushAt) Flush();
  }
  std::FILE* file_ = nullptr;
  std::string* str_ = nullptr;
  std::string buf_;
  std::size_t bytes_ = 0;
};

std::string Word(Rng* rng) {
  static const char* kWords[] = {
      "auction", "gold",   "market", "system", "stream", "forest", "query",
      "august",  "winter", "basic",  "silver", "mighty", "token",  "branch",
      "august",  "orange", "little", "stone",  "river",  "window",
  };
  return kWords[rng->Below(sizeof(kWords) / sizeof(kWords[0]))];
}

std::string Sentence(Rng* rng, int words) {
  std::string s;
  for (int i = 0; i < words; ++i) {
    if (i > 0) s += ' ';
    s += Word(rng);
  }
  return s;
}

// --------------------------------------------------------------------------
// XMark-like auction site (depth ~13)
// --------------------------------------------------------------------------

class XmarkGen {
 public:
  XmarkGen(XmlWriter* w, Rng* rng) : w_(*w), rng_(*rng) {}

  void Generate(std::size_t target_bytes) {
    w_.Open("site");
    // Interleave sections so every size contains all query targets. The
    // shares roughly follow XMark's entity mix.
    w_.Open("regions");
    const char* kRegions[] = {"africa",  "asia",     "australia",
                              "europe",  "namerica", "samerica"};
    std::size_t region_budget = target_bytes / 5;
    for (const char* region : kRegions) {
      w_.Open(region);
      std::size_t stop = w_.bytes() + region_budget / 6;
      while (w_.bytes() < stop) Item();
      w_.Close(region);
    }
    w_.Close("regions");

    w_.Open("people");
    std::size_t people_stop = w_.bytes() + target_bytes / 4;
    while (w_.bytes() < people_stop) Person();
    w_.Close("people");

    w_.Open("open_auctions");
    std::size_t open_stop = w_.bytes() + target_bytes / 4;
    while (w_.bytes() < open_stop) OpenAuction();
    w_.Close("open_auctions");

    w_.Open("closed_auctions");
    while (w_.bytes() < target_bytes) ClosedAuction();
    w_.Close("closed_auctions");

    w_.Close("site");
    w_.Flush();
  }

 private:
  void Item() {
    w_.Open("item");
    w_.Leaf("item_id", "item" + std::to_string(item_id_++));
    w_.Leaf("location", Word(&rng_));
    w_.Leaf("quantity", std::to_string(rng_.Below(5) + 1));
    w_.Leaf("name", Sentence(&rng_, 2));
    w_.Leaf("payment", "Creditcard");
    w_.Open("description");
    w_.Open("text");
    w_.Text(Sentence(&rng_, 12));
    w_.CloseInline("text");
    w_.CloseInline("description");
    w_.Leaf("shipping", "Will ship internationally");
    w_.Close("item");
  }

  void Person() {
    w_.Open("person");
    // ~1 in 50 persons is person0, so Q1 has hits at every size.
    std::uint64_t id = rng_.Chance(1, 50) ? 0 : ++person_id_;
    w_.Leaf("person_id", "person" + std::to_string(id));
    w_.Leaf("name", Sentence(&rng_, 2));
    w_.Leaf("emailaddress", "mailto:" + Word(&rng_) + "@example.com");
    if (rng_.Chance(3, 5)) {
      // 60% have a homepage; Q17 selects the other 40%.
      w_.Leaf("homepage", "http://www." + Word(&rng_) + ".example.com");
    }
    if (rng_.Chance(1, 2)) w_.Leaf("creditcard", "9998 2331");
    w_.Close("person");
  }

  void OpenAuction() {
    w_.Open("open_auction");
    w_.Leaf("auction_id", "open_auction" + std::to_string(open_id_++));
    w_.Leaf("initial", std::to_string(rng_.Below(200)) + ".00");
    w_.Leaf("reserve", std::to_string(rng_.Below(400)) + ".00");
    int bidders = static_cast<int>(rng_.Below(5));
    for (int i = 0; i < bidders; ++i) {
      w_.Open("bidder");
      w_.Open("personref");
      // personXX/personYY occasionally adjacent, so Q4 (on engines that
      // support following-sibling) has hits.
      std::string ref;
      if (rng_.Chance(1, 20)) {
        ref = (i % 2 == 0) ? "personXX" : "personYY";
      } else {
        ref = "person" + std::to_string(rng_.Below(1000));
      }
      w_.Leaf("personref_person", ref);
      w_.CloseInline("personref");
      w_.Leaf("date", "01/15/2001");
      w_.Leaf("increase", std::to_string(rng_.Below(50) + 1) + ".50");
      w_.Close("bidder");
    }
    w_.Leaf("current", std::to_string(rng_.Below(500)) + ".00");
    w_.Open("type");
    w_.Text("Regular");
    w_.CloseInline("type");
    w_.Close("open_auction");
  }

  void ClosedAuction() {
    w_.Open("closed_auction");
    w_.Open("seller");
    w_.Leaf("seller_person", "person" + std::to_string(rng_.Below(1000)));
    w_.CloseInline("seller");
    w_.Open("buyer");
    w_.Leaf("buyer_person", "person" + std::to_string(rng_.Below(1000)));
    w_.CloseInline("buyer");
    w_.Leaf("price", std::to_string(rng_.Below(500)) + ".00");
    w_.Leaf("date", "02/18/2001");
    if (rng_.Chance(1, 2)) {
      // The deep Q16 chain: annotation/description/parlist/listitem/parlist/
      // listitem/text/emph/keyword/text() — depth 13 from the root.
      w_.Open("annotation");
      w_.Open("description");
      w_.Open("parlist");
      w_.Open("listitem");
      w_.Open("parlist");
      w_.Open("listitem");
      w_.Open("text");
      w_.Open("emph");
      w_.Open("keyword");
      if (rng_.Chance(2, 3)) w_.Text(Word(&rng_));
      w_.CloseInline("keyword");
      w_.CloseInline("emph");
      w_.CloseInline("text");
      w_.CloseInline("listitem");
      w_.CloseInline("parlist");
      w_.CloseInline("listitem");
      w_.CloseInline("parlist");
      w_.CloseInline("description");
      w_.CloseInline("annotation");
    }
    w_.Close("closed_auction");
  }

  XmlWriter& w_;
  Rng& rng_;
  std::uint64_t item_id_ = 0;
  std::uint64_t person_id_ = 0;
  std::uint64_t open_id_ = 0;
};

// --------------------------------------------------------------------------
// TreeBank-like deep parse trees (depth ~37)
// --------------------------------------------------------------------------

class TreebankGen {
 public:
  TreebankGen(XmlWriter* w, Rng* rng) : w_(*w), rng_(*rng) {}

  void Generate(std::size_t target_bytes) {
    w_.Open("treebank");
    while (w_.bytes() < target_bytes) {
      w_.Open("sentence");
      // Force a deep spine (the paper: depth 37 at 86 MB) with bushy
      // branches hanging off it.
      Node(1, 34 + static_cast<int>(rng_.Below(3)));
      w_.Close("sentence");
    }
    w_.Close("treebank");
    w_.Flush();
  }

 private:
  const char* Tag() {
    static const char* kTags[] = {"S",   "NP", "VP",  "PP",  "DET",
                                  "ADJ", "N",  "V",   "PRP", "CONJ"};
    return kTags[rng_.Below(10)];
  }

  void Node(int depth, int spine_left) {
    const char* tag = Tag();
    w_.Open(tag);
    if (spine_left > 0) {
      // One child continues the deep spine; a few shallow siblings.
      int shallow = static_cast<int>(rng_.Below(3));
      for (int i = 0; i < shallow; ++i) Node(depth + 1, 0);
      Node(depth + 1, spine_left - 1);
    } else if (depth < 6 && rng_.Chance(1, 2)) {
      int kids = 1 + static_cast<int>(rng_.Below(3));
      for (int i = 0; i < kids; ++i) Node(depth + 1, 0);
    } else {
      w_.Text(Word(&rng_));
    }
    w_.CloseInline(tag);
  }

  XmlWriter& w_;
  Rng& rng_;
};

// --------------------------------------------------------------------------
// Medline-like bibliographic records (depth ~8)
// --------------------------------------------------------------------------

class MedlineGen {
 public:
  MedlineGen(XmlWriter* w, Rng* rng) : w_(*w), rng_(*rng) {}

  void Generate(std::size_t target_bytes) {
    w_.Open("MedlineCitationSet");
    std::uint64_t pmid = 10000000;
    while (w_.bytes() < target_bytes) {
      w_.Open("MedlineCitation");
      w_.Leaf("PMID", std::to_string(pmid++));
      w_.Open("Article");
      w_.Open("Journal");
      w_.Open("JournalIssue");
      w_.Leaf("Volume", std::to_string(rng_.Below(80) + 1));
      w_.Leaf("Issue", std::to_string(rng_.Below(12) + 1));
      w_.Leaf("Year", std::to_string(1990 + rng_.Below(20)));
      w_.CloseInline("JournalIssue");
      w_.Leaf("Title", Sentence(&rng_, 4));
      w_.CloseInline("Journal");
      w_.Leaf("ArticleTitle", Sentence(&rng_, 9));
      w_.Open("Abstract");
      w_.Leaf("AbstractText", Sentence(&rng_, 40));
      w_.CloseInline("Abstract");
      w_.Open("AuthorList");
      int authors = 1 + static_cast<int>(rng_.Below(5));
      for (int i = 0; i < authors; ++i) {
        w_.Open("Author");
        w_.Leaf("LastName", Word(&rng_));
        w_.Leaf("ForeName", Word(&rng_));
        w_.CloseInline("Author");
      }
      w_.CloseInline("AuthorList");
      w_.CloseInline("Article");
      w_.Open("MeshHeadingList");
      int mesh = static_cast<int>(rng_.Below(6));
      for (int i = 0; i < mesh; ++i) {
        w_.Open("MeshHeading");
        w_.Leaf("DescriptorName", Word(&rng_));
        w_.CloseInline("MeshHeading");
      }
      w_.CloseInline("MeshHeadingList");
      w_.Close("MedlineCitation");
    }
    w_.Close("MedlineCitationSet");
    w_.Flush();
  }

 private:
  XmlWriter& w_;
  Rng& rng_;
};

// --------------------------------------------------------------------------
// Protein-like sequence records (depth ~8)
// --------------------------------------------------------------------------

class ProteinGen {
 public:
  ProteinGen(XmlWriter* w, Rng* rng) : w_(*w), rng_(*rng) {}

  void Generate(std::size_t target_bytes) {
    w_.Open("ProteinDatabase");
    std::uint64_t uid = 100000;
    while (w_.bytes() < target_bytes) {
      w_.Open("ProteinEntry");
      w_.Open("header");
      w_.Leaf("uid", "PIR" + std::to_string(uid++));
      w_.Leaf("accession", "A" + std::to_string(rng_.Below(99999)));
      w_.CloseInline("header");
      w_.Open("protein");
      w_.Leaf("name", Sentence(&rng_, 3));
      w_.CloseInline("protein");
      w_.Open("organism");
      w_.Leaf("source", Word(&rng_));
      w_.Leaf("common", Word(&rng_));
      w_.CloseInline("organism");
      w_.Open("reference");
      w_.Open("refinfo");
      w_.Open("authors");
      int authors = 1 + static_cast<int>(rng_.Below(4));
      for (int i = 0; i < authors; ++i) w_.Leaf("author", Word(&rng_));
      w_.CloseInline("authors");
      w_.Leaf("title", Sentence(&rng_, 7));
      w_.CloseInline("refinfo");
      w_.CloseInline("reference");
      w_.Open("summary");
      w_.Leaf("length", std::to_string(50 + rng_.Below(900)));
      w_.Leaf("type", "complete");
      w_.CloseInline("summary");
      // Sequence data: the bulk of the Protein DB's bytes.
      std::string seq;
      int n = 60 + static_cast<int>(rng_.Below(400));
      static const char kAmino[] = "ACDEFGHIKLMNPQRSTVWY";
      for (int i = 0; i < n; ++i) seq += kAmino[rng_.Below(20)];
      w_.Leaf("sequence", seq);
      w_.Close("ProteinEntry");
    }
    w_.Close("ProteinDatabase");
    w_.Flush();
  }

 private:
  XmlWriter& w_;
  Rng& rng_;
};

void Dispatch(DatasetKind kind, std::size_t target_bytes, std::uint64_t seed,
              XmlWriter* w) {
  Rng rng(seed ^ (static_cast<std::uint64_t>(kind) << 32) ^ target_bytes);
  switch (kind) {
    case DatasetKind::kXmark:
      XmarkGen(w, &rng).Generate(target_bytes);
      break;
    case DatasetKind::kTreebank:
      TreebankGen(w, &rng).Generate(target_bytes);
      break;
    case DatasetKind::kMedline:
      MedlineGen(w, &rng).Generate(target_bytes);
      break;
    case DatasetKind::kProtein:
      ProteinGen(w, &rng).Generate(target_bytes);
      break;
  }
}

}  // namespace

const char* DatasetName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kXmark: return "xmark";
    case DatasetKind::kTreebank: return "treebank";
    case DatasetKind::kMedline: return "medline";
    case DatasetKind::kProtein: return "protein";
  }
  return "unknown";
}

Status GenerateDataset(DatasetKind kind, std::size_t target_bytes,
                       std::uint64_t seed, std::FILE* out) {
  XmlWriter w(out);
  Dispatch(kind, target_bytes, seed, &w);
  return Status::OK();
}

Result<std::string> GenerateDatasetString(DatasetKind kind,
                                          std::size_t target_bytes,
                                          std::uint64_t seed) {
  std::string s;
  XmlWriter w(&s);
  Dispatch(kind, target_bytes, seed, &w);
  return s;
}

Result<DatasetStats> ScanDatasetFile(const std::string& path) {
  XQMFT_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> src,
                         MmapSource::Open(path));
  SaxParser parser(src.get());
  DatasetStats stats;
  std::size_t depth = 0;
  XmlEvent ev;
  while (true) {
    XQMFT_RETURN_NOT_OK(parser.Next(&ev));
    switch (ev.type) {
      case XmlEventType::kStartElement:
        ++stats.elements;
        ++depth;
        if (depth > stats.depth) stats.depth = depth;
        break;
      case XmlEventType::kEndElement:
        --depth;
        break;
      case XmlEventType::kText:
        ++stats.texts;
        // Text nodes are nodes of the tree; they count toward depth.
        if (depth + 1 > stats.depth) stats.depth = depth + 1;
        break;
      case XmlEventType::kEndOfDocument:
        stats.bytes = parser.bytes_consumed();
        return stats;
    }
  }
}

Result<std::string> EnsureDataset(DatasetKind kind, std::size_t target_bytes,
                                  std::uint64_t seed) {
  const char* env = std::getenv("XQMFT_DATA_DIR");
  std::string dir = env != nullptr ? env : "/tmp/xqmft_data";
  ::mkdir(dir.c_str(), 0755);
  std::string path = StrFormat("%s/%s_%zu_%llu.xml", dir.c_str(),
                               DatasetName(kind), target_bytes,
                               static_cast<unsigned long long>(seed));
  struct ::stat st;
  if (::stat(path.c_str(), &st) == 0 && st.st_size > 0) {
    return path;
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot create dataset file: " + path);
  }
  Status gen = GenerateDataset(kind, target_bytes, seed, f);
  std::fclose(f);
  if (!gen.ok()) {
    std::remove(path.c_str());
    return gen;
  }
  return path;
}

}  // namespace xqmft
