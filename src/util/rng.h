// Small deterministic PRNG (xorshift128+) for data generators and property
// tests. Determinism across platforms matters more than statistical quality
// here: the same seed must generate byte-identical benchmark documents.
#ifndef XQMFT_UTIL_RNG_H_
#define XQMFT_UTIL_RNG_H_

#include <cstdint>

namespace xqmft {

/// \brief xorshift128+ generator with convenience helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding so that nearby seeds give unrelated streams.
    s0_ = SplitMix(&seed);
    s1_ = SplitMix(&seed);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  std::uint64_t Next() {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  std::uint64_t Below(std::uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t Range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(Below(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// True with probability num/den.
  bool Chance(std::uint64_t num, std::uint64_t den) {
    return Below(den) < num;
  }

  double NextDouble() {  // in [0,1)
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  static std::uint64_t SplitMix(std::uint64_t* state) {
    std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t s0_, s1_;
};

}  // namespace xqmft

#endif  // XQMFT_UTIL_RNG_H_
