// Cooperative cancellation for streaming runs.
//
// A CancelToken carries two independent abort signals — an explicit cancel
// flag (client disconnect, operator abort) and an optional monotonic-clock
// deadline — behind one cheap Check() the engines poll between input events.
// Cancellation is cooperative: nothing is interrupted mid-event; the engine
// observes the token at its next check boundary, records the resulting
// status as its sticky run error, and stops without emitting further output
// (see the cancelled-run contract on stream/engine.h).
//
// Thread-safety: Cancel() / SetDeadline*() may race with Check() from
// another thread (the serving layer cancels from its event loop while a
// worker streams). All state is atomic; the token itself must outlive every
// run holding a pointer to it.
#ifndef XQMFT_UTIL_CANCEL_H_
#define XQMFT_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/status.h"

namespace xqmft {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation: every Check() from now on returns kCancelled.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Arms the deadline at an absolute steady_clock instant. Later of two
  /// arms wins (the token is per-request; re-arming is a caller bug, but a
  /// harmless one).
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
    has_deadline_.store(true, std::memory_order_release);
  }

  /// Arms the deadline `ms` milliseconds after `base` (defaulting to now) —
  /// serving layers pass the request's admission instant as `base` so queue
  /// wait counts against the budget.
  void SetDeadlineAfterMs(std::uint64_t ms,
                          std::chrono::steady_clock::time_point base =
                              std::chrono::steady_clock::now()) {
    SetDeadline(base + std::chrono::milliseconds(ms));
  }

  bool has_deadline() const {
    return has_deadline_.load(std::memory_order_acquire);
  }

  /// Milliseconds of deadline budget left: the distance to the armed
  /// deadline (0 once it passed, and 0 after Cancel() — a cancelled request
  /// has no budget), or kNoDeadline when no deadline is armed. Schedulers
  /// use this to decide whether a request can afford to wait (the
  /// batching gather window's bypass rule).
  static constexpr std::uint64_t kNoDeadline = ~std::uint64_t{0};
  std::uint64_t RemainingMs() const {
    if (cancelled_.load(std::memory_order_relaxed)) return 0;
    if (!has_deadline_.load(std::memory_order_acquire)) return kNoDeadline;
    const auto now =
        std::chrono::steady_clock::now().time_since_epoch().count();
    const auto deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (now >= deadline) return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::duration(deadline - now))
            .count());
  }

  /// OK while the run may continue; kCancelled after Cancel(), or
  /// kDeadlineExceeded once the armed deadline passes. Reads the clock only
  /// when a deadline is armed.
  Status Check() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("request cancelled");
    }
    if (has_deadline_.load(std::memory_order_acquire)) {
      const auto now =
          std::chrono::steady_clock::now().time_since_epoch().count();
      if (now >= deadline_ns_.load(std::memory_order_relaxed)) {
        return Status::DeadlineExceeded("deadline exceeded");
      }
    }
    return Status::OK();
  }

  /// Disarms both signals for token reuse across requests (the stdin serve
  /// loop keeps one token; the net server allocates per request). Must not
  /// race with a run still holding the token.
  void Reset() {
    cancelled_.store(false, std::memory_order_relaxed);
    has_deadline_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_deadline_{false};
  std::atomic<std::chrono::steady_clock::rep> deadline_ns_{0};
};

}  // namespace xqmft

#endif  // XQMFT_UTIL_CANCEL_H_
