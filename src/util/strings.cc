#include "util/strings.h"

#include <cstdarg>
#include <cstdio>

namespace xqmft {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r')) --e;
  return s.substr(b, e - b);
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += c;
    }
  }
  return out;
}

std::size_t XmlEscapedSize(std::string_view s) {
  std::size_t n = s.size();
  for (char c : s) {
    switch (c) {
      case '&': n += 4; break;  // &amp;
      case '<': n += 3; break;  // &lt;
      case '>': n += 3; break;  // &gt;
      default: break;
    }
  }
  return n;
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

std::string HumanBytes(std::size_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 3) {
    v /= 1024.0;
    ++u;
  }
  return StrFormat("%.1f %s", v, units[u]);
}

}  // namespace xqmft
