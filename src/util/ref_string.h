// Refcounted immutable character buffer for streamed text content.
//
// Text enters the engine once (copied out of the parser's transient event
// view into a cell) but can be referenced many times: a copy query
// instantiates one output thunk per emission, and Cat rewrites move text
// between thunks. With std::string fields each of those was a heap copy;
// a RefString makes them a refcount bump — the content is copied exactly
// once per input text node, however often the transducer outputs it.
//
// Single-threaded by design, like the engine run that owns it (runs share
// nothing; see stream/engine.cc). The buffer self-charges an optional
// MemoryTracker for its payload, so shared text is accounted exactly once
// and exactly as long as any referent lives — cells and thunks charge only
// their own struct sizes.
#ifndef XQMFT_UTIL_REF_STRING_H_
#define XQMFT_UTIL_REF_STRING_H_

#include <cstdint>
#include <cstring>
#include <new>
#include <string_view>
#include <utility>

#include "util/memory_tracker.h"
#include "util/status.h"

namespace xqmft {

class RefString {
 public:
  RefString() = default;

  /// Copies `s` into a fresh buffer; charges `tracker` (may be null) until
  /// the last RefString referencing the buffer is gone. A single text run
  /// must fit the 32-bit length field (the header stays 16 bytes for the
  /// common tiny strings); a >=4 GiB run aborts loudly rather than
  /// truncating silently.
  static RefString Copy(std::string_view s, MemoryTracker* tracker) {
    RefString out;
    if (s.empty()) return out;
    XQMFT_CHECK(s.size() < (std::uint64_t{1} << 32));
    void* mem = ::operator new(sizeof(Rep) + s.size());
    Rep* rep = new (mem) Rep{tracker, 1, static_cast<std::uint32_t>(s.size())};
    std::memcpy(rep + 1, s.data(), s.size());
    if (tracker != nullptr) tracker->Charge(sizeof(Rep) + s.size());
    out.rep_ = rep;
    return out;
  }

  RefString(const RefString& o) : rep_(o.rep_) {
    if (rep_ != nullptr) ++rep_->refs;
  }
  RefString(RefString&& o) noexcept : rep_(o.rep_) { o.rep_ = nullptr; }
  RefString& operator=(RefString o) noexcept {
    std::swap(rep_, o.rep_);
    return *this;
  }
  ~RefString() { Release(); }

  std::string_view view() const {
    return rep_ == nullptr
               ? std::string_view()
               : std::string_view(reinterpret_cast<const char*>(rep_ + 1),
                                  rep_->len);
  }
  bool empty() const { return rep_ == nullptr; }
  void reset() {
    Release();
    rep_ = nullptr;
  }

 private:
  struct Rep {
    MemoryTracker* tracker;
    std::uint32_t refs;
    std::uint32_t len;
    // len content bytes follow.
  };

  void Release() {
    if (rep_ != nullptr && --rep_->refs == 0) {
      if (rep_->tracker != nullptr) {
        rep_->tracker->Release(sizeof(Rep) + rep_->len);
      }
      rep_->~Rep();
      ::operator delete(rep_);
    }
  }

  Rep* rep_ = nullptr;
};

}  // namespace xqmft

#endif  // XQMFT_UTIL_REF_STRING_H_
