// Small string helpers shared across parsers and printers.
#ifndef XQMFT_UTIL_STRINGS_H_
#define XQMFT_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace xqmft {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` starts with `prefix`.
inline bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

/// XML-escapes text content: & < > (quotes left alone outside attributes).
std::string XmlEscape(std::string_view s);

/// Size of XmlEscape(s) without building the string (byte accounting in
/// sinks that never materialize output).
std::size_t XmlEscapedSize(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable byte count ("12.0 MB").
std::string HumanBytes(std::size_t bytes);

}  // namespace xqmft

#endif  // XQMFT_UTIL_STRINGS_H_
