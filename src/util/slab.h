// Slab allocation with free-list reuse for the streaming engine's nodes.
//
// The engine allocates and frees millions of fixed-size Cell/Expr nodes per
// run; with the general-purpose heap that is a malloc/free pair per node. A
// Slab hands out storage from geometrically growing blocks and recycles
// destroyed nodes through an intrusive free list, so in steady state (the
// engine's working set oscillating around a constant size for streamable
// queries) node turnover touches no allocator at all.
//
// The slab owns raw storage only: New() placement-constructs, Recycle()
// destroys in place and pushes the storage onto the free list. All objects
// must be recycled (or simply dropped — the slab frees its blocks wholesale
// on destruction, which is safe only once every object's destructor has run).
// Single-threaded, like the engine it serves.
#ifndef XQMFT_UTIL_SLAB_H_
#define XQMFT_UTIL_SLAB_H_

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace xqmft {

template <typename T>
class Slab {
 public:
  Slab() = default;
  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;

  /// Constructs a T in recycled or fresh storage.
  template <typename... Args>
  T* New(Args&&... args) {
    void* p;
    if (free_ != nullptr) {
      Node* n = free_;
      free_ = n->next;
      p = n;
    } else {
      p = FreshNode();
    }
    return new (p) T(std::forward<Args>(args)...);
  }

  /// Destroys `t` and makes its storage available for reuse.
  void Recycle(T* t) {
    t->~T();
    Node* n = reinterpret_cast<Node*>(t);
    n->next = free_;
    free_ = n;
  }

  /// Total nodes ever carved out of blocks (allocation-rate diagnostics:
  /// steady-state reuse keeps this flat while New() counts keep climbing).
  std::size_t nodes_allocated() const { return nodes_allocated_; }

 private:
  union Node {
    Node* next;
    alignas(T) unsigned char storage[sizeof(T)];
  };

  Node* FreshNode() {
    if (used_in_block_ == block_cap_) {
      block_cap_ = block_cap_ == 0 ? kFirstBlock
                                   : (block_cap_ < kMaxBlock ? block_cap_ * 2
                                                             : block_cap_);
      blocks_.push_back(std::make_unique<Node[]>(block_cap_));
      used_in_block_ = 0;
    }
    ++nodes_allocated_;
    return &blocks_.back()[used_in_block_++];
  }

  static constexpr std::size_t kFirstBlock = 256;
  static constexpr std::size_t kMaxBlock = 1 << 16;

  std::vector<std::unique_ptr<Node[]>> blocks_;
  std::size_t block_cap_ = 0;      // capacity of blocks_.back()
  std::size_t used_in_block_ = 0;  // nodes carved from blocks_.back()
  std::size_t nodes_allocated_ = 0;
  Node* free_ = nullptr;
};

}  // namespace xqmft

#endif  // XQMFT_UTIL_SLAB_H_
