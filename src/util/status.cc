#include "util/status.h"

namespace xqmft {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotSupported: return "NotSupported";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kUnavailable: return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace xqmft
