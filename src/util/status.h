// Status / Result error-handling primitives, in the style used by database
// engines (Apache Arrow's arrow::Status / RocksDB's rocksdb::Status).
//
// Library code never throws: fallible operations return Status or Result<T>.
#ifndef XQMFT_UTIL_STATUS_H_
#define XQMFT_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace xqmft {

/// Broad machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed (bad query, bad XML)
  kNotSupported,      ///< feature outside the engine's fragment (e.g. GCX + following-sibling)
  kOutOfRange,        ///< index/position out of bounds
  kResourceExhausted, ///< fuel/memory/step budget exceeded
  kInternal,          ///< invariant violation inside the library
  kCancelled,         ///< run aborted by a CancelToken (caller's request)
  kDeadlineExceeded,  ///< run aborted by a CancelToken deadline
  kUnavailable,       ///< serving layer refused admission (overload, drain)
};

/// Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// \brief Result of a fallible operation: OK, or a code plus a message.
///
/// Cheap to move (a code and a std::string); comparable to Arrow's Status
/// without the shared-payload machinery, which this library does not need.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status. Mirrors arrow::Result.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT implicit
  Result(Status status) : v_(std::move(status)) {}   // NOLINT implicit

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status ok_status = Status::OK();
    if (ok()) return ok_status;
    return std::get<Status>(v_);
  }

  /// Precondition: ok().
  T& value() & { return std::get<T>(v_); }
  const T& value() const& { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }

  /// Moves the value out, aborting the process if !ok(). Test/tool helper.
  T ValueOrDie() && {
    if (!ok()) {
      std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                   status().ToString().c_str());
      std::abort();
    }
    return std::get<T>(std::move(v_));
  }

 private:
  std::variant<T, Status> v_;
};

// Propagate a non-OK Status from an expression.
#define XQMFT_RETURN_NOT_OK(expr)                  \
  do {                                             \
    ::xqmft::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (0)

#define XQMFT_CONCAT_IMPL(a, b) a##b
#define XQMFT_CONCAT(a, b) XQMFT_CONCAT_IMPL(a, b)

// Assign the value of a Result<T> expression to `lhs`, or propagate its error.
#define XQMFT_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  auto XQMFT_CONCAT(_res_, __LINE__) = (rexpr);                       \
  if (!XQMFT_CONCAT(_res_, __LINE__).ok())                            \
    return XQMFT_CONCAT(_res_, __LINE__).status();                    \
  lhs = std::move(XQMFT_CONCAT(_res_, __LINE__)).value()

// Internal invariant check: aborts with a message. Only for programmer errors
// (never for bad user input, which must surface as a Status).
#define XQMFT_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "XQMFT_CHECK failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, #cond);                         \
      std::abort();                                                    \
    }                                                                  \
  } while (0)

}  // namespace xqmft

#endif  // XQMFT_UTIL_STATUS_H_
