// Live-byte accounting for the streaming engines.
//
// The paper's Figure 4 reports maximum memory use per engine. Process RSS is
// too coarse at the scaled-down document sizes used in this reproduction, so
// each engine charges its dynamically sized structures (input cells, thunks,
// buffered subtrees) to a MemoryTracker and the benches report the peak.
#ifndef XQMFT_UTIL_MEMORY_TRACKER_H_
#define XQMFT_UTIL_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>

namespace xqmft {

/// \brief Tracks current and peak tracked bytes. Not thread-safe (the engines
/// are single-threaded).
class MemoryTracker {
 public:
  void Charge(std::size_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }
  void Release(std::size_t bytes) {
    current_ -= bytes < current_ ? bytes : current_;
  }

  std::size_t current_bytes() const { return current_; }
  std::size_t peak_bytes() const { return peak_; }

  void ResetPeak() { peak_ = current_; }
  void Reset() { current_ = 0; peak_ = 0; }

 private:
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace xqmft

#endif  // XQMFT_UTIL_MEMORY_TRACKER_H_
