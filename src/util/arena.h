// Bump-pointer arena allocator.
//
// DOM forests built for the reference evaluators are allocated in an Arena:
// the nodes form an immutable first-child/next-sibling graph whose lifetime is
// exactly the lifetime of the document, so individual deallocation is wasted
// work. Destruction frees all blocks at once.
#ifndef XQMFT_UTIL_ARENA_H_
#define XQMFT_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace xqmft {

/// \brief Monotonic allocator; Allocate() is O(1), all memory is released in
/// the destructor. Objects allocated here must be trivially destructible or
/// have their destructors managed by the caller (the library only places
/// trivially-destructible node structs plus strings owned elsewhere).
class Arena {
 public:
  explicit Arena(std::size_t block_bytes = 64 * 1024)
      : block_bytes_(block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw aligned allocation.
  void* Allocate(std::size_t n, std::size_t align = alignof(std::max_align_t)) {
    std::size_t p = (pos_ + align - 1) & ~(align - 1);
    if (p + n > cap_) {
      NewBlock(n + align);
      p = (pos_ + align - 1) & ~(align - 1);
    }
    void* out = cur_ + p;
    pos_ = p + n;
    bytes_used_ = total_full_ + pos_;
    return out;
  }

  /// Placement-construct a T in the arena. T must be trivially destructible.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::New requires trivially destructible types");
    return new (Allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  /// Copies a character range into the arena, returning a stable pointer.
  const char* CopyString(const char* s, std::size_t n) {
    char* out = static_cast<char*>(Allocate(n + 1, 1));
    std::memcpy(out, s, n);
    out[n] = '\0';
    return out;
  }

  /// Bytes handed out so far (approximate live footprint of the arena).
  std::size_t bytes_used() const { return bytes_used_; }

 private:
  void NewBlock(std::size_t at_least) {
    std::size_t sz = at_least > block_bytes_ ? at_least : block_bytes_;
    blocks_.push_back(std::make_unique<char[]>(sz));
    total_full_ += pos_;
    cur_ = blocks_.back().get();
    cap_ = sz;
    pos_ = 0;
  }

  std::size_t block_bytes_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  char* cur_ = nullptr;
  std::size_t cap_ = 0;
  std::size_t pos_ = 0;
  std::size_t total_full_ = 0;
  std::size_t bytes_used_ = 0;
};

}  // namespace xqmft

#endif  // XQMFT_UTIL_ARENA_H_
