// Intrusive reference-counted smart pointer.
//
// The streaming engine allocates millions of small cells whose lifetime is
// governed by sharing inside a thunk graph; an intrusive count avoids the
// separate control block (and the atomics) of std::shared_ptr. Single-threaded
// by design: the streaming evaluator is a sequential pushdown machine.
#ifndef XQMFT_UTIL_INTRUSIVE_PTR_H_
#define XQMFT_UTIL_INTRUSIVE_PTR_H_

#include <cstdint>
#include <utility>

namespace xqmft {

/// \brief Base class providing a non-atomic reference count.
///
/// Derive with CRTP-free plain inheritance; destruction happens through the
/// most-derived virtual destructor.
class RefCounted {
 public:
  RefCounted() : refs_(0) {}
  virtual ~RefCounted() = default;

  RefCounted(const RefCounted&) = delete;
  RefCounted& operator=(const RefCounted&) = delete;

  void Ref() const { ++refs_; }
  void Unref() const {
    if (--refs_ == 0) const_cast<RefCounted*>(this)->Dispose();
  }
  std::uint32_t ref_count() const { return refs_; }

 protected:
  /// Called when the count reaches zero. Slab-allocated subclasses override
  /// this to return their storage to a free list instead of the heap.
  virtual void Dispose() { delete this; }

 private:
  mutable std::uint32_t refs_;
};

/// \brief Owning pointer to a RefCounted object.
template <typename T>
class IntrusivePtr {
 public:
  IntrusivePtr() : p_(nullptr) {}
  IntrusivePtr(std::nullptr_t) : p_(nullptr) {}  // NOLINT implicit
  explicit IntrusivePtr(T* p) : p_(p) {
    if (p_) p_->Ref();
  }
  IntrusivePtr(const IntrusivePtr& o) : p_(o.p_) {
    if (p_) p_->Ref();
  }
  IntrusivePtr(IntrusivePtr&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }

  template <typename U>
  IntrusivePtr(const IntrusivePtr<U>& o) : p_(o.get()) {  // NOLINT implicit
    if (p_) p_->Ref();
  }

  IntrusivePtr& operator=(const IntrusivePtr& o) {
    if (this != &o) {
      T* old = p_;
      p_ = o.p_;
      if (p_) p_->Ref();
      if (old) old->Unref();
    }
    return *this;
  }
  IntrusivePtr& operator=(IntrusivePtr&& o) noexcept {
    if (this != &o) {
      if (p_) p_->Unref();
      p_ = o.p_;
      o.p_ = nullptr;
    }
    return *this;
  }
  ~IntrusivePtr() {
    if (p_) p_->Unref();
  }

  T* get() const { return p_; }
  T* operator->() const { return p_; }
  T& operator*() const { return *p_; }
  explicit operator bool() const { return p_ != nullptr; }

  bool operator==(const IntrusivePtr& o) const { return p_ == o.p_; }
  bool operator!=(const IntrusivePtr& o) const { return p_ != o.p_; }

  void reset() {
    if (p_) p_->Unref();
    p_ = nullptr;
  }

 private:
  T* p_;
};

/// Allocates a T with `new` and wraps it.
template <typename T, typename... Args>
IntrusivePtr<T> MakeIntrusive(Args&&... args) {
  return IntrusivePtr<T>(new T(std::forward<Args>(args)...));
}

}  // namespace xqmft

#endif  // XQMFT_UTIL_INTRUSIVE_PTR_H_
