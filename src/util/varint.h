// Unsigned LEB128 varint coding, shared by every framed byte format in the
// tree (the pretok event cache and the parallel layer's EventBuffer): one
// codec, one set of bounds rules, instead of per-file copies that must be
// changed in lockstep.
#ifndef XQMFT_UTIL_VARINT_H_
#define XQMFT_UTIL_VARINT_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace xqmft {

/// Appends `v` to `*out` as an unsigned LEB128 varint (1-10 bytes).
inline void PutVarint(std::string* out, std::uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

/// Reads one varint at `*pos`, advancing it past the encoding. Returns
/// false (with `*pos` wherever the scan stopped) on truncation or an
/// encoding longer than 64 bits.
inline bool ReadVarint(std::string_view data, std::size_t* pos,
                       std::uint64_t* v) {
  std::uint64_t out = 0;
  int shift = 0;
  while (*pos < data.size() && shift < 64) {
    unsigned char b = static_cast<unsigned char>(data[(*pos)++]);
    out |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      *v = out;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace xqmft

#endif  // XQMFT_UTIL_VARINT_H_
