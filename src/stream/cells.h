// Incremental input representation for the streaming engine.
//
// The input forest is revealed one SAX event at a time as a graph of
// reference-counted cells in first-child/next-sibling form:
//
//   cell ::= Pending                      (nothing known yet)
//          | Eps                          (this position is the empty forest)
//          | Node(label, child, sibling)  (a node; child/sibling are cells)
//
// A Pending cell mutates in place exactly once (to Eps or Node) when its
// event arrives; thunks blocked on it observe the update. Reference counts
// release consumed prefixes of the stream: whatever the transducer still
// references is exactly the buffered part of the input, which is how the
// no-opt/opt memory difference of Figure 4 arises naturally.
#ifndef XQMFT_STREAM_CELLS_H_
#define XQMFT_STREAM_CELLS_H_

#include <string>
#include <vector>

#include "util/intrusive_ptr.h"
#include "util/memory_tracker.h"
#include "util/status.h"
#include "xml/events.h"
#include "xml/symbol.h"

namespace xqmft {

enum class CellState : unsigned char {
  kPending,
  kEps,
  kNode,
};

/// \brief One position of the incrementally revealed input forest.
class Cell : public RefCounted {
 public:
  explicit Cell(MemoryTracker* tracker) : tracker_(tracker) {
    tracker_->Charge(sizeof(Cell));
  }
  ~Cell() override {
    tracker_->Release(sizeof(Cell) + label_.capacity());
    // Unlink child/sibling chains iteratively: dropping the head of a long
    // fully-owned chain must not recurse once per node (documents are often
    // deeper than the stack is forgiving).
    std::vector<IntrusivePtr<Cell>> work;
    if (child_) work.push_back(std::move(child_));
    if (sibling_) work.push_back(std::move(sibling_));
    while (!work.empty()) {
      IntrusivePtr<Cell> c = std::move(work.back());
      work.pop_back();
      if (c->ref_count() == 1) {
        // We hold the last reference: steal the links so the node destructs
        // flat, and keep walking.
        if (c->child_) work.push_back(std::move(c->child_));
        if (c->sibling_) work.push_back(std::move(c->sibling_));
      }
    }
  }

  CellState state() const { return state_; }
  NodeKind kind() const { return kind_; }
  const std::string& label() const { return label_; }
  const IntrusivePtr<Cell>& child() const { return child_; }
  const IntrusivePtr<Cell>& sibling() const { return sibling_; }

  /// Pending -> Eps.
  void FillEps() {
    XQMFT_CHECK(state_ == CellState::kPending);
    state_ = CellState::kEps;
  }

  /// Pending -> Node.
  void FillNode(NodeKind kind, std::string label, IntrusivePtr<Cell> child,
                IntrusivePtr<Cell> sibling) {
    XQMFT_CHECK(state_ == CellState::kPending);
    state_ = CellState::kNode;
    kind_ = kind;
    label_ = std::move(label);
    tracker_->Charge(label_.capacity());
    child_ = std::move(child);
    sibling_ = std::move(sibling);
  }

 private:
  MemoryTracker* tracker_;
  CellState state_ = CellState::kPending;
  NodeKind kind_ = NodeKind::kElement;
  std::string label_;
  IntrusivePtr<Cell> child_;
  IntrusivePtr<Cell> sibling_;
};

/// \brief Builds the cell graph from SAX events. Holds references only to
/// the open rightmost spine (O(depth)).
class CellBuilder {
 public:
  explicit CellBuilder(MemoryTracker* tracker)
      : tracker_(tracker),
        root_(MakeIntrusive<Cell>(tracker)),
        tail_(root_),
        cells_created_(1) {}

  /// Hands over the cell for the whole input forest (initially Pending).
  /// The builder must not keep this reference: a Node cell retains its
  /// child and sibling cells, so holding the root would retain the entire
  /// stream and defeat incremental reclamation. May be called once.
  IntrusivePtr<Cell> TakeRoot() {
    XQMFT_CHECK(root_);
    return std::move(root_);
  }

  /// Feeds one event. kEndOfDocument closes the top-level chain.
  Status Feed(const XmlEvent& event) {
    switch (event.type) {
      case XmlEventType::kStartElement: {
        IntrusivePtr<Cell> child = MakeIntrusive<Cell>(tracker_);
        IntrusivePtr<Cell> sibling = MakeIntrusive<Cell>(tracker_);
        cells_created_ += 2;
        tail_->FillNode(NodeKind::kElement, event.name, child, sibling);
        resume_.push_back(sibling);
        tail_ = std::move(child);
        return Status::OK();
      }
      case XmlEventType::kText: {
        IntrusivePtr<Cell> child = MakeIntrusive<Cell>(tracker_);
        child->FillEps();
        IntrusivePtr<Cell> sibling = MakeIntrusive<Cell>(tracker_);
        cells_created_ += 2;
        tail_->FillNode(NodeKind::kText, event.text, std::move(child),
                        sibling);
        tail_ = std::move(sibling);
        return Status::OK();
      }
      case XmlEventType::kEndElement: {
        if (resume_.empty()) {
          return Status::InvalidArgument("unbalanced end element event");
        }
        tail_->FillEps();
        tail_ = std::move(resume_.back());
        resume_.pop_back();
        return Status::OK();
      }
      case XmlEventType::kEndOfDocument: {
        if (!resume_.empty()) {
          return Status::InvalidArgument(
              "end of document with unclosed elements");
        }
        if (tail_->state() == CellState::kPending) tail_->FillEps();
        done_ = true;
        return Status::OK();
      }
    }
    return Status::Internal("unknown event type");
  }

  bool done() const { return done_; }
  std::uint64_t cells_created() const { return cells_created_; }

 private:
  MemoryTracker* tracker_;
  IntrusivePtr<Cell> root_;
  IntrusivePtr<Cell> tail_;
  std::vector<IntrusivePtr<Cell>> resume_;
  std::uint64_t cells_created_ = 0;
  bool done_ = false;
};

}  // namespace xqmft

#endif  // XQMFT_STREAM_CELLS_H_
