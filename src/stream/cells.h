// Incremental input representation for the streaming engine.
//
// The input forest is revealed one SAX event at a time as a graph of
// reference-counted cells in first-child/next-sibling form:
//
//   cell ::= Pending                      (nothing known yet)
//          | Eps                          (this position is the empty forest)
//          | Node(label, child, sibling)  (a node; child/sibling are cells)
//
// A Pending cell mutates in place exactly once (to Eps or Node) when its
// event arrives; thunks blocked on it observe the update. Reference counts
// release consumed prefixes of the stream: whatever the transducer still
// references is exactly the buffered part of the input, which is how the
// no-opt/opt memory difference of Figure 4 arises naturally.
//
// An element cell carries only its interned SymbolId — the per-event name
// copy of the seed representation is gone. Text cells hold their content as
// a RefString (content is data, not alphabet): the bytes are copied out of
// the transient event view exactly once, and output thunks that emit the
// text share the buffer instead of re-copying it. Cells allocate from their
// arena's slab, so steady-state streaming recycles cell storage instead of
// hitting the heap per event.
#ifndef XQMFT_STREAM_CELLS_H_
#define XQMFT_STREAM_CELLS_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/intrusive_ptr.h"
#include "util/memory_tracker.h"
#include "util/ref_string.h"
#include "util/slab.h"
#include "util/status.h"
#include "xml/events.h"
#include "xml/symbol_table.h"

namespace xqmft {

enum class CellState : unsigned char {
  kPending,
  kEps,
  kNode,
};

class Cell;

/// \brief Allocation context shared by every cell of one engine run: the
/// byte accounting plus the slab the cells live in. One pointer per cell
/// instead of two — cell count is the engine's memory story. Cells must not
/// outlive their arena.
struct CellArena {
  explicit CellArena(MemoryTracker* t) : tracker(t) {}
  MemoryTracker* tracker;
  Slab<Cell> slab;
};

/// \brief One position of the incrementally revealed input forest.
class Cell : public RefCounted {
 public:
  explicit Cell(CellArena* arena) : arena_(arena) {
    arena_->tracker->Charge(sizeof(Cell));
  }
  ~Cell() override {
    arena_->tracker->Release(sizeof(Cell));
    // Unlink child/sibling chains iteratively: dropping the head of a long
    // fully-owned chain must not recurse once per node (documents are often
    // deeper than the stack is forgiving).
    std::vector<IntrusivePtr<Cell>> work;
    if (child_) work.push_back(std::move(child_));
    if (sibling_) work.push_back(std::move(sibling_));
    while (!work.empty()) {
      IntrusivePtr<Cell> c = std::move(work.back());
      work.pop_back();
      if (c->ref_count() == 1) {
        // We hold the last reference: steal the links so the node destructs
        // flat, and keep walking.
        if (c->child_) work.push_back(std::move(c->child_));
        if (c->sibling_) work.push_back(std::move(c->sibling_));
      }
    }
  }

  CellState state() const { return state_; }
  NodeKind kind() const { return kind_; }
  /// Interned name (element cells; kInvalidSymbol for text cells).
  SymbolId symbol() const { return symbol_; }
  /// Character content (text cells; empty for element cells).
  std::string_view text() const { return text_.view(); }
  /// The shared content buffer (thunks copy the reference, not the bytes).
  const RefString& text_ref() const { return text_; }
  const IntrusivePtr<Cell>& child() const { return child_; }
  const IntrusivePtr<Cell>& sibling() const { return sibling_; }

  /// Pending -> Eps.
  void FillEps() {
    XQMFT_CHECK(state_ == CellState::kPending);
    state_ = CellState::kEps;
  }

  /// Pending -> element Node.
  void FillElement(SymbolId symbol, IntrusivePtr<Cell> child,
                   IntrusivePtr<Cell> sibling) {
    XQMFT_CHECK(state_ == CellState::kPending);
    state_ = CellState::kNode;
    kind_ = NodeKind::kElement;
    symbol_ = symbol;
    child_ = std::move(child);
    sibling_ = std::move(sibling);
  }

  /// Pending -> text Node. The buffer self-charges the tracker.
  void FillText(RefString content, IntrusivePtr<Cell> child,
                IntrusivePtr<Cell> sibling) {
    XQMFT_CHECK(state_ == CellState::kPending);
    state_ = CellState::kNode;
    kind_ = NodeKind::kText;
    text_ = std::move(content);
    child_ = std::move(child);
    sibling_ = std::move(sibling);
  }

 protected:
  void Dispose() override { arena_->slab.Recycle(this); }

 private:
  CellArena* arena_;
  CellState state_ = CellState::kPending;
  NodeKind kind_ = NodeKind::kElement;
  SymbolId symbol_ = kInvalidSymbol;
  RefString text_;
  IntrusivePtr<Cell> child_;
  IntrusivePtr<Cell> sibling_;
};

/// \brief Builds the cell graph from SAX events. Holds references only to
/// the open rightmost spine (O(depth)).
class CellBuilder {
 public:
  /// `symbols` resolves names for events that arrive without an interned id
  /// (hand-built events in tests; parser events always carry one). The
  /// arena provides cell storage with free-list reuse and must outlive
  /// every cell built here.
  CellBuilder(CellArena* arena, SymbolTable* symbols)
      : arena_(arena), symbols_(symbols), root_(NewCell()), tail_(root_) {}

  /// Hands over the cell for the whole input forest (initially Pending).
  /// The builder must not keep this reference: a Node cell retains its
  /// child and sibling cells, so holding the root would retain the entire
  /// stream and defeat incremental reclamation. May be called once.
  IntrusivePtr<Cell> TakeRoot() {
    XQMFT_CHECK(root_);
    return std::move(root_);
  }

  /// When false, text cells are built without content: the engine sets this
  /// from RuleDispatch::captures_text() for transducers whose rules provably
  /// never read text, skipping the event-to-cell copy entirely.
  void set_capture_text(bool capture) { capture_text_ = capture; }

  /// Feeds one event. kEndOfDocument closes the top-level chain.
  Status Feed(const XmlEvent& event) {
    switch (event.type) {
      case XmlEventType::kStartElement: {
        SymbolId symbol =
            event.symbol != kInvalidSymbol
                ? event.symbol
                : symbols_->Intern(NodeKind::kElement, event.name);
        IntrusivePtr<Cell> child = NewCell();
        IntrusivePtr<Cell> sibling = NewCell();
        tail_->FillElement(symbol, child, sibling);
        resume_.push_back(sibling);
        tail_ = std::move(child);
        return Status::OK();
      }
      case XmlEventType::kText: {
        IntrusivePtr<Cell> child = NewCell();
        child->FillEps();
        IntrusivePtr<Cell> sibling = NewCell();
        // The one copy on the text path: the event's view dies at the next
        // parser pull, the cell may be consumed much later. Thunks that
        // output the text share this buffer.
        tail_->FillText(capture_text_
                            ? RefString::Copy(event.text, arena_->tracker)
                            : RefString(),
                        std::move(child), sibling);
        tail_ = std::move(sibling);
        return Status::OK();
      }
      case XmlEventType::kEndElement: {
        if (resume_.empty()) {
          return Status::InvalidArgument("unbalanced end element event");
        }
        tail_->FillEps();
        tail_ = std::move(resume_.back());
        resume_.pop_back();
        return Status::OK();
      }
      case XmlEventType::kEndOfDocument: {
        if (!resume_.empty()) {
          return Status::InvalidArgument(
              "end of document with unclosed elements");
        }
        if (tail_->state() == CellState::kPending) tail_->FillEps();
        done_ = true;
        return Status::OK();
      }
    }
    return Status::Internal("unknown event type");
  }

  bool done() const { return done_; }
  std::uint64_t cells_created() const { return cells_created_; }

 private:
  IntrusivePtr<Cell> NewCell() {
    ++cells_created_;
    return IntrusivePtr<Cell>(arena_->slab.New(arena_));
  }

  CellArena* arena_;
  SymbolTable* symbols_;
  // Before root_: NewCell() bumps the counter during root_'s initializer.
  std::uint64_t cells_created_ = 0;
  IntrusivePtr<Cell> root_;
  IntrusivePtr<Cell> tail_;
  std::vector<IntrusivePtr<Cell>> resume_;
  bool capture_text_ = true;
  bool done_ = false;
};

}  // namespace xqmft

#endif  // XQMFT_STREAM_CELLS_H_
