// Grammar-compressed output (Section 6, future work): "Their outputs can,
// however, be represented using grammar-based compression in linear space
// with respect to the input size."
//
// DagSink is an OutputSink that hash-conses every completed subtree of the
// output stream: identical subtrees share one grammar rule, so the stored
// representation is a minimal DAG — the sharing-maximal special case of a
// straight-line tree grammar. An MFT with exponential size increase (e.g.
// the doubling transducer of Section 4.2) produces an output DAG of size
// linear in the input while the unfolded output tree is exponential; the
// `CompressionRatio` accessor exposes exactly that gap.
#ifndef XQMFT_STREAM_DAG_SINK_H_
#define XQMFT_STREAM_DAG_SINK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "xml/events.h"
#include "xml/symbol.h"

namespace xqmft {

/// \brief Hash-consing output sink building a minimal output DAG.
class DagSink : public OutputSink {
 public:
  DagSink();

  void StartElement(std::string_view name) override;
  void EndElement(std::string_view name) override;
  void Text(std::string_view content) override;

  /// Nodes of the unfolded output tree.
  std::uint64_t total_nodes() const { return total_nodes_; }
  /// Rules of the grammar (distinct subtrees).
  std::size_t unique_nodes() const { return nodes_.size(); }
  /// total / unique; large values mean highly compressible output.
  double CompressionRatio() const {
    return nodes_.empty() ? 1.0
                          : static_cast<double>(total_nodes_) /
                                static_cast<double>(nodes_.size());
  }

  /// Ids of the output forest's top-level trees (grammar start symbols).
  /// Valid once all elements are closed.
  const std::vector<std::uint32_t>& roots() const { return stack_.front(); }

  /// Renders the grammar, one rule per line: `#id = label(#c1 #c2 ...)`.
  std::string GrammarToString() const;

  /// Unfolds rule `id` back into markup (testing; exponential in the worst
  /// case by design).
  std::string Expand(std::uint32_t id) const;

 private:
  struct Node {
    NodeKind kind;
    std::string label;
    std::vector<std::uint32_t> children;
    std::uint64_t size;  // unfolded subtree size
  };

  std::uint32_t Intern(Node node);

  std::vector<Node> nodes_;
  std::unordered_map<std::string, std::uint32_t> intern_;  // structural key
  std::vector<std::vector<std::uint32_t>> stack_;  // child lists of open elems
  std::vector<std::string> open_names_;
  std::uint64_t total_nodes_ = 0;
};

}  // namespace xqmft

#endif  // XQMFT_STREAM_DAG_SINK_H_
