#include "stream/engine.h"

#include <cstdlib>
#include <string_view>
#include <vector>

#include "lower/lower.h"
#include "lower/ops_engine.h"
#include "mft/dispatch.h"
#include "schema/schema.h"
#include "stream/cells.h"
#include "util/intrusive_ptr.h"
#include "util/ref_string.h"
#include "util/slab.h"

namespace xqmft {

// TU-local, but in a named namespace (not anonymous) so StreamScratch::Impl
// — an external-linkage class — can hold the Expr arena without tripping
// -Wsubobject-linkage.
namespace engine_detail {

enum class ExprKind : unsigned char {
  kNil,
  kCons,  ///< an output node: label, child forest, following forest
  kCat,   ///< concatenation of two forests
  kCall,  ///< suspended state call q(cell, args...)
  kInd,   ///< indirection to the reduced form
};

class Expr;

// Allocation context shared by every thunk of one engine run (one pointer
// per node instead of tracker + slab). Exprs must not outlive their arena.
struct ExprArena {
  explicit ExprArena(MemoryTracker* t) : tracker(t) {}
  MemoryTracker* tracker;
  Slab<Expr> slab;
};

// Output labels are interned ids resolved only at the sink boundary; the
// one content an Expr can hold is dynamic text referenced from the input by
// a %t rule (symbol_ == kInvalidSymbol then) — a RefString sharing the
// cell's buffer, so instantiating and rewriting text thunks never copies
// bytes. Storage comes from the engine's slab, so steady-state thunk
// turnover is allocation-free.
class Expr : public RefCounted {
 public:
  explicit Expr(ExprArena* arena) : arena_(arena) {
    arena_->tracker->Charge(sizeof(Expr));
  }
  ~Expr() override {
    arena_->tracker->Release(sizeof(Expr) +
                             args_.capacity() * sizeof(IntrusivePtr<Expr>));
    // Flatten the destruction of fully-owned expression chains (Ind/Cons
    // spines can be as long as the output stream).
    std::vector<IntrusivePtr<Expr>> work;
    auto take = [&work](IntrusivePtr<Expr>* p) {
      if (*p) work.push_back(std::move(*p));
    };
    take(&child);
    take(&next);
    while (!work.empty()) {
      IntrusivePtr<Expr> e = std::move(work.back());
      work.pop_back();
      if (e->ref_count() == 1) {
        take(&e->child);
        take(&e->next);
        for (IntrusivePtr<Expr>& a : e->args_) take(&a);
      }
    }
  }

  ExprKind kind = ExprKind::kNil;

  // kCons
  NodeKind node_kind = NodeKind::kElement;
  SymbolId symbol = kInvalidSymbol;  ///< interned label; invalid => text_
  IntrusivePtr<Expr> child;  // also: kCat left, kInd target
  IntrusivePtr<Expr> next;   // also: kCat right

  // kCall
  StateId state = -1;
  IntrusivePtr<Cell> cell;

  std::string_view text() const { return text_.view(); }
  const RefString& text_ref() const { return text_; }
  // Shares the buffer (the RefString self-charges the tracker for its
  // payload, once, however many thunks reference it).
  void set_text(const RefString& t) { text_ = t; }
  void clear_text() { text_.reset(); }

  const std::vector<IntrusivePtr<Expr>>& args() const { return args_; }
  void set_args(std::vector<IntrusivePtr<Expr>> a) {
    arena_->tracker->Release(args_.capacity() * sizeof(IntrusivePtr<Expr>));
    args_ = std::move(a);
    arena_->tracker->Charge(args_.capacity() * sizeof(IntrusivePtr<Expr>));
  }

  // Collapses this expression into an indirection (after reduction) or a
  // Cons/Nil; releases call references so consumed input can be freed.
  void BecomeInd(IntrusivePtr<Expr> target) {
    kind = ExprKind::kInd;
    child = std::move(target);
    next.reset();
    cell.reset();
    set_args({});
    symbol = kInvalidSymbol;
    clear_text();
  }

 protected:
  void Dispose() override { arena_->slab.Recycle(this); }

 private:
  ExprArena* arena_;
  RefString text_;
  std::vector<IntrusivePtr<Expr>> args_;
};

}  // namespace engine_detail

// The mutable per-run state a serving loop keeps alive between documents:
// byte accounting, both slab arenas, and the run-local symbol table with its
// snapshot boundary (the base table's size at seeding time). Defined here so
// the Expr slab can live outside any single engine run.
struct StreamScratch::Impl {
  explicit Impl(const Mft& mft)
      : symbols(mft.symbols()), base_symbols(symbols.size()) {}
  MemoryTracker tracker;
  engine_detail::ExprArena expr_arena{&tracker};
  CellArena cell_arena{&tracker};
  SymbolTable symbols;       // run table; grows with input names per run
  std::size_t base_symbols;  // snapshot boundary: the plan's base alphabet
};

StreamScratch::StreamScratch(const Mft& mft)
    : impl_(std::make_unique<Impl>(mft)) {}
StreamScratch::~StreamScratch() = default;

namespace engine_detail {

// The table-machine engine core (the lazy thunk interpreter). The former
// pull loop is split at its input boundary: Pump() emits everything
// determined and *returns* when it needs input (instead of calling
// events->Next), Feed() supplies one event and re-pumps, Finish() closes
// the input and verifies completion. The pump order — reduce, emit, block,
// fill cell, resume — is exactly the old loop's, so output bytes, step
// counts and error positions are unchanged. The run context (arenas,
// tracker, run table) is owned by the Engine facade below, which picks
// between this machine and the lowered ops engine.
struct TableMachine {
  TableMachine(const Mft& mft, OutputSink* sink, const StreamOptions& options,
               StreamScratch::Impl* ctx)
      : mft_(mft),
        dispatch_(&mft.dispatch()),
        ctx_(ctx),
        sink_(sink),
        options_(options),
        builder_(&ctx_->cell_arena, &ctx_->symbols) {
    // Transducers that provably never read text content skip the
    // event-to-cell text copy altogether.
    builder_.set_capture_text(dispatch_->captures_text());
  }

  // The emitter stack: (expression to emit, element to close afterwards).
  struct Frame {
    IntrusivePtr<Expr> expr;
    SymbolId close_symbol = kInvalidSymbol;
  };

  bool done() const { return started_ && stack_.empty(); }

  // Records the first failure; everything after returns it unchanged.
  Status Sticky(Status s) {
    if (!s.ok() && status_.ok()) status_ = s;
    return status_.ok() ? s : status_;
  }

  Status Prime() {
    if (!status_.ok()) return status_;
    if (started_) return Status::OK();
    started_ = true;
    // Root thunk: q0 applied to the whole (pending) input forest.
    IntrusivePtr<Expr> root = NewExpr();
    root->kind = ExprKind::kCall;
    root->state = start_state_ >= 0 ? start_state_ : mft_.initial_state();
    root->cell = builder_.TakeRoot();
    stack_.push_back(Frame{std::move(root), kInvalidSymbol});
    return Sticky(Pump());
  }

  Status Feed(const XmlEvent& event) {
    if (!status_.ok()) return status_;
    if (!started_) XQMFT_RETURN_NOT_OK(Prime());
    if (stack_.empty()) return Status::OK();  // output complete; ignore
    // Cooperative cancellation, checked before the event does any work so a
    // trip never commits partial output for this event (the cancelled-run
    // contract: the sink ends at the previous event's boundary).
    if (options_.cancel != nullptr &&
        ++events_since_cancel_check_ >= options_.cancel_check_events) {
      events_since_cancel_check_ = 0;
      XQMFT_RETURN_NOT_OK(Sticky(options_.cancel->Check()));
    }
    if (options_.validator != nullptr) {
      XQMFT_RETURN_NOT_OK(Sticky(options_.validator->Feed(event)));
    }
    XQMFT_RETURN_NOT_OK(Sticky(builder_.Feed(event)));
    return Sticky(Pump());
  }

  Status Finish(StreamStats* stats) {
    if (status_.ok()) {
      if (!started_) Prime();  // Sticky() inside records any failure
      if (status_.ok() && !stack_.empty() && !builder_.done()) {
        XmlEvent end;
        end.type = XmlEventType::kEndOfDocument;
        Feed(end);
      }
      if (status_.ok() && !stack_.empty()) {
        // Unreachable via the public API (Pump reports blocked-after-end
        // itself), kept as a guard for direct Impl misuse.
        Sticky(Status::Internal(
            "streaming engine finished with output pending"));
      }
    }
    if (stats != nullptr) {
      stats->peak_bytes = ctx_->tracker.peak_bytes();
      stats->final_bytes = ctx_->tracker.current_bytes();
      stats->rule_applications = steps_;
      stats->cells_created = builder_.cells_created();
      stats->exprs_created = exprs_created_;
      stats->output_events = output_events_;
    }
    return status_;
  }

  // Emits as much output as the input revealed so far determines. Returns
  // with a non-empty stack when the reduction blocked on a pending cell
  // (feed more events); an empty stack means the output is complete.
  Status Pump() {
    while (!stack_.empty()) {
      Frame& top = stack_.back();
      IntrusivePtr<Expr> e = Deref(top.expr);
      top.expr = e;

      bool blocked = false;
      XQMFT_RETURN_NOT_OK(Whnf(e.get(), resume_valid_, &blocked));
      if (blocked) {
        // Consecutive blocked pumps resume the suspended reduction (nothing
        // else mutates the graph between Feeds).
        resume_valid_ = true;
        if (builder_.done()) {
          return Status::Internal(
              "streaming engine blocked after end of input");
        }
        return Status::OK();  // suspended: needs another Feed
      }
      resume_valid_ = false;
      e = Deref(e);
      top.expr = e;
      if (e->kind == ExprKind::kNil) {
        if (top.close_symbol != kInvalidSymbol) {
          sink_->EndElement(ctx_->symbols.name(top.close_symbol));
          ++output_events_;
        }
        stack_.pop_back();
        continue;
      }
      XQMFT_CHECK(e->kind == ExprKind::kCons);
      if (e->node_kind == NodeKind::kText) {
        // Static text (a rule literal) resolves through the table; dynamic
        // text (%t over an input text node) is owned by the Expr.
        sink_->Text(e->symbol != kInvalidSymbol
                        ? ctx_->symbols.name(e->symbol)
                        : e->text());
        ++output_events_;
        top.expr = e->next;
      } else {
        sink_->StartElement(ctx_->symbols.name(e->symbol));
        ++output_events_;
        Frame child_frame;
        child_frame.expr = e->child;
        child_frame.close_symbol = e->symbol;
        top.expr = e->next;
        stack_.push_back(std::move(child_frame));
      }
    }
    return Status::OK();
  }

  IntrusivePtr<Expr> NewExpr() {
    ++exprs_created_;
    return IntrusivePtr<Expr>(
        ctx_->expr_arena.slab.New(&ctx_->expr_arena));
  }

  static IntrusivePtr<Expr> Deref(IntrusivePtr<Expr> e) {
    while (e->kind == ExprKind::kInd) e = e->child;
    return e;
  }

  // Reduces `e` (in place) to Nil or Cons; sets *blocked if the reduction
  // needs an input cell that is still Pending. Iterative with an explicit
  // stack of Cat ancestors whose left spine is being forced — recursion
  // here would be proportional to document depth for descendant scans.
  Status Whnf(Expr* e, bool resume, bool* blocked) {
    // Resume from the last blocked position when re-pumped after a blocked
    // pump: the graph only changes through this function and through cell
    // fills, so the saved Cat spine is still valid. Without this, each
    // input event would re-walk the spine from the root — quadratic in
    // document depth for descendant scans.
    if (resume && whnf_resume_ != nullptr) {
      e = whnf_resume_;
    } else {
      cat_stack_.clear();
    }
    whnf_resume_ = nullptr;
    while (true) {
      switch (e->kind) {
        case ExprKind::kNil:
        case ExprKind::kCons: {
          if (cat_stack_.empty()) return Status::OK();
          // Rewrite the innermost pending Cat now that its left is WHNF.
          Expr* cat = cat_stack_.back();
          cat_stack_.pop_back();
          IntrusivePtr<Expr> lt = Deref(cat->child);
          if (lt->kind == ExprKind::kNil) {
            IntrusivePtr<Expr> right = cat->next;
            cat->BecomeInd(right);
            e = right.get();  // kept alive by cat's indirection
            continue;
          }
          XQMFT_CHECK(lt->kind == ExprKind::kCons);
          // Cons(l, c, n) ++ r  =>  Cons(l, c, n ++ r)
          IntrusivePtr<Expr> tail = NewExpr();
          tail->kind = ExprKind::kCat;
          tail->child = lt->next;
          tail->next = cat->next;
          cat->kind = ExprKind::kCons;
          cat->node_kind = lt->node_kind;
          cat->symbol = lt->symbol;
          cat->set_text(lt->text_ref());
          cat->child = lt->child;
          cat->next = tail;
          cat->cell.reset();
          cat->set_args({});
          e = cat;
          continue;
        }
        case ExprKind::kInd: {
          // Path-compress the indirection chain, then continue on the target.
          IntrusivePtr<Expr> t = Deref(e->child);
          e->child = t;
          e = t.get();
          continue;
        }
        case ExprKind::kCat:
          cat_stack_.push_back(e);
          e = e->child.get();
          continue;
        case ExprKind::kCall: {
          const Cell* cell = e->cell.get();
          if (cell->state() == CellState::kPending) {
            // Suspend, remembering where to resume, and compress the link
            // from the innermost Cat to this call so the indirections of
            // consumed input are released during the suspension (otherwise
            // sparse-match scans retain the whole skipped stretch).
            whnf_resume_ = e;
            if (!cat_stack_.empty()) {
              Expr* cat = cat_stack_.back();
              cat->child = Deref(cat->child);
            }
            *blocked = true;
            return Status::OK();
          }
          if (steps_ >= options_.max_steps) {
            return Status::ResourceExhausted(
                "streaming engine exceeded the step budget");
          }
          // Step-granular cancellation: one event can trigger an unbounded
          // reduction (a no-opt plan pumps its whole buffered output at the
          // end-of-document), so deadlines are also polled on the rule
          // application path, amortized to one clock read per ~1k steps.
          if (options_.cancel != nullptr && (steps_ & 1023u) == 0) {
            XQMFT_RETURN_NOT_OK(options_.cancel->Check());
          }
          ++steps_;
          // Dense dispatch: rule selection is an array index on the interned
          // symbol — no hashing, no label strings on the element path.
          const Rhs* rhs;
          if (cell->state() == CellState::kEps) {
            rhs = dispatch_->Epsilon(e->state);
          } else if (cell->kind() == NodeKind::kText) {
            rhs = dispatch_->ForText(e->state, cell->text());
          } else {
            rhs = dispatch_->ForElement(e->state, cell->symbol());
          }
          if (rhs == nullptr) {
            return Status::Internal("no applicable rule for state " +
                                    mft_.state_name(e->state));
          }
          IntrusivePtr<Cell> cell_ref = e->cell;
          std::vector<IntrusivePtr<Expr>> args = e->args();
          IntrusivePtr<Expr> inst = Instantiate(*rhs, cell_ref, args, nullptr);
          e->BecomeInd(inst);
          e = Deref(inst).get();
          continue;
        }
      }
    }
  }

  // Builds the expression graph for an RHS forest. `tail` (may be null) is
  // appended after the instantiated forest.
  IntrusivePtr<Expr> Instantiate(const Rhs& rhs,
                                 const IntrusivePtr<Cell>& cell,
                                 const std::vector<IntrusivePtr<Expr>>& args,
                                 IntrusivePtr<Expr> tail) {
    IntrusivePtr<Expr> acc = std::move(tail);
    for (auto it = rhs.rbegin(); it != rhs.rend(); ++it) {
      const RhsNode& item = *it;
      switch (item.kind) {
        case RhsKind::kLabel: {
          IntrusivePtr<Expr> node = NewExpr();
          node->kind = ExprKind::kCons;
          if (item.current_label) {
            node->node_kind = cell->kind();
            if (cell->kind() == NodeKind::kText) {
              node->set_text(cell->text_ref());
            } else {
              node->symbol = cell->symbol();
            }
          } else {
            node->node_kind = item.symbol.kind;
            node->symbol = item.symbol_id;
          }
          node->child = Instantiate(item.children, cell, args, nullptr);
          node->next = acc ? std::move(acc) : NilExpr();
          acc = std::move(node);
          break;
        }
        case RhsKind::kParam: {
          const IntrusivePtr<Expr>& value =
              args[static_cast<std::size_t>(item.param) - 1];
          if (!acc) {
            acc = value;  // shared: evaluated at most once
          } else {
            IntrusivePtr<Expr> cat = NewExpr();
            cat->kind = ExprKind::kCat;
            cat->child = value;
            cat->next = std::move(acc);
            acc = std::move(cat);
          }
          break;
        }
        case RhsKind::kCall: {
          IntrusivePtr<Expr> call = NewExpr();
          call->kind = ExprKind::kCall;
          call->state = item.state;
          switch (item.input) {
            case InputVar::kX0:
              call->cell = cell;
              break;
            case InputVar::kX1:
              call->cell = cell->child();
              break;
            case InputVar::kX2:
              call->cell = cell->sibling();
              break;
          }
          std::vector<IntrusivePtr<Expr>> call_args;
          call_args.reserve(item.args.size());
          for (const Rhs& arg : item.args) {
            call_args.push_back(Instantiate(arg, cell, args, nullptr));
          }
          call->set_args(std::move(call_args));
          if (!acc) {
            acc = std::move(call);
          } else {
            IntrusivePtr<Expr> cat = NewExpr();
            cat->kind = ExprKind::kCat;
            cat->child = std::move(call);
            cat->next = std::move(acc);
            acc = std::move(cat);
          }
          break;
        }
      }
    }
    if (!acc) acc = NilExpr();
    return acc;
  }

  IntrusivePtr<Expr> NilExpr() {
    // Nil is immutable; share one instance.
    if (!nil_) {
      nil_ = NewExpr();
      nil_->kind = ExprKind::kNil;
    }
    return nil_;
  }

  const Mft& mft_;
  const RuleDispatch* dispatch_;
  // Root-state override: a kBridge sub-run starts in its site's synthetic
  // root instead of the transducer's initial state. Set before Prime.
  StateId start_state_ = -1;
  // The run context (tracker, arenas, run-local symbol table — the table is
  // deliberately outside the tracked metric: it is bounded by the number of
  // *distinct* names, alphabet-sized like the transducer, while the tracker
  // measures what Figure 4 measures, retention proportional to the streamed
  // input). Owned by the Engine facade, which guarantees it outlives the
  // machine and that all cells/exprs are recycled before the slabs free
  // their blocks (the facade destroys the machine before the context).
  StreamScratch::Impl* ctx_;
  OutputSink* sink_;
  StreamOptions options_;
  CellBuilder builder_;
  IntrusivePtr<Expr> nil_;
  std::vector<Frame> stack_;
  std::vector<Expr*> cat_stack_;
  Expr* whnf_resume_ = nullptr;  // blocked call to resume from
  bool resume_valid_ = false;    // last pump blocked; spine still valid
  bool started_ = false;         // root thunk built, prefix pumped
  std::uint32_t events_since_cancel_check_ = 0;
  Status status_ = Status::OK();  // sticky: first failure of the run
  std::uint64_t steps_ = 0;
  std::uint64_t exprs_created_ = 0;
  std::size_t output_events_ = 0;
};

}  // namespace engine_detail

namespace {

// Resolves kAuto through XQMFT_FORCE_ENGINE ("ops"/"table"); an explicit
// option always wins over the environment. Read once per process — the
// variable is a CI/debugging lever, not a runtime switch.
EngineChoice ResolveEngineChoice(EngineChoice opt) {
  if (opt != EngineChoice::kAuto) return opt;
  static const EngineChoice from_env = [] {
    const char* e = std::getenv("XQMFT_FORCE_ENGINE");
    if (e == nullptr) return EngineChoice::kAuto;
    const std::string_view v(e);
    if (v == "table") return EngineChoice::kTable;
    if (v == "ops") return EngineChoice::kOps;
    return EngineChoice::kAuto;
  }();
  return from_env;
}

}  // namespace

// The engine facade: owns the run context and selects the execution core.
// The lowered ops engine runs whenever the plan is lowerable and the caller
// did not pin the table machine; unlowerable plans always take the table
// machine (kOps included — the fallback is silent here, and the CLI reports
// it). Both cores sit behind the same Prime/Feed/Finish contract, so every
// driver — single-query pumps, multi-query fan-out, sharding, the service
// loop — inherits the selection untouched.
struct Engine::Impl {
  // What the table-machine sub-runs behind a hybrid plan's kBridge sites
  // consumed, folded into the run's stats at Finish. A sub-run reports at
  // its own Finish (the ops engine finishes every bridge it starts).
  struct BridgeAccounting {
    std::uint64_t runs = 0;
    std::uint64_t steps = 0;
    std::uint64_t cells = 0;
    std::uint64_t exprs = 0;
  };

  // One kBridge sub-run: a table machine over the plan's bridge transducer,
  // rooted at the site's synthetic state, sharing the outer run's context
  // (symbol table, tracker, slab arenas — the slabs are free-list based, so
  // interleaved sub-runs coexist; nothing is truncated between them).
  class BridgeRunImpl : public lower::BridgeRun {
   public:
    BridgeRunImpl(Engine::Impl* impl, std::uint32_t site, OutputSink* sink)
        : impl_(impl),
          machine_(*impl->lowered_->bridge_mft, sink, impl->BridgeOptions(),
                   impl->ctx_) {
      machine_.start_state_ = impl->lowered_->bridge_sites[site];
    }

    Status Feed(const XmlEvent& event) override { return machine_.Feed(event); }

    Status Finish() override {
      StreamStats st;
      Status s = machine_.Finish(&st);
      impl_->bridge_acc_.runs += 1;
      impl_->bridge_acc_.steps += st.rule_applications;
      impl_->bridge_acc_.cells += st.cells_created;
      impl_->bridge_acc_.exprs += st.exprs_created;
      return s;
    }

   private:
    Engine::Impl* impl_;
    engine_detail::TableMachine machine_;
  };

  Impl(const Mft& mft, OutputSink* sink, const StreamOptions& options,
       StreamScratch::Impl* scratch)
      : owned_(scratch == nullptr ? std::make_unique<StreamScratch::Impl>(mft)
                                  : nullptr),
        ctx_(Prepare(scratch != nullptr ? scratch : owned_.get(),
                     /*reused=*/scratch != nullptr)),
        options_(options) {
    const lower::LoweredPlan* lowered = nullptr;
    if (ResolveEngineChoice(options.engine) != EngineChoice::kTable) {
      lowered = lower::GetLoweredPlan(mft);
    }
    if (lowered != nullptr) {
      lowered_ = lowered;
      if (lowered->hybrid) {
        bridge_factory_ = [this](std::uint32_t site, OutputSink* s) {
          return std::unique_ptr<lower::BridgeRun>(
              std::make_unique<BridgeRunImpl>(this, site, s));
        };
      }
      ops_ = std::make_unique<lower::OpsEngine>(
          *lowered, sink, &ctx_->symbols, &ctx_->tracker, options.max_steps,
          options.validator, options.cancel, options.cancel_check_events,
          lowered->hybrid ? &bridge_factory_ : nullptr);
    } else {
      table_ = std::make_unique<engine_detail::TableMachine>(mft, sink,
                                                             options, ctx_);
    }
  }

  // Options for one sub-run: validation already happened on the outer feed
  // path, and the step budget is the run's shared remainder — the total a
  // hybrid run may consume matches what the same plan gets on either pure
  // core.
  StreamOptions BridgeOptions() const {
    StreamOptions o = options_;
    o.validator = nullptr;
    const std::uint64_t used = ops_->steps() + bridge_acc_.steps;
    o.max_steps = options_.max_steps > used ? options_.max_steps - used : 0;
    return o;
  }

  // Re-entry of a serving loop: snapshot the run table back to the plan's
  // base alphabet (input names interned by earlier documents are forgotten,
  // keeping the table alphabet-sized instead of growing with the union of
  // all inputs ever served) and restart peak accounting for this run.
  static StreamScratch::Impl* Prepare(StreamScratch::Impl* ctx, bool reused) {
    if (reused) {
      ctx->symbols.TruncateToSnapshot(ctx->base_symbols);
      ctx->tracker.ResetPeak();
    }
    return ctx;
  }

  bool done() const { return ops_ != nullptr ? ops_->done() : table_->done(); }
  Status Prime() {
    return ops_ != nullptr ? ops_->Prime() : table_->Prime();
  }
  Status Feed(const XmlEvent& event) {
    return ops_ != nullptr ? ops_->Feed(event) : table_->Feed(event);
  }
  std::size_t output_events() const {
    return ops_ != nullptr ? ops_->output_events() : table_->output_events_;
  }

  Status Finish(StreamStats* stats) {
    if (ops_ == nullptr) return table_->Finish(stats);
    Status s = ops_->Finish();
    if (stats != nullptr) {
      stats->peak_bytes = ctx_->tracker.peak_bytes();
      stats->final_bytes = ctx_->tracker.current_bytes();
      stats->rule_applications = ops_->steps() + bridge_acc_.steps;
      stats->cells_created = bridge_acc_.cells;
      stats->exprs_created = bridge_acc_.exprs;
      stats->cells_arena = ops_->consumers_spawned();
      stats->used_ops_engine = true;
      stats->bridge_runs = ops_->bridge_runs();
      stats->hybrid_plan = lowered_->hybrid;
      stats->output_events = ops_->output_events();
    }
    return s;
  }

  // owned_ precedes the machines: members destruct in reverse order, and
  // the table machine's cells/exprs must be recycled before their slabs
  // free their blocks. ops_ is last: it may hold live bridge sub-runs whose
  // machines point into ctx_ and whose factory is bridge_factory_.
  std::unique_ptr<StreamScratch::Impl> owned_;
  StreamScratch::Impl* ctx_;
  StreamOptions options_;
  const lower::LoweredPlan* lowered_ = nullptr;
  BridgeAccounting bridge_acc_;
  lower::BridgeFactory bridge_factory_;
  std::unique_ptr<engine_detail::TableMachine> table_;
  std::unique_ptr<lower::OpsEngine> ops_;
};

Engine::Engine(const Mft& mft, OutputSink* sink, StreamOptions options,
               StreamScratch* scratch)
    : impl_(std::make_unique<Impl>(
          mft, sink, options, scratch != nullptr ? scratch->impl() : nullptr)) {}
Engine::~Engine() = default;

SymbolTable* Engine::symbols() { return &impl_->ctx_->symbols; }
Status Engine::Prime() { return impl_->Prime(); }
Status Engine::Feed(const XmlEvent& event) { return impl_->Feed(event); }
Status Engine::Finish(StreamStats* stats) { return impl_->Finish(stats); }
bool Engine::done() const { return impl_->done(); }
std::size_t Engine::output_events() const { return impl_->output_events(); }

namespace {

// The single-query pull pump: prime, pull events until the engine's output
// is complete or the document ends, finish. Byte accounting (bytes_in,
// bytes_in_at_first_output) lives here because only the driver sees the
// byte source; pumps never consume input, so reading bytes_consumed() after
// the Feed that triggered the first output matches the old in-loop capture.
Status PumpEvents(Engine* engine, EventSource* events, StreamStats* stats) {
  events->BindSymbols(engine->symbols());
  std::size_t bytes_at_first_output = 0;
  bool saw_output = false;
  auto note_output = [&]() {
    if (!saw_output && engine->output_events() > 0) {
      saw_output = true;
      bytes_at_first_output = events->bytes_consumed();
    }
  };
  auto fill_bytes = [&]() {
    if (stats != nullptr) {
      stats->bytes_in = events->bytes_consumed();
      stats->bytes_in_at_first_output = bytes_at_first_output;
    }
  };
  // An engine-side failure (rule miss, step budget, cancellation) is sticky:
  // Finish is then a stats-only no-op returning the same status, so calling
  // it here keeps `stats` populated for aborted runs — the cancelled-run
  // contract serving layers rely on for accounting. Source-side failures
  // (malformed XML) must NOT Finish: the engine is still healthy and Finish
  // would synthesize an end-of-document, emitting output for a document
  // that never ended.
  auto abort_run = [&](Status st) {
    engine->Finish(stats);
    fill_bytes();
    return st;
  };
  Status st = engine->Prime();
  if (!st.ok()) return abort_run(std::move(st));
  note_output();
  XmlEvent event;
  while (!engine->done()) {
    XQMFT_RETURN_NOT_OK(events->Next(&event));
    st = engine->Feed(event);
    if (!st.ok()) return abort_run(std::move(st));
    note_output();
    if (event.type == XmlEventType::kEndOfDocument) break;
  }
  st = engine->Finish(stats);
  fill_bytes();
  return st;
}

}  // namespace

Status StreamTransform(const Mft& mft, ByteSource* source, OutputSink* sink,
                       StreamOptions options, StreamStats* stats,
                       StreamScratch* scratch) {
  Engine engine(mft, sink, options, scratch);
  SaxParser parser(source, options.sax);
  return PumpEvents(&engine, &parser, stats);
}

Status StreamTransformEvents(const Mft& mft, EventSource* events,
                             OutputSink* sink, StreamOptions options,
                             StreamStats* stats, StreamScratch* scratch) {
  Engine engine(mft, sink, options, scratch);
  return PumpEvents(&engine, events, stats);
}

Status StreamTransformString(const Mft& mft, const std::string& xml,
                             OutputSink* sink, StreamOptions options,
                             StreamStats* stats) {
  StringSource source(xml);
  return StreamTransform(mft, &source, sink, options, stats);
}

}  // namespace xqmft
