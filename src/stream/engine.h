// Streaming execution engine for MFTs, after Nakano & Mu's pushdown-machine
// approach [30]: the transducer is evaluated lazily (call-by-need) against
// the incrementally revealed input; output is emitted as soon as its head is
// determined. Deterministic total MFTs make call-by-need observationally
// identical to the call-by-value reference semantics (tested against
// RunMft).
//
// Machine model. The output under construction is a graph of thunks:
//
//   expr ::= Nil | Cons(label, child, next) | Cat(left, right)
//          | Call(state, cell, args) | Ind(expr)
//
// Reducing an expression to weak head normal form applies MFT rules on
// demand; a Call blocked on a Pending input cell suspends the pump until
// the parser supplies more events. Reduced thunks are overwritten with
// indirections, so shared parameters are evaluated at most once.
#ifndef XQMFT_STREAM_ENGINE_H_
#define XQMFT_STREAM_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "mft/mft.h"
#include "util/cancel.h"
#include "util/memory_tracker.h"
#include "util/status.h"
#include "xml/event_source.h"
#include "xml/events.h"
#include "xml/sax_parser.h"

namespace xqmft {

class SchemaValidator;

/// Which execution core runs the transducer. kAuto (the default) picks the
/// lowered opcode engine whenever the plan is lowerable (see lower/lower.h)
/// and falls back to the table machine otherwise; the XQMFT_FORCE_ENGINE
/// environment variable ("ops"/"table") overrides kAuto only. kOps also
/// falls back to the table machine for unlowerable plans — lowering is a
/// fast path, never a capability switch; callers that want to report the
/// fallback (the CLI does) ask lower::GetLoweredPlan for the reason.
enum class EngineChoice : unsigned char { kAuto, kTable, kOps };

struct StreamOptions {
  /// Rule applications before aborting with ResourceExhausted (guards
  /// against non-terminating stay loops in hand-written transducers).
  std::uint64_t max_steps = UINT64_MAX;
  SaxOptions sax;
  /// Optional one-pass schema validation during the transformation (the
  /// Section 1 "validate the input during transformation" feature): every
  /// input event is fed to the validator; a violation aborts the run.
  SchemaValidator* validator = nullptr;
  /// Execution core selection (see EngineChoice).
  EngineChoice engine = EngineChoice::kAuto;
  /// Optional cooperative cancellation (explicit cancel or deadline): both
  /// engine cores poll the token every `cancel_check_events` input events
  /// (and the table machine additionally every ~1k reduction steps, so a
  /// buffered no-opt pump cannot overshoot a deadline by the whole output).
  /// A tripped check becomes the run's sticky error — kCancelled or
  /// kDeadlineExceeded — at an event boundary: stats stay populated through
  /// Finish and the sink holds exactly the output committed before the trip
  /// (the cancelled-run contract; see Engine::Finish). Per-run state: must
  /// be null in options baked into a CompiledPlan — serving layers inject a
  /// per-request token via ParallelOptions/MultiQueryOptions instead.
  const CancelToken* cancel = nullptr;
  /// Cancellation poll cadence in input events. Small enough that a
  /// deadline trips within tens of microseconds of stream time, large
  /// enough that the steady-state Feed pays one counter increment.
  std::uint32_t cancel_check_events = 128;
};

/// Statistics of one streaming run (the measurements behind Figure 4).
struct StreamStats {
  std::size_t peak_bytes = 0;      ///< peak tracked engine memory
  std::size_t final_bytes = 0;     ///< tracked memory at completion
  std::uint64_t rule_applications = 0;
  /// Refcounted input cells built by the table machine (0 on the ops
  /// engine, which has no cell graph).
  std::uint64_t cells_created = 0;
  std::uint64_t exprs_created = 0;
  /// Consumer records the ops engine served from its bump arena (0 on the
  /// table machine). The arena/refcounted split of a run's cell traffic is
  /// exactly (cells_arena, cells_created).
  std::uint64_t cells_arena = 0;
  /// True when the run executed on the lowered opcode engine.
  bool used_ops_engine = false;
  /// Table-machine sub-runs a hybrid plan bridged into (0 for fully lowered
  /// plans and for the table machine itself).
  std::uint64_t bridge_runs = 0;
  /// True when the plan lowered hybrid: the opcode core ran the scan but
  /// some call sites executed as table-machine sub-runs (see lower/lower.h).
  bool hybrid_plan = false;
  std::size_t bytes_in = 0;        ///< input bytes consumed
  std::size_t output_events = 0;   ///< sink events emitted
  /// Input bytes consumed before the first output event: small values mean
  /// genuinely incremental emission.
  std::size_t bytes_in_at_first_output = 0;
};

/// \brief Reusable mutable run state for streaming one transducer through
/// many documents: the run-local SymbolTable (seeded once from the
/// transducer's immutable base table, snapshot back between documents) and
/// the cell/expr slab arenas, whose free lists and blocks persist across
/// runs — the second document of a serving loop allocates no blocks and
/// copies no table.
///
/// A scratch is bound to one transducer and single-threaded: at most one
/// streaming run may use it at a time, and every run through it must pass
/// the same Mft it was built from. Without a scratch the streaming entry
/// points build this state per run (copying the base table and growing
/// fresh slabs), which is correct but pays the per-run setup a serving loop
/// exists to amortize. QueryRun (core/pipeline.h) is the plan-level wrapper.
class StreamScratch {
 public:
  /// Seeds the run table from `mft`'s base table. The dispatch must already
  /// be compiled (structural for CompiledPlan-built transducers; bare-Mft
  /// callers get it compiled here as a side effect of symbols()).
  explicit StreamScratch(const Mft& mft);
  ~StreamScratch();
  StreamScratch(const StreamScratch&) = delete;
  StreamScratch& operator=(const StreamScratch&) = delete;

  struct Impl;  // private to engine.cc
  Impl* impl() const { return impl_.get(); }

 private:
  std::unique_ptr<Impl> impl_;
};

/// \brief Push-mode streaming engine core: a passive consumer of XML events.
///
/// The engine does not own an input loop. A driver constructs it over a
/// transducer and a sink, feeds it one event at a time, and finishes it when
/// the input ends:
///
///   Engine engine(mft, &sink, options);
///   source->BindSymbols(engine.symbols());   // share one id space
///   engine.Prime();                          // constant output prefix
///   while (!engine.done()) { source->Next(&ev); engine.Feed(ev); }
///   engine.Finish(&stats);
///
/// Output is emitted into the sink *during* Feed, as soon as its head is
/// determined — which is why the sink binds at construction rather than at
/// Finish. Feed pumps the thunk graph until it either blocks on pending
/// input (feed more) or completes (done() becomes true; later events are
/// ignored, matching the pull loop's early stop when the output is complete
/// before the input ends). Finish feeds a synthetic end-of-document if the
/// driver has not, pumps the remainder, and fills `stats`; the stats fields
/// derived from the byte source (`bytes_in`, `bytes_in_at_first_output`)
/// are the driver's to set — the engine only sees events.
///
/// Errors are sticky: after a failed Feed (rule miss, step budget, schema
/// violation) every later Feed/Finish returns the same status, and sibling
/// engines of a multi-query run are unaffected. Finish fills `stats` with
/// whatever was accumulated even when it returns an error.
///
/// Drivers: StreamTransform / StreamTransformEvents below (the single-query
/// pull pumps) and MultiQueryRun (multiquery/multi_run.h), which fans one
/// event stream into many engines.
class Engine {
 public:
  /// `scratch`, when given, must have been built from this same `mft` (see
  /// StreamScratch); null means the engine owns its run state.
  Engine(const Mft& mft, OutputSink* sink, StreamOptions options = {},
         StreamScratch* scratch = nullptr);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// The engine's run-local symbol table: bind the event source to it (or
  /// intern remapped event symbols through it) so event ids and rule ids
  /// share one id space. Events whose `symbol` is kInvalidSymbol are
  /// interned lazily by name, so feeding foreign-id-free events also works.
  SymbolTable* symbols();

  /// Pumps the constant output prefix (output derivable before any input
  /// event, e.g. literal markup around the root call). Optional: the first
  /// Feed primes implicitly. Drivers that account bytes-at-first-output call
  /// it explicitly so a constant prefix is attributed to byte offset 0.
  Status Prime();

  /// Feeds one event and emits everything it determines. After done(),
  /// events are ignored (Status::OK). kEndOfDocument may be fed at most
  /// once; Finish supplies it implicitly otherwise.
  Status Feed(const XmlEvent& event);

  /// Declares the input complete: feeds end-of-document if pending, pumps
  /// the rest of the output, verifies the run completed, and fills `stats`
  /// (event-side fields; byte accounting is the driver's). Fills stats even
  /// on error. Idempotent.
  ///
  /// Cancelled-run contract (pinned for both cores by net_test): after a
  /// Feed tripped the run's CancelToken, Finish still fills `stats` with
  /// everything accumulated, returns the sticky kCancelled /
  /// kDeadlineExceeded status, and does NOT pump, replay, or flush anything
  /// further into the sink — the sink ends at the last byte committed
  /// before the trip, so no partial thunk output (table) or buffered
  /// segment (ops) leaks downstream.
  Status Finish(StreamStats* stats = nullptr);

  /// True once the output is fully emitted: no further event can change it,
  /// so drivers may stop feeding (and a shared-source driver may stop
  /// duplicating events to this engine).
  bool done() const;

  /// Output events emitted so far (monotonic; drivers use the first
  /// transition to non-zero for bytes_in_at_first_output accounting).
  std::size_t output_events() const;

  struct Impl;  // private to engine.cc

 private:
  std::unique_ptr<Impl> impl_;
};

/// Streams `source` through `mft` into `sink`. The transducer must
/// Validate() beforehand. `scratch`, when given, supplies the run's symbol
/// table and arenas (see StreamScratch); it must have been built from this
/// same `mft`. A thin pull pump over the push-mode Engine.
Status StreamTransform(const Mft& mft, ByteSource* source, OutputSink* sink,
                       StreamOptions options = {},
                       StreamStats* stats = nullptr,
                       StreamScratch* scratch = nullptr);

/// Streams an already-tokenized event stream (e.g. a PretokSource) through
/// `mft`. The engine binds the source to its run-local symbol table before
/// pulling, so event ids and rule ids share one id space; options.sax is
/// ignored (tokenization happened when the events were produced).
Status StreamTransformEvents(const Mft& mft, EventSource* events,
                             OutputSink* sink, StreamOptions options = {},
                             StreamStats* stats = nullptr,
                             StreamScratch* scratch = nullptr);

/// Convenience wrapper over an in-memory document.
Status StreamTransformString(const Mft& mft, const std::string& xml,
                             OutputSink* sink, StreamOptions options = {},
                             StreamStats* stats = nullptr);

}  // namespace xqmft

#endif  // XQMFT_STREAM_ENGINE_H_
