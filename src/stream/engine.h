// Streaming execution engine for MFTs, after Nakano & Mu's pushdown-machine
// approach [30]: the transducer is evaluated lazily (call-by-need) against
// the incrementally revealed input; output is emitted as soon as its head is
// determined. Deterministic total MFTs make call-by-need observationally
// identical to the call-by-value reference semantics (tested against
// RunMft).
//
// Machine model. The output under construction is a graph of thunks:
//
//   expr ::= Nil | Cons(label, child, next) | Cat(left, right)
//          | Call(state, cell, args) | Ind(expr)
//
// Reducing an expression to weak head normal form applies MFT rules on
// demand; a Call blocked on a Pending input cell suspends the pump until
// the parser supplies more events. Reduced thunks are overwritten with
// indirections, so shared parameters are evaluated at most once.
#ifndef XQMFT_STREAM_ENGINE_H_
#define XQMFT_STREAM_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "mft/mft.h"
#include "util/memory_tracker.h"
#include "util/status.h"
#include "xml/event_source.h"
#include "xml/events.h"
#include "xml/sax_parser.h"

namespace xqmft {

class SchemaValidator;

struct StreamOptions {
  /// Rule applications before aborting with ResourceExhausted (guards
  /// against non-terminating stay loops in hand-written transducers).
  std::uint64_t max_steps = UINT64_MAX;
  SaxOptions sax;
  /// Optional one-pass schema validation during the transformation (the
  /// Section 1 "validate the input during transformation" feature): every
  /// input event is fed to the validator; a violation aborts the run.
  SchemaValidator* validator = nullptr;
};

/// Statistics of one streaming run (the measurements behind Figure 4).
struct StreamStats {
  std::size_t peak_bytes = 0;      ///< peak tracked engine memory
  std::size_t final_bytes = 0;     ///< tracked memory at completion
  std::uint64_t rule_applications = 0;
  std::uint64_t cells_created = 0;
  std::uint64_t exprs_created = 0;
  std::size_t bytes_in = 0;        ///< input bytes consumed
  std::size_t output_events = 0;   ///< sink events emitted
  /// Input bytes consumed before the first output event: small values mean
  /// genuinely incremental emission.
  std::size_t bytes_in_at_first_output = 0;
};

/// \brief Reusable mutable run state for streaming one transducer through
/// many documents: the run-local SymbolTable (seeded once from the
/// transducer's immutable base table, snapshot back between documents) and
/// the cell/expr slab arenas, whose free lists and blocks persist across
/// runs — the second document of a serving loop allocates no blocks and
/// copies no table.
///
/// A scratch is bound to one transducer and single-threaded: at most one
/// streaming run may use it at a time, and every run through it must pass
/// the same Mft it was built from. Without a scratch the streaming entry
/// points build this state per run (copying the base table and growing
/// fresh slabs), which is correct but pays the per-run setup a serving loop
/// exists to amortize. QueryRun (core/pipeline.h) is the plan-level wrapper.
class StreamScratch {
 public:
  /// Seeds the run table from `mft`'s base table. The dispatch must already
  /// be compiled (structural for CompiledPlan-built transducers; bare-Mft
  /// callers get it compiled here as a side effect of symbols()).
  explicit StreamScratch(const Mft& mft);
  ~StreamScratch();
  StreamScratch(const StreamScratch&) = delete;
  StreamScratch& operator=(const StreamScratch&) = delete;

  struct Impl;  // private to engine.cc
  Impl* impl() const { return impl_.get(); }

 private:
  std::unique_ptr<Impl> impl_;
};

/// Streams `source` through `mft` into `sink`. The transducer must
/// Validate() beforehand. `scratch`, when given, supplies the run's symbol
/// table and arenas (see StreamScratch); it must have been built from this
/// same `mft`.
Status StreamTransform(const Mft& mft, ByteSource* source, OutputSink* sink,
                       StreamOptions options = {},
                       StreamStats* stats = nullptr,
                       StreamScratch* scratch = nullptr);

/// Streams an already-tokenized event stream (e.g. a PretokSource) through
/// `mft`. The engine binds the source to its run-local symbol table before
/// pulling, so event ids and rule ids share one id space; options.sax is
/// ignored (tokenization happened when the events were produced).
Status StreamTransformEvents(const Mft& mft, EventSource* events,
                             OutputSink* sink, StreamOptions options = {},
                             StreamStats* stats = nullptr,
                             StreamScratch* scratch = nullptr);

/// Convenience wrapper over an in-memory document.
Status StreamTransformString(const Mft& mft, const std::string& xml,
                             OutputSink* sink, StreamOptions options = {},
                             StreamStats* stats = nullptr);

}  // namespace xqmft

#endif  // XQMFT_STREAM_ENGINE_H_
