#include "stream/dag_sink.h"

#include "util/status.h"
#include "util/strings.h"

namespace xqmft {

DagSink::DagSink() { stack_.emplace_back(); }

std::uint32_t DagSink::Intern(Node node) {
  // Structural key: kind, label, child ids.
  std::string key;
  key += node.kind == NodeKind::kText ? 'T' : 'E';
  key += node.label;
  for (std::uint32_t c : node.children) {
    key += '#';
    key += std::to_string(c);
  }
  auto it = intern_.find(key);
  if (it != intern_.end()) return it->second;
  std::uint32_t id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(std::move(node));
  intern_.emplace(std::move(key), id);
  return id;
}

void DagSink::StartElement(std::string_view name) {
  open_names_.emplace_back(name);
  stack_.emplace_back();
}

void DagSink::EndElement(std::string_view name) {
  XQMFT_CHECK(!open_names_.empty() && open_names_.back() == name);
  open_names_.pop_back();
  Node node;
  node.kind = NodeKind::kElement;
  node.label = std::string(name);
  node.children = std::move(stack_.back());
  stack_.pop_back();
  node.size = 1;
  for (std::uint32_t c : node.children) node.size += nodes_[c].size;
  total_nodes_ += 1;  // children were counted when they closed
  std::uint32_t id = Intern(std::move(node));
  stack_.back().push_back(id);
}

void DagSink::Text(std::string_view content) {
  Node node;
  node.kind = NodeKind::kText;
  node.label = std::string(content);
  node.size = 1;
  total_nodes_ += 1;
  std::uint32_t id = Intern(std::move(node));
  stack_.back().push_back(id);
}

std::string DagSink::GrammarToString() const {
  std::string out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    out += StrFormat("#%zu = ", i);
    if (n.kind == NodeKind::kText) {
      out += "\"" + n.label + "\"";
    } else {
      out += n.label + "(";
      for (std::size_t c = 0; c < n.children.size(); ++c) {
        if (c > 0) out += ' ';
        out += "#" + std::to_string(n.children[c]);
      }
      out += ")";
    }
    out += '\n';
  }
  out += "roots:";
  for (std::uint32_t r : roots()) out += " #" + std::to_string(r);
  out += '\n';
  return out;
}

std::string DagSink::Expand(std::uint32_t id) const {
  const Node& n = nodes_[id];
  if (n.kind == NodeKind::kText) return XmlEscape(n.label);
  std::string out = "<" + n.label + ">";
  for (std::uint32_t c : n.children) out += Expand(c);
  out += "</" + n.label + ">";
  return out;
}

}  // namespace xqmft
