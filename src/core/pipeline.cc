#include "core/pipeline.h"

#include "mft/interp.h"
#include "translate/translate.h"
#include "xml/sax_parser.h"

namespace xqmft {

Result<std::unique_ptr<CompiledQuery>> CompiledQuery::Compile(
    const std::string& query_text, PipelineOptions options) {
  std::unique_ptr<CompiledQuery> cq(new CompiledQuery());
  cq->options_ = options;
  XQMFT_ASSIGN_OR_RETURN(cq->query_, ParseQuery(query_text));
  XQMFT_RETURN_NOT_OK(ValidateQuery(*cq->query_));
  XQMFT_ASSIGN_OR_RETURN(cq->raw_mft_, TranslateQuery(*cq->query_));
  if (options.optimize) {
    cq->mft_ = OptimizeMft(cq->raw_mft_, options.optimizer, &cq->report_);
  } else {
    cq->mft_ = cq->raw_mft_;
    cq->report_.before = ComputeStats(cq->raw_mft_);
    cq->report_.after = cq->report_.before;
  }
  return cq;
}

Status CompiledQuery::Stream(ByteSource* source, OutputSink* sink,
                             StreamStats* stats) const {
  return StreamTransform(mft_, source, sink, options_.stream, stats);
}

Status CompiledQuery::StreamFile(const std::string& path, OutputSink* sink,
                                 StreamStats* stats) const {
  // mmap when available: the parser scans the mapping in place and file
  // input pays no stdio copy.
  XQMFT_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> src,
                         MmapSource::Open(path));
  return Stream(src.get(), sink, stats);
}

Status CompiledQuery::StreamEvents(EventSource* events, OutputSink* sink,
                                   StreamStats* stats) const {
  return StreamTransformEvents(mft_, events, sink, options_.stream, stats);
}

Status CompiledQuery::StreamString(const std::string& xml, OutputSink* sink,
                                   StreamStats* stats) const {
  StringSource src(xml);
  return Stream(&src, sink, stats);
}

Result<Forest> CompiledQuery::Evaluate(const Forest& input) const {
  return RunMft(mft_, input);
}

}  // namespace xqmft
