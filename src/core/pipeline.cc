#include "core/pipeline.h"

#include <limits>

#include "mft/interp.h"
#include "parallel/pretok_split.h"
#include "translate/translate.h"
#include "xml/pretok.h"
#include "xml/sax_parser.h"

namespace xqmft {

namespace {

// A pretok stream tokenized under different SAX options replays different
// events; parallel runs check before handing a source to an engine, like the
// CLI does for --pretok-cache.
Status CheckPretokOptions(SaxOptions declared, SaxOptions expected,
                          const std::string& what) {
  if (!SameTokenization(declared, expected)) {
    return Status::InvalidArgument(
        "pretok stream " + what +
        " was tokenized under different SAX options than this pipeline");
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<CompiledQuery>> CompiledQuery::Compile(
    const std::string& query_text, PipelineOptions options) {
  std::unique_ptr<CompiledQuery> cq(new CompiledQuery());
  cq->options_ = options;
  XQMFT_ASSIGN_OR_RETURN(cq->query_, ParseQuery(query_text));
  XQMFT_RETURN_NOT_OK(ValidateQuery(*cq->query_));
  XQMFT_ASSIGN_OR_RETURN(cq->raw_mft_, TranslateQuery(*cq->query_));
  if (options.optimize) {
    cq->mft_ = OptimizeMft(cq->raw_mft_, options.optimizer, &cq->report_);
  } else {
    cq->mft_ = cq->raw_mft_;
    cq->report_.before = ComputeStats(cq->raw_mft_);
    cq->report_.after = cq->report_.before;
  }
  return cq;
}

Status CompiledQuery::Stream(ByteSource* source, OutputSink* sink,
                             StreamStats* stats) const {
  return StreamTransform(mft_, source, sink, options_.stream, stats);
}

Status CompiledQuery::StreamFile(const std::string& path, OutputSink* sink,
                                 StreamStats* stats) const {
  // mmap when available: the parser scans the mapping in place and file
  // input pays no stdio copy.
  XQMFT_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> src,
                         MmapSource::Open(path));
  return Stream(src.get(), sink, stats);
}

Status CompiledQuery::StreamEvents(EventSource* events, OutputSink* sink,
                                   StreamStats* stats) const {
  return StreamTransformEvents(mft_, events, sink, options_.stream, stats);
}

Status CompiledQuery::StreamString(const std::string& xml, OutputSink* sink,
                                   StreamStats* stats) const {
  StringSource src(xml);
  return Stream(&src, sink, stats);
}

Status StreamManyTransform(const Mft& mft,
                           const std::vector<ParallelInput>& inputs,
                           OutputSink* sink, StreamOptions stream,
                           const ParallelOptions& par,
                           std::vector<StreamStats>* stats) {
  if (stream.validator != nullptr) {
    return Status::InvalidArgument(
        "schema validation is per-run stateful and not supported by "
        "parallel runs; validate inputs individually");
  }
  if (stats != nullptr) {
    stats->assign(inputs.size(), StreamStats{});
  }
  // Warm the lazily compiled rule dispatch before fanning out: once built it
  // is read-only and safe to share across worker engines (mft/mft.h).
  mft.dispatch();
  auto item = [&](std::size_t i, OutputSink* item_sink) -> Status {
    const ParallelInput& input = inputs[i];
    StreamStats* item_stats = stats != nullptr ? &(*stats)[i] : nullptr;
    switch (input.kind) {
      case ParallelInput::Kind::kXmlFile: {
        XQMFT_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> src,
                               MmapSource::Open(input.value));
        return StreamTransform(mft, src.get(), item_sink, stream, item_stats);
      }
      case ParallelInput::Kind::kPretokFile: {
        XQMFT_ASSIGN_OR_RETURN(std::unique_ptr<PretokSource> src,
                               PretokSource::OpenFile(input.value));
        XQMFT_RETURN_NOT_OK(CheckPretokOptions(src->declared_options(),
                                               stream.sax, input.value));
        return StreamTransformEvents(mft, src.get(), item_sink, stream,
                                     item_stats);
      }
      case ParallelInput::Kind::kXmlText: {
        StringSource src(input.value);
        return StreamTransform(mft, &src, item_sink, stream, item_stats);
      }
      case ParallelInput::Kind::kPretokBytes: {
        PretokSource src(input.value);
        if (src.header_ok()) {
          XQMFT_RETURN_NOT_OK(CheckPretokOptions(src.declared_options(),
                                                 stream.sax, "(in-memory)"));
        }
        return StreamTransformEvents(mft, &src, item_sink, stream,
                                     item_stats);
      }
    }
    return Status::Internal("unknown ParallelInput kind");
  };
  return ShardedExecutor::Run(inputs.size(), item, sink, par);
}

Status StreamShardedPretokTransform(const Mft& mft, std::string_view pretok,
                                    std::size_t shards, OutputSink* sink,
                                    StreamOptions stream,
                                    const ParallelOptions& par,
                                    std::vector<StreamStats>* stats) {
  if (stream.validator != nullptr) {
    return Status::InvalidArgument(
        "schema validation is per-run stateful and not supported by "
        "parallel runs; validate inputs individually");
  }
  if (shards == 0) {
    // Default: split at every top-level forest boundary (the splitter
    // clamps to the tree count). Deliberately NOT the worker count — on a
    // multi-tree forest the shard decomposition shapes the output (each
    // shard evaluates as its own document), so deriving it from
    // hardware_concurrency would make identical commands produce different
    // output on different machines. Finest-grain splitting is
    // input-deterministic and gives the scheduler the most parallelism;
    // threads only affect timing, never bytes.
    shards = std::numeric_limits<std::size_t>::max();
  }
  XQMFT_ASSIGN_OR_RETURN(PretokShardPlan plan,
                         PlanPretokShards(pretok, shards));
  XQMFT_RETURN_NOT_OK(
      CheckPretokOptions(plan.declared, stream.sax, "(sharded)"));
  if (stats != nullptr) {
    stats->assign(plan.shards.size(), StreamStats{});
  }
  mft.dispatch();  // warm before fan-out (mft/mft.h)
  auto item = [&](std::size_t i, OutputSink* item_sink) -> Status {
    PretokShardSource src(&plan, i);
    return StreamTransformEvents(mft, &src, item_sink, stream,
                                 stats != nullptr ? &(*stats)[i] : nullptr);
  };
  return ShardedExecutor::Run(plan.shards.size(), item, sink, par);
}

Status StreamShardedPretokFileTransform(const Mft& mft,
                                        const std::string& path,
                                        std::size_t shards, OutputSink* sink,
                                        StreamOptions stream,
                                        const ParallelOptions& par,
                                        std::vector<StreamStats>* stats) {
  XQMFT_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> backing,
                         MmapSource::Open(path));
  std::string_view contents;
  std::string owned;
  if (!backing->Contents(&contents)) {
    // No stable mapping (exotic platform): read the file whole.
    char buf[1 << 16];
    std::size_t n;
    while ((n = backing->Read(buf, sizeof buf)) > 0) owned.append(buf, n);
    contents = owned;
  }
  return StreamShardedPretokTransform(mft, contents, shards, sink, stream,
                                      par, stats);
}

Status CompiledQuery::StreamMany(const std::vector<ParallelInput>& inputs,
                                 OutputSink* sink, const ParallelOptions& par,
                                 std::vector<StreamStats>* stats) const {
  return StreamManyTransform(mft_, inputs, sink, options_.stream, par, stats);
}

Status CompiledQuery::StreamShardedPretok(std::string_view pretok,
                                          std::size_t shards, OutputSink* sink,
                                          const ParallelOptions& par,
                                          std::vector<StreamStats>* stats)
    const {
  return StreamShardedPretokTransform(mft_, pretok, shards, sink,
                                      options_.stream, par, stats);
}

Status CompiledQuery::StreamShardedPretokFile(const std::string& path,
                                              std::size_t shards,
                                              OutputSink* sink,
                                              const ParallelOptions& par,
                                              std::vector<StreamStats>* stats)
    const {
  return StreamShardedPretokFileTransform(mft_, path, shards, sink,
                                          options_.stream, par, stats);
}

Result<Forest> CompiledQuery::Evaluate(const Forest& input) const {
  return RunMft(mft_, input);
}

}  // namespace xqmft
