#include "core/pipeline.h"

#include <limits>

#include "lower/lower.h"
#include "mft/dispatch.h"
#include "mft/interp.h"
#include "parallel/pretok_split.h"
#include "translate/translate.h"
#include "xml/pretok.h"
#include "xml/sax_parser.h"

namespace xqmft {

namespace {

// A pretok stream tokenized under different SAX options replays different
// events; parallel runs check before handing a source to an engine, like the
// CLI does for --pretok-cache.
Status CheckPretokOptions(SaxOptions declared, SaxOptions expected,
                          const std::string& what) {
  if (!SameTokenization(declared, expected)) {
    return Status::InvalidArgument(
        "pretok stream " + what +
        " was tokenized under different SAX options than this pipeline");
  }
  return Status::OK();
}

// Shared tail of both builders: reject per-run state in the immutable
// artifact and force every lazily-compiled piece of the Mft (dispatch
// tables, RHS symbol ids, the base symbol table) before the plan escapes —
// from here on the plan is read-only by construction.
Status FinishPlan(const Mft& mft, const PipelineOptions& options) {
  if (options.stream.validator != nullptr) {
    return Status::InvalidArgument(
        "a schema validator is per-run mutable state and cannot be baked "
        "into an immutable CompiledPlan; stream with per-run options via "
        "StreamTransform instead");
  }
  if (options.stream.cancel != nullptr) {
    return Status::InvalidArgument(
        "a cancel token is per-request state and cannot be baked into an "
        "immutable CompiledPlan; pass it per run via ParallelOptions / "
        "MultiQueryOptions or per-run StreamOptions instead");
  }
  XQMFT_RETURN_NOT_OK(mft.Validate());
  mft.dispatch();  // compile-once: warm before the plan is shareable
  // Warm the execution lowering too (or cache the not-lowerable verdict):
  // engine construction then only ever reads the immutable cached result,
  // keeping concurrent runs of a shared plan race-free.
  lower::GetLoweredPlan(mft);
  return Status::OK();
}

}  // namespace

Result<std::shared_ptr<const CompiledPlan>> CompiledPlan::Compile(
    const std::string& query_text, PipelineOptions options) {
  std::shared_ptr<CompiledPlan> plan(new CompiledPlan());
  plan->options_ = options;
  XQMFT_ASSIGN_OR_RETURN(plan->query_, ParseQuery(query_text));
  XQMFT_RETURN_NOT_OK(ValidateQuery(*plan->query_));
  XQMFT_ASSIGN_OR_RETURN(plan->raw_mft_, TranslateQuery(*plan->query_));
  if (options.optimize) {
    plan->mft_ = OptimizeMft(plan->raw_mft_, options.optimizer,
                             &plan->report_);
  } else {
    plan->mft_ = plan->raw_mft_;
    plan->report_.before = ComputeStats(plan->raw_mft_);
    plan->report_.after = plan->report_.before;
  }
  plan->projection_ = DeriveProjection(plan->query_.get());
  XQMFT_RETURN_NOT_OK(FinishPlan(plan->mft_, options));
  return std::shared_ptr<const CompiledPlan>(std::move(plan));
}

Result<std::shared_ptr<const CompiledPlan>> CompiledPlan::FromMft(
    Mft mft, PipelineOptions options) {
  std::shared_ptr<CompiledPlan> plan(new CompiledPlan());
  plan->options_ = options;
  plan->mft_ = std::move(mft);
  plan->projection_ = DeriveProjection(nullptr);
  XQMFT_RETURN_NOT_OK(FinishPlan(plan->mft_, options));
  return std::shared_ptr<const CompiledPlan>(std::move(plan));
}

std::size_t CompiledPlan::ApproxBytes() const {
  // Rule storage dominated by RhsNodes; dispatch rows are width pointers per
  // state; symbols cost their entry plus name bytes. An estimate for cache
  // accounting, not an allocator measurement.
  const RuleDispatch& dispatch = mft_.dispatch();
  const SymbolTable& symbols = mft_.symbols();
  std::size_t bytes = sizeof(CompiledPlan);
  bytes += mft_.Size() * sizeof(RhsNode);
  if (has_query()) bytes += raw_mft_.Size() * sizeof(RhsNode);
  bytes += static_cast<std::size_t>(mft_.num_states()) *
           static_cast<std::size_t>(dispatch.width()) * sizeof(void*);
  for (std::size_t id = 0; id < symbols.size(); ++id) {
    bytes += sizeof(SymbolId) + 2 * sizeof(void*) +
             symbols.name(static_cast<SymbolId>(id)).size();
  }
  return bytes;
}

Status CompiledPlan::Stream(ByteSource* source, OutputSink* sink,
                            StreamStats* stats, StreamScratch* scratch) const {
  return StreamTransform(mft_, source, sink, options_.stream, stats, scratch);
}

Status CompiledPlan::StreamFile(const std::string& path, OutputSink* sink,
                                StreamStats* stats,
                                StreamScratch* scratch) const {
  // mmap when available: the parser scans the mapping in place and file
  // input pays no stdio copy.
  XQMFT_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> src,
                         MmapSource::Open(path));
  return Stream(src.get(), sink, stats, scratch);
}

Status CompiledPlan::StreamEvents(EventSource* events, OutputSink* sink,
                                  StreamStats* stats,
                                  StreamScratch* scratch) const {
  return StreamTransformEvents(mft_, events, sink, options_.stream, stats,
                               scratch);
}

Status CompiledPlan::StreamString(const std::string& xml, OutputSink* sink,
                                  StreamStats* stats,
                                  StreamScratch* scratch) const {
  StringSource src(xml);
  return Stream(&src, sink, stats, scratch);
}

Status StreamManyTransform(const CompiledPlan& plan,
                           const std::vector<ParallelInput>& inputs,
                           OutputSink* sink, const ParallelOptions& par,
                           std::vector<StreamStats>* stats) {
  const Mft& mft = plan.mft();
  // Per-run copy of the plan's baked options: the request's cancel token
  // (never baked — FinishPlan rejects it) rides in via ParallelOptions and
  // reaches every worker engine of the fan-out.
  StreamOptions stream = plan.options().stream;
  if (par.cancel != nullptr) stream.cancel = par.cancel;
  if (stats != nullptr) {
    stats->assign(inputs.size(), StreamStats{});
  }
  // No warm-up call needed here: a CompiledPlan's dispatch was compiled
  // before the plan could be shared, so worker engines below can only ever
  // read it.
  auto item = [&](std::size_t i, OutputSink* item_sink) -> Status {
    const ParallelInput& input = inputs[i];
    StreamStats* item_stats = stats != nullptr ? &(*stats)[i] : nullptr;
    switch (input.kind) {
      case ParallelInput::Kind::kXmlFile: {
        XQMFT_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> src,
                               MmapSource::Open(input.value));
        return StreamTransform(mft, src.get(), item_sink, stream, item_stats);
      }
      case ParallelInput::Kind::kPretokFile: {
        XQMFT_ASSIGN_OR_RETURN(std::unique_ptr<PretokSource> src,
                               PretokSource::OpenFile(input.value));
        XQMFT_RETURN_NOT_OK(CheckPretokOptions(src->declared_options(),
                                               stream.sax, input.value));
        return StreamTransformEvents(mft, src.get(), item_sink, stream,
                                     item_stats);
      }
      case ParallelInput::Kind::kXmlText: {
        StringSource src(input.value);
        return StreamTransform(mft, &src, item_sink, stream, item_stats);
      }
      case ParallelInput::Kind::kPretokBytes: {
        PretokSource src(input.value);
        if (src.header_ok()) {
          XQMFT_RETURN_NOT_OK(CheckPretokOptions(src.declared_options(),
                                                 stream.sax, "(in-memory)"));
        }
        return StreamTransformEvents(mft, &src, item_sink, stream,
                                     item_stats);
      }
    }
    return Status::Internal("unknown ParallelInput kind");
  };
  return ShardedExecutor::Run(inputs.size(), item, sink, par);
}

Status StreamShardedPretokTransform(const CompiledPlan& plan,
                                    std::string_view pretok,
                                    std::size_t shards, OutputSink* sink,
                                    const ParallelOptions& par,
                                    std::vector<StreamStats>* stats) {
  const Mft& mft = plan.mft();
  StreamOptions stream = plan.options().stream;
  if (par.cancel != nullptr) stream.cancel = par.cancel;
  if (shards == 0) {
    // Default: split at every top-level forest boundary (the splitter
    // clamps to the tree count). Deliberately NOT the worker count — on a
    // multi-tree forest the shard decomposition shapes the output (each
    // shard evaluates as its own document), so deriving it from
    // hardware_concurrency would make identical commands produce different
    // output on different machines. Finest-grain splitting is
    // input-deterministic and gives the scheduler the most parallelism;
    // threads only affect timing, never bytes.
    shards = std::numeric_limits<std::size_t>::max();
  }
  XQMFT_ASSIGN_OR_RETURN(PretokShardPlan shard_plan,
                         PlanPretokShards(pretok, shards));
  XQMFT_RETURN_NOT_OK(
      CheckPretokOptions(shard_plan.declared, stream.sax, "(sharded)"));
  if (stats != nullptr) {
    stats->assign(shard_plan.shards.size(), StreamStats{});
  }
  auto item = [&](std::size_t i, OutputSink* item_sink) -> Status {
    PretokShardSource src(&shard_plan, i);
    return StreamTransformEvents(mft, &src, item_sink, stream,
                                 stats != nullptr ? &(*stats)[i] : nullptr);
  };
  return ShardedExecutor::Run(shard_plan.shards.size(), item, sink, par);
}

Status StreamShardedPretokFileTransform(const CompiledPlan& plan,
                                        const std::string& path,
                                        std::size_t shards, OutputSink* sink,
                                        const ParallelOptions& par,
                                        std::vector<StreamStats>* stats) {
  XQMFT_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> backing,
                         MmapSource::Open(path));
  std::string_view contents;
  std::string owned;
  if (!backing->Contents(&contents)) {
    // No stable mapping (exotic platform): read the file whole.
    char buf[1 << 16];
    std::size_t n;
    while ((n = backing->Read(buf, sizeof buf)) > 0) owned.append(buf, n);
    contents = owned;
  }
  return StreamShardedPretokTransform(plan, contents, shards, sink, par,
                                      stats);
}

namespace {

Status BuildMultiSpecs(const std::vector<const CompiledPlan*>& plans,
                       const std::vector<OutputSink*>& sinks,
                       std::vector<MultiPlanSpec>* specs) {
  if (plans.empty()) {
    return Status::InvalidArgument("multi-query run needs at least one plan");
  }
  if (plans.size() != sinks.size()) {
    return Status::InvalidArgument(
        "multi-query run needs exactly one sink per plan");
  }
  specs->reserve(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    if (plans[i] == nullptr || sinks[i] == nullptr) {
      return Status::InvalidArgument("multi-query plan or sink is null");
    }
    MultiPlanSpec spec;
    spec.mft = &plans[i]->mft();
    spec.projection = &plans[i]->projection();
    spec.options = plans[i]->options().stream;
    spec.sink = sinks[i];
    specs->push_back(spec);
  }
  return Status::OK();
}

// Shared tail: copy out per-plan results / run stats and fold plan failures
// into the returned Status per the contract documented in pipeline.h.
Status FinishMultiRun(const MultiQueryRun& run, Status run_status,
                      std::vector<MultiPlanResult>* results,
                      MultiQueryStats* run_stats) {
  if (run_stats != nullptr) *run_stats = run.stats();
  if (results != nullptr) *results = run.results();
  if (!run_status.ok()) return run_status;
  Status first_failure;
  std::size_t failed = 0;
  for (const MultiPlanResult& r : run.results()) {
    if (!r.status.ok()) {
      if (first_failure.ok()) first_failure = r.status;
      ++failed;
    }
  }
  if (!first_failure.ok() &&
      (results == nullptr || failed == run.results().size())) {
    return first_failure;
  }
  return Status::OK();
}

}  // namespace

Status StreamAllTransform(const std::vector<const CompiledPlan*>& plans,
                          ByteSource* source,
                          const std::vector<OutputSink*>& sinks,
                          const MultiQueryOptions& options,
                          std::vector<MultiPlanResult>* results,
                          MultiQueryStats* run_stats) {
  std::vector<MultiPlanSpec> specs;
  XQMFT_RETURN_NOT_OK(BuildMultiSpecs(plans, sinks, &specs));
  const SaxOptions sax = plans.front()->options().stream.sax;
  MultiQueryRun run(std::move(specs), options);
  Status st = run.RunSource(source, sax);
  return FinishMultiRun(run, st, results, run_stats);
}

Status StreamAllTransformEvents(const std::vector<const CompiledPlan*>& plans,
                                EventSource* events,
                                const std::vector<OutputSink*>& sinks,
                                const MultiQueryOptions& options,
                                std::vector<MultiPlanResult>* results,
                                MultiQueryStats* run_stats) {
  std::vector<MultiPlanSpec> specs;
  XQMFT_RETURN_NOT_OK(BuildMultiSpecs(plans, sinks, &specs));
  MultiQueryRun run(std::move(specs), options);
  Status st = run.Run(events);
  return FinishMultiRun(run, st, results, run_stats);
}

Status StreamAllTransformInput(const std::vector<const CompiledPlan*>& plans,
                               const ParallelInput& input,
                               const std::vector<OutputSink*>& sinks,
                               const MultiQueryOptions& options,
                               std::vector<MultiPlanResult>* results,
                               MultiQueryStats* run_stats) {
  if (plans.empty() || plans.front() == nullptr) {
    return Status::InvalidArgument("multi-query run needs at least one plan");
  }
  const SaxOptions sax = plans.front()->options().stream.sax;
  switch (input.kind) {
    case ParallelInput::Kind::kXmlFile: {
      XQMFT_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> src,
                             MmapSource::Open(input.value));
      return StreamAllTransform(plans, src.get(), sinks, options, results,
                                run_stats);
    }
    case ParallelInput::Kind::kPretokFile: {
      XQMFT_ASSIGN_OR_RETURN(std::unique_ptr<PretokSource> src,
                             PretokSource::OpenFile(input.value));
      XQMFT_RETURN_NOT_OK(
          CheckPretokOptions(src->declared_options(), sax, input.value));
      return StreamAllTransformEvents(plans, src.get(), sinks, options,
                                      results, run_stats);
    }
    case ParallelInput::Kind::kXmlText: {
      StringSource src(input.value);
      return StreamAllTransform(plans, &src, sinks, options, results,
                                run_stats);
    }
    case ParallelInput::Kind::kPretokBytes: {
      PretokSource src(input.value);
      if (src.header_ok()) {
        XQMFT_RETURN_NOT_OK(
            CheckPretokOptions(src.declared_options(), sax, "(in-memory)"));
      }
      return StreamAllTransformEvents(plans, &src, sinks, options, results,
                                      run_stats);
    }
  }
  return Status::Internal("unknown ParallelInput kind");
}

Status CompiledPlan::StreamMany(const std::vector<ParallelInput>& inputs,
                                OutputSink* sink, const ParallelOptions& par,
                                std::vector<StreamStats>* stats) const {
  return StreamManyTransform(*this, inputs, sink, par, stats);
}

Status CompiledPlan::StreamShardedPretok(std::string_view pretok,
                                         std::size_t shards, OutputSink* sink,
                                         const ParallelOptions& par,
                                         std::vector<StreamStats>* stats)
    const {
  return StreamShardedPretokTransform(*this, pretok, shards, sink, par,
                                      stats);
}

Status CompiledPlan::StreamShardedPretokFile(const std::string& path,
                                             std::size_t shards,
                                             OutputSink* sink,
                                             const ParallelOptions& par,
                                             std::vector<StreamStats>* stats)
    const {
  return StreamShardedPretokFileTransform(*this, path, shards, sink, par,
                                          stats);
}

Result<Forest> CompiledPlan::Evaluate(const Forest& input) const {
  return RunMft(mft_, input);
}

QueryRun::QueryRun(std::shared_ptr<const CompiledPlan> plan)
    : plan_(std::move(plan)), scratch_(plan_->mft()) {}

Status QueryRun::Stream(ByteSource* source, OutputSink* sink,
                        StreamStats* stats) {
  return plan_->Stream(source, sink, stats, &scratch_);
}

Status QueryRun::StreamFile(const std::string& path, OutputSink* sink,
                            StreamStats* stats) {
  return plan_->StreamFile(path, sink, stats, &scratch_);
}

Status QueryRun::StreamString(const std::string& xml, OutputSink* sink,
                              StreamStats* stats) {
  return plan_->StreamString(xml, sink, stats, &scratch_);
}

Status QueryRun::StreamEvents(EventSource* events, OutputSink* sink,
                              StreamStats* stats) {
  return plan_->StreamEvents(events, sink, stats, &scratch_);
}

Result<std::unique_ptr<CompiledQuery>> CompiledQuery::Compile(
    const std::string& query_text, PipelineOptions options) {
  std::unique_ptr<CompiledQuery> cq(new CompiledQuery());
  XQMFT_ASSIGN_OR_RETURN(cq->plan_,
                         CompiledPlan::Compile(query_text, options));
  return cq;
}

}  // namespace xqmft
