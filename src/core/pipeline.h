// Public facade: the paper's full pipeline in one object.
//
//   MinXQuery text --parse--> AST --T,F (Section 3)--> MFT
//                  --optimize (Section 4.1)--> streaming-friendly MFT
//                  --streaming engine [30]--> XML-to-XML stream processor
//
// Typical use:
//
//   auto cq = CompiledQuery::Compile("<out>{$input//a}</out>");
//   StringSink sink;
//   cq.value()->StreamFile("input.xml", &sink);
#ifndef XQMFT_CORE_PIPELINE_H_
#define XQMFT_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mft/mft.h"
#include "mft/optimize.h"
#include "parallel/sharded_executor.h"
#include "stream/engine.h"
#include "util/status.h"
#include "xml/forest.h"
#include "xquery/ast.h"

namespace xqmft {

struct PipelineOptions {
  /// Run the Section 4.1 parameter/stay/reachability optimizations. The
  /// unoptimized transducer buffers the whole input (Figure 4's no-opt
  /// curves); disable only for measurement.
  bool optimize = true;
  OptimizeOptions optimizer;
  StreamOptions stream;
};

/// \brief One document of a parallel workload (see CompiledQuery::StreamMany).
///
/// The in-memory kinds let tests and embedders shard without touching the
/// filesystem; `value` is a path for the file kinds and the raw bytes
/// otherwise.
struct ParallelInput {
  enum class Kind {
    kXmlFile,      ///< text XML file (memory-mapped when possible)
    kPretokFile,   ///< pretok event cache file
    kXmlText,      ///< in-memory text XML
    kPretokBytes,  ///< in-memory pretok event stream
  };

  Kind kind = Kind::kXmlFile;
  std::string value;

  static ParallelInput XmlFile(std::string path) {
    return {Kind::kXmlFile, std::move(path)};
  }
  static ParallelInput PretokFile(std::string path) {
    return {Kind::kPretokFile, std::move(path)};
  }
  static ParallelInput XmlText(std::string xml) {
    return {Kind::kXmlText, std::move(xml)};
  }
  static ParallelInput PretokBytes(std::string bytes) {
    return {Kind::kPretokBytes, std::move(bytes)};
  }
};

/// Engine-level parallel streaming (the CompiledQuery methods below
/// delegate here; the CLI's hand-written-MFT path uses these directly).
/// Contracts as documented on CompiledQuery::StreamMany /
/// StreamShardedPretok.
Status StreamManyTransform(const Mft& mft,
                           const std::vector<ParallelInput>& inputs,
                           OutputSink* sink, StreamOptions stream = {},
                           const ParallelOptions& par = {},
                           std::vector<StreamStats>* stats = nullptr);
Status StreamShardedPretokTransform(const Mft& mft, std::string_view pretok,
                                    std::size_t shards, OutputSink* sink,
                                    StreamOptions stream = {},
                                    const ParallelOptions& par = {},
                                    std::vector<StreamStats>* stats = nullptr);
Status StreamShardedPretokFileTransform(
    const Mft& mft, const std::string& path, std::size_t shards,
    OutputSink* sink, StreamOptions stream = {}, const ParallelOptions& par = {},
    std::vector<StreamStats>* stats = nullptr);

/// \brief A compiled MinXQuery program, ready to stream documents.
class CompiledQuery {
 public:
  /// Parses, validates, translates, and (by default) optimizes.
  static Result<std::unique_ptr<CompiledQuery>> Compile(
      const std::string& query_text, PipelineOptions options = {});

  /// The executable transducer (optimized if so configured).
  const Mft& mft() const { return mft_; }
  /// The transducer as produced by the Section 3 translation.
  const Mft& unoptimized_mft() const { return raw_mft_; }
  /// What the optimizer did.
  const OptimizeReport& optimize_report() const { return report_; }
  /// The parsed query.
  const QueryExpr& query() const { return *query_; }

  /// Streams a document through the transducer.
  Status Stream(ByteSource* source, OutputSink* sink,
                StreamStats* stats = nullptr) const;
  Status StreamFile(const std::string& path, OutputSink* sink,
                    StreamStats* stats = nullptr) const;
  Status StreamString(const std::string& xml, OutputSink* sink,
                      StreamStats* stats = nullptr) const;
  /// Streams an already-tokenized event stream (e.g. a pretok cache).
  Status StreamEvents(EventSource* events, OutputSink* sink,
                      StreamStats* stats = nullptr) const;

  /// Document-set sharding: streams every input through its own engine
  /// (private SymbolTable copy, private arenas) across
  /// `par.threads` workers, merging outputs into `sink` in input order —
  /// byte-identical to streaming the inputs serially, for any thread count.
  /// On failure the run returns the lowest-index failed input's error and
  /// the sink holds the in-order output of the successful inputs before it.
  /// Schema validation (options.stream.validator) is per-run stateful and
  /// rejected here. `stats`, when given, is resized to one entry per input.
  Status StreamMany(const std::vector<ParallelInput>& inputs, OutputSink* sink,
                    const ParallelOptions& par = {},
                    std::vector<StreamStats>* stats = nullptr) const;

  /// Single-document sharding: splits one pretok event stream at top-level
  /// forest boundaries into at most `shards` byte ranges (0 = one shard
  /// per top-level tree, so the decomposition — and therefore the output on
  /// a multi-tree forest — depends only on the input, never on the machine)
  /// and evaluates each range as its own document, merging outputs in input
  /// order. For a single-rooted document the split yields
  /// one shard and the output is byte-identical to StreamEvents over the
  /// whole stream; for a multi-tree forest each shard's trees evaluate as an
  /// independent forest (see parallel/pretok_split.h for the contract).
  /// `pretok` must outlive the call and match this pipeline's SAX options.
  Status StreamShardedPretok(std::string_view pretok, std::size_t shards,
                             OutputSink* sink, const ParallelOptions& par = {},
                             std::vector<StreamStats>* stats = nullptr) const;

  /// StreamShardedPretok over a pretok cache file (memory-mapped).
  Status StreamShardedPretokFile(const std::string& path, std::size_t shards,
                                 OutputSink* sink,
                                 const ParallelOptions& par = {},
                                 std::vector<StreamStats>* stats
                                 = nullptr) const;

  /// Non-streaming reference evaluation (whole document in memory); used
  /// for differential testing and debugging.
  Result<Forest> Evaluate(const Forest& input) const;

 private:
  CompiledQuery() = default;

  std::unique_ptr<QueryExpr> query_;
  Mft raw_mft_;
  Mft mft_;
  OptimizeReport report_;
  PipelineOptions options_;
};

}  // namespace xqmft

#endif  // XQMFT_CORE_PIPELINE_H_
