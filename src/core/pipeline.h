// Public facade: the paper's full pipeline in one object.
//
//   MinXQuery text --parse--> AST --T,F (Section 3)--> MFT
//                  --optimize (Section 4.1)--> streaming-friendly MFT
//                  --streaming engine [30]--> XML-to-XML stream processor
//
// The compiled artifact is split along the serving boundary the paper's
// pitch implies (translate once, stream arbitrarily many documents):
//
//   CompiledPlan  — immutable and shareable: the parsed query, the
//                   translated and optimized MFT with its rule dispatch
//                   fully compiled and its base SymbolTable interned at
//                   build time. Safe to share read-only across any number
//                   of concurrent runs and threads; what a query cache
//                   hands out.
//   QueryRun      — cheap mutable per-run state bound to one plan: the
//                   run-local symbol-table snapshot and the slab arenas,
//                   reusable across consecutive documents of a serving
//                   loop. Single-threaded; make one per worker.
//   CompiledQuery — thin convenience wrapper owning a shared plan; the
//                   one-query one-caller API the examples and the CLI use.
//
// Typical use:
//
//   auto cq = CompiledQuery::Compile("<out>{$input//a}</out>");
//   StringSink sink;
//   cq.value()->StreamFile("input.xml", &sink);
#ifndef XQMFT_CORE_PIPELINE_H_
#define XQMFT_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mft/mft.h"
#include "mft/optimize.h"
#include "multiquery/multi_run.h"
#include "parallel/sharded_executor.h"
#include "stream/engine.h"
#include "util/status.h"
#include "xml/forest.h"
#include "xquery/ast.h"

namespace xqmft {

struct PipelineOptions {
  /// Run the Section 4.1 parameter/stay/reachability optimizations. The
  /// unoptimized transducer buffers the whole input (Figure 4's no-opt
  /// curves); disable only for measurement.
  bool optimize = true;
  OptimizeOptions optimizer;
  /// Streaming defaults baked into the plan. stream.validator must be null:
  /// a schema validator is per-run stateful and would be mutable state
  /// reachable from every concurrent run of a shared plan — validated runs
  /// go through the free StreamTransform with per-run options instead.
  StreamOptions stream;
};

/// \brief One document of a parallel workload (see CompiledPlan::StreamMany).
///
/// The in-memory kinds let tests and embedders shard without touching the
/// filesystem; `value` is a path for the file kinds and the raw bytes
/// otherwise.
struct ParallelInput {
  enum class Kind {
    kXmlFile,      ///< text XML file (memory-mapped when possible)
    kPretokFile,   ///< pretok event cache file
    kXmlText,      ///< in-memory text XML
    kPretokBytes,  ///< in-memory pretok event stream
  };

  Kind kind = Kind::kXmlFile;
  std::string value;

  static ParallelInput XmlFile(std::string path) {
    return {Kind::kXmlFile, std::move(path)};
  }
  static ParallelInput PretokFile(std::string path) {
    return {Kind::kPretokFile, std::move(path)};
  }
  static ParallelInput XmlText(std::string xml) {
    return {Kind::kXmlText, std::move(xml)};
  }
  static ParallelInput PretokBytes(std::string bytes) {
    return {Kind::kPretokBytes, std::move(bytes)};
  }
};

/// \brief An immutable, shareable compiled query: parse + translate +
/// optimize happen exactly once, the rule dispatch and base symbol table
/// are compiled eagerly at build time, and nothing is mutated afterwards.
///
/// Immutability is structural, not conventional: every accessor is const,
/// the lazily-cached pieces of the Mft (dispatch tables, interned rule ids)
/// are forced before the constructor returns, and a plan with a schema
/// validator (per-run mutable state) is rejected at build time. A
/// `shared_ptr<const CompiledPlan>` can therefore be handed to any number
/// of concurrent runs, worker threads, or cache entries without
/// synchronization — the PR-4 "warm the dispatch before fanning out"
/// documentation rule is now enforced by this type, and the parallel entry
/// points take a plan instead of a bare transducer for exactly that reason.
class CompiledPlan {
 public:
  /// Parses, validates, translates, optimizes (by default), and compiles
  /// the rule dispatch.
  static Result<std::shared_ptr<const CompiledPlan>> Compile(
      const std::string& query_text, PipelineOptions options = {});

  /// Wraps a hand-written transducer (e.g. the CLI's `mft` command) in the
  /// same immutable serving artifact: validates, compiles the dispatch,
  /// shares like any other plan. No query or optimize report is attached.
  static Result<std::shared_ptr<const CompiledPlan>> FromMft(
      Mft mft, PipelineOptions options = {});

  /// The executable transducer (optimized if so configured). Its dispatch
  /// and base symbol table are compiled; treat as read-only.
  const Mft& mft() const { return mft_; }
  /// The transducer as produced by the Section 3 translation (empty for
  /// FromMft-built plans).
  const Mft& unoptimized_mft() const { return raw_mft_; }
  /// What the optimizer did.
  const OptimizeReport& optimize_report() const { return report_; }
  /// True when this plan was compiled from query text (Compile, not
  /// FromMft); query() may only be called then.
  bool has_query() const { return query_ != nullptr; }
  /// The parsed query.
  const QueryExpr& query() const { return *query_; }
  const PipelineOptions& options() const { return options_; }

  /// The plan's source projection (multiquery/projection.h), derived once at
  /// compile time: the absolute paths whose matches the query can observe,
  /// or whole_document when nothing can be skipped (FromMft plans, queries
  /// outside the projectable fragment). Part of the immutable artifact so
  /// multi-query runs union projections without re-walking query ASTs.
  const QueryProjection& projection() const { return projection_; }

  /// Approximate resident bytes of the compiled artifact (states, rules,
  /// dispatch tables, interned symbols) — the accounting a query cache
  /// reports; an estimate, not an allocator measurement.
  std::size_t ApproxBytes() const;

  /// Streams a document through the transducer. Thread-safe: concurrent
  /// calls on one plan each build (or borrow via `scratch`) their own run
  /// state.
  Status Stream(ByteSource* source, OutputSink* sink,
                StreamStats* stats = nullptr,
                StreamScratch* scratch = nullptr) const;
  Status StreamFile(const std::string& path, OutputSink* sink,
                    StreamStats* stats = nullptr,
                    StreamScratch* scratch = nullptr) const;
  Status StreamString(const std::string& xml, OutputSink* sink,
                      StreamStats* stats = nullptr,
                      StreamScratch* scratch = nullptr) const;
  /// Streams an already-tokenized event stream (e.g. a pretok cache).
  Status StreamEvents(EventSource* events, OutputSink* sink,
                      StreamStats* stats = nullptr,
                      StreamScratch* scratch = nullptr) const;

  /// Document-set sharding: streams every input through its own engine
  /// (private SymbolTable copy, private arenas) across
  /// `par.threads` workers, merging outputs into `sink` in input order —
  /// byte-identical to streaming the inputs serially, for any thread count.
  /// On failure the run returns the lowest-index failed input's error and
  /// the sink holds the in-order output of the successful inputs before it.
  /// `stats`, when given, is resized to one entry per input.
  Status StreamMany(const std::vector<ParallelInput>& inputs, OutputSink* sink,
                    const ParallelOptions& par = {},
                    std::vector<StreamStats>* stats = nullptr) const;

  /// Single-document sharding: splits one pretok event stream at top-level
  /// forest boundaries into at most `shards` byte ranges (0 = one shard
  /// per top-level tree, so the decomposition — and therefore the output on
  /// a multi-tree forest — depends only on the input, never on the machine)
  /// and evaluates each range as its own document, merging outputs in input
  /// order. For a single-rooted document the split yields
  /// one shard and the output is byte-identical to StreamEvents over the
  /// whole stream; for a multi-tree forest each shard's trees evaluate as an
  /// independent forest (see parallel/pretok_split.h for the contract).
  /// `pretok` must outlive the call and match this plan's SAX options.
  Status StreamShardedPretok(std::string_view pretok, std::size_t shards,
                             OutputSink* sink, const ParallelOptions& par = {},
                             std::vector<StreamStats>* stats = nullptr) const;

  /// StreamShardedPretok over a pretok cache file (memory-mapped).
  Status StreamShardedPretokFile(const std::string& path, std::size_t shards,
                                 OutputSink* sink,
                                 const ParallelOptions& par = {},
                                 std::vector<StreamStats>* stats
                                 = nullptr) const;

  /// Non-streaming reference evaluation (whole document in memory); used
  /// for differential testing and debugging.
  Result<Forest> Evaluate(const Forest& input) const;

 private:
  CompiledPlan() = default;

  std::unique_ptr<QueryExpr> query_;
  Mft raw_mft_;
  Mft mft_;
  OptimizeReport report_;
  PipelineOptions options_;
  QueryProjection projection_;
};

/// Single-pass multi-query streaming: one tokenization of `source` feeds
/// every plan's engine at once (multiquery/multi_run.h), with the union of
/// the plans' projections skipping unmatchable subtrees at the source. One
/// sink per plan, in plan order; each plan streams under its own baked
/// options (step budget etc.), and the plans' SAX options must tokenize
/// identically.
///
/// Per-plan engine failures are isolated: siblings finish normally and the
/// failure lands in `results`. The returned Status covers setup and
/// source-level (XML) errors — plus, so failures cannot go unobserved, the
/// lowest-index plan failure when `results` is not requested or when every
/// plan failed.
Status StreamAllTransform(const std::vector<const CompiledPlan*>& plans,
                          ByteSource* source,
                          const std::vector<OutputSink*>& sinks,
                          const MultiQueryOptions& options = {},
                          std::vector<MultiPlanResult>* results = nullptr,
                          MultiQueryStats* run_stats = nullptr);

/// StreamAllTransform over an already-tokenized event stream (e.g. a pretok
/// cache); the caller is responsible for tokenization compatibility, as
/// with StreamTransformEvents.
Status StreamAllTransformEvents(const std::vector<const CompiledPlan*>& plans,
                                EventSource* events,
                                const std::vector<OutputSink*>& sinks,
                                const MultiQueryOptions& options = {},
                                std::vector<MultiPlanResult>* results = nullptr,
                                MultiQueryStats* run_stats = nullptr);

/// StreamAllTransform over any ParallelInput kind (text or pretok, file or
/// in-memory) — the one-document multi-plan counterpart of
/// StreamManyTransform's per-input dispatch, shared by the service batch
/// path and the CLI.
Status StreamAllTransformInput(const std::vector<const CompiledPlan*>& plans,
                               const ParallelInput& input,
                               const std::vector<OutputSink*>& sinks,
                               const MultiQueryOptions& options = {},
                               std::vector<MultiPlanResult>* results = nullptr,
                               MultiQueryStats* run_stats = nullptr);

/// Engine-level parallel streaming (the CompiledPlan methods above delegate
/// here). Taking a CompiledPlan — not a bare Mft — is what makes the
/// warm-before-fanout contract structural: a plan's dispatch was compiled
/// before the plan existed, so worker engines can only ever share it
/// read-only. Contracts as documented on CompiledPlan::StreamMany /
/// StreamShardedPretok.
Status StreamManyTransform(const CompiledPlan& plan,
                           const std::vector<ParallelInput>& inputs,
                           OutputSink* sink, const ParallelOptions& par = {},
                           std::vector<StreamStats>* stats = nullptr);
Status StreamShardedPretokTransform(const CompiledPlan& plan,
                                    std::string_view pretok,
                                    std::size_t shards, OutputSink* sink,
                                    const ParallelOptions& par = {},
                                    std::vector<StreamStats>* stats = nullptr);
Status StreamShardedPretokFileTransform(
    const CompiledPlan& plan, const std::string& path, std::size_t shards,
    OutputSink* sink, const ParallelOptions& par = {},
    std::vector<StreamStats>* stats = nullptr);

/// \brief Cheap per-run execution handle over a shared immutable plan: owns
/// the mutable state one streaming run needs (run-local symbol-table
/// snapshot, cell/expr slab arenas) and keeps it warm across documents, so
/// a serving loop pays table copy and block allocation once per worker, not
/// once per document. Single-threaded; create one per worker. Holds a
/// shared reference to the plan, so a cached plan stays alive while any
/// run over it is in flight.
class QueryRun {
 public:
  explicit QueryRun(std::shared_ptr<const CompiledPlan> plan);

  const CompiledPlan& plan() const { return *plan_; }

  Status Stream(ByteSource* source, OutputSink* sink,
                StreamStats* stats = nullptr);
  Status StreamFile(const std::string& path, OutputSink* sink,
                    StreamStats* stats = nullptr);
  Status StreamString(const std::string& xml, OutputSink* sink,
                      StreamStats* stats = nullptr);
  Status StreamEvents(EventSource* events, OutputSink* sink,
                      StreamStats* stats = nullptr);

 private:
  std::shared_ptr<const CompiledPlan> plan_;
  StreamScratch scratch_;
};

/// \brief A compiled MinXQuery program, ready to stream documents: a thin
/// owner of a shared CompiledPlan, kept as the single-query convenience API
/// (examples, CLI, benches). Serving layers share plan() directly.
class CompiledQuery {
 public:
  /// Parses, validates, translates, and (by default) optimizes.
  static Result<std::unique_ptr<CompiledQuery>> Compile(
      const std::string& query_text, PipelineOptions options = {});

  /// The shared immutable plan (never null).
  const std::shared_ptr<const CompiledPlan>& plan() const { return plan_; }

  const Mft& mft() const { return plan_->mft(); }
  const Mft& unoptimized_mft() const { return plan_->unoptimized_mft(); }
  const OptimizeReport& optimize_report() const {
    return plan_->optimize_report();
  }
  const QueryExpr& query() const { return plan_->query(); }

  Status Stream(ByteSource* source, OutputSink* sink,
                StreamStats* stats = nullptr) const {
    return plan_->Stream(source, sink, stats);
  }
  Status StreamFile(const std::string& path, OutputSink* sink,
                    StreamStats* stats = nullptr) const {
    return plan_->StreamFile(path, sink, stats);
  }
  Status StreamString(const std::string& xml, OutputSink* sink,
                      StreamStats* stats = nullptr) const {
    return plan_->StreamString(xml, sink, stats);
  }
  Status StreamEvents(EventSource* events, OutputSink* sink,
                      StreamStats* stats = nullptr) const {
    return plan_->StreamEvents(events, sink, stats);
  }
  Status StreamMany(const std::vector<ParallelInput>& inputs, OutputSink* sink,
                    const ParallelOptions& par = {},
                    std::vector<StreamStats>* stats = nullptr) const {
    return plan_->StreamMany(inputs, sink, par, stats);
  }
  Status StreamShardedPretok(std::string_view pretok, std::size_t shards,
                             OutputSink* sink, const ParallelOptions& par = {},
                             std::vector<StreamStats>* stats
                             = nullptr) const {
    return plan_->StreamShardedPretok(pretok, shards, sink, par, stats);
  }
  Status StreamShardedPretokFile(const std::string& path, std::size_t shards,
                                 OutputSink* sink,
                                 const ParallelOptions& par = {},
                                 std::vector<StreamStats>* stats
                                 = nullptr) const {
    return plan_->StreamShardedPretokFile(path, shards, sink, par, stats);
  }
  Result<Forest> Evaluate(const Forest& input) const {
    return plan_->Evaluate(input);
  }

 private:
  CompiledQuery() = default;

  std::shared_ptr<const CompiledPlan> plan_;
};

}  // namespace xqmft

#endif  // XQMFT_CORE_PIPELINE_H_
