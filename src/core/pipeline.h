// Public facade: the paper's full pipeline in one object.
//
//   MinXQuery text --parse--> AST --T,F (Section 3)--> MFT
//                  --optimize (Section 4.1)--> streaming-friendly MFT
//                  --streaming engine [30]--> XML-to-XML stream processor
//
// Typical use:
//
//   auto cq = CompiledQuery::Compile("<out>{$input//a}</out>");
//   StringSink sink;
//   cq.value()->StreamFile("input.xml", &sink);
#ifndef XQMFT_CORE_PIPELINE_H_
#define XQMFT_CORE_PIPELINE_H_

#include <memory>
#include <string>

#include "mft/mft.h"
#include "mft/optimize.h"
#include "stream/engine.h"
#include "util/status.h"
#include "xml/forest.h"
#include "xquery/ast.h"

namespace xqmft {

struct PipelineOptions {
  /// Run the Section 4.1 parameter/stay/reachability optimizations. The
  /// unoptimized transducer buffers the whole input (Figure 4's no-opt
  /// curves); disable only for measurement.
  bool optimize = true;
  OptimizeOptions optimizer;
  StreamOptions stream;
};

/// \brief A compiled MinXQuery program, ready to stream documents.
class CompiledQuery {
 public:
  /// Parses, validates, translates, and (by default) optimizes.
  static Result<std::unique_ptr<CompiledQuery>> Compile(
      const std::string& query_text, PipelineOptions options = {});

  /// The executable transducer (optimized if so configured).
  const Mft& mft() const { return mft_; }
  /// The transducer as produced by the Section 3 translation.
  const Mft& unoptimized_mft() const { return raw_mft_; }
  /// What the optimizer did.
  const OptimizeReport& optimize_report() const { return report_; }
  /// The parsed query.
  const QueryExpr& query() const { return *query_; }

  /// Streams a document through the transducer.
  Status Stream(ByteSource* source, OutputSink* sink,
                StreamStats* stats = nullptr) const;
  Status StreamFile(const std::string& path, OutputSink* sink,
                    StreamStats* stats = nullptr) const;
  Status StreamString(const std::string& xml, OutputSink* sink,
                      StreamStats* stats = nullptr) const;
  /// Streams an already-tokenized event stream (e.g. a pretok cache).
  Status StreamEvents(EventSource* events, OutputSink* sink,
                      StreamStats* stats = nullptr) const;

  /// Non-streaming reference evaluation (whole document in memory); used
  /// for differential testing and debugging.
  Result<Forest> Evaluate(const Forest& input) const;

 private:
  CompiledQuery() = default;

  std::unique_ptr<QueryExpr> query_;
  Mft raw_mft_;
  Mft mft_;
  OptimizeReport report_;
  PipelineOptions options_;
};

}  // namespace xqmft

#endif  // XQMFT_CORE_PIPELINE_H_
