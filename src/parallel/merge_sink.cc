#include "parallel/merge_sink.h"

#include "util/varint.h"

namespace xqmft {

void EventBuffer::Put(Op op, std::string_view payload) {
  log_.push_back(static_cast<char>(op));
  PutVarint(&log_, payload.size());
  log_.append(payload.data(), payload.size());
}

void EventBuffer::Replay(OutputSink* sink) const {
  std::size_t pos = 0;
  while (pos < log_.size()) {
    char op = log_[pos++];
    std::uint64_t len = 0;
    XQMFT_CHECK(ReadVarint(log_, &pos, &len));
    XQMFT_CHECK(log_.size() - pos >= len);
    std::string_view payload(log_.data() + pos, len);
    pos += len;
    switch (op) {
      case kStart:
        sink->StartElement(payload);
        break;
      case kEnd:
        sink->EndElement(payload);
        break;
      case kText:
        sink->Text(payload);
        break;
      default:
        XQMFT_CHECK(false && "corrupt EventBuffer frame");
    }
  }
}

OrderedMerge::OrderedMerge(OutputSink* downstream, std::size_t shard_count)
    : downstream_(downstream), slots_(shard_count) {}

void OrderedMerge::Commit(std::size_t index, EventBuffer buffer,
                          Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  XQMFT_CHECK(index < slots_.size());
  Slot& slot = slots_[index];
  XQMFT_CHECK(!slot.committed);
  slot.committed = true;
  slot.buffer = std::move(buffer);
  slot.status = std::move(status);
  if (!slot.status.ok()) error_ = true;
  // Flush the committed prefix. Stop permanently at the first failed slot:
  // downstream only ever sees the in-order output of an OK prefix.
  while (next_ < slots_.size() && slots_[next_].committed &&
         slots_[next_].status.ok()) {
    slots_[next_].buffer.Replay(downstream_);
    slots_[next_].buffer.clear();
    ++next_;
  }
}

bool OrderedMerge::saw_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

Status OrderedMerge::Finish() {
  std::lock_guard<std::mutex> lock(mu_);
  bool any_uncommitted = false;
  Status first_error = Status::OK();
  for (const Slot& slot : slots_) {
    if (!slot.committed) {
      any_uncommitted = true;
      continue;
    }
    if (!slot.status.ok() && first_error.ok()) first_error = slot.status;
  }
  // A hole with no error means a worker vanished without committing — an
  // executor invariant violation, not a data condition.
  XQMFT_CHECK(!any_uncommitted || !first_error.ok());
  return first_error;
}

}  // namespace xqmft
