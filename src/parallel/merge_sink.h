// Deterministic ordered merge of per-shard output streams.
//
// Parallel shard workers finish in whatever order the scheduler produces,
// but the system's determinism contract is that output reaches the
// downstream sink in *input order*, byte-identical to a serial run. Each
// worker therefore records its shard's output events into an EventBuffer (a
// compact framed byte log, not a sink-specific serialization, so any
// OutputSink — StringSink, DagSink, CountingSink — can sit downstream), and
// an OrderedMerge replays committed buffers strictly by shard index.
//
// Error contract: the first (lowest shard index) non-OK commit becomes the
// whole run's Status; the downstream sink receives exactly the in-order
// output of the successful shards before it and nothing after. Commit never
// blocks on other shards, so a failing worker cannot deadlock the merge.
#ifndef XQMFT_PARALLEL_MERGE_SINK_H_
#define XQMFT_PARALLEL_MERGE_SINK_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xml/events.h"

namespace xqmft {

/// \brief OutputSink that records events into a flat framed byte log.
///
/// Frame: 1 opcode byte (start/end/text), LEB128 payload length, payload
/// bytes — the same varint coding as the pretok format, so a shard's output
/// costs one contiguous string however many events it holds.
class EventBuffer : public OutputSink {
 public:
  void StartElement(std::string_view name) override { Put(kStart, name); }
  void EndElement(std::string_view name) override { Put(kEnd, name); }
  void Text(std::string_view content) override { Put(kText, content); }

  /// Replays every recorded event, in order, into `sink`.
  void Replay(OutputSink* sink) const;

  bool empty() const { return log_.empty(); }
  std::size_t bytes() const { return log_.size(); }
  void clear() { log_.clear(); }

 private:
  enum Op : char { kStart = 1, kEnd = 2, kText = 3 };

  void Put(Op op, std::string_view payload);

  std::string log_;
};

/// \brief Reorders shard outputs back into input order.
///
/// One slot per shard. Workers call Commit(index, ...) exactly once, from
/// any thread, in any order; the merge flushes the longest committed prefix
/// to the downstream sink under its lock. Finish() (call after all workers
/// stopped) returns the run's overall Status.
class OrderedMerge {
 public:
  OrderedMerge(OutputSink* downstream, std::size_t shard_count);

  /// Hands over shard `index`'s output and completion status. Thread-safe.
  void Commit(std::size_t index, EventBuffer buffer, Status status);

  /// True once any committed shard failed (cancellation hint for workers;
  /// the authoritative status is Finish()).
  bool saw_error() const;

  /// Overall run status: OK iff every shard committed OK; otherwise the
  /// error of the lowest-index failed shard. Uncommitted slots are only
  /// legal after an error (workers cancelled); with no error they are an
  /// executor bug and abort.
  Status Finish();

 private:
  struct Slot {
    bool committed = false;
    EventBuffer buffer;
    Status status;
  };

  mutable std::mutex mu_;
  OutputSink* downstream_;
  std::vector<Slot> slots_;
  std::size_t next_ = 0;   // first slot not yet flushed downstream
  bool error_ = false;     // guarded by mu_; saw_error() takes the lock
};

}  // namespace xqmft

#endif  // XQMFT_PARALLEL_MERGE_SINK_H_
