// Single-document sharding: split one pretok event cache at top-level
// forest boundaries.
//
// Pretok records are self-delimiting (opcode + varint payloads), so a
// splitter finds every depth-0 tree boundary with one skim pass that never
// re-lexes markup: it walks opcodes, skips payload bytes by their declared
// length, and tracks element depth. Each resulting shard is a byte range of
// the record region plus the number of symbol definitions that precede it —
// define records are written at first use, so a shard starting mid-file
// needs the prefix dictionary to resolve its ids. A PretokShardSource
// replays one shard as a complete event stream (definitions seeded from the
// prefix, kEndOfDocument synthesized at the range end), which is exactly
// what an engine expects: the shard behaves as an independent forest
// document.
//
// Semantics: evaluating shards independently and concatenating outputs in
// input order evaluates each top-level tree group as its own document. For
// a single-rooted document (every XML document in the corpus) the split
// yields one shard and the result is byte-identical to serial evaluation of
// the whole stream; for a multi-tree forest the contract is per-shard
// evaluation in order — pinned against the serial engine run shard-by-shard
// by the differential suite.
#ifndef XQMFT_PARALLEL_PRETOK_SPLIT_H_
#define XQMFT_PARALLEL_PRETOK_SPLIT_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xml/event_source.h"
#include "xml/events.h"
#include "xml/pretok.h"
#include "xml/symbol_table.h"

namespace xqmft {

/// \brief One shard: a contiguous run of whole top-level trees.
struct PretokShard {
  std::size_t begin = 0;        ///< first record byte (into the whole file)
  std::size_t end = 0;          ///< one past the last record byte
  std::size_t defs_before = 0;  ///< plan names defined before `begin`
  std::size_t trees = 0;        ///< top-level trees in this shard
};

/// \brief Split plan over one pretok byte region.
///
/// Views alias the planned bytes, which must outlive the plan and every
/// PretokShardSource built from it.
struct PretokShardPlan {
  std::string_view data;                 ///< the whole pretok region
  SaxOptions declared;                   ///< header tokenization options
  std::vector<std::string_view> names;   ///< define payloads, file order
  std::vector<PretokShard> shards;       ///< non-empty; covers every tree
  std::size_t total_trees = 0;
};

/// Plans at most `max_shards` shards (0 behaves as 1) of contiguous
/// top-level trees, balanced by record bytes. A document with fewer trees
/// than requested shards yields one shard per tree; an empty forest yields
/// a single empty shard, so replaying a plan always reproduces the serial
/// event stream. InvalidArgument on a malformed stream (bad header,
/// truncated record, unbalanced tags).
Result<PretokShardPlan> PlanPretokShards(std::string_view data,
                                         std::size_t max_shards);

/// \brief EventSource replaying one shard of a plan (zero-copy reads).
///
/// A bounded PretokSource (xml/pretok.h) over the shard's record range,
/// seeded with the plan's prefix dictionary `names[0..defs_before)` — the
/// record decoding itself lives in one place, the base class.
class PretokShardSource : public PretokSource {
 public:
  /// `plan` must outlive the source. `shard` indexes plan->shards.
  PretokShardSource(const PretokShardPlan* plan, std::size_t shard);
};

}  // namespace xqmft

#endif  // XQMFT_PARALLEL_PRETOK_SPLIT_H_
