#include "parallel/sharded_executor.h"

#include <atomic>
#include <thread>
#include <vector>

#include "parallel/merge_sink.h"

namespace xqmft {

std::size_t ResolveThreads(const ParallelOptions& options,
                           std::size_t item_count) {
  std::size_t threads = options.threads;
  if (threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  if (threads > item_count) threads = item_count;
  return threads == 0 ? 1 : threads;
}

Status ShardedExecutor::Run(std::size_t item_count, const ItemFn& item,
                            OutputSink* downstream,
                            const ParallelOptions& options) {
  if (item_count == 0) return Status::OK();
  std::size_t threads = ResolveThreads(options, item_count);

  if (threads <= 1) {
    // Serial fast path: no worker threads, items run in order on the
    // calling thread. Output is still staged per item so the error
    // contract matches the merged path exactly — a failing item's partial
    // output never reaches the downstream sink at any thread count.
    for (std::size_t i = 0; i < item_count; ++i) {
      EventBuffer buffer;
      XQMFT_RETURN_NOT_OK(item(i, &buffer));
      buffer.Replay(downstream);
    }
    return Status::OK();
  }

  OrderedMerge merge(downstream, item_count);
  // The work queue: a shared atomic cursor. Workers steal the next
  // unclaimed index as they finish, so slow shards never gate fast ones
  // (dynamic load balancing at item granularity).
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    while (!merge.saw_error()) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= item_count) return;
      EventBuffer buffer;
      Status st = item(i, &buffer);
      merge.Commit(i, std::move(buffer), std::move(st));
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t t = 0; t + 1 < threads; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is worker N-1
  for (std::thread& t : pool) t.join();
  return merge.Finish();
}

}  // namespace xqmft
