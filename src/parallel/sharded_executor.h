// Parallel sharded execution: fan a workload of independent items across N
// worker threads, merging outputs at the sink boundary in input order.
//
// PR 2 (per-run SymbolTable copies, per-engine slab arenas) and PR 3 (the
// EventSource boundary) removed every piece of shared mutable state between
// engine runs, so shards need no synchronization beyond the work queue and
// the ordered merge: each worker runs its own engine against its own event
// source and records output into a private EventBuffer.
//
// The executor itself is engine-agnostic — an item is any
// Status(index, OutputSink*) callable — which is also what lets the test
// suite stress the ordered merge with injected delays and mid-shard errors
// without standing up real engines.
//
// Determinism contract: for items that all succeed, the downstream sink
// receives exactly the concatenation, in input order, of what each item
// wrote to its per-item sink — byte-identical to running the items serially
// into the downstream sink, for any thread count. On failure the run's
// Status is the lowest-index failed item's error, the sink holds an
// in-order prefix of successful items, and remaining items may be skipped.
#ifndef XQMFT_PARALLEL_SHARDED_EXECUTOR_H_
#define XQMFT_PARALLEL_SHARDED_EXECUTOR_H_

#include <cstddef>
#include <functional>

#include "util/cancel.h"
#include "util/status.h"
#include "xml/events.h"

namespace xqmft {

/// \brief Knobs of one parallel run.
struct ParallelOptions {
  /// Worker threads. 0 = one per hardware thread; clamped to the item
  /// count. 1 runs items in order on the calling thread with no worker
  /// threads or merge lock (the serial fast path — and the serial baseline
  /// the differential suite compares against); output is still staged per
  /// item, so error behavior is identical at every thread count.
  std::size_t threads = 0;
  /// Per-run cooperative cancellation, threaded by the streaming entry
  /// points into every worker engine's StreamOptions (a CompiledPlan's
  /// baked options cannot carry a token — it is per-request mutable state —
  /// so this is how serving layers abort a fan-out mid-stream). The token
  /// must outlive the run; null means not cancellable.
  const CancelToken* cancel = nullptr;
};

/// \brief Runs indexed work items across worker threads with ordered merge.
class ShardedExecutor {
 public:
  /// One work item: stream item `index`'s output into `sink`. Called at
  /// most once per index, possibly concurrently with other indices, never
  /// concurrently for one index. Item state must not be shared mutably
  /// across indices.
  using ItemFn = std::function<Status(std::size_t index, OutputSink* sink)>;

  /// Executes items [0, item_count) and merges their output into
  /// `downstream` in index order. Blocks until done.
  static Status Run(std::size_t item_count, const ItemFn& item,
                    OutputSink* downstream, const ParallelOptions& options);
};

/// Resolved worker count for `options` over `item_count` items (>= 1).
std::size_t ResolveThreads(const ParallelOptions& options,
                           std::size_t item_count);

}  // namespace xqmft

#endif  // XQMFT_PARALLEL_SHARDED_EXECUTOR_H_
