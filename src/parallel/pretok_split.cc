#include "parallel/pretok_split.h"

#include "util/strings.h"
#include "util/varint.h"

namespace xqmft {

namespace {

Status SplitFail(std::size_t pos, const char* msg) {
  return Status::InvalidArgument(
      StrFormat("pretok split error at byte %zu: %s", pos, msg));
}

}  // namespace

Result<PretokShardPlan> PlanPretokShards(std::string_view data,
                                         std::size_t max_shards) {
  if (max_shards == 0) max_shards = 1;
  XQMFT_ASSIGN_OR_RETURN(PretokHeader header, ParsePretokHeader(data));

  PretokShardPlan plan;
  plan.data = data;
  plan.declared = header.sax;

  // Skim pass: walk records tracking depth; cut[i] is the byte offset where
  // tree i begins a group boundary (cut[0] = first record, cut[i>0] = just
  // past tree i-1's final record), defs_at[i] the definitions seen before
  // cut[i]. Defines between two trees land at the front of the following
  // range, where the shard source interns them inline.
  std::vector<std::size_t> cut{header.records_begin};
  std::vector<std::size_t> defs_at{0};
  std::size_t pos = header.records_begin;
  std::size_t depth = 0;
  bool saw_eod = false;
  while (!saw_eod) {
    if (pos >= data.size()) {
      return SplitFail(pos, "truncated stream (missing eod)");
    }
    PretokOp op = static_cast<PretokOp>(data[pos++]);
    std::uint64_t n;
    switch (op) {
      case PretokOp::kDefine: {
        if (!ReadVarint(data, &pos, &n) || data.size() - pos < n) {
          return SplitFail(pos, "truncated symbol definition");
        }
        plan.names.push_back(data.substr(pos, n));
        pos += n;
        break;
      }
      case PretokOp::kStart:
        if (!ReadVarint(data, &pos, &n)) {
          return SplitFail(pos, "truncated start record");
        }
        if (n >= plan.names.size()) {
          return SplitFail(pos, "undefined symbol id");
        }
        ++depth;
        break;
      case PretokOp::kEnd:
        if (depth == 0) {
          return SplitFail(pos, "end record with no open element");
        }
        if (--depth == 0) {
          cut.push_back(pos);
          defs_at.push_back(plan.names.size());
          ++plan.total_trees;
        }
        break;
      case PretokOp::kText:
        if (!ReadVarint(data, &pos, &n) || data.size() - pos < n) {
          return SplitFail(pos, "truncated text record");
        }
        pos += n;
        if (depth == 0) {
          // A top-level text node is a tree of its own.
          cut.push_back(pos);
          defs_at.push_back(plan.names.size());
          ++plan.total_trees;
        }
        break;
      case PretokOp::kEod:
        if (depth != 0) return SplitFail(pos, "eod with unclosed elements");
        saw_eod = true;
        break;
      default:
        return SplitFail(pos, "unknown opcode");
    }
  }

  // Group contiguous trees into shards balanced by record bytes. Each shard
  // takes whole trees; a greedy walk closes a shard once it reaches the
  // per-shard byte target while leaving at least one tree per shard behind.
  std::size_t trees = plan.total_trees;
  if (trees == 0) {
    // Empty forest: one empty shard, so one engine still runs (the epsilon
    // rule of q0 can produce output on empty input).
    plan.shards.push_back(
        {header.records_begin, header.records_begin, 0, 0});
    return plan;
  }
  std::size_t shard_count = max_shards < trees ? max_shards : trees;
  std::size_t record_bytes = cut[trees] - cut[0];
  std::size_t target = (record_bytes + shard_count - 1) / shard_count;
  std::size_t first_tree = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    std::size_t remaining_shards = shard_count - s - 1;
    std::size_t last_tree;
    if (remaining_shards == 0) {
      last_tree = trees;  // the final shard takes everything left
    } else {
      last_tree = first_tree + 1;  // at least one tree
      while (trees - last_tree > remaining_shards &&
             cut[last_tree] - cut[first_tree] < target) {
        ++last_tree;
      }
    }
    plan.shards.push_back({cut[first_tree], cut[last_tree],
                           defs_at[first_tree], last_tree - first_tree});
    first_tree = last_tree;
  }
  XQMFT_CHECK(first_tree == trees);
  return plan;
}

namespace {

// Library code never throws: an out-of-range shard index is a programmer
// error, checked here instead of via vector::at.
const PretokShard& CheckedShard(const PretokShardPlan* plan,
                                std::size_t shard) {
  XQMFT_CHECK(plan != nullptr && shard < plan->shards.size());
  return plan->shards[shard];
}

}  // namespace

PretokShardSource::PretokShardSource(const PretokShardPlan* plan,
                                     std::size_t shard)
    : PretokSource(plan->data, CheckedShard(plan, shard).begin,
                   CheckedShard(plan, shard).end, &plan->names,
                   CheckedShard(plan, shard).defs_before) {}

}  // namespace xqmft
