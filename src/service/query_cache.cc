#include "service/query_cache.h"

#include <chrono>

namespace xqmft {

namespace {

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

QueryCache::QueryCache(QueryCacheOptions options) : options_(options) {}

namespace {

bool IsNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

}  // namespace

std::string QueryCache::NormalizeQuery(std::string_view text) {
  // Whitespace is insignificant only between expression tokens. Inside an
  // element constructor's content, runs of whitespace are raw text the
  // query emits (`<out>a  b</out>` != `<out>a b</out>`), so collapsing
  // there would hand two different programs one cache key and serve the
  // wrong plan. A small mode stack mirrors the grammar's contexts:
  //
  //   kExpr — expression tokens: collapse whitespace runs to one space,
  //           string literals copied verbatim. `{` pushes kExpr, `<name`
  //           opens a constructor, `<` anywhere else copies verbatim.
  //   kText — element content: everything verbatim. `{` pushes kExpr
  //           (embedded clause), `</...>` pops, `<name` nests.
  //
  // Tags themselves (`<name ...>`) are copied verbatim; a self-closing
  // `/>` does not enter kText. The machine only collapses where whitespace
  // is certainly insignificant — anywhere uncertain it copies, which can
  // cost a cache hit but never a wrong plan.
  enum class Mode : unsigned char { kExpr, kText };
  std::vector<Mode> stack = {Mode::kExpr};
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  bool pending_space = false;

  auto copy_tag = [&](bool* opened) {
    // From '<' through '>': verbatim. Reports whether it opened content
    // (an opening, non-self-closing tag).
    bool closing = i + 1 < text.size() && text[i + 1] == '/';
    char prev = '\0';
    while (i < text.size()) {
      char c = text[i++];
      out.push_back(c);
      if (c == '>') {
        *opened = !closing && prev != '/';
        return;
      }
      prev = c;
    }
    *opened = false;  // unterminated tag: verbatim to the end
  };

  while (i < text.size()) {
    char c = text[i];
    if (stack.back() == Mode::kExpr) {
      if (IsSpace(c)) {
        pending_space = !out.empty();
        ++i;
        continue;
      }
      if (pending_space) {
        out.push_back(' ');
        pending_space = false;
      }
      if (c == '"' || c == '\'') {
        out.push_back(c);
        ++i;
        while (i < text.size()) {
          char q = text[i++];
          out.push_back(q);
          if (q == c) break;
        }
        continue;
      }
      if (c == '{') {
        stack.push_back(Mode::kExpr);
        out.push_back(c);
        ++i;
        continue;
      }
      if (c == '}') {
        if (stack.size() > 1) stack.pop_back();
        out.push_back(c);
        ++i;
        continue;
      }
      if (c == '<' && i + 1 < text.size() && IsNameStart(text[i + 1])) {
        bool opened = false;
        copy_tag(&opened);
        if (opened) stack.push_back(Mode::kText);
        continue;
      }
      out.push_back(c);
      ++i;
      continue;
    }
    // kText: raw content, copied verbatim.
    pending_space = false;
    if (c == '{') {
      stack.push_back(Mode::kExpr);
      out.push_back(c);
      ++i;
      continue;
    }
    if (c == '<') {
      bool closing = i + 1 < text.size() && text[i + 1] == '/';
      bool opens = i + 1 < text.size() && IsNameStart(text[i + 1]);
      if (closing || opens) {
        bool opened = false;
        copy_tag(&opened);
        if (closing) {
          if (stack.size() > 1) stack.pop_back();
        } else if (opened) {
          stack.push_back(Mode::kText);
        }
        continue;
      }
    }
    out.push_back(c);
    ++i;
  }
  return out;
}

std::string QueryCache::MakeKey(std::string_view normalized,
                                const PipelineOptions& options) {
  // Every option that shapes the compiled artifact or its replay semantics
  // is folded in; a new plan-shaping option added without a key bit would
  // silently serve wrong plans, so keep this exhaustive.
  std::string key(normalized);
  key.push_back('\0');
  key.push_back(options.optimize ? '1' : '0');
  key.push_back(options.optimizer.unused_parameters ? '1' : '0');
  key.push_back(options.optimizer.constant_parameters ? '1' : '0');
  key.push_back(options.optimizer.stay_moves ? '1' : '0');
  key.push_back(options.optimizer.unreachable_states ? '1' : '0');
  key += std::to_string(options.optimizer.max_iterations);
  key.push_back('|');
  key += std::to_string(options.stream.max_steps);
  key.push_back(options.stream.sax.expand_attributes ? '1' : '0');
  key.push_back(options.stream.sax.skip_whitespace_text ? '1' : '0');
  return key;
}

Result<QueryCacheLookup> QueryCache::Lookup(const std::string& query_text,
                                            const PipelineOptions& options) {
  const std::string key = MakeKey(NormalizeQuery(query_text), options);
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    auto it = entries_.find(key);
    if (it == entries_.end()) break;  // we compile
    if (it->second.plan != nullptr) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      QueryCacheLookup out;
      out.plan = it->second.plan;
      out.hit = true;
      return out;
    }
    // Someone else is compiling this key: wait for their verdict. A failed
    // compile erases the entry, in which case the loop retries (possibly
    // compiling here).
    ++stats_.misses;
    cv_.wait(lock, [&] {
      auto cur = entries_.find(key);
      return cur == entries_.end() || cur->second.plan != nullptr;
    });
    auto cur = entries_.find(key);
    if (cur != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, cur->second.lru);
      QueryCacheLookup out;
      out.plan = cur->second.plan;
      out.hit = false;  // arrived before the plan existed
      return out;
    }
    // The in-flight compile failed; retry as a fresh miss (without double
    // counting this lookup).
    --stats_.misses;
  }

  // Miss: claim the key (singleflight marker), compile outside the lock.
  ++stats_.misses;
  entries_.emplace(key, Entry{});
  lock.unlock();

  auto t0 = std::chrono::steady_clock::now();
  Result<std::shared_ptr<const CompiledPlan>> compiled =
      CompiledPlan::Compile(query_text, options);
  double ms = MsSince(t0);

  lock.lock();
  ++stats_.compiles;
  stats_.compile_ms_total += ms;
  if (!compiled.ok()) {
    ++stats_.failures;
    entries_.erase(key);
    cv_.notify_all();
    return compiled.status();
  }
  Entry& entry = entries_[key];
  entry.plan = compiled.value();
  entry.bytes = entry.plan->ApproxBytes() + key.size();
  lru_.push_front(key);
  entry.lru = lru_.begin();
  resident_bytes_ += entry.bytes;
  EvictLocked();
  cv_.notify_all();
  QueryCacheLookup out;
  out.plan = entry.plan;
  out.compile_ms = ms;
  return out;
}

Result<std::shared_ptr<const CompiledPlan>> QueryCache::Get(
    const std::string& query_text, const PipelineOptions& options) {
  XQMFT_ASSIGN_OR_RETURN(QueryCacheLookup lookup,
                         Lookup(query_text, options));
  return std::move(lookup.plan);
}

void QueryCache::EvictLocked() {
  auto over_budget = [&] {
    std::size_t resident = lru_.size();
    if (options_.capacity != 0 && resident > options_.capacity) return true;
    // Keep at least the most recent plan even when it alone blows the byte
    // budget: evicting it would re-compile on every request.
    return options_.max_bytes != 0 && resident > 1 &&
           resident_bytes_ > options_.max_bytes;
  };
  while (over_budget()) {
    const std::string& victim = lru_.back();
    auto it = entries_.find(victim);
    resident_bytes_ -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

QueryCacheStats QueryCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  QueryCacheStats out = stats_;
  out.entries = lru_.size();
  out.bytes = resident_bytes_;
  return out;
}

void QueryCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  // Compiling entries (not in lru_) stay: their owners will insert and
  // notify as usual.
  for (const std::string& key : lru_) {
    entries_.erase(key);
    ++stats_.evictions;
  }
  lru_.clear();
  resident_bytes_ = 0;
}

}  // namespace xqmft
