// Fault injection at the event-stream boundary.
//
// FaultInjectingSource wraps any EventSource and misbehaves on cue at a
// chosen event index: truncating the stream (premature end-of-document, the
// shape of a dropped connection mid-transfer), failing it (an I/O error
// surfacing from the source), or stalling it (a slow producer, which is how
// tests hold a worker busy to fill admission queues and trip deadlines
// deterministically). The stress suite drives a server through every kind
// and asserts the blast radius stays one request wide.
//
// This lives in service/ rather than a test helper because the wire layer
// exposes it (behind an opt-in flag) as the request-level "fault" field —
// the fault-injection harness the serving stack is tested with end to end.
#ifndef XQMFT_SERVICE_FAULT_H_
#define XQMFT_SERVICE_FAULT_H_

#include <cstdint>
#include <string_view>

#include "util/status.h"
#include "xml/event_source.h"

namespace xqmft {

/// \brief What to inject, and where in the event stream.
struct FaultSpec {
  enum class Kind {
    kNone,      ///< pass-through
    kTruncate,  ///< events [at_event, ...) become end-of-document
    kError,     ///< event at_event becomes an InvalidArgument error
    kStall,     ///< sleep stall_ms once, before event at_event, then resume
  };
  Kind kind = Kind::kNone;
  /// Zero-based index of the first affected event.
  std::uint64_t at_event = 0;
  /// kStall only: how long the one-shot stall lasts.
  std::uint64_t stall_ms = 0;
};

/// Parses a wire-protocol kind string ("truncate", "error", "stall", "none");
/// returns false on an unknown name.
bool ParseFaultKind(std::string_view name, FaultSpec::Kind* kind);

/// \brief EventSource decorator applying a FaultSpec to a wrapped source.
///
/// The wrapped source must outlive this one. A kNone spec is a transparent
/// pass-through, so callers can wrap unconditionally.
class FaultInjectingSource : public EventSource {
 public:
  FaultInjectingSource(EventSource* inner, FaultSpec spec)
      : inner_(inner), spec_(spec) {}

  Status Next(XmlEvent* event) override;
  std::size_t bytes_consumed() const override {
    return inner_->bytes_consumed();
  }
  void BindSymbols(SymbolTable* symbols) override {
    inner_->BindSymbols(symbols);
  }

  /// Events handed out so far (injected end-of-documents included).
  std::uint64_t events_produced() const { return produced_; }

 private:
  EventSource* inner_;
  FaultSpec spec_;
  std::uint64_t produced_ = 0;
  bool stalled_ = false;
};

}  // namespace xqmft

#endif  // XQMFT_SERVICE_FAULT_H_
