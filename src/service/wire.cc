#include "service/wire.h"

#include <chrono>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "service/fault.h"
#include "stream/engine.h"
#include "util/strings.h"
#include "xml/pretok.h"
#include "xml/sax_parser.h"

namespace xqmft {

namespace {

// The "lowered" response field: how much of the plan the run executed on the
// opcode engine ("full", "hybrid"), or "no" for a table-engine run.
const char* LoweredField(const StreamStats& s) {
  if (!s.used_ops_engine) return "no";
  return s.hybrid_plan ? "hybrid" : "full";
}

}  // namespace

void AppendJsonValue(std::string* out, const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      *out += "null";
      return;
    case JsonValue::Kind::kBool:
      *out += v.boolean ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber: {
      // Integers (the common id shape) print without an exponent.
      if (v.number == std::floor(v.number) && std::fabs(v.number) < 1e15) {
        *out += StrFormat("%lld", static_cast<long long>(v.number));
      } else {
        *out += StrFormat("%g", v.number);
      }
      return;
    }
    case JsonValue::Kind::kString:
      AppendJsonString(out, v.string);
      return;
    case JsonValue::Kind::kArray:
      out->push_back('[');
      for (std::size_t i = 0; i < v.items.size(); ++i) {
        if (i != 0) out->push_back(',');
        AppendJsonValue(out, v.items[i]);
      }
      out->push_back(']');
      return;
    case JsonValue::Kind::kObject:
      out->push_back('{');
      for (std::size_t i = 0; i < v.fields.size(); ++i) {
        if (i != 0) out->push_back(',');
        AppendJsonString(out, v.fields[i].first);
        out->push_back(':');
        AppendJsonValue(out, v.fields[i].second);
      }
      out->push_back('}');
      return;
  }
}

const char* WireStatusString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotSupported: return "not_supported";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kUnavailable: return "unavailable";
  }
  return "internal";
}

void AppendErrorResponse(std::string* out, const JsonValue* id,
                         std::string_view message, StatusCode code) {
  ResponseWriter w(id);
  w.Raw("ok", "false");
  w.Field("error", message);
  w.Field("status", WireStatusString(code));
  *out += w.Finish();
  *out += "\n";
}

StatusCode AppendBadRequestResponse(std::string* out, const JsonValue* id,
                                    std::string_view message) {
  ResponseWriter w(id);
  w.Raw("ok", "false");
  w.Field("error", message);
  w.Field("status", "bad_request");
  *out += w.Finish();
  *out += "\n";
  return StatusCode::kInvalidArgument;
}

std::string CoalesceKey(const JsonValue& json) {
  if (!json.is_object()) return std::string();
  // Forms with their own execution paths (cmd, batch), per-request source
  // wrapping (fault), or request-level execution knobs the shared pass
  // ignores (threads) stay on the single-request path.
  if (json.Find("cmd") != nullptr || json.Find("queries") != nullptr ||
      json.Find("fault") != nullptr || json.Find("threads") != nullptr) {
    return std::string();
  }
  const JsonValue* query = json.Find("query");
  if (query == nullptr || !query->is_string()) return std::string();
  const JsonValue* inputs = json.Find("inputs");
  const JsonValue* xml = json.Find("xml");
  auto strings_only = [](const JsonValue* v) {
    if (v == nullptr) return true;
    if (!v->is_array()) return false;
    for (const JsonValue& item : v->items) {
      if (!item.is_string()) return false;
    }
    return true;
  };
  if (!strings_only(inputs) || !strings_only(xml)) return std::string();
  if ((inputs == nullptr || inputs->items.empty()) &&
      (xml == nullptr || xml->items.empty())) {
    return std::string();  // no documents: the single path owns the error
  }
  // JSON-serialized field lists: two requests with equal keys parse into
  // identical ParallelInput lists, i.e. the same ExecuteBatch InputsKey.
  std::string key = "i";
  if (inputs != nullptr) AppendJsonValue(&key, *inputs);
  key += "x";
  if (xml != nullptr) AppendJsonValue(&key, *xml);
  return key;
}

namespace {

void AppendError(std::string* out, const JsonValue* id, const Status& st) {
  AppendErrorResponse(out, id, st.ToString(), st.code());
}

void AppendStatsResponse(std::string* out, const JsonValue* id,
                         const QueryCacheStats& stats) {
  ResponseWriter w(id);
  w.Raw("ok", "true");
  w.Raw("stats",
        StrFormat("{\"hits\":%llu,\"misses\":%llu,\"compiles\":%llu,"
                  "\"failures\":%llu,\"evictions\":%llu,\"entries\":%zu,"
                  "\"bytes\":%zu,\"compile_ms_total\":%.3f}",
                  static_cast<unsigned long long>(stats.hits),
                  static_cast<unsigned long long>(stats.misses),
                  static_cast<unsigned long long>(stats.compiles),
                  static_cast<unsigned long long>(stats.failures),
                  static_cast<unsigned long long>(stats.evictions),
                  stats.entries, stats.bytes, stats.compile_ms_total));
  *out += w.Finish();
  *out += "\n";
}

// Reads a non-negative integer field into *value; false (with an error
// appended to *err) on a malformed one, true otherwise (absent = untouched).
bool ParseCount(const JsonValue& json, std::string_view key,
                std::uint64_t* value, std::string* err) {
  const JsonValue* v = json.Find(key);
  if (v == nullptr) return true;
  if (!v->is_number() || v->number < 0 ||
      v->number != std::floor(v->number)) {
    *err = StrFormat("\"%.*s\" must be a non-negative integer",
                     static_cast<int>(key.size()), key.data());
    return false;
  }
  *value = static_cast<std::uint64_t>(v->number);
  return true;
}

// Parses the shared "inputs" (file paths) and "xml" (inline documents)
// fields into ParallelInputs; used by single and batch requests alike.
// `limits` caps the total inline document bytes a request may carry.
Status ParseInputs(const JsonValue& json, const RequestLimits& limits,
                   std::vector<ParallelInput>* out) {
  if (const JsonValue* inputs = json.Find("inputs")) {
    if (!inputs->is_array()) {
      return Status::InvalidArgument("\"inputs\" must be an array of paths");
    }
    for (const JsonValue& item : inputs->items) {
      if (!item.is_string()) {
        return Status::InvalidArgument("\"inputs\" must be an array of paths");
      }
      // Same sniff as the CLI's positional inputs: a pretok cache replays
      // as events, anything else parses as text XML.
      out->push_back(IsPretokFile(item.string)
                         ? ParallelInput::PretokFile(item.string)
                         : ParallelInput::XmlFile(item.string));
    }
  }
  if (const JsonValue* xml = json.Find("xml")) {
    if (!xml->is_array()) {
      return Status::InvalidArgument(
          "\"xml\" must be an array of inline documents");
    }
    std::size_t inline_bytes = 0;
    for (const JsonValue& item : xml->items) {
      if (!item.is_string()) {
        return Status::InvalidArgument(
            "\"xml\" must be an array of inline documents");
      }
      inline_bytes += item.string.size();
      if (limits.max_inline_xml_bytes != 0 &&
          inline_bytes > limits.max_inline_xml_bytes) {
        return Status::InvalidArgument(
            StrFormat("inline \"xml\" documents exceed the %zu-byte limit",
                      limits.max_inline_xml_bytes));
      }
      out->push_back(ParallelInput::XmlText(item.string));
    }
  }
  return Status::OK();
}

// A single request plus its optional fault directive (which is wire-layer
// state, not part of the service request).
struct WireRequest {
  ServiceRequest req;
  FaultSpec fault;
};

// Builds the request from its parsed JSON; error strings are user-facing.
Result<WireRequest> BuildRequest(const JsonValue& json,
                                 const WireOptions& options) {
  WireRequest out;
  ServiceRequest& req = out.req;
  req.threads = options.default_threads;
  const JsonValue* query = json.Find("query");
  if (query == nullptr || !query->is_string()) {
    return Status::InvalidArgument("request needs a string \"query\" field");
  }
  req.query = query->string;
  XQMFT_RETURN_NOT_OK(ParseInputs(json, options.limits, &req.inputs));
  if (const JsonValue* threads = json.Find("threads")) {
    if (!threads->is_number() || threads->number < 0 ||
        threads->number != std::floor(threads->number)) {
      return Status::InvalidArgument("\"threads\" must be a count >= 0");
    }
    req.threads = static_cast<std::size_t>(threads->number);
  }
  if (const JsonValue* no_opt = json.Find("no_opt")) {
    if (!no_opt->is_bool()) {
      return Status::InvalidArgument("\"no_opt\" must be a boolean");
    }
    req.no_opt = no_opt->boolean;
  }
  std::string err;
  if (!ParseCount(json, "deadline_ms", &req.deadline_ms, &err)) {
    return Status::InvalidArgument(err);
  }
  if (const JsonValue* fault = json.Find("fault")) {
    if (!options.allow_fault_injection) {
      return Status::InvalidArgument(
          "fault injection is disabled on this server");
    }
    if (!fault->is_object()) {
      return Status::InvalidArgument("\"fault\" must be an object");
    }
    const JsonValue* kind = fault->Find("kind");
    if (kind == nullptr || !kind->is_string() ||
        !ParseFaultKind(kind->string, &out.fault.kind)) {
      return Status::InvalidArgument(
          "\"fault.kind\" must be \"none\", \"truncate\", \"error\" or "
          "\"stall\"");
    }
    if (!ParseCount(*fault, "at_event", &out.fault.at_event, &err) ||
        !ParseCount(*fault, "stall_ms", &out.fault.stall_ms, &err)) {
      return Status::InvalidArgument(err);
    }
  }
  if (req.inputs.empty()) {
    return Status::InvalidArgument(
        "request has no documents (give \"inputs\" paths or inline \"xml\")");
  }
  return out;
}

// Resolves the run's cancel token: the transport's token if given (arming
// the request deadline on it unless the transport armed one from admission
// time already), a request-local token when only a deadline needs carrying,
// null when the request is not cancellable at all.
CancelToken* ResolveToken(CancelToken* transport, std::uint64_t deadline_ms,
                          CancelToken* local) {
  CancelToken* token = transport;
  if (deadline_ms > 0) {
    if (token == nullptr) token = local;
    if (!token->has_deadline()) token->SetDeadlineAfterMs(deadline_ms);
  }
  return token;
}

// Streams a fault-injected request: the single input document is wrapped in
// a FaultInjectingSource between the parser and the engine, then runs
// through the same compiled plan (from the service's cache) a normal
// request would use.
Status ExecuteWithFault(QueryService* service, const ServiceRequest& req,
                        const FaultSpec& fault, CancelToken* cancel,
                        OutputSink* sink, ServiceRequestStats* stats) {
  if (req.inputs.size() != 1) {
    return Status::InvalidArgument(
        "fault injection supports exactly one input document");
  }
  const ParallelInput& in = req.inputs[0];
  if (in.kind != ParallelInput::Kind::kXmlText &&
      in.kind != ParallelInput::Kind::kXmlFile) {
    return Status::InvalidArgument(
        "fault injection supports text XML inputs only");
  }
  PipelineOptions popts = service->base_options();
  if (req.no_opt) popts.optimize = false;
  XQMFT_ASSIGN_OR_RETURN(QueryCacheLookup lookup,
                         service->cache()->Lookup(req.query, popts));
  stats->cache_hit = lookup.hit;
  stats->compile_ms = lookup.compile_ms;

  std::unique_ptr<ByteSource> owned;
  if (in.kind == ParallelInput::Kind::kXmlFile) {
    XQMFT_ASSIGN_OR_RETURN(owned, MmapSource::Open(in.value));
  } else {
    owned = std::make_unique<StringSource>(in.value);
  }
  SaxParser parser(owned.get(), lookup.plan->options().stream.sax);
  FaultInjectingSource events(&parser, fault);

  StreamOptions sopts = lookup.plan->options().stream;
  sopts.cancel = cancel;
  StreamStats ss;
  auto t0 = std::chrono::steady_clock::now();
  Status st =
      StreamTransformEvents(lookup.plan->mft(), &events, sink, sopts, &ss);
  stats->stream_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  stats->per_input.push_back(ss);
  stats->total = AggregateStreamStats(stats->per_input);
  return st;
}

}  // namespace

StatusCode RequestHandler::HandleLine(std::string_view line,
                                      CancelToken* cancel, std::string* out) {
  if (options_.limits.max_line_bytes != 0 &&
      line.size() > options_.limits.max_line_bytes) {
    Status st = Status::InvalidArgument(
        StrFormat("request line exceeds the %zu-byte limit",
                  options_.limits.max_line_bytes));
    AppendError(out, nullptr, st);
    return st.code();
  }
  Result<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) {
    AppendError(out, nullptr, parsed.status());
    return parsed.status().code();
  }
  return HandleParsed(parsed.value(), cancel, out);
}

StatusCode RequestHandler::HandleParsed(const JsonValue& json,
                                        CancelToken* cancel,
                                        std::string* out) {
  if (!json.is_object()) {
    Status st = Status::InvalidArgument("request must be a JSON object");
    AppendError(out, nullptr, st);
    return st.code();
  }
  const JsonValue* id = json.Find("id");

  if (const JsonValue* cmd = json.Find("cmd")) {
    if (!cmd->is_string()) {
      AppendErrorResponse(out, id, "unknown \"cmd\"",
                          StatusCode::kInvalidArgument);
      return StatusCode::kInvalidArgument;
    }
    if (options_.cmd_hook && options_.cmd_hook(cmd->string, id, out)) {
      return StatusCode::kOk;
    }
    if (cmd->string == "stats") {
      AppendStatsResponse(out, id, service_->cache()->stats());
      return StatusCode::kOk;
    }
    AppendErrorResponse(out, id, "unknown \"cmd\"",
                        StatusCode::kInvalidArgument);
    return StatusCode::kInvalidArgument;
  }

  if (json.Find("queries") != nullptr) {
    return HandleBatch(json, id, cancel, out);
  }

  Result<WireRequest> request = BuildRequest(json, options_);
  if (!request.ok()) {
    AppendError(out, id, request.status());
    return request.status().code();
  }
  WireRequest& wire = request.value();
  wire.req.cancel = cancel;

  StringSink sink;
  ServiceRequestStats stats;
  Status st;
  if (wire.fault.kind != FaultSpec::Kind::kNone) {
    CancelToken local;
    CancelToken* token = ResolveToken(cancel, wire.req.deadline_ms, &local);
    st = ExecuteWithFault(service_, wire.req, wire.fault, token, &sink,
                          &stats);
  } else {
    st = service_->Execute(wire.req, &sink, &stats);
  }
  if (!st.ok()) {
    AppendError(out, id, st);
    return st.code();
  }

  if (options_.run_observer) options_.run_observer(stats.total);
  QueryCacheStats cache = service_->cache()->stats();
  ResponseWriter w(id);
  w.Raw("ok", "true");
  w.Raw("bytes", std::to_string(sink.str().size()));
  w.Field("cache", stats.cache_hit ? "hit" : "miss");
  w.Raw("compile_ms", StrFormat("%.3f", stats.compile_ms));
  w.Raw("stream_ms", StrFormat("%.3f", stats.stream_ms));
  w.Raw("bytes_in", std::to_string(stats.total.bytes_in));
  w.Raw("output_events", std::to_string(stats.total.output_events));
  w.Raw("peak_mem_bytes", std::to_string(stats.total.peak_bytes));
  w.Field("engine", stats.total.used_ops_engine ? "ops" : "table");
  w.Field("lowered", LoweredField(stats.total));
  w.Raw("cache_hits", std::to_string(cache.hits));
  w.Raw("cache_misses", std::to_string(cache.misses));
  w.Raw("cache_entries", std::to_string(cache.entries));
  *out += w.Finish();
  *out += "\n";
  *out += sink.str();
  *out += "\n";
  return StatusCode::kOk;
}

std::uint64_t RequestHandler::HandleCoalesced(std::vector<CoalescedJob>* group,
                                              std::size_t* shared_members) {
  if (shared_members != nullptr) *shared_members = 0;
  std::vector<std::size_t> live;       // group indices that reach the pass
  std::vector<const JsonValue*> ids(group->size(), nullptr);
  std::vector<ServiceRequest> requests;
  for (std::size_t m = 0; m < group->size(); ++m) {
    CoalescedJob& job = (*group)[m];
    ids[m] = job.json->Find("id");
    // Expired or disconnected members are excluded before the shared run
    // starts — same contract as the worker's pre-execution check.
    if (job.cancel != nullptr) {
      Status pre = job.cancel->Check();
      if (!pre.ok()) {
        AppendErrorResponse(job.out, ids[m], pre.ToString(), pre.code());
        job.code = pre.code();
        continue;
      }
    }
    Result<WireRequest> request = BuildRequest(*job.json, options_);
    if (!request.ok()) {
      AppendError(job.out, ids[m], request.status());
      job.code = request.status().code();
      continue;
    }
    WireRequest& wire = request.value();
    wire.req.cancel = job.cancel;
    // Transports arm deadlines at admission; arm here only when one did not
    // (matching ResolveToken on the single path).
    if (wire.req.deadline_ms > 0 && job.cancel != nullptr &&
        !job.cancel->has_deadline()) {
      job.cancel->SetDeadlineAfterMs(wire.req.deadline_ms);
    }
    live.push_back(m);
    requests.push_back(std::move(wire.req));
  }
  if (live.empty()) return 0;

  std::vector<StringSink> sinks(requests.size());
  std::vector<OutputSink*> sink_ptrs;
  sink_ptrs.reserve(sinks.size());
  for (StringSink& sink : sinks) sink_ptrs.push_back(&sink);
  ServiceBatchStats stats;
  Status st = service_->ExecuteBatch(requests, sink_ptrs, &stats);
  if (stats.per_request.size() != requests.size()) {
    // Batch-level rejection: nothing ran; every member gets the error.
    for (std::size_t m : live) {
      AppendError((*group)[m].out, ids[m], st);
      (*group)[m].code = st.code();
    }
    return 0;
  }

  QueryCacheStats cache = service_->cache()->stats();
  for (std::size_t k = 0; k < live.size(); ++k) {
    CoalescedJob& job = (*group)[live[k]];
    const ServiceRequestStats& rs = stats.per_request[k];
    if (!rs.status.ok()) {
      AppendError(job.out, ids[live[k]], rs.status);
      job.code = rs.status.code();
      continue;
    }
    // The single-request response shape plus "coalesced": clients written
    // against the single path keep parsing, and can see the sharing.
    if (options_.run_observer) options_.run_observer(rs.total);
    ResponseWriter w(ids[live[k]]);
    w.Raw("ok", "true");
    w.Raw("bytes", std::to_string(sinks[k].str().size()));
    w.Field("cache", rs.cache_hit ? "hit" : "miss");
    w.Raw("compile_ms", StrFormat("%.3f", rs.compile_ms));
    w.Raw("stream_ms", StrFormat("%.3f", rs.stream_ms));
    w.Raw("bytes_in", std::to_string(rs.total.bytes_in));
    w.Raw("output_events", std::to_string(rs.total.output_events));
    w.Raw("peak_mem_bytes", std::to_string(rs.total.peak_bytes));
    w.Field("engine", rs.total.used_ops_engine ? "ops" : "table");
    w.Field("lowered", LoweredField(rs.total));
    w.Raw("coalesced", std::to_string(live.size()));
    w.Raw("cache_hits", std::to_string(cache.hits));
    w.Raw("cache_misses", std::to_string(cache.misses));
    w.Raw("cache_entries", std::to_string(cache.entries));
    *job.out += w.Finish();
    *job.out += "\n";
    *job.out += sinks[k].str();
    *job.out += "\n";
    job.code = StatusCode::kOk;
  }

  if (live.size() < 2) return 0;
  if (shared_members != nullptr) *shared_members = live.size();
  // Each document was tokenized once for the whole group instead of once
  // per member.
  return static_cast<std::uint64_t>(stats.documents) *
         static_cast<std::uint64_t>(live.size() - 1);
}

StatusCode RequestHandler::HandleBatch(const JsonValue& json,
                                       const JsonValue* id,
                                       CancelToken* cancel, std::string* out) {
  auto reject = [&](const Status& st) {
    AppendError(out, id, st);
    return st.code();
  };
  const JsonValue* queries = json.Find("queries");
  if (!queries->is_array() || queries->items.empty()) {
    return reject(
        Status::InvalidArgument("\"queries\" must be a non-empty array"));
  }
  std::vector<ParallelInput> inputs;
  Status in_st = ParseInputs(json, options_.limits, &inputs);
  if (!in_st.ok()) return reject(in_st);
  if (inputs.empty()) {
    return reject(Status::InvalidArgument(
        "batch has no documents (give \"inputs\" paths or inline \"xml\")"));
  }
  MultiQueryOptions multi;
  if (const JsonValue* up = json.Find("union_projection")) {
    if (!up->is_bool()) {
      return reject(
          Status::InvalidArgument("\"union_projection\" must be a boolean"));
    }
    multi.union_projection = up->boolean;
  }
  std::uint64_t deadline_ms = 0;
  std::string err;
  if (!ParseCount(json, "deadline_ms", &deadline_ms, &err)) {
    return reject(Status::InvalidArgument(err));
  }
  // The batch shares one pass per document, so the deadline is batch-wide:
  // a trip aborts every query still streaming.
  CancelToken local;
  multi.cancel = ResolveToken(cancel, deadline_ms, &local);

  std::vector<ServiceRequest> requests;
  std::vector<const JsonValue*> ids;
  for (const JsonValue& item : queries->items) {
    const JsonValue* query = item.is_object() ? item.Find("query") : nullptr;
    if (query == nullptr || !query->is_string()) {
      return reject(Status::InvalidArgument(
          "every \"queries\" entry needs an object with a string \"query\""));
    }
    ServiceRequest req;
    req.query = query->string;
    req.inputs = inputs;
    if (const JsonValue* no_opt = item.Find("no_opt")) {
      if (!no_opt->is_bool()) {
        return reject(Status::InvalidArgument("\"no_opt\" must be a boolean"));
      }
      req.no_opt = no_opt->boolean;
    }
    ids.push_back(item.Find("id"));
    requests.push_back(std::move(req));
  }

  std::vector<StringSink> sinks(requests.size());
  std::vector<OutputSink*> sink_ptrs;
  sink_ptrs.reserve(sinks.size());
  for (StringSink& sink : sinks) sink_ptrs.push_back(&sink);
  ServiceBatchStats stats;
  Status st = service_->ExecuteBatch(requests, sink_ptrs, &stats, multi);
  if (stats.per_request.size() != requests.size()) {
    // Batch-level rejection: nothing ran, one error response.
    return reject(st);
  }

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const ServiceRequestStats& rs = stats.per_request[i];
    if (!rs.status.ok()) {
      AppendError(out, ids[i], rs.status);
      continue;
    }
    if (options_.run_observer) options_.run_observer(rs.total);
    ResponseWriter w(ids[i]);
    w.Raw("ok", "true");
    w.Raw("bytes", std::to_string(sinks[i].str().size()));
    w.Field("cache", rs.cache_hit ? "hit" : "miss");
    w.Raw("compile_ms", StrFormat("%.3f", rs.compile_ms));
    w.Raw("stream_ms", StrFormat("%.3f", rs.stream_ms));
    w.Raw("deduped", rs.deduped ? "true" : "false");
    w.Raw("events_fed", std::to_string(rs.events_fed));
    w.Raw("events_skipped", std::to_string(rs.events_skipped));
    w.Raw("output_events", std::to_string(rs.total.output_events));
    w.Raw("peak_mem_bytes", std::to_string(rs.total.peak_bytes));
    w.Field("engine", rs.total.used_ops_engine ? "ops" : "table");
    w.Field("lowered", LoweredField(rs.total));
    *out += w.Finish();
    *out += "\n";
    *out += sinks[i].str();
    *out += "\n";
  }

  ResponseWriter w(id);
  w.Raw("ok", st.ok() ? "true" : "false");
  w.Raw("batch", "true");
  w.Raw("requests", std::to_string(requests.size()));
  w.Raw("documents", std::to_string(stats.documents));
  w.Raw("parsed_bytes", std::to_string(stats.parsed_bytes));
  w.Raw("unique_plans", std::to_string(stats.unique_plans));
  w.Raw("deduped_requests", std::to_string(stats.deduped_requests));
  w.Raw("stream_ms", StrFormat("%.3f", stats.stream_ms));
  *out += w.Finish();
  *out += "\n";
  return st.code();
}

}  // namespace xqmft
