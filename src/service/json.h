// Minimal JSON reading/writing for the serving frontend.
//
// The serve loop speaks newline-delimited JSON on stdin/stdout; the
// container ships no JSON dependency, so this is a small, strict RFC-8259
// subset parser: objects, arrays, strings (with escapes incl. \uXXXX),
// numbers, booleans, null. It exists for request/response framing — small
// messages, not documents — so values are plain owning structs and the
// parser is a straightforward recursive descent with a depth cap.
#ifndef XQMFT_SERVICE_JSON_H_
#define XQMFT_SERVICE_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace xqmft {

/// \brief One parsed JSON value (owning tree).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;  ///< kArray
  std::vector<std::pair<std::string, JsonValue>> fields;  ///< kObject

  bool is_null() const { return kind == Kind::kNull; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// First field with this key, or null (objects only).
  const JsonValue* Find(std::string_view key) const;
};

/// Parses exactly one JSON value spanning all of `text` (surrounding
/// whitespace allowed; trailing garbage is an error).
Result<JsonValue> ParseJson(std::string_view text);

/// Appends `s` as a quoted JSON string (escaping controls, quotes,
/// backslashes) to `out`.
void AppendJsonString(std::string* out, std::string_view s);

}  // namespace xqmft

#endif  // XQMFT_SERVICE_JSON_H_
