// The multi-query serving loop behind the CLI's `serve` mode.
//
// Protocol: newline-delimited JSON requests on `in`, framed responses on
// `out`. One request per line:
//
//   {"query": "<out>{$input//a}</out>",   // required
//    "inputs": ["doc.xml", "cache.ptk"],  // file paths (format sniffed)
//    "xml": ["<doc><a/></doc>"],          // inline documents (after inputs)
//    "threads": 2,                        // optional, default serial
//    "no_opt": false,                     // optional
//    "deadline_ms": 250,                  // optional wall-clock budget
//    "id": 7}                             // optional, echoed verbatim
//
//   {"cmd": "stats"}                      // cache statistics snapshot
//
// Multi-query batch: a "queries" array replaces "query" — every listed
// query streams over the shared document list in ONE pass per document
// (one tokenization, duplicate queries deduplicated onto one engine, a
// union projection automaton skipping subtrees no query can match):
//
//   {"queries": [{"query": "...", "id": 1},
//                {"query": "...", "id": 2, "no_opt": true}],
//    "inputs": [...], "xml": [...],       // shared by every query
//    "union_projection": true,            // optional, default true
//    "deadline_ms": 250,                  // optional, batch-wide
//    "id": "batch-7"}                     // optional, echoed on the summary
//
// The response is one framed per-query response per entry — emitted in
// REQUEST ORDER with each entry's "id" echoed, whatever order the engines
// finish in — followed by a single batch summary line:
//
//   {"id":1,"ok":true,"bytes":12,...}     + 12 bytes + newline
//   {"id":2,"ok":false,"error":"..."}     (failures are isolated per query)
//   {"id":"batch-7","ok":true,"batch":true,"requests":2,"documents":1,
//    "parsed_bytes":512,"unique_plans":2,"deduped_requests":0,...}
//
// Each response is one JSON header line; successful query responses are
// followed by exactly `bytes` bytes of serialized output and a trailing
// newline. The header's "engine" field reports which streaming engine
// served the request: "ops" when the lowered opcode engine ran (any input,
// for aggregated stats), "table" otherwise (see lower/lower.h):
//
//   {"id":7,"ok":true,"bytes":27,"cache":"hit","engine":"ops", ...}
//   <out>...</out>
//
// A malformed or failing request produces
// {"ok":false,"error":"...","status":"<token>"} — the "status" field is the
// machine-readable outcome (wire.h: "invalid_argument",
// "deadline_exceeded", ...) — and the loop continues: one bad request never
// kills the session. Hardening (shared with the socket server, see
// ServeOptions::limits): a request line longer than max_line_bytes is
// discarded and rejected without being buffered, inline "xml" documents are
// capped in total bytes, and "deadline_ms" aborts a slow request
// mid-stream via the engines' cooperative cancellation. EOF on `in` ends
// the loop.
#ifndef XQMFT_SERVICE_SERVE_H_
#define XQMFT_SERVICE_SERVE_H_

#include <cstdio>

#include "service/query_service.h"
#include "service/wire.h"
#include "util/status.h"

namespace xqmft {

struct ServeOptions {
  QueryCacheOptions cache;
  /// Base compile options for every request (per-request no_opt overrides
  /// optimize).
  PipelineOptions pipeline;
  /// Worker threads when a request does not say (0 = hardware, 1 = serial).
  std::size_t default_threads = 1;
  /// Request line / inline document size caps (wire.h).
  RequestLimits limits;
  /// Accept the per-request "fault" field (service/fault.h) — test/stress
  /// harness, off by default.
  bool allow_fault_injection = false;
};

/// Runs the request/response loop until EOF on `in`. Per-request failures
/// become error responses; the returned Status is non-OK only for loop-level
/// failures (e.g. an unwritable `out`).
Status ServeLoop(std::FILE* in, std::FILE* out, const ServeOptions& options);

}  // namespace xqmft

#endif  // XQMFT_SERVICE_SERVE_H_
