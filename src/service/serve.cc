#include "service/serve.h"

#include <string>

#include "service/wire.h"
#include "util/strings.h"

namespace xqmft {

namespace {

enum class LineRead {
  kOk,        // one complete line in *line (newline stripped)
  kEof,       // end of input, nothing read
  kOverlong,  // line exceeded max_bytes; excess discarded, reader is at the
              // next line boundary
};

// Reads one newline-terminated line without buffering more than
// `max_bytes` of it: an overlong line is consumed (so the stream stays
// line-synchronized) but not stored — the caller rejects it and continues.
LineRead ReadLineLimited(std::FILE* in, std::size_t max_bytes,
                         std::string* line) {
  line->clear();
  bool overlong = false;
  int c;
  while ((c = std::fgetc(in)) != EOF) {
    if (c == '\n') return overlong ? LineRead::kOverlong : LineRead::kOk;
    if (!overlong) {
      if (max_bytes != 0 && line->size() >= max_bytes) {
        overlong = true;
      } else {
        line->push_back(static_cast<char>(c));
      }
    }
  }
  if (overlong) return LineRead::kOverlong;
  return line->empty() ? LineRead::kEof : LineRead::kOk;
}

Status WriteAll(std::FILE* out, std::string_view bytes) {
  if (std::fwrite(bytes.data(), 1, bytes.size(), out) != bytes.size() ||
      std::fflush(out) != 0) {
    return Status::Internal("cannot write response");
  }
  return Status::OK();
}

}  // namespace

Status ServeLoop(std::FILE* in, std::FILE* out, const ServeOptions& options) {
  QueryService service(options.cache, options.pipeline);
  WireOptions wire;
  wire.limits = options.limits;
  wire.default_threads = options.default_threads;
  wire.allow_fault_injection = options.allow_fault_injection;
  RequestHandler handler(&service, wire);

  std::string line;
  std::string response;
  for (;;) {
    LineRead read = ReadLineLimited(in, options.limits.max_line_bytes, &line);
    if (read == LineRead::kEof) break;
    response.clear();
    if (read == LineRead::kOverlong) {
      AppendErrorResponse(
          &response, nullptr,
          StrFormat("request line exceeds the %zu-byte limit",
                    options.limits.max_line_bytes),
          StatusCode::kInvalidArgument);
      XQMFT_RETURN_NOT_OK(WriteAll(out, response));
      continue;
    }
    // Blank lines keep the loop responsive under sloppy drivers.
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    handler.HandleLine(line, nullptr, &response);
    XQMFT_RETURN_NOT_OK(WriteAll(out, response));
  }
  return Status::OK();
}

}  // namespace xqmft
