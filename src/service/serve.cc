#include "service/serve.h"

#include <cmath>
#include <string>
#include <vector>

#include "service/json.h"
#include "util/strings.h"
#include "xml/events.h"
#include "xml/pretok.h"

namespace xqmft {

namespace {

// Reads one newline-terminated line (without the newline); false on EOF
// with nothing read.
bool ReadLine(std::FILE* in, std::string* line) {
  line->clear();
  int c;
  while ((c = std::fgetc(in)) != EOF) {
    if (c == '\n') return true;
    line->push_back(static_cast<char>(c));
  }
  return !line->empty();
}

// Serializes a scalar-or-structured JsonValue back out (the request id is
// echoed verbatim whatever its shape).
void AppendJsonValue(std::string* out, const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      *out += "null";
      return;
    case JsonValue::Kind::kBool:
      *out += v.boolean ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber: {
      // Integers (the common id shape) print without an exponent.
      if (v.number == std::floor(v.number) && std::fabs(v.number) < 1e15) {
        *out += StrFormat("%lld", static_cast<long long>(v.number));
      } else {
        *out += StrFormat("%g", v.number);
      }
      return;
    }
    case JsonValue::Kind::kString:
      AppendJsonString(out, v.string);
      return;
    case JsonValue::Kind::kArray:
      out->push_back('[');
      for (std::size_t i = 0; i < v.items.size(); ++i) {
        if (i != 0) out->push_back(',');
        AppendJsonValue(out, v.items[i]);
      }
      out->push_back(']');
      return;
    case JsonValue::Kind::kObject:
      out->push_back('{');
      for (std::size_t i = 0; i < v.fields.size(); ++i) {
        if (i != 0) out->push_back(',');
        AppendJsonString(out, v.fields[i].first);
        out->push_back(':');
        AppendJsonValue(out, v.fields[i].second);
      }
      out->push_back('}');
      return;
  }
}

struct ResponseWriter {
  explicit ResponseWriter(const JsonValue* id) {
    line = "{";
    if (id != nullptr) {
      line += "\"id\":";
      AppendJsonValue(&line, *id);
      line += ",";
    }
  }
  void Field(std::string_view key, std::string_view string_value) {
    AppendJsonString(&line, key);
    line += ":";
    AppendJsonString(&line, string_value);
    line += ",";
  }
  void Raw(std::string_view key, std::string_view raw) {
    AppendJsonString(&line, key);
    line += ":";
    line += raw;
    line += ",";
  }
  // One JSON line, closing brace swapped in for the trailing comma.
  std::string Finish() {
    if (line.back() == ',') line.back() = '}';
    else line += "}";
    return line;
  }
  std::string line;
};

Status WriteAll(std::FILE* out, std::string_view bytes) {
  if (std::fwrite(bytes.data(), 1, bytes.size(), out) != bytes.size() ||
      std::fflush(out) != 0) {
    return Status::Internal("cannot write response");
  }
  return Status::OK();
}

Status WriteError(std::FILE* out, const JsonValue* id,
                  const std::string& message) {
  ResponseWriter w(id);
  w.Raw("ok", "false");
  w.Field("error", message);
  return WriteAll(out, w.Finish() + "\n");
}

Status WriteStats(std::FILE* out, const JsonValue* id,
                  const QueryCacheStats& stats) {
  ResponseWriter w(id);
  w.Raw("ok", "true");
  w.Raw("stats",
        StrFormat("{\"hits\":%llu,\"misses\":%llu,\"compiles\":%llu,"
                  "\"failures\":%llu,\"evictions\":%llu,\"entries\":%zu,"
                  "\"bytes\":%zu,\"compile_ms_total\":%.3f}",
                  static_cast<unsigned long long>(stats.hits),
                  static_cast<unsigned long long>(stats.misses),
                  static_cast<unsigned long long>(stats.compiles),
                  static_cast<unsigned long long>(stats.failures),
                  static_cast<unsigned long long>(stats.evictions),
                  stats.entries, stats.bytes, stats.compile_ms_total));
  return WriteAll(out, w.Finish() + "\n");
}

// Builds the request from its parsed JSON; error strings are user-facing.
Result<ServiceRequest> BuildRequest(const JsonValue& json,
                                    std::size_t default_threads) {
  ServiceRequest req;
  req.threads = default_threads;
  const JsonValue* query = json.Find("query");
  if (query == nullptr || !query->is_string()) {
    return Status::InvalidArgument("request needs a string \"query\" field");
  }
  req.query = query->string;
  if (const JsonValue* inputs = json.Find("inputs")) {
    if (!inputs->is_array()) {
      return Status::InvalidArgument("\"inputs\" must be an array of paths");
    }
    for (const JsonValue& item : inputs->items) {
      if (!item.is_string()) {
        return Status::InvalidArgument("\"inputs\" must be an array of paths");
      }
      // Same sniff as the CLI's positional inputs: a pretok cache replays
      // as events, anything else parses as text XML.
      req.inputs.push_back(IsPretokFile(item.string)
                               ? ParallelInput::PretokFile(item.string)
                               : ParallelInput::XmlFile(item.string));
    }
  }
  if (const JsonValue* xml = json.Find("xml")) {
    if (!xml->is_array()) {
      return Status::InvalidArgument(
          "\"xml\" must be an array of inline documents");
    }
    for (const JsonValue& item : xml->items) {
      if (!item.is_string()) {
        return Status::InvalidArgument(
            "\"xml\" must be an array of inline documents");
      }
      req.inputs.push_back(ParallelInput::XmlText(item.string));
    }
  }
  if (const JsonValue* threads = json.Find("threads")) {
    if (!threads->is_number() || threads->number < 0 ||
        threads->number != std::floor(threads->number)) {
      return Status::InvalidArgument("\"threads\" must be a count >= 0");
    }
    req.threads = static_cast<std::size_t>(threads->number);
  }
  if (const JsonValue* no_opt = json.Find("no_opt")) {
    if (!no_opt->is_bool()) {
      return Status::InvalidArgument("\"no_opt\" must be a boolean");
    }
    req.no_opt = no_opt->boolean;
  }
  if (req.inputs.empty()) {
    return Status::InvalidArgument(
        "request has no documents (give \"inputs\" paths or inline \"xml\")");
  }
  return req;
}

}  // namespace

Status ServeLoop(std::FILE* in, std::FILE* out, const ServeOptions& options) {
  QueryService service(options.cache, options.pipeline);
  std::string line;
  while (ReadLine(in, &line)) {
    // Blank lines keep the loop responsive under sloppy drivers.
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    Result<JsonValue> parsed = ParseJson(line);
    if (!parsed.ok()) {
      XQMFT_RETURN_NOT_OK(
          WriteError(out, nullptr, parsed.status().ToString()));
      continue;
    }
    const JsonValue& json = parsed.value();
    if (!json.is_object()) {
      XQMFT_RETURN_NOT_OK(
          WriteError(out, nullptr, "request must be a JSON object"));
      continue;
    }
    const JsonValue* id = json.Find("id");

    if (const JsonValue* cmd = json.Find("cmd")) {
      if (cmd->is_string() && cmd->string == "stats") {
        XQMFT_RETURN_NOT_OK(WriteStats(out, id, service.cache()->stats()));
      } else {
        XQMFT_RETURN_NOT_OK(WriteError(out, id, "unknown \"cmd\""));
      }
      continue;
    }

    Result<ServiceRequest> request =
        BuildRequest(json, options.default_threads);
    if (!request.ok()) {
      XQMFT_RETURN_NOT_OK(WriteError(out, id, request.status().ToString()));
      continue;
    }

    StringSink sink;
    ServiceRequestStats stats;
    Status st = service.Execute(request.value(), &sink, &stats);
    if (!st.ok()) {
      XQMFT_RETURN_NOT_OK(WriteError(out, id, st.ToString()));
      continue;
    }

    QueryCacheStats cache = service.cache()->stats();
    ResponseWriter w(id);
    w.Raw("ok", "true");
    w.Raw("bytes", std::to_string(sink.str().size()));
    w.Field("cache", stats.cache_hit ? "hit" : "miss");
    w.Raw("compile_ms", StrFormat("%.3f", stats.compile_ms));
    w.Raw("stream_ms", StrFormat("%.3f", stats.stream_ms));
    w.Raw("bytes_in", std::to_string(stats.total.bytes_in));
    w.Raw("output_events", std::to_string(stats.total.output_events));
    w.Raw("peak_mem_bytes", std::to_string(stats.total.peak_bytes));
    w.Raw("cache_hits", std::to_string(cache.hits));
    w.Raw("cache_misses", std::to_string(cache.misses));
    w.Raw("cache_entries", std::to_string(cache.entries));
    XQMFT_RETURN_NOT_OK(WriteAll(out, w.Finish() + "\n"));
    XQMFT_RETURN_NOT_OK(WriteAll(out, sink.str()));
    XQMFT_RETURN_NOT_OK(WriteAll(out, "\n"));
  }
  return Status::OK();
}

}  // namespace xqmft
