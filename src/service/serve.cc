#include "service/serve.h"

#include <cmath>
#include <string>
#include <vector>

#include "service/json.h"
#include "util/strings.h"
#include "xml/events.h"
#include "xml/pretok.h"

namespace xqmft {

namespace {

// Reads one newline-terminated line (without the newline); false on EOF
// with nothing read.
bool ReadLine(std::FILE* in, std::string* line) {
  line->clear();
  int c;
  while ((c = std::fgetc(in)) != EOF) {
    if (c == '\n') return true;
    line->push_back(static_cast<char>(c));
  }
  return !line->empty();
}

// Serializes a scalar-or-structured JsonValue back out (the request id is
// echoed verbatim whatever its shape).
void AppendJsonValue(std::string* out, const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      *out += "null";
      return;
    case JsonValue::Kind::kBool:
      *out += v.boolean ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber: {
      // Integers (the common id shape) print without an exponent.
      if (v.number == std::floor(v.number) && std::fabs(v.number) < 1e15) {
        *out += StrFormat("%lld", static_cast<long long>(v.number));
      } else {
        *out += StrFormat("%g", v.number);
      }
      return;
    }
    case JsonValue::Kind::kString:
      AppendJsonString(out, v.string);
      return;
    case JsonValue::Kind::kArray:
      out->push_back('[');
      for (std::size_t i = 0; i < v.items.size(); ++i) {
        if (i != 0) out->push_back(',');
        AppendJsonValue(out, v.items[i]);
      }
      out->push_back(']');
      return;
    case JsonValue::Kind::kObject:
      out->push_back('{');
      for (std::size_t i = 0; i < v.fields.size(); ++i) {
        if (i != 0) out->push_back(',');
        AppendJsonString(out, v.fields[i].first);
        out->push_back(':');
        AppendJsonValue(out, v.fields[i].second);
      }
      out->push_back('}');
      return;
  }
}

struct ResponseWriter {
  explicit ResponseWriter(const JsonValue* id) {
    line = "{";
    if (id != nullptr) {
      line += "\"id\":";
      AppendJsonValue(&line, *id);
      line += ",";
    }
  }
  void Field(std::string_view key, std::string_view string_value) {
    AppendJsonString(&line, key);
    line += ":";
    AppendJsonString(&line, string_value);
    line += ",";
  }
  void Raw(std::string_view key, std::string_view raw) {
    AppendJsonString(&line, key);
    line += ":";
    line += raw;
    line += ",";
  }
  // One JSON line, closing brace swapped in for the trailing comma.
  std::string Finish() {
    if (line.back() == ',') line.back() = '}';
    else line += "}";
    return line;
  }
  std::string line;
};

Status WriteAll(std::FILE* out, std::string_view bytes) {
  if (std::fwrite(bytes.data(), 1, bytes.size(), out) != bytes.size() ||
      std::fflush(out) != 0) {
    return Status::Internal("cannot write response");
  }
  return Status::OK();
}

Status WriteError(std::FILE* out, const JsonValue* id,
                  const std::string& message) {
  ResponseWriter w(id);
  w.Raw("ok", "false");
  w.Field("error", message);
  return WriteAll(out, w.Finish() + "\n");
}

Status WriteStats(std::FILE* out, const JsonValue* id,
                  const QueryCacheStats& stats) {
  ResponseWriter w(id);
  w.Raw("ok", "true");
  w.Raw("stats",
        StrFormat("{\"hits\":%llu,\"misses\":%llu,\"compiles\":%llu,"
                  "\"failures\":%llu,\"evictions\":%llu,\"entries\":%zu,"
                  "\"bytes\":%zu,\"compile_ms_total\":%.3f}",
                  static_cast<unsigned long long>(stats.hits),
                  static_cast<unsigned long long>(stats.misses),
                  static_cast<unsigned long long>(stats.compiles),
                  static_cast<unsigned long long>(stats.failures),
                  static_cast<unsigned long long>(stats.evictions),
                  stats.entries, stats.bytes, stats.compile_ms_total));
  return WriteAll(out, w.Finish() + "\n");
}

// Parses the shared "inputs" (file paths) and "xml" (inline documents)
// fields into ParallelInputs; used by single and batch requests alike.
Status ParseInputs(const JsonValue& json, std::vector<ParallelInput>* out) {
  if (const JsonValue* inputs = json.Find("inputs")) {
    if (!inputs->is_array()) {
      return Status::InvalidArgument("\"inputs\" must be an array of paths");
    }
    for (const JsonValue& item : inputs->items) {
      if (!item.is_string()) {
        return Status::InvalidArgument("\"inputs\" must be an array of paths");
      }
      // Same sniff as the CLI's positional inputs: a pretok cache replays
      // as events, anything else parses as text XML.
      out->push_back(IsPretokFile(item.string)
                         ? ParallelInput::PretokFile(item.string)
                         : ParallelInput::XmlFile(item.string));
    }
  }
  if (const JsonValue* xml = json.Find("xml")) {
    if (!xml->is_array()) {
      return Status::InvalidArgument(
          "\"xml\" must be an array of inline documents");
    }
    for (const JsonValue& item : xml->items) {
      if (!item.is_string()) {
        return Status::InvalidArgument(
            "\"xml\" must be an array of inline documents");
      }
      out->push_back(ParallelInput::XmlText(item.string));
    }
  }
  return Status::OK();
}

// Builds the request from its parsed JSON; error strings are user-facing.
Result<ServiceRequest> BuildRequest(const JsonValue& json,
                                    std::size_t default_threads) {
  ServiceRequest req;
  req.threads = default_threads;
  const JsonValue* query = json.Find("query");
  if (query == nullptr || !query->is_string()) {
    return Status::InvalidArgument("request needs a string \"query\" field");
  }
  req.query = query->string;
  XQMFT_RETURN_NOT_OK(ParseInputs(json, &req.inputs));
  if (const JsonValue* threads = json.Find("threads")) {
    if (!threads->is_number() || threads->number < 0 ||
        threads->number != std::floor(threads->number)) {
      return Status::InvalidArgument("\"threads\" must be a count >= 0");
    }
    req.threads = static_cast<std::size_t>(threads->number);
  }
  if (const JsonValue* no_opt = json.Find("no_opt")) {
    if (!no_opt->is_bool()) {
      return Status::InvalidArgument("\"no_opt\" must be a boolean");
    }
    req.no_opt = no_opt->boolean;
  }
  if (req.inputs.empty()) {
    return Status::InvalidArgument(
        "request has no documents (give \"inputs\" paths or inline \"xml\")");
  }
  return req;
}

// Handles a {"queries":[...]} batch: one ExecuteBatch over the shared
// document list, then per-query framed responses written strictly in
// request order (the service fills per_request[] by batch index, so the
// order the engines finish in never reorders the wire) followed by one
// batch summary line carrying the shared-parse attribution.
Status ServeBatch(std::FILE* out, QueryService* service, const JsonValue& json,
                  const JsonValue* id) {
  const JsonValue* queries = json.Find("queries");
  if (!queries->is_array() || queries->items.empty()) {
    return WriteError(out, id, "\"queries\" must be a non-empty array");
  }
  std::vector<ParallelInput> inputs;
  Status in_st = ParseInputs(json, &inputs);
  if (!in_st.ok()) return WriteError(out, id, in_st.ToString());
  if (inputs.empty()) {
    return WriteError(
        out, id,
        "batch has no documents (give \"inputs\" paths or inline \"xml\")");
  }
  MultiQueryOptions multi;
  if (const JsonValue* up = json.Find("union_projection")) {
    if (!up->is_bool()) {
      return WriteError(out, id, "\"union_projection\" must be a boolean");
    }
    multi.union_projection = up->boolean;
  }

  std::vector<ServiceRequest> requests;
  std::vector<const JsonValue*> ids;
  for (const JsonValue& item : queries->items) {
    const JsonValue* query = item.is_object() ? item.Find("query") : nullptr;
    if (query == nullptr || !query->is_string()) {
      return WriteError(
          out, id,
          "every \"queries\" entry needs an object with a string \"query\"");
    }
    ServiceRequest req;
    req.query = query->string;
    req.inputs = inputs;
    if (const JsonValue* no_opt = item.Find("no_opt")) {
      if (!no_opt->is_bool()) {
        return WriteError(out, id, "\"no_opt\" must be a boolean");
      }
      req.no_opt = no_opt->boolean;
    }
    ids.push_back(item.Find("id"));
    requests.push_back(std::move(req));
  }

  std::vector<StringSink> sinks(requests.size());
  std::vector<OutputSink*> sink_ptrs;
  sink_ptrs.reserve(sinks.size());
  for (StringSink& sink : sinks) sink_ptrs.push_back(&sink);
  ServiceBatchStats stats;
  Status st = service->ExecuteBatch(requests, sink_ptrs, &stats, multi);
  if (stats.per_request.size() != requests.size()) {
    // Batch-level rejection: nothing ran, one error response.
    return WriteError(out, id, st.ToString());
  }

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const ServiceRequestStats& rs = stats.per_request[i];
    if (!rs.status.ok()) {
      XQMFT_RETURN_NOT_OK(WriteError(out, ids[i], rs.status.ToString()));
      continue;
    }
    ResponseWriter w(ids[i]);
    w.Raw("ok", "true");
    w.Raw("bytes", std::to_string(sinks[i].str().size()));
    w.Field("cache", rs.cache_hit ? "hit" : "miss");
    w.Raw("compile_ms", StrFormat("%.3f", rs.compile_ms));
    w.Raw("stream_ms", StrFormat("%.3f", rs.stream_ms));
    w.Raw("deduped", rs.deduped ? "true" : "false");
    w.Raw("events_fed", std::to_string(rs.events_fed));
    w.Raw("events_skipped", std::to_string(rs.events_skipped));
    w.Raw("output_events", std::to_string(rs.total.output_events));
    w.Raw("peak_mem_bytes", std::to_string(rs.total.peak_bytes));
    w.Field("engine", rs.total.used_ops_engine ? "ops" : "table");
    XQMFT_RETURN_NOT_OK(WriteAll(out, w.Finish() + "\n"));
    XQMFT_RETURN_NOT_OK(WriteAll(out, sinks[i].str()));
    XQMFT_RETURN_NOT_OK(WriteAll(out, "\n"));
  }

  ResponseWriter w(id);
  w.Raw("ok", st.ok() ? "true" : "false");
  w.Raw("batch", "true");
  w.Raw("requests", std::to_string(requests.size()));
  w.Raw("documents", std::to_string(stats.documents));
  w.Raw("parsed_bytes", std::to_string(stats.parsed_bytes));
  w.Raw("unique_plans", std::to_string(stats.unique_plans));
  w.Raw("deduped_requests", std::to_string(stats.deduped_requests));
  w.Raw("stream_ms", StrFormat("%.3f", stats.stream_ms));
  return WriteAll(out, w.Finish() + "\n");
}

}  // namespace

Status ServeLoop(std::FILE* in, std::FILE* out, const ServeOptions& options) {
  QueryService service(options.cache, options.pipeline);
  std::string line;
  while (ReadLine(in, &line)) {
    // Blank lines keep the loop responsive under sloppy drivers.
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    Result<JsonValue> parsed = ParseJson(line);
    if (!parsed.ok()) {
      XQMFT_RETURN_NOT_OK(
          WriteError(out, nullptr, parsed.status().ToString()));
      continue;
    }
    const JsonValue& json = parsed.value();
    if (!json.is_object()) {
      XQMFT_RETURN_NOT_OK(
          WriteError(out, nullptr, "request must be a JSON object"));
      continue;
    }
    const JsonValue* id = json.Find("id");

    if (const JsonValue* cmd = json.Find("cmd")) {
      if (cmd->is_string() && cmd->string == "stats") {
        XQMFT_RETURN_NOT_OK(WriteStats(out, id, service.cache()->stats()));
      } else {
        XQMFT_RETURN_NOT_OK(WriteError(out, id, "unknown \"cmd\""));
      }
      continue;
    }

    if (json.Find("queries") != nullptr) {
      XQMFT_RETURN_NOT_OK(ServeBatch(out, &service, json, id));
      continue;
    }

    Result<ServiceRequest> request =
        BuildRequest(json, options.default_threads);
    if (!request.ok()) {
      XQMFT_RETURN_NOT_OK(WriteError(out, id, request.status().ToString()));
      continue;
    }

    StringSink sink;
    ServiceRequestStats stats;
    Status st = service.Execute(request.value(), &sink, &stats);
    if (!st.ok()) {
      XQMFT_RETURN_NOT_OK(WriteError(out, id, st.ToString()));
      continue;
    }

    QueryCacheStats cache = service.cache()->stats();
    ResponseWriter w(id);
    w.Raw("ok", "true");
    w.Raw("bytes", std::to_string(sink.str().size()));
    w.Field("cache", stats.cache_hit ? "hit" : "miss");
    w.Raw("compile_ms", StrFormat("%.3f", stats.compile_ms));
    w.Raw("stream_ms", StrFormat("%.3f", stats.stream_ms));
    w.Raw("bytes_in", std::to_string(stats.total.bytes_in));
    w.Raw("output_events", std::to_string(stats.total.output_events));
    w.Raw("peak_mem_bytes", std::to_string(stats.total.peak_bytes));
    w.Field("engine", stats.total.used_ops_engine ? "ops" : "table");
    w.Raw("cache_hits", std::to_string(cache.hits));
    w.Raw("cache_misses", std::to_string(cache.misses));
    w.Raw("cache_entries", std::to_string(cache.entries));
    XQMFT_RETURN_NOT_OK(WriteAll(out, w.Finish() + "\n"));
    XQMFT_RETURN_NOT_OK(WriteAll(out, sink.str()));
    XQMFT_RETURN_NOT_OK(WriteAll(out, "\n"));
  }
  return Status::OK();
}

}  // namespace xqmft
