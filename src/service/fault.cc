#include "service/fault.h"

#include <chrono>
#include <thread>

namespace xqmft {

bool ParseFaultKind(std::string_view name, FaultSpec::Kind* kind) {
  if (name == "none") {
    *kind = FaultSpec::Kind::kNone;
  } else if (name == "truncate") {
    *kind = FaultSpec::Kind::kTruncate;
  } else if (name == "error") {
    *kind = FaultSpec::Kind::kError;
  } else if (name == "stall") {
    *kind = FaultSpec::Kind::kStall;
  } else {
    return false;
  }
  return true;
}

Status FaultInjectingSource::Next(XmlEvent* event) {
  switch (spec_.kind) {
    case FaultSpec::Kind::kNone:
      break;
    case FaultSpec::Kind::kTruncate:
      if (produced_ >= spec_.at_event) {
        // The source just ends: whatever elements are open stay unclosed,
        // exactly like a connection dropped mid-document.
        *event = XmlEvent{};
        event->type = XmlEventType::kEndOfDocument;
        ++produced_;
        return Status::OK();
      }
      break;
    case FaultSpec::Kind::kError:
      if (produced_ >= spec_.at_event) {
        return Status::InvalidArgument("injected source fault");
      }
      break;
    case FaultSpec::Kind::kStall:
      if (produced_ >= spec_.at_event && !stalled_) {
        stalled_ = true;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(spec_.stall_ms));
      }
      break;
  }
  Status st = inner_->Next(event);
  if (st.ok()) ++produced_;
  return st;
}

}  // namespace xqmft
