// Transport-independent serving wire protocol: one NDJSON request line in,
// framed response text out.
//
// ServeLoop (serve.h, stdin/stdout) and NetServer (net/server.h, sockets)
// speak the same request schema; this layer owns everything between "here
// is one request line" and "here are the response bytes": JSON parsing,
// request validation and limits, cmd dispatch, single/batch execution
// through a QueryService, deadline arming, fault injection, and response
// framing. A transport only moves bytes and decides admission.
//
// Responses are appended to a caller-owned string: a header line of JSON,
// then (for successful query requests) exactly `bytes` bytes of output and
// a newline. Error headers carry a machine-readable "status" field
// (WireStatusString) after the human-readable "error" message:
//
//   {"id":7,"ok":false,"error":"deadline exceeded","status":"deadline_exceeded"}
#ifndef XQMFT_SERVICE_WIRE_H_
#define XQMFT_SERVICE_WIRE_H_

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

#include "service/json.h"
#include "service/query_service.h"
#include "util/cancel.h"
#include "util/status.h"

namespace xqmft {

/// \brief Per-request input limits (applied before any execution).
///
/// Limits are serving-robustness knobs: a request that exceeds one is
/// rejected with an error response and the session continues — the point is
/// that no single request can make the server buffer unbounded input.
struct RequestLimits {
  /// Longest accepted request line, bytes (the JSON, not the documents it
  /// names). Transports enforce this while reading; 0 = unlimited.
  std::size_t max_line_bytes = 1u << 20;
  /// Total inline "xml" document bytes accepted per request; 0 = unlimited.
  /// File inputs are not counted — they stream, inline documents sit in the
  /// request (and its JSON escape expansion) in memory.
  std::size_t max_inline_xml_bytes = 16u << 20;
};

/// \brief Configuration of a RequestHandler.
struct WireOptions {
  RequestLimits limits;
  /// Worker threads when a request does not say (0 = hardware, 1 = serial).
  std::size_t default_threads = 1;
  /// Accept the per-request "fault" field (service/fault.h). Off by
  /// default: fault injection is a test/stress harness, not a production
  /// surface, so transports enable it explicitly.
  bool allow_fault_injection = false;
  /// Extra "cmd" handler tried before the built-ins; return true if the
  /// command was handled (response appended to *out). Lets a transport add
  /// commands (the net server's "server_stats") without the wire layer
  /// knowing about it.
  std::function<bool(const std::string& cmd, const JsonValue* id,
                     std::string* out)>
      cmd_hook;
  /// Called once per successfully executed run (single, batch member, or
  /// coalesced member) with the run's aggregated stream stats. Transports
  /// use it to count which execution core served (the net server's
  /// ops/table/hybrid run counters). May be called from worker threads;
  /// the callback must be thread-safe.
  std::function<void(const StreamStats& total)> run_observer;
};

/// Serializes a JsonValue back out (request ids are echoed verbatim
/// whatever their shape).
void AppendJsonValue(std::string* out, const JsonValue& v);

/// \brief Builds one JSON response header line field by field.
struct ResponseWriter {
  explicit ResponseWriter(const JsonValue* id) {
    line = "{";
    if (id != nullptr) {
      line += "\"id\":";
      AppendJsonValue(&line, *id);
      line += ",";
    }
  }
  void Field(std::string_view key, std::string_view string_value) {
    AppendJsonString(&line, key);
    line += ":";
    AppendJsonString(&line, string_value);
    line += ",";
  }
  void Raw(std::string_view key, std::string_view raw) {
    AppendJsonString(&line, key);
    line += ":";
    line += raw;
    line += ",";
  }
  // One JSON line, closing brace swapped in for the trailing comma.
  std::string Finish() {
    if (line.back() == ',') line.back() = '}';
    else line += "}";
    return line;
  }
  std::string line;
};

/// The wire-protocol "status" token for a code: "ok", "invalid_argument",
/// "deadline_exceeded", "cancelled", "unavailable", ... (snake_case of the
/// StatusCode name). Stable: clients dispatch on these.
const char* WireStatusString(StatusCode code);

/// Appends a complete error response line: ok:false, the message, and the
/// machine-readable status token ("error" before "status" — existing
/// clients key on the ok/error adjacency).
void AppendErrorResponse(std::string* out, const JsonValue* id,
                         std::string_view message, StatusCode code);

/// Appends a request-rejection response with the literal "bad_request"
/// status token: the request is structurally unacceptable (e.g. a
/// malformed deadline_ms) and was refused before admission, as opposed to
/// an accepted request that failed. Returns kInvalidArgument for the
/// transport's outcome counters.
StatusCode AppendBadRequestResponse(std::string* out, const JsonValue* id,
                                    std::string_view message);

/// The scheduler's coalescing key for one parsed request: requests with
/// equal non-empty keys name the same document list (the raw "inputs" and
/// "xml" fields, which parse deterministically into the same ParallelInput
/// list ExecuteBatch groups by) and compatible plan-shaping options, so
/// they may legally share one ExecuteBatch pass. Returns "" for requests
/// that must never be coalesced: cmd and batch forms, fault injection,
/// explicit "threads", and shapes the single-request path should reject
/// with its exact error message.
std::string CoalesceKey(const JsonValue& json);

/// One member of a coalesced run (see RequestHandler::HandleCoalesced).
struct CoalescedJob {
  const JsonValue* json = nullptr;  ///< parsed request (single-query form)
  CancelToken* cancel = nullptr;    ///< member token, armed at admission
  std::string* out = nullptr;       ///< receives the member's framed response
  StatusCode code = StatusCode::kOk;  ///< outcome, for transport counters
};

/// \brief Executes request lines against a QueryService.
///
/// Stateless between calls apart from the service's cache; thread-safe as
/// long as concurrent calls use distinct `out` strings (the service and its
/// cache are themselves thread-safe), which is how the net server's worker
/// pool shares one handler.
class RequestHandler {
 public:
  RequestHandler(QueryService* service, WireOptions options)
      : service_(service), options_(std::move(options)) {}

  /// Parses and executes one request line, appending the complete framed
  /// response (or error response) to `*out`. Never fails the session: the
  /// return code is the request's outcome (kOk, kInvalidArgument for
  /// malformed requests, kDeadlineExceeded / kCancelled for tripped runs,
  /// ...) for the transport's counters.
  ///
  /// `cancel`, when given, must outlive the call; the handler arms the
  /// request's deadline_ms on it unless the transport armed one already
  /// (a server arms from admission time so queue wait counts). Null is
  /// fine — a request-local token is used when a deadline needs one.
  StatusCode HandleLine(std::string_view line, CancelToken* cancel,
                        std::string* out);

  /// HandleLine after JSON parsing — for transports that parse on an event
  /// loop thread (to admission-check cheaply) and execute on a worker.
  StatusCode HandleParsed(const JsonValue& json, CancelToken* cancel,
                          std::string* out);

  /// Executes a group of requests sharing one CoalesceKey as a single
  /// ExecuteBatch pass: one tokenization per document, plans deduped
  /// through the cache, each member's output replayed into its own framed
  /// response (the single-request response shape plus a "coalesced":N
  /// field, N = members that actually shared the pass). Members whose
  /// token tripped before the pass, or whose request fails to build, drop
  /// out with their individual error responses; a member tripping
  /// mid-stream detaches without disturbing the rest. Per-member outcomes
  /// land in group[i].code.
  ///
  /// `*shared_members` (optional) receives N; the return value is the
  /// number of document parses the group saved over independent execution
  /// ((N - 1) × documents streamed), both 0 when fewer than two members
  /// reached the shared pass.
  std::uint64_t HandleCoalesced(std::vector<CoalescedJob>* group,
                                std::size_t* shared_members = nullptr);

  const WireOptions& options() const { return options_; }
  QueryService* service() { return service_; }

 private:
  StatusCode HandleBatch(const JsonValue& json, const JsonValue* id,
                         CancelToken* cancel, std::string* out);

  QueryService* service_;
  WireOptions options_;
};

}  // namespace xqmft

#endif  // XQMFT_SERVICE_WIRE_H_
