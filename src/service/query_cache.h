// Process-wide compile-once query cache.
//
// The paper's pitch is that an MFT is a *compiled* artifact: translate the
// XQuery fragment once, then stream arbitrarily many documents through it.
// PR 2's Mft::dispatch() memoized rule compilation per transducer; this
// cache lifts that to the serving boundary — one process-wide map from
// query text to the immutable CompiledPlan, so a multi-query frontend
// compiles each distinct query exactly once however many requests, threads,
// or documents hit it.
//
// Three properties matter for a serving cache and are pinned by tests:
//
//   * Sharing is safe by type: the cache stores
//     shared_ptr<const CompiledPlan> — immutable after build, dispatch
//     pre-compiled — so handing one plan to N concurrent requests needs no
//     locking beyond the map itself, and an evicted plan stays alive until
//     its last in-flight run drops it.
//   * Singleflight: concurrent lookups of one not-yet-cached query compile
//     once; the losers wait for the winner's plan instead of burning CPU on
//     duplicate compiles (compile count == distinct queries under load).
//   * Keys are normalized: queries differing only in insignificant
//     whitespace (between expression tokens — never inside string literals
//     or element text content, where whitespace is data) share an entry,
//     and every plan-shaping option (optimize flags, SAX tokenization
//     options, step budget) is folded into the key so a cached plan can
//     never serve a request that compiled under different semantics.
#ifndef XQMFT_SERVICE_QUERY_CACHE_H_
#define XQMFT_SERVICE_QUERY_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/pipeline.h"
#include "util/status.h"

namespace xqmft {

struct QueryCacheOptions {
  /// Maximum resident plans; least-recently-used entries are evicted beyond
  /// it. 0 = unbounded.
  std::size_t capacity = 64;
  /// Approximate byte budget for resident plans (CompiledPlan::ApproxBytes
  /// plus key text); LRU eviction beyond it, but the most recent entry is
  /// never evicted (a cache that cannot hold one plan would disable
  /// compile-once entirely). 0 = unbounded.
  std::size_t max_bytes = 0;
};

struct QueryCacheStats {
  std::uint64_t hits = 0;       ///< served an already-resident plan
  std::uint64_t misses = 0;     ///< compiled, or waited on an in-flight compile
  std::uint64_t compiles = 0;   ///< compiles executed (singleflight dedups)
  std::uint64_t failures = 0;   ///< compiles that returned an error
  std::uint64_t evictions = 0;  ///< plans dropped by LRU/byte pressure
  std::size_t entries = 0;      ///< resident plans now
  std::size_t bytes = 0;        ///< approx resident plan bytes now
  double compile_ms_total = 0.0;  ///< wall time spent compiling
};

/// \brief One lookup's outcome: the plan plus what serving it cost.
struct QueryCacheLookup {
  std::shared_ptr<const CompiledPlan> plan;
  bool hit = false;         ///< true: served without compiling or waiting
  double compile_ms = 0.0;  ///< compile wall time this lookup paid
};

/// \brief Thread-safe LRU cache of CompiledPlans keyed by normalized query
/// text + plan-shaping options, with singleflight compilation.
class QueryCache {
 public:
  explicit QueryCache(QueryCacheOptions options = {});

  /// The cached plan for (query_text, options), compiling it on miss.
  /// Thread-safe. Concurrent misses on one key compile once and share the
  /// result; a failed compile is reported to every waiter and not cached
  /// (the next lookup retries).
  Result<QueryCacheLookup> Lookup(const std::string& query_text,
                                  const PipelineOptions& options = {});

  /// Lookup() without the cost breakdown.
  Result<std::shared_ptr<const CompiledPlan>> Get(
      const std::string& query_text, const PipelineOptions& options = {});

  QueryCacheStats stats() const;

  /// Drops every resident plan (in-flight compiles finish and insert as
  /// usual). Counts the drops as evictions.
  void Clear();

  /// Collapses insignificant whitespace: runs of ASCII whitespace between
  /// expression tokens become one space and leading/trailing whitespace is
  /// dropped, while every context where whitespace is (or may be) content —
  /// string literals, raw text inside element constructors, tag markup —
  /// is preserved verbatim, so two queries normalizing equal really are
  /// the same program (`<out>a  b</out>` and `<out>a b</out>` stay
  /// distinct keys).
  static std::string NormalizeQuery(std::string_view text);

 private:
  struct Entry {
    std::shared_ptr<const CompiledPlan> plan;  ///< null while compiling
    std::size_t bytes = 0;
    /// Position in lru_ (valid once plan is set).
    std::list<std::string>::iterator lru;
  };

  static std::string MakeKey(std::string_view normalized,
                             const PipelineOptions& options);
  /// Evicts LRU entries beyond capacity/byte budget. Requires mu_ held.
  void EvictLocked();

  const QueryCacheOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< signaled when a compile finishes
  std::unordered_map<std::string, Entry> entries_;
  /// Ready entries only, most recent at front; compiling entries are not in
  /// the list and therefore cannot be evicted mid-flight.
  std::list<std::string> lru_;
  QueryCacheStats stats_;
  std::size_t resident_bytes_ = 0;
};

}  // namespace xqmft

#endif  // XQMFT_SERVICE_QUERY_CACHE_H_
