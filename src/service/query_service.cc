#include "service/query_service.h"

#include <chrono>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "parallel/merge_sink.h"

namespace xqmft {

StreamStats AggregateStreamStats(const std::vector<StreamStats>& per_input) {
  StreamStats out;
  for (const StreamStats& s : per_input) {
    if (s.peak_bytes > out.peak_bytes) out.peak_bytes = s.peak_bytes;
    out.final_bytes += s.final_bytes;
    out.rule_applications += s.rule_applications;
    out.cells_created += s.cells_created;
    out.cells_arena += s.cells_arena;
    out.exprs_created += s.exprs_created;
    out.bytes_in += s.bytes_in;
    out.output_events += s.output_events;
    out.used_ops_engine = out.used_ops_engine || s.used_ops_engine;
    out.bridge_runs += s.bridge_runs;
    out.hybrid_plan = out.hybrid_plan || s.hybrid_plan;
  }
  return out;
}

QueryService::QueryService(QueryCacheOptions cache_options,
                           PipelineOptions base_options)
    : base_options_(base_options), cache_(cache_options) {}

Status QueryService::Execute(const ServiceRequest& request, OutputSink* sink,
                             ServiceRequestStats* stats) {
  if (request.inputs.empty()) {
    return Status::InvalidArgument("request has no inputs");
  }
  PipelineOptions options = base_options_;
  // no_opt can only turn optimization off: a service configured with
  // optimize=false (e.g. `serve --no-opt`) stays unoptimized for every
  // request.
  if (request.no_opt) options.optimize = false;
  XQMFT_ASSIGN_OR_RETURN(QueryCacheLookup lookup,
                         cache_.Lookup(request.query, options));

  ParallelOptions par;
  par.threads = request.threads;
  // A deadline with no caller token arms a request-local one; a caller token
  // that already carries a deadline (armed from admission time, so queue
  // wait counts against the budget) is left alone.
  CancelToken local_token;
  CancelToken* token = request.cancel;
  if (request.deadline_ms > 0) {
    if (token == nullptr) token = &local_token;
    if (!token->has_deadline()) token->SetDeadlineAfterMs(request.deadline_ms);
  }
  par.cancel = token;
  std::vector<StreamStats> per_input;
  auto t0 = std::chrono::steady_clock::now();
  Status st = lookup.plan->StreamMany(request.inputs, sink, par, &per_input);
  double stream_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  if (stats != nullptr) {
    stats->cache_hit = lookup.hit;
    stats->compile_ms = lookup.compile_ms;
    stats->stream_ms = stream_ms;
    stats->total = AggregateStreamStats(per_input);
    stats->per_input = std::move(per_input);
  }
  return st;
}

namespace {

// Groups are keyed by the exact document list: same kinds, same values, same
// order. Length-prefixing keeps "ab"+"c" distinct from "a"+"bc".
std::string InputsKey(const std::vector<ParallelInput>& inputs) {
  std::string key;
  for (const ParallelInput& in : inputs) {
    key.push_back(static_cast<char>(static_cast<int>(in.kind)) + '0');
    key += std::to_string(in.value.size());
    key.push_back(':');
    key += in.value;
  }
  return key;
}

// One shared streaming pass: requests over the same document list, one slot
// per distinct plan. `requests_for_plan[s]` lists every batch index whose
// output replays from slot s.
struct BatchGroup {
  const std::vector<ParallelInput>* inputs = nullptr;
  std::vector<const CompiledPlan*> plans;
  std::vector<std::vector<std::size_t>> requests_for_plan;
};

}  // namespace

Status QueryService::ExecuteBatch(const std::vector<ServiceRequest>& requests,
                                  const std::vector<OutputSink*>& sinks,
                                  ServiceBatchStats* stats,
                                  const MultiQueryOptions& multi_options) {
  if (requests.empty()) {
    return Status::InvalidArgument("batch has no requests");
  }
  if (requests.size() != sinks.size()) {
    return Status::InvalidArgument("batch needs one sink per request");
  }
  for (OutputSink* sink : sinks) {
    if (sink == nullptr) return Status::InvalidArgument("null sink in batch");
  }

  const std::size_t n = requests.size();
  std::vector<ServiceRequestStats> per_request(n);

  // Resolve every plan through the cache up front: compile cost (and the
  // hit/miss attribution) is per-request even though streaming is shared,
  // and the cache's singleflight means two requests spelling the same query
  // pay for one compile between them.
  std::vector<std::shared_ptr<const CompiledPlan>> plans(n);
  for (std::size_t i = 0; i < n; ++i) {
    // A member whose token already tripped (deadline spent in the queue,
    // client disconnected) is excluded before the shared pass starts: no
    // compile, no slot, just its status.
    if (requests[i].cancel != nullptr) {
      Status pre = requests[i].cancel->Check();
      if (!pre.ok()) {
        per_request[i].status = pre;
        continue;
      }
    }
    if (requests[i].inputs.empty()) {
      per_request[i].status = Status::InvalidArgument("request has no inputs");
      continue;
    }
    PipelineOptions options = base_options_;
    if (requests[i].no_opt) options.optimize = false;
    Result<QueryCacheLookup> lookup =
        cache_.Lookup(requests[i].query, options);
    if (!lookup.ok()) {
      per_request[i].status = lookup.status();
      continue;
    }
    per_request[i].cache_hit = lookup.value().hit;
    per_request[i].compile_ms = lookup.value().compile_ms;
    plans[i] = std::move(lookup.value().plan);
  }

  // Group by document list, deduplicating plans within each group. The
  // cache returns one shared plan per distinct (normalized query, options),
  // so pointer identity is the dedup key.
  std::vector<BatchGroup> groups;
  std::unordered_map<std::string, std::size_t> group_index;
  std::unordered_set<const CompiledPlan*> distinct_plans;
  std::size_t deduped_requests = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (plans[i] == nullptr) continue;
    auto [it, fresh] =
        group_index.emplace(InputsKey(requests[i].inputs), groups.size());
    if (fresh) groups.emplace_back();
    BatchGroup& group = groups[it->second];
    if (group.inputs == nullptr) group.inputs = &requests[i].inputs;
    std::size_t slot = group.plans.size();
    for (std::size_t s = 0; s < group.plans.size(); ++s) {
      if (group.plans[s] == plans[i].get()) { slot = s; break; }
    }
    if (slot == group.plans.size()) {
      group.plans.push_back(plans[i].get());
      group.requests_for_plan.emplace_back();
    } else {
      per_request[i].deduped = true;
      ++deduped_requests;
    }
    group.requests_for_plan[slot].push_back(i);
    distinct_plans.insert(plans[i].get());
  }

  std::size_t documents = 0;
  std::uint64_t parsed_bytes = 0;
  double total_stream_ms = 0.0;
  for (BatchGroup& group : groups) {
    const std::size_t slots = group.plans.size();
    std::vector<EventBuffer> buffers(slots);
    std::vector<Status> slot_status(slots, Status::OK());
    std::vector<std::vector<StreamStats>> slot_inputs(slots);
    std::vector<std::uint64_t> slot_events_fed(slots, 0);
    std::uint64_t group_skipped = 0;

    // A slot serving exactly one member (or members sharing one token)
    // streams under that member's cancel token, so a disconnect or deadline
    // detaches it mid-pass through the per-plan isolation path. A deduped
    // slot with several independent members keeps streaming while any of
    // them might still want the output; a tripped member is denied at
    // replay time below instead.
    std::vector<const CancelToken*> slot_cancel(slots, nullptr);
    for (std::size_t s = 0; s < slots; ++s) {
      const std::vector<std::size_t>& members = group.requests_for_plan[s];
      const CancelToken* shared =
          members.empty() ? nullptr : requests[members.front()].cancel;
      for (std::size_t i : members) {
        if (requests[i].cancel != shared) { shared = nullptr; break; }
      }
      slot_cancel[s] = shared;
    }

    auto t0 = std::chrono::steady_clock::now();
    for (const ParallelInput& doc : *group.inputs) {
      // A slot that failed on an earlier document is done: the serial
      // equivalent (Execute aborting the whole request on first error)
      // never reaches the later documents either.
      std::vector<const CompiledPlan*> live_plans;
      std::vector<OutputSink*> live_sinks;
      std::vector<std::size_t> live_slots;
      for (std::size_t s = 0; s < slots; ++s) {
        if (!slot_status[s].ok()) continue;
        live_plans.push_back(group.plans[s]);
        live_sinks.push_back(&buffers[s]);
        live_slots.push_back(s);
      }
      if (live_plans.empty()) break;

      MultiQueryOptions pass_options = multi_options;
      pass_options.per_plan_cancel.reserve(live_slots.size());
      for (std::size_t s : live_slots) {
        pass_options.per_plan_cancel.push_back(slot_cancel[s]);
      }

      std::vector<MultiPlanResult> results;
      MultiQueryStats run_stats;
      Status st = StreamAllTransformInput(live_plans, doc, live_sinks,
                                          pass_options, &results, &run_stats);
      ++documents;
      parsed_bytes += run_stats.bytes_in;
      group_skipped += run_stats.events_skipped;
      if (results.size() == live_slots.size()) {
        for (std::size_t k = 0; k < live_slots.size(); ++k) {
          std::size_t s = live_slots[k];
          slot_inputs[s].push_back(results[k].stats);
          slot_events_fed[s] += results[k].events_fed;
          if (!results[k].status.ok()) slot_status[s] = results[k].status;
        }
      } else if (!st.ok()) {
        // Setup-level rejection (e.g. mixed tokenization options within the
        // group) never reached the engines; it fails every live slot.
        for (std::size_t s : live_slots) slot_status[s] = st;
      }
    }
    double group_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    total_stream_ms += group_ms;

    for (std::size_t s = 0; s < slots; ++s) {
      for (std::size_t i : group.requests_for_plan[s]) {
        per_request[i].status = slot_status[s];
        per_request[i].stream_ms = group_ms;
        per_request[i].per_input = slot_inputs[s];
        per_request[i].total = AggregateStreamStats(slot_inputs[s]);
        per_request[i].events_fed = slot_events_fed[s];
        per_request[i].events_skipped = group_skipped;
        if (!slot_status[s].ok()) continue;
        // A member whose own token tripped while a shared (deduped) slot
        // kept streaming for its siblings gets its token's status, not a
        // replay — nobody is waiting for those bytes.
        if (requests[i].cancel != nullptr) {
          Status member = requests[i].cancel->Check();
          if (!member.ok()) {
            per_request[i].status = member;
            continue;
          }
        }
        buffers[s].Replay(sinks[i]);
      }
    }
  }

  Status first_failure = Status::OK();
  std::size_t failed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (per_request[i].status.ok()) continue;
    ++failed;
    if (first_failure.ok()) first_failure = per_request[i].status;
  }
  if (stats != nullptr) {
    stats->documents = documents;
    stats->parsed_bytes = parsed_bytes;
    stats->unique_plans = distinct_plans.size();
    stats->deduped_requests = deduped_requests;
    stats->stream_ms = total_stream_ms;
    stats->per_request = std::move(per_request);
  }
  if (stats == nullptr || failed == n) return first_failure;
  return Status::OK();
}

}  // namespace xqmft
