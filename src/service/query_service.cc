#include "service/query_service.h"

#include <chrono>

namespace xqmft {

StreamStats AggregateStreamStats(const std::vector<StreamStats>& per_input) {
  StreamStats out;
  for (const StreamStats& s : per_input) {
    if (s.peak_bytes > out.peak_bytes) out.peak_bytes = s.peak_bytes;
    out.final_bytes += s.final_bytes;
    out.rule_applications += s.rule_applications;
    out.cells_created += s.cells_created;
    out.exprs_created += s.exprs_created;
    out.bytes_in += s.bytes_in;
    out.output_events += s.output_events;
  }
  return out;
}

QueryService::QueryService(QueryCacheOptions cache_options,
                           PipelineOptions base_options)
    : base_options_(base_options), cache_(cache_options) {}

Status QueryService::Execute(const ServiceRequest& request, OutputSink* sink,
                             ServiceRequestStats* stats) {
  if (request.inputs.empty()) {
    return Status::InvalidArgument("request has no inputs");
  }
  PipelineOptions options = base_options_;
  // no_opt can only turn optimization off: a service configured with
  // optimize=false (e.g. `serve --no-opt`) stays unoptimized for every
  // request.
  if (request.no_opt) options.optimize = false;
  XQMFT_ASSIGN_OR_RETURN(QueryCacheLookup lookup,
                         cache_.Lookup(request.query, options));

  ParallelOptions par;
  par.threads = request.threads;
  std::vector<StreamStats> per_input;
  auto t0 = std::chrono::steady_clock::now();
  Status st = lookup.plan->StreamMany(request.inputs, sink, par, &per_input);
  double stream_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  if (stats != nullptr) {
    stats->cache_hit = lookup.hit;
    stats->compile_ms = lookup.compile_ms;
    stats->stream_ms = stream_ms;
    stats->total = AggregateStreamStats(per_input);
    stats->per_input = std::move(per_input);
  }
  return st;
}

}  // namespace xqmft
