#include "service/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace xqmft {

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    XQMFT_RETURN_NOT_OK(ParseValue(&v, 0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Error(std::string("expected '") + c + "'");
    }
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
      case 'f':
        return ParseKeyword(out);
      case 'n':
        XQMFT_RETURN_NOT_OK(ExpectWord("null"));
        out->kind = JsonValue::Kind::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ExpectWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("invalid literal");
    }
    pos_ += word.size();
    return Status::OK();
  }

  Status ParseKeyword(JsonValue* out) {
    out->kind = JsonValue::Kind::kBool;
    if (text_[pos_] == 't') {
      XQMFT_RETURN_NOT_OK(ExpectWord("true"));
      out->boolean = true;
    } else {
      XQMFT_RETURN_NOT_OK(ExpectWord("false"));
      out->boolean = false;
    }
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("invalid value");
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out->number = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("invalid number");
    out->kind = JsonValue::Kind::kNumber;
    return Status::OK();
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, unsigned cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    XQMFT_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("truncated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          XQMFT_RETURN_NOT_OK(ParseHex4(&cp));
          // Surrogate pair: a high surrogate must be followed by \uDC00..
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired surrogate");
            }
            pos_ += 2;
            unsigned lo = 0;
            XQMFT_RETURN_NOT_OK(ParseHex4(&lo));
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    XQMFT_RETURN_NOT_OK(Expect('['));
    out->kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue item;
      XQMFT_RETURN_NOT_OK(ParseValue(&item, depth + 1));
      out->items.push_back(std::move(item));
      SkipSpace();
      if (Consume(']')) return Status::OK();
      XQMFT_RETURN_NOT_OK(Expect(','));
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    XQMFT_RETURN_NOT_OK(Expect('{'));
    out->kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipSpace();
      std::string key;
      XQMFT_RETURN_NOT_OK(ParseString(&key));
      SkipSpace();
      XQMFT_RETURN_NOT_OK(Expect(':'));
      JsonValue value;
      XQMFT_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->fields.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume('}')) return Status::OK();
      XQMFT_RETURN_NOT_OK(Expect(','));
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace xqmft
