// Multi-query serving: (cached plan × input batch) execution.
//
// A QueryService owns the process-wide QueryCache and executes requests of
// the shape "this query over these documents with this many workers"
// through the existing streaming paths: one input streams through a single
// engine; a batch fans out through CompiledPlan::StreamMany (document-set
// sharding with ordered merge, PR 4), so responses are byte-identical to
// streaming the batch serially whatever the thread count. Compile cost is
// paid at most once per distinct query and reported separately from stream
// cost in the per-request stats — the compile-amortization story
// bench_service measures.
#ifndef XQMFT_SERVICE_QUERY_SERVICE_H_
#define XQMFT_SERVICE_QUERY_SERVICE_H_

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "service/query_cache.h"
#include "util/status.h"

namespace xqmft {

/// \brief One serving request: a query over a batch of documents.
struct ServiceRequest {
  std::string query;
  /// Documents to stream, in output order.
  std::vector<ParallelInput> inputs;
  /// Worker threads for the batch (0 = one per hardware thread; 1 = serial).
  std::size_t threads = 1;
  /// Skip the Section 4.1 optimizations (measurement requests).
  bool no_opt = false;
};

/// \brief What one request cost, compile and stream separated.
struct ServiceRequestStats {
  bool cache_hit = false;
  double compile_ms = 0.0;  ///< 0 when the plan was cached
  double stream_ms = 0.0;
  std::vector<StreamStats> per_input;
  StreamStats total;  ///< summed; peak_bytes is the max across inputs
};

/// Sums per-input statistics into one record. Peak memory is the max
/// engine-tracked peak across inputs (per-engine peaks need not coincide in
/// time); output staged in the ordered merge is not tracked and comes on
/// top.
StreamStats AggregateStreamStats(const std::vector<StreamStats>& per_input);

/// \brief Executes requests against a shared compile-once cache.
/// Thread-safe: concurrent Execute calls share plans through the cache and
/// run independent engines.
class QueryService {
 public:
  explicit QueryService(QueryCacheOptions cache_options = {},
                        PipelineOptions base_options = {});

  /// Streams the request's batch into `sink` (outputs concatenate in input
  /// order). The plan comes from the cache — compiled now only if this is
  /// the first sighting of the query.
  Status Execute(const ServiceRequest& request, OutputSink* sink,
                 ServiceRequestStats* stats = nullptr);

  QueryCache* cache() { return &cache_; }
  const QueryCache& cache() const { return cache_; }

 private:
  PipelineOptions base_options_;
  QueryCache cache_;
};

}  // namespace xqmft

#endif  // XQMFT_SERVICE_QUERY_SERVICE_H_
