// Multi-query serving: (cached plan × input batch) execution.
//
// A QueryService owns the process-wide QueryCache and executes requests of
// the shape "this query over these documents with this many workers"
// through the existing streaming paths: one input streams through a single
// engine; a batch fans out through CompiledPlan::StreamMany (document-set
// sharding with ordered merge, PR 4), so responses are byte-identical to
// streaming the batch serially whatever the thread count. Compile cost is
// paid at most once per distinct query and reported separately from stream
// cost in the per-request stats — the compile-amortization story
// bench_service measures.
#ifndef XQMFT_SERVICE_QUERY_SERVICE_H_
#define XQMFT_SERVICE_QUERY_SERVICE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "service/query_cache.h"
#include "util/cancel.h"
#include "util/status.h"

namespace xqmft {

/// \brief One serving request: a query over a batch of documents.
struct ServiceRequest {
  std::string query;
  /// Documents to stream, in output order.
  std::vector<ParallelInput> inputs;
  /// Worker threads for the batch (0 = one per hardware thread; 1 = serial).
  std::size_t threads = 1;
  /// Skip the Section 4.1 optimizations (measurement requests).
  bool no_opt = false;
  /// Wall-clock budget for the streaming pass, in milliseconds; 0 = none.
  /// When `cancel` is provided the deadline is armed on it (if the caller
  /// has not armed one already — a server arms from admission time so queue
  /// wait counts); otherwise Execute arms a request-local token. A trip
  /// aborts the run with kDeadlineExceeded at the next engine check.
  std::uint64_t deadline_ms = 0;
  /// Cooperative cancellation for this request (client disconnect, server
  /// shutdown). Must outlive the call; null = not cancellable (unless
  /// deadline_ms arms a local token).
  CancelToken* cancel = nullptr;
};

/// \brief What one request cost, compile and stream separated.
struct ServiceRequestStats {
  bool cache_hit = false;
  double compile_ms = 0.0;  ///< 0 when the plan was cached
  double stream_ms = 0.0;   ///< batch mode: the group's shared-pass wall time
  std::vector<StreamStats> per_input;
  StreamStats total;  ///< summed; peak_bytes is the max across inputs
  // --- batch-mode (ExecuteBatch) fields; untouched by Execute ---
  /// Per-request outcome: batch execution isolates failures, so a bad query
  /// or a mid-stream engine error lands here instead of failing the batch.
  Status status = Status::OK();
  /// True when another request in the batch resolved to the same plan over
  /// the same documents: this request's output is a replay of the sibling's
  /// engine run, not a second streaming pass.
  bool deduped = false;
  std::uint64_t events_fed = 0;  ///< events this request's engine consumed
  /// Events the union projection dropped at the shared source for this
  /// request's group (identical for every request in the group).
  std::uint64_t events_skipped = 0;
};

/// \brief Cost of one ExecuteBatch call, with shared work attributed once.
///
/// The headline counter is `parsed_bytes`: bytes tokenized across the batch
/// counted once per distinct document, however many requests read that
/// document — the single-parse property the multi-query engine exists for.
/// `per_request[i].total.bytes_in` still reports the conventional per-request
/// view (every byte its plans observed), so
/// sum(per_request[].total.bytes_in) >= parsed_bytes, with equality only
/// when no two requests share a document.
struct ServiceBatchStats {
  std::size_t documents = 0;         ///< documents streamed (each once)
  std::uint64_t parsed_bytes = 0;    ///< bytes tokenized, once per document
  std::size_t unique_plans = 0;      ///< distinct compiled plans streamed
  std::size_t deduped_requests = 0;  ///< requests replayed from a sibling
  double stream_ms = 0.0;            ///< wall time summed over group passes
  std::vector<ServiceRequestStats> per_request;
};

/// Sums per-input statistics into one record. Peak memory is the max
/// engine-tracked peak across inputs (per-engine peaks need not coincide in
/// time); output staged in the ordered merge is not tracked and comes on
/// top.
StreamStats AggregateStreamStats(const std::vector<StreamStats>& per_input);

/// \brief Executes requests against a shared compile-once cache.
/// Thread-safe: concurrent Execute calls share plans through the cache and
/// run independent engines.
class QueryService {
 public:
  explicit QueryService(QueryCacheOptions cache_options = {},
                        PipelineOptions base_options = {});

  /// Streams the request's batch into `sink` (outputs concatenate in input
  /// order). The plan comes from the cache — compiled now only if this is
  /// the first sighting of the query.
  Status Execute(const ServiceRequest& request, OutputSink* sink,
                 ServiceRequestStats* stats = nullptr);

  /// Executes a batch of requests with shared work done once: requests over
  /// an identical document list form a group, each group's distinct plans
  /// (deduplicated through the cache, so two spellings of one query share an
  /// engine) stream every document in a single pass under the union
  /// projection automaton, and each request's sink receives a replay of its
  /// plan's recorded output. Responses are byte-identical to issuing the
  /// requests serially through Execute.
  ///
  /// `sinks` parallels `requests`. `request.threads` is ignored: the shared
  /// pass is serial per document (combining multi-query execution with
  /// document-set sharding is future work). `request.cancel` is honored per
  /// member: a token that tripped before the pass excludes the member up
  /// front (no compile, no slot); a single-member slot streams under its
  /// member's token, so a mid-pass trip detaches just that plan; and a
  /// member sharing a deduped slot with live siblings is denied its replay
  /// once its own token trips. Per-request failures (compile
  /// errors, engine errors) are isolated in `stats->per_request[i].status`;
  /// the returned Status is non-OK for batch-level problems (empty batch,
  /// size mismatch), when `stats` is null (first failing request, lowest
  /// index), or when every request failed.
  Status ExecuteBatch(const std::vector<ServiceRequest>& requests,
                      const std::vector<OutputSink*>& sinks,
                      ServiceBatchStats* stats = nullptr,
                      const MultiQueryOptions& multi_options = {});

  QueryCache* cache() { return &cache_; }
  const QueryCache& cache() const { return cache_; }
  /// The options every request's plan is compiled under (before per-request
  /// no_opt). The wire layer uses these to run fault-injected streams
  /// through the same pipeline configuration as normal requests.
  const PipelineOptions& base_options() const { return base_options_; }

 private:
  PipelineOptions base_options_;
  QueryCache cache_;
};

}  // namespace xqmft

#endif  // XQMFT_SERVICE_QUERY_SERVICE_H_
