#include "lower/ops_engine.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "schema/schema.h"

namespace xqmft {
namespace lower {

namespace {
constexpr std::size_t kChunkBytes = std::size_t{1} << 16;
constexpr std::size_t kAlign = alignof(std::max_align_t);
}  // namespace

void* OpsEngine::BumpArena::Alloc(std::size_t n) {
  n = (n + (kAlign - 1)) & ~(kAlign - 1);
  // Advance past chunks too small for this request (possible after a Reset
  // replays the chunk sequence with different allocation sizes).
  while (chunk_ < chunks_.size() && chunks_[chunk_].size - off_ < n) {
    ++chunk_;
    off_ = 0;
  }
  if (chunk_ == chunks_.size()) {
    Chunk c;
    c.size = std::max(kChunkBytes, n);
    c.bytes = std::make_unique<char[]>(c.size);
    chunks_.push_back(std::move(c));
    off_ = 0;
  }
  void* p = chunks_[chunk_].bytes.get() + off_;
  off_ += n;
  live_ += n;
  tracker_->Charge(n);
  return p;
}

OpsEngine::OpsEngine(const LoweredPlan& plan, OutputSink* sink,
                     SymbolTable* symbols, MemoryTracker* tracker,
                     std::uint64_t max_steps, SchemaValidator* validator,
                     const CancelToken* cancel,
                     std::uint32_t cancel_check_events)
    : plan_(&plan),
      sink_(sink),
      symbols_(symbols),
      tracker_(tracker),
      max_steps_(max_steps),
      validator_(validator),
      cancel_(cancel),
      cancel_check_events_(cancel_check_events),
      arena_(tracker) {}

OpsEngine::~OpsEngine() {
  // Segments may still hold charges when a run ends early (error or an
  // abandoned engine); settle the shared tracker's balance wholesale.
  tracker_->Release(charged_bytes_);
}

OpsEngine::Segment* OpsEngine::NewSegment() {
  Segment* s;
  if (free_segments_ != nullptr) {
    s = free_segments_;
    free_segments_ = s->next;
  } else {
    all_segments_.push_back(std::make_unique<Segment>());
    s = all_segments_.back().get();
  }
  s->next = nullptr;
  s->closed = false;
  s->live = false;
  const std::size_t charge = sizeof(Segment) + s->data.capacity();
  tracker_->Charge(charge);
  charged_bytes_ += charge;
  return s;
}

void OpsEngine::RecycleSegment(Segment* s) {
  const std::size_t charge = sizeof(Segment) + s->data.capacity();
  tracker_->Release(charge);
  charged_bytes_ -= charge;
  s->data.clear();  // keeps capacity for the next acquire
  s->next = free_segments_;
  free_segments_ = s;
}

void OpsEngine::ChargeAppend(Segment* s, const char* bytes, std::size_t n) {
  const std::size_t old_cap = s->data.capacity();
  s->data.append(bytes, n);
  const std::size_t new_cap = s->data.capacity();
  if (new_cap != old_cap) {
    tracker_->Charge(new_cap - old_cap);
    charged_bytes_ += new_cap - old_cap;
  }
}

OpsEngine::Segment* OpsEngine::SplitAfter(Segment* cur) {
  cur->closed = true;
  return InsertAfter(cur);
}

OpsEngine::Segment* OpsEngine::InsertAfter(Segment* prev) {
  Segment* s = NewSegment();
  s->next = prev->next;
  prev->next = s;
  return s;
}

namespace {
inline void PackTag(char* buf, char tag, std::uint32_t v) {
  buf[0] = tag;
  std::memcpy(buf + 1, &v, sizeof(v));
}
}  // namespace

void OpsEngine::EmitStart(Segment* s, SymbolId sym) {
  if (s->live) {
    sink_->StartElement(symbols_->name(sym));
    ++output_events_;
    return;
  }
  char buf[5];
  PackTag(buf, 'S', sym);
  ChargeAppend(s, buf, sizeof(buf));
}

void OpsEngine::EmitEnd(Segment* s, SymbolId sym) {
  if (s->live) {
    sink_->EndElement(symbols_->name(sym));
    ++output_events_;
    return;
  }
  char buf[5];
  PackTag(buf, 'E', sym);
  ChargeAppend(s, buf, sizeof(buf));
}

void OpsEngine::EmitTextSym(Segment* s, SymbolId sym) {
  if (s->live) {
    sink_->Text(symbols_->name(sym));
    ++output_events_;
    return;
  }
  char buf[5];
  PackTag(buf, 'L', sym);
  ChargeAppend(s, buf, sizeof(buf));
}

void OpsEngine::EmitTextBytes(Segment* s, std::string_view text) {
  if (s->live) {
    // The zero-copy path: input text reaching the output of a live head
    // goes straight from the parser's buffer to the sink.
    sink_->Text(text);
    ++output_events_;
    return;
  }
  char buf[5];
  PackTag(buf, 'T', static_cast<std::uint32_t>(text.size()));
  ChargeAppend(s, buf, sizeof(buf));
  ChargeAppend(s, text.data(), text.size());
}

void OpsEngine::Replay(const std::string& data) {
  const char* p = data.data();
  const char* end = p + data.size();
  while (p < end) {
    const char tag = *p++;
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    p += sizeof(v);
    switch (tag) {
      case 'S':
        sink_->StartElement(symbols_->name(v));
        break;
      case 'E':
        sink_->EndElement(symbols_->name(v));
        break;
      case 'L':
        sink_->Text(symbols_->name(v));
        break;
      default:  // 'T'
        sink_->Text(std::string_view(p, v));
        p += v;
        break;
    }
    ++output_events_;
  }
}

void OpsEngine::FlushHead() {
  while (head_ != nullptr) {
    Segment* s = head_;
    if (s->closed) {
      Replay(s->data);
      head_ = s->next;
      RecycleSegment(s);
      continue;
    }
    if (!s->live) {
      // The head is still being written: drain what it buffered and switch
      // it to write-through until its writer splits or closes it.
      Replay(s->data);
      s->data.clear();
      s->live = true;
    }
    return;
  }
}

Status OpsEngine::ChargeSteps(std::uint64_t n) {
  if (steps_ >= max_steps_ || n > max_steps_ - steps_) {
    return Status::ResourceExhausted(
        "streaming engine exceeded the step budget");
  }
  steps_ += n;
  return Status::OK();
}

void OpsEngine::ExecProgram(const LoweredProgramRef& ref, Segment* cur,
                            SymbolId sym, std::string_view text,
                            Consumer* child_out, std::uint32_t* child_n,
                            Consumer* sib_out, std::uint32_t* sib_n) {
  const LoweredInsn* pc = plan_->code.data() + ref.off;
  const LoweredInsn* const end = pc + ref.len;

#if defined(__GNUC__) || defined(__clang__)
  // Direct-threaded dispatch: each handler jumps straight to the next
  // instruction's handler, giving the branch predictor one indirect target
  // per opcode instead of a single shared switch branch.
  static const void* const kJump[kNumLowerOps] = {
      &&op_open_lit, &&op_close_lit, &&op_open_cur, &&op_close_cur,
      &&op_text_lit, &&op_text_cur, &&op_child,    &&op_sib,
  };
#define XQMFT_OPS_DISPATCH()                          \
  do {                                                \
    if (pc == end) goto op_done;                      \
    goto* kJump[static_cast<unsigned>(pc->op)];       \
  } while (0)

  XQMFT_OPS_DISPATCH();
op_open_lit:
  EmitStart(cur, pc->arg);
  ++pc;
  XQMFT_OPS_DISPATCH();
op_close_lit:
  EmitEnd(cur, pc->arg);
  ++pc;
  XQMFT_OPS_DISPATCH();
op_open_cur:
  EmitStart(cur, sym);
  ++pc;
  XQMFT_OPS_DISPATCH();
op_close_cur:
  EmitEnd(cur, sym);
  ++pc;
  XQMFT_OPS_DISPATCH();
op_text_lit:
  EmitTextSym(cur, pc->arg);
  ++pc;
  XQMFT_OPS_DISPATCH();
op_text_cur:
  EmitTextBytes(cur, text);
  ++pc;
  XQMFT_OPS_DISPATCH();
op_child: {
  const std::uint32_t q = pc->arg;
  ++pc;
  if (pc == end) {
    // Tail spawn: the child inherits the writer's segment outright.
    child_out[(*child_n)++] = Consumer{q, cur};
    return;
  }
  Segment* child_seg = SplitAfter(cur);
  child_out[(*child_n)++] = Consumer{q, child_seg};
  cur = InsertAfter(child_seg);
  XQMFT_OPS_DISPATCH();
}
op_sib: {
  const std::uint32_t q = pc->arg;
  ++pc;
  if (pc == end) {
    sib_out[(*sib_n)++] = Consumer{q, cur};
    return;
  }
  Segment* sib_seg = SplitAfter(cur);
  sib_out[(*sib_n)++] = Consumer{q, sib_seg};
  cur = InsertAfter(sib_seg);
  XQMFT_OPS_DISPATCH();
}
op_done:
  cur->closed = true;
#undef XQMFT_OPS_DISPATCH
#else
  // Portable fallback: plain switch dispatch, same semantics.
  while (pc != end) {
    const LoweredInsn insn = *pc++;
    switch (insn.op) {
      case LowerOp::kOpenLit:
        EmitStart(cur, insn.arg);
        break;
      case LowerOp::kCloseLit:
        EmitEnd(cur, insn.arg);
        break;
      case LowerOp::kOpenCur:
        EmitStart(cur, sym);
        break;
      case LowerOp::kCloseCur:
        EmitEnd(cur, sym);
        break;
      case LowerOp::kTextLit:
        EmitTextSym(cur, insn.arg);
        break;
      case LowerOp::kTextCur:
        EmitTextBytes(cur, text);
        break;
      case LowerOp::kChild: {
        if (pc == end) {
          child_out[(*child_n)++] = Consumer{insn.arg, cur};
          return;
        }
        Segment* child_seg = SplitAfter(cur);
        child_out[(*child_n)++] = Consumer{insn.arg, child_seg};
        cur = InsertAfter(child_seg);
        break;
      }
      case LowerOp::kSib: {
        if (pc == end) {
          sib_out[(*sib_n)++] = Consumer{insn.arg, cur};
          return;
        }
        Segment* sib_seg = SplitAfter(cur);
        sib_out[(*sib_n)++] = Consumer{insn.arg, sib_seg};
        cur = InsertAfter(sib_seg);
        break;
      }
    }
  }
  cur->closed = true;
#endif
}

Status OpsEngine::Prime() {
  if (!status_.ok()) return status_;
  if (started_) return Status::OK();
  started_ = true;
  Segment* root = NewSegment();
  head_ = root;
  Scope scope;
  scope.mark = arena_.TakeMark();
  scope.items = AllocConsumers(1);
  scope.items[0] = Consumer{static_cast<std::uint32_t>(plan_->initial), root};
  scope.count = 1;
  scope.cap = 1;
  scopes_.push_back(scope);
  total_consumers_ = 1;
  spawned_ = 1;
  // Nothing is emitted before the first event (parity with the table
  // engine, whose root call blocks on the pending input cell), but the root
  // segment goes live so the first event's output streams through.
  FlushHead();
  return Status::OK();
}

Status OpsEngine::Feed(const XmlEvent& event) {
  if (!status_.ok()) return status_;
  if (!started_) XQMFT_RETURN_NOT_OK(Prime());
  if (done_) return Status::OK();  // output complete; ignore (table parity)
  // Cancellation check precedes the event's programs AND the FlushHead at
  // the bottom: a tripped run commits nothing past the previous event.
  if (cancel_ != nullptr &&
      ++events_since_cancel_check_ >= cancel_check_events_) {
    events_since_cancel_check_ = 0;
    XQMFT_RETURN_NOT_OK(Sticky(cancel_->Check()));
  }
  if (validator_ != nullptr) {
    XQMFT_RETURN_NOT_OK(Sticky(validator_->Feed(event)));
  }
  switch (event.type) {
    case XmlEventType::kStartElement:
      XQMFT_RETURN_NOT_OK(Sticky(OnStartElement(event)));
      break;
    case XmlEventType::kText:
      XQMFT_RETURN_NOT_OK(Sticky(OnText(event)));
      break;
    case XmlEventType::kEndElement:
      XQMFT_RETURN_NOT_OK(Sticky(OnEndElement()));
      break;
    case XmlEventType::kEndOfDocument:
      XQMFT_RETURN_NOT_OK(Sticky(OnEndOfDocument()));
      break;
    default:
      return Sticky(Status::Internal("unknown event type"));
  }
  FlushHead();
  if (total_consumers_ == 0) done_ = true;
  return Status::OK();
}

Status OpsEngine::OnStartElement(const XmlEvent& event) {
  if (skip_depth_ > 0) {
    ++skip_depth_;
    return Status::OK();
  }
  Scope& top = scopes_.back();
  if (top.count == 0) {
    skip_depth_ = 1;
    return Status::OK();
  }
  const SymbolId sym =
      event.symbol != kInvalidSymbol
          ? event.symbol
          : symbols_->Intern(NodeKind::kElement, event.name);

  XQMFT_RETURN_NOT_OK(ChargeSteps(top.count));

  // Resolve every consumer's program first: sibling rewrites may reuse
  // top.items in place, so nothing may read it once execution starts.
  scratch_.clear();
  std::uint32_t total_child = 0;
  std::uint32_t total_sib = 0;
  bool all_simple = true;
  for (std::uint32_t i = 0; i < top.count; ++i) {
    const Consumer& c = top.items[i];
    const LoweredState& st = plan_->states[c.state];
    const LoweredProgramRef* prog =
        sym < plan_->width ? &st.element[sym] : &st.element_default;
    all_simple = all_simple && prog->simple_sib;
    total_child += prog->n_child;
    total_sib += prog->n_sib;
    scratch_.push_back(PendingExec{c.state, prog, c.seg});
  }

  if (all_simple) {
    // Every consumer just retargets over the siblings and skips the
    // subtree: no allocation, no segment traffic — the scan hot path.
    for (std::uint32_t i = 0; i < top.count; ++i) {
      top.items[i].state = plan_->code[scratch_[i].prog->off].arg;
    }
    spawned_ += top.count;
    skip_depth_ = 1;
    return Status::OK();
  }

  // Sibling continuations replace the scope's consumers. Reuse the array in
  // place when it fits (a constant-size consumer set never allocates at
  // steady depth); grow geometrically otherwise. Growth happens before the
  // child mark so the array survives the child scope's reset — the retired
  // smaller arrays leak only until the parent closes, bounded by the
  // geometric sum.
  Consumer* sibs = top.items;
  std::uint32_t sib_cap = top.cap;
  if (sib_cap < total_sib) {
    sib_cap = std::max(total_sib, top.cap * 2);
    sibs = AllocConsumers(sib_cap);
  }
  const BumpArena::Mark mark = arena_.TakeMark();
  Consumer* children =
      total_child > 0 ? AllocConsumers(total_child) : nullptr;

  std::uint32_t n_child = 0;
  std::uint32_t n_sib = 0;
  for (const PendingExec& p : scratch_) {
    ExecProgram(*p.prog, p.seg, sym, std::string_view(), children, &n_child,
                sibs, &n_sib);
  }

  total_consumers_ += n_sib + n_child;
  total_consumers_ -= top.count;
  spawned_ += n_sib + n_child;
  top.items = sibs;
  top.count = n_sib;
  top.cap = sib_cap;

  if (n_child == 0) {
    arena_.Reset(mark);
    skip_depth_ = 1;
  } else {
    Scope scope;
    scope.items = children;
    scope.count = n_child;
    scope.cap = n_child;
    scope.mark = mark;
    scopes_.push_back(scope);
  }
  return Status::OK();
}

Status OpsEngine::OnText(const XmlEvent& event) {
  if (skip_depth_ > 0) return Status::OK();
  Scope& top = scopes_.back();
  if (top.count == 0) return Status::OK();

  XQMFT_RETURN_NOT_OK(ChargeSteps(top.count));

  scratch_.clear();
  std::uint32_t total_sib = 0;
  bool all_simple = true;
  for (std::uint32_t i = 0; i < top.count; ++i) {
    const Consumer& c = top.items[i];
    const LoweredProgramRef* prog = &plan_->states[c.state].text;
    all_simple = all_simple && prog->simple_sib;
    total_sib += prog->n_sib;
    scratch_.push_back(PendingExec{c.state, prog, c.seg});
  }

  if (all_simple) {
    for (std::uint32_t i = 0; i < top.count; ++i) {
      top.items[i].state = plan_->code[scratch_[i].prog->off].arg;
    }
    spawned_ += top.count;
    return Status::OK();
  }

  Consumer* sibs = top.items;
  std::uint32_t sib_cap = top.cap;
  if (sib_cap < total_sib) {
    sib_cap = std::max(total_sib, top.cap * 2);
    sibs = AllocConsumers(sib_cap);
  }

  // Text programs never spawn children (x1 over a text node lowers to the
  // callee's spliced epsilon program), so no child array and no scope push.
  std::uint32_t n_sib = 0;
  for (const PendingExec& p : scratch_) {
    std::uint32_t n_child = 0;
    ExecProgram(*p.prog, p.seg, kInvalidSymbol, event.text, nullptr, &n_child,
                sibs, &n_sib);
  }

  total_consumers_ += n_sib;
  total_consumers_ -= top.count;
  spawned_ += n_sib;
  top.items = sibs;
  top.count = n_sib;
  top.cap = sib_cap;
  return Status::OK();
}

Status OpsEngine::OnEndElement() {
  if (skip_depth_ > 0) {
    --skip_depth_;
    return Status::OK();
  }
  if (scopes_.size() == 1) {
    return Status::InvalidArgument("unbalanced end element event");
  }
  Scope top = scopes_.back();
  XQMFT_RETURN_NOT_OK(ChargeSteps(top.count));
  for (std::uint32_t i = 0; i < top.count; ++i) {
    const Consumer& c = top.items[i];
    std::uint32_t n_child = 0;
    std::uint32_t n_sib = 0;
    // Epsilon programs are emission-only; ExecProgram closes the segment.
    ExecProgram(plan_->states[c.state].eps, c.seg, kInvalidSymbol,
                std::string_view(), nullptr, &n_child, nullptr, &n_sib);
  }
  total_consumers_ -= top.count;
  scopes_.pop_back();
  arena_.Reset(top.mark);
  return Status::OK();
}

Status OpsEngine::OnEndOfDocument() {
  if (skip_depth_ > 0 || scopes_.size() > 1) {
    return Status::InvalidArgument("end of document with unclosed elements");
  }
  Scope& top = scopes_.back();
  XQMFT_RETURN_NOT_OK(ChargeSteps(top.count));
  for (std::uint32_t i = 0; i < top.count; ++i) {
    const Consumer& c = top.items[i];
    std::uint32_t n_child = 0;
    std::uint32_t n_sib = 0;
    ExecProgram(plan_->states[c.state].eps, c.seg, kInvalidSymbol,
                std::string_view(), nullptr, &n_child, nullptr, &n_sib);
  }
  total_consumers_ -= top.count;
  top.count = 0;
  input_done_ = true;
  return Status::OK();
}

Status OpsEngine::Finish() {
  if (status_.ok()) {
    if (!started_) Prime();  // Sticky() inside records any failure
    if (status_.ok() && !done_ && !input_done_) {
      XmlEvent end;
      end.type = XmlEventType::kEndOfDocument;
      Feed(end);
    }
    if (status_.ok() && !done_) {
      // Unreachable via the public API (end-of-document either completes
      // the run or errors); guard against direct misuse.
      Sticky(
          Status::Internal("streaming engine finished with output pending"));
    }
  }
  return status_;
}

}  // namespace lower
}  // namespace xqmft
