#include "lower/ops_engine.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "schema/schema.h"

namespace xqmft {
namespace lower {

namespace {
constexpr std::size_t kChunkBytes = std::size_t{1} << 16;
constexpr std::size_t kAlign = alignof(std::max_align_t);
// Default rope-chunk payload capacity: nine packed 5-byte records. Together
// with the 16-byte header this stays inside the per-append prealloc budget
// (lower.cc's kPreallocPerAppend) — the invariant that keeps element-context
// rope appends inside the pre-mark block.
constexpr std::uint32_t kRopeChunkCap = 48;
}  // namespace

void* OpsEngine::BumpArena::Alloc(std::size_t n) {
  n = (n + (kAlign - 1)) & ~(kAlign - 1);
  // Advance past chunks too small for this request (possible after a Reset
  // replays the chunk sequence with different allocation sizes).
  while (chunk_ < chunks_.size() && chunks_[chunk_].size - off_ < n) {
    ++chunk_;
    off_ = 0;
  }
  if (chunk_ == chunks_.size()) {
    Chunk c;
    c.size = std::max(kChunkBytes, n);
    c.bytes = std::make_unique<char[]>(c.size);
    chunks_.push_back(std::move(c));
    off_ = 0;
  }
  void* p = chunks_[chunk_].bytes.get() + off_;
  off_ += n;
  live_ += n;
  tracker_->Charge(n);
  return p;
}

OpsEngine::OpsEngine(const LoweredPlan& plan, OutputSink* sink,
                     SymbolTable* symbols, MemoryTracker* tracker,
                     std::uint64_t max_steps, SchemaValidator* validator,
                     const CancelToken* cancel,
                     std::uint32_t cancel_check_events,
                     const BridgeFactory* bridges)
    : plan_(&plan),
      sink_(sink),
      symbols_(symbols),
      tracker_(tracker),
      max_steps_(max_steps),
      validator_(validator),
      cancel_(cancel),
      cancel_check_events_(cancel_check_events),
      bridge_factory_(bridges),
      arena_(tracker) {}

OpsEngine::~OpsEngine() {
  // Segments may still hold charges when a run ends early (error or an
  // abandoned engine); settle the shared tracker's balance wholesale. The
  // bridge records must go first: their sub-runs recycle cells and exprs
  // into the shared scratch slabs the engine's owner destroys after us.
  bridges_.clear();
  tracker_->Release(charged_bytes_);
}

OpsEngine::Segment* OpsEngine::NewSegment() {
  Segment* s;
  if (free_segments_ != nullptr) {
    s = free_segments_;
    free_segments_ = s->next;
  } else {
    all_segments_.push_back(std::make_unique<Segment>());
    s = all_segments_.back().get();
  }
  s->next = nullptr;
  s->closed = false;
  s->live = false;
  const std::size_t charge = sizeof(Segment) + s->data.capacity();
  tracker_->Charge(charge);
  charged_bytes_ += charge;
  return s;
}

void OpsEngine::RecycleSegment(Segment* s) {
  const std::size_t charge = sizeof(Segment) + s->data.capacity();
  tracker_->Release(charge);
  charged_bytes_ -= charge;
  s->data.clear();  // keeps capacity for the next acquire
  s->next = free_segments_;
  free_segments_ = s;
}

void OpsEngine::ChargeAppend(Segment* s, const char* bytes, std::size_t n) {
  const std::size_t old_cap = s->data.capacity();
  s->data.append(bytes, n);
  const std::size_t new_cap = s->data.capacity();
  if (new_cap != old_cap) {
    tracker_->Charge(new_cap - old_cap);
    charged_bytes_ += new_cap - old_cap;
  }
}

OpsEngine::Segment* OpsEngine::SplitAfter(Segment* cur) {
  cur->closed = true;
  return InsertAfter(cur);
}

OpsEngine::Segment* OpsEngine::InsertAfter(Segment* prev) {
  Segment* s = NewSegment();
  s->next = prev->next;
  prev->next = s;
  return s;
}

namespace {
inline void PackTag(char* buf, char tag, std::uint32_t v) {
  buf[0] = tag;
  std::memcpy(buf + 1, &v, sizeof(v));
}
}  // namespace

void OpsEngine::EmitStart(Segment* s, SymbolId sym) {
  if (s->live) {
    sink_->StartElement(symbols_->name(sym));
    ++output_events_;
    return;
  }
  char buf[5];
  PackTag(buf, 'S', sym);
  ChargeAppend(s, buf, sizeof(buf));
}

void OpsEngine::EmitEnd(Segment* s, SymbolId sym) {
  if (s->live) {
    sink_->EndElement(symbols_->name(sym));
    ++output_events_;
    return;
  }
  char buf[5];
  PackTag(buf, 'E', sym);
  ChargeAppend(s, buf, sizeof(buf));
}

void OpsEngine::EmitTextSym(Segment* s, SymbolId sym) {
  if (s->live) {
    sink_->Text(symbols_->name(sym));
    ++output_events_;
    return;
  }
  char buf[5];
  PackTag(buf, 'L', sym);
  ChargeAppend(s, buf, sizeof(buf));
}

void OpsEngine::EmitTextBytes(Segment* s, std::string_view text) {
  if (s->live) {
    // The zero-copy path: input text reaching the output of a live head
    // goes straight from the parser's buffer to the sink.
    sink_->Text(text);
    ++output_events_;
    return;
  }
  char buf[5];
  PackTag(buf, 'T', static_cast<std::uint32_t>(text.size()));
  ChargeAppend(s, buf, sizeof(buf));
  ChargeAppend(s, text.data(), text.size());
}

void OpsEngine::ReplayBytes(std::string_view data) {
  const char* p = data.data();
  const char* end = p + data.size();
  while (p < end) {
    const char tag = *p++;
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    p += sizeof(v);
    switch (tag) {
      case 'S':
        sink_->StartElement(symbols_->name(v));
        break;
      case 'E':
        sink_->EndElement(symbols_->name(v));
        break;
      case 'L':
        sink_->Text(symbols_->name(v));
        break;
      default:  // 'T'
        sink_->Text(std::string_view(p, v));
        p += v;
        break;
    }
    ++output_events_;
  }
}

void OpsEngine::FlushHead() {
  while (head_ != nullptr) {
    Segment* s = head_;
    if (s->closed) {
      ReplayBytes(s->data);
      head_ = s->next;
      RecycleSegment(s);
      continue;
    }
    if (!s->live) {
      // The head is still being written: drain what it buffered and switch
      // it to write-through until its writer splits or closes it.
      ReplayBytes(s->data);
      s->data.clear();
      s->live = true;
    }
    return;
  }
}

Status OpsEngine::ChargeSteps(std::uint64_t n) {
  if (steps_ >= max_steps_ || n > max_steps_ - steps_) {
    return Status::ResourceExhausted(
        "streaming engine exceeded the step budget");
  }
  steps_ += n;
  return Status::OK();
}

// ------------------------------------------------------------------- ropes

void* OpsEngine::RopeAlloc(std::size_t n) {
  n = (n + 7u) & ~std::size_t{7};
  if (prealloc_cur_ != nullptr &&
      static_cast<std::size_t>(prealloc_end_ - prealloc_cur_) >= n) {
    void* p = prealloc_cur_;
    prealloc_cur_ += n;
    return p;
  }
  // No block armed (text events take no mark, so a direct allocation is
  // lifetime-safe) or — defensively — the static budget was short.
  return arena_.Alloc(n);
}

void OpsEngine::RopeAppend(Rope* rope, const char* bytes, std::uint32_t n) {
  RopeChunk* t = rope->tail;
  if (t == nullptr || t->cap - t->len < n) {
    // A packed record never splits across chunks (live emits replay chunk
    // by chunk), so the chunk is sized for the whole record when the
    // default capacity cannot hold it.
    const std::uint32_t cap = std::max(kRopeChunkCap, n);
    RopeChunk* c =
        static_cast<RopeChunk*>(RopeAlloc(sizeof(RopeChunk) + cap));
    c->next = nullptr;
    c->len = 0;
    c->cap = cap;
    if (t == nullptr) {
      rope->head = c;
    } else {
      t->next = c;
    }
    rope->tail = c;
    t = c;
  }
  std::memcpy(t->bytes() + t->len, bytes, n);
  t->len += n;
}

void OpsEngine::RopePack(Rope* rope, char tag, std::uint32_t v) {
  char buf[5];
  PackTag(buf, tag, v);
  RopeAppend(rope, buf, sizeof(buf));
}

void OpsEngine::RopeEmit(Segment* cur, Rope* rope) {
  for (RopeChunk* c = rope->head; c != nullptr; c = c->next) {
    if (cur->live) {
      ReplayBytes(std::string_view(c->bytes(), c->len));
    } else {
      ChargeAppend(cur, c->bytes(), c->len);
    }
  }
  // Linear discipline: a register is consumed by its one use. Clearing it
  // keeps a buggy double-use from replaying stale chunks.
  *rope = Rope{};
}

OpsEngine::Rope* OpsEngine::MaterializeFile() {
  Rope* file = static_cast<Rope*>(RopeAlloc(sizeof(Rope) * kMaxRopeParams));
  for (std::uint32_t i = 0; i < kMaxRopeParams; ++i) {
    file[i] = i < staged_n_ ? staged_[i] : Rope{};
    staged_[i] = Rope{};
  }
  staged_n_ = 0;
  return file;
}

// ----------------------------------------------------------------- bridges

void OpsEngine::SegSink::StartElement(std::string_view name) {
  engine_->EmitStart(seg_,
                     engine_->symbols_->Intern(NodeKind::kElement, name));
}

void OpsEngine::SegSink::EndElement(std::string_view name) {
  engine_->EmitEnd(seg_,
                   engine_->symbols_->Intern(NodeKind::kElement, name));
}

void OpsEngine::SegSink::Text(std::string_view content) {
  engine_->EmitTextBytes(seg_, content);
}

void OpsEngine::StartElementBridge(std::uint32_t site, Segment* seg,
                                   const XmlEvent* event, SymbolId sym) {
  if (bridge_factory_ == nullptr || !*bridge_factory_) {
    if (exec_status_.ok()) {
      exec_status_ =
          Status::Internal("hybrid plan executed without a bridge factory");
    }
    seg->closed = true;  // nothing will ever write it
    return;
  }
  auto rec = std::make_unique<BridgeRec>(this, seg);
  rec->seg = seg;
  rec->anchor_depth = depth_;
  rec->run = (*bridge_factory_)(site, &rec->sink);
  ++bridges_spawned_;
  // The routing in Feed only reaches bridges that already exist, so the
  // anchor's own StartElement is delivered here.
  XmlEvent anchor = *event;
  anchor.symbol = sym;
  Status s = rec->run->Feed(anchor);
  if (!s.ok() && exec_status_.ok()) exec_status_ = std::move(s);
  bridges_.push_back(std::move(rec));
}

void OpsEngine::RunInlineBridge(std::uint32_t site, Segment* cur,
                                const XmlEvent* event) {
  if (bridge_factory_ == nullptr || !*bridge_factory_) {
    if (exec_status_.ok()) {
      exec_status_ =
          Status::Internal("hybrid plan executed without a bridge factory");
    }
    return;
  }
  // A text or eps anchor is a complete sub-input: run it synchronously into
  // the caller's segment (one text event, or nothing at all).
  SegSink sink(this, cur);
  std::unique_ptr<BridgeRun> run = (*bridge_factory_)(site, &sink);
  ++bridges_spawned_;
  Status s = Status::OK();
  if (event != nullptr) s = run->Feed(*event);
  if (s.ok()) s = run->Finish();
  if (!s.ok() && exec_status_.ok()) exec_status_ = std::move(s);
}

Status OpsEngine::FeedBridges(const XmlEvent& event) {
  for (std::unique_ptr<BridgeRec>& rec : bridges_) {
    XQMFT_RETURN_NOT_OK(rec->run->Feed(event));
  }
  return Status::OK();
}

Status OpsEngine::CompleteBridges() {
  Status result = Status::OK();
  while (!bridges_.empty() && bridges_.back()->anchor_depth == depth_) {
    std::unique_ptr<BridgeRec> rec = std::move(bridges_.back());
    bridges_.pop_back();
    Status s = rec->run->Finish();
    rec->seg->closed = true;
    if (!s.ok() && result.ok()) result = std::move(s);
  }
  return result;
}

// -------------------------------------------------------------- execution

void OpsEngine::ExecProgram(const LoweredProgramRef& ref, Segment* cur,
                            SymbolId sym, std::string_view text,
                            const XmlEvent* event, Rope* ropes,
                            Consumer* child_out, std::uint32_t* child_n,
                            Consumer* sib_out, std::uint32_t* sib_n) {
  const LoweredInsn* pc = plan_->code.data() + ref.off;
  const LoweredInsn* const end = pc + ref.len;

#if defined(__GNUC__) || defined(__clang__)
  // Direct-threaded dispatch: each handler jumps straight to the next
  // instruction's handler, giving the branch predictor one indirect target
  // per opcode instead of a single shared switch branch.
  static const void* const kJump[kNumLowerOps] = {
      &&op_open_lit,      &&op_close_lit,      &&op_open_cur,
      &&op_close_cur,     &&op_text_lit,       &&op_text_cur,
      &&op_child,         &&op_sib,            &&op_bridge,
      &&op_rope_new,      &&op_rope_open,      &&op_rope_close,
      &&op_rope_text,     &&op_rope_open_cur,  &&op_rope_close_cur,
      &&op_rope_text_cur, &&op_rope_splice,    &&op_rope_child,
      &&op_rope_sib,      &&op_rope_emit,
  };
#define XQMFT_OPS_DISPATCH()                          \
  do {                                                \
    if (pc == end) goto op_done;                      \
    goto* kJump[static_cast<unsigned>(pc->op)];       \
  } while (0)

  XQMFT_OPS_DISPATCH();
op_open_lit:
  EmitStart(cur, pc->arg);
  ++pc;
  XQMFT_OPS_DISPATCH();
op_close_lit:
  EmitEnd(cur, pc->arg);
  ++pc;
  XQMFT_OPS_DISPATCH();
op_open_cur:
  EmitStart(cur, sym);
  ++pc;
  XQMFT_OPS_DISPATCH();
op_close_cur:
  EmitEnd(cur, sym);
  ++pc;
  XQMFT_OPS_DISPATCH();
op_text_lit:
  EmitTextSym(cur, pc->arg);
  ++pc;
  XQMFT_OPS_DISPATCH();
op_text_cur:
  EmitTextBytes(cur, text);
  ++pc;
  XQMFT_OPS_DISPATCH();
op_child: {
  const std::uint32_t q = pc->arg;
  ++pc;
  if (pc == end) {
    // Tail spawn: the child inherits the writer's segment outright (and its
    // register file — the identity parameter pass compiles to this).
    child_out[(*child_n)++] = Consumer{q, cur, ropes};
    return;
  }
  Segment* child_seg = SplitAfter(cur);
  child_out[(*child_n)++] = Consumer{q, child_seg, ropes};
  cur = InsertAfter(child_seg);
  XQMFT_OPS_DISPATCH();
}
op_sib: {
  const std::uint32_t q = pc->arg;
  ++pc;
  if (pc == end) {
    sib_out[(*sib_n)++] = Consumer{q, cur, ropes};
    return;
  }
  Segment* sib_seg = SplitAfter(cur);
  sib_out[(*sib_n)++] = Consumer{q, sib_seg, ropes};
  cur = InsertAfter(sib_seg);
  XQMFT_OPS_DISPATCH();
}
op_bridge: {
  const std::uint32_t site = pc->arg & kBridgeSiteMask;
  const BridgeCtx bctx = static_cast<BridgeCtx>(pc->arg >> kBridgeCtxShift);
  ++pc;
  if (bctx == BridgeCtx::kElement) {
    if (pc == end) {
      // Tail bridge: the sub-run takes over the segment outright; it closes
      // at the anchor's EndElement.
      StartElementBridge(site, cur, event, sym);
      return;
    }
    Segment* bseg = SplitAfter(cur);
    StartElementBridge(site, bseg, event, sym);
    cur = InsertAfter(bseg);
  } else {
    RunInlineBridge(site, cur, bctx == BridgeCtx::kText ? event : nullptr);
  }
  XQMFT_OPS_DISPATCH();
}
op_rope_new:
  staged_[staged_n_++] = Rope{};
  ++pc;
  XQMFT_OPS_DISPATCH();
op_rope_open:
  RopePack(&staged_[staged_n_ - 1], 'S', pc->arg);
  ++pc;
  XQMFT_OPS_DISPATCH();
op_rope_close:
  RopePack(&staged_[staged_n_ - 1], 'E', pc->arg);
  ++pc;
  XQMFT_OPS_DISPATCH();
op_rope_text:
  RopePack(&staged_[staged_n_ - 1], 'L', pc->arg);
  ++pc;
  XQMFT_OPS_DISPATCH();
op_rope_open_cur:
  RopePack(&staged_[staged_n_ - 1], 'S', sym);
  ++pc;
  XQMFT_OPS_DISPATCH();
op_rope_close_cur:
  RopePack(&staged_[staged_n_ - 1], 'E', sym);
  ++pc;
  XQMFT_OPS_DISPATCH();
op_rope_text_cur: {
  Rope* r = &staged_[staged_n_ - 1];
  char hdr[5];
  PackTag(hdr, 'T', static_cast<std::uint32_t>(text.size()));
  RopeChunk* t = r->tail;
  const std::uint32_t n = 5 + static_cast<std::uint32_t>(text.size());
  if (t == nullptr || t->cap - t->len < n) {
    const std::uint32_t cap = std::max(kRopeChunkCap, n);
    RopeChunk* c =
        static_cast<RopeChunk*>(RopeAlloc(sizeof(RopeChunk) + cap));
    c->next = nullptr;
    c->len = 0;
    c->cap = cap;
    if (t == nullptr) {
      r->head = c;
    } else {
      t->next = c;
    }
    r->tail = c;
    t = c;
  }
  std::memcpy(t->bytes() + t->len, hdr, sizeof(hdr));
  std::memcpy(t->bytes() + t->len + sizeof(hdr), text.data(), text.size());
  t->len += n;
  ++pc;
  XQMFT_OPS_DISPATCH();
}
op_rope_splice: {
  Rope& src = ropes[pc->arg];
  if (src.head != nullptr) {
    Rope& dst = staged_[staged_n_ - 1];
    if (dst.tail != nullptr) {
      dst.tail->next = src.head;
      dst.tail = src.tail;
    } else {
      dst = src;
    }
    src = Rope{};
  }
  ++pc;
  XQMFT_OPS_DISPATCH();
}
op_rope_child: {
  const std::uint32_t q = pc->arg;
  Rope* file = MaterializeFile();
  ++pc;
  if (pc == end) {
    child_out[(*child_n)++] = Consumer{q, cur, file};
    return;
  }
  Segment* child_seg = SplitAfter(cur);
  child_out[(*child_n)++] = Consumer{q, child_seg, file};
  cur = InsertAfter(child_seg);
  XQMFT_OPS_DISPATCH();
}
op_rope_sib: {
  const std::uint32_t q = pc->arg;
  Rope* file = MaterializeFile();
  ++pc;
  if (pc == end) {
    sib_out[(*sib_n)++] = Consumer{q, cur, file};
    return;
  }
  Segment* sib_seg = SplitAfter(cur);
  sib_out[(*sib_n)++] = Consumer{q, sib_seg, file};
  cur = InsertAfter(sib_seg);
  XQMFT_OPS_DISPATCH();
}
op_rope_emit:
  RopeEmit(cur, &ropes[pc->arg]);
  ++pc;
  XQMFT_OPS_DISPATCH();
op_done:
  cur->closed = true;
#undef XQMFT_OPS_DISPATCH
#else
  // Portable fallback: plain switch dispatch, same semantics.
  while (pc != end) {
    const LoweredInsn insn = *pc++;
    switch (insn.op) {
      case LowerOp::kOpenLit:
        EmitStart(cur, insn.arg);
        break;
      case LowerOp::kCloseLit:
        EmitEnd(cur, insn.arg);
        break;
      case LowerOp::kOpenCur:
        EmitStart(cur, sym);
        break;
      case LowerOp::kCloseCur:
        EmitEnd(cur, sym);
        break;
      case LowerOp::kTextLit:
        EmitTextSym(cur, insn.arg);
        break;
      case LowerOp::kTextCur:
        EmitTextBytes(cur, text);
        break;
      case LowerOp::kChild: {
        if (pc == end) {
          child_out[(*child_n)++] = Consumer{insn.arg, cur, ropes};
          return;
        }
        Segment* child_seg = SplitAfter(cur);
        child_out[(*child_n)++] = Consumer{insn.arg, child_seg, ropes};
        cur = InsertAfter(child_seg);
        break;
      }
      case LowerOp::kSib: {
        if (pc == end) {
          sib_out[(*sib_n)++] = Consumer{insn.arg, cur, ropes};
          return;
        }
        Segment* sib_seg = SplitAfter(cur);
        sib_out[(*sib_n)++] = Consumer{insn.arg, sib_seg, ropes};
        cur = InsertAfter(sib_seg);
        break;
      }
      case LowerOp::kBridge: {
        const std::uint32_t site = insn.arg & kBridgeSiteMask;
        const BridgeCtx bctx =
            static_cast<BridgeCtx>(insn.arg >> kBridgeCtxShift);
        if (bctx == BridgeCtx::kElement) {
          if (pc == end) {
            StartElementBridge(site, cur, event, sym);
            return;
          }
          Segment* bseg = SplitAfter(cur);
          StartElementBridge(site, bseg, event, sym);
          cur = InsertAfter(bseg);
        } else {
          RunInlineBridge(site, cur,
                          bctx == BridgeCtx::kText ? event : nullptr);
        }
        break;
      }
      case LowerOp::kRopeNew:
        staged_[staged_n_++] = Rope{};
        break;
      case LowerOp::kRopeOpen:
        RopePack(&staged_[staged_n_ - 1], 'S', insn.arg);
        break;
      case LowerOp::kRopeClose:
        RopePack(&staged_[staged_n_ - 1], 'E', insn.arg);
        break;
      case LowerOp::kRopeText:
        RopePack(&staged_[staged_n_ - 1], 'L', insn.arg);
        break;
      case LowerOp::kRopeOpenCur:
        RopePack(&staged_[staged_n_ - 1], 'S', sym);
        break;
      case LowerOp::kRopeCloseCur:
        RopePack(&staged_[staged_n_ - 1], 'E', sym);
        break;
      case LowerOp::kRopeTextCur: {
        Rope* r = &staged_[staged_n_ - 1];
        char hdr[5];
        PackTag(hdr, 'T', static_cast<std::uint32_t>(text.size()));
        RopeAppend(r, hdr, sizeof(hdr));
        // RopeAppend keeps records whole; emulate by appending into the
        // same chunk RopeAppend just guaranteed room in.
        RopeChunk* t = r->tail;
        if (t->cap - t->len >= text.size()) {
          std::memcpy(t->bytes() + t->len, text.data(), text.size());
          t->len += static_cast<std::uint32_t>(text.size());
        } else {
          // Undo the header and re-append the whole record into one chunk.
          t->len -= sizeof(hdr);
          char* rec = static_cast<char*>(
              RopeAlloc(sizeof(RopeChunk) + sizeof(hdr) + text.size()));
          RopeChunk* c = reinterpret_cast<RopeChunk*>(rec);
          c->next = nullptr;
          c->len = static_cast<std::uint32_t>(sizeof(hdr) + text.size());
          c->cap = c->len;
          std::memcpy(c->bytes(), hdr, sizeof(hdr));
          std::memcpy(c->bytes() + sizeof(hdr), text.data(), text.size());
          if (r->tail == nullptr) {
            r->head = c;
          } else {
            r->tail->next = c;
          }
          r->tail = c;
        }
        break;
      }
      case LowerOp::kRopeSplice: {
        Rope& src = ropes[insn.arg];
        if (src.head != nullptr) {
          Rope& dst = staged_[staged_n_ - 1];
          if (dst.tail != nullptr) {
            dst.tail->next = src.head;
            dst.tail = src.tail;
          } else {
            dst = src;
          }
          src = Rope{};
        }
        break;
      }
      case LowerOp::kRopeChild: {
        Rope* file = MaterializeFile();
        if (pc == end) {
          child_out[(*child_n)++] = Consumer{insn.arg, cur, file};
          return;
        }
        Segment* child_seg = SplitAfter(cur);
        child_out[(*child_n)++] = Consumer{insn.arg, child_seg, file};
        cur = InsertAfter(child_seg);
        break;
      }
      case LowerOp::kRopeSib: {
        Rope* file = MaterializeFile();
        if (pc == end) {
          sib_out[(*sib_n)++] = Consumer{insn.arg, cur, file};
          return;
        }
        Segment* sib_seg = SplitAfter(cur);
        sib_out[(*sib_n)++] = Consumer{insn.arg, sib_seg, file};
        cur = InsertAfter(sib_seg);
        break;
      }
      case LowerOp::kRopeEmit:
        RopeEmit(cur, &ropes[insn.arg]);
        break;
    }
  }
  cur->closed = true;
#endif
}

Status OpsEngine::Prime() {
  if (!status_.ok()) return status_;
  if (started_) return Status::OK();
  started_ = true;
  Segment* root = NewSegment();
  head_ = root;
  Scope scope;
  scope.mark = arena_.TakeMark();
  scope.items = AllocConsumers(1);
  scope.items[0] = Consumer{static_cast<std::uint32_t>(plan_->initial), root,
                            nullptr};
  scope.count = 1;
  scope.cap = 1;
  scopes_.push_back(scope);
  total_consumers_ = 1;
  spawned_ = 1;
  // Nothing is emitted before the first event (parity with the table
  // engine, whose root call blocks on the pending input cell), but the root
  // segment goes live so the first event's output streams through.
  FlushHead();
  return Status::OK();
}

Status OpsEngine::Feed(const XmlEvent& event) {
  if (!status_.ok()) return status_;
  if (!started_) XQMFT_RETURN_NOT_OK(Prime());
  if (done_) return Status::OK();  // output complete; ignore (table parity)
  // Cancellation check precedes the event's programs AND the FlushHead at
  // the bottom: a tripped run commits nothing past the previous event.
  if (cancel_ != nullptr &&
      ++events_since_cancel_check_ >= cancel_check_events_) {
    events_since_cancel_check_ = 0;
    XQMFT_RETURN_NOT_OK(Sticky(cancel_->Check()));
  }
  if (validator_ != nullptr) {
    XQMFT_RETURN_NOT_OK(Sticky(validator_->Feed(event)));
  }
  // Bridge routing wraps the consumer handlers: an active table sub-run
  // receives every event of its anchor subtree even when the ops consumers
  // skipped it (skip_depth_), and completes at the anchor's close. depth_
  // tracks raw input nesting for exactly this purpose.
  switch (event.type) {
    case XmlEventType::kStartElement:
      if (!bridges_.empty()) XQMFT_RETURN_NOT_OK(Sticky(FeedBridges(event)));
      ++depth_;
      XQMFT_RETURN_NOT_OK(Sticky(OnStartElement(event)));
      break;
    case XmlEventType::kText:
      if (!bridges_.empty()) XQMFT_RETURN_NOT_OK(Sticky(FeedBridges(event)));
      XQMFT_RETURN_NOT_OK(Sticky(OnText(event)));
      break;
    case XmlEventType::kEndElement:
      if (!bridges_.empty()) {
        XQMFT_RETURN_NOT_OK(Sticky(FeedBridges(event)));
        XQMFT_RETURN_NOT_OK(Sticky(CompleteBridges()));
      }
      if (depth_ > 0) --depth_;
      XQMFT_RETURN_NOT_OK(Sticky(OnEndElement()));
      break;
    case XmlEventType::kEndOfDocument:
      XQMFT_RETURN_NOT_OK(Sticky(OnEndOfDocument()));
      break;
    default:
      return Sticky(Status::Internal("unknown event type"));
  }
  FlushHead();
  if (total_consumers_ == 0 && bridges_.empty()) done_ = true;
  return Status::OK();
}

Status OpsEngine::OnStartElement(const XmlEvent& event) {
  if (skip_depth_ > 0) {
    ++skip_depth_;
    return Status::OK();
  }
  Scope& top = scopes_.back();
  if (top.count == 0) {
    skip_depth_ = 1;
    return Status::OK();
  }
  const SymbolId sym =
      event.symbol != kInvalidSymbol
          ? event.symbol
          : symbols_->Intern(NodeKind::kElement, event.name);

  XQMFT_RETURN_NOT_OK(ChargeSteps(top.count));

  // Resolve every consumer's program first: sibling rewrites may reuse
  // top.items in place, so nothing may read it once execution starts.
  scratch_.clear();
  std::uint32_t total_child = 0;
  std::uint32_t total_sib = 0;
  std::uint32_t total_prealloc = 0;
  bool all_simple = true;
  for (std::uint32_t i = 0; i < top.count; ++i) {
    const Consumer& c = top.items[i];
    const LoweredState& st = plan_->states[c.state];
    const LoweredProgramRef* prog =
        sym < plan_->width ? &st.element[sym] : &st.element_default;
    all_simple = all_simple && prog->simple_sib;
    total_child += prog->n_child;
    total_sib += prog->n_sib;
    total_prealloc += prog->prealloc_bytes;
    scratch_.push_back(PendingExec{c.state, prog, c.seg, c.ropes});
  }

  if (all_simple) {
    // Every consumer just retargets over the siblings and skips the
    // subtree: no allocation, no segment traffic — the scan hot path.
    // Register files ride along untouched (the identity parameter pass).
    for (std::uint32_t i = 0; i < top.count; ++i) {
      top.items[i].state = plan_->code[scratch_[i].prog->off].arg;
    }
    spawned_ += top.count;
    skip_depth_ = 1;
    return Status::OK();
  }

  // Sibling continuations replace the scope's consumers. Reuse the array in
  // place when it fits (a constant-size consumer set never allocates at
  // steady depth); grow geometrically otherwise. Growth happens before the
  // child mark so the array survives the child scope's reset — the retired
  // smaller arrays leak only until the parent closes, bounded by the
  // geometric sum.
  Consumer* sibs = top.items;
  std::uint32_t sib_cap = top.cap;
  if (sib_cap < total_sib) {
    sib_cap = std::max(total_sib, top.cap * 2);
    sibs = AllocConsumers(sib_cap);
  }
  // Arm the pre-mark rope block: chunks appended and register files staged
  // during this event may be handed to sibling continuations, which outlive
  // the subtree reset — so their bytes must precede the mark. The static
  // per-program budget makes the block an upper bound.
  if (total_prealloc > 0) {
    char* block = static_cast<char*>(arena_.Alloc(total_prealloc));
    prealloc_cur_ = block;
    prealloc_end_ = block + total_prealloc;
  } else {
    prealloc_cur_ = nullptr;
    prealloc_end_ = nullptr;
  }
  const BumpArena::Mark mark = arena_.TakeMark();
  Consumer* children =
      total_child > 0 ? AllocConsumers(total_child) : nullptr;

  std::uint32_t n_child = 0;
  std::uint32_t n_sib = 0;
  for (const PendingExec& p : scratch_) {
    ExecProgram(*p.prog, p.seg, sym, std::string_view(), &event, p.ropes,
                children, &n_child, sibs, &n_sib);
  }

  total_consumers_ += n_sib + n_child;
  total_consumers_ -= top.count;
  spawned_ += n_sib + n_child;
  top.items = sibs;
  top.count = n_sib;
  top.cap = sib_cap;

  if (n_child == 0) {
    arena_.Reset(mark);
    skip_depth_ = 1;
  } else {
    Scope scope;
    scope.items = children;
    scope.count = n_child;
    scope.cap = n_child;
    scope.mark = mark;
    scopes_.push_back(scope);
  }
  if (!exec_status_.ok()) return exec_status_;
  return Status::OK();
}

Status OpsEngine::OnText(const XmlEvent& event) {
  if (skip_depth_ > 0) return Status::OK();
  Scope& top = scopes_.back();
  if (top.count == 0) return Status::OK();

  XQMFT_RETURN_NOT_OK(ChargeSteps(top.count));

  // Text events take no mark: rope chunks and register files alloc straight
  // from the arena (they live until the enclosing element closes — exactly
  // as long as any consumer that can hold them).
  prealloc_cur_ = nullptr;
  prealloc_end_ = nullptr;

  scratch_.clear();
  std::uint32_t total_sib = 0;
  bool all_simple = true;
  for (std::uint32_t i = 0; i < top.count; ++i) {
    const Consumer& c = top.items[i];
    const LoweredProgramRef* prog = &plan_->states[c.state].text;
    all_simple = all_simple && prog->simple_sib;
    total_sib += prog->n_sib;
    scratch_.push_back(PendingExec{c.state, prog, c.seg, c.ropes});
  }

  if (all_simple) {
    for (std::uint32_t i = 0; i < top.count; ++i) {
      top.items[i].state = plan_->code[scratch_[i].prog->off].arg;
    }
    spawned_ += top.count;
    return Status::OK();
  }

  Consumer* sibs = top.items;
  std::uint32_t sib_cap = top.cap;
  if (sib_cap < total_sib) {
    sib_cap = std::max(total_sib, top.cap * 2);
    sibs = AllocConsumers(sib_cap);
  }

  // Text programs never spawn children (x1 over a text node lowers to the
  // callee's spliced epsilon program), so no child array and no scope push.
  std::uint32_t n_sib = 0;
  for (const PendingExec& p : scratch_) {
    std::uint32_t n_child = 0;
    ExecProgram(*p.prog, p.seg, kInvalidSymbol, event.text, &event, p.ropes,
                nullptr, &n_child, sibs, &n_sib);
  }

  total_consumers_ += n_sib;
  total_consumers_ -= top.count;
  spawned_ += n_sib;
  top.items = sibs;
  top.count = n_sib;
  top.cap = sib_cap;
  if (!exec_status_.ok()) return exec_status_;
  return Status::OK();
}

Status OpsEngine::OnEndElement() {
  if (skip_depth_ > 0) {
    --skip_depth_;
    return Status::OK();
  }
  if (scopes_.size() == 1) {
    return Status::InvalidArgument("unbalanced end element event");
  }
  Scope top = scopes_.back();
  XQMFT_RETURN_NOT_OK(ChargeSteps(top.count));
  for (std::uint32_t i = 0; i < top.count; ++i) {
    const Consumer& c = top.items[i];
    std::uint32_t n_child = 0;
    std::uint32_t n_sib = 0;
    // Epsilon programs are emission-only (register emits and eps bridges
    // included); ExecProgram closes the segment.
    ExecProgram(plan_->states[c.state].eps, c.seg, kInvalidSymbol,
                std::string_view(), nullptr, c.ropes, nullptr, &n_child,
                nullptr, &n_sib);
  }
  total_consumers_ -= top.count;
  scopes_.pop_back();
  arena_.Reset(top.mark);
  if (!exec_status_.ok()) return exec_status_;
  return Status::OK();
}

Status OpsEngine::OnEndOfDocument() {
  if (skip_depth_ > 0 || scopes_.size() > 1) {
    return Status::InvalidArgument("end of document with unclosed elements");
  }
  Scope& top = scopes_.back();
  XQMFT_RETURN_NOT_OK(ChargeSteps(top.count));
  for (std::uint32_t i = 0; i < top.count; ++i) {
    const Consumer& c = top.items[i];
    std::uint32_t n_child = 0;
    std::uint32_t n_sib = 0;
    ExecProgram(plan_->states[c.state].eps, c.seg, kInvalidSymbol,
                std::string_view(), nullptr, c.ropes, nullptr, &n_child,
                nullptr, &n_sib);
  }
  total_consumers_ -= top.count;
  top.count = 0;
  input_done_ = true;
  if (!exec_status_.ok()) return exec_status_;
  return Status::OK();
}

Status OpsEngine::Finish() {
  if (status_.ok()) {
    if (!started_) Prime();  // Sticky() inside records any failure
    if (status_.ok() && !done_ && !input_done_) {
      XmlEvent end;
      end.type = XmlEventType::kEndOfDocument;
      Feed(end);
    }
    if (status_.ok() && !done_) {
      // Unreachable via the public API (end-of-document either completes
      // the run or errors); guard against direct misuse.
      Sticky(
          Status::Internal("streaming engine finished with output pending"));
    }
  }
  return status_;
}

}  // namespace lower
}  // namespace xqmft
