// Execution lowering: compiles a RuleDispatch into per-state opcode programs.
//
// The table engine (stream/engine.cc) interprets rules one thunk at a time:
// every rule application allocates Call/Cons/Cat expressions, and every
// input event re-enters the graph reducer. For the large class of
// transducers the XQuery translation actually produces — parameter-free
// (rank 1 everywhere) and never matching on text *content* — that machinery
// is pure overhead: with no accumulating parameters there is no sharing to
// exploit, every call site's output lands at a fixed position in the output
// stream, and rule selection per node is a single dense-table index.
//
// Lowering turns each (state, input-label) rule into a flat program of
// packed instructions executed straight-line per input event:
//
//   kOpenLit s   emit <s>                  kTextLit s   emit text literal s
//   kCloseLit s  emit </s>                 kTextCur     emit the node's text
//   kOpenCur     emit <current-label>      kChild q     run q over children
//   kCloseCur    emit </current-label>     kSib q       run q over siblings
//
// Stay moves (x0 calls) are inlined at compile time — a program is the whole
// x0-closure of a rule, so the runtime never "applies a rule" at all; it
// executes one program per (consumer, event). Programs are deduplicated and
// memoized per (state, context); an x0 cycle (which the lazy engine would
// grind through its step budget) makes the plan unlowerable instead.
//
// A plan is lowerable iff:
//   * the optimized transducer is parameter-free (Mft::IsForestTransducer),
//   * no state matches on text content (no Symbol(kText) rule patterns —
//     those need a content-keyed probe per text node), and
//   * x0-call inlining terminates and the generated code stays under the
//     size cap.
// Unlowerable plans keep the table engine; lowering is a strict fast path,
// never a semantics change (asserted wholesale by the differential suites).
#ifndef XQMFT_LOWER_LOWER_H_
#define XQMFT_LOWER_LOWER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mft/mft.h"
#include "util/status.h"
#include "xml/symbol_table.h"

namespace xqmft {
namespace lower {

enum class LowerOp : unsigned char {
  kOpenLit = 0,  ///< StartElement(arg), arg an interned element symbol
  kCloseLit,     ///< EndElement(arg)
  kOpenCur,      ///< StartElement(current event's symbol)
  kCloseCur,     ///< EndElement(current event's symbol)
  kTextLit,      ///< Text(name of arg), arg an interned text-kind symbol
  kTextCur,      ///< Text(current text event's content)
  kChild,        ///< spawn a consumer in state arg over the node's children
  kSib,          ///< continue in state arg over the node's following siblings
};

/// Number of LowerOp values (dispatch-table size for the execution loop).
inline constexpr int kNumLowerOps = 8;

struct LoweredInsn {
  LowerOp op;
  std::uint32_t arg = 0;
};

/// \brief One program: a [off, off+len) slice of LoweredPlan::code, plus the
/// facts the runtime wants without scanning it.
struct LoweredProgramRef {
  std::uint32_t off = 0;
  std::uint32_t len = 0;
  std::uint32_t n_child = 0;  ///< number of kChild instructions
  std::uint32_t n_sib = 0;    ///< number of kSib instructions
  /// Last instruction is kChild/kSib: the spawned consumer inherits the
  /// writer's output segment instead of splitting it (the program writes
  /// nothing after the spawn). Collapses scan states to zero segment churn.
  bool tail_spawn = false;
  /// The program is exactly [kSib q]: the consumer just retargets to q and
  /// skips the subtree — no allocation, no segment work.
  bool simple_sib = false;
};

/// \brief All programs of one state, indexed the same way RuleDispatch
/// resolves rules: dense per-symbol for ids below the alphabet width,
/// fallbacks for everything else.
struct LoweredState {
  std::vector<LoweredProgramRef> element;  ///< by SymbolId, size = width
  LoweredProgramRef element_default;       ///< element ids >= width
  LoweredProgramRef text;                  ///< any text node
  LoweredProgramRef eps;                   ///< end of the consumed forest
};

/// \brief The lowered form of a transducer. Immutable once built; shared by
/// every concurrent run of the plan (same contract as RuleDispatch).
struct LoweredPlan {
  std::vector<LoweredInsn> code;
  std::vector<LoweredState> states;  ///< by StateId
  SymbolId width = 0;                ///< dense-table width (= dispatch width)
  StateId initial = 0;
};

/// Compiles `mft` to a LoweredPlan. The dispatch is compiled as a side
/// effect (lowering translates its tables). Fails with InvalidArgument and a
/// human-readable reason when the transducer is not lowerable.
Result<LoweredPlan> LowerMft(const Mft& mft);

/// The cached lowering of `mft`: compiles on first call and parks the result
/// (or the not-lowerable reason) in the transducer's lowering-cache slot.
/// Returns null when the plan is not lowerable, with the reason in `*why`.
/// Same thread contract as Mft::dispatch(): the first call is
/// single-threaded; afterwards the plan is immutable and safe to share
/// (CompiledPlan forces the fill before a plan can be shared).
const LoweredPlan* GetLoweredPlan(const Mft& mft, std::string* why = nullptr);

}  // namespace lower
}  // namespace xqmft

#endif  // XQMFT_LOWER_LOWER_H_
