// Execution lowering: compiles a RuleDispatch into per-state opcode programs.
//
// The table engine (stream/engine.cc) interprets rules one thunk at a time:
// every rule application allocates Call/Cons/Cat expressions, and every
// input event re-enters the graph reducer. For the transducers the XQuery
// translation actually produces, most of that machinery is overhead: rule
// selection per node is a single dense-table index and every call site's
// output lands at a fixed position in the output stream.
//
// Lowering turns each (state, input-label) rule into a flat program of
// packed instructions executed straight-line per input event:
//
//   kOpenLit s   emit <s>                  kTextLit s   emit text literal s
//   kCloseLit s  emit </s>                 kTextCur     emit the node's text
//   kOpenCur     emit <current-label>      kChild q     run q over children
//   kCloseCur    emit </current-label>     kSib q       run q over siblings
//
// Stay moves (x0 calls) are inlined at compile time — a program is the whole
// x0-closure of a rule, so the runtime never "applies a rule" at all; it
// executes one program per (consumer, event). Programs are deduplicated and
// memoized per (state, context); an x0 cycle (which the lazy engine would
// grind through its step budget) makes the plan unlowerable instead.
//
// Accumulating parameters (this file's PR 10 extension) lower two ways:
//
//   * Append-only parameters become *rope registers*: a bounded number
//     (kMaxRopeParams) of byte ropes whose chunks come from the engine's
//     mark/reset bump arena — no refcounting on the fast path. The analysis
//     admits a state when every rule threads each parameter linearly (used
//     at most once, extended only by appending emission-only output) and
//     the compiler emits the kRope* opcode family: stage fresh ropes,
//     append literal/current-label records, splice a parameter through,
//     spawn the callee with the staged register file, or emit a register
//     into the output stream.
//   * Everything else that is *anchor-local* bridges to the table engine:
//     an x0 call to a general parameter-carrying state (or to a plain state
//     that matches on text content) whose arguments are free of x2 lowers
//     to kBridge — a sub-run of the lazy table machine over exactly the
//     anchor subtree, spliced into the output at the call position. The
//     caller keeps running on the opcode core; the plan is *hybrid*.
//     Call sites whose arguments share a common suffix (the translation's
//     `q(x0, A·C, B·C)` shape, where the suffix is the sibling-scan
//     continuation) are factored first: when the callee is a pure
//     *selector* cluster — every rule passes parameters through verbatim
//     and terminates in exactly one of them — the call is equivalent to
//     bridging the residual arguments and emitting the suffix as ordinary
//     caller code, which makes the residuals x2-free and keeps the scan on
//     the opcode engine. This is what takes the q01/q04-style predicate
//     queries off the pure table path.
//
// A plan is lowerable iff every reachable call site lands in one of those
// classes, x0-call inlining terminates, and the generated code stays under
// the size cap. Unlowerable plans keep the table engine; lowering is a
// strict fast path, never a semantics change (asserted wholesale by the
// differential suites).
#ifndef XQMFT_LOWER_LOWER_H_
#define XQMFT_LOWER_LOWER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mft/mft.h"
#include "util/status.h"
#include "xml/events.h"
#include "xml/symbol_table.h"

namespace xqmft {
namespace lower {

enum class LowerOp : unsigned char {
  kOpenLit = 0,  ///< StartElement(arg), arg an interned element symbol
  kCloseLit,     ///< EndElement(arg)
  kOpenCur,      ///< StartElement(current event's symbol)
  kCloseCur,     ///< EndElement(current event's symbol)
  kTextLit,      ///< Text(name of arg), arg an interned text-kind symbol
  kTextCur,      ///< Text(current text event's content)
  kChild,        ///< spawn a consumer in state arg over the node's children
  kSib,          ///< continue in state arg over the node's following siblings
  // Hybrid execution: a table-machine sub-run over the anchor subtree.
  kBridge,       ///< arg = (BridgeCtx << kBridgeCtxShift) | site index
  // Rope registers for append-only accumulating parameters. A program
  // stages the callee's register file one rope at a time (kRopeNew opens a
  // fresh staging rope; the append/splice ops extend the most recently
  // staged one), then hands the staged file to the spawned consumer.
  kRopeNew,       ///< stage a fresh empty rope
  kRopeOpen,      ///< append <arg> to the staging rope
  kRopeClose,     ///< append </arg> to the staging rope
  kRopeText,      ///< append text literal arg to the staging rope
  kRopeOpenCur,   ///< append <current-label> to the staging rope
  kRopeCloseCur,  ///< append </current-label> to the staging rope
  kRopeTextCur,   ///< append the text node's content to the staging rope
  kRopeSplice,    ///< move own register arg onto the staging rope (linear)
  kRopeChild,     ///< kChild with the staged register file as arguments
  kRopeSib,       ///< kSib with the staged register file as arguments
  kRopeEmit,      ///< copy own register arg into the output stream
};

/// Number of LowerOp values (dispatch-table size for the execution loop).
inline constexpr int kNumLowerOps = 20;

/// Bound on rope registers per state (parameters of an append-only state).
/// Small by design: the register file travels inline with each consumer.
inline constexpr std::uint32_t kMaxRopeParams = 4;

/// The input context a kBridge site anchors to, packed into the high bits
/// of the instruction argument (the low bits are the site index).
enum class BridgeCtx : std::uint32_t {
  kElement = 0,  ///< anchored at an element: sub-run over the whole subtree
  kText = 1,     ///< x0 over a text node: one-event sub-run, inline
  kEps = 2,      ///< x0 at end of forest: empty sub-run, inline
};
inline constexpr std::uint32_t kBridgeCtxShift = 24;
inline constexpr std::uint32_t kBridgeSiteMask = (1u << kBridgeCtxShift) - 1;

struct LoweredInsn {
  LowerOp op;
  std::uint32_t arg = 0;
};

/// \brief One program: a [off, off+len) slice of LoweredPlan::code, plus the
/// facts the runtime wants without scanning it.
struct LoweredProgramRef {
  std::uint32_t off = 0;
  std::uint32_t len = 0;
  std::uint32_t n_child = 0;  ///< number of kChild/kRopeChild instructions
  std::uint32_t n_sib = 0;    ///< number of kSib/kRopeSib instructions
  /// Upper bound on arena bytes the program allocates for rope chunks and
  /// staged register files. Charged as one block *before* the event's child
  /// mark, so ropes handed to sibling continuations survive the subtree
  /// reset (the register-file analogue of the consumer-array growth rule).
  std::uint32_t prealloc_bytes = 0;
  /// Last instruction is kChild/kSib (or a rope spawn): the spawned
  /// consumer inherits the writer's output segment instead of splitting it
  /// (the program writes nothing after the spawn). Collapses scan states to
  /// zero segment churn.
  bool tail_spawn = false;
  /// The program is exactly [kSib q]: the consumer just retargets to q and
  /// skips the subtree — no allocation, no segment work. (An identity
  /// parameter pass `q(x2, y1..yn)` compiles to exactly this: the consumer
  /// keeps its register file.)
  bool simple_sib = false;
};

/// \brief All programs of one state, indexed the same way RuleDispatch
/// resolves rules: dense per-symbol for ids below the alphabet width,
/// fallbacks for everything else.
struct LoweredState {
  std::vector<LoweredProgramRef> element;  ///< by SymbolId, size = width
  LoweredProgramRef element_default;       ///< element ids >= width
  LoweredProgramRef text;                  ///< any text node
  LoweredProgramRef eps;                   ///< end of the consumed forest
  std::uint8_t n_ropes = 0;  ///< rope registers (the state's parameters)
};

/// \brief The lowered form of a transducer. Immutable once built; shared by
/// every concurrent run of the plan (same contract as RuleDispatch).
/// Move-only: hybrid plans own the bridge transducer.
struct LoweredPlan {
  LoweredPlan() = default;
  LoweredPlan(LoweredPlan&&) = default;
  LoweredPlan& operator=(LoweredPlan&&) = default;

  std::vector<LoweredInsn> code;
  std::vector<LoweredState> states;  ///< by StateId
  SymbolId width = 0;                ///< dense-table width (= dispatch width)
  StateId initial = 0;

  /// Hybrid support: a clone of the source transducer extended with one
  /// synthetic root state per bridge site (rules `root -> callee(x0, ...)`
  /// for element/text/eps), dispatch pre-compiled so concurrent runs never
  /// race a lazy fill. Null for fully lowered plans.
  std::unique_ptr<const Mft> bridge_mft;
  /// Per-site synthetic root state in `bridge_mft`, indexed by the site
  /// half of a kBridge instruction argument.
  std::vector<StateId> bridge_sites;
  /// True when the plan contains at least one kBridge site (some states
  /// execute on the table engine under the opcode core).
  bool hybrid = false;
  /// Human-readable summary of how the plan lowered ("full", or
  /// "hybrid: ..." naming what bridges), surfaced by --stats and serving.
  std::string lowering_note;
};

/// \brief One table-machine sub-run behind a kBridge site. Constructed by
/// the BridgeFactory when the opcode engine reaches the site's anchor; fed
/// exactly the anchor subtree's events (start, interior, end — or a single
/// text event, or nothing for an eps site); finished once to flush and
/// verify. Output lands in the sink the factory was given.
class BridgeRun {
 public:
  virtual ~BridgeRun() = default;
  virtual Status Feed(const XmlEvent& event) = 0;
  virtual Status Finish() = 0;
};

/// Supplied by the engine facade (stream/engine.cc), which owns the run
/// context the sub-runs share: builds the BridgeRun for `site` writing into
/// `sink`. The factory outlives the OpsEngine it is handed to.
using BridgeFactory =
    std::function<std::unique_ptr<BridgeRun>(std::uint32_t site,
                                             OutputSink* sink)>;

/// Compiles `mft` to a LoweredPlan. The dispatch is compiled as a side
/// effect (lowering translates its tables). Fails with InvalidArgument and a
/// human-readable reason when the transducer is not lowerable.
Result<LoweredPlan> LowerMft(const Mft& mft);

/// The cached lowering of `mft`: compiles on first call and parks the result
/// (or the not-lowerable reason) in the transducer's lowering-cache slot.
/// Returns null when the plan is not lowerable, with the reason in `*why`;
/// on success `*why` carries the lowering note ("full" / "hybrid: ...").
/// Same thread contract as Mft::dispatch(): the first call is
/// single-threaded; afterwards the plan is immutable and safe to share
/// (CompiledPlan forces the fill before a plan can be shared).
const LoweredPlan* GetLoweredPlan(const Mft& mft, std::string* why = nullptr);

}  // namespace lower
}  // namespace xqmft

#endif  // XQMFT_LOWER_LOWER_H_
