#include "lower/lower.h"

#include <map>
#include <memory>
#include <utility>

#include "mft/dispatch.h"

namespace xqmft {
namespace lower {

namespace {

// Hard cap on generated code: x0 inlining is exponential in the worst case
// (a chain of states each calling the previous twice), so a runaway blowup
// must degrade to "not lowerable", not to an OOM.
constexpr std::size_t kMaxCodeSize = std::size_t{1} << 20;

// Compilation context of a program: which input the state is being applied
// to, which determines how %t and x1 resolve.
//   [0, width)   element node with that interned symbol (%t is a literal)
//   width        element node with an id outside the alphabet (%t is kOpenCur)
//   width + 1    text node (%t is kTextCur; x1 is the empty forest)
//   width + 2    end of forest (epsilon rule; emission only)
class Compiler {
 public:
  explicit Compiler(const Mft& mft)
      : mft_(mft), dispatch_(mft.dispatch()), width_(dispatch_.width()) {}

  Result<LoweredPlan> Run() {
    if (!mft_.IsForestTransducer()) {
      return Fail("transducer has accumulating parameters");
    }
    for (StateId q = 0; q < mft_.num_states(); ++q) {
      for (const auto& [symbol, rhs] : mft_.rules(q).symbol_rules) {
        (void)rhs;
        if (symbol.kind == NodeKind::kText) {
          return Fail("state '" + mft_.state_name(q) +
                      "' matches on text content");
        }
      }
    }

    const std::size_t n_ctx = static_cast<std::size_t>(width_) + 3;
    memo_.assign(static_cast<std::size_t>(mft_.num_states()) * n_ctx, -1);

    plan_.width = width_;
    plan_.initial = mft_.initial_state();
    plan_.states.resize(static_cast<std::size_t>(mft_.num_states()));
    for (StateId q = 0; q < mft_.num_states(); ++q) {
      LoweredState& st = plan_.states[static_cast<std::size_t>(q)];
      st.element.resize(width_);
      for (SymbolId id = 0; id < width_; ++id) {
        int p = CompileProgram(q, id);
        if (p < 0) return Fail(error_);
        st.element[id] = finished_[static_cast<std::size_t>(p)];
      }
      int p = CompileProgram(q, CtxDefault());
      if (p < 0) return Fail(error_);
      st.element_default = finished_[static_cast<std::size_t>(p)];
      p = CompileProgram(q, CtxText());
      if (p < 0) return Fail(error_);
      st.text = finished_[static_cast<std::size_t>(p)];
      p = CompileProgram(q, CtxEps());
      if (p < 0) return Fail(error_);
      st.eps = finished_[static_cast<std::size_t>(p)];
    }
    return std::move(plan_);
  }

 private:
  std::uint32_t CtxDefault() const { return width_; }
  std::uint32_t CtxText() const { return width_ + 1; }
  std::uint32_t CtxEps() const { return width_ + 2; }

  static Status Fail(std::string why) {
    return Status::InvalidArgument("not lowerable: " + std::move(why));
  }

  // Compiles the program for (q, ctx); returns its index in finished_, or -1
  // with error_ set. Memoized; a cycle through the memo means the x0-call
  // closure of some rule revisits (q, ctx) before emitting anything that
  // consumes input — the lazy engine would spin on it too.
  int CompileProgram(StateId q, std::uint32_t ctx) {
    const std::size_t n_ctx = static_cast<std::size_t>(width_) + 3;
    std::int32_t& slot = memo_[static_cast<std::size_t>(q) * n_ctx + ctx];
    if (slot >= 0) return slot;
    if (slot == kInProgress) {
      error_ = "x0-call cycle through state '" + mft_.state_name(q) + "'";
      return -1;
    }
    slot = kInProgress;

    const Rhs* rhs;
    if (ctx < width_) {
      rhs = dispatch_.ForElement(q, ctx);
      if (rhs == nullptr) {
        // A text-kind id: no element event can carry it, but the dense table
        // must stay rectangular — alias the generic-element program.
        int p = CompileProgram(q, CtxDefault());
        slot = p;
        return p;
      }
    } else if (ctx == CtxDefault()) {
      rhs = dispatch_.ForElement(q, width_);
    } else if (ctx == CtxText()) {
      // Safe without content: states matching text literals were rejected,
      // so ForText never takes its content-keyed probe path here.
      rhs = dispatch_.ForText(q, std::string_view());
    } else {
      rhs = dispatch_.Epsilon(q);
    }
    if (rhs == nullptr) {
      error_ = "state '" + mft_.state_name(q) + "' has no applicable rule";
      return -1;
    }

    std::vector<LoweredInsn> tmp;
    if (!EmitRhs(*rhs, ctx, &tmp)) return -1;

    int ref = Intern(std::move(tmp));
    if (ref < 0) return -1;
    slot = ref;
    return ref;
  }

  // Appends the instructions for one RHS forest in context `ctx` to *out.
  bool EmitRhs(const Rhs& rhs, std::uint32_t ctx,
               std::vector<LoweredInsn>* out) {
    for (const RhsNode& item : rhs) {
      switch (item.kind) {
        case RhsKind::kLabel: {
          if (item.current_label) {
            if (ctx < width_) {
              // %t over a known element symbol folds to a literal.
              out->push_back({LowerOp::kOpenLit, ctx});
              if (!EmitRhs(item.children, ctx, out)) return false;
              out->push_back({LowerOp::kCloseLit, ctx});
            } else if (ctx == CtxDefault()) {
              out->push_back({LowerOp::kOpenCur, 0});
              if (!EmitRhs(item.children, ctx, out)) return false;
              out->push_back({LowerOp::kCloseCur, 0});
            } else if (ctx == CtxText()) {
              // %t over a text node copies its content; an output text node
              // has no children to emit (the lazy engine never forces them).
              out->push_back({LowerOp::kTextCur, 0});
            } else {
              error_ = "%t in an epsilon rule";  // excluded by Validate()
              return false;
            }
          } else if (item.symbol.kind == NodeKind::kText) {
            out->push_back({LowerOp::kTextLit, item.symbol_id});
          } else {
            out->push_back({LowerOp::kOpenLit, item.symbol_id});
            if (!EmitRhs(item.children, ctx, out)) return false;
            out->push_back({LowerOp::kCloseLit, item.symbol_id});
          }
          break;
        }
        case RhsKind::kCall: {
          if (!item.args.empty()) {
            error_ = "state call carries arguments";  // excluded upfront
            return false;
          }
          switch (item.input) {
            case InputVar::kX0: {
              // Stay move: splice the callee's program for the same input.
              if (!Splice(item.state, ctx, out)) return false;
              break;
            }
            case InputVar::kX1: {
              if (ctx == CtxText()) {
                // A text node's child forest is empty: running q over it is
                // exactly q's epsilon program.
                if (!Splice(item.state, CtxEps(), out)) return false;
              } else if (ctx == CtxEps()) {
                error_ = "x1 in an epsilon rule";  // excluded by Validate()
                return false;
              } else {
                out->push_back(
                    {LowerOp::kChild, static_cast<std::uint32_t>(item.state)});
              }
              break;
            }
            case InputVar::kX2: {
              if (ctx == CtxEps()) {
                error_ = "x2 in an epsilon rule";  // excluded by Validate()
                return false;
              }
              out->push_back(
                  {LowerOp::kSib, static_cast<std::uint32_t>(item.state)});
              break;
            }
          }
          break;
        }
        case RhsKind::kParam: {
          error_ = "parameter reference in rhs";  // excluded upfront
          return false;
        }
      }
      if (out->size() > kMaxCodeSize) {
        error_ = "lowered program exceeds the size limit";
        return false;
      }
    }
    return true;
  }

  bool Splice(StateId q, std::uint32_t ctx, std::vector<LoweredInsn>* out) {
    int p = CompileProgram(q, ctx);
    if (p < 0) return false;
    const LoweredProgramRef& ref = finished_[static_cast<std::size_t>(p)];
    out->insert(out->end(), plan_.code.begin() + ref.off,
                plan_.code.begin() + ref.off + ref.len);
    return true;
  }

  // Deduplicates and appends a finished program; returns its finished_
  // index, or -1 when the code store would exceed the cap.
  int Intern(std::vector<LoweredInsn> tmp) {
    std::vector<std::uint64_t> key;
    key.reserve(tmp.size());
    for (const LoweredInsn& insn : tmp) {
      key.push_back((static_cast<std::uint64_t>(insn.op) << 32) | insn.arg);
    }
    auto it = dedupe_.find(key);
    if (it != dedupe_.end()) return it->second;

    if (plan_.code.size() + tmp.size() > kMaxCodeSize) {
      error_ = "lowered program exceeds the size limit";
      return -1;
    }
    LoweredProgramRef ref;
    ref.off = static_cast<std::uint32_t>(plan_.code.size());
    ref.len = static_cast<std::uint32_t>(tmp.size());
    for (const LoweredInsn& insn : tmp) {
      if (insn.op == LowerOp::kChild) ++ref.n_child;
      if (insn.op == LowerOp::kSib) ++ref.n_sib;
    }
    ref.tail_spawn = !tmp.empty() && (tmp.back().op == LowerOp::kChild ||
                                      tmp.back().op == LowerOp::kSib);
    ref.simple_sib = tmp.size() == 1 && tmp[0].op == LowerOp::kSib;
    plan_.code.insert(plan_.code.end(), tmp.begin(), tmp.end());

    int idx = static_cast<int>(finished_.size());
    finished_.push_back(ref);
    dedupe_.emplace(std::move(key), idx);
    return idx;
  }

  static constexpr std::int32_t kInProgress = -2;

  const Mft& mft_;
  const RuleDispatch& dispatch_;
  const SymbolId width_;
  LoweredPlan plan_;
  std::vector<std::int32_t> memo_;  // (state, ctx) -> finished_ index
  std::vector<LoweredProgramRef> finished_;
  std::map<std::vector<std::uint64_t>, int> dedupe_;
  std::string error_;
};

// What the Mft's type-erased lowering-cache slot actually holds: the plan,
// or the reason there is none. Negative results are cached too — an
// unlowerable transducer should not re-run the analysis per engine.
struct LoweredCacheEntry {
  std::unique_ptr<const LoweredPlan> plan;
  std::string reason;
};

}  // namespace

Result<LoweredPlan> LowerMft(const Mft& mft) { return Compiler(mft).Run(); }

const LoweredPlan* GetLoweredPlan(const Mft& mft, std::string* why) {
  auto cached =
      std::static_pointer_cast<const LoweredCacheEntry>(mft.lowering_cache());
  if (cached == nullptr) {
    auto entry = std::make_shared<LoweredCacheEntry>();
    Result<LoweredPlan> r = LowerMft(mft);
    if (r.ok()) {
      entry->plan =
          std::make_unique<const LoweredPlan>(std::move(r).value());
    } else {
      entry->reason = r.status().message();
    }
    cached = std::move(entry);
    mft.set_lowering_cache(
        std::static_pointer_cast<const void>(cached));
  }
  if (why != nullptr) *why = cached->reason;
  return cached->plan.get();
}

}  // namespace lower
}  // namespace xqmft
