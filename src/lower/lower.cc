#include "lower/lower.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "mft/dispatch.h"

namespace xqmft {
namespace lower {

namespace {

// Hard cap on generated code: x0 inlining is exponential in the worst case
// (a chain of states each calling the previous twice), so a runaway blowup
// must degrade to "not lowerable", not to an OOM.
constexpr std::size_t kMaxCodeSize = std::size_t{1} << 20;

// Per-instruction arena budgets for the pre-mark rope block (see
// LoweredProgramRef::prealloc_bytes). A rope append allocates at most one
// chunk (8 pad + 16 header + 48 capacity); a rope spawn materializes one
// register file (kMaxRopeParams ropes + pad). Overestimates are cheap: the
// block is bump-allocated and reclaimed wholesale at scope close.
constexpr std::uint32_t kPreallocPerAppend = 80;
constexpr std::uint32_t kPreallocPerSpawn = 96;

// How a state executes under the lowered plan.
enum class StateClass : unsigned char {
  kPlain,        ///< parameter-free, compiles to opcode programs
  kPlainBridged, ///< parameter-free but matches on text content: table-only
  kAppend,       ///< parameters thread linearly: rope registers, native
  kSelector,     ///< pass-through cluster: factored + bridged at call sites
  kGeneral,      ///< anything else: reachable only through a kBridge
};

// Compilation context of a program: which input the state is being applied
// to, which determines how %t and x1 resolve.
//   [0, width)   element node with that interned symbol (%t is a literal)
//   width        element node with an id outside the alphabet (%t is kOpenCur)
//   width + 1    text node (%t is kTextCur; x1 is the empty forest)
//   width + 2    end of forest (epsilon rule; emission only)
class Compiler {
 public:
  explicit Compiler(const Mft& mft)
      : mft_(mft), dispatch_(mft.dispatch()), width_(dispatch_.width()) {}

  Result<LoweredPlan> Run() {
    Classify();

    const StateId q0 = mft_.initial_state();
    if (mft_.num_params(q0) > 0) {
      return Fail("initial state carries parameters");
    }
    if (class_[static_cast<std::size_t>(q0)] == StateClass::kPlainBridged) {
      return Fail("state '" + mft_.state_name(q0) +
                  "' matches on text content");
    }

    const std::size_t n_ctx = static_cast<std::size_t>(width_) + 3;
    memo_.assign(static_cast<std::size_t>(mft_.num_states()) * n_ctx, -1);

    plan_.width = width_;
    plan_.initial = q0;
    plan_.states.resize(static_cast<std::size_t>(mft_.num_states()));
    for (StateId q = 0; q < mft_.num_states(); ++q) {
      const StateClass cls = class_[static_cast<std::size_t>(q)];
      // Selector/general parameter states and text-content matchers have no
      // programs: they only ever run inside a table-machine bridge.
      if (cls != StateClass::kPlain && cls != StateClass::kAppend) continue;
      LoweredState& st = plan_.states[static_cast<std::size_t>(q)];
      st.n_ropes = cls == StateClass::kAppend
                       ? static_cast<std::uint8_t>(mft_.num_params(q))
                       : 0;
      st.element.resize(width_);
      for (SymbolId id = 0; id < width_; ++id) {
        int p = CompileProgram(q, id);
        if (p < 0) return Fail(error_);
        st.element[id] = finished_[static_cast<std::size_t>(p)];
      }
      int p = CompileProgram(q, CtxDefault());
      if (p < 0) return Fail(error_);
      st.element_default = finished_[static_cast<std::size_t>(p)];
      p = CompileProgram(q, CtxText());
      if (p < 0) return Fail(error_);
      st.text = finished_[static_cast<std::size_t>(p)];
      p = CompileProgram(q, CtxEps());
      if (p < 0) return Fail(error_);
      st.eps = finished_[static_cast<std::size_t>(p)];
    }

    if (!sites_.empty()) {
      BuildBridgeMft();
      plan_.hybrid = true;
      std::string states;
      for (StateId q : site_states_) {
        if (!states.empty()) states += ", ";
        states += "'" + mft_.state_name(q) + "'";
      }
      plan_.lowering_note = "hybrid: " + std::to_string(sites_.size()) +
                            " table-bridge site(s) through " + states;
    } else {
      plan_.lowering_note = "full";
    }
    return std::move(plan_);
  }

 private:
  std::uint32_t CtxDefault() const { return width_; }
  std::uint32_t CtxText() const { return width_ + 1; }
  std::uint32_t CtxEps() const { return width_ + 2; }

  static Status Fail(std::string why) {
    return Status::InvalidArgument("not lowerable: " + std::move(why));
  }

  bool HasTextContentRules(StateId q) const {
    for (const auto& [symbol, rhs] : mft_.rules(q).symbol_rules) {
      (void)rhs;
      if (symbol.kind == NodeKind::kText) return true;
    }
    return false;
  }

  // ---------------------------------------------------------------- analysis

  // Classifies every state (see StateClass) and computes the escape set:
  // escapes_[q] is true when running q at a node can read that node's
  // *following siblings* (an x2 call in q's x0-closure, including call
  // arguments, which are evaluated at the caller's position). A bridged
  // sub-run feeds only the anchor subtree, so only non-escaping states (and
  // non-escaping argument forests) may cross the bridge.
  void Classify() {
    const std::size_t n = static_cast<std::size_t>(mft_.num_states());
    class_.assign(n, StateClass::kGeneral);
    sel_.assign(n, false);
    app_.assign(n, false);
    escapes_.assign(n, false);

    for (StateId q = 0; q < mft_.num_states(); ++q) {
      const int np = mft_.num_params(q);
      if (np == 0) {
        class_[static_cast<std::size_t>(q)] = HasTextContentRules(q)
                                                  ? StateClass::kPlainBridged
                                                  : StateClass::kPlain;
      } else {
        sel_[static_cast<std::size_t>(q)] = true;
        app_[static_cast<std::size_t>(q)] =
            np <= static_cast<int>(kMaxRopeParams) && !HasTextContentRules(q);
      }
    }

    // Demotion fixpoints: a shape may reference other parameter states, so
    // iterate until no state loses its flag.
    for (bool changed = true; changed;) {
      changed = false;
      for (StateId q = 0; q < mft_.num_states(); ++q) {
        if (sel_[static_cast<std::size_t>(q)] && !SelectorShape(q)) {
          sel_[static_cast<std::size_t>(q)] = false;
          changed = true;
        }
      }
    }
    for (bool changed = true; changed;) {
      changed = false;
      for (StateId q = 0; q < mft_.num_states(); ++q) {
        if (app_[static_cast<std::size_t>(q)] && !AppendShape(q)) {
          app_[static_cast<std::size_t>(q)] = false;
          changed = true;
        }
      }
    }
    // Least fixpoint: escaping requires an actual x2 somewhere, so growing
    // from "nothing escapes" is exact even through x0 cycles.
    for (bool changed = true; changed;) {
      changed = false;
      for (StateId q = 0; q < mft_.num_states(); ++q) {
        if (escapes_[static_cast<std::size_t>(q)]) continue;
        if (StateEscapes(q)) {
          escapes_[static_cast<std::size_t>(q)] = true;
          changed = true;
        }
      }
    }

    for (StateId q = 0; q < mft_.num_states(); ++q) {
      if (mft_.num_params(q) == 0) continue;
      std::size_t i = static_cast<std::size_t>(q);
      class_[i] = app_[i] ? StateClass::kAppend
                          : (sel_[i] ? StateClass::kSelector
                                     : StateClass::kGeneral);
    }
  }

  bool StateEscapes(StateId q) const {
    const StateRules& r = mft_.rules(q);
    for (const auto& [symbol, rhs] : r.symbol_rules) {
      (void)symbol;
      if (RhsEscapes(rhs)) return true;
    }
    if (r.text_rule && RhsEscapes(*r.text_rule)) return true;
    if (r.default_rule && RhsEscapes(*r.default_rule)) return true;
    // Epsilon rules cannot reference x2 (no input); x0 calls in them are
    // epsilon-recursion and cannot reach siblings either.
    return false;
  }

  bool RhsEscapes(const Rhs& rhs) const {
    for (const RhsNode& item : rhs) {
      switch (item.kind) {
        case RhsKind::kLabel:
          if (RhsEscapes(item.children)) return true;
          break;
        case RhsKind::kParam:
          break;
        case RhsKind::kCall: {
          if (item.input == InputVar::kX2) return true;
          if (item.input == InputVar::kX0 &&
              escapes_[static_cast<std::size_t>(item.state)]) {
            return true;
          }
          // Arguments are evaluated at the caller's position, whatever the
          // call's input variable — x2 inside them reads the same siblings.
          for (const Rhs& arg : item.args) {
            if (RhsEscapes(arg)) return true;
          }
          break;
        }
      }
    }
    return false;
  }

  // A *selector* cluster passes parameters through verbatim: every rule is
  // a single bare parameter or a single call into the cluster whose
  // arguments are themselves bare parameters or cluster calls, and the
  // epsilon rule selects a parameter. By induction the cluster's output is
  // exactly one of the original call's arguments, unchanged — the property
  // that licenses common-suffix factoring at the call site.
  bool SelectorShape(StateId q) const {
    const StateRules& r = mft_.rules(q);
    auto rule_ok = [&](const Rhs& rhs) {
      if (rhs.size() != 1) return false;
      const RhsNode& n0 = rhs[0];
      if (n0.kind == RhsKind::kParam) return true;
      if (n0.kind != RhsKind::kCall) return false;
      if (n0.state < 0 || mft_.num_params(n0.state) == 0) return false;
      if (!sel_[static_cast<std::size_t>(n0.state)]) return false;
      if (static_cast<int>(n0.args.size()) != mft_.num_params(n0.state)) {
        return false;
      }
      for (const Rhs& arg : n0.args) {
        if (!SelectorArg(arg)) return false;
      }
      return true;
    };
    for (const auto& [symbol, rhs] : r.symbol_rules) {
      (void)symbol;
      if (!rule_ok(rhs)) return false;
    }
    if (r.text_rule && !rule_ok(*r.text_rule)) return false;
    if (r.default_rule && !rule_ok(*r.default_rule)) return false;
    if (!r.epsilon_rule || r.epsilon_rule->size() != 1 ||
        (*r.epsilon_rule)[0].kind != RhsKind::kParam) {
      return false;
    }
    return true;
  }

  bool SelectorArg(const Rhs& arg) const {
    if (arg.size() != 1) return false;
    const RhsNode& n0 = arg[0];
    if (n0.kind == RhsKind::kParam) return true;
    if (n0.kind != RhsKind::kCall) return false;
    if (n0.state < 0 || mft_.num_params(n0.state) == 0) return false;
    if (!sel_[static_cast<std::size_t>(n0.state)]) return false;
    for (const Rhs& a : n0.args) {
      if (!SelectorArg(a)) return false;
    }
    return true;
  }

  // The *append-only* discipline: every rule threads each parameter
  // linearly — used at most once, either emitted into the output or spliced
  // into an argument of a further append-only call — and call arguments are
  // emission-only otherwise (no state calls inside an argument). Such
  // parameters compile to rope registers.
  bool AppendShape(StateId q) const {
    const StateRules& r = mft_.rules(q);
    bool used[kMaxRopeParams];
    auto rule_ok = [&](const Rhs& rhs) {
      std::fill(used, used + kMaxRopeParams, false);
      return AppendRhs(rhs, q, used);
    };
    for (const auto& [symbol, rhs] : r.symbol_rules) {
      (void)symbol;
      if (!rule_ok(rhs)) return false;
    }
    if (r.text_rule && !rule_ok(*r.text_rule)) return false;
    if (r.default_rule && !rule_ok(*r.default_rule)) return false;
    if (r.epsilon_rule && !rule_ok(*r.epsilon_rule)) return false;
    return true;
  }

  bool AppendRhs(const Rhs& rhs, StateId q, bool* used) const {
    for (const RhsNode& item : rhs) {
      switch (item.kind) {
        case RhsKind::kLabel:
          if (!AppendRhs(item.children, q, used)) return false;
          break;
        case RhsKind::kParam: {
          const int idx = item.param - 1;
          if (idx < 0 || idx >= mft_.num_params(q) || used[idx]) return false;
          used[idx] = true;
          break;
        }
        case RhsKind::kCall: {
          if (item.args.empty()) break;  // plain scan call, fine anywhere
          if (item.input == InputVar::kX0) return false;  // needs remapping
          if (item.state < 0 || !app_[static_cast<std::size_t>(item.state)]) {
            return false;
          }
          for (const Rhs& arg : item.args) {
            if (!AppendArg(arg, q, used)) return false;
          }
          break;
        }
      }
    }
    return true;
  }

  bool AppendArg(const Rhs& arg, StateId q, bool* used) const {
    for (const RhsNode& item : arg) {
      switch (item.kind) {
        case RhsKind::kLabel:
          if (!AppendArg(item.children, q, used)) return false;
          break;
        case RhsKind::kParam: {
          const int idx = item.param - 1;
          if (idx < 0 || idx >= mft_.num_params(q) || used[idx]) return false;
          used[idx] = true;
          break;
        }
        case RhsKind::kCall:
          return false;  // a call's output is not emission-only
      }
    }
    return true;
  }

  // Every state a bridged sub-run can reach must be able to fire: missing
  // default/epsilon rules would turn a table-engine error into silently
  // different lowered output, so the drop-the-call optimization (all
  // arguments identical) is gated on cluster totality.
  bool ClusterTotal(StateId q0) const {
    std::vector<StateId> stack{q0};
    std::set<StateId> seen{q0};
    auto visit = [&](const Rhs& rhs, auto&& self) -> void {
      for (const RhsNode& item : rhs) {
        if (item.kind == RhsKind::kLabel) {
          self(item.children, self);
        } else if (item.kind == RhsKind::kCall) {
          if (item.state >= 0 && seen.insert(item.state).second) {
            stack.push_back(item.state);
          }
          for (const Rhs& arg : item.args) self(arg, self);
        }
      }
    };
    while (!stack.empty()) {
      const StateId q = stack.back();
      stack.pop_back();
      const StateRules& r = mft_.rules(q);
      if (!r.default_rule || !r.epsilon_rule) return false;
      for (const auto& [symbol, rhs] : r.symbol_rules) {
        (void)symbol;
        visit(rhs, visit);
      }
      if (r.text_rule) visit(*r.text_rule, visit);
      visit(*r.default_rule, visit);
      visit(*r.epsilon_rule, visit);
    }
    return true;
  }

  // Whether a forest may cross a bridge as a call argument: evaluated at
  // the anchor with the sibling stream truncated, so it must not reference
  // x2 and every x0 call in it must be non-escaping.
  bool ArgBridgeable(const Rhs& rhs) {
    for (const RhsNode& item : rhs) {
      switch (item.kind) {
        case RhsKind::kLabel:
          if (!ArgBridgeable(item.children)) return false;
          break;
        case RhsKind::kParam:
          error_ = "parameter reference in a bridged argument";
          return false;
        case RhsKind::kCall: {
          if (item.input == InputVar::kX2) {
            error_ = "bridged arguments reference following siblings";
            return false;
          }
          if (item.input == InputVar::kX0 &&
              escapes_[static_cast<std::size_t>(item.state)]) {
            error_ = "bridged state '" + mft_.state_name(item.state) +
                     "' reads past the anchor subtree";
            return false;
          }
          for (const Rhs& arg : item.args) {
            if (!ArgBridgeable(arg)) return false;
          }
          break;
        }
      }
    }
    return true;
  }

  // ----------------------------------------------------------- compilation

  // Compiles the program for (q, ctx); returns its index in finished_, or -1
  // with error_ set. Memoized; a cycle through the memo means the x0-call
  // closure of some rule revisits (q, ctx) before emitting anything that
  // consumes input — the lazy engine would spin on it too.
  int CompileProgram(StateId q, std::uint32_t ctx) {
    const std::size_t n_ctx = static_cast<std::size_t>(width_) + 3;
    std::int32_t& slot = memo_[static_cast<std::size_t>(q) * n_ctx + ctx];
    if (slot >= 0) return slot;
    if (slot == kInProgress) {
      error_ = "x0-call cycle through state '" + mft_.state_name(q) + "'";
      return -1;
    }
    slot = kInProgress;

    const Rhs* rhs;
    if (ctx < width_) {
      rhs = dispatch_.ForElement(q, ctx);
      if (rhs == nullptr) {
        // A text-kind id: no element event can carry it, but the dense table
        // must stay rectangular — alias the generic-element program.
        int p = CompileProgram(q, CtxDefault());
        slot = p;
        return p;
      }
    } else if (ctx == CtxDefault()) {
      rhs = dispatch_.ForElement(q, width_);
    } else if (ctx == CtxText()) {
      // Safe without content: states with text-content rules are never
      // compiled, so ForText never takes its content-keyed probe path here.
      rhs = dispatch_.ForText(q, std::string_view());
    } else {
      rhs = dispatch_.Epsilon(q);
    }
    if (rhs == nullptr) {
      error_ = "state '" + mft_.state_name(q) + "' has no applicable rule";
      return -1;
    }

    const StateId owner =
        mft_.num_params(q) > 0 &&
                app_[static_cast<std::size_t>(q)]
            ? q
            : -1;
    bool used[kMaxRopeParams] = {false, false, false, false};
    std::vector<LoweredInsn> tmp;
    if (!EmitRhs(*rhs, owner, ctx, used, &tmp)) return -1;

    int ref = Intern(std::move(tmp));
    if (ref < 0) return -1;
    slot = ref;
    return ref;
  }

  // Appends the instructions for one RHS forest in context `ctx` to *out.
  // `owner` is the append-only state whose rope registers parameter
  // references resolve against (-1 in parameter-free programs); `used`
  // tracks the rule's linear-use discipline.
  bool EmitRhs(const Rhs& rhs, StateId owner, std::uint32_t ctx, bool* used,
               std::vector<LoweredInsn>* out) {
    for (const RhsNode& item : rhs) {
      switch (item.kind) {
        case RhsKind::kLabel: {
          if (item.current_label) {
            if (ctx < width_) {
              // %t over a known element symbol folds to a literal.
              out->push_back({LowerOp::kOpenLit, ctx});
              if (!EmitRhs(item.children, owner, ctx, used, out)) return false;
              out->push_back({LowerOp::kCloseLit, ctx});
            } else if (ctx == CtxDefault()) {
              out->push_back({LowerOp::kOpenCur, 0});
              if (!EmitRhs(item.children, owner, ctx, used, out)) return false;
              out->push_back({LowerOp::kCloseCur, 0});
            } else if (ctx == CtxText()) {
              // %t over a text node copies its content; an output text node
              // has no children to emit (the lazy engine never forces them).
              out->push_back({LowerOp::kTextCur, 0});
            } else {
              error_ = "%t in an epsilon rule";  // excluded by Validate()
              return false;
            }
          } else if (item.symbol.kind == NodeKind::kText) {
            out->push_back({LowerOp::kTextLit, item.symbol_id});
          } else {
            out->push_back({LowerOp::kOpenLit, item.symbol_id});
            if (!EmitRhs(item.children, owner, ctx, used, out)) return false;
            out->push_back({LowerOp::kCloseLit, item.symbol_id});
          }
          break;
        }
        case RhsKind::kCall: {
          if (!item.args.empty()) {
            if (!EmitParamCall(item, owner, ctx, used, out)) return false;
            break;
          }
          if (!EmitPlainCall(item, ctx, out)) return false;
          break;
        }
        case RhsKind::kParam: {
          const int idx = item.param - 1;
          if (owner < 0 || idx < 0 || idx >= mft_.num_params(owner)) {
            error_ = "parameter reference in rhs";
            return false;
          }
          if (used[idx]) {
            error_ = "state '" + mft_.state_name(owner) +
                     "' uses a parameter twice";
            return false;
          }
          used[idx] = true;
          out->push_back(
              {LowerOp::kRopeEmit, static_cast<std::uint32_t>(idx)});
          break;
        }
      }
      if (out->size() > kMaxCodeSize) {
        error_ = "lowered program exceeds the size limit";
        return false;
      }
    }
    return true;
  }

  // An argument-free state call: the parameter-free fast path, plus the
  // bridge for plain states that match on text content.
  bool EmitPlainCall(const RhsNode& item, std::uint32_t ctx,
                     std::vector<LoweredInsn>* out) {
    const StateId callee = item.state;
    const StateClass cls = class_[static_cast<std::size_t>(callee)];
    if (mft_.num_params(callee) > 0) {
      error_ = "call to state '" + mft_.state_name(callee) +
               "' is missing its arguments";
      return false;
    }
    switch (item.input) {
      case InputVar::kX0: {
        if (cls == StateClass::kPlain) return Splice(callee, ctx, out);
        // Text-content matcher: run it on the table engine over exactly
        // this anchor.
        return EmitBridge(RhsNode::Call(callee, InputVar::kX0), ctx, out);
      }
      case InputVar::kX1: {
        if (ctx == CtxText()) {
          // A text node's child forest is empty: running q over it is
          // exactly q's epsilon program (safe even for text-content
          // matchers — epsilon has no content to probe).
          return Splice(callee, CtxEps(), out);
        }
        if (ctx == CtxEps()) {
          error_ = "x1 in an epsilon rule";  // excluded by Validate()
          return false;
        }
        if (cls != StateClass::kPlain) {
          error_ = "state '" + mft_.state_name(callee) +
                   "' matches on text content";
          return false;
        }
        out->push_back(
            {LowerOp::kChild, static_cast<std::uint32_t>(callee)});
        return true;
      }
      case InputVar::kX2: {
        if (ctx == CtxEps()) {
          error_ = "x2 in an epsilon rule";  // excluded by Validate()
          return false;
        }
        if (cls != StateClass::kPlain) {
          error_ = "state '" + mft_.state_name(callee) +
                   "' matches on text content";
          return false;
        }
        out->push_back({LowerOp::kSib, static_cast<std::uint32_t>(callee)});
        return true;
      }
    }
    error_ = "unknown input variable";
    return false;
  }

  // A parameter-carrying call. Tries, in order:
  //   1. native rope execution (append-only callee, compilable arguments);
  //   2. common-suffix factoring against a selector cluster, bridging the
  //      residual arguments and emitting the suffix as caller code;
  //   3. a direct table bridge over the anchor subtree.
  bool EmitParamCall(const RhsNode& item, StateId owner, std::uint32_t ctx,
                     bool* used, std::vector<LoweredInsn>* out) {
    const StateId callee = item.state;
    const int cn = mft_.num_params(callee);
    if (cn == 0 || static_cast<int>(item.args.size()) != cn) {
      error_ = "call to state '" + mft_.state_name(callee) +
               "' has the wrong arity";
      return false;
    }
    if (ctx == CtxEps() && item.input != InputVar::kX0) {
      error_ = item.input == InputVar::kX1 ? "x1 in an epsilon rule"
                                           : "x2 in an epsilon rule";
      return false;
    }

    // 1) Native rope registers.
    if (app_[static_cast<std::size_t>(callee)] &&
        item.input != InputVar::kX0) {
      if (item.input == InputVar::kX1 && ctx == CtxText()) {
        // Empty child forest: the callee's epsilon rule with these
        // arguments substituted — folds to plain emission at compile time.
        const Rhs* eps = mft_.rules(callee).epsilon_rule
                             ? &*mft_.rules(callee).epsilon_rule
                             : nullptr;
        if (eps == nullptr) {
          error_ = "state '" + mft_.state_name(callee) +
                   "' has no applicable rule";
          return false;
        }
        return EmitRhs(SubstParams(*eps, item.args), owner, ctx, used, out);
      }
      // Identity pass q'(xi, y1..yn): the spawned consumer simply inherits
      // the caller's register file — a plain kChild/kSib, which keeps the
      // sibling-scan hot path allocation-free.
      if (owner >= 0 && cn == mft_.num_params(owner) &&
          IsIdentityArgs(item.args)) {
        for (int i = 0; i < cn; ++i) {
          if (used[i]) {
            error_ = "state '" + mft_.state_name(owner) +
                     "' uses a parameter twice";
            return false;
          }
          used[i] = true;
        }
        out->push_back({item.input == InputVar::kX1 ? LowerOp::kChild
                                                    : LowerOp::kSib,
                        static_cast<std::uint32_t>(callee)});
        return true;
      }
      // Stage the register file rope by rope.
      std::vector<LoweredInsn> tmp;
      bool saved[kMaxRopeParams];
      std::copy(used, used + kMaxRopeParams, saved);
      bool ok = true;
      for (const Rhs& arg : item.args) {
        tmp.push_back({LowerOp::kRopeNew, 0});
        if (!EmitRopeArg(arg, owner, ctx, used, &tmp)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        out->insert(out->end(), tmp.begin(), tmp.end());
        out->push_back({item.input == InputVar::kX1 ? LowerOp::kRopeChild
                                                    : LowerOp::kRopeSib,
                        static_cast<std::uint32_t>(callee)});
        return true;
      }
      std::copy(saved, saved + kMaxRopeParams, used);
      error_.clear();  // fall through to the bridge paths
    }

    // 2) Common-suffix factoring against a selector cluster: with
    //    arguments A_i = A'_i · C the cluster's output is A'_w · C for the
    //    winner w the input selects, so bridging the residuals A'_i and
    //    emitting C as ordinary caller code is exact.
    if (sel_[static_cast<std::size_t>(callee)]) {
      std::size_t min_len = item.args[0].size();
      for (const Rhs& arg : item.args) min_len = std::min(min_len, arg.size());
      std::size_t suffix = 0;
      while (suffix < min_len) {
        const RhsNode& probe =
            item.args[0][item.args[0].size() - 1 - suffix];
        bool all = true;
        for (const Rhs& arg : item.args) {
          if (!(arg[arg.size() - 1 - suffix] == probe)) {
            all = false;
            break;
          }
        }
        if (!all) break;
        ++suffix;
      }
      bool all_empty = true;
      for (const Rhs& arg : item.args) {
        if (arg.size() != suffix) {
          all_empty = false;
          break;
        }
      }
      if (all_empty && ClusterTotal(callee)) {
        // Identical arguments: whichever the cluster selects, the output is
        // the shared forest — drop the call entirely.
        return EmitRhs(item.args[0], owner, ctx, used, out);
      }
      if (item.input == InputVar::kX0 &&
          !escapes_[static_cast<std::size_t>(callee)]) {
        std::vector<Rhs> residuals;
        residuals.reserve(item.args.size());
        bool ok = true;
        for (const Rhs& arg : item.args) {
          Rhs res(arg.begin(), arg.end() - static_cast<std::ptrdiff_t>(suffix));
          if (!ArgBridgeable(res)) {
            ok = false;
            break;
          }
          residuals.push_back(std::move(res));
        }
        if (ok) {
          if (!EmitBridge(
                  RhsNode::Call(callee, InputVar::kX0, std::move(residuals)),
                  ctx, out)) {
            return false;
          }
          const Rhs& a0 = item.args[0];
          Rhs c(a0.end() - static_cast<std::ptrdiff_t>(suffix), a0.end());
          return EmitRhs(c, owner, ctx, used, out);
        }
        // error_ set by ArgBridgeable; keep the more specific message.
        return false;
      }
    }

    // 3) Direct bridge: x0, non-escaping callee, anchor-local arguments.
    if (item.input == InputVar::kX0) {
      if (escapes_[static_cast<std::size_t>(callee)]) {
        error_ = "bridged state '" + mft_.state_name(callee) +
                 "' reads past the anchor subtree";
        return false;
      }
      for (const Rhs& arg : item.args) {
        if (!ArgBridgeable(arg)) return false;
      }
      RhsNode call = item;  // deep copy, arguments included
      return EmitBridge(std::move(call), ctx, out);
    }
    error_ = item.input == InputVar::kX1
                 ? "parameter-carrying call over children does not lower"
                 : "parameter-carrying call over following siblings";
    return false;
  }

  static bool IsIdentityArgs(const std::vector<Rhs>& args) {
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i].size() != 1 || args[i][0].kind != RhsKind::kParam ||
          args[i][0].param != static_cast<int>(i) + 1) {
        return false;
      }
    }
    return true;
  }

  // Replaces parameter references in `rhs` by the given argument forests
  // (recursively, through label children and call arguments).
  Rhs SubstParams(const Rhs& rhs, const std::vector<Rhs>& args) const {
    Rhs out;
    for (const RhsNode& item : rhs) {
      if (item.kind == RhsKind::kParam) {
        const Rhs& a = args[static_cast<std::size_t>(item.param) - 1];
        out.insert(out.end(), a.begin(), a.end());
        continue;
      }
      RhsNode copy = item;
      if (copy.kind == RhsKind::kLabel) {
        copy.children = SubstParams(copy.children, args);
      } else if (copy.kind == RhsKind::kCall) {
        for (Rhs& arg : copy.args) arg = SubstParams(arg, args);
      }
      out.push_back(std::move(copy));
    }
    return out;
  }

  // Compiles one call argument into rope appends on the staging rope.
  bool EmitRopeArg(const Rhs& arg, StateId owner, std::uint32_t ctx,
                   bool* used, std::vector<LoweredInsn>* out) {
    for (const RhsNode& item : arg) {
      switch (item.kind) {
        case RhsKind::kLabel: {
          if (item.current_label) {
            if (ctx < width_) {
              out->push_back({LowerOp::kRopeOpen, ctx});
              if (!EmitRopeArg(item.children, owner, ctx, used, out)) {
                return false;
              }
              out->push_back({LowerOp::kRopeClose, ctx});
            } else if (ctx == CtxDefault()) {
              out->push_back({LowerOp::kRopeOpenCur, 0});
              if (!EmitRopeArg(item.children, owner, ctx, used, out)) {
                return false;
              }
              out->push_back({LowerOp::kRopeCloseCur, 0});
            } else if (ctx == CtxText()) {
              out->push_back({LowerOp::kRopeTextCur, 0});
            } else {
              error_ = "%t in an epsilon rule";
              return false;
            }
          } else if (item.symbol.kind == NodeKind::kText) {
            out->push_back({LowerOp::kRopeText, item.symbol_id});
          } else {
            out->push_back({LowerOp::kRopeOpen, item.symbol_id});
            if (!EmitRopeArg(item.children, owner, ctx, used, out)) {
              return false;
            }
            out->push_back({LowerOp::kRopeClose, item.symbol_id});
          }
          break;
        }
        case RhsKind::kParam: {
          const int idx = item.param - 1;
          if (owner < 0 || idx < 0 || idx >= mft_.num_params(owner)) {
            error_ = "parameter reference in rhs";
            return false;
          }
          if (used[idx]) {
            error_ = "state '" + mft_.state_name(owner) +
                     "' uses a parameter twice";
            return false;
          }
          used[idx] = true;
          out->push_back(
              {LowerOp::kRopeSplice, static_cast<std::uint32_t>(idx)});
          break;
        }
        case RhsKind::kCall:
          error_ = "state call inside an append-only argument";
          return false;
      }
    }
    return true;
  }

  bool EmitBridge(RhsNode call, std::uint32_t ctx,
                  std::vector<LoweredInsn>* out) {
    if (call.input == InputVar::kX0 &&
        escapes_[static_cast<std::size_t>(call.state)]) {
      error_ = "bridged state '" + mft_.state_name(call.state) +
               "' reads past the anchor subtree";
      return false;
    }
    int site = -1;
    for (std::size_t i = 0; i < sites_.size(); ++i) {
      if (sites_[i] == call) {
        site = static_cast<int>(i);
        break;
      }
    }
    if (site < 0) {
      if (sites_.size() >= kBridgeSiteMask) {
        error_ = "too many bridge sites";
        return false;
      }
      site = static_cast<int>(sites_.size());
      site_states_.insert(call.state);
      sites_.push_back(std::move(call));
    }
    BridgeCtx kind = BridgeCtx::kElement;
    if (ctx == CtxText()) kind = BridgeCtx::kText;
    if (ctx == CtxEps()) kind = BridgeCtx::kEps;
    out->push_back(
        {LowerOp::kBridge,
         (static_cast<std::uint32_t>(kind) << kBridgeCtxShift) |
             static_cast<std::uint32_t>(site)});
    return true;
  }

  void BuildBridgeMft() {
    auto bm = std::make_unique<Mft>(mft_);
    for (std::size_t i = 0; i < sites_.size(); ++i) {
      StateId root =
          bm->AddState("bridge#" + std::to_string(i), /*num_params=*/0);
      Rhs rhs{sites_[i]};
      // One synthetic root covers all three anchor kinds: the default rule
      // fires on an element anchor, the text rule on a text anchor, and the
      // epsilon rule on an empty sub-run (x0 at end of forest — the table
      // machine resolves the x0 call against the epsilon cell).
      bm->SetDefaultRule(root, rhs);
      bm->SetTextRule(root, rhs);
      bm->SetEpsilonRule(root, rhs);
      plan_.bridge_sites.push_back(root);
    }
    // Force-compile now: sub-runs may start on concurrent engine threads,
    // and the lazy dispatch fill is single-threaded by contract.
    bm->dispatch();
    plan_.bridge_mft = std::move(bm);
  }

  bool Splice(StateId q, std::uint32_t ctx, std::vector<LoweredInsn>* out) {
    int p = CompileProgram(q, ctx);
    if (p < 0) return false;
    const LoweredProgramRef& ref = finished_[static_cast<std::size_t>(p)];
    out->insert(out->end(), plan_.code.begin() + ref.off,
                plan_.code.begin() + ref.off + ref.len);
    return true;
  }

  // Deduplicates and appends a finished program; returns its finished_
  // index, or -1 when the code store would exceed the cap.
  int Intern(std::vector<LoweredInsn> tmp) {
    std::vector<std::uint64_t> key;
    key.reserve(tmp.size());
    for (const LoweredInsn& insn : tmp) {
      key.push_back((static_cast<std::uint64_t>(insn.op) << 32) | insn.arg);
    }
    auto it = dedupe_.find(key);
    if (it != dedupe_.end()) return it->second;

    if (plan_.code.size() + tmp.size() > kMaxCodeSize) {
      error_ = "lowered program exceeds the size limit";
      return -1;
    }
    LoweredProgramRef ref;
    ref.off = static_cast<std::uint32_t>(plan_.code.size());
    ref.len = static_cast<std::uint32_t>(tmp.size());
    for (const LoweredInsn& insn : tmp) {
      switch (insn.op) {
        case LowerOp::kChild:
        case LowerOp::kRopeChild:
          ++ref.n_child;
          break;
        case LowerOp::kSib:
        case LowerOp::kRopeSib:
          ++ref.n_sib;
          break;
        case LowerOp::kRopeOpen:
        case LowerOp::kRopeClose:
        case LowerOp::kRopeText:
        case LowerOp::kRopeOpenCur:
        case LowerOp::kRopeCloseCur:
          ref.prealloc_bytes += kPreallocPerAppend;
          break;
        default:
          break;
      }
      if (insn.op == LowerOp::kRopeChild || insn.op == LowerOp::kRopeSib) {
        ref.prealloc_bytes += kPreallocPerSpawn;
      }
    }
    if (!tmp.empty()) {
      const LowerOp last = tmp.back().op;
      ref.tail_spawn = last == LowerOp::kChild || last == LowerOp::kSib ||
                       last == LowerOp::kRopeChild ||
                       last == LowerOp::kRopeSib;
    }
    ref.simple_sib = tmp.size() == 1 && tmp[0].op == LowerOp::kSib;
    plan_.code.insert(plan_.code.end(), tmp.begin(), tmp.end());

    int idx = static_cast<int>(finished_.size());
    finished_.push_back(ref);
    dedupe_.emplace(std::move(key), idx);
    return idx;
  }

  static constexpr std::int32_t kInProgress = -2;

  const Mft& mft_;
  const RuleDispatch& dispatch_;
  const SymbolId width_;
  LoweredPlan plan_;
  std::vector<StateClass> class_;
  std::vector<bool> sel_;      // selector-cluster shape (factoring license)
  std::vector<bool> app_;      // append-only shape (rope registers)
  std::vector<bool> escapes_;  // x0-closure can read following siblings
  std::vector<RhsNode> sites_;        // bridge call sites, deduplicated
  std::set<StateId> site_states_;     // bridged callee states (for the note)
  std::vector<std::int32_t> memo_;  // (state, ctx) -> finished_ index
  std::vector<LoweredProgramRef> finished_;
  std::map<std::vector<std::uint64_t>, int> dedupe_;
  std::string error_;
};

// What the Mft's type-erased lowering-cache slot actually holds: the plan,
// or the reason there is none. Negative results are cached too — an
// unlowerable transducer should not re-run the analysis per engine.
struct LoweredCacheEntry {
  std::unique_ptr<const LoweredPlan> plan;
  std::string reason;
};

}  // namespace

Result<LoweredPlan> LowerMft(const Mft& mft) { return Compiler(mft).Run(); }

const LoweredPlan* GetLoweredPlan(const Mft& mft, std::string* why) {
  auto cached =
      std::static_pointer_cast<const LoweredCacheEntry>(mft.lowering_cache());
  if (cached == nullptr) {
    auto entry = std::make_shared<LoweredCacheEntry>();
    Result<LoweredPlan> r = LowerMft(mft);
    if (r.ok()) {
      entry->plan =
          std::make_unique<const LoweredPlan>(std::move(r).value());
    } else {
      entry->reason = r.status().message();
    }
    cached = std::move(entry);
    mft.set_lowering_cache(
        std::static_pointer_cast<const void>(cached));
  }
  if (why != nullptr) {
    *why = cached->plan != nullptr ? cached->plan->lowering_note
                                   : cached->reason;
  }
  return cached->plan.get();
}

}  // namespace lower
}  // namespace xqmft
