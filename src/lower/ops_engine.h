// Register-machine execution core for lowered plans.
//
// Where the table engine materializes the output as a lazy thunk graph, the
// ops engine executes one straight-line program per (consumer, input event)
// and never allocates a thunk:
//
//   * A *consumer* is a (state, output segment, register file) triple
//     positioned in some forest of the input. Each element/text event runs
//     the consumer's program for that label; kSib instructions yield the
//     consumer's continuations over the following siblings, kChild
//     instructions spawn consumers over the element's children. At the end
//     of a forest (EndElement of the parent) the epsilon program runs and
//     the consumer dies.
//   * Consumer records live in a bump arena. The static lowering analysis
//     already proved them non-escaping — a consumer never outlives the
//     subtree of the scope that spawned it — so closing an element resets
//     the arena to the mark taken when it opened, retiring the whole
//     subtree's records in O(1) instead of refcounting each cell.
//   * Output is a chain of *segments*: single-writer byte buffers ordered by
//     final output position. A program writes its emissions into its
//     segment; a spawn splits the segment so the spawned consumer's output
//     lands exactly where the call appeared in the rule. The chain head
//     drains to the sink as soon as its writer closes it — and an *open*
//     head goes "live", forwarding writes straight to the sink with no
//     buffering, which is the steady state of a single-consumer scan.
//   * Append-only accumulating parameters are *rope registers*: per-consumer
//     byte ropes whose chunks come from the same mark/reset arena as the
//     consumer records (no refcounting). A program stages the callee's
//     register file with the kRope* opcodes — appends are packed output
//     records, a splice is an O(1) chunk-chain move (the compile-time
//     linearity discipline makes moves safe), and kRopeEmit copies a
//     register into the output stream. Chunks are drawn from a block
//     pre-allocated *before* the event's child mark (LoweredProgramRef::
//     prealloc_bytes bounds it statically), so ropes handed to sibling
//     continuations survive the subtree reset.
//   * kBridge instructions execute *hybrid* plans: the site's anchor subtree
//     is run through a table-machine sub-run (built by the BridgeFactory the
//     engine was given) whose output lands in a dedicated segment at the
//     call position. The ops core keeps scanning concurrently; the sub-run
//     is fed every event of the anchor subtree and finished at the anchor's
//     close.
//
// Same contract as the table machine behind Engine: done() may become true
// before the input ends (drivers stop feeding), errors are sticky, Finish
// synthesizes the end-of-document. Selection between the two lives in
// stream/engine.cc.
#ifndef XQMFT_LOWER_OPS_ENGINE_H_
#define XQMFT_LOWER_OPS_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lower/lower.h"
#include "util/cancel.h"
#include "util/memory_tracker.h"
#include "util/status.h"
#include "xml/events.h"
#include "xml/symbol_table.h"

namespace xqmft {

class SchemaValidator;

namespace lower {

class OpsEngine {
 public:
  /// `plan` must outlive the engine (it is the CompiledPlan-cached lowering).
  /// `symbols` is the run-local table events are interned through; `tracker`
  /// accounts segment buffers and live consumer records (the ops-engine
  /// analogue of the cell/expr accounting behind Figure 4). `cancel` (may be
  /// null) is polled every `cancel_check_events` fed events; a trip becomes
  /// the sticky run status before the event does any work, so the sink ends
  /// at the previous event boundary and Finish never drains the segments a
  /// cancelled run left buffered (stream/engine.h's cancelled-run contract).
  /// `bridges` builds the table-machine sub-runs behind kBridge sites; it
  /// must outlive the engine and may be null only for non-hybrid plans
  /// (reaching a kBridge without a factory is a run error).
  OpsEngine(const LoweredPlan& plan, OutputSink* sink, SymbolTable* symbols,
            MemoryTracker* tracker, std::uint64_t max_steps,
            SchemaValidator* validator, const CancelToken* cancel = nullptr,
            std::uint32_t cancel_check_events = 128,
            const BridgeFactory* bridges = nullptr);
  ~OpsEngine();
  OpsEngine(const OpsEngine&) = delete;
  OpsEngine& operator=(const OpsEngine&) = delete;

  Status Prime();
  Status Feed(const XmlEvent& event);
  /// Feeds the end-of-document if the driver has not; sticky status.
  Status Finish();
  bool done() const { return done_; }

  std::size_t output_events() const { return output_events_; }
  std::uint64_t steps() const { return steps_; }
  /// Consumer records served from the arena (reported as cells_arena).
  std::uint64_t consumers_spawned() const { return spawned_; }
  /// Table-machine sub-runs started for kBridge sites.
  std::uint64_t bridge_runs() const { return bridges_spawned_; }

 private:
  // A single-writer span of the output stream. `data` buffers packed records
  // ('S'/'E'/'L' + symbol id, 'T' + length + bytes) until the segment
  // becomes the chain head; a live head skips the buffer entirely.
  struct Segment {
    std::string data;
    Segment* next = nullptr;
    bool closed = false;  ///< writer finished; drains when it becomes head
    bool live = false;    ///< is the open head: writes go straight to sink
  };

  // One rope-register chunk: a header followed by `cap` payload bytes, all
  // from the bump arena. Appends never split a packed record across chunks,
  // so a live-segment emit can replay chunk by chunk.
  struct RopeChunk {
    RopeChunk* next;
    std::uint32_t len;
    std::uint32_t cap;
    char* bytes() { return reinterpret_cast<char*>(this + 1); }
    const char* bytes() const { return reinterpret_cast<const char*>(this + 1); }
  };

  // A rope register: a chain of chunks. Plain old data — register files are
  // arena arrays, moved by pointer swap (the linearity discipline).
  struct Rope {
    RopeChunk* head = nullptr;
    RopeChunk* tail = nullptr;
  };

  struct Consumer {
    std::uint32_t state;
    Segment* seg;
    Rope* ropes;  ///< register file, null for parameter-free states
  };

  // Bump allocator for consumer records. Reset(mark) retires everything
  // allocated since Mark() in O(1); chunks are retained for reuse. Only the
  // live (allocated-since-reset) bytes are charged to the tracker, matching
  // how the slab engines charge live cells but not free-list capacity.
  class BumpArena {
   public:
    struct Mark {
      std::size_t chunk = 0;
      std::size_t off = 0;
      std::size_t live = 0;
    };

    explicit BumpArena(MemoryTracker* tracker) : tracker_(tracker) {}
    ~BumpArena() { tracker_->Release(live_); }

    void* Alloc(std::size_t n);
    Mark TakeMark() const { return Mark{chunk_, off_, live_}; }
    void Reset(const Mark& m) {
      tracker_->Release(live_ - m.live);
      chunk_ = m.chunk;
      off_ = m.off;
      live_ = m.live;
    }

   private:
    struct Chunk {
      std::unique_ptr<char[]> bytes;
      std::size_t size = 0;
    };

    MemoryTracker* tracker_;
    std::vector<Chunk> chunks_;
    std::size_t chunk_ = 0;  ///< current chunk index
    std::size_t off_ = 0;    ///< bump offset in the current chunk
    std::size_t live_ = 0;   ///< bytes allocated since the outermost reset
  };

  // The consumers positioned in one open forest: the top-level forest for
  // scopes_[0], an open element's children otherwise. `mark` is the arena
  // position when the scope opened; closing the scope resets to it.
  struct Scope {
    Consumer* items = nullptr;
    std::uint32_t count = 0;
    std::uint32_t cap = 0;  ///< in-place reuse bound for sibling rewrites
    BumpArena::Mark mark;
  };

  // Program resolution snapshot taken before execution: sibling rewrites may
  // reuse the scope's own array in place, so consumers are copied out first.
  struct PendingExec {
    std::uint32_t state;
    const LoweredProgramRef* prog;
    Segment* seg;
    Rope* ropes;
  };

  // Adapts the OutputSink interface back onto a segment: a bridged table
  // sub-run emits resolved names, which are re-interned and written as
  // packed records (or streamed straight through when the segment is the
  // live head). Symbol ids are shared — the sub-run uses the same run table.
  class SegSink : public OutputSink {
   public:
    SegSink(OpsEngine* engine, Segment* seg) : engine_(engine), seg_(seg) {}
    void StartElement(std::string_view name) override;
    void EndElement(std::string_view name) override;
    void Text(std::string_view content) override;

   private:
    OpsEngine* engine_;
    Segment* seg_;
  };

  // One in-flight kBridge sub-run over an element anchor. Lives from the
  // anchor's StartElement (fed synthetically at creation, since the routing
  // in Feed only reaches bridges that already exist) to its EndElement, at
  // which point the run is finished and the segment closed. Text/eps anchors
  // never create a record: their sub-runs complete inline.
  struct BridgeRec {
    BridgeRec(OpsEngine* engine, Segment* seg) : sink(engine, seg) {}
    SegSink sink;
    std::unique_ptr<BridgeRun> run;
    Segment* seg = nullptr;
    std::uint64_t anchor_depth = 0;
  };

  Status Sticky(Status s) {
    if (!s.ok() && status_.ok()) status_ = std::move(s);
    return status_.ok() ? Status::OK() : status_;
  }
  Status ChargeSteps(std::uint64_t n);

  Status OnStartElement(const XmlEvent& event);
  Status OnText(const XmlEvent& event);
  Status OnEndElement();
  Status OnEndOfDocument();

  // Runs one program over the current event. `cur` is the consumer's
  // segment; `ropes` its register file; `event` the driving input event
  // (null for epsilon programs — only bridges read it). Spawns append to
  // child_out/sib_out (counts via *child_n / *sib_n). Closes `cur` unless
  // the final instruction handed it off. Failures (a bridge site without a
  // factory, a sub-run error) land in exec_status_ — callers check after
  // the event's programs ran.
  void ExecProgram(const LoweredProgramRef& ref, Segment* cur, SymbolId sym,
                   std::string_view text, const XmlEvent* event, Rope* ropes,
                   Consumer* child_out, std::uint32_t* child_n,
                   Consumer* sib_out, std::uint32_t* sib_n);

  Consumer* AllocConsumers(std::uint32_t n) {
    return static_cast<Consumer*>(arena_.Alloc(n * sizeof(Consumer)));
  }

  Segment* NewSegment();
  void RecycleSegment(Segment* s);
  void ChargeAppend(Segment* s, const char* bytes, std::size_t n);
  Segment* SplitAfter(Segment* cur);
  Segment* InsertAfter(Segment* prev);

  void EmitStart(Segment* s, SymbolId sym);
  void EmitEnd(Segment* s, SymbolId sym);
  void EmitTextSym(Segment* s, SymbolId sym);
  void EmitTextBytes(Segment* s, std::string_view text);
  void ReplayBytes(std::string_view data);
  void FlushHead();

  // Rope machinery. RopeAlloc serves from the event's pre-mark block when
  // one is armed (element events) and falls back to the arena (text events
  // take no mark, so a direct allocation is lifetime-safe there).
  void* RopeAlloc(std::size_t n);
  void RopeAppend(Rope* rope, const char* bytes, std::uint32_t n);
  void RopePack(Rope* rope, char tag, std::uint32_t v);
  void RopeEmit(Segment* cur, Rope* rope);
  Rope* MaterializeFile();

  // Bridge machinery: starts the sub-run for `site` over an element anchor
  // writing into `seg` (the anchor StartElement is fed from `event`), or
  // runs a text/eps anchor to completion inline.
  void StartElementBridge(std::uint32_t site, Segment* seg,
                          const XmlEvent* event, SymbolId sym);
  void RunInlineBridge(std::uint32_t site, Segment* cur,
                       const XmlEvent* event);
  Status FeedBridges(const XmlEvent& event);
  Status CompleteBridges();  ///< finish bridges anchored at depth_

  const LoweredPlan* plan_;
  OutputSink* sink_;
  SymbolTable* symbols_;
  MemoryTracker* tracker_;
  const std::uint64_t max_steps_;
  SchemaValidator* validator_;
  const CancelToken* cancel_;
  const std::uint32_t cancel_check_events_;
  const BridgeFactory* bridge_factory_;
  std::uint32_t events_since_cancel_check_ = 0;

  BumpArena arena_;
  std::vector<std::unique_ptr<Segment>> all_segments_;
  Segment* free_segments_ = nullptr;
  std::size_t charged_bytes_ = 0;  ///< tracker balance owed by segments

  Segment* head_ = nullptr;  ///< oldest undrained segment of the chain
  std::vector<Scope> scopes_;
  std::vector<PendingExec> scratch_;
  std::uint64_t skip_depth_ = 0;     ///< open elements with no consumer
  std::uint64_t total_consumers_ = 0;

  // Staged register file for the next rope spawn, and the event's pre-mark
  // allocation block (see LoweredProgramRef::prealloc_bytes).
  Rope staged_[kMaxRopeParams];
  std::uint32_t staged_n_ = 0;
  char* prealloc_cur_ = nullptr;
  char* prealloc_end_ = nullptr;

  // Active element-anchored bridge sub-runs, a stack ordered by anchor
  // depth (anchors nest with the input). depth_ counts open elements of the
  // whole input — independent of skip_depth_, which only governs consumer
  // scopes; a bridge keeps receiving the events of a subtree the ops
  // consumers skipped.
  std::vector<std::unique_ptr<BridgeRec>> bridges_;
  std::uint64_t depth_ = 0;
  std::uint64_t bridges_spawned_ = 0;
  Status exec_status_ = Status::OK();  ///< first failure inside ExecProgram

  bool started_ = false;
  bool input_done_ = false;
  bool done_ = false;
  Status status_ = Status::OK();
  std::uint64_t steps_ = 0;
  std::uint64_t spawned_ = 0;
  std::size_t output_events_ = 0;
};

}  // namespace lower
}  // namespace xqmft

#endif  // XQMFT_LOWER_OPS_ENGINE_H_
