#include "compose/convert.h"

namespace xqmft {

const Symbol& AtSymbol() {
  static const Symbol kAt = Symbol::Element("@");
  return kAt;
}

namespace {

void EvalInto(const BTreePtr& t, Forest* out) {
  if (t == nullptr) return;
  if (t->label == AtSymbol()) {
    EvalInto(t->left, out);
    EvalInto(t->right, out);
    return;
  }
  Forest children;
  EvalInto(t->left, &children);
  out->push_back(Tree(t->label.kind, t->label.name, std::move(children)));
  EvalInto(t->right, out);
}

// Forest RHS -> tree RHS. A labelled item s(f) followed by the rest of the
// forest becomes s(T(f), T(rest)) — the label node carries its continuation
// in the second child; calls and parameters need an explicit @ when
// followed by more items (the paper's @(q(x1), @(y1, b(e,e))) example).
BExpr TreeifyForest(const Rhs& rhs, std::size_t i) {
  if (i >= rhs.size()) return BExpr::Eps();
  const RhsNode& item = rhs[i];
  switch (item.kind) {
    case RhsKind::kLabel: {
      BExpr kids = TreeifyForest(item.children, 0);
      BExpr rest = TreeifyForest(rhs, i + 1);
      if (item.current_label) {
        return BExpr::CurrentLabel(std::move(kids), std::move(rest));
      }
      return BExpr::Label(item.symbol, std::move(kids), std::move(rest));
    }
    case RhsKind::kCall: {
      std::vector<BExpr> args;
      args.reserve(item.args.size());
      for (const Rhs& a : item.args) args.push_back(TreeifyForest(a, 0));
      BExpr call = BExpr::Call(item.state, item.input, std::move(args));
      if (i + 1 >= rhs.size()) return call;
      return BExpr::Label(AtSymbol(), std::move(call),
                          TreeifyForest(rhs, i + 1));
    }
    case RhsKind::kParam: {
      BExpr p = BExpr::Param(item.param);
      if (i + 1 >= rhs.size()) return p;
      return BExpr::Label(AtSymbol(), std::move(p), TreeifyForest(rhs, i + 1));
    }
  }
  return BExpr::Eps();
}

// Tree RHS -> forest RHS (interpreting @ and label continuations).
Rhs UntreeifyExpr(const BExpr& e) {
  Rhs out;
  switch (e.kind) {
    case BKind::kEps:
      return out;
    case BKind::kLabel: {
      if (!e.current_label && e.symbol == AtSymbol()) {
        Rhs l = UntreeifyExpr(e.children[0]);
        Rhs r = UntreeifyExpr(e.children[1]);
        out = std::move(l);
        for (RhsNode& n : r) out.push_back(std::move(n));
        return out;
      }
      RhsNode node = e.current_label
                         ? RhsNode::CurrentLabel(UntreeifyExpr(e.children[0]))
                         : RhsNode::Label(e.symbol,
                                          UntreeifyExpr(e.children[0]));
      out.push_back(std::move(node));
      Rhs rest = UntreeifyExpr(e.children[1]);
      for (RhsNode& n : rest) out.push_back(std::move(n));
      return out;
    }
    case BKind::kCall: {
      std::vector<Rhs> args;
      args.reserve(e.children.size());
      for (const BExpr& a : e.children) args.push_back(UntreeifyExpr(a));
      out.push_back(RhsNode::Call(e.state, e.input, std::move(args)));
      return out;
    }
    case BKind::kParam:
      out.push_back(RhsNode::Param(e.param));
      return out;
  }
  return out;
}

}  // namespace

Forest EvalBTree(const BTreePtr& t) {
  Forest out;
  EvalInto(t, &out);
  return out;
}

Mtt MftToMtt(const Mft& mft) {
  Mtt out;
  for (StateId q = 0; q < mft.num_states(); ++q) {
    out.AddState(mft.state_name(q), mft.num_params(q));
  }
  out.set_initial_state(mft.initial_state());
  for (StateId q = 0; q < mft.num_states(); ++q) {
    const StateRules& r = mft.rules(q);
    for (const auto& [sym, rhs] : r.symbol_rules) {
      out.SetSymbolRule(q, sym, TreeifyForest(rhs, 0));
    }
    if (r.text_rule) out.SetTextRule(q, TreeifyForest(*r.text_rule, 0));
    if (r.default_rule) out.SetDefaultRule(q, TreeifyForest(*r.default_rule, 0));
    if (r.epsilon_rule) out.SetEpsilonRule(q, TreeifyForest(*r.epsilon_rule, 0));
  }
  return out;
}

Mft MttEvalToMft(const Mtt& mtt) {
  Mft out;
  for (StateId q = 0; q < mtt.num_states(); ++q) {
    out.AddState(mtt.state_name(q), mtt.num_params(q));
  }
  out.set_initial_state(mtt.initial_state());
  for (StateId q = 0; q < mtt.num_states(); ++q) {
    const MttStateRules& r = mtt.rules(q);
    for (const auto& [sym, rhs] : r.symbol_rules) {
      out.SetSymbolRule(q, sym, UntreeifyExpr(rhs));
    }
    if (r.text_rule) out.SetTextRule(q, UntreeifyExpr(*r.text_rule));
    if (r.default_rule) out.SetDefaultRule(q, UntreeifyExpr(*r.default_rule));
    if (r.epsilon_rule) out.SetEpsilonRule(q, UntreeifyExpr(*r.epsilon_rule));
  }
  return out;
}

Mtt MakeEvalMtt() {
  Mtt m;
  StateId q0 = m.AddState("ev0", 0);
  StateId q = m.AddState("ev", 1);
  m.set_initial_state(q0);
  // ev0(t) = ev(t, eps)
  m.SetDefaultRule(q0, BExpr::Call(q, InputVar::kX0, {BExpr::Eps()}));
  m.SetEpsilonRule(q0, BExpr::Call(q, InputVar::kX0, {BExpr::Eps()}));
  // ev(@(x1,x2), y1) -> ev(x1, ev(x2, y1))
  m.SetSymbolRule(
      q, AtSymbol(),
      BExpr::Call(q, InputVar::kX1,
                  {BExpr::Call(q, InputVar::kX2, {BExpr::Param(1)})}));
  // ev(s(x1,x2), y1) -> s(ev(x1, eps), ev(x2, y1))
  m.SetDefaultRule(
      q, BExpr::CurrentLabel(
             BExpr::Call(q, InputVar::kX1, {BExpr::Eps()}),
             BExpr::Call(q, InputVar::kX2, {BExpr::Param(1)})));
  // ev(eps, y1) -> y1
  m.SetEpsilonRule(q, BExpr::Param(1));
  return m;
}

}  // namespace xqmft
