// Composition constructions of Section 4.2.
//
// The paper's complexity insight: with stay moves, composing transducers
// takes time (and size) O(|Sigma| |M1| |M2|) because the second transducer's
// walk over the first's right-hand sides is broken into one state per
// (rule, rhs-node, state) triple — instead of substituting translated
// right-hand sides in place, which is the classical Rounds/Baker
// construction and explodes exponentially (the 4-b's example of the paper).
//
// Semantics contracts (all property-tested):
//   ComposeTtTt(M1,M2):        [[M]](t)  = [[M2]]([[M1]](t))          (Lemma 2)
//   NaiveComposeTtTt(M1,M2):   same, classical exponential construction
//   ComposeMttThenTt(M1,M2):   [[M]](t)  = [[M2]]([[M1]](t))          (Lemma 3)
//   ComposeTtThenMtt(M1,M2):   [[M]](t)  = [[M2]]([[M1]](t))          (Lemma 3)
//   ComposeMttThenForestFt:    [[N]](f)  = [[M2]](Unfcns([[M1]](Fcns f)))   (Thm 3)
//   ComposeTtThenForestFt:     FT result, same contract               (Thm 4)
//   ComposeForestFtThenTt:     [[M]](Fcns f) = [[M2]](Fcns([[M1]](f))) (Thm 5)
//   ComposeForestFts(M1,M2):   [[N]](f)  = [[M2]]([[M1]](f)), N an MFT
//                              ("two FTs compose into one MFT")
#ifndef XQMFT_COMPOSE_COMPOSE_H_
#define XQMFT_COMPOSE_COMPOSE_H_

#include <cstdint>

#include "compose/convert.h"
#include "compose/mtt.h"
#include "mft/mft.h"
#include "util/status.h"

namespace xqmft {

/// Lemma 2: composes two TTs into one TT using stay moves; time and size
/// O(|Sigma||M1||M2|).
Result<Mtt> ComposeTtTt(const Mtt& m1, const Mtt& m2);

/// The classical construction (Rounds/Baker): translates M1's right-hand
/// sides through M2 by substitution. Exponential in the worst case; `fuel`
/// bounds the number of constructed rhs nodes (ResourceExhausted beyond).
Result<Mtt> NaiveComposeTtTt(const Mtt& m1, const Mtt& m2,
                             std::uint64_t fuel = 50'000'000);

/// Lemma 3, first form: M1 an MTT, M2 a TT; result realizes M1 then M2.
/// The composed states carry |Q2| copies of each accumulating parameter.
Result<Mtt> ComposeMttThenTt(const Mtt& m1, const Mtt& m2);

/// Lemma 3, second form: M1 a TT, M2 an MTT; result realizes M1 then M2.
Result<Mtt> ComposeTtThenMtt(const Mtt& m1, const Mtt& m2);

/// Theorem 3: MTT then forest FT, realized by one forest MFT.
Result<Mft> ComposeMttThenForestFt(const Mtt& m1, const Mft& m2_ft);

/// Theorem 4: TT then forest FT, realized by one forest FT.
Result<Mft> ComposeTtThenForestFt(const Mtt& m1_tt, const Mft& m2_ft);

/// Theorem 5: forest FT then TT, realized by one MTT.
Result<Mtt> ComposeForestFtThenTt(const Mft& m1_ft, const Mtt& m2_tt);

/// Headline corollary: two forest FTs compose into one forest MFT.
Result<Mft> ComposeForestFts(const Mft& m1_ft, const Mft& m2_ft);

}  // namespace xqmft

#endif  // XQMFT_COMPOSE_COMPOSE_H_
