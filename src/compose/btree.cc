#include "compose/btree.h"

namespace xqmft {

bool BTreeEquals(const BTreePtr& a, const BTreePtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  return a->label == b->label && BTreeEquals(a->left, b->left) &&
         BTreeEquals(a->right, b->right);
}

std::size_t BTreeSize(const BTreePtr& t) {
  if (t == nullptr) return 0;
  return 1 + BTreeSize(t->left) + BTreeSize(t->right);
}

std::string BTreeToString(const BTreePtr& t) {
  if (t == nullptr) return "e";
  return t->label.ToString() + "(" + BTreeToString(t->left) + "," +
         BTreeToString(t->right) + ")";
}

namespace {

BTreePtr FcnsFrom(const Forest& f, std::size_t i) {
  if (i >= f.size()) return nullptr;
  const Tree& t = f[i];
  return MakeBNode(t.symbol(), FcnsFrom(t.children, 0), FcnsFrom(f, i + 1));
}

}  // namespace

BTreePtr Fcns(const Forest& f) { return FcnsFrom(f, 0); }

Forest Unfcns(const BTreePtr& t) {
  Forest out;
  const BNode* cur = t.get();
  while (cur != nullptr) {
    out.push_back(Tree(cur->label.kind, cur->label.name, Unfcns(cur->left)));
    cur = cur->right.get();
  }
  return out;
}

}  // namespace xqmft
