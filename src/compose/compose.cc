#include "compose/compose.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "mft/optimize.h"
#include "util/strings.h"

namespace xqmft {

namespace {

// --------------------------------------------------------------------------
// Preparation: symbol specialization (the Lemma 2 pre-step)
// --------------------------------------------------------------------------

// Resolves %t output labels to the concrete symbol (legal in symbol rules,
// where the current label is known).
BExpr ResolveCurrentLabel(const BExpr& e, const Symbol& sym) {
  BExpr out = e;
  if (out.kind == BKind::kLabel && out.current_label) {
    out.current_label = false;
    out.symbol = sym;
  }
  for (BExpr& c : out.children) c = ResolveCurrentLabel(c, sym);
  return out;
}

// For every symbol the second transducer tests, ensure the first has an
// explicit rule (cloned from its default — or, for text symbols, its text —
// rule with %t replaced by the symbol), so the composed transducer always
// knows which rule of the second transducer applies to the first's output
// labels. Also materializes a text rule in every state of the first
// transducer: the composed rules inherit the first's patterns, and keeping
// the text/element kind split explicit lets %t output labels of the first
// select between the second's text and default rules.
void SpecializeFirst(Mtt* m1, const Mtt& m2) {
  std::set<Symbol> tested;
  for (StateId p = 0; p < m2.num_states(); ++p) {
    for (const auto& [sym, rhs] : m2.rules(p).symbol_rules) tested.insert(sym);
  }
  for (StateId q = 0; q < m1->num_states(); ++q) {
    // Resolve %t in existing symbol rules first.
    std::vector<std::pair<Symbol, BExpr>> resolved;
    for (const auto& [sym, rhs] : m1->rules(q).symbol_rules) {
      resolved.emplace_back(sym, ResolveCurrentLabel(rhs, sym));
    }
    for (auto& [sym, rhs] : resolved) {
      m1->SetSymbolRule(q, sym, std::move(rhs));
    }
    if (!m1->rules(q).default_rule) continue;
    if (!m1->rules(q).text_rule) {
      m1->SetTextRule(q, *m1->rules(q).default_rule);
    }
    for (const Symbol& sym : tested) {
      if (m1->rules(q).symbol_rules.count(sym)) continue;
      const BExpr& base = sym.kind == NodeKind::kText
                              ? *m1->rules(q).text_rule
                              : *m1->rules(q).default_rule;
      m1->SetSymbolRule(q, sym, ResolveCurrentLabel(base, sym));
    }
  }
}

// A uniform view of one rule of the first transducer.
struct RuleView {
  StateId state;
  enum class Pattern { kSymbol, kText, kDefault, kEpsilon } pattern;
  Symbol symbol;        // for kSymbol
  const BExpr* rhs;

  /// For %t output labels under this rule: is the copied label text-kind?
  bool TextContext() const { return pattern == Pattern::kText; }
};

std::vector<RuleView> AllRules(const Mtt& m) {
  std::vector<RuleView> out;
  for (StateId q = 0; q < m.num_states(); ++q) {
    const MttStateRules& r = m.rules(q);
    for (const auto& [sym, rhs] : r.symbol_rules) {
      out.push_back({q, RuleView::Pattern::kSymbol, sym, &rhs});
    }
    if (r.text_rule) {
      out.push_back({q, RuleView::Pattern::kText, {}, &*r.text_rule});
    }
    if (r.default_rule) {
      out.push_back({q, RuleView::Pattern::kDefault, {}, &*r.default_rule});
    }
    if (r.epsilon_rule) {
      out.push_back({q, RuleView::Pattern::kEpsilon, {}, &*r.epsilon_rule});
    }
  }
  return out;
}

// The rule of M2's state p that applies to an unknown (%t) label copied by
// the first transducer: its text rule in text-rule context, else default.
const BExpr* SecondRuleForUnknownLabel(const Mtt& m2, StateId p,
                                       bool text_context) {
  const MttStateRules& r = m2.rules(p);
  if (text_context && r.text_rule) return &*r.text_rule;
  return &*r.default_rule;
}

// Installs `rhs` under the rule's pattern, with safe filler rules so the
// composed transducer stays total (the filler rules are unreachable: the
// rule-node states are only entered through stay moves under the matching
// pattern).
void InstallUnderPattern(Mtt* m, StateId q, const RuleView& r, BExpr rhs,
                         int num_params) {
  BExpr filler =
      num_params > 0 ? BExpr::Param(1) : BExpr::Eps();
  switch (r.pattern) {
    case RuleView::Pattern::kSymbol:
      m->SetSymbolRule(q, r.symbol, std::move(rhs));
      break;
    case RuleView::Pattern::kText:
      m->SetTextRule(q, std::move(rhs));
      break;
    case RuleView::Pattern::kDefault:
      m->SetDefaultRule(q, std::move(rhs));
      break;
    case RuleView::Pattern::kEpsilon:
      m->SetEpsilonRule(q, std::move(rhs));
      break;
  }
  if (r.pattern != RuleView::Pattern::kDefault && !m->rules(q).default_rule) {
    m->SetDefaultRule(q, filler);
  }
  if (r.pattern != RuleView::Pattern::kEpsilon && !m->rules(q).epsilon_rule) {
    m->SetEpsilonRule(q, filler);
  }
}

// --------------------------------------------------------------------------
// Lemma 2: TT . TT -> TT with stay moves (quadratic)
// --------------------------------------------------------------------------

class TtTtComposer {
 public:
  TtTtComposer(const Mtt& m1, const Mtt& m2) : m1_(m1), m2_(m2) {}

  Result<Mtt> Compose() {
    rules_ = AllRules(m1_);
    StateId init = PairState(m1_.initial_state(), m2_.initial_state());
    (void)init;
    while (!work_.empty()) {
      WorkItem item = work_.back();
      work_.pop_back();
      if (item.is_pair) {
        XQMFT_RETURN_NOT_OK(EmitPairRules(item.q, item.p, item.id));
      } else {
        XQMFT_RETURN_NOT_OK(EmitNodeRules(item.rule, item.node, item.p,
                                          item.id));
      }
    }
    out_.set_initial_state(0);
    XQMFT_RETURN_NOT_OK(out_.Validate());
    return std::move(out_);
  }

 private:
  struct WorkItem {
    bool is_pair;
    StateId q, p;
    std::size_t rule;
    const BExpr* node;
    StateId id;
  };

  StateId PairState(StateId q, StateId p) {
    auto key = std::make_pair(q, p);
    auto it = pair_ids_.find(key);
    if (it != pair_ids_.end()) return it->second;
    StateId id = out_.AddState(
        "<" + m1_.state_name(q) + "," + m2_.state_name(p) + ">", 0);
    pair_ids_[key] = id;
    work_.push_back(WorkItem{true, q, p, 0, nullptr, id});
    return id;
  }

  StateId NodeState(std::size_t rule, const BExpr* node, StateId p) {
    auto key = std::make_tuple(rule, node, p);
    auto it = node_ids_.find(key);
    if (it != node_ids_.end()) return it->second;
    StateId id = out_.AddState(
        StrFormat("<r%zu,n%zu,%s>", rule, node_ids_.size(),
                  m2_.state_name(p).c_str()),
        0);
    node_ids_[key] = id;
    work_.push_back(WorkItem{false, -1, p, rule, node, id});
    return id;
  }

  // <q,p>(pattern of r) -> <r, root, p>(x0), for every rule r of q.
  Status EmitPairRules(StateId q, StateId p, StateId id) {
    for (std::size_t ri = 0; ri < rules_.size(); ++ri) {
      const RuleView& r = rules_[ri];
      if (r.state != q) continue;
      BExpr rhs = BExpr::Call(NodeState(ri, r.rhs, p), InputVar::kX0);
      InstallUnderPattern(&out_, id, r, std::move(rhs), 0);
    }
    return Status::OK();
  }

  // <r,u,p>(pattern of r) -> translation of node u under state p.
  Status EmitNodeRules(std::size_t ri, const BExpr* u, StateId p,
                       StateId id) {
    const RuleView& r = rules_[ri];
    BExpr rhs;
    XQMFT_RETURN_NOT_OK(TranslateNode(ri, u, p, &rhs));
    InstallUnderPattern(&out_, id, r, std::move(rhs), 0);
    return Status::OK();
  }

  Status TranslateNode(std::size_t ri, const BExpr* u, StateId p,
                       BExpr* out) {
    switch (u->kind) {
      case BKind::kParam:
        return Status::InvalidArgument("Lemma 2 requires TTs (no parameters)");
      case BKind::kCall:
        // <q', p>(x_i)
        *out = BExpr::Call(PairState(u->state, p), u->input);
        return Status::OK();
      case BKind::kEps: {
        const BExpr* prule = m2_.LookupEpsilonRule(p);
        if (prule == nullptr) return Status::Internal("M2 lacks epsilon rule");
        return RewriteSecond(*prule, ri, u, /*sym=*/nullptr, out);
      }
      case BKind::kLabel: {
        if (u->current_label) {
          // Unknown label: after specialization it falls outside M2's
          // tested symbols, so M2's default rule applies — or its text rule
          // when the host rule matches text nodes; %t flows through.
          const BExpr* prule = SecondRuleForUnknownLabel(
              m2_, p, rules_[ri].TextContext());
          return RewriteSecond(*prule, ri, u, /*sym=*/nullptr, out);
        }
        const BExpr* prule = m2_.LookupRule(p, u->symbol);
        if (prule == nullptr) return Status::Internal("M2 not total");
        return RewriteSecond(*prule, ri, u, &u->symbol, out);
      }
    }
    return Status::Internal("unhandled node kind");
  }

  // Clones M2's rhs, substituting calls p'(x_i) with stay calls into the
  // corresponding rule-node states: x0 -> u itself, x1 -> u's left child,
  // x2 -> u's right child. `sym` (if known) resolves %t labels.
  Status RewriteSecond(const BExpr& e, std::size_t ri, const BExpr* u,
                       const Symbol* sym, BExpr* out) {
    switch (e.kind) {
      case BKind::kEps:
        *out = BExpr::Eps();
        return Status::OK();
      case BKind::kParam:
        return Status::InvalidArgument("Lemma 2 requires TTs (no parameters)");
      case BKind::kLabel: {
        BExpr l, r;
        XQMFT_RETURN_NOT_OK(RewriteSecond(e.children[0], ri, u, sym, &l));
        XQMFT_RETURN_NOT_OK(RewriteSecond(e.children[1], ri, u, sym, &r));
        if (e.current_label && sym != nullptr) {
          *out = BExpr::Label(*sym, std::move(l), std::move(r));
        } else if (e.current_label) {
          *out = BExpr::CurrentLabel(std::move(l), std::move(r));
        } else {
          *out = BExpr::Label(e.symbol, std::move(l), std::move(r));
        }
        return Status::OK();
      }
      case BKind::kCall: {
        const BExpr* target = u;
        switch (e.input) {
          case InputVar::kX0:
            target = u;
            break;
          case InputVar::kX1:
            XQMFT_CHECK(u->kind == BKind::kLabel);
            target = &u->children[0];
            break;
          case InputVar::kX2:
            XQMFT_CHECK(u->kind == BKind::kLabel);
            target = &u->children[1];
            break;
        }
        *out = BExpr::Call(NodeState(ri, target, e.state), InputVar::kX0);
        return Status::OK();
      }
    }
    return Status::Internal("unhandled rewrite kind");
  }

  const Mtt& m1_;
  const Mtt& m2_;
  Mtt out_;
  std::vector<RuleView> rules_;
  std::map<std::pair<StateId, StateId>, StateId> pair_ids_;
  std::map<std::tuple<std::size_t, const BExpr*, StateId>, StateId> node_ids_;
  std::vector<WorkItem> work_;
};

// --------------------------------------------------------------------------
// Classical construction (exponential): substitute translated right-hand
// sides in place.
// --------------------------------------------------------------------------

class NaiveComposer {
 public:
  NaiveComposer(const Mtt& m1, const Mtt& m2, std::uint64_t fuel)
      : m1_(m1), m2_(m2), fuel_(fuel) {}

  Result<Mtt> Compose() {
    rules_ = AllRules(m1_);
    PairState(m1_.initial_state(), m2_.initial_state());
    while (!work_.empty()) {
      auto [q, p, id] = work_.back();
      work_.pop_back();
      for (const RuleView& r : rules_) {
        if (r.state != q) continue;
        BExpr rhs;
        XQMFT_RETURN_NOT_OK(Translate(p, *r.rhs, &rhs));
        InstallUnderPattern(&out_, id, r, std::move(rhs), 0);
      }
    }
    out_.set_initial_state(0);
    XQMFT_RETURN_NOT_OK(out_.Validate());
    return std::move(out_);
  }

 private:
  StateId PairState(StateId q, StateId p) {
    auto key = std::make_pair(q, p);
    auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
    StateId id = out_.AddState(
        "<" + m1_.state_name(q) + "," + m2_.state_name(p) + ">", 0);
    ids_[key] = id;
    work_.emplace_back(q, p, id);
    return id;
  }

  // Runs state p of M2 over the rhs tree `u` of M1 symbolically,
  // substituting translated rules in place (no stay-move compression). %t
  // labels survive only in default rules (SpecializeFirst resolved the
  // symbol-rule occurrences), where M2's default rule applies.
  Status Translate(StateId p, const BExpr& u, BExpr* out) {
    if (fuel_ == 0) {
      return Status::ResourceExhausted(
          "naive composition exceeded its size budget");
    }
    --fuel_;
    switch (u.kind) {
      case BKind::kParam:
        return Status::InvalidArgument("naive composition requires TTs");
      case BKind::kCall:
        *out = BExpr::Call(PairState(u.state, p), u.input);
        return Status::OK();
      case BKind::kEps:
        return Rewrite(*m2_.LookupEpsilonRule(p), u, nullptr, out);
      case BKind::kLabel: {
        if (u.current_label) {
          return Rewrite(*m2_.rules(p).default_rule, u, nullptr, out);
        }
        return Rewrite(*m2_.LookupRule(p, u.symbol), u, &u.symbol, out);
      }
    }
    return Status::Internal("unhandled node kind");
  }

  // Substitutes M2's rhs: p'(x1)/p'(x2) recurse into u's children; p'(x0)
  // recurses on u itself. `node_sym` resolves %t when the label is known.
  Status Rewrite(const BExpr& e, const BExpr& u, const Symbol* node_sym,
                 BExpr* out) {
    if (fuel_ == 0) {
      return Status::ResourceExhausted(
          "naive composition exceeded its size budget");
    }
    --fuel_;
    switch (e.kind) {
      case BKind::kEps:
        *out = BExpr::Eps();
        return Status::OK();
      case BKind::kParam:
        return Status::InvalidArgument("naive composition requires TTs");
      case BKind::kLabel: {
        BExpr l, r;
        XQMFT_RETURN_NOT_OK(Rewrite(e.children[0], u, node_sym, &l));
        XQMFT_RETURN_NOT_OK(Rewrite(e.children[1], u, node_sym, &r));
        if (e.current_label && node_sym != nullptr) {
          *out = BExpr::Label(*node_sym, std::move(l), std::move(r));
        } else if (e.current_label) {
          *out = BExpr::CurrentLabel(std::move(l), std::move(r));
        } else {
          *out = BExpr::Label(e.symbol, std::move(l), std::move(r));
        }
        return Status::OK();
      }
      case BKind::kCall:
        switch (e.input) {
          case InputVar::kX0:
            return Translate(e.state, u, out);
          case InputVar::kX1:
            XQMFT_CHECK(u.kind == BKind::kLabel);
            return Translate(e.state, u.children[0], out);
          case InputVar::kX2:
            XQMFT_CHECK(u.kind == BKind::kLabel);
            return Translate(e.state, u.children[1], out);
        }
        return Status::Internal("bad input var");
    }
    return Status::Internal("unhandled rewrite kind");
  }

  const Mtt& m1_;
  const Mtt& m2_;
  std::uint64_t fuel_;
  Mtt out_;
  std::vector<RuleView> rules_;
  std::map<std::pair<StateId, StateId>, StateId> ids_;
  std::vector<std::tuple<StateId, StateId, StateId>> work_;
};

// --------------------------------------------------------------------------
// Lemma 3, first form: MTT . TT — the composed states carry |Q2| copies of
// every accumulating parameter (one per second-transducer state).
// --------------------------------------------------------------------------

class MttTtComposer {
 public:
  MttTtComposer(const Mtt& m1, const Mtt& m2) : m1_(m1), m2_(m2) {}

  Result<Mtt> Compose() {
    rules_ = AllRules(m1_);
    n_ = m2_.num_states();
    PairState(m1_.initial_state(), m2_.initial_state());
    while (!work_.empty()) {
      WorkItem item = work_.back();
      work_.pop_back();
      if (item.is_pair) {
        XQMFT_RETURN_NOT_OK(EmitPairRules(item.q, item.p, item.id));
      } else {
        XQMFT_RETURN_NOT_OK(
            EmitNodeRules(item.rule, item.node, item.p, item.id));
      }
    }
    out_.set_initial_state(0);
    XQMFT_RETURN_NOT_OK(out_.Validate());
    return std::move(out_);
  }

 private:
  struct WorkItem {
    bool is_pair;
    StateId q, p;
    std::size_t rule;
    const BExpr* node;
    StateId id;
  };

  // Composed parameter index for (original param j, second state p_l).
  int ParamIndex(int j, StateId l) const { return (j - 1) * n_ + l + 1; }

  StateId PairState(StateId q, StateId p) {
    auto key = std::make_pair(q, p);
    auto it = pair_ids_.find(key);
    if (it != pair_ids_.end()) return it->second;
    StateId id = out_.AddState(
        "<" + m1_.state_name(q) + "," + m2_.state_name(p) + ">",
        m1_.num_params(q) * n_);
    pair_ids_[key] = id;
    work_.push_back(WorkItem{true, q, p, 0, nullptr, id});
    return id;
  }

  StateId NodeState(std::size_t rule, const BExpr* node, StateId p) {
    auto key = std::make_tuple(rule, node, p);
    auto it = node_ids_.find(key);
    if (it != node_ids_.end()) return it->second;
    StateId id = out_.AddState(
        StrFormat("<r%zu,n%zu,%s>", rule, node_ids_.size(),
                  m2_.state_name(p).c_str()),
        m1_.num_params(rules_[rule].state) * n_);
    node_ids_[key] = id;
    work_.push_back(WorkItem{false, -1, p, rule, node, id});
    return id;
  }

  std::vector<BExpr> AllHostParams(StateId host_q) const {
    std::vector<BExpr> out;
    int total = m1_.num_params(host_q) * n_;
    out.reserve(static_cast<std::size_t>(total));
    for (int i = 1; i <= total; ++i) out.push_back(BExpr::Param(i));
    return out;
  }

  Status EmitPairRules(StateId q, StateId p, StateId id) {
    for (std::size_t ri = 0; ri < rules_.size(); ++ri) {
      const RuleView& r = rules_[ri];
      if (r.state != q) continue;
      BExpr rhs =
          BExpr::Call(NodeState(ri, r.rhs, p), InputVar::kX0, AllHostParams(q));
      InstallUnderPattern(&out_, id, r, std::move(rhs),
                          m1_.num_params(q) * n_);
    }
    return Status::OK();
  }

  Status EmitNodeRules(std::size_t ri, const BExpr* u, StateId p,
                       StateId id) {
    const RuleView& r = rules_[ri];
    BExpr rhs;
    XQMFT_RETURN_NOT_OK(TranslateNode(ri, u, p, &rhs));
    InstallUnderPattern(&out_, id, r, std::move(rhs),
                        m1_.num_params(r.state) * n_);
    return Status::OK();
  }

  Status TranslateNode(std::size_t ri, const BExpr* u, StateId p,
                       BExpr* out) {
    const StateId host_q = rules_[ri].state;
    switch (u->kind) {
      case BKind::kParam:
        // The p-translation of the j-th intermediate parameter is the
        // (j, p) copy.
        *out = BExpr::Param(ParamIndex(u->param, p));
        return Status::OK();
      case BKind::kCall: {
        // <q', p>(x_i, args') with args'[(j', l)] = <r, arg_j', p_l>(x0, Y).
        std::vector<BExpr> args;
        int mprime = m1_.num_params(u->state);
        args.reserve(static_cast<std::size_t>(mprime * n_));
        for (int j = 0; j < mprime; ++j) {
          for (StateId l = 0; l < n_; ++l) {
            args.push_back(BExpr::Call(NodeState(ri, &u->children[j], l),
                                       InputVar::kX0, AllHostParams(host_q)));
          }
        }
        *out = BExpr::Call(PairState(u->state, p), u->input, std::move(args));
        return Status::OK();
      }
      case BKind::kEps: {
        const BExpr* prule = m2_.LookupEpsilonRule(p);
        return RewriteSecond(*prule, ri, u, nullptr, out);
      }
      case BKind::kLabel: {
        if (u->current_label) {
          const BExpr* prule = SecondRuleForUnknownLabel(
              m2_, p, rules_[ri].TextContext());
          return RewriteSecond(*prule, ri, u, nullptr, out);
        }
        const BExpr* prule = m2_.LookupRule(p, u->symbol);
        return RewriteSecond(*prule, ri, u, &u->symbol, out);
      }
    }
    return Status::Internal("unhandled node kind");
  }

  Status RewriteSecond(const BExpr& e, std::size_t ri, const BExpr* u,
                       const Symbol* sym, BExpr* out) {
    const StateId host_q = rules_[ri].state;
    switch (e.kind) {
      case BKind::kEps:
        *out = BExpr::Eps();
        return Status::OK();
      case BKind::kParam:
        return Status::InvalidArgument(
            "the second transducer of ComposeMttThenTt must be a TT");
      case BKind::kLabel: {
        BExpr l, r;
        XQMFT_RETURN_NOT_OK(RewriteSecond(e.children[0], ri, u, sym, &l));
        XQMFT_RETURN_NOT_OK(RewriteSecond(e.children[1], ri, u, sym, &r));
        if (e.current_label && sym != nullptr) {
          *out = BExpr::Label(*sym, std::move(l), std::move(r));
        } else if (e.current_label) {
          *out = BExpr::CurrentLabel(std::move(l), std::move(r));
        } else {
          *out = BExpr::Label(e.symbol, std::move(l), std::move(r));
        }
        return Status::OK();
      }
      case BKind::kCall: {
        const BExpr* target = u;
        switch (e.input) {
          case InputVar::kX0:
            target = u;
            break;
          case InputVar::kX1:
            XQMFT_CHECK(u->kind == BKind::kLabel);
            target = &u->children[0];
            break;
          case InputVar::kX2:
            XQMFT_CHECK(u->kind == BKind::kLabel);
            target = &u->children[1];
            break;
        }
        *out = BExpr::Call(NodeState(ri, target, e.state), InputVar::kX0,
                           AllHostParams(host_q));
        return Status::OK();
      }
    }
    return Status::Internal("unhandled rewrite kind");
  }

  const Mtt& m1_;
  const Mtt& m2_;
  Mtt out_;
  int n_ = 0;
  std::vector<RuleView> rules_;
  std::map<std::pair<StateId, StateId>, StateId> pair_ids_;
  std::map<std::tuple<std::size_t, const BExpr*, StateId>, StateId> node_ids_;
  std::vector<WorkItem> work_;
};

// --------------------------------------------------------------------------
// Lemma 3, second form: TT . MTT — the second transducer's parameters pass
// through unchanged while it walks the first's right-hand sides.
// --------------------------------------------------------------------------

class TtMttComposer {
 public:
  TtMttComposer(const Mtt& m1, const Mtt& m2) : m1_(m1), m2_(m2) {}

  Result<Mtt> Compose() {
    rules_ = AllRules(m1_);
    PairState(m1_.initial_state(), m2_.initial_state());
    while (!work_.empty()) {
      WorkItem item = work_.back();
      work_.pop_back();
      if (item.is_pair) {
        XQMFT_RETURN_NOT_OK(EmitPairRules(item.q, item.p, item.id));
      } else {
        XQMFT_RETURN_NOT_OK(
            EmitNodeRules(item.rule, item.node, item.p, item.id));
      }
    }
    out_.set_initial_state(0);
    XQMFT_RETURN_NOT_OK(out_.Validate());
    return std::move(out_);
  }

 private:
  struct WorkItem {
    bool is_pair;
    StateId q, p;
    std::size_t rule;
    const BExpr* node;
    StateId id;
  };

  StateId PairState(StateId q, StateId p) {
    auto key = std::make_pair(q, p);
    auto it = pair_ids_.find(key);
    if (it != pair_ids_.end()) return it->second;
    StateId id = out_.AddState(
        "<" + m1_.state_name(q) + "," + m2_.state_name(p) + ">",
        m2_.num_params(p));
    pair_ids_[key] = id;
    work_.push_back(WorkItem{true, q, p, 0, nullptr, id});
    return id;
  }

  StateId NodeState(std::size_t rule, const BExpr* node, StateId p) {
    auto key = std::make_tuple(rule, node, p);
    auto it = node_ids_.find(key);
    if (it != node_ids_.end()) return it->second;
    StateId id = out_.AddState(
        StrFormat("<r%zu,n%zu,%s>", rule, node_ids_.size(),
                  m2_.state_name(p).c_str()),
        m2_.num_params(p));
    node_ids_[key] = id;
    work_.push_back(WorkItem{false, -1, p, rule, node, id});
    return id;
  }

  static std::vector<BExpr> Params(int m) {
    std::vector<BExpr> out;
    out.reserve(static_cast<std::size_t>(m));
    for (int i = 1; i <= m; ++i) out.push_back(BExpr::Param(i));
    return out;
  }

  Status EmitPairRules(StateId q, StateId p, StateId id) {
    for (std::size_t ri = 0; ri < rules_.size(); ++ri) {
      const RuleView& r = rules_[ri];
      if (r.state != q) continue;
      BExpr rhs = BExpr::Call(NodeState(ri, r.rhs, p), InputVar::kX0,
                              Params(m2_.num_params(p)));
      InstallUnderPattern(&out_, id, r, std::move(rhs), m2_.num_params(p));
    }
    return Status::OK();
  }

  Status EmitNodeRules(std::size_t ri, const BExpr* u, StateId p,
                       StateId id) {
    const RuleView& r = rules_[ri];
    BExpr rhs;
    XQMFT_RETURN_NOT_OK(TranslateNode(ri, u, p, &rhs));
    InstallUnderPattern(&out_, id, r, std::move(rhs), m2_.num_params(p));
    return Status::OK();
  }

  Status TranslateNode(std::size_t ri, const BExpr* u, StateId p,
                       BExpr* out) {
    switch (u->kind) {
      case BKind::kParam:
        return Status::InvalidArgument(
            "the first transducer of ComposeTtThenMtt must be a TT");
      case BKind::kCall:
        *out = BExpr::Call(PairState(u->state, p), u->input,
                           Params(m2_.num_params(p)));
        return Status::OK();
      case BKind::kEps: {
        const BExpr* prule = m2_.LookupEpsilonRule(p);
        return RewriteSecond(*prule, ri, u, nullptr, out);
      }
      case BKind::kLabel: {
        if (u->current_label) {
          const BExpr* prule = SecondRuleForUnknownLabel(
              m2_, p, rules_[ri].TextContext());
          return RewriteSecond(*prule, ri, u, nullptr, out);
        }
        const BExpr* prule = m2_.LookupRule(p, u->symbol);
        return RewriteSecond(*prule, ri, u, &u->symbol, out);
      }
    }
    return Status::Internal("unhandled node kind");
  }

  // Clones the MTT rhs: parameters pass through; calls q'(x_i, args) become
  // stay calls into the rule-node states with recursively rewritten args.
  Status RewriteSecond(const BExpr& e, std::size_t ri, const BExpr* u,
                       const Symbol* sym, BExpr* out) {
    switch (e.kind) {
      case BKind::kEps:
        *out = BExpr::Eps();
        return Status::OK();
      case BKind::kParam:
        *out = BExpr::Param(e.param);
        return Status::OK();
      case BKind::kLabel: {
        BExpr l, r;
        XQMFT_RETURN_NOT_OK(RewriteSecond(e.children[0], ri, u, sym, &l));
        XQMFT_RETURN_NOT_OK(RewriteSecond(e.children[1], ri, u, sym, &r));
        if (e.current_label && sym != nullptr) {
          *out = BExpr::Label(*sym, std::move(l), std::move(r));
        } else if (e.current_label) {
          *out = BExpr::CurrentLabel(std::move(l), std::move(r));
        } else {
          *out = BExpr::Label(e.symbol, std::move(l), std::move(r));
        }
        return Status::OK();
      }
      case BKind::kCall: {
        const BExpr* target = u;
        switch (e.input) {
          case InputVar::kX0:
            target = u;
            break;
          case InputVar::kX1:
            XQMFT_CHECK(u->kind == BKind::kLabel);
            target = &u->children[0];
            break;
          case InputVar::kX2:
            XQMFT_CHECK(u->kind == BKind::kLabel);
            target = &u->children[1];
            break;
        }
        std::vector<BExpr> args;
        args.reserve(e.children.size());
        for (const BExpr& a : e.children) {
          BExpr ra;
          XQMFT_RETURN_NOT_OK(RewriteSecond(a, ri, u, sym, &ra));
          args.push_back(std::move(ra));
        }
        *out = BExpr::Call(NodeState(ri, target, e.state), InputVar::kX0,
                           std::move(args));
        return Status::OK();
      }
    }
    return Status::Internal("unhandled rewrite kind");
  }

  const Mtt& m1_;
  const Mtt& m2_;
  Mtt out_;
  std::vector<RuleView> rules_;
  std::map<std::pair<StateId, StateId>, StateId> pair_ids_;
  std::map<std::tuple<std::size_t, const BExpr*, StateId>, StateId> node_ids_;
  std::vector<WorkItem> work_;
};

}  // namespace

// --------------------------------------------------------------------------
// Public entry points
// --------------------------------------------------------------------------

Result<Mtt> ComposeTtTt(const Mtt& m1, const Mtt& m2) {
  if (!m1.IsTopDown() || !m2.IsTopDown()) {
    return Status::InvalidArgument("ComposeTtTt requires two TTs");
  }
  Mtt m1s = m1;
  SpecializeFirst(&m1s, m2);
  return TtTtComposer(m1s, m2).Compose();
}

Result<Mtt> NaiveComposeTtTt(const Mtt& m1, const Mtt& m2,
                             std::uint64_t fuel) {
  if (!m1.IsTopDown() || !m2.IsTopDown()) {
    return Status::InvalidArgument("NaiveComposeTtTt requires two TTs");
  }
  Mtt m1s = m1;
  SpecializeFirst(&m1s, m2);
  return NaiveComposer(m1s, m2, fuel).Compose();
}

Result<Mtt> ComposeMttThenTt(const Mtt& m1, const Mtt& m2) {
  if (!m2.IsTopDown()) {
    return Status::InvalidArgument(
        "ComposeMttThenTt: the second transducer must be a TT");
  }
  Mtt m1s = m1;
  SpecializeFirst(&m1s, m2);
  return MttTtComposer(m1s, m2).Compose();
}

Result<Mtt> ComposeTtThenMtt(const Mtt& m1, const Mtt& m2) {
  if (!m1.IsTopDown()) {
    return Status::InvalidArgument(
        "ComposeTtThenMtt: the first transducer must be a TT");
  }
  Mtt m1s = m1;
  SpecializeFirst(&m1s, m2);
  return TtMttComposer(m1s, m2).Compose();
}

Result<Mft> ComposeMttThenForestFt(const Mtt& m1, const Mft& m2_ft) {
  if (!m2_ft.IsForestTransducer()) {
    return Status::InvalidArgument(
        "ComposeMttThenForestFt: the second transducer must be an FT");
  }
  Mtt tt2 = MftToMtt(m2_ft);
  XQMFT_ASSIGN_OR_RETURN(Mtt composed, ComposeMttThenTt(m1, tt2));
  // The construction is within the O(|Sigma||M1||M2|) bound but leaves many
  // dead or stay-trivial states; the Section 4.1 passes clean them up.
  return OptimizeMft(MttEvalToMft(composed));
}

Result<Mft> ComposeTtThenForestFt(const Mtt& m1_tt, const Mft& m2_ft) {
  if (!m1_tt.IsTopDown()) {
    return Status::InvalidArgument(
        "ComposeTtThenForestFt: the first transducer must be a TT");
  }
  if (!m2_ft.IsForestTransducer()) {
    return Status::InvalidArgument(
        "ComposeTtThenForestFt: the second transducer must be an FT");
  }
  Mtt tt2 = MftToMtt(m2_ft);
  XQMFT_ASSIGN_OR_RETURN(Mtt composed, ComposeTtTt(m1_tt, tt2));
  return OptimizeMft(MttEvalToMft(composed));
}

Result<Mtt> ComposeForestFtThenTt(const Mft& m1_ft, const Mtt& m2_tt) {
  if (!m1_ft.IsForestTransducer()) {
    return Status::InvalidArgument(
        "ComposeForestFtThenTt: the first transducer must be an FT");
  }
  if (!m2_tt.IsTopDown()) {
    return Status::InvalidArgument(
        "ComposeForestFtThenTt: the second transducer must be a TT");
  }
  // M1 = tt1 . eval (Lemma 1(2)); eval is an MTT (Lemma 1(3)); compose
  // tt1 with the eval MTT (Lemma 3), then with M2 (Lemma 3).
  Mtt tt1 = MftToMtt(m1_ft);
  XQMFT_ASSIGN_OR_RETURN(Mtt fcns_of_m1, ComposeTtThenMtt(tt1, MakeEvalMtt()));
  return ComposeMttThenTt(fcns_of_m1, m2_tt);
}

Result<Mft> ComposeForestFts(const Mft& m1_ft, const Mft& m2_ft) {
  if (!m1_ft.IsForestTransducer() || !m2_ft.IsForestTransducer()) {
    return Status::InvalidArgument("ComposeForestFts requires two FTs");
  }
  // fcns(M1(f)) as an MTT, then M2's TT, then reinterpret @.
  Mtt tt2 = MftToMtt(m2_ft);
  XQMFT_ASSIGN_OR_RETURN(Mtt fcns_of_m1,
                         ComposeForestFtThenTt(m1_ft, tt2));
  return OptimizeMft(MttEvalToMft(fcns_of_m1));
}

}  // namespace xqmft
