// Binary XML trees (Section 4.2 of the paper).
//
// A binary XML tree has internal nodes of rank 2 and epsilon leaves. Every
// forest corresponds to a binary tree through the first-child/next-sibling
// encoding fcns: fcns(eps) = eps, fcns(s(f1) f2) = s(fcns(f1), fcns(f2)) —
// and the encoding is a bijection, so binary trees can always be read back
// as forests.
#ifndef XQMFT_COMPOSE_BTREE_H_
#define XQMFT_COMPOSE_BTREE_H_

#include <memory>
#include <string>

#include "xml/forest.h"
#include "xml/symbol.h"

namespace xqmft {

struct BNode;

/// Immutable shared binary tree; nullptr is the epsilon leaf.
using BTreePtr = std::shared_ptr<const BNode>;

/// \brief A rank-2 node of a binary XML tree.
struct BNode {
  Symbol label;
  BTreePtr left;
  BTreePtr right;

  BNode(Symbol l, BTreePtr lt, BTreePtr rt)
      : label(std::move(l)), left(std::move(lt)), right(std::move(rt)) {}
};

inline BTreePtr MakeBNode(Symbol label, BTreePtr left, BTreePtr right) {
  return std::make_shared<BNode>(std::move(label), std::move(left),
                                 std::move(right));
}

/// Structural equality (nullptr = eps).
bool BTreeEquals(const BTreePtr& a, const BTreePtr& b);

/// Number of labeled nodes.
std::size_t BTreeSize(const BTreePtr& t);

/// Term rendering, e.g. `a(b(e,e),e)` with `e` for epsilon leaves.
std::string BTreeToString(const BTreePtr& t);

/// First-child/next-sibling encoding and its inverse.
BTreePtr Fcns(const Forest& f);
Forest Unfcns(const BTreePtr& t);

}  // namespace xqmft

#endif  // XQMFT_COMPOSE_BTREE_H_
