// Lemma 1 of the paper: the correspondences between forest transducers and
// tree transducers over binary trees.
//
//   (1) mft = mtt . eval   — an MFT decomposes into an MTT producing trees
//       with a binary concatenation symbol @, followed by the evaluation
//       mapping; and conversely @-interpreting an MTT's right-hand sides
//       yields an MFT.
//   (2) ft = tt . eval     — the rank-1 restriction of (1).
//   (3) eval is itself realizable by a (one-parameter) MTT.
//
// Conventions. An Mft over forests corresponds to an Mtt over the fcns
// encodings of those forests: [[MftToMtt(M)]](Fcns(f)) is a tree t with
// EvalBTree(t) = [[M]](f). The @ symbol is Symbol::Element("@"), which
// cannot collide with element names ('@' is not a name character).
#ifndef XQMFT_COMPOSE_CONVERT_H_
#define XQMFT_COMPOSE_CONVERT_H_

#include "compose/btree.h"
#include "compose/mtt.h"
#include "mft/mft.h"

namespace xqmft {

/// The binary concatenation symbol @.
const Symbol& AtSymbol();

/// The evaluation mapping: interprets @ as forest concatenation and every
/// other binary label fcns-style: eval(s(l,r)) = s(eval(l)) eval(r).
Forest EvalBTree(const BTreePtr& t);

/// Lemma 1(1), forward: replaces concatenation by @ in every right-hand
/// side. For every forest f: EvalBTree([[result]](Fcns(f))) = [[mft]](f).
/// Preserves ranks, so FTs become TTs (Lemma 1(2)).
Mtt MftToMtt(const Mft& mft);

/// Lemma 1(1), converse: interprets @ and label continuations back into
/// forest concatenation. For every f: [[result]](f) =
/// EvalBTree([[mtt]](Fcns(f))).
Mft MttEvalToMft(const Mtt& mtt);

/// Lemma 1(3): eval as a one-parameter MTT. For every tree t:
/// [[result]](t) = Fcns(EvalBTree(t)).
Mtt MakeEvalMtt();

}  // namespace xqmft

#endif  // XQMFT_COMPOSE_CONVERT_H_
