#include "compose/mtt.h"

#include <algorithm>

#include "util/strings.h"

namespace xqmft {

std::size_t BExprSize(const BExpr& e) {
  std::size_t n = 1;
  for (const BExpr& c : e.children) n += BExprSize(c);
  return n;
}

StateId Mtt::AddState(std::string name, int num_params) {
  states_.push_back(StateInfo{std::move(name), num_params});
  rules_.emplace_back();
  return static_cast<StateId>(states_.size()) - 1;
}

void Mtt::SetSymbolRule(StateId q, Symbol s, BExpr rhs) {
  rules_[q].symbol_rules[std::move(s)] = std::move(rhs);
}
void Mtt::SetTextRule(StateId q, BExpr rhs) {
  rules_[q].text_rule = std::move(rhs);
}
void Mtt::SetDefaultRule(StateId q, BExpr rhs) {
  rules_[q].default_rule = std::move(rhs);
}
void Mtt::SetEpsilonRule(StateId q, BExpr rhs) {
  rules_[q].epsilon_rule = std::move(rhs);
}

const BExpr* Mtt::LookupRule(StateId q, const Symbol& sym) const {
  const MttStateRules& r = rules_[q];
  auto it = r.symbol_rules.find(sym);
  if (it != r.symbol_rules.end()) return &it->second;
  if (sym.kind == NodeKind::kText && r.text_rule) return &*r.text_rule;
  if (r.default_rule) return &*r.default_rule;
  return nullptr;
}

const BExpr* Mtt::LookupEpsilonRule(StateId q) const {
  const MttStateRules& r = rules_[q];
  return r.epsilon_rule ? &*r.epsilon_rule : nullptr;
}

bool Mtt::IsTopDown() const {
  for (const StateInfo& s : states_) {
    if (s.num_params != 0) return false;
  }
  return true;
}

namespace {

Status ValidateBExpr(const Mtt& mtt, const BExpr& e, int m, bool epsilon_rule,
                     const std::string& where) {
  switch (e.kind) {
    case BKind::kEps:
      return Status::OK();
    case BKind::kLabel:
      if (e.children.size() != 2) {
        return Status::InvalidArgument("non-binary output node in " + where);
      }
      if (e.current_label && epsilon_rule) {
        return Status::InvalidArgument("%t output in epsilon rule of " + where);
      }
      for (const BExpr& c : e.children) {
        XQMFT_RETURN_NOT_OK(ValidateBExpr(mtt, c, m, epsilon_rule, where));
      }
      return Status::OK();
    case BKind::kCall: {
      if (e.state < 0 || e.state >= mtt.num_states()) {
        return Status::InvalidArgument("call to unknown state in " + where);
      }
      if (epsilon_rule && e.input != InputVar::kX0) {
        return Status::InvalidArgument("x1/x2 in epsilon rule of " + where);
      }
      int want = mtt.num_params(e.state);
      if (static_cast<int>(e.children.size()) != want) {
        return Status::InvalidArgument(
            StrFormat("call arity mismatch (%zu vs %d) in %s",
                      e.children.size(), want, where.c_str()));
      }
      for (const BExpr& c : e.children) {
        XQMFT_RETURN_NOT_OK(ValidateBExpr(mtt, c, m, epsilon_rule, where));
      }
      return Status::OK();
    }
    case BKind::kParam:
      if (e.param < 1 || e.param > m) {
        return Status::InvalidArgument(
            StrFormat("parameter y%d out of range in %s", e.param,
                      where.c_str()));
      }
      return Status::OK();
  }
  return Status::OK();
}

void CollectBExprAlphabet(const BExpr& e, std::set<Symbol>* out) {
  if (e.kind == BKind::kLabel && !e.current_label) out->insert(e.symbol);
  for (const BExpr& c : e.children) CollectBExprAlphabet(c, out);
}

}  // namespace

Status Mtt::Validate() const {
  if (states_.empty()) return Status::InvalidArgument("MTT has no states");
  if (num_params(initial_) != 0) {
    return Status::InvalidArgument("initial state must have rank 1");
  }
  for (StateId q = 0; q < num_states(); ++q) {
    const MttStateRules& r = rules_[q];
    const std::string& name = states_[q].name;
    int m = states_[q].num_params;
    if (!r.default_rule) {
      return Status::InvalidArgument("state " + name + " lacks a default rule");
    }
    if (!r.epsilon_rule) {
      return Status::InvalidArgument("state " + name + " lacks an epsilon rule");
    }
    for (const auto& [sym, rhs] : r.symbol_rules) {
      XQMFT_RETURN_NOT_OK(
          ValidateBExpr(*this, rhs, m, false, name + " on " + sym.ToString()));
    }
    if (r.text_rule) {
      XQMFT_RETURN_NOT_OK(
          ValidateBExpr(*this, *r.text_rule, m, false, name + " text"));
    }
    XQMFT_RETURN_NOT_OK(
        ValidateBExpr(*this, *r.default_rule, m, false, name + " default"));
    XQMFT_RETURN_NOT_OK(
        ValidateBExpr(*this, *r.epsilon_rule, m, true, name + " epsilon"));
  }
  return Status::OK();
}

std::set<Symbol> Mtt::CollectAlphabet() const {
  std::set<Symbol> out;
  for (StateId q = 0; q < num_states(); ++q) {
    const MttStateRules& r = rules_[q];
    for (const auto& [sym, rhs] : r.symbol_rules) {
      out.insert(sym);
      CollectBExprAlphabet(rhs, &out);
    }
    if (r.text_rule) CollectBExprAlphabet(*r.text_rule, &out);
    if (r.default_rule) CollectBExprAlphabet(*r.default_rule, &out);
    if (r.epsilon_rule) CollectBExprAlphabet(*r.epsilon_rule, &out);
  }
  return out;
}

std::size_t Mtt::Size() const {
  std::size_t n = CollectAlphabet().size();
  for (StateId q = 0; q < num_states(); ++q) {
    const MttStateRules& r = rules_[q];
    std::size_t m = static_cast<std::size_t>(states_[q].num_params);
    for (const auto& [sym, rhs] : r.symbol_rules) {
      n += 4 + m + BExprSize(rhs);
    }
    if (r.text_rule) n += 4 + m + BExprSize(*r.text_rule);
    if (r.default_rule) n += 4 + m + BExprSize(*r.default_rule);
    if (r.epsilon_rule) n += 2 + m + BExprSize(*r.epsilon_rule);
  }
  return n;
}

namespace {

void BExprToString(const Mtt& mtt, const BExpr& e, std::string* out) {
  switch (e.kind) {
    case BKind::kEps:
      *out += "e";
      return;
    case BKind::kLabel:
      *out += e.current_label ? "%t" : e.symbol.ToString();
      *out += '(';
      BExprToString(mtt, e.children[0], out);
      *out += ',';
      BExprToString(mtt, e.children[1], out);
      *out += ')';
      return;
    case BKind::kCall:
      *out += mtt.state_name(e.state);
      *out += "(x" + std::to_string(static_cast<int>(e.input));
      for (const BExpr& c : e.children) {
        *out += ", ";
        BExprToString(mtt, c, out);
      }
      *out += ')';
      return;
    case BKind::kParam:
      *out += "y" + std::to_string(e.param);
      return;
  }
}

}  // namespace

std::string Mtt::ToString() const {
  std::string out;
  for (StateId q = 0; q < num_states(); ++q) {
    const MttStateRules& r = rules_[q];
    std::vector<Symbol> syms;
    for (const auto& [sym, rhs] : r.symbol_rules) syms.push_back(sym);
    std::sort(syms.begin(), syms.end());
    auto print = [&](const std::string& pattern, const BExpr& rhs) {
      out += state_name(q) + "(" + pattern;
      for (int j = 1; j <= num_params(q); ++j) out += ", y" + std::to_string(j);
      out += ") -> ";
      BExprToString(*this, rhs, &out);
      out += '\n';
    };
    for (const Symbol& s : syms) {
      print(s.ToString() + "(x1,x2)", r.symbol_rules.at(s));
    }
    if (r.text_rule) print("%ttext(x1,x2)", *r.text_rule);
    if (r.default_rule) print("%t(x1,x2)", *r.default_rule);
    if (r.epsilon_rule) print("eps", *r.epsilon_rule);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------------

namespace {

class MttInterp {
 public:
  MttInterp(const Mtt& mtt, MttInterpOptions options)
      : mtt_(mtt),
        steps_left_(options.max_steps),
        stay_limit_(mtt.num_states()) {}

  Result<BTreePtr> Run(const BTreePtr& input) {
    return Apply(mtt_.initial_state(), input, {}, 0);
  }

 private:
  // As in the MFT interpreter: rule choice and control flow depend only on
  // (state, input node), so a chain of more than num_states() consecutive
  // stay moves has revisited a state with no input progress and diverges.
  // Failing here keeps a stay loop from overflowing the C++ stack, which
  // the step budget alone cannot prevent.
  Result<BTreePtr> Apply(StateId q, const BTreePtr& t,
                         const std::vector<BTreePtr>& params, int stay_chain) {
    if (steps_left_ == 0) {
      return Status::ResourceExhausted("MTT interpreter step budget exceeded");
    }
    --steps_left_;
    if (stay_chain > stay_limit_) {
      return Status::ResourceExhausted(
          "MTT interpreter detected a non-terminating stay-move loop "
          "(a state recurred with no input progress)");
    }
    const BExpr* rhs = t == nullptr ? mtt_.LookupEpsilonRule(q)
                                    : mtt_.LookupRule(q, t->label);
    if (rhs == nullptr) {
      return Status::Internal("no applicable rule for MTT state " +
                              mtt_.state_name(q));
    }
    return Eval(*rhs, t, params, stay_chain);
  }

  Result<BTreePtr> Eval(const BExpr& e, const BTreePtr& t,
                        const std::vector<BTreePtr>& params, int stay_chain) {
    switch (e.kind) {
      case BKind::kEps:
        return BTreePtr(nullptr);
      case BKind::kLabel: {
        XQMFT_ASSIGN_OR_RETURN(BTreePtr l,
                               Eval(e.children[0], t, params, stay_chain));
        XQMFT_ASSIGN_OR_RETURN(BTreePtr r,
                               Eval(e.children[1], t, params, stay_chain));
        Symbol sym = e.current_label ? t->label : e.symbol;
        return MakeBNode(std::move(sym), std::move(l), std::move(r));
      }
      case BKind::kCall: {
        BTreePtr target;
        int next_stay = 0;
        switch (e.input) {
          case InputVar::kX0:
            target = t;
            next_stay = stay_chain + 1;
            break;
          case InputVar::kX1:
            XQMFT_CHECK(t != nullptr);
            target = t->left;
            break;
          case InputVar::kX2:
            XQMFT_CHECK(t != nullptr);
            target = t->right;
            break;
        }
        std::vector<BTreePtr> args;
        args.reserve(e.children.size());
        for (const BExpr& a : e.children) {
          XQMFT_ASSIGN_OR_RETURN(BTreePtr v, Eval(a, t, params, stay_chain));
          args.push_back(std::move(v));
        }
        return Apply(e.state, target, args, next_stay);
      }
      case BKind::kParam:
        return params[static_cast<std::size_t>(e.param) - 1];
    }
    return Status::Internal("unhandled BExpr kind");
  }

  const Mtt& mtt_;
  std::uint64_t steps_left_;
  const int stay_limit_;
};

}  // namespace

Result<BTreePtr> RunMtt(const Mtt& mtt, const BTreePtr& input,
                        MttInterpOptions options) {
  return MttInterp(mtt, options).Run(input);
}

}  // namespace xqmft
