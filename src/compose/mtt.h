// Macro tree transducers (MTTs) and top-down tree transducers (TTs) over
// binary XML trees, with stay moves, default rules and epsilon rules — the
// transducer classes of Section 4.2.
//
// The paper defines an MTT as an MFT whose right-hand sides are trees with
// binary output nodes; a TT is an MTT whose states all have rank 1. Rules:
//
//   q(a(x1,x2), y1..ym)  -> rhs      (symbol rule)
//   q(%t(x1,x2), y1..ym) -> rhs      (default rule; %t output copies label)
//   q(eps, y1..ym)       -> rhs      (epsilon rule; only x0 available)
//
// where rhs is a *tree*: eps | c(rhs,rhs) | y_j | q'(x_i, rhs...).
#ifndef XQMFT_COMPOSE_MTT_H_
#define XQMFT_COMPOSE_MTT_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "compose/btree.h"
#include "mft/mft.h"  // StateId, InputVar
#include "util/status.h"

namespace xqmft {

enum class BKind : unsigned char {
  kEps,
  kLabel,  ///< binary output node (fixed symbol or %t)
  kCall,   ///< q(x_i, args...)
  kParam,  ///< y_j
};

/// \brief A right-hand-side tree of an MTT rule.
struct BExpr {
  BKind kind = BKind::kEps;

  // kLabel
  bool current_label = false;
  Symbol symbol;
  std::vector<BExpr> children;  ///< exactly two for kLabel; args for kCall

  // kCall
  StateId state = -1;
  InputVar input = InputVar::kX0;

  // kParam
  int param = 0;

  static BExpr Eps() { return BExpr{}; }
  static BExpr Label(Symbol s, BExpr l, BExpr r) {
    BExpr e;
    e.kind = BKind::kLabel;
    e.symbol = std::move(s);
    e.children.push_back(std::move(l));
    e.children.push_back(std::move(r));
    return e;
  }
  static BExpr CurrentLabel(BExpr l, BExpr r) {
    BExpr e;
    e.kind = BKind::kLabel;
    e.current_label = true;
    e.children.push_back(std::move(l));
    e.children.push_back(std::move(r));
    return e;
  }
  static BExpr Call(StateId q, InputVar x, std::vector<BExpr> args = {}) {
    BExpr e;
    e.kind = BKind::kCall;
    e.state = q;
    e.input = x;
    e.children = std::move(args);
    return e;
  }
  static BExpr Param(int j) {
    BExpr e;
    e.kind = BKind::kParam;
    e.param = j;
    return e;
  }
};

/// Nodes of an RHS tree (labels, calls, params, eps leaves each count 1).
std::size_t BExprSize(const BExpr& e);

/// \brief Rules of one MTT state. Like the forest MFT, a state may carry a
/// %ttext rule that catches text-labelled nodes ahead of the default rule —
/// necessary because document text labels are unbounded and cannot all be
/// symbol rules.
struct MttStateRules {
  std::unordered_map<Symbol, BExpr, SymbolHash> symbol_rules;
  std::optional<BExpr> text_rule;     ///< %ttext: any text-kind label
  std::optional<BExpr> default_rule;
  std::optional<BExpr> epsilon_rule;
};

/// \brief A deterministic total macro tree transducer over binary XML trees.
class Mtt {
 public:
  StateId AddState(std::string name, int num_params);

  int num_states() const { return static_cast<int>(states_.size()); }
  int num_params(StateId q) const { return states_[q].num_params; }
  const std::string& state_name(StateId q) const { return states_[q].name; }

  StateId initial_state() const { return initial_; }
  void set_initial_state(StateId q) { initial_ = q; }

  void SetSymbolRule(StateId q, Symbol s, BExpr rhs);
  void SetTextRule(StateId q, BExpr rhs);
  void SetDefaultRule(StateId q, BExpr rhs);
  void SetEpsilonRule(StateId q, BExpr rhs);

  const MttStateRules& rules(StateId q) const { return rules_[q]; }

  /// Rule selection: exact symbol, else the text rule for text-kind labels,
  /// else default.
  const BExpr* LookupRule(StateId q, const Symbol& sym) const;
  const BExpr* LookupEpsilonRule(StateId q) const;

  /// Rank-1 everywhere: the TT subclass.
  bool IsTopDown() const;

  /// Structural validity (arities, parameter ranges, x-variable scope).
  Status Validate() const;

  /// Size |M|: |Sigma| + sum of rule sizes (lhs analogous to Mft::Size).
  std::size_t Size() const;

  std::set<Symbol> CollectAlphabet() const;

  std::string ToString() const;

 private:
  struct StateInfo {
    std::string name;
    int num_params;
  };
  std::vector<StateInfo> states_;
  std::vector<MttStateRules> rules_;
  StateId initial_ = 0;
};

struct MttInterpOptions {
  std::uint64_t max_steps = 20'000'000;
};

/// Reference interpreter: [[q0]](input).
Result<BTreePtr> RunMtt(const Mtt& mtt, const BTreePtr& input,
                        MttInterpOptions options = {});

}  // namespace xqmft

#endif  // XQMFT_COMPOSE_MTT_H_
