#include "schema/schema.h"

#include <cctype>
#include <map>
#include <set>
#include <unordered_map>

#include "util/strings.h"

namespace xqmft {

namespace {

// Content-model alphabet symbol classes.
struct Atom {
  enum Kind { kName, kText, kAny } kind = kName;
  std::string name;

  bool Matches(NodeKind node_kind, std::string_view label) const {
    switch (kind) {
      case kName:
        return node_kind == NodeKind::kElement && label == name;
      case kText:
        return node_kind == NodeKind::kText;
      case kAny:
        (void)label;
        return true;
    }
    return false;
  }
};

// Regex AST.
struct Re {
  enum Kind { kAtom, kSeq, kAlt, kStar, kPlus, kOpt, kEmpty } kind = kEmpty;
  Atom atom;
  std::vector<Re> children;
};

// Thompson NFA with epsilon edges.
struct Nfa {
  struct Edge {
    int to;
    int atom;  // -1 = epsilon
  };
  std::vector<std::vector<Edge>> states;
  std::vector<Atom> atoms;
  int start = 0;
  int accept = 0;

  int NewState() {
    states.emplace_back();
    return static_cast<int>(states.size()) - 1;
  }
};

void BuildNfa(const Re& re, Nfa* nfa, int from, int to) {
  switch (re.kind) {
    case Re::kEmpty:
      nfa->states[static_cast<std::size_t>(from)].push_back({to, -1});
      return;
    case Re::kAtom: {
      int a = static_cast<int>(nfa->atoms.size());
      nfa->atoms.push_back(re.atom);
      nfa->states[static_cast<std::size_t>(from)].push_back({to, a});
      return;
    }
    case Re::kSeq: {
      int prev = from;
      for (std::size_t i = 0; i < re.children.size(); ++i) {
        int next = i + 1 == re.children.size() ? to : nfa->NewState();
        BuildNfa(re.children[i], nfa, prev, next);
        prev = next;
      }
      if (re.children.empty()) {
        nfa->states[static_cast<std::size_t>(from)].push_back({to, -1});
      }
      return;
    }
    case Re::kAlt:
      for (const Re& c : re.children) BuildNfa(c, nfa, from, to);
      return;
    case Re::kStar: {
      int mid = nfa->NewState();
      nfa->states[static_cast<std::size_t>(from)].push_back({mid, -1});
      BuildNfa(re.children[0], nfa, mid, mid);
      nfa->states[static_cast<std::size_t>(mid)].push_back({to, -1});
      return;
    }
    case Re::kPlus: {
      int mid = nfa->NewState();
      BuildNfa(re.children[0], nfa, from, mid);
      BuildNfa(re.children[0], nfa, mid, mid);
      nfa->states[static_cast<std::size_t>(mid)].push_back({to, -1});
      return;
    }
    case Re::kOpt:
      nfa->states[static_cast<std::size_t>(from)].push_back({to, -1});
      BuildNfa(re.children[0], nfa, from, to);
      return;
  }
}

// The validator runs NFA subset simulation directly (content models are
// tiny, so determinization-on-the-fly beats precomputing DFAs).
struct ContentModel {
  Nfa nfa;

  std::set<int> EpsClosure(const std::set<int>& in) const {
    std::set<int> out = in;
    std::vector<int> work(in.begin(), in.end());
    while (!work.empty()) {
      int s = work.back();
      work.pop_back();
      for (const Nfa::Edge& e : nfa.states[static_cast<std::size_t>(s)]) {
        if (e.atom < 0 && out.insert(e.to).second) work.push_back(e.to);
      }
    }
    return out;
  }

  std::set<int> Start() const { return EpsClosure({nfa.start}); }

  std::set<int> Step(const std::set<int>& in, NodeKind kind,
                     std::string_view label) const {
    std::set<int> next;
    for (int s : in) {
      for (const Nfa::Edge& e : nfa.states[static_cast<std::size_t>(s)]) {
        if (e.atom >= 0 &&
            nfa.atoms[static_cast<std::size_t>(e.atom)].Matches(kind, label)) {
          next.insert(e.to);
        }
      }
    }
    return EpsClosure(next);
  }

  bool Accepting(const std::set<int>& in) const {
    return in.count(nfa.accept) > 0;
  }
};

// --- Regex parser -----------------------------------------------------------

class ReParser {
 public:
  explicit ReParser(const std::string& s) : s_(s) {}

  Result<Re> Parse() {
    Re re;
    XQMFT_RETURN_NOT_OK(ParseAlt(&re));
    SkipWs();
    if (pos_ != s_.size()) {
      return Status::InvalidArgument("schema regex: trailing characters in '" +
                                     s_ + "'");
    }
    return re;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t')) ++pos_;
  }

  Status ParseAlt(Re* out) {
    Re first;
    XQMFT_RETURN_NOT_OK(ParseSeq(&first));
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != '|') {
      *out = std::move(first);
      return Status::OK();
    }
    out->kind = Re::kAlt;
    out->children.push_back(std::move(first));
    while (pos_ < s_.size() && s_[pos_] == '|') {
      ++pos_;
      Re next;
      XQMFT_RETURN_NOT_OK(ParseSeq(&next));
      out->children.push_back(std::move(next));
      SkipWs();
    }
    return Status::OK();
  }

  Status ParseSeq(Re* out) {
    out->kind = Re::kSeq;
    while (true) {
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] == '|' || s_[pos_] == ')') break;
      Re item;
      XQMFT_RETURN_NOT_OK(ParsePostfix(&item));
      out->children.push_back(std::move(item));
    }
    if (out->children.size() == 1) {
      Re only = std::move(out->children[0]);
      *out = std::move(only);
    }
    return Status::OK();
  }

  Status ParsePostfix(Re* out) {
    Re base;
    XQMFT_RETURN_NOT_OK(ParsePrimary(&base));
    while (pos_ < s_.size() &&
           (s_[pos_] == '*' || s_[pos_] == '+' || s_[pos_] == '?')) {
      Re wrapped;
      wrapped.kind = s_[pos_] == '*'   ? Re::kStar
                     : s_[pos_] == '+' ? Re::kPlus
                                       : Re::kOpt;
      wrapped.children.push_back(std::move(base));
      base = std::move(wrapped);
      ++pos_;
    }
    *out = std::move(base);
    return Status::OK();
  }

  Status ParsePrimary(Re* out) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '(') {
      ++pos_;
      XQMFT_RETURN_NOT_OK(ParseAlt(out));
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ')') {
        return Status::InvalidArgument("schema regex: missing ')'");
      }
      ++pos_;
      return Status::OK();
    }
    std::string name;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '_' || s_[pos_] == '-' || s_[pos_] == '.')) {
      name += s_[pos_++];
    }
    if (name.empty()) {
      return Status::InvalidArgument("schema regex: expected a name");
    }
    out->kind = Re::kAtom;
    if (name == "text") {
      out->atom.kind = Atom::kText;
    } else if (name == "any") {
      out->atom.kind = Atom::kAny;
    } else {
      out->atom.kind = Atom::kName;
      out->atom.name = std::move(name);
    }
    return Status::OK();
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

// --- Schema ------------------------------------------------------------------

struct Schema::Impl {
  std::unordered_map<std::string, ContentModel> models;
  bool strict = false;

  const ContentModel* Find(std::string_view name) const {
    // unordered_map<string> has no heterogeneous lookup in C++17; the
    // temporary key is the only per-start-element allocation left here.
    auto it = models.find(std::string(name));
    return it == models.end() ? nullptr : &it->second;
  }
};

Schema::Schema() : impl_(new Impl) {}
Schema::~Schema() = default;
bool Schema::strict() const { return impl_->strict; }

Result<std::shared_ptr<const Schema>> Schema::Parse(const std::string& text,
                                                    bool strict) {
  std::shared_ptr<Schema> schema(new Schema());
  schema->impl_->strict = strict;
  for (const std::string& raw_line : SplitString(text, '\n')) {
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    std::size_t arrow = line.find("->");
    if (arrow == std::string_view::npos) {
      return Status::InvalidArgument("schema rule without '->': " +
                                     std::string(line));
    }
    std::string name(StripWhitespace(line.substr(0, arrow)));
    std::string body(StripWhitespace(line.substr(arrow + 2)));
    if (name.empty()) {
      return Status::InvalidArgument("schema rule without element name");
    }
    if (schema->impl_->models.count(name)) {
      return Status::InvalidArgument("duplicate schema rule for " + name);
    }
    Re re;
    XQMFT_ASSIGN_OR_RETURN(re, ReParser(body).Parse());
    ContentModel model;
    model.nfa.start = model.nfa.NewState();
    model.nfa.accept = model.nfa.NewState();
    BuildNfa(re, &model.nfa, model.nfa.start, model.nfa.accept);
    schema->impl_->models.emplace(std::move(name), std::move(model));
  }
  return std::shared_ptr<const Schema>(schema);
}

// --- Validator ---------------------------------------------------------------

struct SchemaValidator::State {
  struct Frame {
    const ContentModel* model;  // null = unconstrained
    std::set<int> states;
    std::string name;
  };
  std::vector<Frame> stack;
  bool complete = false;
};

SchemaValidator::SchemaValidator(std::shared_ptr<const Schema> schema)
    : schema_(std::move(schema)), state_(new State) {
  // Virtual root: unconstrained (the document sequence).
  state_->stack.push_back({nullptr, {}, "#root"});
}

SchemaValidator::~SchemaValidator() = default;

bool SchemaValidator::complete() const { return state_->complete; }

Status SchemaValidator::Feed(const XmlEvent& event) {
  auto& stack = state_->stack;
  switch (event.type) {
    case XmlEventType::kStartElement: {
      State::Frame& parent = stack.back();
      if (parent.model != nullptr) {
        parent.states =
            parent.model->Step(parent.states, NodeKind::kElement, event.name);
        if (parent.states.empty()) {
          return Status::InvalidArgument(
              StrFormat("schema violation: <%.*s> not allowed here inside "
                        "<%s>",
                        static_cast<int>(event.name.size()), event.name.data(),
                        parent.name.c_str()));
        }
      }
      const ContentModel* model = schema_->impl().Find(event.name);
      if (model == nullptr && schema_->strict()) {
        return Status::InvalidArgument(
            "schema violation: no rule for element <" +
            std::string(event.name) + "> (strict mode)");
      }
      State::Frame frame;
      frame.model = model;
      if (model != nullptr) frame.states = model->Start();
      frame.name = std::string(event.name);
      stack.push_back(std::move(frame));
      return Status::OK();
    }
    case XmlEventType::kText: {
      State::Frame& parent = stack.back();
      if (parent.model != nullptr) {
        parent.states =
            parent.model->Step(parent.states, NodeKind::kText, event.text);
        if (parent.states.empty()) {
          return Status::InvalidArgument(
              "schema violation: text not allowed here inside <" +
              parent.name + ">");
        }
      }
      return Status::OK();
    }
    case XmlEventType::kEndElement: {
      State::Frame& top = stack.back();
      if (top.model != nullptr && !top.model->Accepting(top.states)) {
        return Status::InvalidArgument(
            "schema violation: <" + top.name +
            "> closed before its content model was satisfied");
      }
      stack.pop_back();
      if (stack.empty()) {
        return Status::Internal("validator stack underflow");
      }
      return Status::OK();
    }
    case XmlEventType::kEndOfDocument:
      if (stack.size() != 1) {
        return Status::InvalidArgument("schema violation: unclosed elements");
      }
      state_->complete = true;
      return Status::OK();
  }
  return Status::OK();
}

namespace {

Status FeedForest(SchemaValidator* v, const Forest& f) {
  for (const Tree& t : f) {
    XmlEvent ev;
    if (t.kind == NodeKind::kText) {
      ev.type = XmlEventType::kText;
      ev.text = t.label;
      XQMFT_RETURN_NOT_OK(v->Feed(ev));
      continue;
    }
    ev.type = XmlEventType::kStartElement;
    ev.name = t.label;
    XQMFT_RETURN_NOT_OK(v->Feed(ev));
    XQMFT_RETURN_NOT_OK(FeedForest(v, t.children));
    XmlEvent end;
    end.type = XmlEventType::kEndElement;
    end.name = t.label;
    XQMFT_RETURN_NOT_OK(v->Feed(end));
  }
  return Status::OK();
}

}  // namespace

Status ValidateForest(const Schema& schema, const Forest& forest) {
  // Wrap through a shared_ptr alias that does not own (the caller's schema
  // outlives the validator in this synchronous helper).
  std::shared_ptr<const Schema> alias(&schema, [](const Schema*) {});
  SchemaValidator v(alias);
  XQMFT_RETURN_NOT_OK(FeedForest(&v, forest));
  XmlEvent eod;
  eod.type = XmlEventType::kEndOfDocument;
  return v.Feed(eod);
}

}  // namespace xqmft
