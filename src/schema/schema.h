// Streaming schema validation (Section 1 of the paper: "Another convenient
// feature of MFTs is their ability to validate the input, during
// transformation. This allows to check a XML Schema or Relax NG in one pass
// during the streaming transformation.")
//
// The schema language is a DTD-like regular hedge grammar: one rule per
// element name constrains the sequence of its children by a regular
// expression over element names and `text`:
//
//   site   -> regions people open_auctions closed_auctions
//   people -> person*
//   person -> person_id name emailaddress homepage? creditcard?
//   name   -> text
//   any other element: unconstrained (or rejected in strict mode)
//
// Regex syntax: juxtaposition = concatenation, `|` alternation, `*` `+` `?`
// postfix, parentheses, `text` matches a text node, `any` matches any child.
// Content models compile to DFAs (Thompson construction + subset); the
// validator runs one DFA frame per open element, so validation is a
// constant-work-per-event pass that composes with the streaming engine.
#ifndef XQMFT_SCHEMA_SCHEMA_H_
#define XQMFT_SCHEMA_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "util/status.h"
#include "xml/events.h"
#include "xml/forest.h"

namespace xqmft {

/// \brief A compiled regular hedge grammar.
class Schema {
 public:
  /// Parses the textual schema format (one `name -> regex` rule per line;
  /// `#` comments). `strict` rejects elements without a rule instead of
  /// leaving them unconstrained.
  static Result<std::shared_ptr<const Schema>> Parse(const std::string& text,
                                                     bool strict = false);
  ~Schema();

  bool strict() const;

  struct Impl;
  const Impl& impl() const { return *impl_; }

 private:
  Schema();
  std::unique_ptr<Impl> impl_;
};

/// \brief One-pass validator: feed the document's events in order.
class SchemaValidator {
 public:
  explicit SchemaValidator(std::shared_ptr<const Schema> schema);
  ~SchemaValidator();

  /// Feeds one event; returns InvalidArgument describing the first
  /// violation. After kEndOfDocument, validation is complete.
  Status Feed(const XmlEvent& event);

  /// True once kEndOfDocument was fed without violations.
  bool complete() const;

 private:
  struct State;
  std::shared_ptr<const Schema> schema_;
  std::unique_ptr<State> state_;
};

/// Validates a whole in-memory forest (testing convenience).
Status ValidateForest(const Schema& schema, const Forest& forest);

}  // namespace xqmft

#endif  // XQMFT_SCHEMA_SCHEMA_H_
