// Shared character classification for the XML lexer.
//
// The parser's three bulk-scan states (text runs, names, whitespace — plus
// attribute values, which scan like text with a different stop set) all
// classify bytes against one 256-entry table. The table used to live inside
// sax_parser.cc; it is shared here so the scalar loops and the SIMD scanners
// in char_class.cc classify from the same definition and cannot drift.
//
// The Scan* helpers are the lexer's inner loops: each returns the length of
// the maximal prefix of [p, p+n) matching its class, dispatching to a SIMD
// implementation (SSE2 on x86-64, NEON on AArch64 — 16 bytes classified per
// step) when available and enabled, with the scalar table loop as the always
// -present fallback. The two paths are differential-tested against each
// other (tests/xml_test.cc).
//
// SIMD is a pure speedup: it never changes which byte a scan stops at, so it
// is deliberately NOT a SaxOptions field (those feed tokenization-equality
// checks and plan-cache keys). The process-wide toggle exists for A/B
// benchmarking: env XQMFT_SIMD=off, or SetSimdScanEnabled(false).
#ifndef XQMFT_XML_CHAR_CLASS_H_
#define XQMFT_XML_CHAR_CLASS_H_

#include <cstddef>

namespace xqmft {

enum : unsigned char {
  kClsNameStart = 1,  // [A-Za-z_:]
  kClsNameChar = 2,   // name start plus [0-9.-]
  kClsWs = 4,         // space \t \n \r
};

struct CharClassTable {
  unsigned char cls[256] = {};
  constexpr CharClassTable() {
    for (int c = 'a'; c <= 'z'; ++c) cls[c] = kClsNameStart | kClsNameChar;
    for (int c = 'A'; c <= 'Z'; ++c) cls[c] = kClsNameStart | kClsNameChar;
    cls[static_cast<unsigned char>('_')] = kClsNameStart | kClsNameChar;
    cls[static_cast<unsigned char>(':')] = kClsNameStart | kClsNameChar;
    for (int c = '0'; c <= '9'; ++c) cls[c] = kClsNameChar;
    cls[static_cast<unsigned char>('-')] = kClsNameChar;
    cls[static_cast<unsigned char>('.')] = kClsNameChar;
    cls[static_cast<unsigned char>(' ')] = kClsWs;
    cls[static_cast<unsigned char>('\t')] = kClsWs;
    cls[static_cast<unsigned char>('\n')] = kClsWs;
    cls[static_cast<unsigned char>('\r')] = kClsWs;
  }
};

inline constexpr CharClassTable kCharClassTable{};

inline unsigned char CharClassOf(char c) {
  return kCharClassTable.cls[static_cast<unsigned char>(c)];
}

inline bool IsAllWhitespace(const char* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!(CharClassOf(p[i]) & kClsWs)) return false;
  }
  return true;
}

/// Process-wide SIMD toggle. Defaults to on where compiled in; env
/// XQMFT_SIMD=off (or 0) disables at startup. Relaxed-atomic: safe to flip
/// between runs, never changes scan results either way.
bool SimdScanEnabled();
void SetSimdScanEnabled(bool on);
/// True when a SIMD implementation is compiled into this binary.
bool SimdScanAvailable();

/// Length of the prefix of [p, p+n) containing neither '<' nor '&' (a text
/// content run). `*all_ws` is ANDed with "every scanned byte is whitespace",
/// folding the old separate IsAllWs pass into the same sweep.
std::size_t ScanTextRun(const char* p, std::size_t n, bool* all_ws);

/// Length of the prefix of [p, p+n) of kClsNameChar bytes.
std::size_t ScanNameRun(const char* p, std::size_t n);

/// Length of the prefix of [p, p+n) of kClsWs bytes.
std::size_t ScanWsRun(const char* p, std::size_t n);

/// Length of the prefix of [p, p+n) containing neither `quote` nor '&' (an
/// attribute value run). `quote` is '"' or '\''.
std::size_t ScanAttrRun(const char* p, std::size_t n, char quote);

}  // namespace xqmft

#endif  // XQMFT_XML_CHAR_CLASS_H_
