#include "xml/char_class.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define XQMFT_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__)
#define XQMFT_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace xqmft {

namespace {

bool SimdDefault() {
#if defined(XQMFT_SIMD_SSE2) || defined(XQMFT_SIMD_NEON)
  const char* e = std::getenv("XQMFT_SIMD");
  if (e != nullptr &&
      (std::strcmp(e, "off") == 0 || std::strcmp(e, "0") == 0)) {
    return false;
  }
  return true;
#else
  return false;
#endif
}

std::atomic<bool>& SimdFlag() {
  static std::atomic<bool> flag{SimdDefault()};
  return flag;
}

// ---------------------------------------------------------------------------
// Scalar fallbacks (always present; also finish SIMD tails)
// ---------------------------------------------------------------------------

std::size_t ScalarTextRun(const char* p, std::size_t n, std::size_t i,
                          bool* all_ws) {
  bool ws = true;
  for (; i < n; ++i) {
    char c = p[i];
    if (c == '<' || c == '&') break;
    ws = ws && (CharClassOf(c) & kClsWs) != 0;
  }
  *all_ws = *all_ws && ws;
  return i;
}

std::size_t ScalarNameRun(const char* p, std::size_t n, std::size_t i) {
  for (; i < n; ++i) {
    if (!(CharClassOf(p[i]) & kClsNameChar)) break;
  }
  return i;
}

std::size_t ScalarWsRun(const char* p, std::size_t n, std::size_t i) {
  for (; i < n; ++i) {
    if (!(CharClassOf(p[i]) & kClsWs)) break;
  }
  return i;
}

std::size_t ScalarAttrRun(const char* p, std::size_t n, std::size_t i,
                          char quote) {
  for (; i < n; ++i) {
    char c = p[i];
    if (c == quote || c == '&') break;
  }
  return i;
}

#if defined(XQMFT_SIMD_SSE2) || defined(XQMFT_SIMD_NEON)
inline unsigned CountTrailingZeros(unsigned long long mask) {
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<unsigned>(__builtin_ctzll(mask));
#else
  unsigned k = 0;
  while ((mask & 1u) == 0) {
    mask >>= 1;
    ++k;
  }
  return k;
#endif
}
#endif

#if defined(XQMFT_SIMD_SSE2)

// 16-byte classification blocks. Stop masks come from byte-equality
// compares; the whitespace mask is the union of the four kClsWs bytes, so
// both halves of the old two-pass (memchr then IsAllWs) fold into one sweep.

inline unsigned WsMask16(__m128i v) {
  __m128i ws = _mm_or_si128(
      _mm_or_si128(_mm_cmpeq_epi8(v, _mm_set1_epi8(' ')),
                   _mm_cmpeq_epi8(v, _mm_set1_epi8('\t'))),
      _mm_or_si128(_mm_cmpeq_epi8(v, _mm_set1_epi8('\n')),
                   _mm_cmpeq_epi8(v, _mm_set1_epi8('\r'))));
  return static_cast<unsigned>(_mm_movemask_epi8(ws));
}

std::size_t SimdTextRun(const char* p, std::size_t n, bool* all_ws) {
  std::size_t i = 0;
  bool ws = true;
  for (; i + 16 <= n; i += 16) {
    __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    __m128i stop = _mm_or_si128(_mm_cmpeq_epi8(v, _mm_set1_epi8('<')),
                                _mm_cmpeq_epi8(v, _mm_set1_epi8('&')));
    unsigned stop_mask = static_cast<unsigned>(_mm_movemask_epi8(stop));
    unsigned ws_mask = WsMask16(v);
    if (stop_mask != 0) {
      unsigned k = CountTrailingZeros(stop_mask);
      ws = ws && ((~ws_mask & ((1u << k) - 1)) == 0);
      *all_ws = *all_ws && ws;
      return i + k;
    }
    ws = ws && (ws_mask == 0xFFFFu);
  }
  *all_ws = *all_ws && ws;
  return ScalarTextRun(p, n, i, all_ws);
}

std::size_t SimdNameRun(const char* p, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    // Case-folded alpha range: high-bit (UTF-8) bytes stay negative under
    // the signed compares and correctly classify as non-name.
    __m128i lower = _mm_or_si128(v, _mm_set1_epi8(0x20));
    __m128i alpha =
        _mm_and_si128(_mm_cmpgt_epi8(lower, _mm_set1_epi8('a' - 1)),
                      _mm_cmpgt_epi8(_mm_set1_epi8('z' + 1), lower));
    __m128i digit =
        _mm_and_si128(_mm_cmpgt_epi8(v, _mm_set1_epi8('0' - 1)),
                      _mm_cmpgt_epi8(_mm_set1_epi8('9' + 1), v));
    __m128i punct = _mm_or_si128(
        _mm_or_si128(_mm_cmpeq_epi8(v, _mm_set1_epi8('_')),
                     _mm_cmpeq_epi8(v, _mm_set1_epi8(':'))),
        _mm_or_si128(_mm_cmpeq_epi8(v, _mm_set1_epi8('.')),
                     _mm_cmpeq_epi8(v, _mm_set1_epi8('-'))));
    __m128i name = _mm_or_si128(_mm_or_si128(alpha, digit), punct);
    unsigned not_name =
        0xFFFFu ^ static_cast<unsigned>(_mm_movemask_epi8(name));
    if (not_name != 0) return i + CountTrailingZeros(not_name);
  }
  return ScalarNameRun(p, n, i);
}

std::size_t SimdWsRun(const char* p, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    unsigned not_ws = 0xFFFFu ^ WsMask16(v);
    if (not_ws != 0) return i + CountTrailingZeros(not_ws);
  }
  return ScalarWsRun(p, n, i);
}

std::size_t SimdAttrRun(const char* p, std::size_t n, char quote) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    __m128i stop = _mm_or_si128(_mm_cmpeq_epi8(v, _mm_set1_epi8(quote)),
                                _mm_cmpeq_epi8(v, _mm_set1_epi8('&')));
    unsigned stop_mask = static_cast<unsigned>(_mm_movemask_epi8(stop));
    if (stop_mask != 0) return i + CountTrailingZeros(stop_mask);
  }
  return ScalarAttrRun(p, n, i, quote);
}

#elif defined(XQMFT_SIMD_NEON)

// NEON lacks movemask; narrow each comparison byte to a nibble so a 16-byte
// mask fits one uint64 (4 bits per lane, any-set semantics preserved).
inline unsigned long long Nibbles16(uint8x16_t m) {
  uint8x8_t narrowed = vshrn_n_u16(vreinterpretq_u16_u8(m), 4);
  return vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
}

inline uint8x16_t WsBytes16(uint8x16_t v) {
  return vorrq_u8(vorrq_u8(vceqq_u8(v, vdupq_n_u8(' ')),
                           vceqq_u8(v, vdupq_n_u8('\t'))),
                  vorrq_u8(vceqq_u8(v, vdupq_n_u8('\n')),
                           vceqq_u8(v, vdupq_n_u8('\r'))));
}

std::size_t SimdTextRun(const char* p, std::size_t n, bool* all_ws) {
  std::size_t i = 0;
  bool ws = true;
  for (; i + 16 <= n; i += 16) {
    uint8x16_t v = vld1q_u8(reinterpret_cast<const std::uint8_t*>(p + i));
    uint8x16_t stop = vorrq_u8(vceqq_u8(v, vdupq_n_u8('<')),
                               vceqq_u8(v, vdupq_n_u8('&')));
    unsigned long long stop_mask = Nibbles16(stop);
    unsigned long long ws_mask = Nibbles16(WsBytes16(v));
    if (stop_mask != 0) {
      unsigned k = CountTrailingZeros(stop_mask) >> 2;
      unsigned long long prefix =
          k == 0 ? 0 : (~0ULL >> (64 - 4 * k));
      ws = ws && ((~ws_mask & prefix) == 0);
      *all_ws = *all_ws && ws;
      return i + k;
    }
    ws = ws && (ws_mask == ~0ULL);
  }
  *all_ws = *all_ws && ws;
  return ScalarTextRun(p, n, i, all_ws);
}

std::size_t SimdNameRun(const char* p, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    uint8x16_t v = vld1q_u8(reinterpret_cast<const std::uint8_t*>(p + i));
    // Unsigned compares: UTF-8 bytes (>= 0x80) fold to >= 0xA0, above 'z',
    // so they classify as non-name without a separate ASCII mask.
    uint8x16_t lower = vorrq_u8(v, vdupq_n_u8(0x20));
    uint8x16_t alpha = vandq_u8(vcgeq_u8(lower, vdupq_n_u8('a')),
                                vcleq_u8(lower, vdupq_n_u8('z')));
    uint8x16_t digit = vandq_u8(vcgeq_u8(v, vdupq_n_u8('0')),
                                vcleq_u8(v, vdupq_n_u8('9')));
    uint8x16_t punct = vorrq_u8(
        vorrq_u8(vceqq_u8(v, vdupq_n_u8('_')), vceqq_u8(v, vdupq_n_u8(':'))),
        vorrq_u8(vceqq_u8(v, vdupq_n_u8('.')),
                 vceqq_u8(v, vdupq_n_u8('-'))));
    uint8x16_t name = vorrq_u8(vorrq_u8(alpha, digit), punct);
    unsigned long long not_name = ~Nibbles16(name);
    if (not_name != 0) return i + (CountTrailingZeros(not_name) >> 2);
  }
  return ScalarNameRun(p, n, i);
}

std::size_t SimdWsRun(const char* p, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    uint8x16_t v = vld1q_u8(reinterpret_cast<const std::uint8_t*>(p + i));
    unsigned long long not_ws = ~Nibbles16(WsBytes16(v));
    if (not_ws != 0) return i + (CountTrailingZeros(not_ws) >> 2);
  }
  return ScalarWsRun(p, n, i);
}

std::size_t SimdAttrRun(const char* p, std::size_t n, char quote) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    uint8x16_t v = vld1q_u8(reinterpret_cast<const std::uint8_t*>(p + i));
    uint8x16_t stop =
        vorrq_u8(vceqq_u8(v, vdupq_n_u8(static_cast<std::uint8_t>(quote))),
                 vceqq_u8(v, vdupq_n_u8('&')));
    unsigned long long stop_mask = Nibbles16(stop);
    if (stop_mask != 0) return i + (CountTrailingZeros(stop_mask) >> 2);
  }
  return ScalarAttrRun(p, n, i, quote);
}

#endif

inline bool UseSimd(std::size_t n) {
#if defined(XQMFT_SIMD_SSE2) || defined(XQMFT_SIMD_NEON)
  return n >= 16 && SimdFlag().load(std::memory_order_relaxed);
#else
  (void)n;
  return false;
#endif
}

}  // namespace

bool SimdScanEnabled() {
  return SimdFlag().load(std::memory_order_relaxed);
}

void SetSimdScanEnabled(bool on) {
  SimdFlag().store(on && SimdScanAvailable(), std::memory_order_relaxed);
}

bool SimdScanAvailable() {
#if defined(XQMFT_SIMD_SSE2) || defined(XQMFT_SIMD_NEON)
  return true;
#else
  return false;
#endif
}

std::size_t ScanTextRun(const char* p, std::size_t n, bool* all_ws) {
#if defined(XQMFT_SIMD_SSE2) || defined(XQMFT_SIMD_NEON)
  if (UseSimd(n)) return SimdTextRun(p, n, all_ws);
#endif
  return ScalarTextRun(p, n, 0, all_ws);
}

std::size_t ScanNameRun(const char* p, std::size_t n) {
#if defined(XQMFT_SIMD_SSE2) || defined(XQMFT_SIMD_NEON)
  if (UseSimd(n)) return SimdNameRun(p, n);
#endif
  return ScalarNameRun(p, n, 0);
}

std::size_t ScanWsRun(const char* p, std::size_t n) {
#if defined(XQMFT_SIMD_SSE2) || defined(XQMFT_SIMD_NEON)
  if (UseSimd(n)) return SimdWsRun(p, n);
#endif
  return ScalarWsRun(p, n, 0);
}

std::size_t ScanAttrRun(const char* p, std::size_t n, char quote) {
#if defined(XQMFT_SIMD_SSE2) || defined(XQMFT_SIMD_NEON)
  if (UseSimd(n)) return SimdAttrRun(p, n, quote);
#endif
  return ScalarAttrRun(p, n, 0, quote);
}

}  // namespace xqmft
