// Abstract producer of XML stream events.
//
// The streaming engine consumes events, not bytes: anything that can produce
// the kStartElement/kText/kEndElement/kEndOfDocument sequence can drive it.
// Implementations: SaxParser (text XML, xml/sax_parser.h) and PretokSource
// (the pre-tokenized binary event format, xml/pretok.h).
#ifndef XQMFT_XML_EVENT_SOURCE_H_
#define XQMFT_XML_EVENT_SOURCE_H_

#include <cstddef>

#include "util/status.h"
#include "xml/events.h"
#include "xml/symbol_table.h"

namespace xqmft {

/// \brief Pull interface over an event stream.
class EventSource {
 public:
  virtual ~EventSource() = default;

  /// Produces the next event. After kEndOfDocument, keeps returning it.
  /// Views in `*event` are valid until the next call (events.h contract).
  virtual Status Next(XmlEvent* event) = 0;

  /// Bytes of underlying input consumed so far (text XML bytes for the
  /// parser, pretok file bytes for a pre-tokenized source).
  virtual std::size_t bytes_consumed() const = 0;

  /// Re-points the source at the consumer's symbol table so event ids share
  /// its id space (the engine binds its per-run table copy before pulling).
  /// Must be called before the first Next().
  virtual void BindSymbols(SymbolTable* symbols) = 0;
};

}  // namespace xqmft

#endif  // XQMFT_XML_EVENT_SOURCE_H_
