// Value-semantics XML forests (Definition 1 of the paper).
//
// A forest is a sequence of unranked trees; each tree has a labelled root and
// a (possibly empty) child forest. This representation is used by the
// non-streaming components: the reference XQuery evaluator, the reference MFT
// interpreter, the GCX baseline's buffers, and the test suites. The streaming
// engine has its own incremental cell representation (src/stream/).
#ifndef XQMFT_XML_FOREST_H_
#define XQMFT_XML_FOREST_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.h"
#include "xml/symbol.h"

namespace xqmft {

struct Tree;

/// A forest: an ordered sequence of trees. The empty vector is ε.
using Forest = std::vector<Tree>;

/// \brief An unranked tree: a (kind, label) root plus a child forest.
struct Tree {
  NodeKind kind = NodeKind::kElement;
  std::string label;
  Forest children;

  Tree() = default;
  Tree(NodeKind k, std::string l, Forest c = {})
      : kind(k), label(std::move(l)), children(std::move(c)) {}

  static Tree Element(std::string l, Forest c = {}) {
    return Tree(NodeKind::kElement, std::move(l), std::move(c));
  }
  static Tree Text(std::string content) {
    return Tree(NodeKind::kText, std::move(content));
  }

  Symbol symbol() const { return Symbol(kind, label); }

  bool operator==(const Tree& o) const {
    return kind == o.kind && label == o.label && children == o.children;
  }
};

/// Number of nodes in the forest (the paper's size of a forest).
std::size_t ForestSize(const Forest& f);

/// Maximum node depth; the empty forest has depth 0, a leaf tree depth 1.
std::size_t ForestDepth(const Forest& f);

/// Appends `src` to `dst` (forest concatenation).
void AppendForest(Forest* dst, const Forest& src);
void AppendForest(Forest* dst, Forest&& src);

/// Term notation per the paper's EBNF, e.g. `a(b "txt") c`. Text nodes print
/// as quoted strings; ε prints as the empty string.
std::string ForestToTerm(const Forest& f);

/// Parses term notation (inverse of ForestToTerm). Accepts `a`, `a()`,
/// `a(b c)`, and quoted text leaves `"content"` with backslash escapes.
Result<Forest> ParseTerm(const std::string& term);

/// Serializes the forest as XML markup. Adjacent text nodes concatenate, as
/// the paper notes for <out>JimLi</out>.
std::string ForestToXml(const Forest& f);

class OutputSink;

/// Replays the forest as Start/Text/End events into a sink — the same event
/// sequence a streaming engine would produce for this forest.
void EmitForest(const Forest& f, OutputSink* sink);

}  // namespace xqmft

#endif  // XQMFT_XML_FOREST_H_
