// Streaming (pull) XML parser.
//
// The paper's engine sits behind Expat; this reproduction implements its own
// parser so the whole system is self-contained. Supported: elements,
// attributes, character data with entity references, CDATA, comments,
// processing instructions, DOCTYPE (skipped). Not supported (out of scope for
// the paper's workloads): namespaces-aware processing, DTD entity definitions.
#ifndef XQMFT_XML_SAX_PARSER_H_
#define XQMFT_XML_SAX_PARSER_H_

#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xml/events.h"
#include "xml/forest.h"
#include "xml/symbol_table.h"

namespace xqmft {

/// \brief Abstract byte source for the parser.
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  /// Reads up to `n` bytes into `buf`; returns bytes read, 0 at end of input.
  virtual std::size_t Read(char* buf, std::size_t n) = 0;
};

/// In-memory byte source (does not own the string).
class StringSource : public ByteSource {
 public:
  explicit StringSource(std::string_view s) : s_(s) {}
  std::size_t Read(char* buf, std::size_t n) override;

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
};

/// Buffered stdio file source; owns and closes the handle.
class FileSource : public ByteSource {
 public:
  /// Opens `path` for reading; returns an error Status if it cannot.
  static Result<std::unique_ptr<FileSource>> Open(const std::string& path);
  ~FileSource() override;
  std::size_t Read(char* buf, std::size_t n) override;

 private:
  explicit FileSource(std::FILE* f) : f_(f) {}
  std::FILE* f_;
};

/// Parser configuration.
struct SaxOptions {
  /// Expand attributes into leading child elements with a text-node child
  /// (the encoding the paper uses for all experiments).
  bool expand_attributes = true;
  /// Drop text events that consist solely of ASCII whitespace.
  bool skip_whitespace_text = true;
};

/// \brief Pull parser: call Next() repeatedly until kEndOfDocument.
///
/// The parser validates tag nesting; a mismatched or unclosed tag yields an
/// InvalidArgument status.
class SaxParser {
 public:
  /// If `symbols` is null the parser owns a private table; pass a shared one
  /// to keep ids consistent with a consumer (the streaming engine passes the
  /// table its rule dispatch was compiled against).
  SaxParser(ByteSource* source, SaxOptions options = {},
            SymbolTable* symbols = nullptr);

  /// Produces the next event. After kEndOfDocument, keeps returning it.
  Status Next(XmlEvent* event);

  /// Number of bytes consumed so far.
  std::size_t bytes_consumed() const { return bytes_consumed_; }

  /// 1-based line of the next unread byte.
  std::size_t line() const { return line_; }
  /// 1-based column (byte offset within the line) of the next unread byte.
  std::size_t column() const { return bytes_consumed_ - line_start_ + 1; }

  /// The table element names are interned into.
  const SymbolTable& symbols() const { return *symbols_; }

 private:
  int GetChar();
  int PeekChar();
  bool Refill();
  Status Fail(const std::string& msg) const;

  Status LexMarkup(XmlEvent* event);
  Status LexText(XmlEvent* event);
  Status ReadName(std::string* out);
  Status ReadAttrValue(std::string* out);
  Status SkipComment();
  Status SkipProcessingInstruction();
  Status SkipDoctype();
  Status ReadCdata(std::string* out);
  Status DecodeEntity(std::string* out);
  void ExpandAttributes(XmlEvent* start_event);

  ByteSource* source_;
  SaxOptions options_;
  SymbolTable owned_symbols_;     // used when no shared table is supplied
  SymbolTable* symbols_;
  std::vector<char> buf_;
  std::size_t buf_pos_ = 0;
  std::size_t buf_len_ = 0;
  std::size_t bytes_consumed_ = 0;
  std::size_t line_ = 1;          // 1-based line of the next unread byte
  std::size_t line_start_ = 0;    // bytes_consumed_ at the start of line_
  bool eof_ = false;
  bool done_ = false;
  std::vector<SymbolId> open_;    // element stack for well-formedness
  std::deque<XmlEvent> pending_;  // synthetic events (attribute encoding)
};

/// Parses a whole document (or forest of documents) into a DOM Forest.
Result<Forest> ParseXmlForest(std::string_view xml, SaxOptions options = {});

/// Parses a file into a DOM Forest.
Result<Forest> ParseXmlFile(const std::string& path, SaxOptions options = {});

}  // namespace xqmft

#endif  // XQMFT_XML_SAX_PARSER_H_
