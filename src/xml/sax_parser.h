// Streaming (pull) XML parser.
//
// The paper's engine sits behind Expat; this reproduction implements its own
// parser so the whole system is self-contained. Supported: elements,
// attributes, character data with entity references, CDATA, comments,
// processing instructions, DOCTYPE (skipped). Not supported (out of scope for
// the paper's workloads): namespaces-aware processing, DTD entity definitions.
//
// The lexer is bulk-scanning: the three dominant states — text until '<',
// name characters, attribute value until the quote — run memchr/char-class
// scans over the refill window instead of per-character pulls, and events are
// zero-copy (events.h): text views alias the window directly when a run is
// contiguous and entity-free, element names alias the symbol table (stable),
// and only the slow path — entities, CDATA splices, runs crossing a Refill()
// boundary — lands in a per-parser spill arena. Sources that expose their
// whole input as one region (StringSource, MmapSource) are scanned in place
// with no buffer copies at all.
#ifndef XQMFT_XML_SAX_PARSER_H_
#define XQMFT_XML_SAX_PARSER_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xml/event_source.h"
#include "xml/events.h"
#include "xml/forest.h"
#include "xml/symbol_table.h"

namespace xqmft {

/// \brief Abstract byte source for the parser.
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  /// Reads up to `n` bytes into `buf`; returns bytes read, 0 at end of input.
  virtual std::size_t Read(char* buf, std::size_t n) = 0;
  /// If the whole input is available as one contiguous region that stays
  /// valid for the source's lifetime (in-memory string, mmap), exposes it
  /// and returns true; the parser then scans the region in place and never
  /// calls Read().
  virtual bool Contents(std::string_view* out) {
    (void)out;
    return false;
  }
};

/// In-memory byte source (does not own the string).
class StringSource : public ByteSource {
 public:
  explicit StringSource(std::string_view s) : s_(s) {}
  std::size_t Read(char* buf, std::size_t n) override;
  bool Contents(std::string_view* out) override {
    *out = s_;
    return true;
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
};

/// Buffered stdio file source; owns and closes the handle.
class FileSource : public ByteSource {
 public:
  /// Opens `path` for reading; returns an error Status if it cannot.
  static Result<std::unique_ptr<FileSource>> Open(const std::string& path);
  ~FileSource() override;
  std::size_t Read(char* buf, std::size_t n) override;

 private:
  explicit FileSource(std::FILE* f) : f_(f) {}
  std::FILE* f_;
};

/// Memory-mapped file source: the parser scans the mapping in place, so file
/// input pays no stdio copy. Open() falls back to a FileSource on platforms
/// without mmap, on empty files, and on any mapping failure — callers always
/// get a working ByteSource for a readable file.
class MmapSource : public ByteSource {
 public:
  static Result<std::unique_ptr<ByteSource>> Open(const std::string& path);
  ~MmapSource() override;
  std::size_t Read(char* buf, std::size_t n) override;
  bool Contents(std::string_view* out) override {
    *out = std::string_view(static_cast<const char*>(map_), size_);
    return true;
  }

 private:
  MmapSource(void* map, std::size_t size) : map_(map), size_(size) {}
  void* map_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Parser configuration.
struct SaxOptions {
  /// Expand attributes into leading child elements with a text-node child
  /// (the encoding the paper uses for all experiments).
  bool expand_attributes = true;
  /// Drop text events that consist solely of ASCII whitespace.
  bool skip_whitespace_text = true;
};

/// True when two configurations tokenize identically — the one definition
/// every pretok-cache compatibility check uses (CLI, pipeline,
/// PretokCacheValid), so a new tokenization-affecting option cannot be
/// forgotten at some call sites and silently replay wrong events.
inline bool SameTokenization(SaxOptions a, SaxOptions b) {
  return a.expand_attributes == b.expand_attributes &&
         a.skip_whitespace_text == b.skip_whitespace_text;
}

/// \brief Pull parser: call Next() repeatedly until kEndOfDocument.
///
/// The parser validates tag nesting; a mismatched or unclosed tag yields an
/// InvalidArgument status.
class SaxParser : public EventSource {
 public:
  /// If `symbols` is null the parser owns a private table; pass a shared one
  /// to keep ids consistent with a consumer (the streaming engine passes the
  /// table its rule dispatch was compiled against).
  SaxParser(ByteSource* source, SaxOptions options = {},
            SymbolTable* symbols = nullptr);

  /// Produces the next event. After kEndOfDocument, keeps returning it.
  /// Event views are valid until the next call (events.h contract).
  Status Next(XmlEvent* event) override;

  /// Number of bytes consumed so far.
  std::size_t bytes_consumed() const override { return bytes_consumed_; }

  /// Re-points name interning at `symbols`; call before the first Next().
  void BindSymbols(SymbolTable* symbols) override { symbols_ = symbols; }

  /// 1-based line of the next unread byte.
  std::size_t line() const { return line_; }
  /// 1-based column (byte offset within the line) of the next unread byte.
  std::size_t column() const { return bytes_consumed_ - line_start_ + 1; }

  /// The table element names are interned into.
  const SymbolTable& symbols() const { return *symbols_; }

 private:
  // A synthetic event queued behind a start tag (attribute encoding,
  // self-closing end). Text payloads are (offset, length) into tag_spill_
  // so the arena can reallocate while the tag is still being lexed.
  struct PendingEvent {
    XmlEventType type;
    SymbolId symbol;
    std::uint32_t text_off;
    std::uint32_t text_len;
  };
  struct AttrRecord {
    SymbolId symbol;
    std::uint32_t value_off;
    std::uint32_t value_len;
  };

  int GetChar();
  int PeekChar();
  bool Refill();
  /// Consumes `n` bytes of the current window, tracking newlines in bulk.
  void Advance(std::size_t n);
  /// Consumes ASCII whitespace (across refills).
  void SkipWs();
  Status Fail(const std::string& msg) const;

  Status LexMarkup(XmlEvent* event);
  Status LexText(XmlEvent* event);
  /// Scans one XML name. The returned view aliases the window (fast path)
  /// or name_spill_ (name split across a refill); both are invalidated by
  /// the next LexName/Refill, so callers intern or compare immediately.
  Status LexName(std::string_view* out);
  Status LexAttrValue(std::uint32_t* off, std::uint32_t* len);
  Status SkipComment();
  Status SkipProcessingInstruction();
  Status SkipDoctype();
  Status LexCdata(std::string_view* out);
  Status DecodeEntity(std::string* out);

  ByteSource* source_;
  SaxOptions options_;
  SymbolTable owned_symbols_;     // used when no shared table is supplied
  SymbolTable* symbols_;

  // Scan window: the whole input (mapped sources) or buf_ (refilled).
  const char* data_ = nullptr;
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
  bool mapped_ = false;
  std::vector<char> buf_;

  std::size_t bytes_consumed_ = 0;
  std::size_t line_ = 1;          // 1-based line of the next unread byte
  std::size_t line_start_ = 0;    // bytes_consumed_ at the start of line_
  bool eof_ = false;
  bool done_ = false;
  std::vector<SymbolId> open_;    // element stack for well-formedness

  // Spill arenas (reused, no steady-state allocation): text/CDATA runs that
  // cross a refill or contain entities; names split across a refill;
  // attribute values (always spilled — they must survive until the tag's
  // synthetic events drain).
  std::string text_spill_;
  std::string name_spill_;
  std::string tag_spill_;
  std::vector<AttrRecord> attrs_scratch_;
  std::vector<XmlAttr> attrs_view_;  // backing for XmlEvent::attrs
  std::vector<PendingEvent> pending_;
  std::size_t pending_head_ = 0;
};

/// Parses a whole document (or forest of documents) into a DOM Forest.
Result<Forest> ParseXmlForest(std::string_view xml, SaxOptions options = {});

/// Parses a file into a DOM Forest (memory-mapped when the platform allows).
Result<Forest> ParseXmlFile(const std::string& path, SaxOptions options = {});

}  // namespace xqmft

#endif  // XQMFT_XML_SAX_PARSER_H_
