#include "xml/symbol_table.h"

#include <algorithm>

namespace xqmft {

namespace {
constexpr std::size_t kInitialBuckets = 64;  // power of two
}

SymbolTable::SymbolTable() : buckets_(kInitialBuckets, kInvalidSymbol) {}

std::uint64_t SymbolTable::Hash(NodeKind kind, std::string_view name) {
  // FNV-1a over the bytes, with the kind folded in as a leading byte.
  std::uint64_t h = 14695981039346656037ull;
  h = (h ^ static_cast<std::uint64_t>(kind)) * 1099511628211ull;
  for (char c : name) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  }
  return h;
}

// The single probe loop: returns the bucket index holding (kind, name)'s id,
// or the empty bucket where it would be inserted.
std::size_t SymbolTable::ProbeIndex(std::uint64_t hash, NodeKind kind,
                                    std::string_view name) const {
  std::size_t mask = buckets_.size() - 1;
  std::size_t i = static_cast<std::size_t>(hash) & mask;
  while (true) {
    SymbolId slot = buckets_[i];
    if (slot == kInvalidSymbol) return i;
    const Entry& e = entries_[slot];
    if (e.kind == kind && e.name == name) return i;
    i = (i + 1) & mask;
  }
}

void SymbolTable::Grow() {
  std::vector<SymbolId> old = std::move(buckets_);
  buckets_.assign(old.size() * 2, kInvalidSymbol);
  std::size_t mask = buckets_.size() - 1;
  for (SymbolId id : old) {
    if (id == kInvalidSymbol) continue;
    const Entry& e = entries_[id];
    std::size_t i =
        static_cast<std::size_t>(Hash(e.kind, e.name)) & mask;
    while (buckets_[i] != kInvalidSymbol) i = (i + 1) & mask;
    buckets_[i] = id;
  }
}

SymbolId SymbolTable::Intern(NodeKind kind, std::string_view name) {
  std::size_t i = ProbeIndex(Hash(kind, name), kind, name);
  if (buckets_[i] != kInvalidSymbol) return buckets_[i];
  SymbolId id = static_cast<SymbolId>(entries_.size());
  entries_.push_back(Entry{kind, std::string(name)});
  buckets_[i] = id;
  if (entries_.size() * 10 > buckets_.size() * 7) Grow();
  return id;
}

SymbolId SymbolTable::Find(NodeKind kind, std::string_view name) const {
  return buckets_[ProbeIndex(Hash(kind, name), kind, name)];
}

void SymbolTable::TruncateToSnapshot(std::size_t n) {
  if (n >= entries_.size()) return;
  entries_.resize(n);
  // Open-addressing tables cannot delete point-wise without tombstones;
  // dropping a suffix of the dense id space lets us simply refill the
  // existing bucket array from the surviving entries.
  std::fill(buckets_.begin(), buckets_.end(), kInvalidSymbol);
  std::size_t mask = buckets_.size() - 1;
  for (std::size_t id = 0; id < entries_.size(); ++id) {
    const Entry& e = entries_[id];
    std::size_t i = static_cast<std::size_t>(Hash(e.kind, e.name)) & mask;
    while (buckets_[i] != kInvalidSymbol) i = (i + 1) & mask;
    buckets_[i] = static_cast<SymbolId>(id);
  }
}

}  // namespace xqmft
