#include "xml/sax_parser.h"

#include <cstring>

#include "util/strings.h"
#include "xml/char_class.h"

#if defined(__unix__) || defined(__APPLE__)
#define XQMFT_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace xqmft {

// Character classification (the table and the bulk Scan* helpers, scalar
// and SIMD) lives in xml/char_class.h so the two scan paths share one
// definition.
namespace {
constexpr std::size_t kBufSize = 1 << 16;
}  // namespace

std::size_t StringSource::Read(char* buf, std::size_t n) {
  std::size_t avail = s_.size() - pos_;
  std::size_t take = n < avail ? n : avail;
  std::memcpy(buf, s_.data() + pos_, take);
  pos_ += take;
  return take;
}

Result<std::unique_ptr<FileSource>> FileSource::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open file: " + path);
  }
  return std::unique_ptr<FileSource>(new FileSource(f));
}

FileSource::~FileSource() {
  if (f_ != nullptr) std::fclose(f_);
}

std::size_t FileSource::Read(char* buf, std::size_t n) {
  return std::fread(buf, 1, n, f_);
}

Result<std::unique_ptr<ByteSource>> MmapSource::Open(const std::string& path) {
#if XQMFT_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct ::stat st;
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0) {
      void* map = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                         PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (map != MAP_FAILED) {
#ifdef MADV_SEQUENTIAL
        ::madvise(map, static_cast<std::size_t>(st.st_size), MADV_SEQUENTIAL);
#endif
        return std::unique_ptr<ByteSource>(
            new MmapSource(map, static_cast<std::size_t>(st.st_size)));
      }
    } else {
      ::close(fd);
    }
  }
#endif
  // No mmap (non-regular file, empty file, platform without it): stdio.
  XQMFT_ASSIGN_OR_RETURN(std::unique_ptr<FileSource> f,
                         FileSource::Open(path));
  return std::unique_ptr<ByteSource>(std::move(f));
}

MmapSource::~MmapSource() {
#if XQMFT_HAVE_MMAP
  if (map_ != nullptr) ::munmap(map_, size_);
#endif
}

std::size_t MmapSource::Read(char* buf, std::size_t n) {
  std::size_t avail = size_ - pos_;
  std::size_t take = n < avail ? n : avail;
  std::memcpy(buf, static_cast<const char*>(map_) + pos_, take);
  pos_ += take;
  return take;
}

SaxParser::SaxParser(ByteSource* source, SaxOptions options,
                     SymbolTable* symbols)
    : source_(source),
      options_(options),
      symbols_(symbols != nullptr ? symbols : &owned_symbols_) {
  std::string_view all;
  if (source_->Contents(&all)) {
    data_ = all.data();
    len_ = all.size();
    mapped_ = true;
  } else {
    buf_.resize(kBufSize);
    data_ = buf_.data();
  }
}

bool SaxParser::Refill() {
  if (eof_) return false;
  if (mapped_) {
    eof_ = true;
    return false;
  }
  len_ = source_->Read(buf_.data(), buf_.size());
  data_ = buf_.data();
  pos_ = 0;
  if (len_ == 0) {
    eof_ = true;
    return false;
  }
  return true;
}

int SaxParser::GetChar() {
  if (pos_ >= len_ && !Refill()) return -1;
  ++bytes_consumed_;
  int c = static_cast<unsigned char>(data_[pos_++]);
  if (c == '\n') {
    ++line_;
    line_start_ = bytes_consumed_;
  }
  return c;
}

int SaxParser::PeekChar() {
  if (pos_ >= len_ && !Refill()) return -1;
  return static_cast<unsigned char>(data_[pos_]);
}

void SaxParser::Advance(std::size_t n) {
  const char* base = data_ + pos_;
  std::size_t searched = 0;
  while (searched < n) {
    const void* nl = std::memchr(base + searched, '\n', n - searched);
    if (nl == nullptr) break;
    searched =
        static_cast<std::size_t>(static_cast<const char*>(nl) - base) + 1;
    ++line_;
    line_start_ = bytes_consumed_ + searched;
  }
  bytes_consumed_ += n;
  pos_ += n;
}

void SaxParser::SkipWs() {
  while (true) {
    Advance(ScanWsRun(data_ + pos_, len_ - pos_));
    if (pos_ < len_ || !Refill()) return;
  }
}

Status SaxParser::Fail(const std::string& msg) const {
  return Status::InvalidArgument(
      StrFormat("XML parse error at line %zu, column %zu (byte %zu): %s",
                line_, column(), bytes_consumed_, msg.c_str()));
}

Status SaxParser::Next(XmlEvent* event) {
  if (pending_head_ < pending_.size()) {
    const PendingEvent& p = pending_[pending_head_++];
    event->type = p.type;
    event->symbol = p.symbol;
    event->attrs = nullptr;
    event->attr_count = 0;
    if (p.type == XmlEventType::kText) {
      event->name = {};
      event->text = std::string_view(tag_spill_).substr(p.text_off, p.text_len);
    } else {
      event->name = symbols_->name(p.symbol);
      event->text = {};
    }
    return Status::OK();
  }
  if (done_) {
    *event = XmlEvent{};
    return Status::OK();
  }
  while (true) {
    int c = PeekChar();
    if (c < 0) {
      if (!open_.empty()) {
        return Fail("unexpected end of input; unclosed <" +
                    std::string(symbols_->name(open_.back())) + ">");
      }
      done_ = true;
      *event = XmlEvent{};
      return Status::OK();
    }
    if (c == '<') {
      XQMFT_RETURN_NOT_OK(LexMarkup(event));
      if (event->type == XmlEventType::kEndOfDocument) continue;  // skipped
      return Status::OK();
    }
    XQMFT_RETURN_NOT_OK(LexText(event));
    if (event->type == XmlEventType::kEndOfDocument) continue;  // all-ws text
    return Status::OK();
  }
}

Status SaxParser::LexText(XmlEvent* event) {
  // Fast path: the whole run sits inside the current window with no entity —
  // the event views the window directly and nothing is copied. Any refill or
  // '&' switches to the spill arena for the rest of the run.
  bool all_ws = true;
  bool spilled = false;
  std::size_t run_start = pos_;
  text_spill_.clear();
  while (true) {
    if (pos_ >= len_) {
      if (!spilled) {
        text_spill_.append(data_ + run_start, pos_ - run_start);
        spilled = true;
      }
      if (!Refill()) break;  // end of input ends the run
      run_start = pos_;
      continue;
    }
    const char* base = data_ + pos_;
    std::size_t n = len_ - pos_;
    // One fused sweep finds the run limit ('<' or '&') and accumulates the
    // all-whitespace bit — the SIMD path classifies 16 bytes per step.
    std::size_t take = ScanTextRun(base, n, &all_ws);
    int stop = take < n ? static_cast<unsigned char>(base[take]) : -1;
    if (take > 0) {
      Advance(take);
      if (spilled) text_spill_.append(base, take);
    }
    if (stop == '&') {
      if (!spilled) {
        text_spill_.append(data_ + run_start, pos_ - run_start);
        spilled = true;
      }
      GetChar();  // '&'
      XQMFT_RETURN_NOT_OK(DecodeEntity(&text_spill_));
      all_ws = false;
      continue;
    }
    if (stop == '<') break;  // markup ends the run
  }
  std::string_view text =
      spilled ? std::string_view(text_spill_)
              : std::string_view(data_ + run_start, pos_ - run_start);
  if (all_ws && options_.skip_whitespace_text) {
    event->type = XmlEventType::kEndOfDocument;  // sentinel: nothing produced
    return Status::OK();
  }
  if (!open_.empty() || !all_ws) {
    event->type = XmlEventType::kText;
    event->symbol = kInvalidSymbol;
    event->text = text;
    event->name = {};
    event->attrs = nullptr;
    event->attr_count = 0;
    return Status::OK();
  }
  event->type = XmlEventType::kEndOfDocument;  // top-level whitespace
  return Status::OK();
}

Status SaxParser::LexMarkup(XmlEvent* event) {
  GetChar();  // '<'
  int c = PeekChar();
  if (c < 0) return Fail("truncated markup");
  if (c == '!') {
    GetChar();
    c = PeekChar();
    if (c == '-') {
      XQMFT_RETURN_NOT_OK(SkipComment());
      event->type = XmlEventType::kEndOfDocument;
      return Status::OK();
    }
    if (c == '[') {
      std::string_view text;
      XQMFT_RETURN_NOT_OK(LexCdata(&text));
      event->type = XmlEventType::kText;
      event->symbol = kInvalidSymbol;
      event->text = text;
      event->name = {};
      event->attrs = nullptr;
      event->attr_count = 0;
      return Status::OK();
    }
    XQMFT_RETURN_NOT_OK(SkipDoctype());
    event->type = XmlEventType::kEndOfDocument;
    return Status::OK();
  }
  if (c == '?') {
    XQMFT_RETURN_NOT_OK(SkipProcessingInstruction());
    event->type = XmlEventType::kEndOfDocument;
    return Status::OK();
  }
  if (c == '/') {
    GetChar();
    // The end tag's id comes off the open-element stack: matching the name
    // against the stack top needs a compare, not a (re-)intern. The compare
    // runs before SkipWs — the name view may alias the window, and a refill
    // would invalidate it; error *reporting* stays after the '>' so failure
    // positions match the seed parser exactly.
    std::string_view name;
    XQMFT_RETURN_NOT_OK(LexName(&name));
    bool have_open = !open_.empty();
    bool match = have_open && symbols_->name(open_.back()) == name;
    std::string name_copy;
    if (!match) name_copy.assign(name);
    SkipWs();
    if (GetChar() != '>') return Fail("expected '>' in end tag");
    if (!have_open) {
      return Fail("end tag </" + name_copy + "> with no open element");
    }
    if (!match) {
      return Fail("mismatched end tag </" + name_copy + ">, expected </" +
                  std::string(symbols_->name(open_.back())) + ">");
    }
    event->type = XmlEventType::kEndElement;
    event->symbol = open_.back();
    event->name = symbols_->name(event->symbol);
    event->text = {};
    event->attrs = nullptr;
    event->attr_count = 0;
    open_.pop_back();
    return Status::OK();
  }
  // Start tag. The pending queue is always drained before lexing resumes,
  // so the per-tag arenas can be reset here.
  std::string_view name;
  XQMFT_RETURN_NOT_OK(LexName(&name));
  SymbolId sym = symbols_->Intern(NodeKind::kElement, name);
  pending_.clear();
  pending_head_ = 0;
  tag_spill_.clear();
  attrs_scratch_.clear();
  bool self_closing = false;
  while (true) {
    SkipWs();
    c = PeekChar();
    if (c < 0) {
      return Fail("truncated start tag <" +
                  std::string(symbols_->name(sym)));
    }
    if (c == '>') {
      GetChar();
      open_.push_back(sym);
      break;
    }
    if (c == '/') {
      GetChar();
      if (GetChar() != '>') return Fail("expected '/>' in empty-element tag");
      self_closing = true;
      break;
    }
    std::string_view attr_name;
    XQMFT_RETURN_NOT_OK(LexName(&attr_name));
    // Attribute names intern like element names: the expanded encoding turns
    // them into elements anyway, and interning gives the event a stable view.
    SymbolId attr_sym = symbols_->Intern(NodeKind::kElement, attr_name);
    SkipWs();
    if (GetChar() != '=') return Fail("expected '=' after attribute name");
    SkipWs();
    AttrRecord rec;
    rec.symbol = attr_sym;
    XQMFT_RETURN_NOT_OK(LexAttrValue(&rec.value_off, &rec.value_len));
    attrs_scratch_.push_back(rec);
  }
  event->type = XmlEventType::kStartElement;
  event->symbol = sym;
  event->name = symbols_->name(sym);
  event->text = {};
  event->attrs = nullptr;
  event->attr_count = 0;
  if (options_.expand_attributes) {
    // Encode <e a="v"> as <e><a>v</a>... : attribute nodes become the first
    // children, each with a single text child (paper Section 2 / Figure 1).
    for (const AttrRecord& rec : attrs_scratch_) {
      pending_.push_back(
          {XmlEventType::kStartElement, rec.symbol, 0, 0});
      if (rec.value_len > 0) {
        pending_.push_back(
            {XmlEventType::kText, kInvalidSymbol, rec.value_off,
             rec.value_len});
      }
      pending_.push_back({XmlEventType::kEndElement, rec.symbol, 0, 0});
    }
  } else if (!attrs_scratch_.empty()) {
    attrs_view_.clear();
    for (const AttrRecord& rec : attrs_scratch_) {
      attrs_view_.push_back(
          {symbols_->name(rec.symbol),
           std::string_view(tag_spill_).substr(rec.value_off, rec.value_len)});
    }
    event->attrs = attrs_view_.data();
    event->attr_count = attrs_view_.size();
  }
  if (self_closing) {
    // Queue the matching end event behind any attribute-encoding events.
    pending_.push_back({XmlEventType::kEndElement, sym, 0, 0});
  }
  return Status::OK();
}

Status SaxParser::LexName(std::string_view* out) {
  if (pos_ >= len_ && !Refill()) return Fail("expected a name");
  if (!(CharClassOf(data_[pos_]) & kClsNameStart)) {
    return Fail("expected a name");
  }
  std::size_t p = pos_ + 1;
  p += ScanNameRun(data_ + p, len_ - p);
  if (p < len_) {
    *out = std::string_view(data_ + pos_, p - pos_);
    Advance(p - pos_);
    return Status::OK();
  }
  // The name may continue past the window: spill what we have and keep
  // scanning across refills.
  name_spill_.assign(data_ + pos_, p - pos_);
  Advance(p - pos_);
  while (pos_ < len_ || Refill()) {
    std::size_t q = pos_ + ScanNameRun(data_ + pos_, len_ - pos_);
    name_spill_.append(data_ + pos_, q - pos_);
    Advance(q - pos_);
    if (pos_ < len_) break;  // a non-name byte ended the scan
  }
  *out = name_spill_;
  return Status::OK();
}

Status SaxParser::LexAttrValue(std::uint32_t* off, std::uint32_t* len) {
  int quote = GetChar();
  if (quote != '"' && quote != '\'') {
    return Fail("attribute value must be quoted");
  }
  // Values land in tag_spill_ unconditionally: they must stay valid while
  // the tag's synthetic child events drain, which outlives the window.
  *off = static_cast<std::uint32_t>(tag_spill_.size());
  while (true) {
    if (pos_ >= len_ && !Refill()) return Fail("unterminated attribute value");
    const char* base = data_ + pos_;
    std::size_t n = len_ - pos_;
    std::size_t take = ScanAttrRun(base, n, static_cast<char>(quote));
    int stop = take < n ? static_cast<unsigned char>(base[take]) : -1;
    tag_spill_.append(base, take);
    Advance(take);
    if (stop == '&') {
      GetChar();  // '&'
      XQMFT_RETURN_NOT_OK(DecodeEntity(&tag_spill_));
      continue;
    }
    if (stop == quote) {
      GetChar();  // closing quote
      break;
    }
  }
  // Offsets/lengths into tag_spill_ are stored as uint32 — a tag whose
  // attribute values total >= 4 GiB must fail loudly, not wrap silently
  // (mirrors RefString::Copy's bound).
  if (tag_spill_.size() >= (std::uint64_t{1} << 32)) {
    return Fail("attribute values exceed 4 GiB in one tag");
  }
  *len = static_cast<std::uint32_t>(tag_spill_.size() - *off);
  return Status::OK();
}

Status SaxParser::SkipComment() {
  // At "-", already consumed "<!".
  if (GetChar() != '-' || GetChar() != '-') return Fail("malformed comment");
  int dashes = 0;
  while (true) {
    if (pos_ >= len_ && !Refill()) return Fail("unterminated comment");
    if (dashes == 0) {
      // Bulk-skip to the next '-' (comment bodies are dash-free runs).
      const void* m = std::memchr(data_ + pos_, '-', len_ - pos_);
      if (m == nullptr) {
        Advance(len_ - pos_);
        continue;
      }
      Advance(static_cast<std::size_t>(static_cast<const char*>(m) -
                                       (data_ + pos_)));
    }
    int c = GetChar();
    if (c < 0) return Fail("unterminated comment");
    if (c == '-') {
      ++dashes;
    } else if (c == '>' && dashes >= 2) {
      return Status::OK();
    } else {
      dashes = 0;
    }
  }
}

Status SaxParser::SkipProcessingInstruction() {
  GetChar();  // '?'
  bool qmark = false;
  while (true) {
    if (pos_ >= len_ && !Refill()) {
      return Fail("unterminated processing instruction");
    }
    if (!qmark) {
      const void* m = std::memchr(data_ + pos_, '?', len_ - pos_);
      if (m == nullptr) {
        Advance(len_ - pos_);
        continue;
      }
      Advance(static_cast<std::size_t>(static_cast<const char*>(m) -
                                       (data_ + pos_)));
    }
    int c = GetChar();
    if (c < 0) return Fail("unterminated processing instruction");
    if (c == '>' && qmark) return Status::OK();
    qmark = (c == '?');
  }
}

Status SaxParser::SkipDoctype() {
  // Already consumed "<!". Skip until the matching '>', tracking an optional
  // internal subset in [...]. DOCTYPEs are rare and small: per-char is fine.
  int depth = 0;
  while (true) {
    int c = GetChar();
    if (c < 0) return Fail("unterminated DOCTYPE");
    if (c == '[') ++depth;
    if (c == ']') --depth;
    if (c == '>' && depth <= 0) return Status::OK();
  }
}

Status SaxParser::LexCdata(std::string_view* out) {
  // At "[", already consumed "<!".
  const char* expect = "[CDATA[";
  for (const char* p = expect; *p; ++p) {
    if (GetChar() != *p) return Fail("malformed CDATA section");
  }
  // Fast path: "]]>" terminator inside the current window — view in place.
  {
    std::size_t start = pos_;
    std::size_t q = pos_;
    while (q + 2 < len_) {
      const void* m = std::memchr(data_ + q, ']', len_ - q - 2);
      if (m == nullptr) break;
      q = static_cast<std::size_t>(static_cast<const char*>(m) - data_);
      if (data_[q + 1] == ']' && data_[q + 2] == '>') {
        *out = std::string_view(data_ + start, q - start);
        Advance(q + 3 - pos_);
        return Status::OK();
      }
      ++q;
    }
  }
  // Slow path (terminator beyond the window): spill with the ]]-lookahead
  // state machine, leftmost-"]]>" semantics as above.
  text_spill_.clear();
  int state = 0;  // count of trailing ']'
  while (true) {
    int c = GetChar();
    if (c < 0) return Fail("unterminated CDATA section");
    if (c == ']') {
      if (state < 2) {
        ++state;
        continue;
      }
      text_spill_ += ']';  // more than two: emit the oldest
      continue;
    }
    if (c == '>' && state == 2) {
      *out = text_spill_;
      return Status::OK();
    }
    while (state > 0) {
      text_spill_ += ']';
      --state;
    }
    text_spill_ += static_cast<char>(c);
  }
}

Status SaxParser::DecodeEntity(std::string* out) {
  std::string ent;
  while (true) {
    int c = GetChar();
    if (c < 0) return Fail("unterminated entity reference");
    if (c == ';') break;
    ent += static_cast<char>(c);
    if (ent.size() > 10) return Fail("entity reference too long: &" + ent);
  }
  if (ent == "amp") {
    *out += '&';
  } else if (ent == "lt") {
    *out += '<';
  } else if (ent == "gt") {
    *out += '>';
  } else if (ent == "quot") {
    *out += '"';
  } else if (ent == "apos") {
    *out += '\'';
  } else if (!ent.empty() && ent[0] == '#') {
    long code = 0;
    if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
      code = std::strtol(ent.c_str() + 2, nullptr, 16);
    } else {
      code = std::strtol(ent.c_str() + 1, nullptr, 10);
    }
    if (code <= 0 || code > 0x10FFFF) return Fail("bad character reference");
    // UTF-8 encode.
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (code >> 18));
      *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  } else {
    return Fail("unknown entity &" + ent + ";");
  }
  return Status::OK();
}

namespace {

Result<Forest> BuildForest(SaxParser* parser) {
  Forest roots;
  std::vector<Tree*> stack;
  XmlEvent ev;
  while (true) {
    XQMFT_RETURN_NOT_OK(parser->Next(&ev));
    switch (ev.type) {
      case XmlEventType::kEndOfDocument:
        return roots;
      case XmlEventType::kStartElement: {
        Forest* parent = stack.empty() ? &roots : &stack.back()->children;
        parent->push_back(Tree::Element(std::string(ev.name)));
        stack.push_back(&parent->back());
        break;
      }
      case XmlEventType::kEndElement:
        if (stack.empty()) return Status::Internal("builder stack underflow");
        stack.pop_back();
        break;
      case XmlEventType::kText: {
        Forest* parent = stack.empty() ? &roots : &stack.back()->children;
        // Merge adjacent text (CDATA next to text, entity splits).
        if (!parent->empty() && parent->back().kind == NodeKind::kText) {
          parent->back().label += ev.text;
        } else {
          parent->push_back(Tree::Text(std::string(ev.text)));
        }
        break;
      }
    }
  }
}

}  // namespace

Result<Forest> ParseXmlForest(std::string_view xml, SaxOptions options) {
  StringSource src(xml);
  SaxParser parser(&src, options);
  return BuildForest(&parser);
}

Result<Forest> ParseXmlFile(const std::string& path, SaxOptions options) {
  XQMFT_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> src,
                         MmapSource::Open(path));
  SaxParser parser(src.get(), options);
  return BuildForest(&parser);
}

}  // namespace xqmft
