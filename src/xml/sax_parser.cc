#include "xml/sax_parser.h"

#include <cctype>
#include <cstring>

#include "util/strings.h"

namespace xqmft {

namespace {
constexpr std::size_t kBufSize = 1 << 16;

bool IsNameStart(int c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}
bool IsNameChar(int c) {
  return IsNameStart(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}
bool IsWs(int c) { return c == ' ' || c == '\t' || c == '\n' || c == '\r'; }
}  // namespace

std::size_t StringSource::Read(char* buf, std::size_t n) {
  std::size_t avail = s_.size() - pos_;
  std::size_t take = n < avail ? n : avail;
  std::memcpy(buf, s_.data() + pos_, take);
  pos_ += take;
  return take;
}

Result<std::unique_ptr<FileSource>> FileSource::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open file: " + path);
  }
  return std::unique_ptr<FileSource>(new FileSource(f));
}

FileSource::~FileSource() {
  if (f_ != nullptr) std::fclose(f_);
}

std::size_t FileSource::Read(char* buf, std::size_t n) {
  return std::fread(buf, 1, n, f_);
}

SaxParser::SaxParser(ByteSource* source, SaxOptions options,
                     SymbolTable* symbols)
    : source_(source),
      options_(options),
      symbols_(symbols != nullptr ? symbols : &owned_symbols_) {
  buf_.resize(kBufSize);
}

bool SaxParser::Refill() {
  if (eof_) return false;
  buf_len_ = source_->Read(buf_.data(), buf_.size());
  buf_pos_ = 0;
  if (buf_len_ == 0) {
    eof_ = true;
    return false;
  }
  return true;
}

int SaxParser::GetChar() {
  if (buf_pos_ >= buf_len_ && !Refill()) return -1;
  ++bytes_consumed_;
  int c = static_cast<unsigned char>(buf_[buf_pos_++]);
  if (c == '\n') {
    ++line_;
    line_start_ = bytes_consumed_;
  }
  return c;
}

int SaxParser::PeekChar() {
  if (buf_pos_ >= buf_len_ && !Refill()) return -1;
  return static_cast<unsigned char>(buf_[buf_pos_]);
}

Status SaxParser::Fail(const std::string& msg) const {
  return Status::InvalidArgument(
      StrFormat("XML parse error at line %zu, column %zu (byte %zu): %s",
                line_, column(), bytes_consumed_, msg.c_str()));
}

Status SaxParser::Next(XmlEvent* event) {
  if (!pending_.empty()) {
    *event = std::move(pending_.front());
    pending_.pop_front();
    return Status::OK();
  }
  if (done_) {
    event->type = XmlEventType::kEndOfDocument;
    return Status::OK();
  }
  while (true) {
    int c = PeekChar();
    if (c < 0) {
      if (!open_.empty()) {
        return Fail("unexpected end of input; unclosed <" +
                    std::string(symbols_->name(open_.back())) + ">");
      }
      done_ = true;
      event->type = XmlEventType::kEndOfDocument;
      return Status::OK();
    }
    if (c == '<') {
      XQMFT_RETURN_NOT_OK(LexMarkup(event));
      if (event->type == XmlEventType::kEndOfDocument) continue;  // skipped
      return Status::OK();
    }
    XQMFT_RETURN_NOT_OK(LexText(event));
    if (event->type == XmlEventType::kEndOfDocument) continue;  // all-ws text
    return Status::OK();
  }
}

Status SaxParser::LexText(XmlEvent* event) {
  std::string text;
  bool all_ws = true;
  while (true) {
    int c = PeekChar();
    if (c < 0 || c == '<') break;
    GetChar();
    if (c == '&') {
      XQMFT_RETURN_NOT_OK(DecodeEntity(&text));
      all_ws = false;
      continue;
    }
    if (!IsWs(c)) all_ws = false;
    text += static_cast<char>(c);
  }
  if (all_ws && options_.skip_whitespace_text) {
    event->type = XmlEventType::kEndOfDocument;  // sentinel: nothing produced
    return Status::OK();
  }
  if (!open_.empty() || !all_ws) {
    event->type = XmlEventType::kText;
    event->symbol = kInvalidSymbol;
    event->text = std::move(text);
    event->name.clear();
    event->attrs.clear();
    return Status::OK();
  }
  event->type = XmlEventType::kEndOfDocument;  // top-level whitespace
  return Status::OK();
}

Status SaxParser::LexMarkup(XmlEvent* event) {
  GetChar();  // '<'
  int c = PeekChar();
  if (c < 0) return Fail("truncated markup");
  if (c == '!') {
    GetChar();
    c = PeekChar();
    if (c == '-') {
      XQMFT_RETURN_NOT_OK(SkipComment());
      event->type = XmlEventType::kEndOfDocument;
      return Status::OK();
    }
    if (c == '[') {
      std::string text;
      XQMFT_RETURN_NOT_OK(ReadCdata(&text));
      event->type = XmlEventType::kText;
      event->symbol = kInvalidSymbol;
      event->text = std::move(text);
      event->name.clear();
      event->attrs.clear();
      return Status::OK();
    }
    XQMFT_RETURN_NOT_OK(SkipDoctype());
    event->type = XmlEventType::kEndOfDocument;
    return Status::OK();
  }
  if (c == '?') {
    XQMFT_RETURN_NOT_OK(SkipProcessingInstruction());
    event->type = XmlEventType::kEndOfDocument;
    return Status::OK();
  }
  if (c == '/') {
    GetChar();
    // The end tag's id comes off the open-element stack: matching the name
    // against the stack top needs a compare, not a (re-)intern.
    XQMFT_RETURN_NOT_OK(ReadName(&event->name));
    while (IsWs(PeekChar())) GetChar();
    if (GetChar() != '>') return Fail("expected '>' in end tag");
    if (open_.empty()) {
      return Fail("end tag </" + event->name + "> with no open element");
    }
    if (symbols_->name(open_.back()) != event->name) {
      return Fail("mismatched end tag </" + event->name + ">, expected </" +
                  std::string(symbols_->name(open_.back())) + ">");
    }
    event->type = XmlEventType::kEndElement;
    event->symbol = open_.back();
    event->attrs.clear();
    open_.pop_back();
    return Status::OK();
  }
  // Start tag.
  XQMFT_RETURN_NOT_OK(ReadName(&event->name));
  event->type = XmlEventType::kStartElement;
  event->symbol = symbols_->Intern(NodeKind::kElement, event->name);
  event->attrs.clear();
  bool self_closing = false;
  while (true) {
    while (IsWs(PeekChar())) GetChar();
    c = PeekChar();
    if (c < 0) return Fail("truncated start tag <" + event->name);
    if (c == '>') {
      GetChar();
      open_.push_back(event->symbol);
      break;
    }
    if (c == '/') {
      GetChar();
      if (GetChar() != '>') return Fail("expected '/>' in empty-element tag");
      self_closing = true;
      break;
    }
    std::string attr_name;
    XQMFT_RETURN_NOT_OK(ReadName(&attr_name));
    while (IsWs(PeekChar())) GetChar();
    if (GetChar() != '=') return Fail("expected '=' after attribute name");
    while (IsWs(PeekChar())) GetChar();
    std::string value;
    XQMFT_RETURN_NOT_OK(ReadAttrValue(&value));
    event->attrs.emplace_back(std::move(attr_name), std::move(value));
  }
  if (options_.expand_attributes && !event->attrs.empty()) {
    ExpandAttributes(event);
  }
  if (self_closing) {
    // Queue the matching end event behind any attribute-encoding events.
    XmlEvent end;
    end.type = XmlEventType::kEndElement;
    end.symbol = event->symbol;
    end.name = event->name;
    pending_.push_back(std::move(end));
  }
  return Status::OK();
}

void SaxParser::ExpandAttributes(XmlEvent* start_event) {
  // Encode <e a="v"> as <e><a>v</a>... : attribute nodes become the first
  // children, each with a single text child (paper Section 2 / Figure 1).
  for (auto& [aname, avalue] : start_event->attrs) {
    SymbolId aid = symbols_->Intern(NodeKind::kElement, aname);
    XmlEvent s;
    s.type = XmlEventType::kStartElement;
    s.symbol = aid;
    s.name = aname;
    pending_.push_back(std::move(s));
    if (!avalue.empty()) {
      XmlEvent t;
      t.type = XmlEventType::kText;
      t.text = avalue;
      pending_.push_back(std::move(t));
    }
    XmlEvent e;
    e.type = XmlEventType::kEndElement;
    e.symbol = aid;
    e.name = aname;
    pending_.push_back(std::move(e));
  }
  start_event->attrs.clear();
}

Status SaxParser::ReadName(std::string* out) {
  int c = PeekChar();
  if (!IsNameStart(c)) return Fail("expected a name");
  out->clear();
  while (IsNameChar(PeekChar())) *out += static_cast<char>(GetChar());
  return Status::OK();
}

Status SaxParser::ReadAttrValue(std::string* out) {
  int quote = GetChar();
  if (quote != '"' && quote != '\'') {
    return Fail("attribute value must be quoted");
  }
  out->clear();
  while (true) {
    int c = GetChar();
    if (c < 0) return Fail("unterminated attribute value");
    if (c == quote) break;
    if (c == '&') {
      XQMFT_RETURN_NOT_OK(DecodeEntity(out));
      continue;
    }
    *out += static_cast<char>(c);
  }
  return Status::OK();
}

Status SaxParser::SkipComment() {
  // At "-", already consumed "<!".
  if (GetChar() != '-' || GetChar() != '-') return Fail("malformed comment");
  int dashes = 0;
  while (true) {
    int c = GetChar();
    if (c < 0) return Fail("unterminated comment");
    if (c == '-') {
      ++dashes;
    } else if (c == '>' && dashes >= 2) {
      return Status::OK();
    } else {
      dashes = 0;
    }
  }
}

Status SaxParser::SkipProcessingInstruction() {
  GetChar();  // '?'
  bool qmark = false;
  while (true) {
    int c = GetChar();
    if (c < 0) return Fail("unterminated processing instruction");
    if (c == '>' && qmark) return Status::OK();
    qmark = (c == '?');
  }
}

Status SaxParser::SkipDoctype() {
  // Already consumed "<!". Skip until the matching '>', tracking an optional
  // internal subset in [...].
  int depth = 0;
  while (true) {
    int c = GetChar();
    if (c < 0) return Fail("unterminated DOCTYPE");
    if (c == '[') ++depth;
    if (c == ']') --depth;
    if (c == '>' && depth <= 0) return Status::OK();
  }
}

Status SaxParser::ReadCdata(std::string* out) {
  // At "[", already consumed "<!".
  const char* expect = "[CDATA[";
  for (const char* p = expect; *p; ++p) {
    if (GetChar() != *p) return Fail("malformed CDATA section");
  }
  out->clear();
  int state = 0;  // count of trailing ']'
  while (true) {
    int c = GetChar();
    if (c < 0) return Fail("unterminated CDATA section");
    if (c == ']') {
      if (state < 2) {
        ++state;
        continue;
      }
      *out += ']';  // more than two: emit the oldest
      continue;
    }
    if (c == '>' && state == 2) return Status::OK();
    while (state > 0) {
      *out += ']';
      --state;
    }
    *out += static_cast<char>(c);
  }
}

Status SaxParser::DecodeEntity(std::string* out) {
  std::string ent;
  while (true) {
    int c = GetChar();
    if (c < 0) return Fail("unterminated entity reference");
    if (c == ';') break;
    ent += static_cast<char>(c);
    if (ent.size() > 10) return Fail("entity reference too long: &" + ent);
  }
  if (ent == "amp") {
    *out += '&';
  } else if (ent == "lt") {
    *out += '<';
  } else if (ent == "gt") {
    *out += '>';
  } else if (ent == "quot") {
    *out += '"';
  } else if (ent == "apos") {
    *out += '\'';
  } else if (!ent.empty() && ent[0] == '#') {
    long code = 0;
    if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
      code = std::strtol(ent.c_str() + 2, nullptr, 16);
    } else {
      code = std::strtol(ent.c_str() + 1, nullptr, 10);
    }
    if (code <= 0 || code > 0x10FFFF) return Fail("bad character reference");
    // UTF-8 encode.
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (code >> 18));
      *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  } else {
    return Fail("unknown entity &" + ent + ";");
  }
  return Status::OK();
}

namespace {

Result<Forest> BuildForest(SaxParser* parser) {
  Forest roots;
  std::vector<Tree*> stack;
  XmlEvent ev;
  while (true) {
    XQMFT_RETURN_NOT_OK(parser->Next(&ev));
    switch (ev.type) {
      case XmlEventType::kEndOfDocument:
        return roots;
      case XmlEventType::kStartElement: {
        Forest* parent = stack.empty() ? &roots : &stack.back()->children;
        parent->push_back(Tree::Element(ev.name));
        stack.push_back(&parent->back());
        break;
      }
      case XmlEventType::kEndElement:
        if (stack.empty()) return Status::Internal("builder stack underflow");
        stack.pop_back();
        break;
      case XmlEventType::kText: {
        Forest* parent = stack.empty() ? &roots : &stack.back()->children;
        // Merge adjacent text (CDATA next to text, entity splits).
        if (!parent->empty() && parent->back().kind == NodeKind::kText) {
          parent->back().label += ev.text;
        } else {
          parent->push_back(Tree::Text(ev.text));
        }
        break;
      }
    }
  }
}

}  // namespace

Result<Forest> ParseXmlForest(std::string_view xml, SaxOptions options) {
  StringSource src(xml);
  SaxParser parser(&src, options);
  return BuildForest(&parser);
}

Result<Forest> ParseXmlFile(const std::string& path, SaxOptions options) {
  XQMFT_ASSIGN_OR_RETURN(std::unique_ptr<FileSource> src,
                         FileSource::Open(path));
  SaxParser parser(src.get(), options);
  return BuildForest(&parser);
}

}  // namespace xqmft
