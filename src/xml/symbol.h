// Node labels.
//
// The paper abstracts an XML node's (type, name) pair into a single label
// (Section 2: "each node has a type and a name. For us, both are part of the
// label"). We keep the two components explicit: the kind distinguishes element
// from text nodes so that `%ttext` rules, `text()` node tests and string
// comparison predicates are well defined even when a text node's content
// equals an element name.
#ifndef XQMFT_XML_SYMBOL_H_
#define XQMFT_XML_SYMBOL_H_

#include <functional>
#include <string>
#include <string_view>

namespace xqmft {

/// Node kind: element or text. Attribute nodes are represented as element
/// nodes whose single child is a text node (the encoding used by the paper's
/// experiments; see Table 1's footnote).
enum class NodeKind : unsigned char {
  kElement = 0,
  kText = 1,
};

/// \brief A transducer alphabet symbol: (kind, name).
struct Symbol {
  NodeKind kind = NodeKind::kElement;
  std::string name;

  Symbol() = default;
  Symbol(NodeKind k, std::string n) : kind(k), name(std::move(n)) {}

  static Symbol Element(std::string n) {
    return Symbol(NodeKind::kElement, std::move(n));
  }
  static Symbol Text(std::string n) {
    return Symbol(NodeKind::kText, std::move(n));
  }

  bool operator==(const Symbol& o) const {
    return kind == o.kind && name == o.name;
  }
  bool operator!=(const Symbol& o) const { return !(*this == o); }
  bool operator<(const Symbol& o) const {
    if (kind != o.kind) return kind < o.kind;
    return name < o.name;
  }

  /// Debug form: `name` for elements, `"name"` for text symbols.
  std::string ToString() const {
    if (kind == NodeKind::kText) return "\"" + name + "\"";
    return name;
  }
};

struct SymbolHash {
  std::size_t operator()(const Symbol& s) const {
    std::size_t h = std::hash<std::string>()(s.name);
    return h * 2 + static_cast<std::size_t>(s.kind);
  }
};

}  // namespace xqmft

#endif  // XQMFT_XML_SYMBOL_H_
