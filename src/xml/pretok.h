// Pre-tokenized binary event format ("pretok").
//
// The SAX lexer is the last per-byte cost of the streaming pipeline; for
// repeated runs over the same document (benchmark sweeps, a serving frontend
// streaming a hot corpus) even a bulk scanner re-pays tokenization on every
// pass. A pretok file stores the *event stream* instead of the markup, so a
// reader hands the engine events with zero scanning: symbol definitions are
// written once per distinct name, and every later record is an opcode plus
// varint ids/lengths.
//
// Format (all integers unsigned LEB128 varints):
//
//   header   "XQPTK2\n" (7 bytes)  flags (1 byte: bit0 expand_attributes,
//                                  bit1 skip_whitespace_text of the SAX
//                                  options the events were produced under),
//                                  varint source_size, varint source_hash
//                                  (byte count and FNV-1a 64 of the XML the
//                                  stream was tokenized from; both 0 when
//                                  the producer couldn't see the whole
//                                  input, e.g. stdin)
//   records  0x01 define   varint name_len, name bytes — declares the next
//                          dense file id (0, 1, 2, ... in file order)
//            0x02 start    varint file_id
//            0x03 end      (no payload: the reader keeps the open stack)
//            0x04 text     varint byte_len, content bytes (decoded: entity
//                          and CDATA processing already happened)
//            0x00 eod      end of document
//
// A PretokSource maps file ids onto a consumer's SymbolTable when the engine
// binds one (EventSource::BindSymbols), so rule ids and event ids share one
// id space exactly as with the live parser. Text views alias the file bytes
// directly — reading a pretok stream allocates nothing per event.
#ifndef XQMFT_XML_PRETOK_H_
#define XQMFT_XML_PRETOK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xml/event_source.h"
#include "xml/events.h"
#include "xml/sax_parser.h"
#include "xml/symbol_table.h"

namespace xqmft {

/// Record opcodes of the pretok format (shared with the shard splitter in
/// parallel/pretok_split.h, which walks records without decoding events).
enum class PretokOp : unsigned char {
  kEod = 0x00,
  kDefine = 0x01,
  kStart = 0x02,
  kEnd = 0x03,
  kText = 0x04,
};

/// \brief Decoded pretok header.
struct PretokHeader {
  SaxOptions sax;                 ///< tokenization options (header flags)
  std::uint64_t source_size = 0;  ///< declared source identity (0/0 = none)
  std::uint64_t source_hash = 0;
  std::size_t records_begin = 0;  ///< offset of the first record
};

/// Parses the fixed header at the front of `data` (magic, flags, source
/// identity); InvalidArgument on a bad magic or truncation.
Result<PretokHeader> ParsePretokHeader(std::string_view data);

/// \brief Serializes an event stream into the pretok byte format.
///
/// Only the start/end/text record kinds exist: attribute *spans* (the
/// expand_attributes = false representation) are not serialized, so feed
/// events produced with attribute expansion on (the default, and the
/// representation the whole streaming system uses). PretokenizeXml rejects
/// the unsupported option.
class PretokWriter {
 public:
  /// Writes the header for events produced under `sax` into `*out`.
  /// `source_size`/`source_hash` identify the tokenized document (byte count
  /// + FNV-1a 64) so a consumer can reject a cache built from different
  /// input; pass 0/0 when the producer cannot see the whole source.
  explicit PretokWriter(std::string* out, SaxOptions sax = {},
                        std::uint64_t source_size = 0,
                        std::uint64_t source_hash = 0);

  /// Appends one event (feed through kEndOfDocument). Events only need
  /// `type`, `name`, and `text` — ids are assigned in the file's own dense
  /// space, so any producer's events serialize. Events carrying an
  /// unexpanded attribute span are rejected (see the class comment).
  Status Feed(const XmlEvent& event);

 private:
  void PutVarint(std::uint64_t v);

  std::string* out_;
  SymbolTable local_;  // file-id space; size growth marks first sight
};

/// \brief EventSource over a pretok byte region (zero-copy reads).
class PretokSource : public EventSource {
 public:
  /// Reads from `data`, which must outlive the source. The header is parsed
  /// eagerly; a bad magic surfaces as the first Next() error.
  explicit PretokSource(std::string_view data);

  /// Bounded form: replays the records in [begin, end) of `data` as a
  /// self-contained stream — kEndOfDocument is synthesized at the range end
  /// (an eod record *inside* the range is an error), and the first
  /// `predefined_count` names of `*predefined` seed the id space before any
  /// in-range define record, in order. This is how the top-level forest
  /// splitter (parallel/pretok_split.h) hands an engine one shard of a
  /// larger stream: define records are written at first use, so a range
  /// starting mid-file needs the prefix dictionary. `data` and
  /// `*predefined` must outlive the source; no header is expected inside
  /// the range.
  PretokSource(std::string_view data, std::size_t begin, std::size_t end,
               const std::vector<std::string_view>* predefined,
               std::size_t predefined_count);

  /// Opens a pretok file, memory-mapping it when the platform allows.
  static Result<std::unique_ptr<PretokSource>> OpenFile(
      const std::string& path);

  Status Next(XmlEvent* event) override;
  /// Bytes consumed: of the whole stream (header included), or of the
  /// record range for a bounded source.
  std::size_t bytes_consumed() const override { return pos_ - range_begin_; }
  void BindSymbols(SymbolTable* symbols) override { symbols_ = symbols; }

  /// The SAX options the stream was tokenized under (header flags).
  /// Consumers that require a specific tokenization (e.g. the default
  /// whitespace skipping) must check before streaming — a cache produced
  /// under different options replays different events.
  SaxOptions declared_options() const { return declared_; }

  /// Declared source identity (0/0 when the producer couldn't see the whole
  /// input); true header parse status without consuming any record.
  std::uint64_t source_size() const { return source_size_; }
  std::uint64_t source_hash() const { return source_hash_; }
  bool header_ok() const { return header_status_.ok(); }

 private:
  Status Fail(const std::string& msg) const;
  void ParseHeader();
  bool GetVarint(std::uint64_t* v);

  std::unique_ptr<ByteSource> backing_;  // keeps a mapping alive (OpenFile)
  std::string owned_;                    // fallback: whole file in memory
  std::string_view data_;
  std::size_t pos_ = 0;
  std::size_t end_ = 0;          // one past the last record byte
  std::size_t range_begin_ = 0;  // bounded: start of the record range
  // Bounded-range state: names seeding the id space (null for a whole
  // stream), interned into the bound table at the first Next().
  const std::vector<std::string_view>* predefined_ = nullptr;
  std::size_t predefined_count_ = 0;
  bool seeded_ = false;
  bool bounded_ = false;
  SymbolTable owned_symbols_;
  SymbolTable* symbols_;
  std::vector<SymbolId> remap_;  // file id -> consumer SymbolId
  std::vector<SymbolId> open_;   // element stack for end events
  Status header_status_;
  SaxOptions declared_;
  std::uint64_t source_size_ = 0;
  std::uint64_t source_hash_ = 0;
  bool done_ = false;
};

/// Parses `source` as XML under `sax` and appends the pretok form to `*out`.
/// `sax.expand_attributes` must be true (the format has no attribute-span
/// records); InvalidArgument otherwise.
Status PretokenizeXml(ByteSource* source, SaxOptions sax, std::string* out);

/// Writes already-serialized pretok bytes to `path`; on any short write the
/// partial file is removed, so a cache path either holds a complete stream
/// or does not exist.
Status WritePretokFile(const std::string& bytes, const std::string& path);

/// File-to-file convenience: tokenizes `xml_path` into `pretok_path`.
Status PretokenizeXmlFile(const std::string& xml_path,
                          const std::string& pretok_path, SaxOptions sax = {});

/// True when `cache_path` holds a pretok stream tokenized from the *current
/// contents* of `input_path` under `expected_sax`: the header's declared
/// source identity (size + FNV-1a 64) is compared against the input bytes,
/// so a document regenerated, restored with an old mtime, or simply swapped
/// for another file never streams through the wrong token cache — and a
/// cache tokenized under different SAX options (which replays different
/// events) is rejected the same way. A header with no identity
/// (stream-tokenized) falls back to requiring the cache's mtime to be
/// strictly newer than the input's. A missing input or unreadable cache
/// returns false, so callers re-tokenize and surface the real error.
bool PretokCacheValid(const std::string& cache_path,
                      const std::string& input_path,
                      SaxOptions expected_sax = {});

/// True when the file at `path` starts with the pretok magic — the cheap
/// sniff callers use to tell an event cache from text XML (the CLI accepts
/// both as positional inputs). Kept next to the format so a version bump
/// cannot leave stale magic copies behind.
bool IsPretokFile(const std::string& path);

}  // namespace xqmft

#endif  // XQMFT_XML_PRETOK_H_
