// XML stream events and output sinks.
//
// The streaming pipeline is event-based end to end: an event source (the SAX
// parser, or a pre-tokenized reader) produces events, the streaming MFT
// engine consumes them and pushes output events into an OutputSink.
//
// Element names travel as interned SymbolIds (xml/symbol_table.h): the parser
// interns each start-tag name once and every downstream layer — cells, rule
// dispatch, output thunks — works with the dense id.
//
// Events are zero-copy: `name` and `text` are std::string_view fields that
// alias storage owned by the producer — the symbol table for names (stable
// for the table's lifetime) and the parse buffer or the producer's spill
// arena for text. The views are valid only until the producer's next Next()
// call; a consumer that buffers an event beyond that point must copy the
// bytes it needs (CellBuilder copies text into cells, the DOM builder copies
// labels into Trees). Text *content* is never interned: it is unbounded
// data, not part of the transducer alphabet.
#ifndef XQMFT_XML_EVENTS_H_
#define XQMFT_XML_EVENTS_H_

#include <cstdio>
#include <string>
#include <string_view>
#include <utility>

#include "util/strings.h"
#include "xml/symbol_table.h"

namespace xqmft {

enum class XmlEventType {
  kStartElement,
  kEndElement,
  kText,
  kEndOfDocument,
};

/// One attribute of a start tag (only populated when attribute expansion is
/// disabled). Views follow the event lifetime contract.
struct XmlAttr {
  std::string_view name;
  std::string_view value;
};

/// \brief One parsing event. All views are valid until the producer's next
/// Next() call (see the header comment for the lifetime contract).
struct XmlEvent {
  XmlEventType type = XmlEventType::kEndOfDocument;
  /// Interned element name (start/end); kInvalidSymbol for hand-built events
  /// that only set `name` (CellBuilder interns those lazily).
  SymbolId symbol = kInvalidSymbol;
  std::string_view name;  ///< element name (start/end)
  std::string_view text;  ///< character data (kText)
  /// Attribute span, reused between events: non-null only for kStartElement
  /// when the parser was configured with expand_attributes = false.
  const XmlAttr* attrs = nullptr;
  std::size_t attr_count = 0;
};

/// \brief Receiver of output XML events. Names and content arrive as views;
/// the emitting engine resolves interned ids to views exactly once, here at
/// the boundary. Views are valid only for the duration of the call.
class OutputSink {
 public:
  virtual ~OutputSink() = default;
  virtual void StartElement(std::string_view name) = 0;
  virtual void EndElement(std::string_view name) = 0;
  virtual void Text(std::string_view content) = 0;
};

/// Accumulates serialized markup into a string (tests, examples).
class StringSink : public OutputSink {
 public:
  void StartElement(std::string_view name) override {
    out_ += '<';
    out_ += name;
    out_ += '>';
  }
  void EndElement(std::string_view name) override {
    out_ += "</";
    out_ += name;
    out_ += '>';
  }
  void Text(std::string_view content) override { out_ += XmlEscape(content); }

  const std::string& str() const { return out_; }

 private:
  std::string out_;
};

/// Counts events and output bytes without buffering anything (benchmarks).
/// Byte accounting matches what StringSink/FileSink would serialize: both
/// tags of an element are charged at StartElement, and text is charged at
/// its escaped size, so on balanced streams bytes() == StringSink size.
class CountingSink : public OutputSink {
 public:
  void StartElement(std::string_view name) override {
    ++elements_;
    bytes_ += name.size() * 2 + 5;  // <name> plus </name>
  }
  void EndElement(std::string_view) override {}
  void Text(std::string_view content) override {
    ++texts_;
    bytes_ += XmlEscapedSize(content);
  }

  std::size_t elements() const { return elements_; }
  std::size_t texts() const { return texts_; }
  std::size_t bytes() const { return bytes_; }

 private:
  std::size_t elements_ = 0;
  std::size_t texts_ = 0;
  std::size_t bytes_ = 0;
};

/// Writes markup to a stdio stream with an internal buffer.
class FileSink : public OutputSink {
 public:
  explicit FileSink(std::FILE* f) : f_(f) { buf_.reserve(kFlushAt * 2); }
  ~FileSink() override { Flush(); }

  void StartElement(std::string_view name) override {
    buf_ += '<';
    buf_ += name;
    buf_ += '>';
    MaybeFlush();
  }
  void EndElement(std::string_view name) override {
    buf_ += "</";
    buf_ += name;
    buf_ += '>';
    MaybeFlush();
  }
  void Text(std::string_view content) override {
    buf_ += XmlEscape(content);
    MaybeFlush();
  }

  void Flush() {
    if (!buf_.empty()) {
      std::fwrite(buf_.data(), 1, buf_.size(), f_);
      buf_.clear();
    }
  }

 private:
  static constexpr std::size_t kFlushAt = 1 << 16;
  void MaybeFlush() {
    if (buf_.size() >= kFlushAt) Flush();
  }
  std::FILE* f_;
  std::string buf_;
};

}  // namespace xqmft

#endif  // XQMFT_XML_EVENTS_H_
