// Interned alphabet symbols.
//
// The streaming pipeline works over a fixed, small alphabet (element names
// plus the finitely many text literals tested by rules), yet the seed engine
// paid a std::string per event: the parser heap-allocated each name, every
// Cell and Expr owned a copy, and rule lookup re-hashed the label on every
// application. A SymbolTable interns each distinct (kind, name) pair once and
// hands out a dense uint32 SymbolId; every later layer — cells, rule
// dispatch, output expressions, emission — moves ids around and resolves a
// name exactly once, at the sink boundary.
//
// Ids are dense (0, 1, 2, ...) in first-intern order and never reassigned,
// which is what makes the per-state flat dispatch tables of RuleDispatch
// (mft/dispatch.h) possible: a rule table compiled against a table of size W
// classifies any id >= W as "not mentioned by any rule" without looking at
// the name.
//
// Element and text symbols are separate: Intern(kElement, "x") and
// Intern(kText, "x") yield different ids (a text node whose content equals an
// element name must not match the element's rules).
#ifndef XQMFT_XML_SYMBOL_TABLE_H_
#define XQMFT_XML_SYMBOL_TABLE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "xml/symbol.h"

namespace xqmft {

/// Dense id of an interned (kind, name) symbol.
using SymbolId = std::uint32_t;

/// "No symbol": used for text cells/exprs that carry dynamic content.
inline constexpr SymbolId kInvalidSymbol = 0xFFFFFFFFu;

/// \brief Interns (kind, name) pairs to dense SymbolIds. Copyable (a copy
/// keeps all existing ids and grows independently); not thread-safe.
class SymbolTable {
 public:
  SymbolTable();

  /// Returns the id of (kind, name), interning it on first sight. Ids are
  /// dense and stable: the same pair always yields the same id.
  SymbolId Intern(NodeKind kind, std::string_view name);

  /// Returns the id of (kind, name) or kInvalidSymbol if never interned.
  SymbolId Find(NodeKind kind, std::string_view name) const;

  /// Name of an interned id. The view stays valid for the table's lifetime
  /// (entries are deque-backed and never move).
  std::string_view name(SymbolId id) const { return entries_[id].name; }
  NodeKind kind(SymbolId id) const { return entries_[id].kind; }

  /// The (kind, name) pair as a Symbol (copies the name).
  Symbol symbol(SymbolId id) const {
    return Symbol(entries_[id].kind, entries_[id].name);
  }

  /// Number of interned symbols; valid ids are [0, size()).
  std::size_t size() const { return entries_.size(); }

  /// Forgets every symbol interned after the first `n`, rebuilding the probe
  /// index in place (bucket storage is reused, nothing reallocates). `n`
  /// must be a point in this table's own intern history — typically the size
  /// of the immutable base table this one was copied from — so ids below `n`
  /// keep their meaning and ids >= `n` are handed out again. This is the
  /// cheap "copy from the immutable base" a serving loop performs between
  /// documents: a per-run table snapshots back to its plan's base alphabet
  /// instead of re-copying the base or growing with the union of all inputs
  /// ever streamed.
  void TruncateToSnapshot(std::size_t n);

 private:
  struct Entry {
    NodeKind kind;
    std::string name;
  };

  static std::uint64_t Hash(NodeKind kind, std::string_view name);
  std::size_t ProbeIndex(std::uint64_t hash, NodeKind kind,
                         std::string_view name) const;
  void Grow();

  // Entries are deque-backed so name() views survive growth; the index is a
  // power-of-two open-addressing table of ids (kInvalidSymbol = empty slot),
  // rebuilt on load factor > 0.7. No per-lookup allocation, one hash per
  // intern — the only hashing left on the streaming element path.
  std::deque<Entry> entries_;
  std::vector<SymbolId> buckets_;
};

}  // namespace xqmft

#endif  // XQMFT_XML_SYMBOL_TABLE_H_
