#include "xml/forest.h"

#include <algorithm>

#include "util/strings.h"
#include "xml/events.h"

namespace xqmft {

std::size_t ForestSize(const Forest& f) {
  std::size_t n = 0;
  for (const Tree& t : f) n += 1 + ForestSize(t.children);
  return n;
}

std::size_t ForestDepth(const Forest& f) {
  std::size_t d = 0;
  for (const Tree& t : f) d = std::max(d, 1 + ForestDepth(t.children));
  return d;
}

void AppendForest(Forest* dst, const Forest& src) {
  dst->insert(dst->end(), src.begin(), src.end());
}

void AppendForest(Forest* dst, Forest&& src) {
  dst->insert(dst->end(), std::make_move_iterator(src.begin()),
              std::make_move_iterator(src.end()));
}

namespace {

void TreeToTerm(const Tree& t, std::string* out) {
  if (t.kind == NodeKind::kText) {
    *out += '"';
    for (char c : t.label) {
      if (c == '"' || c == '\\') *out += '\\';
      *out += c;
    }
    *out += '"';
    return;
  }
  *out += t.label;
  if (!t.children.empty()) {
    *out += '(';
    bool first = true;
    for (const Tree& c : t.children) {
      if (!first) *out += ' ';
      first = false;
      TreeToTerm(c, out);
    }
    *out += ')';
  }
}

// Recursive-descent parser for term notation.
class TermParser {
 public:
  explicit TermParser(const std::string& s) : s_(s) {}

  Result<Forest> Parse() {
    Forest f;
    XQMFT_RETURN_NOT_OK(ParseForest(&f));
    SkipWs();
    if (pos_ != s_.size()) {
      return Status::InvalidArgument(
          StrFormat("trailing characters at offset %zu in term", pos_));
    }
    return f;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n')) {
      ++pos_;
    }
  }

  static bool IsNameChar(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' ||
           c == ':';
  }

  Status ParseForest(Forest* out) {
    while (true) {
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] == ')') return Status::OK();
      Tree t;
      XQMFT_RETURN_NOT_OK(ParseTree(&t));
      out->push_back(std::move(t));
    }
  }

  Status ParseTree(Tree* out) {
    if (s_[pos_] == '"') {
      ++pos_;
      std::string content;
      while (pos_ < s_.size() && s_[pos_] != '"') {
        if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) ++pos_;
        content += s_[pos_++];
      }
      if (pos_ >= s_.size()) {
        return Status::InvalidArgument("unterminated quoted text in term");
      }
      ++pos_;  // closing quote
      *out = Tree::Text(std::move(content));
      return Status::OK();
    }
    if (!IsNameChar(s_[pos_])) {
      return Status::InvalidArgument(
          StrFormat("unexpected character '%c' at offset %zu", s_[pos_], pos_));
    }
    std::string name;
    while (pos_ < s_.size() && IsNameChar(s_[pos_])) name += s_[pos_++];
    Forest children;
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '(') {
      ++pos_;
      XQMFT_RETURN_NOT_OK(ParseForest(&children));
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ')') {
        return Status::InvalidArgument("missing ')' in term");
      }
      ++pos_;
    }
    *out = Tree::Element(std::move(name), std::move(children));
    return Status::OK();
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

void TreeToXml(const Tree& t, std::string* out) {
  if (t.kind == NodeKind::kText) {
    *out += XmlEscape(t.label);
    return;
  }
  *out += '<';
  *out += t.label;
  if (t.children.empty()) {
    *out += "/>";
    return;
  }
  *out += '>';
  for (const Tree& c : t.children) TreeToXml(c, out);
  *out += "</";
  *out += t.label;
  *out += '>';
}

}  // namespace

std::string ForestToTerm(const Forest& f) {
  std::string out;
  bool first = true;
  for (const Tree& t : f) {
    if (!first) out += ' ';
    first = false;
    TreeToTerm(t, &out);
  }
  return out;
}

Result<Forest> ParseTerm(const std::string& term) {
  return TermParser(term).Parse();
}

std::string ForestToXml(const Forest& f) {
  std::string out;
  for (const Tree& t : f) TreeToXml(t, &out);
  return out;
}

void EmitForest(const Forest& f, OutputSink* sink) {
  for (const Tree& t : f) {
    if (t.kind == NodeKind::kText) {
      sink->Text(t.label);
    } else {
      sink->StartElement(t.label);
      EmitForest(t.children, sink);
      sink->EndElement(t.label);
    }
  }
}

}  // namespace xqmft
