#include "xml/pretok.h"

#include <sys/stat.h>

#include <cstdio>
#include <cstring>

#include "util/varint.h"

namespace xqmft {

namespace {

constexpr char kMagic[] = "XQPTK2\n";  // 7 bytes, no terminator written
constexpr std::size_t kMagicLen = 7;

std::uint64_t Fnv1a64(std::string_view bytes,
                      std::uint64_t h = 1469598103934665603ull) {
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

constexpr unsigned char kOpEod = static_cast<unsigned char>(PretokOp::kEod);
constexpr unsigned char kOpDefine =
    static_cast<unsigned char>(PretokOp::kDefine);
constexpr unsigned char kOpStart = static_cast<unsigned char>(PretokOp::kStart);
constexpr unsigned char kOpEnd = static_cast<unsigned char>(PretokOp::kEnd);
constexpr unsigned char kOpText = static_cast<unsigned char>(PretokOp::kText);

}  // namespace

Result<PretokHeader> ParsePretokHeader(std::string_view data) {
  if (data.size() < kMagicLen + 1 ||
      std::memcmp(data.data(), kMagic, kMagicLen) != 0) {
    return Status::InvalidArgument("bad magic (not a pretok stream)");
  }
  PretokHeader header;
  unsigned char flags = static_cast<unsigned char>(data[kMagicLen]);
  header.sax.expand_attributes = (flags & 1) != 0;
  header.sax.skip_whitespace_text = (flags & 2) != 0;
  std::size_t pos = kMagicLen + 1;
  if (!ReadVarint(data, &pos, &header.source_size) ||
      !ReadVarint(data, &pos, &header.source_hash)) {
    return Status::InvalidArgument(
        "truncated header (missing source identity)");
  }
  header.records_begin = pos;
  return header;
}

// --- Writer ------------------------------------------------------------------

PretokWriter::PretokWriter(std::string* out, SaxOptions sax,
                           std::uint64_t source_size, std::uint64_t source_hash)
    : out_(out) {
  out_->append(kMagic, kMagicLen);
  unsigned char flags = 0;
  if (sax.expand_attributes) flags |= 1;
  if (sax.skip_whitespace_text) flags |= 2;
  out_->push_back(static_cast<char>(flags));
  PutVarint(source_size);
  PutVarint(source_hash);
}

void PretokWriter::PutVarint(std::uint64_t v) { xqmft::PutVarint(out_, v); }

Status PretokWriter::Feed(const XmlEvent& event) {
  switch (event.type) {
    case XmlEventType::kStartElement: {
      if (event.attr_count > 0) {
        return Status::InvalidArgument(
            "pretok has no attribute-span records; produce events with "
            "expand_attributes = true");
      }
      std::size_t before = local_.size();
      SymbolId fid = local_.Intern(NodeKind::kElement, event.name);
      if (local_.size() > before) {
        out_->push_back(static_cast<char>(kOpDefine));
        PutVarint(event.name.size());
        out_->append(event.name.data(), event.name.size());
      }
      out_->push_back(static_cast<char>(kOpStart));
      PutVarint(fid);
      return Status::OK();
    }
    case XmlEventType::kEndElement:
      out_->push_back(static_cast<char>(kOpEnd));
      return Status::OK();
    case XmlEventType::kText:
      out_->push_back(static_cast<char>(kOpText));
      PutVarint(event.text.size());
      out_->append(event.text.data(), event.text.size());
      return Status::OK();
    case XmlEventType::kEndOfDocument:
      out_->push_back(static_cast<char>(kOpEod));
      return Status::OK();
  }
  return Status::Internal("unknown event type");
}

// --- Reader ------------------------------------------------------------------

PretokSource::PretokSource(std::string_view data)
    : data_(data), end_(data.size()), symbols_(&owned_symbols_) {
  ParseHeader();
}

PretokSource::PretokSource(std::string_view data, std::size_t begin,
                           std::size_t end,
                           const std::vector<std::string_view>* predefined,
                           std::size_t predefined_count)
    : data_(data),
      pos_(begin),
      end_(end),
      range_begin_(begin),
      predefined_(predefined),
      predefined_count_(predefined_count),
      bounded_(true),
      symbols_(&owned_symbols_) {}

void PretokSource::ParseHeader() {
  Result<PretokHeader> header = ParsePretokHeader(data_);
  if (!header.ok()) {
    header_status_ = Fail(header.status().message());
    return;
  }
  declared_ = header.value().sax;
  source_size_ = header.value().source_size;
  source_hash_ = header.value().source_hash;
  pos_ = header.value().records_begin;
}

Result<std::unique_ptr<PretokSource>> PretokSource::OpenFile(
    const std::string& path) {
  XQMFT_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> backing,
                         MmapSource::Open(path));
  std::string_view all;
  if (backing->Contents(&all)) {
    auto src = std::make_unique<PretokSource>(all);
    src->backing_ = std::move(backing);
    return src;
  }
  // No stable region (empty file, exotic platform): read it whole.
  std::string owned;
  char buf[1 << 16];
  std::size_t n;
  while ((n = backing->Read(buf, sizeof buf)) > 0) owned.append(buf, n);
  auto src = std::make_unique<PretokSource>(std::string_view());
  src->owned_ = std::move(owned);
  src->data_ = src->owned_;
  src->pos_ = 0;
  src->end_ = src->data_.size();
  src->header_status_ = Status::OK();
  src->ParseHeader();  // re-parse: construction saw an empty view
  return src;
}

Status PretokSource::Fail(const std::string& msg) const {
  return Status::InvalidArgument(
      StrFormat("pretok error at byte %zu: %s", pos_, msg.c_str()));
}

bool PretokSource::GetVarint(std::uint64_t* v) {
  // Clamp to end_, not data_.size(): a bounded range whose cut lands
  // mid-record (a caller bug the planner never produces) must fail loudly
  // here rather than read the next range's bytes as this record's payload —
  // and with pos_ never passing end_, the `end_ - pos_ < len` payload
  // checks cannot underflow.
  return ReadVarint(data_.substr(0, end_), &pos_, v);
}

Status PretokSource::Next(XmlEvent* event) {
  XQMFT_RETURN_NOT_OK(header_status_);
  if (done_) {
    // Match SaxParser: no stale views from the prior event survive on the
    // repeated kEndOfDocument.
    *event = XmlEvent{};
    return Status::OK();
  }
  if (!seeded_ && predefined_ != nullptr) {
    // Bounded range: intern the prefix dictionary into the bound table so
    // in-range ids resolve exactly as they would have mid-stream.
    seeded_ = true;
    remap_.reserve(predefined_count_);
    for (std::size_t i = 0; i < predefined_count_; ++i) {
      remap_.push_back(symbols_->Intern(NodeKind::kElement, (*predefined_)[i]));
    }
  }
  event->attrs = nullptr;
  event->attr_count = 0;
  while (true) {
    if (pos_ >= end_) {
      if (!bounded_) return Fail("truncated stream (missing eod)");
      // Range exhausted: this bounded stream's forest is complete (ranges
      // only end at depth 0, so an imbalance here is a caller bug).
      if (!open_.empty()) return Fail("bounded range ended inside an element");
      done_ = true;
      *event = XmlEvent{};
      return Status::OK();
    }
    unsigned char op = static_cast<unsigned char>(data_[pos_++]);
    switch (op) {
      case kOpDefine: {
        std::uint64_t len;
        if (!GetVarint(&len) || end_ - pos_ < len) {
          return Fail("truncated symbol definition");
        }
        std::string_view name = data_.substr(pos_, len);
        pos_ += len;
        remap_.push_back(symbols_->Intern(NodeKind::kElement, name));
        continue;  // definitions are not events
      }
      case kOpStart: {
        std::uint64_t fid;
        if (!GetVarint(&fid)) return Fail("truncated start record");
        if (fid >= remap_.size()) return Fail("undefined symbol id");
        SymbolId sym = remap_[fid];
        open_.push_back(sym);
        event->type = XmlEventType::kStartElement;
        event->symbol = sym;
        event->name = symbols_->name(sym);
        event->text = {};
        return Status::OK();
      }
      case kOpEnd: {
        if (open_.empty()) return Fail("end record with no open element");
        SymbolId sym = open_.back();
        open_.pop_back();
        event->type = XmlEventType::kEndElement;
        event->symbol = sym;
        event->name = symbols_->name(sym);
        event->text = {};
        return Status::OK();
      }
      case kOpText: {
        std::uint64_t len;
        if (!GetVarint(&len) || end_ - pos_ < len) {
          return Fail("truncated text record");
        }
        event->type = XmlEventType::kText;
        event->symbol = kInvalidSymbol;
        event->name = {};
        event->text = data_.substr(pos_, len);
        pos_ += len;
        return Status::OK();
      }
      case kOpEod: {
        if (bounded_) {
          // A bounded range ends before the file's eod record by
          // construction; hitting one means the range is wrong.
          return Fail("unexpected eod record inside a bounded range");
        }
        if (!open_.empty()) return Fail("eod with unclosed elements");
        done_ = true;
        event->type = XmlEventType::kEndOfDocument;
        event->symbol = kInvalidSymbol;
        event->name = {};
        event->text = {};
        return Status::OK();
      }
      default:
        return Fail(StrFormat("unknown opcode 0x%02x", op));
    }
  }
}

// --- Conversion --------------------------------------------------------------

Status PretokenizeXml(ByteSource* source, SaxOptions sax, std::string* out) {
  if (!sax.expand_attributes) {
    return Status::InvalidArgument(
        "pretok requires expand_attributes = true (the format has no "
        "attribute-span records)");
  }
  // Sources exposing their whole input get a source-identity header, so
  // consumers can tell this cache belongs to *these* bytes; pure streams
  // (stdin) declare none.
  std::uint64_t src_size = 0, src_hash = 0;
  std::string_view whole;
  if (source->Contents(&whole)) {
    src_size = whole.size();
    src_hash = Fnv1a64(whole);
  }
  SaxParser parser(source, sax);
  PretokWriter writer(out, sax, src_size, src_hash);
  XmlEvent ev;
  do {
    XQMFT_RETURN_NOT_OK(parser.Next(&ev));
    XQMFT_RETURN_NOT_OK(writer.Feed(ev));
  } while (ev.type != XmlEventType::kEndOfDocument);
  return Status::OK();
}

Status WritePretokFile(const std::string& bytes, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot write pretok file: " + path);
  }
  std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  int rc = std::fclose(f);
  if (written != bytes.size() || rc != 0) {
    // Never leave a truncated cache behind: a later run would trust it.
    std::remove(path.c_str());
    return Status::Internal("short write to pretok file: " + path);
  }
  return Status::OK();
}

Status PretokenizeXmlFile(const std::string& xml_path,
                          const std::string& pretok_path, SaxOptions sax) {
  XQMFT_ASSIGN_OR_RETURN(std::unique_ptr<ByteSource> src,
                         MmapSource::Open(xml_path));
  std::string out;
  XQMFT_RETURN_NOT_OK(PretokenizeXml(src.get(), sax, &out));
  return WritePretokFile(out, pretok_path);
}

bool IsPretokFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char magic[kMagicLen];
  std::size_t n = std::fread(magic, 1, sizeof magic, f);
  std::fclose(f);
  return n == sizeof magic && std::memcmp(magic, kMagic, sizeof magic) == 0;
}

bool PretokCacheValid(const std::string& cache_path,
                      const std::string& input_path,
                      SaxOptions expected_sax) {
  struct stat ist;
  if (::stat(input_path.c_str(), &ist) != 0) return false;
  Result<std::unique_ptr<PretokSource>> cache =
      PretokSource::OpenFile(cache_path);
  if (!cache.ok() || !cache.value()->header_ok()) return false;
  const PretokSource& c = *cache.value();
  if (!SameTokenization(c.declared_options(), expected_sax)) return false;
  if (c.source_hash() != 0) {
    // Identity declared: the cache is valid iff the input's current bytes
    // are the exact bytes it was tokenized from.
    if (static_cast<std::uint64_t>(ist.st_size) != c.source_size()) {
      return false;
    }
    Result<std::unique_ptr<ByteSource>> in = MmapSource::Open(input_path);
    if (!in.ok()) return false;
    std::string_view bytes;
    if (in.value()->Contents(&bytes)) {
      return Fnv1a64(bytes) == c.source_hash();
    }
    std::uint64_t h = Fnv1a64({});
    char buf[1 << 16];
    std::size_t n;
    while ((n = in.value()->Read(buf, sizeof buf)) > 0) {
      h = Fnv1a64(std::string_view(buf, n), h);
    }
    return h == c.source_hash();
  }
  // No declared identity (stream-tokenized): require the cache's mtime to
  // be *strictly* newer — timestamps advance on a coarse kernel tick, so an
  // input rewritten in the cache's tick gets an equal, ambiguous stamp, and
  // re-tokenizing is cheap next to streaming a stale cache.
  struct stat cst;
  if (::stat(cache_path.c_str(), &cst) != 0) return false;
#if defined(__APPLE__)
  const struct timespec &ct = cst.st_mtimespec, &it = ist.st_mtimespec;
#else
  const struct timespec &ct = cst.st_mtim, &it = ist.st_mtim;
#endif
  return ct.tv_sec > it.tv_sec ||
         (ct.tv_sec == it.tv_sec && ct.tv_nsec > it.tv_nsec);
}

}  // namespace xqmft
