#!/usr/bin/env python3
"""Runs the paper's benchmark set and aggregates one baseline JSON artifact.

Executes the Figure 4(a)-(i) binaries and the Table 1 dataset bench with
``--benchmark_out_format=json`` and merges the per-binary reports into a
single file (default ``BENCH_baseline.json``) that downstream PRs can diff
against.

Typical use, after building:

    python3 tools/bench_runner.py --bin-dir build/bench --out BENCH_baseline.json

Input sizes default to a quick sweep (1 and 4 MB XMark scale); pass
``--sizes-mb`` for the larger points of the paper's figures. The fig4
binaries honour the XQMFT_BENCH_* environment knobs documented in
src/bench_common/fig4.h; this driver only sets the ones given on the
command line.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

FIG4_BENCHES = [
    "bench_fig4a_q1",
    "bench_fig4b_q2",
    "bench_fig4c_q4",
    "bench_fig4d_q13",
    "bench_fig4e_q16",
    "bench_fig4f_q17",
    "bench_fig4g_double",
    "bench_fig4h_fourstar",
    "bench_fig4i_deepdup",
]
TABLE1_BENCH = "bench_table1_datasets"


def run_one(binary, out_path, min_time, env):
    cmd = [
        binary,
        "--benchmark_out=%s" % out_path,
        "--benchmark_out_format=json",
        "--benchmark_min_time=%g" % min_time,
    ]
    # Console output (including the Table 1 text dump) goes to the terminal;
    # only the JSON side channel is parsed.
    return subprocess.run(cmd, env=env).returncode


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bin-dir", default="build/bench",
                        help="directory with the built bench binaries")
    parser.add_argument("--out", default="BENCH_baseline.json",
                        help="aggregated output file")
    parser.add_argument("--sizes-mb", default="1,4",
                        help="comma-separated XMark sizes (XQMFT_BENCH_SIZES_MB)")
    parser.add_argument("--table1-mb", type=int, default=1,
                        help="Table 1 corpus scale (XQMFT_BENCH_T1_MB)")
    parser.add_argument("--min-time", type=float, default=0.01,
                        help="per-benchmark minimum time in seconds")
    parser.add_argument("--filter", default=None,
                        help="only run binaries whose name contains this")
    args = parser.parse_args()

    env = dict(os.environ)
    env.setdefault("XQMFT_BENCH_SIZES_MB", args.sizes_mb)
    env.setdefault("XQMFT_BENCH_T1_MB", str(args.table1_mb))

    binaries = FIG4_BENCHES + [TABLE1_BENCH]
    if args.filter:
        binaries = [b for b in binaries if args.filter in b]
    if not binaries:
        print("bench_runner: nothing matches --filter", file=sys.stderr)
        return 2

    runs = []
    context = None
    failed = []
    for name in binaries:
        binary = os.path.join(args.bin_dir, name)
        if not os.path.exists(binary):
            print("bench_runner: missing %s (build the bench targets first)"
                  % binary, file=sys.stderr)
            return 2
        print("== %s ==" % name, flush=True)
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
            tmp_path = tmp.name
        try:
            rc = run_one(binary, tmp_path, args.min_time, env)
            if rc != 0:
                failed.append(name)
                continue
            with open(tmp_path) as f:
                report = json.load(f)
        finally:
            os.unlink(tmp_path)
        if context is None:
            context = report.get("context", {})
        runs.append({"binary": name,
                     "benchmarks": report.get("benchmarks", [])})

    aggregate = {
        "schema": "xqmft-bench-baseline-v1",
        "sizes_mb": env["XQMFT_BENCH_SIZES_MB"],
        "table1_mb": env["XQMFT_BENCH_T1_MB"],
        "context": context or {},
        "runs": runs,
    }
    with open(args.out, "w") as f:
        json.dump(aggregate, f, indent=2)
        f.write("\n")

    total = sum(len(r["benchmarks"]) for r in runs)
    print("bench_runner: wrote %d benchmarks from %d binaries to %s"
          % (total, len(runs), args.out))
    if failed:
        print("bench_runner: FAILED: %s" % ", ".join(failed), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
