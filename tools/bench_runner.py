#!/usr/bin/env python3
"""Runs the paper's benchmark set and aggregates one baseline JSON artifact.

Executes the Figure 4(a)-(i) binaries and the Table 1 dataset bench with
``--benchmark_out_format=json`` and merges the per-binary reports into a
single file (default ``BENCH_baseline.json``) that downstream PRs can diff
against.

Typical use, after building:

    python3 tools/bench_runner.py --bin-dir build/bench --out BENCH_baseline.json

Regression gating: ``--compare BASELINE.json`` diffs the fresh run against a
previously committed aggregate, prints a per-benchmark wall-time,
peak-tracked-memory, parser-throughput (MB/s, from bytes_per_second), and
compile-time (the ``compile_ms`` counter reported by bench_service and the
service series) delta table — plus display-only ``p50_ms``/``p99_ms``
serving-latency columns from bench_serve_net — and exits nonzero when any
benchmark regresses
by more than the tolerance (``--time-tol`` / ``--mem-tol``, both 10% by
default; a throughput *drop* beyond ``--time-tol`` gates like a time
regression; compile time gates separately under ``--compile-tol`` with a
50us absolute floor, so stream-time noise cannot hide a compiler
regression and micro-jitter cannot fail the gate). Peak tracked memory is
deterministic; wall time, throughput, and compile time are only meaningful
against a baseline captured on comparable hardware — CI uses loose time
tolerances for that reason.

Input sizes default to a quick sweep (1 and 4 MB XMark scale); pass
``--sizes-mb`` for the larger points of the paper's figures. The fig4
binaries honour the XQMFT_BENCH_* environment knobs documented in
src/bench_common/fig4.h; this driver only sets the ones given on the
command line.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

FIG4_BENCHES = [
    "bench_fig4a_q1",
    "bench_fig4b_q2",
    "bench_fig4c_q4",
    "bench_fig4d_q13",
    "bench_fig4e_q16",
    "bench_fig4f_q17",
    "bench_fig4g_double",
    "bench_fig4h_fourstar",
    "bench_fig4i_deepdup",
]
TABLE1_BENCH = "bench_table1_datasets"
PARSER_BENCH = "bench_parser"
PARALLEL_BENCH = "bench_parallel"
SERVICE_BENCH = "bench_service"
MULTIQUERY_BENCH = "bench_multiquery"
LOWER_BENCH = "bench_lower"
SERVE_NET_BENCH = "bench_serve_net"

# Compile-time deltas below this many milliseconds are timer jitter, not a
# compiler regression; the compile_ms gate ignores them.
COMPILE_MS_FLOOR = 0.05


def run_one(binary, out_path, min_time, env):
    cmd = [
        binary,
        "--benchmark_out=%s" % out_path,
        "--benchmark_out_format=json",
        "--benchmark_min_time=%g" % min_time,
    ]
    # Console output (including the Table 1 text dump) goes to the terminal;
    # only the JSON side channel is parsed.
    return subprocess.run(cmd, env=env).returncode


def index_benchmarks(aggregate):
    """Maps (binary, benchmark name) -> benchmark record, skipping errors."""
    out = {}
    for run in aggregate.get("runs", []):
        for bench in run.get("benchmarks", []):
            if bench.get("error_occurred"):
                continue  # skipped point (N/A engine, capped size)
            out[(run.get("binary"), bench.get("name"))] = bench
    return out


def fmt_delta(pct):
    if pct is None:
        return "     n/a"
    return "%+7.1f%%" % pct


def pct_change(base, new):
    if base is None or new is None or base == 0:
        return None
    return (new - base) / base * 100.0


def compare_aggregates(baseline, fresh, time_tol, mem_tol, compile_tol):
    """Prints the delta table; returns the list of regression descriptions."""
    base_ix = index_benchmarks(baseline)
    fresh_ix = index_benchmarks(fresh)
    regressions = []

    def mbps(bench):
        bps = bench.get("bytes_per_second")
        return None if bps is None else bps / (1024.0 * 1024.0)

    def fmt_mbps(v):
        return "-" if v is None else "%.1f" % v

    def cms(bench):
        return bench.get("compile_ms")

    def fmt_cms(v):
        return "-" if v is None else "%.3f" % v

    # Serving-latency percentiles (bench_serve_net). Display-only: open-loop
    # tail latency on shared CI hardware is too noisy to gate, but the
    # side-by-side base/new columns make a serving regression visible in the
    # same table the gated metrics live in.
    def fmt_lat(v):
        return "-" if v is None else "%.3f" % v

    name_w = max([len(n) for _, n in fresh_ix] + [9])
    print("%-*s %12s %12s %9s %12s %12s %9s %9s %9s %9s %9s %9s %9s"
          " %9s %9s %9s %9s"
          % (name_w, "benchmark", "base_ms", "new_ms", "time",
             "base_mem_B", "new_mem_B", "mem",
             "base_MBps", "new_MBps", "thru",
             "base_cms", "new_cms", "compile",
             "base_p50", "new_p50", "base_p99", "new_p99"))
    for key in sorted(fresh_ix):
        bench = fresh_ix[key]
        base = base_ix.get(key)
        new_ms = bench.get("real_time")
        new_mem = bench.get("peak_mem_B")
        new_thru = mbps(bench)
        new_cms = cms(bench)
        new_p50 = bench.get("p50_ms")
        new_p99 = bench.get("p99_ms")
        if base is None:
            print("%-*s %12s %12.2f %9s %12s %12s %9s %9s %9s %9s %9s %9s %9s"
                  " %9s %9s %9s %9s"
                  % (name_w, key[1], "-", new_ms, "new",
                     "-", "-" if new_mem is None else "%d" % new_mem, "new",
                     "-", fmt_mbps(new_thru), "new",
                     "-", fmt_cms(new_cms), "new",
                     "-", fmt_lat(new_p50), "-", fmt_lat(new_p99)))
            continue
        base_ms = base.get("real_time")
        base_mem = base.get("peak_mem_B")
        base_thru = mbps(base)
        base_cms = cms(base)
        base_p50 = base.get("p50_ms")
        base_p99 = base.get("p99_ms")
        dt = pct_change(base_ms, new_ms)
        dm = pct_change(base_mem, new_mem)
        dthru = pct_change(base_thru, new_thru)
        dcms = pct_change(base_cms, new_cms)
        print("%-*s %12.2f %12.2f %s %12s %12s %s %9s %9s %s %9s %9s %s"
              " %9s %9s %9s %9s"
              % (name_w, key[1], base_ms, new_ms, fmt_delta(dt),
                 "-" if base_mem is None else "%d" % base_mem,
                 "-" if new_mem is None else "%d" % new_mem, fmt_delta(dm),
                 fmt_mbps(base_thru), fmt_mbps(new_thru), fmt_delta(dthru),
                 fmt_cms(base_cms), fmt_cms(new_cms), fmt_delta(dcms),
                 fmt_lat(base_p50), fmt_lat(new_p50),
                 fmt_lat(base_p99), fmt_lat(new_p99)))
        if dt is not None and dt > time_tol:
            regressions.append("%s: time %+0.1f%% (tolerance %g%%)"
                               % (key[1], dt, time_tol))
        if dm is not None and dm > mem_tol:
            regressions.append("%s: peak memory %+0.1f%% (tolerance %g%%)"
                               % (key[1], dm, mem_tol))
        # Compile time gates on its own tolerance, independent of stream
        # time: amortization means a compile regression barely moves the
        # end-to-end number of a warm series, so it must be caught in its
        # own column. The absolute floor keeps microsecond jitter out.
        if (dcms is not None and dcms > compile_tol
                and new_cms - base_cms > COMPILE_MS_FLOOR):
            regressions.append(
                "%s: compile time %+0.1f%% (tolerance %g%%)"
                % (key[1], dcms, compile_tol))
        # A throughput drop is a parse-side regression even when absolute
        # wall time stays inside tolerance (e.g. a smaller input sweep).
        # Throughput is a ratio metric bounded below by -100%, so the time
        # tolerance maps through 1/(1+t): a +t% time allowance corresponds
        # to a -100*t/(100+t)% throughput allowance (10% -> -9.1%,
        # 400% -> -80%) — using -time_tol directly would make the gate
        # unsatisfiable for tolerances >= 100%.
        thru_tol = 100.0 * time_tol / (100.0 + time_tol)
        if dthru is not None and dthru < -thru_tol:
            regressions.append("%s: throughput %+0.1f%% (tolerance -%0.1f%%)"
                               % (key[1], dthru, thru_tol))
    # A baseline benchmark whose binary DID run but which produced no clean
    # result (error/skip) is a regression — the engine broke outright, which
    # must not pass the gate. Binaries absent from the fresh aggregate were
    # merely --filter'ed out.
    fresh_binaries = {r.get("binary") for r in fresh.get("runs", [])}
    dropped = sorted(set(base_ix) - set(fresh_ix))
    filtered = [k for k in dropped if k[0] not in fresh_binaries]
    broken = [k for k in dropped if k[0] in fresh_binaries]
    if filtered:
        print("bench_runner: %d baseline benchmarks filtered out of this "
              "run: %s" % (len(filtered),
                           ", ".join(n for _, n in filtered[:8])))
    for key in broken:
        regressions.append("%s: present in baseline but errored/skipped in "
                           "this run" % key[1])
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bin-dir", default="build/bench",
                        help="directory with the built bench binaries")
    parser.add_argument("--out", default="BENCH_baseline.json",
                        help="aggregated output file")
    parser.add_argument("--sizes-mb", default="1,4",
                        help="comma-separated XMark sizes (XQMFT_BENCH_SIZES_MB)")
    parser.add_argument("--table1-mb", type=int, default=1,
                        help="Table 1 corpus scale (XQMFT_BENCH_T1_MB)")
    parser.add_argument("--min-time", type=float, default=0.01,
                        help="per-benchmark minimum time in seconds")
    parser.add_argument("--filter", default=None,
                        help="only run binaries whose name contains this")
    parser.add_argument("--compare", default=None, metavar="BASELINE.json",
                        help="diff this run against a committed aggregate and "
                             "exit nonzero on regression")
    parser.add_argument("--time-tol", type=float, default=10.0,
                        help="allowed wall-time regression in percent")
    parser.add_argument("--mem-tol", type=float, default=10.0,
                        help="allowed peak-tracked-memory regression in percent")
    parser.add_argument("--compile-tol", type=float, default=25.0,
                        help="allowed compile_ms regression in percent "
                             "(gated separately from stream time; deltas "
                             "under %gms are ignored)" % COMPILE_MS_FLOOR)
    args = parser.parse_args()

    env = dict(os.environ)
    env.setdefault("XQMFT_BENCH_SIZES_MB", args.sizes_mb)
    env.setdefault("XQMFT_BENCH_T1_MB", str(args.table1_mb))

    binaries = FIG4_BENCHES + [PARSER_BENCH, PARALLEL_BENCH, SERVICE_BENCH,
                               MULTIQUERY_BENCH, LOWER_BENCH, SERVE_NET_BENCH,
                               TABLE1_BENCH]
    if args.filter:
        binaries = [b for b in binaries if args.filter in b]
    if not binaries:
        print("bench_runner: nothing matches --filter", file=sys.stderr)
        return 2

    runs = []
    context = None
    failed = []
    for name in binaries:
        binary = os.path.join(args.bin_dir, name)
        if not os.path.exists(binary):
            print("bench_runner: missing %s (build the bench targets first)"
                  % binary, file=sys.stderr)
            return 2
        print("== %s ==" % name, flush=True)
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
            tmp_path = tmp.name
        try:
            rc = run_one(binary, tmp_path, args.min_time, env)
            if rc != 0:
                failed.append(name)
                continue
            with open(tmp_path) as f:
                report = json.load(f)
        finally:
            os.unlink(tmp_path)
        if context is None:
            context = report.get("context", {})
        runs.append({"binary": name,
                     "benchmarks": report.get("benchmarks", [])})

    aggregate = {
        "schema": "xqmft-bench-baseline-v1",
        "sizes_mb": env["XQMFT_BENCH_SIZES_MB"],
        "table1_mb": env["XQMFT_BENCH_T1_MB"],
        "context": context or {},
        "runs": runs,
    }
    with open(args.out, "w") as f:
        json.dump(aggregate, f, indent=2)
        f.write("\n")

    total = sum(len(r["benchmarks"]) for r in runs)
    print("bench_runner: wrote %d benchmarks from %d binaries to %s"
          % (total, len(runs), args.out))
    if failed:
        print("bench_runner: FAILED: %s" % ", ".join(failed), file=sys.stderr)
        return 1

    if args.compare:
        try:
            with open(args.compare) as f:
                baseline = json.load(f)
        except (OSError, ValueError) as e:
            print("bench_runner: cannot read baseline %s: %s"
                  % (args.compare, e), file=sys.stderr)
            return 2
        print("\n== compare against %s (time tol %g%%, mem tol %g%%) =="
              % (args.compare, args.time_tol, args.mem_tol))
        regressions = compare_aggregates(baseline, aggregate,
                                         args.time_tol, args.mem_tol,
                                         args.compile_tol)
        if regressions:
            print("bench_runner: REGRESSIONS:", file=sys.stderr)
            for r in regressions:
                print("  " + r, file=sys.stderr)
            return 3
        print("bench_runner: no regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
